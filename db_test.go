package ritree

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
)

// testMethods are the built-in access methods every DB registers; the
// unified-API tests run the same assertions over each.
var testMethods = []string{AccessMethodRITree, AccessMethodHINT, AccessMethodHINTSharded}

func TestDBCollectionsQuickPath(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.AccessMethods(); !slices.Contains(got, "ritree") || !slices.Contains(got, "hint") || !slices.Contains(got, "hint_sharded") {
		t.Fatalf("AccessMethods = %v", got)
	}
	for _, method := range testMethods {
		c, err := db.CreateCollection("c_"+method, AccessMethod(method))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if c.Method() != method {
			t.Fatalf("Method = %q, want %q", c.Method(), method)
		}
		if err := c.Insert(NewInterval(10, 20), 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(NewInterval(15, 40), 2); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(Point(17), 3); err != nil {
			t.Fatal(err)
		}
		ids, err := c.Intersecting(NewInterval(16, 18))
		if err != nil {
			t.Fatal(err)
		}
		if want := []int64{1, 2, 3}; !slices.Equal(ids, want) {
			t.Fatalf("%s: Intersecting = %v, want %v", method, ids, want)
		}
		if ids, _ := c.Stab(30); !slices.Equal(ids, []int64{2}) {
			t.Fatalf("%s: Stab = %v", method, ids)
		}
		if n, _ := c.CountIntersecting(NewInterval(0, 100)); n != 3 {
			t.Fatalf("%s: CountIntersecting = %d", method, n)
		}
		ok, err := c.Delete(NewInterval(10, 20), 1)
		if err != nil || !ok {
			t.Fatalf("%s: Delete = %v, %v", method, ok, err)
		}
		if ok, _ := c.Delete(NewInterval(10, 20), 1); ok {
			t.Fatalf("%s: second Delete reported existing", method)
		}
		if c.Count() != 2 {
			t.Fatalf("%s: Count = %d", method, c.Count())
		}
		if !strings.Contains(c.String(), method) {
			t.Fatalf("String = %s", c)
		}
	}
	infos := db.Collections()
	if len(infos) != len(testMethods) {
		t.Fatalf("Collections = %v", infos)
	}
}

func TestDBCollectionsMatchBruteForceAllMethods(t *testing.T) {
	// The baseline crosscheck matrix, run through the unified
	// Collection/Querier API for every registered access method:
	// intersections, stabs and all thirteen Allen relations against a
	// brute-force reference.
	const n = 1500
	rng := rand.New(rand.NewSource(99))
	ivs := make([]Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 18)
		ivs[i] = NewInterval(lo, lo+rng.Int63n(3000))
		ids[i] = int64(i)
	}
	brute := func(pred func(iv Interval) bool) []int64 {
		var out []int64
		for i, iv := range ivs {
			if pred(iv) {
				out = append(out, ids[i])
			}
		}
		return out
	}

	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, method := range testMethods {
		c, err := db.CreateCollection("x_"+method, AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.BulkLoad(ivs, ids); err != nil {
			t.Fatalf("%s: BulkLoad: %v", method, err)
		}
		if c.Count() != n {
			t.Fatalf("%s: Count = %d", method, c.Count())
		}
		var qs []Interval
		for i := 0; i < 40; i++ {
			lo := rng.Int63n(1 << 18)
			qs = append(qs, NewInterval(lo, lo+rng.Int63n(8000)))
		}
		qs = append(qs, Point(12345), NewInterval(0, 1<<19))
		for _, q := range qs {
			got, err := c.Intersecting(q)
			if err != nil {
				t.Fatalf("%s: %v", method, err)
			}
			want := brute(func(iv Interval) bool { return iv.Intersects(q) })
			if !slices.Equal(got, want) {
				t.Fatalf("%s: Intersecting(%v) = %d ids, want %d", method, q, len(got), len(want))
			}
		}
		q := NewInterval(100000, 108000)
		for r := Before; r <= After; r++ {
			got, err := c.Query(r, q)
			if err != nil {
				t.Fatalf("%s/%v: %v", method, r, err)
			}
			want := brute(func(iv Interval) bool { return r.Holds(iv, q) })
			if !slices.Equal(got, want) {
				t.Fatalf("%s: Query(%v, %v) = %d ids, want %d", method, r, q, len(got), len(want))
			}
		}
	}
}

func TestDBReopenServesAllCollections(t *testing.T) {
	// Acceptance: a DB with two collections on different access methods
	// survives close-and-reopen — ritree reopens its persisted relations,
	// hint rebuilds from the heap — and both keep answering and accepting
	// DML.
	dir := t.TempDir()
	path := filepath.Join(dir, "multi.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := db.CreateCollection("flights", AccessMethod(AccessMethodRITree))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := db.CreateCollection("sessions", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		if err := disk.Insert(NewInterval(i*10, i*10+50), i); err != nil {
			t.Fatal(err)
		}
		if err := mem.Insert(NewInterval(i*7, i*7+30), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	infos := db2.Collections()
	if len(infos) != 2 || infos[0].Name != "flights" || infos[0].Method != "ritree" ||
		infos[1].Name != "sessions" || infos[1].Method != "hint" {
		t.Fatalf("Collections after reopen = %v", infos)
	}
	disk2, err := db2.Collection("flights")
	if err != nil {
		t.Fatal(err)
	}
	mem2, err := db2.Collection("sessions")
	if err != nil {
		t.Fatal(err)
	}
	if disk2.Count() != 300 || mem2.Count() != 300 {
		t.Fatalf("counts after reopen: %d, %d", disk2.Count(), mem2.Count())
	}
	a, err := disk2.Intersecting(NewInterval(100, 130))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("ritree collection empty after reopen")
	}
	b, err := mem2.Intersecting(NewInterval(100, 130))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("hint collection empty after reopen")
	}
	// Still writable with index maintenance on both.
	if err := disk2.Insert(NewInterval(105, 106), 9999); err != nil {
		t.Fatal(err)
	}
	if err := mem2.Insert(NewInterval(105, 106), 9999); err != nil {
		t.Fatal(err)
	}
	a2, _ := disk2.Intersecting(NewInterval(100, 130))
	b2, _ := mem2.Intersecting(NewInterval(100, 130))
	if len(a2) != len(a)+1 || len(b2) != len(b)+1 {
		t.Fatalf("post-reopen inserts not served: %d->%d, %d->%d", len(a), len(a2), len(b), len(b2))
	}
}

func TestDBScanEarlyBreakAndCancel(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, method := range []string{AccessMethodRITree, AccessMethodHINT} {
		c, err := db.CreateCollection("s_"+method, AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		ivs := make([]Interval, 500)
		ids := make([]int64, 500)
		for i := range ivs {
			ivs[i] = NewInterval(int64(i), int64(i)+100)
			ids[i] = int64(i)
		}
		if err := c.BulkLoad(ivs, ids); err != nil {
			t.Fatal(err)
		}

		// Full drain matches the slice form.
		var got []int64
		for id, err := range c.Scan(context.Background(), Intersects(NewInterval(0, 1000))) {
			if err != nil {
				t.Fatalf("%s: scan error: %v", method, err)
			}
			got = append(got, id)
		}
		slices.Sort(got)
		want, _ := c.Intersecting(NewInterval(0, 1000))
		if !slices.Equal(got, want) {
			t.Fatalf("%s: Scan drained %d ids, Intersecting %d", method, len(got), len(want))
		}

		// Early break stops the scan and releases the read lock: a mutation
		// afterwards must not deadlock.
		seen := 0
		for _, err := range c.Scan(context.Background(), Intersects(NewInterval(0, 1000))) {
			if err != nil {
				t.Fatal(err)
			}
			if seen++; seen == 3 {
				break
			}
		}
		if seen != 3 {
			t.Fatalf("%s: early break saw %d", method, seen)
		}
		if err := c.Insert(NewInterval(1, 2), 10001); err != nil {
			t.Fatalf("%s: insert after early break: %v", method, err)
		}

		// A cancelled context surfaces context.Canceled as the final error.
		ctx, cancel := context.WithCancel(context.Background())
		seen = 0
		var scanErr error
		for _, err := range c.Scan(ctx, Intersects(NewInterval(0, 1000))) {
			if err != nil {
				scanErr = err
				continue
			}
			if seen++; seen == 5 {
				cancel()
			}
		}
		cancel()
		if !errors.Is(scanErr, context.Canceled) {
			t.Fatalf("%s: scan after cancel returned %v, want context.Canceled", method, scanErr)
		}
		if seen > 6 {
			t.Fatalf("%s: scan kept yielding after cancel (%d)", method, seen)
		}

		// Relation and stabbing queries stream too.
		var during []int64
		for id, err := range c.Scan(context.Background(), Related(During, NewInterval(-10, 700))) {
			if err != nil {
				t.Fatal(err)
			}
			during = append(during, id)
		}
		slices.Sort(during)
		wantDuring, _ := c.Query(During, NewInterval(-10, 700))
		if !slices.Equal(during, wantDuring) {
			t.Fatalf("%s: Related scan = %d, Query = %d", method, len(during), len(wantDuring))
		}
		var stab []int64
		for id, err := range c.Scan(context.Background(), Stabbing(250)) {
			if err != nil {
				t.Fatal(err)
			}
			stab = append(stab, id)
		}
		slices.Sort(stab)
		wantStab, _ := c.Stab(250)
		if !slices.Equal(stab, wantStab) {
			t.Fatalf("%s: Stabbing scan = %v, Stab = %v", method, stab, wantStab)
		}

		// Zero Query reports a usable error.
		var zeroErr error
		for _, err := range c.Scan(context.Background(), Query{}) {
			zeroErr = err
		}
		if zeroErr == nil {
			t.Fatalf("%s: zero Query did not error", method)
		}
	}
}

func TestLegacyTypesSatisfyQuerierScan(t *testing.T) {
	// The legacy Index and HINT speak the same streaming interface as
	// collections (Querier includes Scan).
	idx, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	hin, err := NewHINT()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Querier{idx, hin} {
		for i := int64(0); i < 100; i++ {
			if err := q.Insert(NewInterval(i, i+10), i); err != nil {
				t.Fatal(err)
			}
		}
		var got []int64
		for id, err := range q.Scan(context.Background(), Intersects(NewInterval(0, 200))) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, id)
		}
		if len(got) != 100 {
			t.Fatalf("scan drained %d ids", len(got))
		}
		// Early break.
		seen := 0
		for range q.Scan(context.Background(), Intersects(NewInterval(0, 200))) {
			if seen++; seen == 2 {
				break
			}
		}
		if err := q.Insert(NewInterval(5, 6), 4242); err != nil {
			t.Fatalf("insert after early break: %v", err)
		}
		// Cancel.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var scanErr error
		for _, err := range q.Scan(ctx, Intersects(NewInterval(0, 200))) {
			scanErr = err
		}
		if !errors.Is(scanErr, context.Canceled) {
			t.Fatalf("cancelled scan returned %v", scanErr)
		}
		// Allen via the interface.
		ids, err := q.Query(Equals, NewInterval(7, 17))
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(ids, []int64{7}) {
			t.Fatalf("Query(Equals) = %v", ids)
		}
	}
}

func TestCollectionNowRelative(t *testing.T) {
	db, _ := OpenMemory()
	defer db.Close()
	c, err := db.CreateCollection("emp") // default method: ritree
	if err != nil {
		t.Fatal(err)
	}
	if c.Method() != "ritree" {
		t.Fatalf("default method = %q", c.Method())
	}
	if err := c.Insert(NewInterval(5, 10), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertInfinite(8, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertNow(9, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNow(12); err != nil {
		t.Fatal(err)
	}
	ids, _ := c.Intersecting(NewInterval(11, 100))
	if !slices.Equal(ids, []int64{2, 3}) {
		t.Fatalf("ids = %v", ids)
	}
	if err := c.SetNow(8); err != nil {
		t.Fatal(err)
	}
	ids, _ = c.Intersecting(NewInterval(11, 100))
	if !slices.Equal(ids, []int64{2}) {
		t.Fatalf("ids = %v", ids)
	}
	if now, ok := c.Now(); !ok || now != 8 {
		t.Fatalf("Now = %d, %v", now, ok)
	}
	// Deleting a now-relative row works through the heap fallback.
	if ok, err := c.Delete(Interval{Lower: 9, Upper: NowMarker}, 3); err != nil || !ok {
		t.Fatalf("delete now-row = %v, %v", ok, err)
	}

	// A hint-backed collection rejects now-relative rows and has no clock.
	h, err := db.CreateCollection("hcol", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.InsertNow(3, 1); err == nil {
		t.Fatal("hint collection accepted a now-relative interval")
	}
	if err := h.SetNow(5); err == nil {
		t.Fatal("hint collection accepted SetNow")
	}
	if _, ok := h.Now(); ok {
		t.Fatal("hint collection reported a clock")
	}
}

func TestDBCollectionErrors(t *testing.T) {
	db, _ := OpenMemory()
	defer db.Close()
	if _, err := db.CreateCollection("bad name"); err == nil {
		t.Fatal("invalid identifier accepted")
	}
	if _, err := db.CreateCollection("c1", AccessMethod("btree9000")); err == nil {
		t.Fatal("unknown access method accepted")
	}
	if _, err := db.Collection("missing"); err == nil {
		t.Fatal("missing collection resolved")
	}
	if _, err := db.CreateCollection("c2"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateCollection("c2"); err == nil {
		t.Fatal("duplicate collection accepted")
	}
	if err := db.DropCollection("c2"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCollection("c2"); err == nil {
		t.Fatal("double drop accepted")
	}
	// The name is reusable after a drop, on a different method.
	if _, err := db.CreateCollection("c2", AccessMethod(AccessMethodHINT)); err != nil {
		t.Fatal(err)
	}
}

func TestDBExecSQLOverCollections(t *testing.T) {
	// Collections are first-class in the SQL dialect: CREATE COLLECTION /
	// DROP COLLECTION statements, ordinary SELECT/INSERT/DELETE over the
	// base relation, and operators served by the access method.
	db, _ := OpenMemory()
	defer db.Close()
	if _, err := db.Exec("CREATE COLLECTION resv USING hint", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO resv VALUES (10, 20, 1)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO resv VALUES (15, 30, 2)", nil); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec("SELECT id FROM resv WHERE intersects(lower, upper, 18, 19) ORDER BY id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0] != 1 || r.Rows[1][0] != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	plan, err := db.Exec("EXPLAIN SELECT id FROM resv WHERE intersects(lower, upper, 18, 19)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Plan, "DOMAIN INDEX") {
		t.Fatalf("operator not served by the access method:\n%s", plan.Plan)
	}
	// The handle API sees SQL-inserted rows.
	c, err := db.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := c.CountIntersecting(NewInterval(0, 100)); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if _, err := db.Exec("DROP COLLECTION resv", nil); err != nil {
		t.Fatal(err)
	}
	if infos := db.Collections(); len(infos) != 0 {
		t.Fatalf("collections after SQL drop = %v", infos)
	}
	if _, err := db.Exec("DROP COLLECTION resv", nil); err == nil {
		t.Fatal("dropping a missing collection via SQL succeeded")
	}
}

func TestDBConcurrentCollectionReadersAndWriters(t *testing.T) {
	db, _ := OpenMemory()
	defer db.Close()
	c, err := db.CreateCollection("conc", AccessMethod(AccessMethodHINTSharded))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := c.Insert(NewInterval(i*10, i*10+50), i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				lo := rng.Int63n(2000)
				if _, err := c.Intersecting(NewInterval(lo, lo+100)); err != nil {
					errs <- err
					return
				}
				for _, err := range c.Scan(context.Background(), Stabbing(lo)) {
					if err != nil {
						errs <- err
						return
					}
					break // early break under concurrency must stay safe
				}
			}
		}(int64(r))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := int64(0); i < 100; i++ {
				lo := rng.Int63n(2000)
				id := 10000 + seed*1000 + i
				if err := c.Insert(NewInterval(lo, lo+20), id); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if _, err := c.Delete(NewInterval(lo, lo+20), id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if _, err := c.Intersecting(NewInterval(0, 5000)); err != nil {
		t.Fatal(err)
	}
}

func TestIndexOfSharesDatabaseWithCollections(t *testing.T) {
	// The legacy Index and the collection API can share one DB.
	db, _ := OpenMemory()
	defer db.Close()
	idx, err := IndexOf(db, WithTreeName("legacy"))
	if err != nil {
		t.Fatal(err)
	}
	if idx.DB() != db {
		t.Fatal("IndexOf did not bind the DB")
	}
	if err := idx.Insert(NewInterval(1, 5), 7); err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("side", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(2, 3), 8); err != nil {
		t.Fatal(err)
	}
	if ids, _ := idx.Intersecting(NewInterval(0, 10)); !slices.Equal(ids, []int64{7}) {
		t.Fatalf("legacy ids = %v", ids)
	}
	if ids, _ := c.Intersecting(NewInterval(0, 10)); !slices.Equal(ids, []int64{8}) {
		t.Fatalf("collection ids = %v", ids)
	}
}

func TestCollectionBulkLoadFailureRollsBack(t *testing.T) {
	// A refused bulk batch must leave heap and index consistent — and the
	// database reopenable. (A hint row with a start outside ±2^59 is
	// refused by the access method, not by the generic checks.)
	dir := t.TempDir()
	path := filepath.Join(dir, "bulk.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("h", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(1, 5), 1); err != nil {
		t.Fatal(err)
	}
	bad := int64(1) << 60
	err = c.BulkLoad([]Interval{NewInterval(2, 3), NewInterval(bad, bad+1)}, []int64{2, 3})
	if err == nil {
		t.Fatal("out-of-range bulk batch accepted")
	}
	if c.Count() != 1 {
		t.Fatalf("Count after failed bulk = %d, want 1 (rolled back)", c.Count())
	}
	ids, err := c.Intersecting(NewInterval(0, 10))
	if err != nil || !slices.Equal(ids, []int64{1}) {
		t.Fatalf("post-rollback query = %v, %v", ids, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatalf("database unopenable after failed bulk load: %v", err)
	}
	defer db2.Close()
	c2, err := db2.Collection("h")
	if err != nil {
		t.Fatal(err)
	}
	if ids, _ := c2.Intersecting(NewInterval(0, 10)); !slices.Equal(ids, []int64{1}) {
		t.Fatalf("reopened query = %v", ids)
	}
}

func TestCollectionHandleInvalidatedBySQLDrop(t *testing.T) {
	// Dropping and recreating a collection through SQL must not leave
	// db.Collection serving the old handle (queries would run through the
	// dropped index while inserts hit the new table).
	db, _ := OpenMemory()
	defer db.Close()
	if _, err := db.CreateCollection("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Collection("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP COLLECTION a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Collection("a"); err == nil {
		t.Fatal("stale handle served after SQL DROP COLLECTION")
	}
	if _, err := db.Exec("CREATE COLLECTION a USING hint", nil); err != nil {
		t.Fatal(err)
	}
	c, err := db.Collection("a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Method() != "hint" {
		t.Fatalf("recreated collection method = %q, want hint", c.Method())
	}
	if err := c.Insert(NewInterval(1, 2), 9); err != nil {
		t.Fatal(err)
	}
	if ids, _ := c.Intersecting(NewInterval(0, 5)); !slices.Equal(ids, []int64{9}) {
		t.Fatalf("recreated collection query = %v", ids)
	}
}

func TestCollectionFarTailQueriesUniform(t *testing.T) {
	// Queries whose generating region starts beyond ±2^59 must answer
	// (not error) on every access method, and agree.
	db, _ := OpenMemory()
	defer db.Close()
	for _, method := range testMethods {
		c, err := db.CreateCollection("far_"+method, AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(NewInterval(10, 20), 1); err != nil {
			t.Fatal(err)
		}
		if err := c.InsertInfinite(30, 2); err != nil {
			t.Fatal(err)
		}
		// After needs i.Lower > 2^60; no admissible row qualifies, so the
		// call must return empty — not error — on every method.
		ids, err := c.Query(After, NewInterval(0, int64(1)<<60))
		if err != nil {
			t.Fatalf("%s: far-tail After errored: %v", method, err)
		}
		if len(ids) != 0 {
			t.Fatalf("%s: far-tail After = %v", method, ids)
		}
		// A far-tail intersection finds exactly the infinite interval.
		ids, err = c.Intersecting(NewInterval(int64(1)<<60, int64(1)<<60+5))
		if err != nil {
			t.Fatalf("%s: far-tail Intersecting errored: %v", method, err)
		}
		if !slices.Equal(ids, []int64{2}) {
			t.Fatalf("%s: far-tail Intersecting = %v, want [2]", method, ids)
		}
	}
}

func TestCollectionChunkedBulkLoad(t *testing.T) {
	// Chunked bulk loads must keep answering correctly on every method
	// (and, for hint, without a full rebuild per chunk).
	db, _ := OpenMemory()
	defer db.Close()
	for _, method := range testMethods {
		c, err := db.CreateCollection("chunk_"+method, AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		var all []int64
		for chunk := int64(0); chunk < 5; chunk++ {
			ivs := make([]Interval, 200)
			ids := make([]int64, 200)
			for i := range ivs {
				id := chunk*200 + int64(i)
				ivs[i] = NewInterval(id*3, id*3+50)
				ids[i] = id
				all = append(all, id)
			}
			if err := c.BulkLoad(ivs, ids); err != nil {
				t.Fatalf("%s chunk %d: %v", method, chunk, err)
			}
		}
		if c.Count() != 1000 {
			t.Fatalf("%s: Count = %d", method, c.Count())
		}
		ids, err := c.Intersecting(NewInterval(0, 5000))
		if err != nil {
			t.Fatal(err)
		}
		var want []int64
		for _, id := range all {
			if id*3 <= 5000 {
				want = append(want, id)
			}
		}
		slices.Sort(want)
		if !slices.Equal(ids, want) {
			t.Fatalf("%s: chunked load query %d ids, want %d", method, len(ids), len(want))
		}
	}
}

func TestScanCancelSurfacesOnMatchlessScan(t *testing.T) {
	// A cancelled context must surface as the iterator's final error even
	// when the query matches nothing (there is no yielded id to check at).
	db, _ := OpenMemory()
	defer db.Close()
	c, err := db.CreateCollection("empty", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(1000, 2000), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var got error
	n := 0
	for _, err := range c.Scan(ctx, Intersects(NewInterval(1, 2))) { // no matches
		n++
		got = err
	}
	if n != 1 || !errors.Is(got, context.Canceled) {
		t.Fatalf("matchless cancelled scan yielded %d pairs, err %v; want 1 pair with context.Canceled", n, got)
	}
}
