package ritree

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"ritree/internal/hint"
	"ritree/internal/obs"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	ritcore "ritree/internal/ritree"
	"ritree/internal/sqldb"
)

// DB is one embedded interval database hosting any number of named
// collections, each served by a pluggable access method (paper §5's
// extensible indexing framework made first-class). The built-in access
// methods are registered on every DB:
//
//	ritree       the paper's disk-relational Relational Interval Tree
//	hint         the main-memory HINT^m hierarchy (SIGMOD 2022)
//	hint_sharded HINT behind N independently locked shards with
//	             parallel per-shard query fan-out
//
// Collections persist in the relational catalog: reopening a file-backed
// DB re-attaches every collection's access method before the first
// statement (ritree reopens and verifies its relations, hint rebuilds
// from the heap), so a database closed with two collections serves both
// after Open.
//
// All methods are safe for concurrent use. Streaming Query cursors (and
// Collection.Scan) read from pinned page-store snapshots and hold no
// lock, so an open cursor never blocks a concurrent write; the synchronous
// collection queries share a read lock and mutations take the write lock.
// File-backed databases write ahead to a <path>.wal sidecar log and replay
// it on Open, so a crash between commit and page writeback loses nothing.
type DB struct {
	mu    sync.RWMutex
	store *pagestore.Store
	rdb   *rel.DB
	eng   *sqldb.Engine
	reg   *obs.Registry
	cols  map[string]*Collection
	// persistSnaps: Flush/Close write HINT index snapshots before the
	// page flush (file-backed databases with WithIndexSnapshots on).
	persistSnaps bool
}

// Built-in access method names for CreateCollection.
const (
	AccessMethodRITree      = ritcore.IndexTypeName
	AccessMethodHINT        = hint.IndexTypeName
	AccessMethodHINTSharded = hint.ShardedIndexTypeName
)

// CollectionInfo names one collection and the access method serving it.
type CollectionInfo = sqldb.CollectionInfo

// OpenMemory creates an empty in-memory database.
func OpenMemory(opts ...Option) (*DB, error) {
	return openMemoryCfg(applyOptions(opts))
}

// Open creates or opens the file-backed database at path. On an existing
// file, every collection and domain index recorded in the catalog is
// re-attached before Open returns; a definition that cannot be served
// (stale storage, unregistered indextype) fails the open rather than
// silently skipping index maintenance.
func Open(path string, opts ...Option) (*DB, error) {
	return openPathCfg(path, applyOptions(opts))
}

func openMemoryCfg(cfg *config) (*DB, error) {
	st, err := pagestore.New(pagestore.NewMemBackend(), pagestore.Options{
		PageSize:    cfg.pageSize,
		CacheSize:   cfg.cacheSize,
		ReadLatency: cfg.readLatency,
	})
	if err != nil {
		return nil, err
	}
	rdb, err := rel.CreateDB(st)
	if err != nil {
		return nil, err
	}
	return newDB(st, rdb, cfg, false, false)
}

func openPathCfg(path string, cfg *config) (*DB, error) {
	be, err := pagestore.OpenFileBackend(path, cfg.pageSize)
	if err != nil {
		return nil, err
	}
	// File-backed databases write ahead to a sidecar log: pagestore.New
	// replays any committed-but-unapplied tail into the backend before the
	// first read (crash recovery), and every commit thereafter reaches the
	// log's fsync before the statement returns.
	wal, err := pagestore.OpenFileWAL(path + ".wal")
	if err != nil {
		return nil, err
	}
	st, err := pagestore.New(be, pagestore.Options{
		PageSize:    cfg.pageSize,
		CacheSize:   cfg.cacheSize,
		ReadLatency: cfg.readLatency,
		WAL:         wal,
	})
	if err != nil {
		return nil, err
	}
	if st.NumAllocated() == 0 {
		rdb, err := rel.CreateDB(st)
		if err != nil {
			return nil, err
		}
		return newDB(st, rdb, cfg, false, true)
	}
	rdb, err := rel.OpenDB(st, 1)
	if err != nil {
		return nil, err
	}
	return newDB(st, rdb, cfg, true, true)
}

func newDB(st *pagestore.Store, rdb *rel.DB, cfg *config, reopened, fileBacked bool) (*DB, error) {
	// Every DB carries its own metrics registry: the page store, the SQL
	// executor, and each collection's access method publish into one
	// per-database family. The registry is attached before the catalog
	// indexes, so re-attached access methods bind their counters too.
	reg := obs.NewRegistry()
	st.SetMetrics(reg, "pagestore")
	eng := sqldb.NewEngine(rdb)
	eng.SetMetricsRegistry(reg)
	if cfg.slowQuery > 0 {
		eng.SetSlowQueryThreshold(cfg.slowQuery)
	}
	ritcore.RegisterIndexType(eng)
	hint.RegisterIndexType(eng)
	hint.RegisterShardedIndexType(eng, 0)
	eng.SetIndexSnapshotsEnabled(cfg.indexSnapshots)
	if reopened {
		// Re-attach every collection and domain index recorded in the
		// catalog, so DML maintains them across session boundaries. Failing
		// here (stale storage, unregistered indextype) is deliberate: the
		// alternative is silently serving DML that corrupts the persisted
		// index.
		if err := eng.AttachCatalogIndexes(); err != nil {
			return nil, err
		}
	}
	return &DB{
		store: st, rdb: rdb, eng: eng, reg: reg,
		cols:         make(map[string]*Collection),
		persistSnaps: cfg.indexSnapshots && fileBacked,
	}, nil
}

// collectionName constrains collection names to SQL identifiers, so a
// collection is always addressable from SQL statements.
var collectionName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

type collectionConfig struct {
	method string
	params map[string]string
}

// CollectionOption configures CreateCollection.
type CollectionOption func(*collectionConfig)

// AccessMethod selects the access method (a registered indextype name)
// serving the collection: "ritree" (default), "hint", "hint_sharded", or
// any indextype an embedder registered. See DB.AccessMethods.
func AccessMethod(name string) CollectionOption {
	return func(c *collectionConfig) { c.method = name }
}

// WithMethodParam sets one access-method parameter (the SQL WITH / Oracle
// PARAMETERS pair) for the collection. Parameters are validated by the
// indextype and persisted in the catalog, so a reopened database
// re-attaches the collection with the same configuration. The built-in
// methods accept:
//
//	hint, hint_sharded   bits, levels, shards
//	ritree               skeleton (0|1, the §7 backbone materialization)
func WithMethodParam(key, value string) CollectionOption {
	return func(c *collectionConfig) {
		if c.params == nil {
			c.params = make(map[string]string)
		}
		c.params[key] = value
	}
}

// WithHINTParams sets the HINT geometry of a hint / hint_sharded
// collection: bits is the domain width floor (0 keeps the data-sized
// default) and shards the shard count (0 keeps the method default;
// meaningful for hint_sharded). Persisted like every method parameter.
func WithHINTParams(bits, shards int) CollectionOption {
	return func(c *collectionConfig) {
		if c.params == nil {
			c.params = make(map[string]string)
		}
		if bits > 0 {
			c.params["bits"] = strconv.Itoa(bits)
		}
		if shards > 0 {
			c.params["shards"] = strconv.Itoa(shards)
		}
	}
}

// CreateCollection creates the named interval collection. The name must
// be a SQL identifier (the collection is also reachable as a table from
// Exec, with columns lower, upper, id and the INTERSECTS /
// CONTAINS_POINT operators served by its access method).
func (db *DB) CreateCollection(name string, opts ...CollectionOption) (*Collection, error) {
	var cc collectionConfig
	for _, o := range opts {
		o(&cc)
	}
	if !collectionName.MatchString(name) {
		return nil, fmt.Errorf("ritree: collection name %q is not a SQL identifier", name)
	}
	name = strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.eng.CreateCollection(name, cc.method, cc.params); err != nil {
		return nil, err
	}
	return db.collectionLocked(name)
}

// Collection returns a handle to an existing collection.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.collectionLocked(strings.ToLower(name))
}

// collectionLocked resolves (and caches) the handle. Caller holds db.mu.
// A cached handle is trusted only while its access-method index is still
// the one attached to the engine: SQL-level DROP COLLECTION / DROP TABLE
// (or a drop-and-recreate) invalidates it, and handing it out anyway
// would route queries through the dropped index.
func (db *DB) collectionLocked(name string) (*Collection, error) {
	if c, ok := db.cols[name]; ok {
		if ci, live := db.eng.CustomIndexByName(sqldb.CollectionIndexName(name)); live && ci == c.ci {
			return c, nil
		}
		delete(db.cols, name)
	}
	method, ok := db.eng.CollectionMethod(name)
	if !ok {
		return nil, fmt.Errorf("ritree: no collection %q (have %v)", name, db.collectionNames())
	}
	ci, ok := db.eng.CustomIndexByName(sqldb.CollectionIndexName(name))
	if !ok {
		return nil, fmt.Errorf("ritree: collection %q is recorded in the catalog but its access method is not attached", name)
	}
	tab, err := db.rdb.Table(name)
	if err != nil {
		return nil, err
	}
	c := &Collection{db: db, name: name, method: method, tab: tab, ci: ci}
	db.cols[name] = c
	return c, nil
}

func (db *DB) collectionNames() []string {
	var names []string
	for _, info := range db.eng.Collections() {
		names = append(names, info.Name)
	}
	return names
}

// Collections lists every collection with its access method, sorted by
// name.
func (db *DB) Collections() []CollectionInfo {
	return db.eng.Collections()
}

// DropCollection removes the named collection, its rows, and its
// access-method storage. Outstanding handles to it become invalid.
func (db *DB) DropCollection(name string) error {
	name = strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.eng.DropCollection(name); err != nil {
		return err
	}
	delete(db.cols, name)
	return nil
}

// AccessMethods lists the registered access-method (indextype) names,
// sorted.
func (db *DB) AccessMethods() []string { return db.eng.IndexTypes() }

// Exec runs a SQL statement against the embedded engine: CREATE TABLE /
// CREATE INDEX (INDEXTYPE IS ..., §5) / CREATE COLLECTION ... USING ...
// WITH (...), INSERT, DELETE, SELECT with UNION ALL, DISTINCT, ORDER BY,
// LIMIT, TABLE(:transient) sources and the ALLEN_* operators, EXPLAIN,
// and the DROP statements. Collections are visible as tables with
// columns (lower, upper, id). SELECT results are fully materialized in
// the Result; use Query for a streaming cursor.
func (db *DB) Exec(sql string, binds map[string]interface{}) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Exec(sql, binds)
}

// Query executes a SELECT statement as a streaming cursor: rows are
// produced as the underlying access-method scans advance, so
// SELECT ... LIMIT k (or an early Rows.Close) does O(k) index work
// instead of materializing the full result, and cancelling ctx stops the
// scan mid-flight, surfacing as the cursor's Err. The cursor holds no
// lock: it reads from a page-store snapshot pinned when the cursor
// opened, so concurrent writes — Insert, Delete, Exec, even on the same
// collection — proceed freely and never shift the cursor's results.
// Always Close the cursor (Next auto-closes on exhaustion); an open
// cursor pins its snapshot's pre-image retention.
func (db *DB) Query(ctx context.Context, sql string, binds map[string]interface{}) (*Rows, error) {
	return db.eng.Query(ctx, sql, binds)
}

// Begin opens an explicit transaction: SQL reads inside it answer from a
// snapshot pinned at Begin, SQL writes are buffered, and Commit applies
// them only if no concurrent writer changed a touched collection or table
// since Begin (first committer wins — Commit returns ErrTxnConflict
// otherwise and applies nothing). One transaction may be open per DB at a
// time; DDL inside it is rejected, and programmatic collection writes
// (Insert, InsertMany, Delete) remain auto-commit — they are exactly the
// concurrent writers Commit detects.
func (db *DB) Begin() (*Txn, error) {
	if _, err := db.eng.Exec("BEGIN", nil); err != nil {
		return nil, err
	}
	return &Txn{db: db}, nil
}

// ErrTxnConflict aborts a Txn.Commit whose touched tables were changed by
// a concurrent writer after Begin. The transaction is rolled back; retry
// it from Begin.
var ErrTxnConflict = sqldb.ErrTxnConflict

// Txn is an open explicit transaction (see DB.Begin).
type Txn struct {
	db   *DB
	done bool
}

// Exec runs one SQL statement inside the transaction: SELECTs read the
// transaction's snapshot, INSERT/DELETE are buffered until Commit.
func (t *Txn) Exec(sql string, binds map[string]interface{}) (*Result, error) {
	if t.done {
		return nil, fmt.Errorf("ritree: transaction already finished")
	}
	return t.db.eng.Exec(sql, binds)
}

// Commit validates and applies the transaction's buffered writes,
// returning ErrTxnConflict (wrapped) if a concurrent writer touched the
// same tables since Begin. The transaction is finished either way.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("ritree: transaction already finished")
	}
	t.done = true
	_, err := t.db.eng.Exec("COMMIT", nil)
	return err
}

// Rollback discards the transaction's buffered writes. Safe to defer
// after Begin: on a finished transaction it is a no-op.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	_, err := t.db.eng.Exec("ROLLBACK", nil)
	return err
}

// Stats returns the I/O counters of the page store.
func (db *DB) Stats() IOStats { return db.store.Stats() }

// ResetStats zeroes the I/O counters. The metrics registry (see Metrics)
// is not affected: its counters are cumulative for the DB's lifetime.
func (db *DB) ResetStats() { db.store.ResetStats() }

// Metrics returns a point-in-time snapshot of the database's metrics
// registry: page-store I/O ("pagestore.*"), SQL executor work and
// per-statement-kind latency histograms ("sql.*"), and each collection's
// access-method counters ("index.<collection>$ix.*" — RI-tree node
// visits and scratch-pool reuse, HINT partition and shard fan-out
// counts). Counters are cumulative since Open; use Snapshot.Sub to meter
// an interval of work.
func (db *DB) Metrics() MetricsSnapshot { return db.reg.Snapshot() }

// MetricsHandler serves the registry over HTTP: /metrics (the Snapshot
// as indented JSON), /debug/vars (expvar), and /debug/pprof. Mount it on
// any mux; the handler holds no locks beyond atomic counter reads.
func (db *DB) MetricsHandler() http.Handler { return obs.Handler(db.reg) }

// MetricsRegistry exposes the registry itself so embedding layers (the
// wire server) can publish their own metric families into the same
// Snapshot the SQL and pagestore counters land in.
func (db *DB) MetricsRegistry() *obs.Registry { return db.reg }

// SetPlanCacheSize caps the SQL plan cache at n entries (default
// sqldb.DefaultPlanCacheSize); 0 disables plan caching entirely.
// Cacheable SELECT plans are keyed by statement text and re-instantiated
// per execution with fresh binds, so repeated prepared-statement
// execution skips parse and plan work; hits, misses, and evictions
// surface as the "sql.plancache.*" counters and through PlanCacheStats.
func (db *DB) SetPlanCacheSize(n int) { db.eng.SetPlanCacheSize(n) }

// PlanCacheStats reports the plan cache's lifetime hit/miss/eviction
// counts and its current entry count.
func (db *DB) PlanCacheStats() (hits, misses, evictions int64, entries int) {
	return db.eng.PlanCacheStats()
}

// SetSlowQueryThreshold arms the slow-query log: any statement at or
// above d lands in a bounded ring buffer drained by SlowQueries. Zero
// disables capture (the default unless WithSlowQueryThreshold was given).
func (db *DB) SetSlowQueryThreshold(d time.Duration) { db.eng.SetSlowQueryThreshold(d) }

// SlowQueryThreshold returns the current slow-query threshold.
func (db *DB) SlowQueryThreshold() time.Duration { return db.eng.SlowQueryThreshold() }

// SetMergeJoinEnabled toggles the interval merge join. When enabled (the
// default), a SELECT joining two collections on a single ALLEN_* /
// INTERSECTS predicate over their (lower, upper) columns executes as a
// sweeping sort-merge join instead of index nested loops; EXPLAIN shows
// the chosen strategy ("INTERVAL MERGE JOIN" vs "NESTED LOOPS"), and
// Rows.Stats().JoinStrategy reports which one a cursor used. Disabling is
// a planner escape hatch for workloads where nested loops win (tiny outer
// side over a large indexed inner side).
func (db *DB) SetMergeJoinEnabled(on bool) { db.eng.SetMergeJoinEnabled(on) }

// SlowQueries drains the slow-query ring buffer, oldest first: every
// captured statement carries its SQL text, bind count, duration, cursor
// counters, and (for statements that ran a plan) the per-operator stats
// tree. The buffer keeps the most recent captures up to a fixed cap;
// draining clears it.
func (db *DB) SlowQueries() []SlowQuery { return db.eng.SlowQueries() }

// SetCheckpointThreshold makes commits checkpoint the page store (flush
// every dirty page and reset the write-ahead log) whenever the WAL
// exceeds bytes, bounding both the sidecar log's size on disk and the
// redo-replay time of the next Open. bytes <= 0 (the default) disables
// the trigger; the "wal.checkpoints" counter reports how often it
// fired. Meaningful for file-backed databases; harmless elsewhere.
func (db *DB) SetCheckpointThreshold(bytes int64) {
	db.store.SetCheckpointThreshold(bytes)
}

// Flush writes all dirty pages to the backing store, persisting index
// snapshots first on file-backed databases (see WithIndexSnapshots).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.persistSnaps {
		if err := db.eng.PersistIndexSnapshots(); err != nil {
			return err
		}
	}
	return db.rdb.Flush()
}

// Close flushes and closes the database, persisting index snapshots
// first on file-backed databases (see WithIndexSnapshots). Collection
// handles are invalid afterwards. Cursors still open when Close runs do
// not block it and do not panic: their next read fails cleanly and
// surfaces through Rows.Err.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.persistSnaps {
		if err := db.eng.PersistIndexSnapshots(); err != nil {
			return err
		}
	}
	return db.rdb.Close()
}
