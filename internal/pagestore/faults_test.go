package pagestore

import (
	"errors"
	"testing"
)

// faultBackend injects failures after a configurable number of operations —
// the storage layer must surface errors instead of corrupting state or
// panicking.
type faultBackend struct {
	inner      Backend
	readsLeft  int // fail reads once this reaches 0 (-1 = never fail)
	writesLeft int
}

var errInjected = errors.New("injected backend fault")

func (f *faultBackend) ReadPage(id PageID, buf []byte) error {
	if f.readsLeft == 0 {
		return errInjected
	}
	if f.readsLeft > 0 {
		f.readsLeft--
	}
	return f.inner.ReadPage(id, buf)
}

func (f *faultBackend) WritePage(id PageID, buf []byte) error {
	if f.writesLeft == 0 {
		return errInjected
	}
	if f.writesLeft > 0 {
		f.writesLeft--
	}
	return f.inner.WritePage(id, buf)
}

func (f *faultBackend) Sync() error  { return f.inner.Sync() }
func (f *faultBackend) Close() error { return f.inner.Close() }

func TestReadFaultSurfaces(t *testing.T) {
	fb := &faultBackend{inner: NewMemBackend(), readsLeft: -1, writesLeft: -1}
	s, err := New(fb, Options{PageSize: 256, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 12; i++ {
		id, _ := s.Allocate()
		p, _ := s.Get(id)
		p.BeginWrite()
		p.Data()[0] = byte(i)
		p.Release()
		ids = append(ids, id)
	}
	// Everything beyond the cache now needs backend reads; kill them.
	fb.readsLeft = 0
	sawError := false
	for _, id := range ids {
		p, err := s.Get(id)
		if err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawError = true
			continue
		}
		p.Release()
	}
	if !sawError {
		t.Fatal("no read fault surfaced despite failing backend")
	}
	// Recovery: backend heals, store keeps working.
	fb.readsLeft = -1
	for _, id := range ids {
		p, err := s.Get(id)
		if err != nil {
			t.Fatalf("store did not recover: %v", err)
		}
		p.Release()
	}
}

func TestWriteFaultSurfacesOnEviction(t *testing.T) {
	fb := &faultBackend{inner: NewMemBackend(), readsLeft: -1, writesLeft: -1}
	s, err := New(fb, Options{PageSize: 256, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty more pages than the cache holds with writes failing: the
	// eviction path must return the error to the allocating caller.
	fb.writesLeft = 0
	sawError := false
	for i := 0; i < 12; i++ {
		id, err := s.Allocate()
		if err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawError = true
			break
		}
		p, err := s.Get(id)
		if err != nil {
			sawError = true
			break
		}
		p.BeginWrite()
		p.Release()
	}
	if !sawError {
		t.Fatal("no write fault surfaced despite failing backend")
	}
}

func TestFlushFaultSurfaces(t *testing.T) {
	fb := &faultBackend{inner: NewMemBackend(), readsLeft: -1, writesLeft: -1}
	s, _ := New(fb, Options{PageSize: 256, CacheSize: 8})
	id, _ := s.Allocate()
	p, _ := s.Get(id)
	p.BeginWrite()
	p.Release()
	fb.writesLeft = 0
	if err := s.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll = %v, want injected fault", err)
	}
	fb.writesLeft = -1
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll after heal = %v", err)
	}
}
