package pagestore

import (
	"errors"
	"sync"
	"testing"
)

func TestSnapshotSeesOnlyCommittedState(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: NewMemWAL()})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 0x01)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	snap, err := s.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Mutate and commit twice after the snapshot was taken.
	for i := byte(2); i <= 3; i++ {
		writePage(t, s, id, 0, i)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	buf := make([]byte, 256)
	if err := snap.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x01 {
		t.Fatalf("snapshot sees %#x, want pre-mutation 0x01", buf[0])
	}
	// The live store sees the latest committed state.
	if got := readPageByte(t, s, id, 0); got != 0x03 {
		t.Fatalf("live store sees %#x, want 0x03", got)
	}
}

func TestSnapshotIgnoresUncommittedMutations(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: NewMemWAL()})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 0x10)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.AcquireSnapshot()
	defer snap.Release()
	// Uncommitted mutation after acquire.
	writePage(t, s, id, 0, 0x20)

	buf := make([]byte, 256)
	if err := snap.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x10 {
		t.Fatalf("snapshot sees uncommitted %#x, want 0x10", buf[0])
	}
}

func TestSnapshotSurvivesFreeAndReuse(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: NewMemWAL()})
	id, _ := s.Allocate()
	writePage(t, s, id, 5, 0x42)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.AcquireSnapshot()
	defer snap.Release()

	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("allocator did not reuse freed page: got %d, want %d", id2, id)
	}
	writePage(t, s, id2, 5, 0x99)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 256)
	if err := snap.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[5] != 0x42 {
		t.Fatalf("snapshot sees reused page content %#x, want original 0x42", buf[5])
	}
}

func TestSnapshotHeaderIsSynthetic(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: NewMemWAL()})
	a, _ := s.Allocate()
	writePage(t, s, a, 0, 1)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.AcquireSnapshot()
	defer snap.Release()
	// Allocate more pages after the snapshot; its view of "next" must not move.
	for i := 0; i < 4; i++ {
		id, _ := s.Allocate()
		writePage(t, s, id, 0, 1)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// A shadow store opened over the snapshot decodes the synthetic header.
	shadow, err := New(snap, Options{PageSize: 256, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := shadow.NumAllocated(); got != 1 {
		t.Fatalf("shadow NumAllocated = %d, want 1 (as of snapshot)", got)
	}
	p, err := shadow.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data()[0] != 1 {
		t.Fatalf("shadow read = %#x, want 1", p.Data()[0])
	}
	p.Release()
}

func TestSnapshotWriteRejected(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 16, WAL: NewMemWAL()})
	snap, _ := s.AcquireSnapshot()
	defer snap.Release()
	if err := snap.WritePage(1, make([]byte, 256)); !errors.Is(err, ErrSnapshotWrite) {
		t.Fatalf("WritePage = %v, want ErrSnapshotWrite", err)
	}
}

func TestSnapshotReleasePrunesVersions(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: NewMemWAL()})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 1)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.AcquireSnapshot()
	writePage(t, s, id, 0, 2)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	nv := len(s.versions)
	s.mu.Unlock()
	if nv == 0 {
		t.Fatal("expected stashed versions while snapshot live")
	}
	snap.Release()
	s.mu.Lock()
	nv = len(s.versions)
	s.mu.Unlock()
	if nv != 0 {
		t.Fatalf("versions not pruned after release: %d", nv)
	}
	// Double release is a no-op.
	snap.Release()
	buf := make([]byte, 256)
	if err := snap.ReadPage(id, buf); err == nil {
		t.Fatal("read after release succeeded")
	}
}

func TestSnapshotReadAfterStoreClose(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 16, WAL: NewMemWAL()})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 1)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.AcquireSnapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := snap.ReadPage(id, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadPage after store close = %v, want ErrClosed", err)
	}
	snap.Release()
}

// TestSnapshotReadersDoNotBlockWriters runs concurrent snapshot readers
// against a committing writer under -race; correctness is that every
// snapshot read observes exactly the value that was committed at or before
// its acquire epoch.
func TestSnapshotReadersDoNotBlockWriters(t *testing.T) {
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: NewMemWAL()})
	id, _ := s.Allocate()
	var mu sync.Mutex // engine write lock
	commit := func(v byte) {
		mu.Lock()
		p, err := s.GetMut(id)
		if err != nil {
			mu.Unlock()
			t.Error(err)
			return
		}
		p.Data()[0] = v
		// Tag the page with the value so readers can check consistency.
		p.Data()[100] = v
		p.Release()
		seq, err := s.CommitAsync()
		mu.Unlock()
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.WaitDurable(seq); err != nil {
			t.Error(err)
		}
	}
	commit(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 256)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := s.AcquireSnapshot()
				if err != nil {
					t.Error(err)
					return
				}
				if err := snap.ReadPage(id, buf); err != nil {
					t.Error(err)
					snap.Release()
					return
				}
				if buf[0] != buf[100] {
					t.Errorf("torn snapshot read: %d vs %d", buf[0], buf[100])
				}
				snap.Release()
			}
		}()
	}
	for v := byte(2); v < 60; v++ {
		commit(v)
	}
	close(stop)
	wg.Wait()
}
