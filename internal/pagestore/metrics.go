package pagestore

import "ritree/internal/obs"

// storeMetrics mirrors the Stats counters into a DB-level obs registry
// family. The mu-guarded Stats struct stays the source of truth for
// consistent per-operation snapshots (Stats()/Sub); the obs counters are
// the always-on aggregate view served over expvar/HTTP. A nil
// *storeMetrics is valid and every method is a no-op, so the hot paths
// carry no conditionals of their own.
type storeMetrics struct {
	logicalReads   *obs.Counter
	physicalReads  *obs.Counter
	physicalWrites *obs.Counter
	evictions      *obs.Counter
	allocations    *obs.Counter
	frees          *obs.Counter
	// wal.* family: the commit/durability pipeline. Batch size of group
	// commit is walBatchedCommits / walFsyncs.
	walCommits         *obs.Counter
	walPages           *obs.Counter
	walFsyncs          *obs.Counter
	walBatchedCommits  *obs.Counter
	walResets          *obs.Counter
	walCheckpoints     *obs.Counter
	walRecoveredCommit *obs.Counter
	walRecoveredPages  *obs.Counter
}

func (m *storeMetrics) logicalRead() {
	if m != nil {
		m.logicalReads.Inc()
	}
}

func (m *storeMetrics) physicalRead() {
	if m != nil {
		m.physicalReads.Inc()
	}
}

func (m *storeMetrics) logicalReadN(n int64) {
	if m != nil {
		m.logicalReads.Add(n)
	}
}

func (m *storeMetrics) physicalReadN(n int64) {
	if m != nil {
		m.physicalReads.Add(n)
	}
}

func (m *storeMetrics) physicalWrite() {
	if m != nil {
		m.physicalWrites.Inc()
	}
}

func (m *storeMetrics) eviction() {
	if m != nil {
		m.evictions.Inc()
	}
}

func (m *storeMetrics) allocation() {
	if m != nil {
		m.allocations.Inc()
	}
}

func (m *storeMetrics) free() {
	if m != nil {
		m.frees.Inc()
	}
}

// walCommit records one commit that reached a boundary (pages = page
// images appended to the WAL; 0 when the store runs without one).
func (m *storeMetrics) walCommit(pages int) {
	if m != nil {
		m.walCommits.Inc()
		if pages > 0 {
			m.walPages.Add(int64(pages))
		}
	}
}

// walFsync records one WAL fsync that made `batch` commits durable.
func (m *storeMetrics) walFsync(batch uint64) {
	if m != nil {
		m.walFsyncs.Inc()
		m.walBatchedCommits.Add(int64(batch))
	}
}

func (m *storeMetrics) walReset() {
	if m != nil {
		m.walResets.Inc()
	}
}

// walCheckpoint records one checkpoint triggered by the WAL size
// threshold (every checkpoint also shows up in wal.resets).
func (m *storeMetrics) walCheckpoint() {
	if m != nil {
		m.walCheckpoints.Inc()
	}
}

// SetMetrics mirrors the store's I/O counters into reg under prefix
// (empty: "pagestore"): "<prefix>.logical_reads" and so on. Counter
// resolution is get-or-create, so several stores may aggregate into one
// family. ResetStats does not touch the registry — the obs counters are
// cumulative for the registry's lifetime. Pass reg == nil to detach.
func (s *Store) SetMetrics(reg *obs.Registry, prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.obsm = nil
		return
	}
	if prefix == "" {
		prefix = "pagestore"
	}
	s.obsm = &storeMetrics{
		logicalReads:   reg.Counter(prefix + ".logical_reads"),
		physicalReads:  reg.Counter(prefix + ".physical_reads"),
		physicalWrites: reg.Counter(prefix + ".physical_writes"),
		evictions:      reg.Counter(prefix + ".evictions"),
		allocations:    reg.Counter(prefix + ".allocations"),
		frees:          reg.Counter(prefix + ".frees"),
		// The wal.* family is registered without the store prefix: it is
		// the engine-wide commit pipeline, shared by the metrics gate.
		walCommits:         reg.Counter("wal.commits"),
		walPages:           reg.Counter("wal.pages"),
		walFsyncs:          reg.Counter("wal.fsyncs"),
		walBatchedCommits:  reg.Counter("wal.batched_commits"),
		walResets:          reg.Counter("wal.resets"),
		walCheckpoints:     reg.Counter("wal.checkpoints"),
		walRecoveredCommit: reg.Counter("wal.recovered_commits"),
		walRecoveredPages:  reg.Counter("wal.recovered_pages"),
	}
	// Publish what recovery replayed at open, once per store.
	if !s.recoveryPublished && (s.recovery.Commits > 0 || s.recovery.Pages > 0) {
		s.obsm.walRecoveredCommit.Add(int64(s.recovery.Commits))
		s.obsm.walRecoveredPages.Add(int64(s.recovery.Pages))
	}
	s.recoveryPublished = true
}
