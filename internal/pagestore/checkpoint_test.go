package pagestore

import (
	"path/filepath"
	"testing"

	"ritree/internal/obs"
)

func TestCheckpointThresholdResetsWAL(t *testing.T) {
	w := NewMemWAL()
	s, err := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 32, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.SetMetrics(reg, "")
	// Threshold far above one commit's batch: the first commits accumulate.
	s.SetCheckpointThreshold(4096)
	id, _ := s.Allocate()
	for i := 0; i < 3; i++ {
		writePage(t, s, id, 0, byte(i+1))
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() == 0 {
		t.Fatal("WAL empty before the threshold was reached — test premise lost")
	}
	if got := reg.Snapshot().Counter("wal.checkpoints"); got != 0 {
		t.Fatalf("wal.checkpoints = %d before threshold, want 0", got)
	}
	// Push the log over the threshold: the triggering commit must
	// checkpoint inline, leaving an empty WAL and a durable backend.
	for w.Len() > 0 {
		writePage(t, s, id, 0, 0xee)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counter("wal.checkpoints"); got != 1 {
		t.Fatalf("wal.checkpoints = %d after threshold crossing, want 1", got)
	}
	// The checkpointed state must be readable without any WAL replay.
	s2, err := New(s.backend, Options{PageSize: 256, CacheSize: 32, WAL: NewMemWAL()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data()[0] != 0xee {
		t.Fatalf("checkpointed page reads %#x, want 0xee", p.Data()[0])
	}
	p.Release()
}

func TestCheckpointThresholdDisabledByDefault(t *testing.T) {
	w := NewMemWAL()
	s, err := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 32, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	for i := 0; i < 10; i++ {
		writePage(t, s, id, 0, byte(i))
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() == 0 {
		t.Fatal("WAL reset without a threshold configured")
	}
}

func TestFileWALSizeTracksAppendsAndReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Size() != 0 {
		t.Fatalf("fresh WAL size = %d", w.Size())
	}
	data := make([]byte, 128)
	if err := w.AppendPage(3, data); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	want := int64(13+128) + 5 // page record framing + commit record
	if w.Size() != want {
		t.Fatalf("size = %d, want %d", w.Size(), want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening derives the size from the file.
	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Size() != want {
		t.Fatalf("reopened size = %d, want %d", w2.Size(), want)
	}
	if err := w2.Reset(); err != nil {
		t.Fatal(err)
	}
	if w2.Size() != 0 {
		t.Fatalf("size after Reset = %d", w2.Size())
	}
}
