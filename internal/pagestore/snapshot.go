package pagestore

import (
	"errors"
	"fmt"
)

// ErrSnapshotWrite is returned when something attempts to write through a
// snapshot (snapshots are strictly read-only).
var ErrSnapshotWrite = errors.New("pagestore: write through a read-only snapshot")

// Snapshot is a consistent read-only view of the store as of the commit
// epoch at which it was acquired. It implements Backend, so a second
// (read-only) Store — and the whole relational stack above it — can be
// opened over a snapshot and scanned while writers keep committing to the
// live store:
//
//	sn, _ := st.AcquireSnapshot()
//	shadow, _ := pagestore.New(sn, pagestore.Options{PageSize: st.PageSize()})
//	... read through shadow ...
//	sn.Release()
//
// How it stays consistent: Store.BeginWrite stashes the pre-image of a
// page the first time it is mutated in an epoch while snapshots are live
// (copy-on-write at page granularity), so ReadPage serves the newest stash
// whose tag covers the snapshot's epoch, else the live frame, else the
// backend — all copied under the store mutex, so a reader never borrows a
// byte slice a writer is mutating.
//
// Snapshots must be acquired at a committed boundary (no page mutated
// since the last Commit); the engine layer guarantees this by acquiring
// under the same lock that serializes write statements.
//
// Never call FlushAll/Close on a store opened over a Snapshot — writes
// (including the header writeback) fail with ErrSnapshotWrite. Drop the
// shadow store and Release the snapshot instead.
type Snapshot struct {
	s        *Store
	se       uint64 // commit epoch this snapshot observes
	next     PageID // allocator high-water mark at acquire
	released bool   // guarded by s.mu
}

// AcquireSnapshot pins the current commit epoch for reading. Callers must
// Release it; live snapshots retain pre-images of every page mutated after
// them, so leaking snapshots leaks memory proportional to write traffic.
func (s *Store) AcquireSnapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.snaps == nil {
		s.snaps = make(map[uint64]int)
	}
	s.snaps[s.epoch]++
	return &Snapshot{s: s, se: s.epoch, next: s.next}, nil
}

// Epoch returns the commit epoch the snapshot observes.
func (sn *Snapshot) Epoch() uint64 { return sn.se }

// Release unpins the snapshot and prunes pre-images no live snapshot
// needs. Idempotent.
func (sn *Snapshot) Release() {
	s := sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn.released {
		return
	}
	sn.released = true
	if n := s.snaps[sn.se]; n > 1 {
		s.snaps[sn.se] = n - 1
		return
	}
	delete(s.snaps, sn.se)
	s.pruneVersionsLocked()
}

// pruneVersionsLocked drops stashed pre-images that no live snapshot can
// reach: a version tagged T serves snapshots with epoch <= T only.
func (s *Store) pruneVersionsLocked() {
	if len(s.snaps) == 0 {
		s.versions = nil
		return
	}
	min := ^uint64(0)
	for se := range s.snaps {
		if se < min {
			min = se
		}
	}
	for id, vs := range s.versions {
		keep := vs[:0]
		for _, v := range vs {
			if v.tag >= min {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			delete(s.versions, id)
		} else {
			s.versions[id] = keep
		}
	}
}

// ReadPage implements Backend: it serves the page contents as of the
// snapshot's epoch.
func (sn *Snapshot) ReadPage(id PageID, buf []byte) error {
	s := sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if sn.released {
		return fmt.Errorf("pagestore: read through released snapshot (page %d)", id)
	}
	if id == 0 {
		// The backend's header page is only current as of the last flush;
		// compose one from the state captured at acquire. The free list is
		// reported empty — a read-only store never allocates.
		composeHeaderInto(buf, s.opts.PageSize, sn.next, nil)
		return nil
	}
	// Oldest stash tagged at-or-after the snapshot epoch is the page's
	// content as of that epoch (versions are appended in tag order).
	for _, v := range s.versions[id] {
		if v.tag >= sn.se {
			copy(buf, v.data)
			return nil
		}
	}
	if f, ok := s.frames[id]; ok {
		copy(buf, f.data)
		return nil
	}
	return s.backend.ReadPage(id, buf)
}

// WritePage implements Backend and always fails: snapshots are read-only.
func (sn *Snapshot) WritePage(id PageID, buf []byte) error { return ErrSnapshotWrite }

// Sync implements Backend as a no-op (nothing to make durable).
func (sn *Snapshot) Sync() error { return nil }

// Close implements Backend as a no-op; release the snapshot with Release.
func (sn *Snapshot) Close() error { return nil }
