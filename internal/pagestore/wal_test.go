package pagestore

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// writePage mutates one byte of page id under the BeginWrite protocol.
func writePage(t *testing.T, s *Store, id PageID, off int, val byte) {
	t.Helper()
	p, err := s.GetMut(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Data()[off] = val
	p.Release()
}

func readPageByte(t *testing.T, s *Store, id PageID, off int) byte {
	t.Helper()
	p, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	return p.Data()[off]
}

func TestWALCommitRecoversAfterCrash(t *testing.T) {
	backend := NewMemBackend()
	wal := NewMemWAL()
	s, err := New(backend, Options{PageSize: 256, CacheSize: 64, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		writePage(t, s, id, 3, byte(0x40+i))
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the store without Close/FlushAll. The cache was big
	// enough that nothing was written back, so the backend holds only what
	// recovery replays.
	s2, err := New(backend, Options{PageSize: 256, CacheSize: 64, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	rs := s2.RecoveryStats()
	if rs.Commits != 1 || rs.Pages == 0 || rs.Torn {
		t.Fatalf("recovery = %+v, want 1 untorn commit with pages", rs)
	}
	if got := s2.NumAllocated(); got != 5 {
		t.Fatalf("NumAllocated after recovery = %d, want 5", got)
	}
	for i, id := range ids {
		if got := readPageByte(t, s2, id, 3); got != byte(0x40+i) {
			t.Fatalf("page %d byte = %#x, want %#x", id, got, 0x40+i)
		}
	}
	if wal.Len() != 0 {
		t.Fatalf("wal not reset after replay: %d bytes", wal.Len())
	}
}

func TestWALUncommittedBatchIsLost(t *testing.T) {
	backend := NewMemBackend()
	wal := NewMemWAL()
	s, _ := New(backend, Options{PageSize: 256, CacheSize: 64, WAL: wal})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 0xAA)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second batch that never commits.
	writePage(t, s, id, 0, 0xBB)
	id2, _ := s.Allocate()
	writePage(t, s, id2, 0, 0xCC)

	s2, err := New(backend, Options{PageSize: 256, CacheSize: 64, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.NumAllocated(); got != 1 {
		t.Fatalf("NumAllocated = %d, want 1 (second allocation uncommitted)", got)
	}
	if got := readPageByte(t, s2, id, 0); got != 0xAA {
		t.Fatalf("page byte = %#x, want committed 0xAA", got)
	}
}

// TestWALCrashAtEveryTruncation is the crash matrix: a workload of commits
// is run with nothing written back to the backend, then the WAL is cut at
// every possible byte length. Reopening must always recover exactly the
// state of the last complete commit batch in the prefix — never a torn
// in-between state.
func TestWALCrashAtEveryTruncation(t *testing.T) {
	wal := NewMemWAL()
	s, err := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	// expected[j] = (allocated count, page contents) after commit j.
	type state struct {
		alloc int
		bytes map[PageID]byte
	}
	expected := []state{{0, nil}}
	boundaries := []int{0}
	cur := map[PageID]byte{}
	var ids []PageID
	for commit := 1; commit <= 4; commit++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		for i, id := range ids {
			v := byte(commit*16 + i)
			writePage(t, s, id, 7, v)
			cur[id] = v
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		snap := make(map[PageID]byte, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		expected = append(expected, state{alloc: len(ids), bytes: snap})
		boundaries = append(boundaries, wal.Len())
	}
	log := append([]byte(nil), wal.Bytes()...)

	for k := 0; k <= len(log); k++ {
		trial := NewMemWAL()
		trial.SetBytes(append([]byte(nil), log[:k]...))
		s2, err := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 64, WAL: trial})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", k, err)
		}
		// How many complete batches fit in the prefix?
		want := 0
		for j, b := range boundaries {
			if k >= b {
				want = j
			}
		}
		rs := s2.RecoveryStats()
		if rs.Commits != want {
			t.Fatalf("cut %d: recovered %d commits, want %d", k, rs.Commits, want)
		}
		atBoundary := k == boundaries[want]
		if rs.Torn == atBoundary {
			t.Fatalf("cut %d: Torn = %v, boundary = %v", k, rs.Torn, atBoundary)
		}
		exp := expected[want]
		if got := s2.NumAllocated(); got != exp.alloc {
			t.Fatalf("cut %d: NumAllocated = %d, want %d", k, got, exp.alloc)
		}
		for id, v := range exp.bytes {
			if got := readPageByte(t, s2, id, 7); got != v {
				t.Fatalf("cut %d: page %d = %#x, want %#x", k, id, got, v)
			}
		}
	}
}

func TestFileWALPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "pages.db")
	walPath := dbPath + ".wal"

	b, err := OpenFileBackend(dbPath, 256)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenFileWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(b, Options{PageSize: 256, CacheSize: 64, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	writePage(t, s, id, 9, 0x7E)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: close the file handles without flushing the store.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	b2, _ := OpenFileBackend(dbPath, 256)
	w2, _ := OpenFileWAL(walPath)
	s2, err := New(b2, Options{PageSize: 256, CacheSize: 64, WAL: w2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs := s2.RecoveryStats(); rs.Commits != 1 {
		t.Fatalf("recovery = %+v, want 1 commit", rs)
	}
	if got := readPageByte(t, s2, id, 9); got != 0x7E {
		t.Fatalf("recovered byte = %#x, want 0x7E", got)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	backend := NewMemBackend()
	wal := NewMemWAL()
	s, _ := New(backend, Options{PageSize: 256, CacheSize: 64, WAL: wal})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 0x11)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if wal.Len() == 0 {
		t.Fatal("wal empty after commit")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if wal.Len() != 0 {
		t.Fatalf("wal not truncated by checkpoint: %d bytes", wal.Len())
	}
	// The backend alone now carries the state.
	s2, err := New(backend, Options{PageSize: 256, CacheSize: 64, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if rs := s2.RecoveryStats(); rs.Commits != 0 {
		t.Fatalf("recovery after checkpoint = %+v, want nothing", rs)
	}
	if got := readPageByte(t, s2, id, 0); got != 0x11 {
		t.Fatalf("byte after checkpointed reopen = %#x, want 0x11", got)
	}
}

// TestNoStealKeepsUncommittedPagesOutOfBackend drives the cache over
// capacity with uncommitted dirty pages: the no-steal rule must hold them
// in memory rather than leak an uncommitted image to the backend.
func TestNoStealKeepsUncommittedPagesOutOfBackend(t *testing.T) {
	backend := NewMemBackend()
	wal := NewMemWAL()
	s, _ := New(backend, Options{PageSize: 256, CacheSize: 4, WAL: wal})
	var ids []PageID
	for i := 0; i < 12; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		writePage(t, s, id, 0, byte(i+1))
	}
	buf := make([]byte, 256)
	for _, id := range ids {
		if err := backend.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, make([]byte, 256)) {
			t.Fatalf("uncommitted page %d reached the backend", id)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Commit makes them loggable; cache pressure may now write them back.
	for i := 0; i < 8; i++ {
		id, _ := s.Allocate()
		writePage(t, s, id, 0, 0xFF)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if got := readPageByte(t, s, id, 0); got != byte(i+1) {
			t.Fatalf("page %d = %#x after pressure, want %#x", id, got, i+1)
		}
	}
}

// slowWAL delays Sync so concurrent committers pile up behind the leader.
type slowWAL struct {
	*MemWAL
	delay time.Duration
}

func (w *slowWAL) Sync() error {
	time.Sleep(w.delay)
	return w.MemWAL.Sync()
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	wal := &slowWAL{MemWAL: NewMemWAL(), delay: 2 * time.Millisecond}
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 256, WAL: wal})
	const workers, commitsPer = 8, 10
	ids := make([]PageID, workers)
	for i := range ids {
		ids[i], _ = s.Allocate()
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	base := wal.Syncs()

	// The engine pattern: mutate + CommitAsync under a shared write lock,
	// WaitDurable outside it.
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < commitsPer; c++ {
				mu.Lock()
				p, err := s.GetMut(ids[w])
				if err != nil {
					mu.Unlock()
					errs <- err
					return
				}
				p.Data()[c] = byte(w + 1)
				p.Release()
				seq, err := s.CommitAsync()
				mu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if err := s.WaitDurable(seq); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := workers * commitsPer
	syncs := wal.Syncs() - base
	if syncs <= 0 || syncs >= int64(total) {
		t.Fatalf("syncs = %d for %d commits, want batching (0 < syncs < commits)", syncs, total)
	}
	t.Logf("group commit: %d commits in %d fsyncs", total, syncs)
}

// faultWAL fails appends/syncs after a countdown, mirroring faultBackend.
type faultWAL struct {
	inner      WAL
	appendLeft int
	syncsLeft  int
}

var errWALInjected = errors.New("injected wal fault")

func (w *faultWAL) AppendPage(id PageID, data []byte) error {
	if w.appendLeft == 0 {
		return errWALInjected
	}
	if w.appendLeft > 0 {
		w.appendLeft--
	}
	return w.inner.AppendPage(id, data)
}

func (w *faultWAL) AppendCommit() error {
	if w.appendLeft == 0 {
		return errWALInjected
	}
	if w.appendLeft > 0 {
		w.appendLeft--
	}
	return w.inner.AppendCommit()
}

func (w *faultWAL) Sync() error {
	if w.syncsLeft == 0 {
		return errWALInjected
	}
	if w.syncsLeft > 0 {
		w.syncsLeft--
	}
	return w.inner.Sync()
}

func (w *faultWAL) Reset() error { return w.inner.Reset() }
func (w *faultWAL) Size() int64  { return w.inner.Size() }
func (w *faultWAL) Replay(ps int, apply func(PageID, []byte) error) (RecoveryStats, error) {
	return w.inner.Replay(ps, apply)
}
func (w *faultWAL) Close() error { return w.inner.Close() }

func TestWALFaultsSurfaceOnCommit(t *testing.T) {
	fw := &faultWAL{inner: NewMemWAL(), appendLeft: -1, syncsLeft: -1}
	s, _ := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 16, WAL: fw})
	id, _ := s.Allocate()
	writePage(t, s, id, 0, 1)
	fw.appendLeft = 0
	if err := s.Commit(); !errors.Is(err, errWALInjected) {
		t.Fatalf("Commit with failing append = %v, want injected fault", err)
	}
	fw.appendLeft = -1
	fw.syncsLeft = 0
	if err := s.Commit(); !errors.Is(err, errWALInjected) {
		t.Fatalf("Commit with failing sync = %v, want injected fault", err)
	}
	// Heal: the batch is re-attempted (pages were never marked clean).
	fw.syncsLeft = -1
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit after heal = %v", err)
	}
	if got := readPageByte(t, s, id, 0); got != 1 {
		t.Fatalf("byte = %d, want 1", got)
	}
}
