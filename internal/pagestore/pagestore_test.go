package pagestore

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func TestAllocateGetRelease(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 8})
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("allocated InvalidPage")
	}
	p, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data()) != 256 {
		t.Fatalf("page size = %d, want 256", len(p.Data()))
	}
	for i, b := range p.Data() {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %d, want 0", i, b)
		}
	}
	p.BeginWrite()
	p.Data()[0] = 42
	p.Release()

	p2, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Data()[0] != 42 {
		t.Fatalf("page content lost: got %d", p2.Data()[0])
	}
	p2.Release()
}

func TestGetInvalidPage(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 8})
	if _, err := s.Get(InvalidPage); err == nil {
		t.Fatal("Get(InvalidPage) succeeded")
	}
	if _, err := s.Get(99); err == nil {
		t.Fatal("Get of never-allocated page succeeded")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 4})
	ids := make([]PageID, 16)
	for i := range ids {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		p, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		p.BeginWrite()
		p.Data()[0] = byte(i + 1)
		p.Release()
	}
	// All pages must survive eviction through the tiny cache.
	for i, id := range ids {
		p, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Data()[0]; got != byte(i+1) {
			t.Fatalf("page %d content = %d, want %d", id, got, i+1)
		}
		p.Release()
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with 16 pages in a 4-page cache")
	}
	if st.PhysicalWrites == 0 {
		t.Fatal("expected physical writes from dirty evictions")
	}
}

func TestStatsHitsAndMisses(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 8})
	id, _ := s.Allocate()
	s.ResetStats()

	// First Get after reset: page is still cached from Allocate -> hit.
	p, _ := s.Get(id)
	p.Release()
	st := s.Stats()
	if st.LogicalReads != 1 || st.PhysicalReads != 0 {
		t.Fatalf("stats after cached get = %+v, want 1 logical / 0 physical", st)
	}

	// Force eviction, then Get again -> miss.
	for i := 0; i < 20; i++ {
		nid, _ := s.Allocate()
		p, _ := s.Get(nid)
		p.Release()
	}
	s.ResetStats()
	p, _ = s.Get(id)
	p.Release()
	st = s.Stats()
	if st.PhysicalReads != 1 {
		t.Fatalf("stats after evicted get = %+v, want 1 physical read", st)
	}
	if st.Hits() != 0 {
		t.Fatalf("Hits() = %d, want 0", st.Hits())
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 8})
	id, _ := s.Allocate()
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, _ := s.Allocate()
	if id2 != id {
		t.Fatalf("freed page not reused: got %d, want %d", id2, id)
	}
	// Reused page must read as zeroes even though it held data before.
	p, _ := s.Get(id2)
	for i, b := range p.Data() {
		if b != 0 {
			t.Fatalf("reused page byte %d = %d, want 0", i, b)
		}
	}
	p.Release()
	if s.NumAllocated() != 1 {
		t.Fatalf("NumAllocated = %d, want 1", s.NumAllocated())
	}
}

func TestFreePinnedPageFails(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 8})
	id, _ := s.Allocate()
	p, _ := s.Get(id)
	if err := s.Free(id); err != ErrPinned {
		t.Fatalf("Free(pinned) = %v, want ErrPinned", err)
	}
	p.Release()
	if err := s.Free(id); err != nil {
		t.Fatalf("Free after release: %v", err)
	}
}

func TestPinnedPagesSurviveCachePressure(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 4})
	// Pin more pages than the cache holds; store must over-allocate
	// rather than evict pinned frames.
	var pages []*Page
	for i := 0; i < 8; i++ {
		id, _ := s.Allocate()
		p, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		p.BeginWrite()
		p.Data()[0] = byte(i + 1)
		pages = append(pages, p)
	}
	for i, p := range pages {
		if p.Data()[0] != byte(i+1) {
			t.Fatalf("pinned page %d corrupted", i)
		}
		p.Release()
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(NewMemBackend(), Options{PageSize: 100}); err == nil {
		t.Fatal("accepted non-power-of-two page size")
	}
	if _, err := New(NewMemBackend(), Options{PageSize: 64}); err == nil {
		t.Fatal("accepted page size below minimum")
	}
	if _, err := New(NewMemBackend(), Options{PageSize: 256, CacheSize: 1}); err == nil {
		t.Fatal("accepted cache size below minimum")
	}
}

func TestCloseThenOps(t *testing.T) {
	s := NewMem(Options{PageSize: 256, CacheSize: 8})
	id, _ := s.Allocate()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Get(id); err != ErrClosed {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if _, err := s.Allocate(); err != ErrClosed {
		t.Fatalf("Allocate after close = %v, want ErrClosed", err)
	}
}

func TestFileBackendPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")

	b, err := OpenFileBackend(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(b, Options{PageSize: 256, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, _ := s.Allocate()
		ids = append(ids, id)
		p, _ := s.Get(id)
		p.BeginWrite()
		p.Data()[5] = byte(0x10 + i)
		p.Release()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify contents plus allocator state.
	b2, err := OpenFileBackend(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(b2, Options{PageSize: 256, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, id := range ids {
		p, err := s2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Data()[5] != byte(0x10+i) {
			t.Fatalf("page %d byte = %#x, want %#x", id, p.Data()[5], 0x10+i)
		}
		p.Release()
	}
	nid, _ := s2.Allocate()
	for _, old := range ids {
		if nid == old {
			t.Fatalf("allocator reused live page %d after reopen", nid)
		}
	}
}

func TestFileBackendPageSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	b, _ := OpenFileBackend(path, 256)
	s, _ := New(b, Options{PageSize: 256, CacheSize: 8})
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b2, _ := OpenFileBackend(path, 512)
	if _, err := New(b2, Options{PageSize: 512, CacheSize: 8}); err == nil {
		t.Fatal("opened 256-byte-page store with 512-byte pages")
	}
}

func TestFreeListPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	b, _ := OpenFileBackend(path, 256)
	s, _ := New(b, Options{PageSize: 256, CacheSize: 8})
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, _ := s.Allocate()
		ids = append(ids, id)
	}
	for _, id := range ids[1:4] {
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	b2, _ := OpenFileBackend(path, 256)
	s2, _ := New(b2, Options{PageSize: 256, CacheSize: 8})
	defer s2.Close()
	if got := s2.NumAllocated(); got != 3 {
		t.Fatalf("NumAllocated after reopen = %d, want 3", got)
	}
	// The three freed pages must come back before any new page.
	seen := map[PageID]bool{ids[1]: true, ids[2]: true, ids[3]: true}
	for i := 0; i < 3; i++ {
		id, _ := s2.Allocate()
		if !seen[id] {
			t.Fatalf("allocation %d returned %d, not one of the freed pages", i, id)
		}
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	// Model: map[PageID][]byte. Random allocate/get+write/free/flush mixed,
	// verified against the model throughout.
	rng := rand.New(rand.NewSource(7))
	s := NewMem(Options{PageSize: 128, CacheSize: 4})
	model := make(map[PageID][]byte)
	var live []PageID
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // allocate
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			model[id] = make([]byte, 128)
			live = append(live, id)
		case op < 7 && len(live) > 0: // write random bytes
			id := live[rng.Intn(len(live))]
			p, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			off := rng.Intn(128)
			val := byte(rng.Intn(256))
			p.BeginWrite()
			p.Data()[off] = val
			model[id][off] = val
			p.Release()
		case op < 8 && len(live) > 1: // free
			i := rng.Intn(len(live))
			id := live[i]
			if err := s.Free(id); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
			live = append(live[:i], live[i+1:]...)
		case op < 9: // flush
			if err := s.FlushAll(); err != nil {
				t.Fatal(err)
			}
		default: // verify one random page
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			p, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			for i := range p.Data() {
				if p.Data()[i] != model[id][i] {
					t.Fatalf("step %d: page %d byte %d = %d, model %d",
						step, id, i, p.Data()[i], model[id][i])
				}
			}
			p.Release()
		}
	}
	// Final full verification.
	for id, want := range model {
		p, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if p.Data()[i] != want[i] {
				t.Fatalf("final: page %d byte %d mismatch", id, i)
			}
		}
		p.Release()
	}
}
