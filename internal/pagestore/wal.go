package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL is a redo-only write-ahead log of full page images. The store appends
// the after-image of every dirty page followed by a commit record, then
// fsyncs the log (batched across concurrent committers, see Store.Commit)
// before the pages are allowed to reach the backend. On open the store
// replays every complete commit batch into the backend, so a crash at any
// point loses at most the uncommitted tail.
//
// Implementations must tolerate Append* and Sync being called from different
// goroutines (appends are serialized by the store; Sync is issued by the
// group-commit leader).
type WAL interface {
	// AppendPage logs the after-image of page id.
	AppendPage(id PageID, data []byte) error
	// AppendCommit marks every page image appended since the previous
	// commit record as an atomic batch.
	AppendCommit() error
	// Sync makes all appended records durable.
	Sync() error
	// Reset discards the log contents (after a checkpoint has made the
	// backend itself durable).
	Reset() error
	// Size reports the current log size in bytes (appended, not
	// necessarily synced). Drives the store's checkpoint threshold.
	Size() int64
	// Replay feeds every page image of every complete commit batch, in log
	// order, to apply. Incomplete or corrupt tails are not errors: replay
	// stops there and reports Torn. pageSize guards against mismatched logs.
	Replay(pageSize int, apply func(id PageID, data []byte) error) (RecoveryStats, error)
	// Close releases log resources.
	Close() error
}

// RecoveryStats describes what a WAL replay recovered.
type RecoveryStats struct {
	Commits int  // complete commit batches applied
	Pages   int  // page images applied
	Torn    bool // the log ended mid-record or mid-batch (tail discarded)
}

// Log record framing. Every record carries a trailing CRC32 (IEEE) of the
// bytes before it; a mismatch or a short read marks the torn tail.
//
//	page record:   [recPage][pageID u32][len u32][data ...][crc u32]
//	commit record: [recCommit][crc u32]
const (
	recPage   = byte(1)
	recCommit = byte(2)
)

// ErrWALPageSize is returned by Replay when a logged image does not match
// the page size of the opening store.
var ErrWALPageSize = errors.New("pagestore: wal page size mismatch")

func appendPageRecord(dst []byte, id PageID, data []byte) []byte {
	start := len(dst)
	dst = append(dst, recPage)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(id))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(data)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, data...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, crc[:]...)
}

func appendCommitRecord(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, recCommit)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, crc[:]...)
}

// replayBytes decodes log (the raw WAL byte stream) and applies complete
// commit batches. Shared by both WAL implementations.
func replayBytes(log []byte, pageSize int, apply func(id PageID, data []byte) error) (RecoveryStats, error) {
	var st RecoveryStats
	type img struct {
		id   PageID
		data []byte
	}
	var pending []img
	off := 0
	for off < len(log) {
		switch log[off] {
		case recPage:
			// type + id + len + data + crc
			if off+9 > len(log) {
				st.Torn = true
				return st, nil
			}
			n := int(binary.LittleEndian.Uint32(log[off+5 : off+9]))
			end := off + 9 + n + 4
			if n < 0 || n > 1<<26 || end > len(log) {
				st.Torn = true
				return st, nil
			}
			want := binary.LittleEndian.Uint32(log[end-4 : end])
			if crc32.ChecksumIEEE(log[off:end-4]) != want {
				st.Torn = true
				return st, nil
			}
			if n != pageSize {
				return st, fmt.Errorf("%w: logged %d, store %d", ErrWALPageSize, n, pageSize)
			}
			id := PageID(binary.LittleEndian.Uint32(log[off+1 : off+5]))
			pending = append(pending, img{id: id, data: log[off+9 : off+9+n]})
			off = end
		case recCommit:
			end := off + 5
			if end > len(log) {
				st.Torn = true
				return st, nil
			}
			want := binary.LittleEndian.Uint32(log[end-4 : end])
			if crc32.ChecksumIEEE(log[off:off+1]) != want {
				st.Torn = true
				return st, nil
			}
			for _, im := range pending {
				if err := apply(im.id, im.data); err != nil {
					return st, err
				}
				st.Pages++
			}
			st.Commits++
			pending = pending[:0]
			off = end
		default:
			st.Torn = true
			return st, nil
		}
	}
	if len(pending) > 0 {
		st.Torn = true // page images with no commit record behind them
	}
	return st, nil
}

// MemWAL is an in-memory WAL, useful for tests and for exercising the
// commit protocol without a filesystem. Sync is a counted no-op.
type MemWAL struct {
	log   []byte
	syncs int64
}

// NewMemWAL returns an empty in-memory WAL.
func NewMemWAL() *MemWAL { return &MemWAL{} }

func (w *MemWAL) AppendPage(id PageID, data []byte) error {
	w.log = appendPageRecord(w.log, id, data)
	return nil
}

func (w *MemWAL) AppendCommit() error {
	w.log = appendCommitRecord(w.log)
	return nil
}

func (w *MemWAL) Sync() error { w.syncs++; return nil }

// Syncs returns how many times Sync was called (group-commit batching
// makes this smaller than the number of commits under contention).
func (w *MemWAL) Syncs() int64 { return w.syncs }

// Len returns the current log size in bytes.
func (w *MemWAL) Len() int { return len(w.log) }

func (w *MemWAL) Size() int64 { return int64(len(w.log)) }

// Bytes returns the raw log contents (borrowed; for tests that simulate
// torn writes by truncating).
func (w *MemWAL) Bytes() []byte { return w.log }

// SetBytes replaces the log contents (for tests).
func (w *MemWAL) SetBytes(b []byte) { w.log = b }

func (w *MemWAL) Reset() error { w.log = w.log[:0]; return nil }

func (w *MemWAL) Replay(pageSize int, apply func(id PageID, data []byte) error) (RecoveryStats, error) {
	return replayBytes(w.log, pageSize, apply)
}

func (w *MemWAL) Close() error { return nil }

// FileWAL is a file-backed WAL: records are appended to a flat file and
// Sync fsyncs it. The conventional location is the store path + ".wal"
// (see OpenFileWAL).
type FileWAL struct {
	f    *os.File
	path string
	size int64 // bytes appended; mirrors the file size so Size avoids a stat
}

// OpenFileWAL opens (creating if absent) the WAL file at path.
func OpenFileWAL(path string) (*FileWAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileWAL{f: f, path: path, size: end}, nil
}

// Path returns the WAL file path.
func (w *FileWAL) Path() string { return w.path }

func (w *FileWAL) AppendPage(id PageID, data []byte) error {
	buf := appendPageRecord(make([]byte, 0, 13+len(data)), id, data)
	n, err := w.f.Write(buf)
	w.size += int64(n)
	return err
}

func (w *FileWAL) AppendCommit() error {
	n, err := w.f.Write(appendCommitRecord(nil))
	w.size += int64(n)
	return err
}

func (w *FileWAL) Sync() error { return w.f.Sync() }

func (w *FileWAL) Size() int64 { return w.size }

func (w *FileWAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	return w.f.Sync()
}

func (w *FileWAL) Replay(pageSize int, apply func(id PageID, data []byte) error) (RecoveryStats, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return RecoveryStats{}, err
	}
	log, err := io.ReadAll(w.f)
	if err != nil {
		return RecoveryStats{}, err
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return RecoveryStats{}, err
	}
	return replayBytes(log, pageSize, apply)
}

func (w *FileWAL) Close() error { return w.f.Close() }
