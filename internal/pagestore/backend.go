package pagestore

import (
	"fmt"
	"os"
	"sync"
)

// MemBackend is an in-memory Backend. It simulates a disk for benchmarks:
// the buffer cache above it still counts every miss as a physical read, so
// I/O measurements are identical to the file backend while staying
// deterministic and fast.
type MemBackend struct {
	mu    sync.Mutex
	pages map[PageID][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{pages: make(map[PageID][]byte)}
}

// ReadPage implements Backend. Unwritten pages read as zeroes.
func (m *MemBackend) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.pages[id]; ok {
		copy(buf, p)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// WritePage implements Backend.
func (m *MemBackend) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pages[id]
	if !ok {
		p = make([]byte, len(buf))
		m.pages[id] = p
	}
	copy(p, buf)
	return nil
}

// Sync implements Backend (a no-op for memory).
func (m *MemBackend) Sync() error { return nil }

// Close implements Backend (a no-op for memory).
func (m *MemBackend) Close() error { return nil }

// Len returns the number of pages ever written.
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// FileBackend stores pages in a single OS file at offset id*pageSize.
type FileBackend struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
}

// OpenFileBackend opens (creating if necessary) the page file at path.
func OpenFileBackend(path string, pageSize int) (*FileBackend, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("pagestore: page size %d below minimum %d", pageSize, MinPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileBackend{f: f, pageSize: pageSize}, nil
}

// ReadPage implements Backend. Reads past EOF return zeroes.
func (b *FileBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(buf) != b.pageSize {
		return fmt.Errorf("pagestore: read buffer size %d, want %d", len(buf), b.pageSize)
	}
	n, err := b.f.ReadAt(buf, int64(id)*int64(b.pageSize))
	if n < len(buf) {
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		return nil // short read or EOF: page never written
	}
	return err
}

// ReadRange implements RangeReader: one positioned read covering every
// page of the span. Pages past EOF read as zeroes, like ReadPage.
func (b *FileBackend) ReadRange(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(buf)%b.pageSize != 0 {
		return fmt.Errorf("pagestore: range read buffer size %d, want a multiple of %d", len(buf), b.pageSize)
	}
	n, err := b.f.ReadAt(buf, int64(id)*int64(b.pageSize))
	if n < len(buf) {
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		return nil
	}
	return err
}

// WritePage implements Backend.
func (b *FileBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(buf) != b.pageSize {
		return fmt.Errorf("pagestore: write buffer size %d, want %d", len(buf), b.pageSize)
	}
	_, err := b.f.WriteAt(buf, int64(id)*int64(b.pageSize))
	return err
}

// Sync implements Backend.
func (b *FileBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Sync()
}

// Close implements Backend.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Close()
}
