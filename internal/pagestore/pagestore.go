// Package pagestore implements the disk-block substrate of the reproduction:
// fixed-size pages behind an LRU buffer cache with physical/logical I/O
// accounting.
//
// The RI-tree paper (Kriegel, Pötke, Seidl, VLDB 2000) measures "physical
// disk block accesses" on an Oracle8i server configured with 2 KB blocks and
// a 200-block buffer cache. This package recreates exactly that cost model:
// every page fetched through the cache counts one logical read, and a cache
// miss counts one physical read. An optional per-physical-read latency lets
// benchmarks approximate wall-clock response times of a spinning disk.
package pagestore

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// PageID identifies a page within a store. Page 0 is reserved for the store
// header; InvalidPage (0) therefore never refers to user data.
type PageID uint32

// InvalidPage is the zero PageID; it never names an allocated data page.
const InvalidPage PageID = 0

// DefaultPageSize matches the 2 KB database block size used in the paper's
// experimental setup (§6.1).
const DefaultPageSize = 2048

// DefaultCacheSize matches the paper's default Oracle block cache of 200
// database blocks (§6.1).
const DefaultCacheSize = 200

// MinPageSize is the smallest supported page size. Pages must hold the
// header of every page-structured module above this one.
const MinPageSize = 128

var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("pagestore: store is closed")
	// ErrPinned is returned when freeing a page that is still pinned.
	ErrPinned = errors.New("pagestore: page is pinned")
)

// Backend is the raw block device underneath the buffer cache. Implementations
// must tolerate reads of never-written pages by returning zeroed contents.
type Backend interface {
	// ReadPage fills buf (exactly one page) with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (exactly one page) as the contents of page id.
	WritePage(id PageID, buf []byte) error
	// Sync flushes any backend buffering to stable storage.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// Stats holds the I/O counters exposed by a Store. All counters are
// monotonically increasing until ResetStats.
type Stats struct {
	LogicalReads   int64 // pages requested through the cache
	PhysicalReads  int64 // cache misses served from the backend
	PhysicalWrites int64 // dirty pages written to the backend
	Evictions      int64 // frames evicted to make room
	Allocations    int64 // pages allocated
	Frees          int64 // pages freed
}

// Hits returns the number of logical reads served without touching the
// backend.
func (s Stats) Hits() int64 { return s.LogicalReads - s.PhysicalReads }

// Sub returns the counter-wise difference s - o, useful for measuring the
// cost of a bounded operation.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads:   s.LogicalReads - o.LogicalReads,
		PhysicalReads:  s.PhysicalReads - o.PhysicalReads,
		PhysicalWrites: s.PhysicalWrites - o.PhysicalWrites,
		Evictions:      s.Evictions - o.Evictions,
		Allocations:    s.Allocations - o.Allocations,
		Frees:          s.Frees - o.Frees,
	}
}

// Options configures a Store.
type Options struct {
	// PageSize is the size of every page in bytes. Defaults to
	// DefaultPageSize (2048).
	PageSize int
	// CacheSize is the number of pages held by the buffer cache. Defaults
	// to DefaultCacheSize (200).
	CacheSize int
	// ReadLatency, if nonzero, is slept on every physical read so that
	// wall-clock measurements approximate a disk with that access time.
	ReadLatency time.Duration
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	return o
}

func (o Options) validate() error {
	if o.PageSize < MinPageSize {
		return fmt.Errorf("pagestore: page size %d below minimum %d", o.PageSize, MinPageSize)
	}
	if o.PageSize&(o.PageSize-1) != 0 {
		return fmt.Errorf("pagestore: page size %d is not a power of two", o.PageSize)
	}
	if o.CacheSize < 4 {
		return fmt.Errorf("pagestore: cache size %d below minimum 4", o.CacheSize)
	}
	return nil
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element // position in lru; set for every cached frame, pinned or not
}

// Store is a buffer-cached page store. It is safe for concurrent use; the
// contents of a pinned page, however, are handed to the caller as a raw
// byte slice, so concurrent mutation of a single page must be coordinated
// by the layer above (the relational engine serializes writers).
type Store struct {
	mu      sync.Mutex
	opts    Options
	backend Backend
	frames  map[PageID]*frame
	lru     *list.List // front = most recently used; holds every cached frame, eviction skips pinned ones
	stats   Stats
	next    PageID
	free    []PageID
	closed  bool
	latency time.Duration
	// obsm optionally mirrors stats into an obs registry (SetMetrics).
	obsm *storeMetrics
	// handles recycles Page values between Get and Release: the handle was
	// the last per-logical-read heap allocation on the query path (the LRU
	// frames themselves already stay resident across pin/release cycles).
	handles sync.Pool
}

// New creates a Store over backend. If the backend already contains a store
// header (page 0), allocator state is restored from it.
func New(backend Backend, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := &Store{
		opts:    opts,
		backend: backend,
		frames:  make(map[PageID]*frame, opts.CacheSize),
		lru:     list.New(),
		next:    1,
		latency: opts.ReadLatency,
	}
	if err := s.loadHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewMem creates a Store over a fresh in-memory backend.
func NewMem(opts Options) *Store {
	s, err := New(NewMemBackend(), opts)
	if err != nil {
		panic(err) // options validated above; memory backend cannot fail
	}
	return s
}

const (
	headerMagic   = uint64(0x5249545047535452) // "RITPGSTR"
	headerVersion = uint32(1)
)

func (s *Store) loadHeader() error {
	buf := make([]byte, s.opts.PageSize)
	if err := s.backend.ReadPage(0, buf); err != nil {
		return err
	}
	magic := binary.LittleEndian.Uint64(buf[0:8])
	if magic == 0 {
		return nil // fresh store
	}
	if magic != headerMagic {
		return fmt.Errorf("pagestore: bad header magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != headerVersion {
		return fmt.Errorf("pagestore: unsupported header version %d", v)
	}
	if ps := int(binary.LittleEndian.Uint32(buf[12:16])); ps != s.opts.PageSize {
		return fmt.Errorf("pagestore: store has page size %d, opened with %d", ps, s.opts.PageSize)
	}
	s.next = PageID(binary.LittleEndian.Uint32(buf[16:20]))
	nfree := int(binary.LittleEndian.Uint32(buf[20:24]))
	maxFree := (s.opts.PageSize - 24) / 4
	if nfree > maxFree {
		nfree = maxFree // excess free pages were leaked at save time
	}
	s.free = make([]PageID, 0, nfree)
	for i := 0; i < nfree; i++ {
		s.free = append(s.free, PageID(binary.LittleEndian.Uint32(buf[24+4*i:])))
	}
	return nil
}

func (s *Store) saveHeaderLocked() error {
	buf := make([]byte, s.opts.PageSize)
	binary.LittleEndian.PutUint64(buf[0:8], headerMagic)
	binary.LittleEndian.PutUint32(buf[8:12], headerVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(s.opts.PageSize))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(s.next))
	nfree := len(s.free)
	maxFree := (s.opts.PageSize - 24) / 4
	if nfree > maxFree {
		nfree = maxFree // leak the remainder; documented limitation
	}
	binary.LittleEndian.PutUint32(buf[20:24], uint32(nfree))
	for i := 0; i < nfree; i++ {
		binary.LittleEndian.PutUint32(buf[24+4*i:], uint32(s.free[i]))
	}
	return s.backend.WritePage(0, buf)
}

// PageSize returns the configured page size in bytes.
func (s *Store) PageSize() int { return s.opts.PageSize }

// CacheSize returns the configured buffer-cache capacity in pages.
func (s *Store) CacheSize() int { return s.opts.CacheSize }

// SetReadLatency changes the simulated per-physical-read latency. It may be
// toggled at runtime (benchmarks disable it during bulk loads).
func (s *Store) SetReadLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes all I/O counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}

// NumAllocated returns the number of live (allocated, not freed) pages.
func (s *Store) NumAllocated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.next) - 1 - len(s.free)
}

// Allocate reserves a new zeroed page and returns its id. The page is not
// pinned; call Get to use it.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	s.stats.Allocations++
	s.obsm.allocation()
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	// Install a zeroed frame so the first Get does not count a physical
	// read for a page that has never been written.
	f := &frame{id: id, data: make([]byte, s.opts.PageSize), dirty: true}
	if err := s.installLocked(f); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

// Free returns page id to the allocator. The page must be unpinned.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id == InvalidPage || id >= s.next {
		return fmt.Errorf("pagestore: free of invalid page %d", id)
	}
	if f, ok := s.frames[id]; ok {
		if f.pins > 0 {
			return ErrPinned
		}
		if f.elem != nil {
			s.lru.Remove(f.elem)
		}
		delete(s.frames, id)
	}
	s.stats.Frees++
	s.obsm.free()
	s.free = append(s.free, id)
	return nil
}

// Page is a pinned handle to a cached page. It must be released exactly
// once; after Release the handle is recycled and must not be touched.
type Page struct {
	s *Store
	f *frame
}

// ID returns the page id.
func (p *Page) ID() PageID { return p.f.id }

// Data returns the page contents. The slice is valid until Release.
func (p *Page) Data() []byte { return p.f.data }

// MarkDirty records that the page was modified and must be written back
// before eviction.
func (p *Page) MarkDirty() {
	p.s.mu.Lock()
	p.f.dirty = true
	p.s.mu.Unlock()
}

// Release unpins the page, making it evictable again, and returns the
// handle to the store's pool.
func (p *Page) Release() {
	s := p.s
	f := p.f
	if f == nil {
		panic("pagestore: page released more times than pinned")
	}
	p.f = nil // poison before pooling: a second Release must not corrupt a reused handle
	s.mu.Lock()
	f.pins--
	if f.pins < 0 {
		s.mu.Unlock()
		panic("pagestore: page released more times than pinned")
	}
	if f.pins == 0 {
		s.shrinkLocked()
	}
	s.mu.Unlock()
	s.handles.Put(p)
}

// handleFor wraps frame f in a pooled Page handle.
func (s *Store) handleFor(f *frame) *Page {
	if v := s.handles.Get(); v != nil {
		p := v.(*Page)
		p.s, p.f = s, f
		return p
	}
	return &Page{s: s, f: f}
}

// Get pins page id into the cache and returns a handle to it.
func (s *Store) Get(id PageID) (*Page, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if id == InvalidPage || id >= s.next {
		s.mu.Unlock()
		return nil, fmt.Errorf("pagestore: get of invalid page %d", id)
	}
	s.stats.LogicalReads++
	s.obsm.logicalRead()
	if f, ok := s.frames[id]; ok {
		s.pinLocked(f)
		s.mu.Unlock()
		return s.handleFor(f), nil
	}
	// Miss: fetch from the backend.
	s.stats.PhysicalReads++
	s.obsm.physicalRead()
	lat := s.latency
	f := &frame{id: id, data: make([]byte, s.opts.PageSize)}
	// Read outside the lock would be nicer for parallelism, but the layer
	// above serializes access anyway; keep the invariant simple.
	if err := s.backend.ReadPage(id, f.data); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if err := s.installLocked(f); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.pinLocked(f)
	s.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return s.handleFor(f), nil
}

// pinLocked marks f in use. Frames stay resident in the LRU list while
// pinned — eviction skips them by pin count — so a pin/release cycle is
// a MoveToFront instead of a Remove + PushFront pair; the latter
// allocated a fresh list element per logical page access, which
// dominated the per-query allocation profile.
func (s *Store) pinLocked(f *frame) {
	s.lru.MoveToFront(f.elem)
	f.pins++
}

// installLocked inserts f into the cache, evicting if needed. f is unpinned.
func (s *Store) installLocked(f *frame) error {
	if err := s.shrinkToLocked(s.opts.CacheSize - 1); err != nil {
		return err
	}
	s.frames[f.id] = f
	f.elem = s.lru.PushFront(f)
	return nil
}

func (s *Store) shrinkLocked() { _ = s.shrinkToLocked(s.opts.CacheSize) }

// shrinkToLocked evicts least-recently-used unpinned frames until at most
// limit frames remain. If every frame is pinned the cache is allowed to
// exceed its capacity (the caller holds the pins and will release them).
func (s *Store) shrinkToLocked(limit int) error {
	for len(s.frames) > limit {
		// Pinned frames stay in the list; walk past them to the
		// least-recently-used evictable frame.
		back := s.lru.Back()
		for back != nil && back.Value.(*frame).pins > 0 {
			back = back.Prev()
		}
		if back == nil {
			return nil // everything pinned; temporarily over capacity
		}
		f := back.Value.(*frame)
		if f.dirty {
			s.stats.PhysicalWrites++
			s.obsm.physicalWrite()
			if err := s.backend.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
		s.lru.Remove(back)
		delete(s.frames, f.id)
		s.stats.Evictions++
		s.obsm.eviction()
	}
	return nil
}

// FlushAll writes every dirty cached page and the allocator header to the
// backend and syncs it.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, f := range s.frames {
		if f.dirty {
			s.stats.PhysicalWrites++
			s.obsm.physicalWrite()
			if err := s.backend.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	if err := s.saveHeaderLocked(); err != nil {
		return err
	}
	return s.backend.Sync()
}

// Close flushes and closes the store. Further operations fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	for _, f := range s.frames {
		if f.dirty {
			s.stats.PhysicalWrites++
			s.obsm.physicalWrite()
			if err := s.backend.WritePage(f.id, f.data); err != nil {
				s.mu.Unlock()
				return err
			}
			f.dirty = false
		}
	}
	if err := s.saveHeaderLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	if err := s.backend.Sync(); err != nil {
		return err
	}
	return s.backend.Close()
}
