// Package pagestore implements the disk-block substrate of the reproduction:
// fixed-size pages behind an LRU buffer cache with physical/logical I/O
// accounting.
//
// The RI-tree paper (Kriegel, Pötke, Seidl, VLDB 2000) measures "physical
// disk block accesses" on an Oracle8i server configured with 2 KB blocks and
// a 200-block buffer cache. This package recreates exactly that cost model:
// every page fetched through the cache counts one logical read, and a cache
// miss counts one physical read. An optional per-physical-read latency lets
// benchmarks approximate wall-clock response times of a spinning disk.
package pagestore

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageID identifies a page within a store. Page 0 is reserved for the store
// header; InvalidPage (0) therefore never refers to user data.
type PageID uint32

// InvalidPage is the zero PageID; it never names an allocated data page.
const InvalidPage PageID = 0

// DefaultPageSize matches the 2 KB database block size used in the paper's
// experimental setup (§6.1).
const DefaultPageSize = 2048

// DefaultCacheSize matches the paper's default Oracle block cache of 200
// database blocks (§6.1).
const DefaultCacheSize = 200

// MinPageSize is the smallest supported page size. Pages must hold the
// header of every page-structured module above this one.
const MinPageSize = 128

var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("pagestore: store is closed")
	// ErrPinned is returned when freeing a page that is still pinned.
	ErrPinned = errors.New("pagestore: page is pinned")
)

// Backend is the raw block device underneath the buffer cache. Implementations
// must tolerate reads of never-written pages by returning zeroed contents.
type Backend interface {
	// ReadPage fills buf (exactly one page) with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (exactly one page) as the contents of page id.
	WritePage(id PageID, buf []byte) error
	// Sync flushes any backend buffering to stable storage.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// RangeReader is an optional Backend capability: fill buf (a whole number
// of pages) with the contents of the consecutive pages starting at id in
// one call. Backends over seekable media implement it so bulk sequential
// reads cost one I/O per span instead of one per page.
type RangeReader interface {
	ReadRange(id PageID, buf []byte) error
}

// Stats holds the I/O counters exposed by a Store. All counters are
// monotonically increasing until ResetStats.
type Stats struct {
	LogicalReads   int64 // pages requested through the cache
	PhysicalReads  int64 // cache misses served from the backend
	PhysicalWrites int64 // dirty pages written to the backend
	Evictions      int64 // frames evicted to make room
	Allocations    int64 // pages allocated
	Frees          int64 // pages freed
}

// Hits returns the number of logical reads served without touching the
// backend.
func (s Stats) Hits() int64 { return s.LogicalReads - s.PhysicalReads }

// Sub returns the counter-wise difference s - o, useful for measuring the
// cost of a bounded operation.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads:   s.LogicalReads - o.LogicalReads,
		PhysicalReads:  s.PhysicalReads - o.PhysicalReads,
		PhysicalWrites: s.PhysicalWrites - o.PhysicalWrites,
		Evictions:      s.Evictions - o.Evictions,
		Allocations:    s.Allocations - o.Allocations,
		Frees:          s.Frees - o.Frees,
	}
}

// Options configures a Store.
type Options struct {
	// PageSize is the size of every page in bytes. Defaults to
	// DefaultPageSize (2048).
	PageSize int
	// CacheSize is the number of pages held by the buffer cache. Defaults
	// to DefaultCacheSize (200).
	CacheSize int
	// ReadLatency, if nonzero, is slept on every physical read so that
	// wall-clock measurements approximate a disk with that access time.
	ReadLatency time.Duration
	// WAL, if set, enables write-ahead logging: Commit logs the after-image
	// of every page dirtied since the previous commit before any of them
	// may reach the backend (no-steal until logged and synced), and New
	// replays complete commit batches left behind by a crash. Without a
	// WAL, Commit only advances the snapshot epoch.
	WAL WAL
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	return o
}

func (o Options) validate() error {
	if o.PageSize < MinPageSize {
		return fmt.Errorf("pagestore: page size %d below minimum %d", o.PageSize, MinPageSize)
	}
	if o.PageSize&(o.PageSize-1) != 0 {
		return fmt.Errorf("pagestore: page size %d is not a power of two", o.PageSize)
	}
	if o.CacheSize < 4 {
		return fmt.Errorf("pagestore: cache size %d below minimum 4", o.CacheSize)
	}
	return nil
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element // position in lru; set for every cached frame, pinned or not
	// stashEpoch is 1 + the epoch whose pre-image was last stashed for
	// snapshot readers; BeginWrite stashes only when stashEpoch <= epoch.
	stashEpoch uint64
	// logSeq is the commit sequence whose WAL record matches this frame's
	// content (0 = content not in the log). A dirty frame may be written
	// to the backend only once its logSeq is durably synced (no-steal).
	logSeq uint64
}

// pageVersion is a stashed pre-image: the page's content as of commit
// `tag`, retained while a snapshot at epoch <= tag is live.
type pageVersion struct {
	tag  uint64
	data []byte
}

// Store is a buffer-cached page store. It is safe for concurrent use; the
// contents of a pinned page, however, are handed to the caller as a raw
// byte slice, so concurrent mutation of a single page must be coordinated
// by the layer above (the relational engine serializes writers).
type Store struct {
	mu      sync.Mutex
	opts    Options
	backend Backend
	frames  map[PageID]*frame
	lru     *list.List // front = most recently used; holds every cached frame, eviction skips pinned ones
	stats   Stats
	next    PageID
	free    []PageID
	closed  bool
	latency time.Duration
	// obsm optionally mirrors stats into an obs registry (SetMetrics).
	obsm *storeMetrics
	// handles recycles Page values between Get and Release: the handle was
	// the last per-logical-read heap allocation on the query path (the LRU
	// frames themselves already stay resident across pin/release cycles).
	handles sync.Pool

	// --- commit / snapshot state ---
	wal     WAL
	epoch   uint64 // commits so far; snapshots observe state as of an epoch
	mutated bool   // a page/allocator mutation happened since the last commit
	// ckptThreshold > 0 makes CommitAsync checkpoint (flush + WAL reset)
	// whenever the WAL has grown past that many bytes, bounding replay
	// time after a crash. See SetCheckpointThreshold.
	ckptThreshold int64
	// snaps counts live snapshots per acquire epoch; versions holds the
	// stashed pre-images they read (see BeginWrite and Snapshot.ReadPage).
	snaps    map[uint64]int
	versions map[PageID][]pageVersion
	// recovery records what the WAL replay restored at New.
	recovery          RecoveryStats
	recoveryPublished bool
	// appendSeq/syncedSeq track group commit: the highest commit sequence
	// appended to the WAL and the highest known durable. Atomics so the
	// eviction path can check no-steal without touching the gate lock.
	appendSeq atomic.Uint64
	syncedSeq atomic.Uint64
	gate      commitGate
}

// commitGate batches WAL fsyncs: the first committer to arrive becomes the
// leader and syncs everything appended so far; committers arriving while a
// sync is in flight wait and are usually covered by the next one.
type commitGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	syncing bool
}

// New creates a Store over backend. If the backend already contains a store
// header (page 0), allocator state is restored from it. If opts.WAL holds
// records from a crashed predecessor, every complete commit batch is
// replayed into the backend (redo recovery) before the header is read; the
// result is reported by RecoveryStats.
func New(backend Backend, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := &Store{
		opts:    opts,
		backend: backend,
		frames:  make(map[PageID]*frame, opts.CacheSize),
		lru:     list.New(),
		next:    1,
		latency: opts.ReadLatency,
	}
	s.gate.cond = sync.NewCond(&s.gate.mu)
	if opts.WAL != nil {
		rs, err := opts.WAL.Replay(opts.PageSize, backend.WritePage)
		if err != nil {
			return nil, fmt.Errorf("pagestore: wal replay: %w", err)
		}
		s.recovery = rs
		if rs.Pages > 0 {
			if err := backend.Sync(); err != nil {
				return nil, err
			}
		}
		// The backend now reflects every committed batch; start a fresh log
		// (this also discards a torn tail).
		if err := opts.WAL.Reset(); err != nil {
			return nil, err
		}
		s.wal = opts.WAL
	}
	if err := s.loadHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

// RecoveryStats reports what the WAL replay applied when the store was
// opened (zero when no WAL was configured or the log was empty).
func (s *Store) RecoveryStats() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Epoch returns the current commit epoch (the number of commits so far).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// NewMem creates a Store over a fresh in-memory backend.
func NewMem(opts Options) *Store {
	s, err := New(NewMemBackend(), opts)
	if err != nil {
		panic(err) // options validated above; memory backend cannot fail
	}
	return s
}

const (
	headerMagic   = uint64(0x5249545047535452) // "RITPGSTR"
	headerVersion = uint32(1)
)

func (s *Store) loadHeader() error {
	buf := make([]byte, s.opts.PageSize)
	if err := s.backend.ReadPage(0, buf); err != nil {
		return err
	}
	magic := binary.LittleEndian.Uint64(buf[0:8])
	if magic == 0 {
		return nil // fresh store
	}
	if magic != headerMagic {
		return fmt.Errorf("pagestore: bad header magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != headerVersion {
		return fmt.Errorf("pagestore: unsupported header version %d", v)
	}
	if ps := int(binary.LittleEndian.Uint32(buf[12:16])); ps != s.opts.PageSize {
		return fmt.Errorf("pagestore: store has page size %d, opened with %d", ps, s.opts.PageSize)
	}
	s.next = PageID(binary.LittleEndian.Uint32(buf[16:20]))
	nfree := int(binary.LittleEndian.Uint32(buf[20:24]))
	maxFree := (s.opts.PageSize - 24) / 4
	if nfree > maxFree {
		nfree = maxFree // excess free pages were leaked at save time
	}
	s.free = make([]PageID, 0, nfree)
	for i := 0; i < nfree; i++ {
		s.free = append(s.free, PageID(binary.LittleEndian.Uint32(buf[24+4*i:])))
	}
	return nil
}

// composeHeaderInto serializes an allocator header page into buf.
func composeHeaderInto(buf []byte, pageSize int, next PageID, free []PageID) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[0:8], headerMagic)
	binary.LittleEndian.PutUint32(buf[8:12], headerVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(pageSize))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(next))
	nfree := len(free)
	maxFree := (pageSize - 24) / 4
	if nfree > maxFree {
		nfree = maxFree // leak the remainder; documented limitation
	}
	binary.LittleEndian.PutUint32(buf[20:24], uint32(nfree))
	for i := 0; i < nfree; i++ {
		binary.LittleEndian.PutUint32(buf[24+4*i:], uint32(free[i]))
	}
}

func (s *Store) saveHeaderLocked() error {
	buf := make([]byte, s.opts.PageSize)
	composeHeaderInto(buf, s.opts.PageSize, s.next, s.free)
	return s.backend.WritePage(0, buf)
}

// PageSize returns the configured page size in bytes.
func (s *Store) PageSize() int { return s.opts.PageSize }

// CacheSize returns the configured buffer-cache capacity in pages.
func (s *Store) CacheSize() int { return s.opts.CacheSize }

// SetReadLatency changes the simulated per-physical-read latency. It may be
// toggled at runtime (benchmarks disable it during bulk loads).
func (s *Store) SetReadLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes all I/O counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}

// NumAllocated returns the number of live (allocated, not freed) pages.
func (s *Store) NumAllocated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.next) - 1 - len(s.free)
}

// Allocate reserves a new zeroed page and returns its id. The page is not
// pinned; call Get to use it.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	s.stats.Allocations++
	s.obsm.allocation()
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	// Install a zeroed frame so the first Get does not count a physical
	// read for a page that has never been written. The pre-image of a
	// recycled page was stashed when it was freed, so stashEpoch may start
	// past the current epoch.
	f := &frame{id: id, data: make([]byte, s.opts.PageSize), dirty: true, stashEpoch: s.epoch + 1}
	if err := s.installLocked(f); err != nil {
		return InvalidPage, err
	}
	s.mutated = true
	return id, nil
}

// Free returns page id to the allocator. The page must be unpinned.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id == InvalidPage || id >= s.next {
		return fmt.Errorf("pagestore: free of invalid page %d", id)
	}
	if f, ok := s.frames[id]; ok && f.pins > 0 {
		return ErrPinned
	}
	// Live snapshots may still reach this page through their as-of catalog;
	// stash its pre-image before the allocator can hand it out again.
	if len(s.snaps) > 0 {
		vs := s.versions[id]
		if len(vs) == 0 || vs[len(vs)-1].tag < s.epoch {
			data := make([]byte, s.opts.PageSize)
			if f, ok := s.frames[id]; ok {
				copy(data, f.data)
			} else if err := s.backend.ReadPage(id, data); err != nil {
				return err
			}
			if s.versions == nil {
				s.versions = make(map[PageID][]pageVersion)
			}
			s.versions[id] = append(vs, pageVersion{tag: s.epoch, data: data})
		}
	}
	if f, ok := s.frames[id]; ok {
		if f.elem != nil {
			s.lru.Remove(f.elem)
		}
		delete(s.frames, id)
	}
	s.stats.Frees++
	s.obsm.free()
	s.free = append(s.free, id)
	s.mutated = true
	return nil
}

// Page is a pinned handle to a cached page. It must be released exactly
// once; after Release the handle is recycled and must not be touched.
type Page struct {
	s *Store
	f *frame
}

// ID returns the page id.
func (p *Page) ID() PageID { return p.f.id }

// Data returns the page contents. The slice is valid until Release.
func (p *Page) Data() []byte { return p.f.data }

// BeginWrite declares that the caller is about to modify the page. It MUST
// be called before the first mutation (not after, as the old MarkDirty
// was): when snapshot readers are live it stashes the page's pre-image so
// they keep seeing the state as of their epoch, and it invalidates any WAL
// record covering the old content. Idempotent within an epoch.
func (p *Page) BeginWrite() {
	s := p.s
	s.mu.Lock()
	s.beginWriteLocked(p.f)
	s.mu.Unlock()
}

func (s *Store) beginWriteLocked(f *frame) {
	if len(s.snaps) > 0 && f.stashEpoch <= s.epoch {
		vs := s.versions[f.id]
		// A stash tagged with the current epoch already holds the true
		// pre-image (e.g. the page was freed and recycled this epoch).
		if len(vs) == 0 || vs[len(vs)-1].tag < s.epoch {
			data := make([]byte, len(f.data))
			copy(data, f.data)
			if s.versions == nil {
				s.versions = make(map[PageID][]pageVersion)
			}
			s.versions[f.id] = append(vs, pageVersion{tag: s.epoch, data: data})
		}
	}
	f.stashEpoch = s.epoch + 1
	f.dirty = true
	f.logSeq = 0
	s.mutated = true
}

// GetMut pins page id for modification: Get plus BeginWrite.
func (s *Store) GetMut(id PageID) (*Page, error) {
	p, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	p.BeginWrite()
	return p, nil
}

// Release unpins the page, making it evictable again, and returns the
// handle to the store's pool.
func (p *Page) Release() {
	s := p.s
	f := p.f
	if f == nil {
		panic("pagestore: page released more times than pinned")
	}
	p.f = nil // poison before pooling: a second Release must not corrupt a reused handle
	s.mu.Lock()
	f.pins--
	if f.pins < 0 {
		s.mu.Unlock()
		panic("pagestore: page released more times than pinned")
	}
	if f.pins == 0 {
		s.shrinkLocked()
	}
	s.mu.Unlock()
	s.handles.Put(p)
}

// handleFor wraps frame f in a pooled Page handle.
func (s *Store) handleFor(f *frame) *Page {
	if v := s.handles.Get(); v != nil {
		p := v.(*Page)
		p.s, p.f = s, f
		return p
	}
	return &Page{s: s, f: f}
}

// Get pins page id into the cache and returns a handle to it.
func (s *Store) Get(id PageID) (*Page, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if id == InvalidPage || id >= s.next {
		s.mu.Unlock()
		return nil, fmt.Errorf("pagestore: get of invalid page %d", id)
	}
	s.stats.LogicalReads++
	s.obsm.logicalRead()
	if f, ok := s.frames[id]; ok {
		s.pinLocked(f)
		s.mu.Unlock()
		return s.handleFor(f), nil
	}
	// Miss: fetch from the backend.
	s.stats.PhysicalReads++
	s.obsm.physicalRead()
	lat := s.latency
	f := &frame{id: id, data: make([]byte, s.opts.PageSize)}
	// Read outside the lock would be nicer for parallelism, but the layer
	// above serializes access anyway; keep the invariant simple.
	if err := s.backend.ReadPage(id, f.data); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if err := s.installLocked(f); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.pinLocked(f)
	s.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return s.handleFor(f), nil
}

// ReadPagesInto copies the len(buf)/PageSize consecutive pages starting
// at id into buf without caching them: resident frames (dirty pages
// included) are served from memory, and every maximal uncached span is
// read from the backend — in one ranged call when it supports RangeReader.
// Bulk sequential readers (blob chains, one-shot scans) use it so a scan
// larger than the buffer cache does not evict the working set page by
// page, and so a multi-megabyte read costs a handful of ranged I/Os
// instead of one call per page. Under the simulated read latency, each
// backend call counts as one seek.
func (s *Store) ReadPagesInto(id PageID, buf []byte) error {
	ps := s.opts.PageSize
	n := len(buf) / ps
	if n < 1 || len(buf)%ps != 0 {
		return fmt.Errorf("pagestore: ReadPagesInto buffer is %d bytes, want a positive multiple of the %d-byte page size", len(buf), ps)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if id == InvalidPage || id >= s.next || PageID(n) > s.next-id {
		s.mu.Unlock()
		return fmt.Errorf("pagestore: get of invalid page %d", id+PageID(n)-1)
	}
	s.stats.LogicalReads += int64(n)
	s.obsm.logicalReadN(int64(n))
	rr, ranged := s.backend.(RangeReader)
	var seeks int64
	for i := 0; i < n; {
		pid := id + PageID(i)
		if f, ok := s.frames[pid]; ok {
			copy(buf[i*ps:(i+1)*ps], f.data)
			i++
			continue
		}
		j := i + 1
		for j < n {
			if _, ok := s.frames[id+PageID(j)]; ok {
				break
			}
			j++
		}
		span := buf[i*ps : j*ps]
		var err error
		if ranged && j-i > 1 {
			err = rr.ReadRange(pid, span)
		} else {
			for k := i; k < j && err == nil; k++ {
				err = s.backend.ReadPage(id+PageID(k), span[(k-i)*ps:(k-i+1)*ps])
			}
		}
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.stats.PhysicalReads += int64(j - i)
		s.obsm.physicalReadN(int64(j - i))
		seeks++
		i = j
	}
	lat := s.latency
	s.mu.Unlock()
	if lat > 0 && seeks > 0 {
		time.Sleep(lat * time.Duration(seeks))
	}
	return nil
}

// PageBound returns the exclusive upper bound of currently valid page
// ids: every allocated page's id is below it. Sequential readers use it
// to clamp speculative ranged reads.
func (s *Store) PageBound() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// pinLocked marks f in use. Frames stay resident in the LRU list while
// pinned — eviction skips them by pin count — so a pin/release cycle is
// a MoveToFront instead of a Remove + PushFront pair; the latter
// allocated a fresh list element per logical page access, which
// dominated the per-query allocation profile.
func (s *Store) pinLocked(f *frame) {
	s.lru.MoveToFront(f.elem)
	f.pins++
}

// installLocked inserts f into the cache, evicting if needed. f is unpinned.
func (s *Store) installLocked(f *frame) error {
	if err := s.shrinkToLocked(s.opts.CacheSize - 1); err != nil {
		return err
	}
	s.frames[f.id] = f
	f.elem = s.lru.PushFront(f)
	return nil
}

func (s *Store) shrinkLocked() { _ = s.shrinkToLocked(s.opts.CacheSize) }

// evictableLocked reports whether frame f may leave the cache. With a WAL
// the store is no-steal: a dirty frame may only be written back once its
// content is durably logged, so a crash can never leave the backend with
// pages from an uncommitted (or unsynced) batch.
func (s *Store) evictableLocked(f *frame) bool {
	if f.pins > 0 {
		return false
	}
	if !f.dirty || s.wal == nil {
		return true
	}
	return f.logSeq != 0 && f.logSeq <= s.syncedSeq.Load()
}

// shrinkToLocked evicts least-recently-used unpinned frames until at most
// limit frames remain. If every frame is pinned (or pinned by the no-steal
// rule) the cache is allowed to exceed its capacity until the pins drop or
// the next commit makes the dirty frames loggable.
func (s *Store) shrinkToLocked(limit int) error {
	for len(s.frames) > limit {
		// Pinned and unloggable frames stay in the list; walk past them to
		// the least-recently-used evictable frame.
		back := s.lru.Back()
		for back != nil && !s.evictableLocked(back.Value.(*frame)) {
			back = back.Prev()
		}
		if back == nil {
			return nil // nothing evictable; temporarily over capacity
		}
		f := back.Value.(*frame)
		if f.dirty {
			s.stats.PhysicalWrites++
			s.obsm.physicalWrite()
			if err := s.backend.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
			f.logSeq = 0
		}
		s.lru.Remove(back)
		delete(s.frames, f.id)
		s.stats.Evictions++
		s.obsm.eviction()
	}
	return nil
}

// Commit makes every mutation since the previous commit atomically
// durable (when a WAL is configured) and advances the snapshot epoch:
// snapshots acquired from now on observe the new state. Commit is
// CommitAsync followed by WaitDurable; callers that serialize writes
// behind a lock should CommitAsync inside it and WaitDurable outside, so
// concurrent committers share fsyncs (group commit). A commit with
// nothing mutated is a no-op.
func (s *Store) Commit() error {
	seq, err := s.CommitAsync()
	if err != nil || seq == 0 {
		return err
	}
	return s.WaitDurable(seq)
}

// CommitAsync appends the commit batch — the after-image of every page
// dirtied since the previous commit plus the allocator header — to the
// WAL and advances the snapshot epoch, without waiting for durability.
// It returns the commit sequence to pass to WaitDurable, or 0 when there
// is nothing to wait for (nothing mutated, or no WAL configured).
//
// The caller must serialize CommitAsync against page mutations (the
// engine's write lock): the batch is "everything dirty right now".
func (s *Store) CommitAsync() (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if !s.mutated {
		s.mu.Unlock()
		return 0, nil
	}
	if s.wal == nil {
		s.epoch++
		s.mutated = false
		s.obsm.walCommit(0)
		s.mu.Unlock()
		return 0, nil
	}
	seq := s.epoch + 1
	pages := 0
	for _, f := range s.frames {
		if f.dirty && f.logSeq == 0 {
			if err := s.wal.AppendPage(f.id, f.data); err != nil {
				s.mu.Unlock()
				return 0, err
			}
			f.logSeq = seq
			pages++
		}
	}
	// Log the allocator header too, so recovery restores the page
	// allocator to this commit's state without a separate flush.
	hdr := make([]byte, s.opts.PageSize)
	composeHeaderInto(hdr, s.opts.PageSize, s.next, s.free)
	if err := s.wal.AppendPage(0, hdr); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if err := s.wal.AppendCommit(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.epoch++
	s.mutated = false
	s.appendSeq.Store(seq)
	s.obsm.walCommit(pages + 1)
	if s.ckptThreshold > 0 && s.wal.Size() >= s.ckptThreshold {
		// The WAL has outgrown the threshold: checkpoint now. flushAllLocked
		// writes every dirty page, syncs the backend, and resets the WAL, so
		// this commit (and all before it) is durable without an fsync of the
		// log; returning seq 0 makes the caller's WaitDurable a no-op.
		if err := s.flushAllLocked(); err != nil {
			s.mu.Unlock()
			return 0, err
		}
		s.syncedSeq.Store(seq)
		s.obsm.walCheckpoint()
		s.mu.Unlock()
		return 0, nil
	}
	s.mu.Unlock()
	return seq, nil
}

// SetCheckpointThreshold makes commits checkpoint the store (flush all
// dirty pages and reset the WAL) whenever the log exceeds n bytes,
// bounding both WAL size on disk and redo-replay time after a crash.
// n <= 0 (the default) disables the trigger. The checkpoint runs inline
// in the committing call, so a threshold trades occasional commit
// latency for a bounded log.
func (s *Store) SetCheckpointThreshold(n int64) {
	s.mu.Lock()
	s.ckptThreshold = n
	s.mu.Unlock()
}

// WaitDurable blocks until commit sequence seq (from CommitAsync) is
// fsynced to the WAL, syncing it if no sync is in flight (leader) or
// riding on the next one (group commit).
func (s *Store) WaitDurable(seq uint64) error {
	if seq == 0 || s.wal == nil {
		return nil
	}
	return s.groupSync(seq)
}

// groupSync waits until commit sequence seq is durable, syncing the WAL
// itself if no sync is in flight (leader) or riding on the next one.
func (s *Store) groupSync(seq uint64) error {
	g := &s.gate
	g.mu.Lock()
	for s.syncedSeq.Load() < seq {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		// Everything appended before the fsync starts is covered by it.
		top := s.appendSeq.Load()
		g.mu.Unlock()
		err := s.wal.Sync()
		g.mu.Lock()
		g.syncing = false
		if err == nil {
			if prev := s.syncedSeq.Load(); top > prev {
				s.syncedSeq.Store(top)
				s.obsm.walFsync(top - prev)
			}
		}
		g.cond.Broadcast()
		if err != nil {
			g.mu.Unlock()
			return err
		}
	}
	g.mu.Unlock()
	return nil
}

// Checkpoint writes every dirty page and the allocator header to the
// backend, syncs it, and truncates the WAL: the backend alone now holds
// the full state, so recovery after this point replays nothing. Must not
// run concurrently with Commit.
func (s *Store) Checkpoint() error { return s.FlushAll() }

// FlushAll writes every dirty cached page and the allocator header to the
// backend and syncs it. With a WAL this is a checkpoint: once the backend
// is durable the log is truncated (it would otherwise replay stale images
// over the flushed state). Any pending mutations become a commit boundary.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushAllLocked()
}

func (s *Store) flushAllLocked() error {
	for _, f := range s.frames {
		if f.dirty {
			s.stats.PhysicalWrites++
			s.obsm.physicalWrite()
			if err := s.backend.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
			f.logSeq = 0
		}
	}
	if err := s.saveHeaderLocked(); err != nil {
		return err
	}
	if err := s.backend.Sync(); err != nil {
		return err
	}
	if s.mutated {
		s.epoch++
		s.mutated = false
	}
	if s.wal != nil {
		if err := s.wal.Reset(); err != nil {
			return err
		}
		s.obsm.walReset()
	}
	return nil
}

// Close flushes and closes the store (checkpointing and closing the WAL
// when one is configured). Further operations — including reads through
// still-live snapshots — fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if err := s.flushAllLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.closed = true
	wal := s.wal
	s.mu.Unlock()
	if wal != nil {
		if err := wal.Close(); err != nil {
			return err
		}
	}
	return s.backend.Close()
}
