package ritree

import (
	"fmt"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// Insert registers the interval under the given id, following paper
// Figure 6: fix the offset on the first insertion, expand leftRoot or
// rightRoot if needed, compute the fork node arithmetically, track minstep,
// and execute a single relational INSERT.
//
// Intervals whose Upper is interval.Infinity or interval.NowMarker are
// routed to the sentinel fork nodes of §4.6.
func (t *Tree) Insert(iv interval.Interval, id int64) error {
	switch iv.Upper {
	case interval.Infinity:
		return t.InsertInfinite(iv.Lower, id)
	case interval.NowMarker:
		return t.InsertNow(iv.Lower, id)
	}
	if !iv.Valid() {
		return fmt.Errorf("ritree: invalid interval %v", iv)
	}
	p := t.params
	if !p.OffsetSet {
		// "offset is fixed after having inserted the first interval" so
		// that 1 becomes the lower bound of the data space (§3.4).
		p.Offset = iv.Lower - 1
		p.OffsetSet = true
	}
	l := iv.Lower - p.Offset
	u := iv.Upper - p.Offset
	p.expandRoots(l, u)
	node := p.forkNode(l, u)
	if node != 0 {
		if ls := levelStep(node); ls < p.MinStep {
			p.MinStep = ls
		}
	}
	if _, err := t.tab.Insert([]int64{node, iv.Lower, iv.Upper, id}); err != nil {
		return err
	}
	t.skeletonAdd(node)
	if p != t.params {
		t.params = p
		return t.saveParams()
	}
	return nil
}

// InsertInfinite registers the interval [lower, ∞) under id. Per §4.6 the
// artificial exclusive fork node NodeInfinity is assigned so that the
// standard intersection SQL keeps working unmodified.
func (t *Tree) InsertInfinite(lower, id int64) error {
	if _, err := t.tab.Insert([]int64{NodeInfinity, lower, interval.Infinity, id}); err != nil {
		return err
	}
	t.skeletonAdd(NodeInfinity)
	return nil
}

// InsertNow registers the now-relative interval [lower, now] under id,
// using the artificial fork node NodeNow of §4.6. Its effective upper bound
// is the tree's Now() value at query time; no stored values ever need
// updating as time advances.
func (t *Tree) InsertNow(lower, id int64) error {
	if _, err := t.tab.Insert([]int64{NodeNow, lower, interval.NowMarker, id}); err != nil {
		return err
	}
	t.skeletonAdd(NodeNow)
	return nil
}

// Delete removes one registration of (iv, id). It recomputes the fork node
// (the virtual backbone is stable under root growth, so the fork equals the
// one computed at insertion time) and deletes the matching row through the
// (node, lower, id) index. It returns false if no such interval is stored.
func (t *Tree) Delete(iv interval.Interval, id int64) (bool, error) {
	var node int64
	switch iv.Upper {
	case interval.Infinity:
		node = NodeInfinity
	case interval.NowMarker:
		node = NodeNow
	default:
		if !iv.Valid() {
			return false, fmt.Errorf("ritree: invalid interval %v", iv)
		}
		if !t.params.OffsetSet {
			return false, nil // empty tree
		}
		node = t.params.forkNode(iv.Lower-t.params.Offset, iv.Upper-t.params.Offset)
	}
	var victim rel.RowID
	found := false
	err := t.lowerIx.Scan([]int64{node, iv.Lower, id}, []int64{node, iv.Lower, id},
		func(key []int64, rid rel.RowID) bool {
			row, err := t.tab.GetRaw(rid)
			if err == nil && row[colUpper] == iv.Upper {
				victim = rid
				found = true
				return false
			}
			return true
		})
	if err != nil || !found {
		return false, err
	}
	if _, err := t.tab.DeleteRow(victim); err != nil {
		return false, err
	}
	t.skeletonRemove(node)
	return true, nil
}
