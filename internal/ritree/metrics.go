package ritree

import "ritree/internal/obs"

// treeMetrics publishes the RI-tree's query-shape counters into a
// DB-level obs registry family: how many transient backbone nodes each
// intersection query probes (the paper's O(h) bound made observable) and
// how often the pooled query scratch is reused versus reallocated. A nil
// *treeMetrics is valid and every method is a no-op.
type treeMetrics struct {
	queries       *obs.Counter // intersection queries run
	nodeVisits    *obs.Counter // transient nodes probed (left ranges + right nodes)
	scratchHits   *obs.Counter // queryScratch served from the pool
	scratchMisses *obs.Counter // queryScratch freshly allocated
}

func (m *treeMetrics) query(nodes int64) {
	if m != nil {
		m.queries.Inc()
		m.nodeVisits.Add(nodes)
	}
}

func (m *treeMetrics) scratch(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.scratchHits.Inc()
	} else {
		m.scratchMisses.Inc()
	}
}

// SetMetrics mirrors the tree's query counters into reg under prefix
// (e.g. "index.resv_iv"): "<prefix>.queries", "<prefix>.node_visits",
// "<prefix>.scratch_hits", "<prefix>.scratch_misses". Pass reg == nil to
// detach. Counters are atomic, so concurrent readers may keep querying
// while metrics are recorded; attach before serving to avoid racing the
// field itself.
func (t *Tree) SetMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		t.met = nil
		return
	}
	t.met = &treeMetrics{
		queries:       reg.Counter(prefix + ".queries"),
		nodeVisits:    reg.Counter(prefix + ".node_visits"),
		scratchHits:   reg.Counter(prefix + ".scratch_hits"),
		scratchMisses: reg.Counter(prefix + ".scratch_misses"),
	}
}
