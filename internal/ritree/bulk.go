package ritree

import (
	"fmt"

	"ritree/internal/interval"
)

// BulkLoad registers ivs[i] under ids[i] for all i, then rebuilds both
// composite indexes with the B+-tree bulk loader. Semantically identical to
// repeated Insert (same fork nodes, same parameter updates) but far faster
// for experiment setup, and it yields the tightly-packed "bulk loaded"
// indexes whose clustering the paper credits for the competitors' response
// times (§6.3) — here the RI-tree gets the same treatment.
func (t *Tree) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("ritree: BulkLoad got %d intervals and %d ids", len(ivs), len(ids))
	}
	// Detach the composite indexes so the load is a pure heap append; they
	// are recreated with a sorted bulk backfill below.
	if err := t.db.DropIndex(lowerIxName(t.name)); err != nil {
		return err
	}
	if err := t.db.DropIndex(upperIxName(t.name)); err != nil {
		return err
	}
	p := t.params
	rows := make([]int64, 4)
	for i, iv := range ivs {
		var node int64
		switch iv.Upper {
		case interval.Infinity:
			node = NodeInfinity
		case interval.NowMarker:
			node = NodeNow
		default:
			if !iv.Valid() {
				return fmt.Errorf("ritree: invalid interval %v", iv)
			}
			if !p.OffsetSet {
				p.Offset = iv.Lower - 1
				p.OffsetSet = true
			}
			l, u := iv.Lower-p.Offset, iv.Upper-p.Offset
			p.expandRoots(l, u)
			node = p.forkNode(l, u)
			if node != 0 {
				if ls := levelStep(node); ls < p.MinStep {
					p.MinStep = ls
				}
			}
		}
		rows[0], rows[1], rows[2], rows[3] = node, iv.Lower, iv.Upper, ids[i]
		if _, err := t.tab.Insert(rows); err != nil {
			return err
		}
	}
	if p != t.params {
		t.params = p
		if err := t.saveParams(); err != nil {
			return err
		}
	}
	var err error
	if t.lowerIx, err = t.db.CreateIndex(lowerIxName(t.name), tableName(t.name), []string{"node", "lower", "id"}); err != nil {
		return err
	}
	if t.upperIx, err = t.db.CreateIndex(upperIxName(t.name), tableName(t.name), []string{"node", "upper", "id"}); err != nil {
		return err
	}
	return t.initSkeleton()
}

// IndexEntries returns the total number of composite index entries, the
// storage metric of paper Figure 12 (two entries per stored interval).
func (t *Tree) IndexEntries() int64 {
	return t.lowerIx.Len() + t.upperIx.Len()
}
