package ritree

import "ritree/internal/rel"

// This file implements the §7 outlook — "a promising extension is the
// application of the Skeleton Index technique to the RI-tree, because a
// partial materialization of the primary structure can be adapted to the
// expected data distribution" — as an opt-in materialization of the set of
// nonempty backbone nodes.
//
// With Options.MaterializeBackbone, the tree keeps a per-node row count in
// session memory. Query traversal then drops index probes of nodes that
// are provably empty, trading O(#distinct nodes) memory for fewer
// fruitless B+-tree descents. Correctness is unaffected: a node absent
// from the map holds no rows, so its probe could only return nothing.

// initSkeleton populates the nonempty map from the (node, lower, id) index
// with one sequential sweep.
func (t *Tree) initSkeleton() error {
	if !t.opts.MaterializeBackbone {
		return nil
	}
	m := make(map[int64]int64)
	err := t.lowerIx.Scan(nil, nil, func(key []int64, _ rel.RowID) bool {
		m[key[0]]++
		return true
	})
	if err != nil {
		return err
	}
	t.nonempty = m
	return nil
}

func (t *Tree) skeletonAdd(node int64) {
	if t.nonempty != nil {
		t.nonempty[node]++
	}
}

func (t *Tree) skeletonRemove(node int64) {
	if t.nonempty == nil {
		return
	}
	if c := t.nonempty[node] - 1; c > 0 {
		t.nonempty[node] = c
	} else {
		delete(t.nonempty, node)
	}
}

// skeletonHas reports whether node may hold rows. Without materialization
// every node may.
func (t *Tree) skeletonHas(node int64) bool {
	if t.nonempty == nil {
		return true
	}
	return t.nonempty[node] > 0
}

// SkeletonSize returns the number of distinct nonempty backbone nodes, or
// -1 when materialization is off.
func (t *Tree) SkeletonSize() int {
	if t.nonempty == nil {
		return -1
	}
	return len(t.nonempty)
}
