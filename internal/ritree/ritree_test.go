package ritree

import (
	"math/rand"
	"sort"
	"testing"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

func newTestTree(t *testing.T, opts Options) (*Tree, *rel.DB) {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 128})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(db, "iv", opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, db
}

// brute is the reference implementation: a plain list of intervals.
type brute struct {
	ivs []interval.Interval
	ids []int64
}

func (b *brute) insert(iv interval.Interval, id int64) {
	b.ivs = append(b.ivs, iv)
	b.ids = append(b.ids, id)
}

func (b *brute) remove(iv interval.Interval, id int64) bool {
	for i := range b.ivs {
		if b.ivs[i] == iv && b.ids[i] == id {
			b.ivs = append(b.ivs[:i], b.ivs[i+1:]...)
			b.ids = append(b.ids[:i], b.ids[i+1:]...)
			return true
		}
	}
	return false
}

func (b *brute) intersecting(q interval.Interval, now int64) []int64 {
	var out []int64
	for i, iv := range b.ivs {
		eff := iv
		if eff.Upper == interval.NowMarker {
			eff.Upper = now
			if !eff.Valid() {
				continue
			}
		}
		if eff.Intersects(q) {
			out = append(out, b.ids[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertAndIntersectBasic(t *testing.T) {
	tr, _ := newTestTree(t, Options{})
	data := []struct {
		iv interval.Interval
		id int64
	}{
		{interval.New(1, 5), 1},
		{interval.New(3, 9), 2},
		{interval.New(10, 20), 3},
		{interval.New(15, 15), 4},
		{interval.New(0, 100), 5},
	}
	for _, d := range data {
		if err := tr.Insert(d.iv, d.id); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != 5 {
		t.Fatalf("Count = %d, want 5", tr.Count())
	}
	cases := []struct {
		q    interval.Interval
		want []int64
	}{
		{interval.New(4, 4), []int64{1, 2, 5}},
		{interval.New(6, 9), []int64{2, 5}},
		{interval.New(21, 30), []int64{5}},
		{interval.New(101, 200), nil},
		{interval.New(15, 15), []int64{3, 4, 5}},
		{interval.New(-50, 0), []int64{5}},
		{interval.New(-50, -1), nil},
	}
	for _, c := range cases {
		got, err := tr.Intersecting(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, c.want) {
			t.Errorf("Intersecting(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestInvalidIntervalRejected(t *testing.T) {
	tr, _ := newTestTree(t, Options{})
	if err := tr.Insert(interval.New(5, 3), 1); err == nil {
		t.Fatal("invalid interval accepted")
	}
	// Invalid query returns no results, no error.
	ids, err := tr.Intersecting(interval.New(5, 3))
	if err != nil || ids != nil {
		t.Fatalf("invalid query = %v, %v", ids, err)
	}
}

func TestOffsetFarFromOrigin(t *testing.T) {
	// §3.4: intervals located far from the origin must not blow up the
	// tree height; offset shifts the data space.
	tr, _ := newTestTree(t, Options{})
	base := int64(1_000_000_000)
	b := &brute{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		lo := base + rng.Int63n(4096)
		iv := interval.New(lo, lo+rng.Int63n(256))
		tr.Insert(iv, int64(i))
		b.insert(iv, int64(i))
	}
	p := tr.Params()
	if !p.OffsetSet || p.Offset < base-1-4096 {
		t.Fatalf("offset not applied: %+v", p)
	}
	if p.RightRoot > 8192 {
		t.Fatalf("rightRoot = %d: data space not shifted compactly", p.RightRoot)
	}
	if h := tr.Height(); h > 14 {
		t.Fatalf("height = %d, want around log2(4096+256)+1", h)
	}
	for i := 0; i < 50; i++ {
		lo := base + rng.Int63n(4500) - 200
		q := interval.New(lo, lo+rng.Int63n(500))
		got, err := tr.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, b.intersecting(q, tr.Now())) {
			t.Fatalf("query %v: got %v, want %v", q, got, b.intersecting(q, tr.Now()))
		}
	}
}

func TestDynamicExpansionBothSides(t *testing.T) {
	// §3.4: the data space must expand at the upper AND the lower bound.
	tr, _ := newTestTree(t, Options{})
	b := &brute{}
	// First insert fixes offset; later intervals lie far left and far
	// right of it.
	seq := []interval.Interval{
		interval.New(1000, 1010),
		interval.New(5000, 5100),   // expand right
		interval.New(10, 20),       // expand left (negative shifted)
		interval.New(-8000, -7900), // further left
		interval.New(99999, 99999), // far right point
		interval.New(-8000, 99999), // spans everything incl. node 0
	}
	for i, iv := range seq {
		if err := tr.Insert(iv, int64(i)); err != nil {
			t.Fatal(err)
		}
		b.insert(iv, int64(i))
	}
	p := tr.Params()
	if p.LeftRoot >= 0 {
		t.Fatalf("leftRoot = %d, want negative after left expansion", p.LeftRoot)
	}
	if p.RightRoot <= 0 {
		t.Fatalf("rightRoot = %d, want positive", p.RightRoot)
	}
	queries := []interval.Interval{
		interval.New(-10000, 0),
		interval.New(0, 100000),
		interval.New(-8000, -8000),
		interval.New(1005, 1005),
		interval.New(-7950, 15),
		interval.New(99999, 200000),
		interval.New(-999999, 999999),
	}
	for _, q := range queries {
		got, err := tr.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		want := b.intersecting(q, tr.Now())
		if !equalIDs(got, want) {
			t.Fatalf("query %v: got %v, want %v", q, got, want)
		}
	}
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	// The central correctness test: mixed inserts/deletes/queries checked
	// against a brute-force model, across several data shapes.
	shapes := []struct {
		name            string
		domain, maxLen  int64
		negativeAllowed bool
	}{
		{"small-dense", 256, 32, false},
		{"wide-sparse", 1 << 20, 4096, false},
		{"negative", 4096, 512, true},
		{"points-only", 1024, 0, false},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			tr, _ := newTestTree(t, Options{})
			b := &brute{}
			rng := rand.New(rand.NewSource(99))
			nextID := int64(0)
			for step := 0; step < 3000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert
					lo := rng.Int63n(sh.domain)
					if sh.negativeAllowed {
						lo -= sh.domain / 2
					}
					ln := int64(0)
					if sh.maxLen > 0 {
						ln = rng.Int63n(sh.maxLen)
					}
					iv := interval.New(lo, lo+ln)
					if err := tr.Insert(iv, nextID); err != nil {
						t.Fatal(err)
					}
					b.insert(iv, nextID)
					nextID++
				case op < 7 && len(b.ivs) > 0: // delete random live interval
					i := rng.Intn(len(b.ivs))
					iv, id := b.ivs[i], b.ids[i]
					ok, err := tr.Delete(iv, id)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("step %d: Delete(%v,%d) = false", step, iv, id)
					}
					b.remove(iv, id)
				case op < 8: // delete something absent
					iv := interval.New(rng.Int63n(sh.domain), rng.Int63n(sh.domain)+sh.domain)
					ok, err := tr.Delete(iv, 1<<40)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						t.Fatalf("step %d: deleted absent interval", step)
					}
				default: // query
					lo := rng.Int63n(sh.domain)
					if sh.negativeAllowed {
						lo -= sh.domain / 2
					}
					q := interval.New(lo, lo+rng.Int63n(sh.domain/4+1))
					got, err := tr.Intersecting(q)
					if err != nil {
						t.Fatal(err)
					}
					want := b.intersecting(q, tr.Now())
					if !equalIDs(got, want) {
						t.Fatalf("step %d: query %v: got %v, want %v", step, q, got, want)
					}
				}
			}
			if tr.Count() != int64(len(b.ivs)) {
				t.Fatalf("Count = %d, model %d", tr.Count(), len(b.ivs))
			}
		})
	}
}

func TestAblationVariantsAgree(t *testing.T) {
	// The Figure-8 three-branch form and the minstep-disabled traversal
	// must return exactly the intersection results of the optimized tree.
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 128})
	db, _ := rel.CreateDB(st)
	base, err := Create(db, "iv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b := &brute{}
	for i := 0; i < 1500; i++ {
		lo := rng.Int63n(1 << 16)
		iv := interval.New(lo, lo+rng.Int63n(2048))
		base.Insert(iv, int64(i))
		b.insert(iv, int64(i))
	}
	threeBranch, err := Open(db, "iv", Options{ThreeBranchQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	noMinstep, err := Open(db, "iv", Options{DisableMinStep: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		lo := rng.Int63n(1 << 16)
		q := interval.New(lo, lo+rng.Int63n(4096))
		want := b.intersecting(q, base.Now())
		for name, tr := range map[string]*Tree{"two-fold": base, "three-branch": threeBranch, "no-minstep": noMinstep} {
			got, err := tr.Intersecting(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got, want) {
				t.Fatalf("%s: query %v: got %d ids, want %d", name, q, len(got), len(want))
			}
		}
	}
}

func TestMinStepPruningReducesProbes(t *testing.T) {
	// With only long intervals stored, minstep grows and queries must
	// touch fewer nodes than with pruning disabled (§3.4, Figure 15).
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 512})
	db, _ := rel.CreateDB(st)
	tr, _ := Create(db, "iv", Options{})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		lo := rng.Int63n(1 << 18)
		tr.Insert(interval.New(lo, lo+1024+rng.Int63n(1024)), int64(i))
	}
	p := tr.Params()
	if p.MinStep < 2 {
		t.Fatalf("minstep = %d; long intervals should register high", p.MinStep)
	}
	q := interval.New(5000, 5100)
	pruned := tr.collectNodes(q)
	tr2, _ := Open(db, "iv", Options{DisableMinStep: true})
	full := tr2.collectNodes(q)
	if len(pruned.Left)+len(pruned.Right) >= len(full.Left)+len(full.Right) {
		t.Fatalf("pruning did not reduce probes: %d vs %d",
			len(pruned.Left)+len(pruned.Right), len(full.Left)+len(full.Right))
	}
}

func TestSkeletonMaterialization(t *testing.T) {
	// §7 extension: with the backbone partially materialized, queries drop
	// probes of empty nodes but return identical results.
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	plain, err := Create(db, "iv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	b := &brute{}
	for i := 0; i < 2000; i++ {
		lo := rng.Int63n(1 << 18)
		iv := interval.New(lo, lo+rng.Int63n(256))
		plain.Insert(iv, int64(i))
		b.insert(iv, int64(i))
	}
	skel, err := Open(db, "iv", Options{MaterializeBackbone: true})
	if err != nil {
		t.Fatal(err)
	}
	if skel.SkeletonSize() <= 0 {
		t.Fatalf("SkeletonSize = %d", skel.SkeletonSize())
	}
	if plain.SkeletonSize() != -1 {
		t.Fatal("plain tree reports a skeleton")
	}
	probesPlain, probesSkel := 0, 0
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(1 << 18)
		q := interval.New(lo, lo+rng.Int63n(4096))
		want := b.intersecting(q, plain.Now())
		for _, tr := range []*Tree{plain, skel} {
			got, err := tr.Intersecting(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got, want) {
				t.Fatalf("query %v: got %d, want %d", q, len(got), len(want))
			}
		}
		tp := plain.collectNodes(q)
		ts := skel.collectNodes(q)
		probesPlain += len(tp.Left) + len(tp.Right)
		probesSkel += len(ts.Left) + len(ts.Right)
	}
	if probesSkel >= probesPlain {
		t.Fatalf("skeleton did not reduce probes: %d vs %d", probesSkel, probesPlain)
	}
	// Maintenance on insert and delete.
	iv := interval.New(777777, 777999)
	skel.Insert(iv, 99999)
	ids, _ := skel.Intersecting(interval.Point(777800))
	if !equalIDs(ids, []int64{99999}) {
		t.Fatalf("after insert: %v", ids)
	}
	ok, _ := skel.Delete(iv, 99999)
	if !ok {
		t.Fatal("delete failed")
	}
	ids, _ = skel.Intersecting(interval.Point(777800))
	if len(ids) != 0 {
		t.Fatalf("after delete: %v", ids)
	}
}

func TestParamsPersistence(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 128})
	db, _ := rel.CreateDB(st)
	tr, _ := Create(db, "iv", Options{})
	tr.Insert(interval.New(100, 200), 1)
	tr.Insert(interval.New(5000, 6000), 2)
	want := tr.Params()

	tr2, err := Open(db, "iv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Params() != want {
		t.Fatalf("reopened params = %+v, want %+v", tr2.Params(), want)
	}
	ids, err := tr2.Intersecting(interval.New(150, 5500))
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids, []int64{1, 2}) {
		t.Fatalf("reopened query = %v", ids)
	}
}

func TestPointWorkload(t *testing.T) {
	// Degenerate intervals: minstep must hit 1 and stab queries work.
	tr, _ := newTestTree(t, Options{})
	for i := int64(0); i < 500; i++ {
		if err := tr.Insert(interval.Point(i*2), i); err != nil {
			t.Fatal(err)
		}
	}
	if ms := tr.Params().MinStep; ms != 1 {
		t.Fatalf("minstep = %d, want 1 for point data", ms)
	}
	ids, err := tr.Stab(100)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids, []int64{50}) {
		t.Fatalf("Stab(100) = %v", ids)
	}
	ids, _ = tr.Stab(101)
	if len(ids) != 0 {
		t.Fatalf("Stab(101) = %v, want empty", ids)
	}
}

func TestProbeCountBoundedByHeight(t *testing.T) {
	// §4.4: the transient collections have O(h) entries; the number of
	// index probes per query must not depend on n.
	tr, _ := newTestTree(t, Options{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		lo := rng.Int63n(1 << 20)
		tr.Insert(interval.New(lo, lo+rng.Int63n(2048)), int64(i))
	}
	h := tr.Height()
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(1 << 20)
		q := interval.New(lo, lo+rng.Int63n(8192))
		tn := tr.collectNodes(q)
		probes := len(tn.Left) + len(tn.Right)
		// Upper bound: both root-to-bound paths (2h) plus the range pair
		// plus the two temporal sentinels.
		if probes > 2*h+3 {
			t.Fatalf("query %v: %d probes exceeds 2h+3 = %d", q, probes, 2*h+3)
		}
	}
}

func TestTemporalNowAndInfinity(t *testing.T) {
	tr, _ := newTestTree(t, Options{})
	// Regular, infinite, and now-relative intervals side by side (§4.6).
	tr.Insert(interval.New(10, 20), 1)
	tr.InsertInfinite(15, 2)                         // [15, ∞)
	tr.InsertNow(18, 3)                              // [18, now]
	tr.Insert(interval.New(5, interval.Infinity), 4) // routed to InsertInfinite
	tr.Insert(interval.New(40, interval.NowMarker), 5)

	tr.SetNow(50)
	cases := []struct {
		q    interval.Interval
		want []int64
	}{
		{interval.New(0, 9), []int64{4}},            // only [5,∞)
		{interval.New(16, 17), []int64{1, 2, 4}},    // now-interval [18,now] starts later
		{interval.New(19, 25), []int64{1, 2, 3, 4}}, // now >= 19
		{interval.New(45, 60), []int64{2, 3, 4, 5}},
		{interval.New(1000, 2000), []int64{2, 4}}, // beyond now: only infinite
	}
	for _, c := range cases {
		got, err := tr.Intersecting(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, c.want) {
			t.Errorf("now=50 query %v = %v, want %v", c.q, got, c.want)
		}
	}

	// Advancing now changes results with zero index maintenance.
	tr.SetNow(17)
	got, _ := tr.Intersecting(interval.New(19, 25))
	if !equalIDs(got, []int64{1, 2, 4}) {
		t.Fatalf("now=17 query = %v, want [1 2 4]", got)
	}

	// Deleting sentinel intervals works.
	ok, err := tr.Delete(interval.New(15, interval.Infinity), 2)
	if err != nil || !ok {
		t.Fatalf("Delete infinite = %v, %v", ok, err)
	}
	ok, err = tr.Delete(interval.New(18, interval.NowMarker), 3)
	if err != nil || !ok {
		t.Fatalf("Delete now = %v, %v", ok, err)
	}
	tr.SetNow(50)
	got, _ = tr.Intersecting(interval.New(19, 25))
	if !equalIDs(got, []int64{1, 4}) {
		t.Fatalf("after sentinel deletes = %v, want [1 4]", got)
	}
}

func TestQueryRelationAgainstBruteForce(t *testing.T) {
	tr, _ := newTestTree(t, Options{})
	b := &brute{}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 800; i++ {
		lo := rng.Int63n(512)
		iv := interval.New(lo, lo+rng.Int63n(64))
		tr.Insert(iv, int64(i))
		b.insert(iv, int64(i))
	}
	queries := []interval.Interval{
		interval.New(100, 150),
		interval.New(0, 0),
		interval.New(200, 200),
		interval.New(50, 400),
		interval.New(511, 575),
	}
	for _, q := range queries {
		for r := interval.Relation(0); int(r) < interval.NumRelations; r++ {
			got, err := tr.QueryRelation(r, q)
			if err != nil {
				t.Fatal(err)
			}
			var want []int64
			for i, iv := range b.ivs {
				if r.Holds(iv, q) {
					want = append(want, b.ids[i])
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equalIDs(got, want) {
				t.Fatalf("relation %v, query %v: got %d ids, want %d (got %v want %v)",
					r, q, len(got), len(want), got, want)
			}
		}
	}
}

func TestHeightIndependentOfN(t *testing.T) {
	// §3.5: "In any case, the tree height does not depend on the number of
	// intervals."
	heights := map[int]int{}
	for _, n := range []int{100, 1000, 5000} {
		tr, _ := newTestTree(t, Options{})
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < n; i++ {
			lo := rng.Int63n(1 << 16)
			tr.Insert(interval.New(lo, lo+rng.Int63n(16)), int64(i))
		}
		heights[n] = tr.Height()
	}
	if heights[1000] > heights[100]+1 || heights[5000] > heights[1000]+1 {
		t.Fatalf("height grew with n: %v", heights)
	}
}

func TestDuplicateIntervalsDistinctIDs(t *testing.T) {
	tr, _ := newTestTree(t, Options{})
	iv := interval.New(10, 20)
	for id := int64(0); id < 10; id++ {
		if err := tr.Insert(iv, id); err != nil {
			t.Fatal(err)
		}
	}
	ids, _ := tr.Intersecting(interval.New(15, 15))
	if len(ids) != 10 {
		t.Fatalf("got %d ids, want 10", len(ids))
	}
	// Delete removes exactly one registration per call.
	ok, _ := tr.Delete(iv, 3)
	if !ok {
		t.Fatal("delete failed")
	}
	ids, _ = tr.Intersecting(interval.New(15, 15))
	if len(ids) != 9 {
		t.Fatalf("after delete: %d ids, want 9", len(ids))
	}
	ok, _ = tr.Delete(iv, 3)
	if ok {
		t.Fatal("second delete of same id succeeded")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr, _ := newTestTree(t, Options{})
	ids, err := tr.Intersecting(interval.New(0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("empty tree returned %v", ids)
	}
	ok, err := tr.Delete(interval.New(0, 1), 1)
	if err != nil || ok {
		t.Fatalf("delete on empty tree = %v, %v", ok, err)
	}
}
