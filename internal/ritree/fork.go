package ritree

// This file implements the virtual backbone arithmetic: fork-node
// computation (paper Figure 4 extended with the 0-rooted two-subtree layout
// of Figure 6) and the node-level step helper used for minstep tracking.

// levelStep returns the step value 2^level of a backbone node, i.e. the
// largest power of two dividing the node value. The node must be nonzero.
func levelStep(node int64) int64 {
	return node & -node
}

// floorPow2 returns the largest power of two <= v, for v >= 1.
func floorPow2(v int64) int64 {
	p := int64(1)
	for p<<1 <= v && p<<1 > 0 {
		p <<= 1
	}
	return p
}

// forkNode descends the virtual backbone for the shifted interval [l, u]
// and returns its fork node: the topmost node w with l <= w <= u
// (paper §3.3). The descent is pure integer arithmetic — no I/O.
//
// The global root is 0; negative bounds descend the left subtree rooted at
// leftRoot, positive ones the right subtree rooted at rightRoot (§3.4).
// The caller must have expanded the roots to cover [l, u] first (Insert
// does; queries tolerate out-of-coverage bounds, see traverse).
func (p Params) forkNode(l, u int64) int64 {
	var node int64
	switch {
	case u < 0:
		node = p.LeftRoot
	case l > 0:
		node = p.RightRoot
	default:
		return 0 // the interval spans (or touches) the global root
	}
	step := node
	if step < 0 {
		step = -step
	}
	for step /= 2; step >= 1; step /= 2 {
		switch {
		case u < node:
			node -= step
		case node < l:
			node += step
		default:
			return node
		}
	}
	return node
}

// expandRoots grows leftRoot/rightRoot so that the shifted interval [l, u]
// is covered, following paper Figure 6:
//
//	if (u < 0 and l <= 2*leftRoot)   leftRoot  = -2^floor(log2(-l))
//	if (0 < l and u >= 2*rightRoot)  rightRoot =  2^floor(log2(u))
func (p *Params) expandRoots(l, u int64) {
	if u < 0 && l <= 2*p.LeftRoot {
		p.LeftRoot = -floorPow2(-l)
	}
	if 0 < l && u >= 2*p.RightRoot {
		p.RightRoot = floorPow2(u)
	}
}
