package ritree

import (
	"errors"
	"fmt"
	"strings"

	"ritree/internal/interval"
	"ritree/internal/obs"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

// This file packages the RI-tree as a user-defined indextype for the
// extensible indexing framework (paper §5): after
//
//	CREATE INDEX resv_iv ON Reservations (arrival, departure) INDEXTYPE IS ritree
//
// the engine transparently maintains a hidden RI-tree on every INSERT and
// DELETE against the base table, and rewrites the INTERSECTS operator in
// WHERE clauses into an RI-tree scan — "end users can use the Relational
// Interval Tree just like a built-in index".

// OperatorIntersects is the SQL operator name served by the indextype:
// INTERSECTS(lowerCol, upperCol, :qlo, :qhi).
const OperatorIntersects = "intersects"

// OperatorContainsPoint is the stabbing operator:
// CONTAINS_POINT(lowerCol, upperCol, :p).
const OperatorContainsPoint = "contains_point"

// IndexTypeName is the name used in INDEXTYPE IS clauses.
const IndexTypeName = "ritree"

// hiddenTreeName returns the name of the indextype's backing RI-tree.
func hiddenTreeName(indexName string) string { return indexName + "_rit$" }

// chkTableName returns the name of the indextype's checksum-mirror
// relation: a single (chk) row holding the XOR of rel.RowChecksum over
// the base rows the index was maintained with. Comparing it against the
// base table's ContentChecksum at attach time catches DML that ran
// without index maintenance even when it nets to zero rows — the case
// the PR-2 row-count verification provably misses.
func chkTableName(indexName string) string { return hiddenTreeName(indexName) + "_chk" }

// RegisterIndexType makes "INDEXTYPE IS ritree" available on the engine,
// for both CREATE INDEX (build new hidden relations) and catalog
// re-attach on reopen (adopt the persisted relations after verifying them
// against the base table). The optional PARAMETERS / WITH pairs:
//
//	skeleton = 0|1   materialize the backbone (§7 Skeleton-Index outlook)
func RegisterIndexType(e *sqldb.Engine) {
	e.RegisterIndexType(IndexTypeName, sqldb.IndexTypeFuncs{
		Create: func(eng *sqldb.Engine, indexName, table string, cols []string, params map[string]string) (sqldb.CustomIndex, error) {
			return newIndexType(eng, indexName, table, cols, params, true)
		},
		Attach: func(eng *sqldb.Engine, indexName, table string, cols []string, params map[string]string) (sqldb.CustomIndex, error) {
			return newIndexType(eng, indexName, table, cols, params, false)
		},
		DropStorage: func(eng *sqldb.Engine, indexName, _ string, _ []string) error {
			return DropIndexStorage(eng.DB(), indexName)
		},
	})
}

// DropIndexStorage removes the hidden relations of a ritree domain index
// without attaching it — the cleanup path for a stale index whose attach
// is refused (DROP INDEX then CREATE INDEX must work). Partially or
// wholly missing storage is tolerated.
func DropIndexStorage(db *rel.DB, indexName string) error {
	hidden := hiddenTreeName(indexName)
	var firstErr error
	for _, tb := range []string{tableName(hidden), paramsName(hidden), chkTableName(indexName)} {
		if err := db.DropTable(tb); err != nil && !errors.Is(err, rel.ErrNoSuchTable) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// parseTreeOptions validates the indextype parameters.
func parseTreeOptions(params map[string]string) (Options, error) {
	var opts Options
	for k, v := range params {
		switch k {
		case "skeleton":
			switch v {
			case "0":
			case "1":
				opts.MaterializeBackbone = true
			default:
				return opts, fmt.Errorf("ritree indextype: parameter skeleton must be 0 or 1, got %q", v)
			}
		default:
			return opts, fmt.Errorf("ritree indextype: unknown parameter %q (supported: skeleton)", k)
		}
	}
	return opts, nil
}

// AttachIndexType re-attaches an existing ritree domain index after the
// database is reopened (the tree's relations persist in the catalog; the
// engine-side registration is per session). Most callers should prefer
// sqldb.Engine.AttachCatalogIndexes, which re-attaches every persisted
// definition; this remains for embedding callers that manage definitions
// themselves. The persisted tree is verified against the base table before
// it is trusted (see newIndexType).
func AttachIndexType(e *sqldb.Engine, indexName, table string, cols []string) error {
	ci, err := newIndexType(e, indexName, table, cols, nil, false)
	if err != nil {
		return err
	}
	return e.AttachCustomIndex(ci)
}

type indexType struct {
	name  string
	table string
	cols  []string
	loPos int
	hiPos int
	tree  *Tree
	// Checksum mirror: chk is the XOR of rel.RowChecksum over the rows
	// this index was maintained with, persisted at chkRid in chkTab.
	chkTab *rel.Table
	chkRid rel.RowID
	chk    uint64
}

func newIndexType(e *sqldb.Engine, indexName, table string, cols []string, params map[string]string, create bool) (*indexType, error) {
	if len(cols) != 2 {
		return nil, fmt.Errorf("ritree indextype needs exactly (lower, upper) columns, got %d", len(cols))
	}
	opts, err := parseTreeOptions(params)
	if err != nil {
		return nil, err
	}
	tab, err := e.DB().Table(table)
	if err != nil {
		return nil, err
	}
	lo := tab.Schema().ColIndex(cols[0])
	hi := tab.Schema().ColIndex(cols[1])
	if lo < 0 || hi < 0 {
		return nil, fmt.Errorf("ritree indextype: columns %v not in %s", cols, table)
	}
	ix := &indexType{
		name:  indexName,
		table: table,
		cols:  append([]string(nil), cols...),
		loPos: lo,
		hiPos: hi,
	}
	if create {
		tree, err := Create(e.DB(), hiddenTreeName(indexName), opts)
		if err != nil {
			return nil, err
		}
		// Backfill from existing rows, keyed by heap row id. Rows are
		// collected first: the scan holds the database read lock, and
		// inserting from inside the callback would self-deadlock on the
		// write lock. The checksum mirror accumulates over the same scan,
		// so it lands equal to the base table's ContentChecksum.
		type entry struct {
			iv  interval.Interval
			rid rel.RowID
		}
		var entries []entry
		err = tab.Scan(func(rid rel.RowID, row []int64) bool {
			entries = append(entries, entry{interval.New(row[lo], row[hi]), rid})
			return true
		})
		if err == nil {
			for _, en := range entries {
				if err = tree.Insert(en.iv, int64(en.rid)); err != nil {
					break
				}
			}
		}
		if err == nil {
			// Seed the mirror from the table's own maintained checksum
			// (not a recomputation): the two then agree by definition at
			// creation, including over tables whose header predates the
			// checksum field.
			ix.chkTab, err = e.DB().CreateTable(chkTableName(indexName), []string{"chk"})
			if err == nil {
				ix.chk = tab.ContentChecksum()
				ix.chkRid, err = ix.chkTab.Insert([]int64{int64(ix.chk)})
			}
		}
		if err != nil {
			_ = tree.Drop()
			_ = e.DB().DropTable(chkTableName(indexName))
			return nil, err
		}
		ix.tree = tree
	} else {
		tree, err := Open(e.DB(), hiddenTreeName(indexName), opts)
		if err != nil {
			return nil, err
		}
		// The indextype registers exactly one interval per base row, so a
		// count mismatch proves DML ran while the index was not attached
		// (e.g. a session that reopened the database without
		// AttachCatalogIndexes). Trusting such a tree returns wrong query
		// results; refuse it instead.
		if have, want := tree.Count(), tab.RowCount(); have != want {
			return nil, fmt.Errorf("ritree indextype: persisted index %s is stale: hidden tree holds %d intervals but table %s has %d rows — DML ran without index maintenance; DROP INDEX %s and recreate it",
				indexName, have, table, want, indexName)
		}
		// Content-level check: equal counts do not prove consistency
		// (unattended insert-then-delete DML nets to zero rows). The
		// persisted checksum mirror reflects exactly the DML this index
		// was maintained with; the base table's content checksum reflects
		// all DML. Divergence means maintenance was skipped. Indexes
		// created before the mirror existed have no chk relation and fall
		// back to the count check alone.
		if chkTab, err := e.DB().Table(chkTableName(indexName)); err == nil {
			found := false
			var chk uint64
			var chkRid rel.RowID
			scanErr := chkTab.Scan(func(rid rel.RowID, row []int64) bool {
				chkRid, chk, found = rid, uint64(row[0]), true
				return false
			})
			if scanErr != nil {
				return nil, scanErr
			}
			if !found {
				return nil, fmt.Errorf("ritree indextype: checksum relation of index %s is empty", indexName)
			}
			if have := tab.ContentChecksum(); chk != have {
				return nil, fmt.Errorf("ritree indextype: persisted index %s is stale: content checksum %x does not match table %s checksum %x — DML ran without index maintenance (row counts happen to agree); DROP INDEX %s and recreate it",
					indexName, chk, table, have, indexName)
			}
			ix.chkTab, ix.chkRid, ix.chk = chkTab, chkRid, chk
		}
		ix.tree = tree
	}
	return ix, nil
}

// foldChecksum XORs delta into the persisted checksum mirror. A nil
// chkTab (an index created before the mirror existed and attached via
// the fallback path) keeps working without content-level detection.
func (ix *indexType) foldChecksum(delta uint64) error {
	if ix.chkTab == nil {
		return nil
	}
	ix.chk ^= delta
	if err := ix.chkTab.Update(ix.chkRid, []int64{int64(ix.chk)}); err != nil {
		ix.chk ^= delta
		return err
	}
	return nil
}

// Name implements sqldb.CustomIndex.
func (ix *indexType) Name() string { return ix.name }

// Table implements sqldb.CustomIndex.
func (ix *indexType) Table() string { return ix.table }

// Columns implements sqldb.CustomIndex.
func (ix *indexType) Columns() []string { return append([]string(nil), ix.cols...) }

// HasOperator implements sqldb.CustomIndex.
func (ix *indexType) HasOperator(op string) bool {
	op = strings.ToLower(op)
	return op == OperatorIntersects || op == OperatorContainsPoint
}

// OnInsert implements sqldb.CustomIndex: index maintenance by trigger
// (§5: "the computation and storage of the fork node ... can be performed
// automatically by database triggers"). The checksum mirror folds in the
// same row the heap folded in, keeping the two in lockstep.
func (ix *indexType) OnInsert(row []int64, rid rel.RowID) error {
	if err := ix.tree.Insert(interval.New(row[ix.loPos], row[ix.hiPos]), int64(rid)); err != nil {
		return err
	}
	return ix.foldChecksum(rel.RowChecksum(row, rid))
}

// OnDelete implements sqldb.CustomIndex.
func (ix *indexType) OnDelete(row []int64, rid rel.RowID) error {
	if _, err := ix.tree.Delete(interval.New(row[ix.loPos], row[ix.hiPos]), int64(rid)); err != nil {
		return err
	}
	return ix.foldChecksum(rel.RowChecksum(row, rid))
}

// OnBulkInsert implements sqldb.BulkMaintainer: a bulk append to the base
// table maintains the hidden tree through its BulkLoad, which rebuilds
// the composite indexes tightly packed instead of paying a B+-tree
// insert per row. The batch is validated up front: Tree.BulkLoad drops
// the composite indexes while it runs, so it must only ever see input it
// will accept — a mid-load refusal would leave the tree without its
// indexes and the engine's rollback (OnDelete per row) scanning dropped
// storage. After validation the only remaining failure mode is a
// page-store I/O error, the same mid-statement hazard every other write
// path shares.
func (ix *indexType) OnBulkInsert(rows [][]int64, rids []rel.RowID) error {
	ivs := make([]interval.Interval, len(rows))
	ids := make([]int64, len(rows))
	delta := uint64(0)
	for i, row := range rows {
		iv := interval.New(row[ix.loPos], row[ix.hiPos])
		if !iv.Valid() && iv.Upper != interval.Infinity && iv.Upper != interval.NowMarker {
			return fmt.Errorf("ritree indextype: invalid interval %v in bulk batch (row %d of %d)", iv, i, len(rows))
		}
		ivs[i] = iv
		ids[i] = int64(rids[i])
		delta ^= rel.RowChecksum(row, rids[i])
	}
	if err := ix.tree.BulkLoad(ivs, ids); err != nil {
		return err
	}
	return ix.foldChecksum(delta)
}

// SetNow implements sqldb.NowKeeper: the RI-tree carries the paper's
// §4.6 now-relative interval semantics into the unified collection API.
func (ix *indexType) SetNow(now int64) { ix.tree.SetNow(now) }

// Now implements sqldb.NowKeeper.
func (ix *indexType) Now() int64 { return ix.tree.Now() }

// opQuery resolves an operator invocation into the query interval.
func opQuery(op string, args []int64) (interval.Interval, error) {
	switch strings.ToLower(op) {
	case OperatorIntersects:
		if len(args) != 2 {
			return interval.Interval{}, fmt.Errorf("ritree indextype: INTERSECTS needs (:lo, :hi), got %d args", len(args))
		}
		return interval.New(args[0], args[1]), nil
	case OperatorContainsPoint:
		if len(args) != 1 {
			return interval.Interval{}, fmt.Errorf("ritree indextype: CONTAINS_POINT needs (:p), got %d args", len(args))
		}
		return interval.Point(args[0]), nil
	}
	return interval.Interval{}, fmt.Errorf("ritree indextype: unknown operator %q", op)
}

// Scan implements sqldb.CustomIndex: the operator dispatch.
func (ix *indexType) Scan(op string, args []int64, fn func(rid rel.RowID) bool) error {
	q, err := opQuery(op, args)
	if err != nil {
		return err
	}
	return ix.tree.IntersectingFunc(q, func(id int64) bool {
		return fn(rel.RowID(id))
	})
}

// SnapshotScan implements sqldb.SnapshotScanner: the RI-tree's relational
// storage lives entirely in the page store, so the snapshot-bound scan is
// simply the same tree opened read-only against the shadow (snapshot)
// database. The shadow tree sees exactly the committed B+-tree state the
// snapshot pinned, and its evaluation clock is frozen at the live tree's
// current now.
func (ix *indexType) SnapshotScan(shadow *rel.DB) (sqldb.ScanFunc, error) {
	opts := ix.tree.opts
	// Never materialize on a read-only view — Open with the backbone
	// option only reads the persisted parameter row anyway, but be
	// explicit that a snapshot must not trigger writes.
	opts.MaterializeBackbone = false
	t, err := Open(shadow, hiddenTreeName(ix.name), opts)
	if err != nil {
		return nil, err
	}
	t.SetNow(ix.tree.Now())
	return func(op string, args []int64, fn func(rid rel.RowID) bool) error {
		q, err := opQuery(op, args)
		if err != nil {
			return err
		}
		return t.IntersectingFunc(q, func(id int64) bool {
			return fn(rel.RowID(id))
		})
	}, nil
}

// Drop implements sqldb.CustomIndex.
func (ix *indexType) Drop() error {
	if err := ix.tree.Drop(); err != nil {
		return err
	}
	if err := ix.tree.db.DropTable(chkTableName(ix.name)); err != nil && !errors.Is(err, rel.ErrNoSuchTable) {
		return err
	}
	return nil
}

// BindMetrics implements sqldb.MetricsBinder: the engine calls it with
// the DB's registry and an "index.<name>" prefix when the index is
// created or re-attached, wiring the RI-tree query-shape counters into
// the same family as the executor and page-store metrics.
func (ix *indexType) BindMetrics(reg *obs.Registry, prefix string) {
	ix.tree.SetMetrics(reg, prefix)
}

// BackingTree exposes the hidden RI-tree (for statistics in tests and
// benchmarks).
func (ix *indexType) BackingTree() *Tree { return ix.tree }
