package ritree

import (
	"errors"
	"fmt"
	"strings"

	"ritree/internal/interval"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

// This file packages the RI-tree as a user-defined indextype for the
// extensible indexing framework (paper §5): after
//
//	CREATE INDEX resv_iv ON Reservations (arrival, departure) INDEXTYPE IS ritree
//
// the engine transparently maintains a hidden RI-tree on every INSERT and
// DELETE against the base table, and rewrites the INTERSECTS operator in
// WHERE clauses into an RI-tree scan — "end users can use the Relational
// Interval Tree just like a built-in index".

// OperatorIntersects is the SQL operator name served by the indextype:
// INTERSECTS(lowerCol, upperCol, :qlo, :qhi).
const OperatorIntersects = "intersects"

// OperatorContainsPoint is the stabbing operator:
// CONTAINS_POINT(lowerCol, upperCol, :p).
const OperatorContainsPoint = "contains_point"

// IndexTypeName is the name used in INDEXTYPE IS clauses.
const IndexTypeName = "ritree"

// hiddenTreeName returns the name of the indextype's backing RI-tree.
func hiddenTreeName(indexName string) string { return indexName + "_rit$" }

// RegisterIndexType makes "INDEXTYPE IS ritree" available on the engine,
// for both CREATE INDEX (build new hidden relations) and catalog
// re-attach on reopen (adopt the persisted relations after verifying them
// against the base table).
func RegisterIndexType(e *sqldb.Engine) {
	e.RegisterIndexType(IndexTypeName, sqldb.IndexTypeFuncs{
		Create: func(eng *sqldb.Engine, indexName, table string, cols []string) (sqldb.CustomIndex, error) {
			return newIndexType(eng, indexName, table, cols, true)
		},
		Attach: func(eng *sqldb.Engine, indexName, table string, cols []string) (sqldb.CustomIndex, error) {
			return newIndexType(eng, indexName, table, cols, false)
		},
		DropStorage: func(eng *sqldb.Engine, indexName, _ string, _ []string) error {
			return DropIndexStorage(eng.DB(), indexName)
		},
	})
}

// DropIndexStorage removes the hidden relations of a ritree domain index
// without attaching it — the cleanup path for a stale index whose attach
// is refused (DROP INDEX then CREATE INDEX must work). Partially or
// wholly missing storage is tolerated.
func DropIndexStorage(db *rel.DB, indexName string) error {
	hidden := hiddenTreeName(indexName)
	var firstErr error
	for _, tb := range []string{tableName(hidden), paramsName(hidden)} {
		if err := db.DropTable(tb); err != nil && !errors.Is(err, rel.ErrNoSuchTable) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AttachIndexType re-attaches an existing ritree domain index after the
// database is reopened (the tree's relations persist in the catalog; the
// engine-side registration is per session). Most callers should prefer
// sqldb.Engine.AttachCatalogIndexes, which re-attaches every persisted
// definition; this remains for embedding callers that manage definitions
// themselves. The persisted tree is verified against the base table before
// it is trusted (see newIndexType).
func AttachIndexType(e *sqldb.Engine, indexName, table string, cols []string) error {
	ci, err := newIndexType(e, indexName, table, cols, false)
	if err != nil {
		return err
	}
	return e.AttachCustomIndex(ci)
}

type indexType struct {
	name  string
	table string
	cols  []string
	loPos int
	hiPos int
	tree  *Tree
}

func newIndexType(e *sqldb.Engine, indexName, table string, cols []string, create bool) (*indexType, error) {
	if len(cols) != 2 {
		return nil, fmt.Errorf("ritree indextype needs exactly (lower, upper) columns, got %d", len(cols))
	}
	tab, err := e.DB().Table(table)
	if err != nil {
		return nil, err
	}
	lo := tab.Schema().ColIndex(cols[0])
	hi := tab.Schema().ColIndex(cols[1])
	if lo < 0 || hi < 0 {
		return nil, fmt.Errorf("ritree indextype: columns %v not in %s", cols, table)
	}
	var tree *Tree
	if create {
		tree, err = Create(e.DB(), hiddenTreeName(indexName), Options{})
		if err != nil {
			return nil, err
		}
		// Backfill from existing rows, keyed by heap row id. Rows are
		// collected first: the scan holds the database read lock, and
		// inserting from inside the callback would self-deadlock on the
		// write lock.
		type entry struct {
			iv  interval.Interval
			rid rel.RowID
		}
		var entries []entry
		err = tab.Scan(func(rid rel.RowID, row []int64) bool {
			entries = append(entries, entry{interval.New(row[lo], row[hi]), rid})
			return true
		})
		if err == nil {
			for _, en := range entries {
				if err = tree.Insert(en.iv, int64(en.rid)); err != nil {
					break
				}
			}
		}
		if err != nil {
			_ = tree.Drop()
			return nil, err
		}
	} else {
		tree, err = Open(e.DB(), hiddenTreeName(indexName), Options{})
		if err != nil {
			return nil, err
		}
		// The indextype registers exactly one interval per base row, so a
		// count mismatch proves DML ran while the index was not attached
		// (e.g. a session that reopened the database without
		// AttachCatalogIndexes). Trusting such a tree returns wrong query
		// results; refuse it instead. The converse does not hold — equal
		// counts do not prove consistency (unattended DML netting to zero
		// rows slips through; a checksum is a ROADMAP follow-up) — but the
		// check catches the common divergence cheaply, at O(1).
		if have, want := tree.Count(), tab.RowCount(); have != want {
			return nil, fmt.Errorf("ritree indextype: persisted index %s is stale: hidden tree holds %d intervals but table %s has %d rows — DML ran without index maintenance; DROP INDEX %s and recreate it",
				indexName, have, table, want, indexName)
		}
	}
	return &indexType{
		name:  indexName,
		table: table,
		cols:  append([]string(nil), cols...),
		loPos: lo,
		hiPos: hi,
		tree:  tree,
	}, nil
}

// Name implements sqldb.CustomIndex.
func (ix *indexType) Name() string { return ix.name }

// Table implements sqldb.CustomIndex.
func (ix *indexType) Table() string { return ix.table }

// Columns implements sqldb.CustomIndex.
func (ix *indexType) Columns() []string { return append([]string(nil), ix.cols...) }

// HasOperator implements sqldb.CustomIndex.
func (ix *indexType) HasOperator(op string) bool {
	op = strings.ToLower(op)
	return op == OperatorIntersects || op == OperatorContainsPoint
}

// OnInsert implements sqldb.CustomIndex: index maintenance by trigger
// (§5: "the computation and storage of the fork node ... can be performed
// automatically by database triggers").
func (ix *indexType) OnInsert(row []int64, rid rel.RowID) error {
	return ix.tree.Insert(interval.New(row[ix.loPos], row[ix.hiPos]), int64(rid))
}

// OnDelete implements sqldb.CustomIndex.
func (ix *indexType) OnDelete(row []int64, rid rel.RowID) error {
	_, err := ix.tree.Delete(interval.New(row[ix.loPos], row[ix.hiPos]), int64(rid))
	return err
}

// OnBulkInsert implements sqldb.BulkMaintainer: a bulk append to the base
// table maintains the hidden tree through its BulkLoad, which rebuilds
// the composite indexes tightly packed instead of paying a B+-tree
// insert per row. The batch is validated up front: Tree.BulkLoad drops
// the composite indexes while it runs, so it must only ever see input it
// will accept — a mid-load refusal would leave the tree without its
// indexes and the engine's rollback (OnDelete per row) scanning dropped
// storage. After validation the only remaining failure mode is a
// page-store I/O error, the same mid-statement hazard every other write
// path shares.
func (ix *indexType) OnBulkInsert(rows [][]int64, rids []rel.RowID) error {
	ivs := make([]interval.Interval, len(rows))
	ids := make([]int64, len(rows))
	for i, row := range rows {
		iv := interval.New(row[ix.loPos], row[ix.hiPos])
		if !iv.Valid() && iv.Upper != interval.Infinity && iv.Upper != interval.NowMarker {
			return fmt.Errorf("ritree indextype: invalid interval %v in bulk batch (row %d of %d)", iv, i, len(rows))
		}
		ivs[i] = iv
		ids[i] = int64(rids[i])
	}
	return ix.tree.BulkLoad(ivs, ids)
}

// SetNow implements sqldb.NowKeeper: the RI-tree carries the paper's
// §4.6 now-relative interval semantics into the unified collection API.
func (ix *indexType) SetNow(now int64) { ix.tree.SetNow(now) }

// Now implements sqldb.NowKeeper.
func (ix *indexType) Now() int64 { return ix.tree.Now() }

// Scan implements sqldb.CustomIndex: the operator dispatch.
func (ix *indexType) Scan(op string, args []int64, fn func(rid rel.RowID) bool) error {
	var q interval.Interval
	switch strings.ToLower(op) {
	case OperatorIntersects:
		if len(args) != 2 {
			return fmt.Errorf("ritree indextype: INTERSECTS needs (:lo, :hi), got %d args", len(args))
		}
		q = interval.New(args[0], args[1])
	case OperatorContainsPoint:
		if len(args) != 1 {
			return fmt.Errorf("ritree indextype: CONTAINS_POINT needs (:p), got %d args", len(args))
		}
		q = interval.Point(args[0])
	default:
		return fmt.Errorf("ritree indextype: unknown operator %q", op)
	}
	return ix.tree.IntersectingFunc(q, func(id int64) bool {
		return fn(rel.RowID(id))
	})
}

// Drop implements sqldb.CustomIndex.
func (ix *indexType) Drop() error { return ix.tree.Drop() }

// BackingTree exposes the hidden RI-tree (for statistics in tests and
// benchmarks).
func (ix *indexType) BackingTree() *Tree { return ix.tree }
