package ritree

import (
	"fmt"
	"slices"

	"ritree/internal/interval"
	"ritree/internal/sqldb"
)

// This file provides the declarative face of the RI-tree: the literal
// Figure 9 SQL statement plus the transient collection binds, executed
// through the sqldb engine. The native methods in query.go run the same
// two-fold plan directly against the rel indexes; both paths must agree
// (and the tests assert they do).

// IntersectionSQL returns the final two-fold intersection statement of
// paper Figure 9 for this tree's relations.
func (t *Tree) IntersectionSQL() string {
	return fmt.Sprintf(`SELECT id FROM %s i, TABLE(:leftNodes) l
WHERE i.node BETWEEN l.min AND l.max AND i.upper >= :lower
UNION ALL
SELECT id FROM %s i, TABLE(:rightNodes) r
WHERE i.node = r.node AND i.lower <= :upper`, tableName(t.name), tableName(t.name))
}

// IntersectionBinds computes the transient leftNodes/rightNodes collections
// for q (§4.2: "managed in the transient session state thus causing no I/O
// effort") along with the :lower/:upper scalar binds.
func (t *Tree) IntersectionBinds(q interval.Interval) map[string]interface{} {
	tn := t.collectNodes(q)
	left := &sqldb.Transient{Cols: []string{"min", "max"}}
	for _, nr := range tn.Left {
		left.Rows = append(left.Rows, []int64{nr.Min, nr.Max})
	}
	right := &sqldb.Transient{Cols: []string{"node"}}
	for _, w := range tn.Right {
		right.Rows = append(right.Rows, []int64{w})
	}
	return map[string]interface{}{
		"leftnodes":  left,
		"rightnodes": right,
		"lower":      q.Lower,
		"upper":      q.Upper,
	}
}

// IntersectingSQL answers the intersection query through the SQL engine —
// the fully declarative path of §5. Results match Intersecting exactly.
func (t *Tree) IntersectingSQL(e *sqldb.Engine, q interval.Interval) ([]int64, error) {
	if !q.Valid() {
		return nil, nil
	}
	res, err := e.Exec(t.IntersectionSQL(), t.IntersectionBinds(q))
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(res.Rows))
	for _, row := range res.Rows {
		ids = append(ids, row[0])
	}
	slices.Sort(ids)
	return ids, nil
}

// ExplainIntersection returns the execution plan of the Figure 9 statement
// — the Figure 10 plan: a UNION-ALL over two nested loops, each driving an
// index range scan from a collection iterator.
func (t *Tree) ExplainIntersection(e *sqldb.Engine, q interval.Interval) (string, error) {
	res, err := e.Exec("EXPLAIN "+t.IntersectionSQL(), t.IntersectionBinds(q))
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}
