package ritree

import (
	"math/rand"
	"strings"
	"testing"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

func TestSQLPathMatchesNativePath(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	tr, err := Create(db, "iv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := sqldb.NewEngine(db)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		lo := rng.Int63n(1 << 16)
		if err := tr.Insert(interval.New(lo, lo+rng.Int63n(1024)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.InsertInfinite(100, 9001)
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(1 << 16)
		q := interval.New(lo, lo+rng.Int63n(4096))
		native, err := tr.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		viaSQL, err := tr.IntersectingSQL(e, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(native) != len(viaSQL) {
			t.Fatalf("query %v: native %d ids, SQL %d ids", q, len(native), len(viaSQL))
		}
		for j := range native {
			if native[j] != viaSQL[j] {
				t.Fatalf("query %v: id %d native %d vs SQL %d", q, j, native[j], viaSQL[j])
			}
		}
	}
}

func TestFigure10PlanForRealTree(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 128})
	db, _ := rel.CreateDB(st)
	tr, _ := Create(db, "iv", Options{})
	e := sqldb.NewEngine(db)
	for i := int64(0); i < 100; i++ {
		tr.Insert(interval.New(i*10, i*10+25), i)
	}
	plan, err := tr.ExplainIntersection(e, interval.New(300, 400))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT STATEMENT",
		"UNION-ALL",
		"NESTED LOOPS",
		"COLLECTION ITERATOR :LEFTNODES",
		"INDEX RANGE SCAN IV_UPPER_IX",
		"COLLECTION ITERATOR :RIGHTNODES",
		"INDEX RANGE SCAN IV_LOWER_IX",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestIndexTypeEndToEnd(t *testing.T) {
	// §5: CREATE INDEX ... INDEXTYPE IS ritree, trigger-maintained, with
	// the INTERSECTS operator rewritten to a domain index scan.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)

	e.MustExec("CREATE TABLE reservations (room int, arrival int, departure int)", nil)
	// Pre-populate some rows, then create the domain index (backfill).
	for i := 0; i < 50; i++ {
		e.MustExec("INSERT INTO reservations VALUES (:r, :a, :d)",
			map[string]interface{}{"r": i, "a": i * 10, "d": i*10 + 15})
	}
	e.MustExec("CREATE INDEX resv_iv ON reservations (arrival, departure) INDEXTYPE IS ritree", nil)
	// Insert more rows after: trigger maintenance.
	for i := 50; i < 100; i++ {
		e.MustExec("INSERT INTO reservations VALUES (:r, :a, :d)",
			map[string]interface{}{"r": i, "a": i * 10, "d": i*10 + 15})
	}

	// The INTERSECTS operator must be served by the domain index.
	r := e.MustExec("EXPLAIN SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi)",
		map[string]interface{}{"lo": 100, "hi": 130})
	if !strings.Contains(r.Plan, "DOMAIN INDEX RESV_IV (INTERSECTS)") {
		t.Fatalf("plan = %s", r.Plan)
	}

	r = e.MustExec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi) ORDER BY room",
		map[string]interface{}{"lo": 100, "hi": 130})
	// Rooms with [10i, 10i+15] intersecting [100, 130]: i in {9,...,13}.
	if len(r.Rows) != 5 || r.Rows[0][0] != 9 || r.Rows[4][0] != 13 {
		t.Fatalf("rows = %v", r.Rows)
	}

	// Stabbing operator.
	r = e.MustExec("SELECT room FROM reservations WHERE contains_point(arrival, departure, :p) ORDER BY room",
		map[string]interface{}{"p": 555})
	if len(r.Rows) != 2 || r.Rows[0][0] != 54 || r.Rows[1][0] != 55 {
		t.Fatalf("rows = %v", r.Rows)
	}

	// Deletes maintain the domain index.
	e.MustExec("DELETE FROM reservations WHERE room = 10", nil)
	r = e.MustExec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi) ORDER BY room",
		map[string]interface{}{"lo": 100, "hi": 130})
	if len(r.Rows) != 4 {
		t.Fatalf("after delete rows = %v", r.Rows)
	}

	// Extra predicates compose with the domain index scan.
	r = e.MustExec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi) AND room > 11 ORDER BY room",
		map[string]interface{}{"lo": 100, "hi": 130})
	if len(r.Rows) != 2 || r.Rows[0][0] != 12 {
		t.Fatalf("rows = %v", r.Rows)
	}

	// DROP INDEX tears down the hidden tree.
	e.MustExec("DROP INDEX resv_iv", nil)
	if _, err := e.Exec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi)",
		map[string]interface{}{"lo": 0, "hi": 1}); err == nil {
		t.Fatal("operator still served after DROP INDEX")
	}
}

func TestIndexTypeReattach(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS ritree", nil)
	e.MustExec("INSERT INTO ev VALUES (10, 20, 1)", nil)

	// A second session over the same database re-attaches the index.
	e2 := sqldb.NewEngine(db)
	RegisterIndexType(e2)
	if err := AttachIndexType(e2, "ev_iv", "ev", []string{"lo", "hi"}); err != nil {
		t.Fatal(err)
	}
	r := e2.MustExec("SELECT id FROM ev WHERE intersects(lo, hi, :a, :b)",
		map[string]interface{}{"a": 15, "b": 15})
	if len(r.Rows) != 1 || r.Rows[0][0] != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestAttachRejectsStaleTree(t *testing.T) {
	// If a session runs DML without the index attached, the persisted tree
	// diverges from the base table; attaching must detect that and refuse
	// (returning results from the stale tree would be silent corruption).
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS ritree", nil)
	e.MustExec("INSERT INTO ev VALUES (10, 20, 1)", nil)

	// A rogue session without the index attached skips its maintenance.
	rogue := sqldb.NewEngine(db)
	rogue.MustExec("INSERT INTO ev VALUES (30, 40, 2)", nil)

	e3 := sqldb.NewEngine(db)
	RegisterIndexType(e3)
	err := AttachIndexType(e3, "ev_iv", "ev", []string{"lo", "hi"})
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("AttachIndexType over stale tree = %v, want stale error", err)
	}
}

func TestAttachRejectsZeroNetRowDML(t *testing.T) {
	// Insert-then-delete DML by a session without the index attached nets
	// to zero rows, so the PR-2 row-count verification passes — only the
	// content checksum catches it. Trusting the tree would serve the
	// deleted row and miss the new one.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS ritree", nil)
	e.MustExec("INSERT INTO ev VALUES (10, 20, 1)", nil)
	e.MustExec("INSERT INTO ev VALUES (30, 40, 2)", nil)

	// A rogue session nets zero rows: one insert, one delete.
	rogue := sqldb.NewEngine(db)
	rogue.MustExec("INSERT INTO ev VALUES (50, 60, 3)", nil)
	rogue.MustExec("DELETE FROM ev WHERE id = 1", nil)

	tab, _ := db.Table("ev")
	if tab.RowCount() != 2 {
		t.Fatalf("RowCount = %d, want 2 (the count check must be blind here)", tab.RowCount())
	}
	e3 := sqldb.NewEngine(db)
	RegisterIndexType(e3)
	err := AttachIndexType(e3, "ev_iv", "ev", []string{"lo", "hi"})
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("AttachIndexType over zero-net-row divergence = %v, want checksum-stale error", err)
	}
}

func TestAttachAcceptsMaintainedIndexChecksum(t *testing.T) {
	// DML through the engine (with maintenance) keeps checksum parity, so
	// a later attach succeeds — including after deletes.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS ritree", nil)
	e.MustExec("INSERT INTO ev VALUES (10, 20, 1)", nil)
	e.MustExec("INSERT INTO ev VALUES (30, 40, 2)", nil)
	e.MustExec("DELETE FROM ev WHERE id = 1", nil)

	e2 := sqldb.NewEngine(db)
	RegisterIndexType(e2)
	if err := AttachIndexType(e2, "ev_iv", "ev", []string{"lo", "hi"}); err != nil {
		t.Fatalf("attach after maintained DML: %v", err)
	}
	r := e2.MustExec("SELECT id FROM ev WHERE intersects(lo, hi, 35, 36)", nil)
	if len(r.Rows) != 1 || r.Rows[0][0] != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}
