package ritree

import (
	"math"
	"slices"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// NodeRange is one entry of the transient leftNodes collection: an
// inclusive range [Min, Max] of backbone nodes probed together in one index
// range scan (paper §4.3 — single nodes are stored as degenerate pairs, and
// the node range covered by the query interval is appended as one pair).
type NodeRange struct {
	Min, Max int64
}

// TransientNodes holds the query-time transient collections leftNodes and
// rightNodes of §4.2/§4.3. They live purely in session memory and cost no
// I/O to build.
type TransientNodes struct {
	// Left is joined against the (node, upper, id) index with the residual
	// predicate upper >= query.Lower.
	Left []NodeRange
	// Right is joined against the (node, lower, id) index with the
	// residual predicate lower <= query.Upper. Node values here include
	// the §4.6 sentinels when applicable.
	Right []int64
}

// maxShifted bounds shifted query coordinates so that arithmetic stays far
// away from the §4.6 sentinel node values and from integer overflow.
const maxShifted = int64(1) << 62

// shiftedBounds maps the query interval into backbone coordinates, clamped
// to a safe range (queries may legitimately extend to ±infinity).
func (t *Tree) shiftedBounds(q interval.Interval) (l, u int64) {
	off := t.params.Offset
	l, u = clampShift(q.Lower, off), clampShift(q.Upper, off)
	return l, u
}

func clampShift(v, off int64) int64 {
	if v > maxShifted {
		v = maxShifted
	} else if v < -maxShifted {
		v = -maxShifted
	}
	s := v - off
	if s > maxShifted {
		return maxShifted
	}
	if s < -maxShifted {
		return -maxShifted
	}
	return s
}

// queryScratch is the per-query working set IntersectingFunc reuses
// across calls via Tree.scratch: the transient node collections and the
// bound buffers handed to the index range scans. Pooling it takes the
// steady-state query down to zero heap allocations (the §4.2 "costs no
// I/O to build" claim, extended to "costs no garbage either") while
// staying safe for the concurrent readers the top-level API allows.
type queryScratch struct {
	tn TransientNodes
	lo [2]int64
	hi [2]int64
}

func (t *Tree) getScratch() *queryScratch {
	if v := t.scratch.Get(); v != nil {
		t.met.scratch(true)
		s := v.(*queryScratch)
		s.tn.Left = s.tn.Left[:0]
		s.tn.Right = s.tn.Right[:0]
		return s
	}
	t.met.scratch(false)
	return &queryScratch{}
}

// collectNodes descends the virtual backbone for the query interval and
// returns the transient collections (freshly allocated; the query path
// proper goes through collectNodesInto and the scratch pool).
func (t *Tree) collectNodes(q interval.Interval) TransientNodes {
	var tn TransientNodes
	t.collectNodesInto(q, &tn)
	return tn
}

// collectNodesInto appends the transient collections for q to tn,
// reusing its backing arrays. All arithmetic happens in shifted
// coordinates; no I/O is performed (§4.2).
func (t *Tree) collectNodesInto(q interval.Interval, tn *TransientNodes) {
	p := t.params
	l, u := t.shiftedBounds(q)

	minstep := p.MinStep
	if t.opts.DisableMinStep {
		minstep = 1
	}

	// walkTo visits the search-path nodes from (start, startStep) toward
	// target, pruning levels below minstep (their secondary lists are
	// provably empty, §3.4 lemma).
	walkTo := func(start, startStep, target int64, visit func(n int64)) {
		n, s := start, startStep
		for {
			if s >= minstep {
				visit(n)
			}
			if n == target {
				return
			}
			s /= 2
			if s < 1 || s < minstep {
				return
			}
			if target < n {
				n -= s
			} else {
				n += s
			}
		}
	}

	// Step 1 (§4.1): from the global root 0 down to the fork node of the
	// query. Nodes left of the query feed leftNodes (scan U(w)), nodes
	// right of it feed rightNodes (scan L(w)).
	node := int64(0)
	haveFork := false
	var fork, forkStep int64
	switch {
	case u < 0:
		if t.skeletonHas(0) {
			tn.Right = append(tn.Right, 0) // 0 > u: scan L(0)
		}
		node = p.LeftRoot
	case l > 0:
		if t.skeletonHas(0) {
			tn.Left = append(tn.Left, NodeRange{0, 0}) // 0 < l: scan U(0)
		}
		node = p.RightRoot
	default:
		haveFork, fork, forkStep = true, 0, 0
	}
	if !haveFork && node != 0 {
		step := node
		if step < 0 {
			step = -step
		}
		for {
			switch {
			case u < node:
				if step >= minstep && t.skeletonHas(node) {
					tn.Right = append(tn.Right, node)
				}
			case node < l:
				if step >= minstep && t.skeletonHas(node) {
					tn.Left = append(tn.Left, NodeRange{node, node})
				}
			default:
				haveFork, fork, forkStep = true, node, step
			}
			if haveFork {
				break
			}
			step /= 2
			if step < 1 || step < minstep {
				break // pruned: deeper nodes hold no intervals
			}
			if u < node {
				node -= step
			} else {
				node += step
			}
		}
	}

	// Steps 2 and 3 (§4.1): from the fork down to the nodes closest to
	// lower and to upper. On the lower path, nodes left of the query are
	// probed via U(w); on the upper path, nodes right of it via L(w).
	// Nodes inside [l, u] are covered by the appended range pair below.
	visitLeft := func(n int64) {
		if n < l && t.skeletonHas(n) {
			tn.Left = append(tn.Left, NodeRange{n, n})
		}
	}
	visitRight := func(n int64) {
		if n > u && t.skeletonHas(n) {
			tn.Right = append(tn.Right, n)
		}
	}
	if haveFork {
		if fork == 0 {
			// The query spans the global root: the two descents start at
			// the subtree roots (the children of node 0).
			if p.LeftRoot != 0 && l < 0 {
				walkTo(p.LeftRoot, -p.LeftRoot, l, visitLeft)
			}
			if p.RightRoot != 0 && u > 0 {
				walkTo(p.RightRoot, p.RightRoot, u, visitRight)
			}
		} else {
			walkTo(fork, forkStep, l, visitLeft)
			walkTo(fork, forkStep, u, visitRight)
		}
	}

	// §4.3 lemma: append the covered node range as one pair so the BETWEEN
	// branch merges into the leftNodes index scan (Figure 9).
	if !t.opts.ThreeBranchQuery {
		tn.Left = append(tn.Left, NodeRange{l, u})
	}

	// §4.6: intervals ending at infinity are tested against every query;
	// now-relative intervals only when the query begins at or before now.
	if t.skeletonHas(NodeInfinity) {
		tn.Right = append(tn.Right, NodeInfinity)
	}
	if q.Lower <= t.now && t.skeletonHas(NodeNow) {
		tn.Right = append(tn.Right, NodeNow)
	}
}

// IntersectingFunc reports the id of every stored interval intersecting q,
// invoking fn for each. Return false from fn to stop early. This executes
// the two-fold query of Figure 9: index range scans on (node, upper, id)
// for leftNodes and on (node, lower, id) for rightNodes. No duplicates are
// produced, so no DISTINCT step is needed (§4.2).
func (t *Tree) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return nil
	}
	s := t.getScratch()
	defer t.scratch.Put(s)
	t.collectNodesInto(q, &s.tn)
	t.met.query(int64(len(s.tn.Left) + len(s.tn.Right)))
	stop := false
	for _, nr := range s.tn.Left {
		// SELECT id FROM Intervals i WHERE i.node BETWEEN nr.Min AND nr.Max
		//   AND i.upper >= :lower  — one range scan on upperIndex. The
		// bound keys go through the pooled buffers; Scan pads them into
		// fresh full-width keys, so the buffers are not retained.
		s.lo[0], s.lo[1] = nr.Min, q.Lower
		s.hi[0], s.hi[1] = nr.Max, math.MaxInt64
		err := t.upperIx.Scan(s.lo[:], s.hi[:],
			func(key []int64, _ rel.RowID) bool {
				if key[1] < q.Lower {
					// Residual filter for multi-node ranges; the §4.3
					// lemma proves it never rejects rows of covered
					// nodes — kept for defense in depth.
					return true
				}
				if !fn(key[2]) {
					stop = true
					return false
				}
				return true
			})
		if err != nil || stop {
			return err
		}
	}
	for _, w := range s.tn.Right {
		// SELECT id FROM Intervals i WHERE i.node = w AND i.lower <= :upper
		//   — one range scan on lowerIndex.
		s.lo[0], s.lo[1] = w, math.MinInt64
		s.hi[0], s.hi[1] = w, q.Upper
		if w == NodeNow && t.now < q.Upper {
			// A now-relative interval resolves to [lower, now]: one born in
			// the future (lower > now) is empty and intersects nothing, the
			// same rule the topological queries apply. Capping the scan at
			// now enforces that and prunes the range.
			s.hi[1] = t.now
		}
		err := t.lowerIx.Scan(s.lo[:], s.hi[:],
			func(key []int64, _ rel.RowID) bool {
				if !fn(key[2]) {
					stop = true
					return false
				}
				return true
			})
		if err != nil || stop {
			return err
		}
	}
	if t.opts.ThreeBranchQuery {
		// Figure 8 preliminary form: the covered nodes are scanned in a
		// separate third branch instead of being merged into leftNodes.
		l, u := t.shiftedBounds(q)
		err := t.lowerIx.Scan(
			[]int64{l},
			[]int64{u},
			func(key []int64, _ rel.RowID) bool {
				if !fn(key[2]) {
					stop = true
					return false
				}
				return true
			})
		if err != nil {
			return err
		}
	}
	return nil
}

// Intersecting returns the ids of all stored intervals that intersect q,
// sorted ascending.
func (t *Tree) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	err := t.IntersectingFunc(q, func(id int64) bool {
		ids = append(ids, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// Stab returns the ids of all stored intervals containing the point p —
// "the algorithm even works for degenerate intervals, thus supporting point
// queries as efficient as interval queries" (§4.1).
func (t *Tree) Stab(p int64) ([]int64, error) {
	return t.Intersecting(interval.Point(p))
}

// CountIntersecting returns the number of stored intervals intersecting q.
func (t *Tree) CountIntersecting(q interval.Interval) (int64, error) {
	var n int64
	err := t.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}
