package ritree

import (
	"fmt"
	"math"
	"slices"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// This file implements the fine-grained topological query predicates of
// paper §4.5: all 13 Allen relations are answered through the RI-tree by
// running a *generating* intersection query whose region is derived from
// the predicate, then applying the exact relation as a residual filter.
// Because the generating region for bound-referencing predicates (meets,
// met-by, starts, finishes, ...) is a single stabbing point, both interval
// bounds are supported equally well — unlike the IB+-tree or the IST
// composite indexes, which degrade to O(n) on the "wrong" bound (§4.5).

// queryFloor/queryCeil bound generating regions for the open-ended
// predicates before and after. They lie safely outside any data space while
// keeping shifted arithmetic overflow-free.
const (
	queryFloor = -(int64(1) << 61)
	queryCeil  = int64(1) << 61
)

// generatingRegion returns the intersection region that is guaranteed to
// contain every interval i with "i r q".
func generatingRegion(r interval.Relation, q interval.Interval) (interval.Interval, bool) {
	switch r {
	case interval.Before:
		if q.Lower == queryFloor {
			return interval.Interval{}, false
		}
		return interval.New(queryFloor, q.Lower-1), true
	case interval.After:
		if q.Upper >= queryCeil {
			return interval.Interval{}, false
		}
		return interval.New(q.Upper+1, queryCeil), true
	case interval.Meets, interval.Overlaps, interval.FinishedBy,
		interval.Contains, interval.Starts, interval.Equals, interval.StartedBy:
		// All of these require i to contain the query's lower bound.
		return interval.Point(q.Lower), true
	case interval.MetBy, interval.OverlappedBy, interval.Finishes:
		// All of these require i to contain the query's upper bound.
		return interval.Point(q.Upper), true
	case interval.During:
		// i lies strictly inside q, hence intersects q.
		return q, true
	}
	return interval.Interval{}, false
}

// QueryRelation returns the ids of all stored intervals i for which the
// Allen relation "i r q" holds, sorted ascending. Stored now-relative
// intervals are evaluated with their effective upper bound Now(); infinite
// intervals keep the +∞ sentinel (which compares greater than any finite
// bound, giving the natural semantics).
func (t *Tree) QueryRelation(r interval.Relation, q interval.Interval) ([]int64, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("ritree: invalid query interval %v", q)
	}
	region, ok := generatingRegion(r, q)
	if !ok {
		return nil, nil
	}
	var ids []int64
	err := t.intersectingRows(region, func(id int64, rid rel.RowID) bool {
		row, err := t.tab.GetRaw(rid)
		if err != nil {
			return true
		}
		iv := interval.New(row[colLower], row[colUpper])
		if iv.Upper == interval.NowMarker {
			iv.Upper = t.now
			if !iv.Valid() {
				return true // born in the future of the evaluation time
			}
		}
		if r.Holds(iv, q) {
			ids = append(ids, id)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// intersectingRows is IntersectingFunc with access to the row id, used by
// predicates that must inspect both interval bounds.
func (t *Tree) intersectingRows(q interval.Interval, fn func(id int64, rid rel.RowID) bool) error {
	if !q.Valid() {
		return nil
	}
	tn := t.collectNodes(q)
	stop := false
	for _, nr := range tn.Left {
		err := t.upperIx.Scan(
			[]int64{nr.Min, q.Lower},
			[]int64{nr.Max, math.MaxInt64},
			func(key []int64, rid rel.RowID) bool {
				if key[1] < q.Lower {
					return true
				}
				if !fn(key[2], rid) {
					stop = true
					return false
				}
				return true
			})
		if err != nil || stop {
			return err
		}
	}
	for _, w := range tn.Right {
		err := t.lowerIx.Scan(
			[]int64{w, math.MinInt64},
			[]int64{w, q.Upper},
			func(key []int64, rid rel.RowID) bool {
				if !fn(key[2], rid) {
					stop = true
					return false
				}
				return true
			})
		if err != nil || stop {
			return err
		}
	}
	return nil
}
