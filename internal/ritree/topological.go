package ritree

import (
	"fmt"
	"math"
	"slices"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// This file implements the fine-grained topological query predicates of
// paper §4.5: all 13 Allen relations are answered through the RI-tree by
// running a *generating* intersection query whose region is derived from
// the predicate, then applying the exact relation as a residual filter.
// Because the generating region for bound-referencing predicates (meets,
// met-by, starts, finishes, ...) is a single stabbing point, both interval
// bounds are supported equally well — unlike the IB+-tree or the IST
// composite indexes, which degrade to O(n) on the "wrong" bound (§4.5).

// QueryRelationFunc streams the id of every stored interval i for which
// the Allen relation "i r q" holds, in no particular order; return false
// from fn to stop early. The evaluation strategy is the paper's: run the
// generating intersection query of the predicate (interval.GeneratingRegion)
// and apply the exact relation as a residual filter on the candidate rows.
// Stored now-relative intervals are evaluated with their effective upper
// bound Now(); infinite intervals keep the +∞ sentinel (which compares
// greater than any finite bound, giving the natural semantics).
func (t *Tree) QueryRelationFunc(r interval.Relation, q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("ritree: invalid query interval %v", q)
	}
	region, ok := interval.GeneratingRegion(r, q)
	if !ok {
		return nil
	}
	row := make([]int64, 4)
	return t.intersectingRows(region, func(id int64, rid rel.RowID) bool {
		if t.tab.GetRawInto(rid, row) != nil {
			return true
		}
		iv := interval.New(row[colLower], row[colUpper])
		if iv.Upper == interval.NowMarker {
			iv.Upper = t.now
			if !iv.Valid() {
				return true // born in the future of the evaluation time
			}
		}
		if r.Holds(iv, q) {
			return fn(id)
		}
		return true
	})
}

// QueryRelation returns the ids of all stored intervals i for which the
// Allen relation "i r q" holds, sorted ascending.
func (t *Tree) QueryRelation(r interval.Relation, q interval.Interval) ([]int64, error) {
	var ids []int64
	err := t.QueryRelationFunc(r, q, func(id int64) bool {
		ids = append(ids, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// intersectingRows is IntersectingFunc with access to the row id, used by
// predicates that must inspect both interval bounds.
func (t *Tree) intersectingRows(q interval.Interval, fn func(id int64, rid rel.RowID) bool) error {
	if !q.Valid() {
		return nil
	}
	tn := t.collectNodes(q)
	stop := false
	for _, nr := range tn.Left {
		err := t.upperIx.Scan(
			[]int64{nr.Min, q.Lower},
			[]int64{nr.Max, math.MaxInt64},
			func(key []int64, rid rel.RowID) bool {
				if key[1] < q.Lower {
					return true
				}
				if !fn(key[2], rid) {
					stop = true
					return false
				}
				return true
			})
		if err != nil || stop {
			return err
		}
	}
	for _, w := range tn.Right {
		err := t.lowerIx.Scan(
			[]int64{w, math.MinInt64},
			[]int64{w, q.Upper},
			func(key []int64, rid rel.RowID) bool {
				if !fn(key[2], rid) {
					stop = true
					return false
				}
				return true
			})
		if err != nil || stop {
			return err
		}
	}
	return nil
}
