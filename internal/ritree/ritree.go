// Package ritree implements the Relational Interval Tree of Kriegel, Pötke
// and Seidl (VLDB 2000) — the paper's primary contribution.
//
// The RI-tree manages intervals in an ordinary relational table
//
//	Intervals(node, lower, upper, id)
//
// with two built-in composite indexes (node, lower, id) and
// (node, upper, id) — exactly the DDL of paper Figure 2, with the id
// attribute included in the indexes as in the paper's experiments (§4.3,
// Figure 10). The backbone binary tree is purely virtual: only the O(1)
// parameters offset, leftRoot, rightRoot and minstep are stored (§3.4),
// kept in a small data-dictionary relation. Insertion computes the fork
// node arithmetically and executes a single INSERT (Figures 4–6);
// intersection queries collect the transient leftNodes/rightNodes
// collections by pure integer arithmetic and run the two-fold UNION ALL
// range-scan plan of Figure 9.
package ritree

import (
	"fmt"
	"math"
	"sync"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// Node-column sentinels for temporal intervals (§4.6): the paper assigns
// fork-infinity = MAXINT and fork-now = MAXINT-1 so that the SQL statement
// needs no modification.
const (
	NodeInfinity int64 = math.MaxInt64
	NodeNow      int64 = math.MaxInt64 - 1
)

// unsetMinStep marks "no interval registered below the root yet"; the paper
// initializes minstep with infinity (§3.4).
const unsetMinStep int64 = math.MaxInt64

// Params is the O(1) persistent representation of the virtual primary
// structure (§3.4).
type Params struct {
	// OffsetSet records whether Offset has been fixed (it is fixed by the
	// first insertion and never changed, §3.4 "offset is fixed after having
	// inserted the first interval").
	OffsetSet bool
	// Offset shifts interval bounds so the data space starts near 0.
	Offset int64
	// LeftRoot is the root of the negative subtree (0 or a negative power
	// of two); it covers shifted bounds in (2*LeftRoot, 0).
	LeftRoot int64
	// RightRoot is the root of the positive subtree (0 or a positive power
	// of two); it covers shifted bounds in (0, 2*RightRoot).
	RightRoot int64
	// MinStep is the smallest node step (2^level) at which an interval has
	// been registered; query descent prunes below it. unsetMinStep when no
	// interval was registered outside the global root.
	MinStep int64
}

// Options configures tuning knobs and ablations of a Tree. The zero value
// is the paper's configuration.
type Options struct {
	// DisableMinStep turns off the minstep pruning of §3.4; queries then
	// descend the virtual backbone to leaf level. Used by the ablation
	// benchmarks to quantify the optimization.
	DisableMinStep bool
	// ThreeBranchQuery uses the preliminary Figure 8 query shape (each
	// covered-node probe separate from the leftNodes probes) instead of the
	// optimized two-fold Figure 9 form. Used by the ablation benchmarks.
	ThreeBranchQuery bool
	// MaterializeBackbone implements the §7 outlook ("a partial
	// materialization of the primary structure can be adapted to the
	// expected data distribution", the Skeleton-Index idea): the set of
	// nonempty backbone nodes is kept in session memory, and queries skip
	// index probes of provably empty nodes. Costs O(#distinct nodes)
	// memory and one index sweep at open time.
	MaterializeBackbone bool
}

// Tree is a Relational Interval Tree over a rel.DB.
type Tree struct {
	db       *rel.DB
	name     string
	opts     Options
	tab      *rel.Table
	lowerIx  *rel.Index
	upperIx  *rel.Index
	paramTab *rel.Table
	paramRid rel.RowID
	params   Params
	now      int64
	// nonempty counts live rows per backbone node when
	// Options.MaterializeBackbone is set; nil otherwise.
	nonempty map[int64]int64
	// scratch pools *queryScratch values so steady-state queries build
	// their transient collections and scan bounds without heap
	// allocations; a pool (not a plain field) because the top-level API
	// runs queries concurrently under a read lock.
	scratch sync.Pool
	// met mirrors query-shape counters into an obs registry; nil (the
	// default) records nothing. See metrics.go.
	met *treeMetrics
}

// Column layout of the interval relation.
const (
	colNode  = 0
	colLower = 1
	colUpper = 2
	colID    = 3
)

func tableName(name string) string   { return name }
func lowerIxName(name string) string { return name + "_lower_ix" }
func upperIxName(name string) string { return name + "_upper_ix" }
func paramsName(name string) string  { return name + "_params" }

// Create instantiates a new RI-tree called name: the Intervals relation,
// its two composite indexes, and the parameter dictionary (paper Figure 2).
func Create(db *rel.DB, name string, opts Options) (*Tree, error) {
	if name == "" {
		return nil, fmt.Errorf("ritree: empty tree name")
	}
	tab, err := db.CreateTable(tableName(name), []string{"node", "lower", "upper", "id"})
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateIndex(lowerIxName(name), tableName(name), []string{"node", "lower", "id"}); err != nil {
		return nil, err
	}
	if _, err := db.CreateIndex(upperIxName(name), tableName(name), []string{"node", "upper", "id"}); err != nil {
		return nil, err
	}
	paramTab, err := db.CreateTable(paramsName(name), []string{"offsetset", "offset", "leftroot", "rightroot", "minstep"})
	if err != nil {
		return nil, err
	}
	t := &Tree{
		db:       db,
		name:     name,
		opts:     opts,
		tab:      tab,
		paramTab: paramTab,
		params:   Params{MinStep: unsetMinStep},
		now:      interval.DomainMax,
	}
	t.paramRid, err = paramTab.Insert(t.params.row())
	if err != nil {
		return nil, err
	}
	if t.lowerIx, err = db.Index(lowerIxName(name)); err != nil {
		return nil, err
	}
	if t.upperIx, err = db.Index(upperIxName(name)); err != nil {
		return nil, err
	}
	if err := t.initSkeleton(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing RI-tree called name.
func Open(db *rel.DB, name string, opts Options) (*Tree, error) {
	tab, err := db.Table(tableName(name))
	if err != nil {
		return nil, err
	}
	paramTab, err := db.Table(paramsName(name))
	if err != nil {
		return nil, err
	}
	t := &Tree{db: db, name: name, opts: opts, tab: tab, paramTab: paramTab, now: interval.DomainMax}
	if t.lowerIx, err = db.Index(lowerIxName(name)); err != nil {
		return nil, err
	}
	if t.upperIx, err = db.Index(upperIxName(name)); err != nil {
		return nil, err
	}
	found := false
	err = paramTab.Scan(func(rid rel.RowID, row []int64) bool {
		t.paramRid = rid
		t.params = paramsFromRow(row)
		found = true
		return false
	})
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("ritree: parameter dictionary of %s is empty", name)
	}
	if err := t.initSkeleton(); err != nil {
		return nil, err
	}
	return t, nil
}

// Drop removes the tree's relations and indexes from the database.
func (t *Tree) Drop() error {
	if err := t.db.DropTable(tableName(t.name)); err != nil {
		return err
	}
	return t.db.DropTable(paramsName(t.name))
}

func (p Params) row() []int64 {
	os := int64(0)
	if p.OffsetSet {
		os = 1
	}
	return []int64{os, p.Offset, p.LeftRoot, p.RightRoot, p.MinStep}
}

func paramsFromRow(row []int64) Params {
	return Params{
		OffsetSet: row[0] != 0,
		Offset:    row[1],
		LeftRoot:  row[2],
		RightRoot: row[3],
		MinStep:   row[4],
	}
}

func (t *Tree) saveParams() error {
	return t.paramTab.Update(t.paramRid, t.params.row())
}

// Name returns the tree's name.
func (t *Tree) Name() string { return t.name }

// Params returns a copy of the persistent backbone parameters.
func (t *Tree) Params() Params { return t.params }

// Count returns the number of stored intervals.
func (t *Tree) Count() int64 { return t.tab.RowCount() }

// Table returns the underlying interval relation (for SQL-level access).
func (t *Tree) Table() *rel.Table { return t.tab }

// LowerIndex returns the (node, lower, id) composite index.
func (t *Tree) LowerIndex() *rel.Index { return t.lowerIx }

// UpperIndex returns the (node, upper, id) composite index.
func (t *Tree) UpperIndex() *rel.Index { return t.upperIx }

// SetNow sets the evaluation time for now-relative intervals (§4.6).
func (t *Tree) SetNow(now int64) { t.now = now }

// Now returns the evaluation time for now-relative intervals.
func (t *Tree) Now() int64 { return t.now }

// Height returns the height log2(m)+1 of the virtual backbone as analyzed
// in §3.5, with m = max(|leftRoot|, rightRoot) / minstep.
func (t *Tree) Height() int {
	p := t.params
	span := p.RightRoot
	if -p.LeftRoot > span {
		span = -p.LeftRoot
	}
	if span == 0 {
		return 1 // only the global root
	}
	ms := p.MinStep
	if ms == unsetMinStep || ms < 1 {
		ms = 1
	}
	h := 1
	for m := span / ms; m > 0; m >>= 1 {
		h++
	}
	return h
}
