package ist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

func newDB(t *testing.T) *rel.DB {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 128})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOrderNames(t *testing.T) {
	if DOrder.String() != "D-order" || VOrder.String() != "V-order" || HOrder.String() != "H-order" {
		t.Fatal("order names wrong")
	}
	if Order(99).String() != "unknown" {
		t.Fatal("out-of-range order name")
	}
}

func TestKeyMappingPerOrder(t *testing.T) {
	db := newDB(t)
	iv := interval.New(10, 25)
	for _, o := range []Order{DOrder, VOrder, HOrder} {
		ix, err := Create(db, "t"+o.String(), o)
		if err != nil {
			t.Fatal(err)
		}
		key := ix.keyFor(iv, 7)
		switch o {
		case DOrder:
			if key[0] != 25 || key[1] != 10 {
				t.Fatalf("D key = %v", key)
			}
		case VOrder:
			if key[0] != 10 || key[1] != 25 {
				t.Fatalf("V key = %v", key)
			}
		case HOrder:
			if key[0] != 15 || key[1] != 10 {
				t.Fatalf("H key = %v", key)
			}
		}
	}
}

func TestVOrderSweepAsymmetryMirrorsD(t *testing.T) {
	// The V-order (lower, upper) degrades at the *upper* end of the data
	// space — the mirror image of Figure 17's D-order behaviour (§2.3:
	// "these indexes reveal a poor query performance if the selectivity
	// relies on the wrong bound").
	db := newDB(t)
	ix, _ := Create(db, "v", VOrder)
	rng := rand.New(rand.NewSource(1))
	ivs := make([]interval.Interval, 4000)
	for i := range ivs {
		lo := rng.Int63n(1 << 20)
		ivs[i] = interval.New(lo, lo+rng.Int63n(1024))
	}
	ids := make([]int64, len(ivs))
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := ix.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	ix.Intersecting(interval.Point(interval.DomainMin + 10))
	lowIO := db.Stats().LogicalReads
	db.ResetStats()
	ix.Intersecting(interval.Point(interval.DomainMax - 10))
	highIO := db.Stats().LogicalReads
	if highIO < lowIO*4 {
		t.Fatalf("V-order asymmetry missing: high-end %d reads vs low-end %d", highIO, lowIO)
	}
}

func TestISTInvalidInterval(t *testing.T) {
	db := newDB(t)
	ix, _ := Create(db, "d", DOrder)
	if err := ix.Insert(interval.New(5, 1), 1); err == nil {
		t.Fatal("invalid interval accepted")
	}
	ids, err := ix.Intersecting(interval.New(5, 1))
	if err != nil || ids != nil {
		t.Fatalf("invalid query = %v, %v", ids, err)
	}
}

func TestOpenExisting(t *testing.T) {
	db := newDB(t)
	ix, _ := Create(db, "d", DOrder)
	ix.Insert(interval.New(1, 5), 42)
	re, err := Open(db, "d", DOrder)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := re.Intersecting(interval.New(2, 3))
	if len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("reopened ids = %v", ids)
	}
	if re.Count() != 1 || re.EntryCount() != 1 {
		t.Fatalf("counts = %d/%d", re.Count(), re.EntryCount())
	}
}

func TestMap21ValueRoundTrip(t *testing.T) {
	phi := uint(21)
	f := func(a, b uint32) bool {
		lo := int64(a % (1 << 20))
		hi := lo + int64(b%(1<<20))
		if hi > 1<<21-1 {
			hi = 1<<21 - 1
		}
		v := lo<<phi + hi
		gotLo := v >> phi
		gotHi := v - gotLo<<phi
		return gotLo == lo && gotHi == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMap21PartitionAssignment(t *testing.T) {
	db := newDB(t)
	m, err := CreateMap21(db, "m", 21)
	if err != nil {
		t.Fatal(err)
	}
	// Partition maxima are increasing; partFor is monotone.
	prev := -1
	for _, ln := range []int64{0, 1, 2, 5, 100, 5000, 1 << 19} {
		p := m.partFor(ln)
		if p < prev {
			t.Fatalf("partFor(%d) = %d decreased from %d", ln, p, prev)
		}
		prev = p
		if ln > m.parts[p].maxLen {
			t.Fatalf("length %d exceeds partition %d max %d", ln, p, m.parts[p].maxLen)
		}
	}
}

func TestMap21PhiValidation(t *testing.T) {
	db := newDB(t)
	if _, err := CreateMap21(db, "m0", 0); err == nil {
		t.Fatal("phi 0 accepted")
	}
	if _, err := CreateMap21(db, "m32", 32); err == nil {
		t.Fatal("phi 32 accepted")
	}
}

func TestMap21DeleteAndCount(t *testing.T) {
	db := newDB(t)
	m, _ := CreateMap21(db, "m", 21)
	iv := interval.New(100, 5000)
	m.Insert(iv, 1)
	m.Insert(interval.Point(200), 2)
	if m.Count() != 2 || m.EntryCount() != 2 {
		t.Fatalf("counts = %d/%d", m.Count(), m.EntryCount())
	}
	ok, err := m.Delete(iv, 1)
	if err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	ok, _ = m.Delete(iv, 1)
	if ok {
		t.Fatal("double delete succeeded")
	}
	ids, _ := m.Intersecting(interval.New(0, 1<<20))
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestHOrderFullScanStillCorrect(t *testing.T) {
	db := newDB(t)
	ix, _ := Create(db, "h", HOrder)
	rng := rand.New(rand.NewSource(9))
	var ivs []interval.Interval
	for i := 0; i < 300; i++ {
		lo := rng.Int63n(10000)
		iv := interval.New(lo, lo+rng.Int63n(100))
		ivs = append(ivs, iv)
		ix.Insert(iv, int64(i))
	}
	q := interval.New(4000, 6000)
	got, err := ix.Intersecting(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, iv := range ivs {
		if iv.Intersects(q) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("H-order returned %d, want %d", len(got), want)
	}
}
