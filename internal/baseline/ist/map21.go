package ist

import (
	"fmt"

	"sort"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// Map21 implements the MAP21 access method of Nascimento and Dunham
// [ND 99]: each interval is mapped to the single value
//
//	lower · 2^φ + upper        (φ = bits of the data-space width)
//
// indexed by a plain single-column B+-tree, "while the composite index
// (lower, upper) is implemented by a single-column index" (§2.3). MAP21
// additionally introduces a static partitioning by interval length so that
// an intersection query in a partition with maximum length M only scans
// lower ∈ [q.lower − M, q.upper]. The paper notes it "behaves very similar
// to the IST" and still needs O(n/b) I/Os when many long intervals exist.
type Map21 struct {
	name string
	db   *rel.DB
	phi  uint
	// partitions[i] covers interval lengths in [2^i−1 … 2^(i+1)−2]; each
	// has its own relation and mapped-value index.
	parts []*m21part
}

type m21part struct {
	tab    *rel.Table
	ix     *rel.Index
	maxLen int64
}

// map21Partitions is the number of static length partitions.
const map21Partitions = 21

// CreateMap21 instantiates the partitioned MAP21 structure. phi must be
// large enough that upper < 2^phi for all stored intervals (21 for the
// paper's [0, 2^20−1] domain).
func CreateMap21(db *rel.DB, name string, phi uint) (*Map21, error) {
	if phi < 1 || phi > 31 {
		return nil, fmt.Errorf("map21: phi %d out of range", phi)
	}
	m := &Map21{name: name, db: db, phi: phi}
	for i := 0; i < map21Partitions; i++ {
		tname := fmt.Sprintf("%s_p%d", name, i)
		tab, err := db.CreateTable(tname, []string{"mapval", "lower", "upper", "id"})
		if err != nil {
			return nil, err
		}
		ix, err := db.CreateIndex(tname+"_ix", tname, []string{"mapval", "id"})
		if err != nil {
			return nil, err
		}
		m.parts = append(m.parts, &m21part{tab: tab, ix: ix, maxLen: (int64(1) << uint(i+1)) - 2})
	}
	return m, nil
}

// Name returns the access method's display name.
func (m *Map21) Name() string { return "MAP21" }

func (m *Map21) mapval(iv interval.Interval) int64 {
	return iv.Lower<<m.phi + iv.Upper
}

func (m *Map21) partFor(length int64) int {
	for i, p := range m.parts {
		if length <= p.maxLen {
			return i
		}
	}
	return len(m.parts) - 1
}

// Insert registers the interval under id in its length partition.
func (m *Map21) Insert(iv interval.Interval, id int64) error {
	if !iv.Valid() {
		return fmt.Errorf("map21: invalid interval %v", iv)
	}
	p := m.parts[m.partFor(iv.Length())]
	_, err := p.tab.Insert([]int64{m.mapval(iv), iv.Lower, iv.Upper, id})
	return err
}

// Delete removes one registration of (iv, id).
func (m *Map21) Delete(iv interval.Interval, id int64) (bool, error) {
	if !iv.Valid() {
		return false, nil
	}
	p := m.parts[m.partFor(iv.Length())]
	key := []int64{m.mapval(iv), id}
	var victim rel.RowID
	found := false
	err := p.ix.Scan(key, key, func(_ []int64, rid rel.RowID) bool {
		victim = rid
		found = true
		return false
	})
	if err != nil || !found {
		return false, err
	}
	_, err = p.tab.DeleteRow(victim)
	return err == nil, err
}

// IntersectingFunc reports every stored interval intersecting q. Each
// partition with maximum length M is scanned over the mapped range
// [(q.lower−M)·2^φ, (q.upper+1)·2^φ) with the exact intersection test as a
// residual filter.
func (m *Map21) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return nil
	}
	for _, p := range m.parts {
		if p.ix.Len() == 0 {
			continue
		}
		loVal := (q.Lower - p.maxLen) << m.phi
		hiVal := (q.Upper + 1) << m.phi
		stop := false
		err := p.ix.Scan(
			[]int64{loVal},
			[]int64{hiVal - 1},
			func(key []int64, rid rel.RowID) bool {
				lower := key[0] >> m.phi
				upper := key[0] - lower<<m.phi
				if upper >= q.Lower && lower <= q.Upper {
					if !fn(key[1]) {
						stop = true
						return false
					}
				}
				return true
			})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Intersecting returns the ids of all stored intervals intersecting q,
// sorted ascending.
func (m *Map21) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	err := m.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true })
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// EntryCount returns the total number of index entries across partitions.
func (m *Map21) EntryCount() int64 {
	var n int64
	for _, p := range m.parts {
		n += p.ix.Len()
	}
	return n
}

// Count returns the number of stored intervals.
func (m *Map21) Count() int64 {
	var n int64
	for _, p := range m.parts {
		n += p.tab.RowCount()
	}
	return n
}
