// Package ist implements the Interval-Spatial Transformation of Goh, Lu,
// Ooi and Tan [GLOT 96], the paper's principal "composite index" competitor
// (§2.3, §6), plus the closely related MAP21 mapping of Nascimento and
// Dunham [ND 99].
//
// The paper observes (§2.3) that, aside from quantization, the IST's
// space-filling orderings are equivalent to relational composite indexes:
//
//	D-ordering ≡ composite index on (upper, lower)
//	V-ordering ≡ composite index on (lower, upper)
//	H-ordering ≡ composite index on (upper − lower, lower)
//
// and evaluates the D-order variant: a range query is the single SQL
// statement of Figure 11 — test both bounds for intersection — whose index
// support degrades to O(n/b) when the selectivity lies on the "wrong"
// (secondary) bound.
package ist

import (
	"fmt"
	"math"
	"sort"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// Order selects the space-filling ordering (the leading index column).
type Order int

const (
	// DOrder indexes (upper, lower, id) — the variant evaluated in §6.
	DOrder Order = iota
	// VOrder indexes (lower, upper, id).
	VOrder
	// HOrder indexes (upper−lower, lower, id), "particularly supporting
	// queries referring to the interval length" (§2.3).
	HOrder
)

// String names the ordering.
func (o Order) String() string {
	switch o {
	case DOrder:
		return "D-order"
	case VOrder:
		return "V-order"
	case HOrder:
		return "H-order"
	}
	return "unknown"
}

// Index is an IST access method over one relation
// (lower, upper, length, id) with a single composite index determined by
// the chosen ordering. No redundancy is produced: one entry per interval.
type Index struct {
	name  string
	order Order
	db    *rel.DB
	tab   *rel.Table
	ix    *rel.Index
}

const (
	colLower = 0
	colUpper = 1
	colLen   = 2
	colID    = 3
)

func istIxName(name string) string { return name + "_ix" }

func orderColumns(o Order) []string {
	switch o {
	case DOrder:
		return []string{"upper", "lower", "id"}
	case VOrder:
		return []string{"lower", "upper", "id"}
	default:
		return []string{"length", "lower", "id"}
	}
}

// Create instantiates a new IST relation and its ordering index.
func Create(db *rel.DB, name string, order Order) (*Index, error) {
	tab, err := db.CreateTable(name, []string{"lower", "upper", "length", "id"})
	if err != nil {
		return nil, err
	}
	ix, err := db.CreateIndex(istIxName(name), name, orderColumns(order))
	if err != nil {
		return nil, err
	}
	return &Index{name: name, order: order, db: db, tab: tab, ix: ix}, nil
}

// Open attaches to an existing IST relation created with the same order.
func Open(db *rel.DB, name string, order Order) (*Index, error) {
	tab, err := db.Table(name)
	if err != nil {
		return nil, err
	}
	ix, err := db.Index(istIxName(name))
	if err != nil {
		return nil, err
	}
	return &Index{name: name, order: order, db: db, tab: tab, ix: ix}, nil
}

// Name returns the access method's display name.
func (t *Index) Name() string { return "IST/" + t.order.String() }

// Insert registers the interval under id.
func (t *Index) Insert(iv interval.Interval, id int64) error {
	if !iv.Valid() {
		return fmt.Errorf("ist: invalid interval %v", iv)
	}
	_, err := t.tab.Insert([]int64{iv.Lower, iv.Upper, iv.Length(), id})
	return err
}

// Delete removes one registration of (iv, id), reporting whether it existed.
func (t *Index) Delete(iv interval.Interval, id int64) (bool, error) {
	key := t.keyFor(iv, id)
	var victim rel.RowID
	found := false
	err := t.ix.Scan(key, key, func(_ []int64, rid rel.RowID) bool {
		victim = rid
		found = true
		return false
	})
	if err != nil || !found {
		return false, err
	}
	_, err = t.tab.DeleteRow(victim)
	return err == nil, err
}

func (t *Index) keyFor(iv interval.Interval, id int64) []int64 {
	switch t.order {
	case DOrder:
		return []int64{iv.Upper, iv.Lower, id}
	case VOrder:
		return []int64{iv.Lower, iv.Upper, id}
	default:
		return []int64{iv.Length(), iv.Lower, id}
	}
}

// BulkLoad registers all intervals and rebuilds the ordering index with a
// sorted bulk load ("the good clustering properties of the bulk loaded
// indexes", §6.3).
func (t *Index) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("ist: BulkLoad got %d intervals and %d ids", len(ivs), len(ids))
	}
	if err := t.db.DropIndex(istIxName(t.name)); err != nil {
		return err
	}
	row := make([]int64, 4)
	for i, iv := range ivs {
		if !iv.Valid() {
			return fmt.Errorf("ist: invalid interval %v", iv)
		}
		row[0], row[1], row[2], row[3] = iv.Lower, iv.Upper, iv.Length(), ids[i]
		if _, err := t.tab.Insert(row); err != nil {
			return err
		}
	}
	ix, err := t.db.CreateIndex(istIxName(t.name), t.name, orderColumns(t.order))
	if err != nil {
		return err
	}
	t.ix = ix
	return nil
}

// IntersectingFunc reports every stored interval intersecting q — the
// Figure 11 query:
//
//	SELECT id FROM Intervals i
//	WHERE i.upper >= :lower AND i.lower <= :upper;
//
// Under the D-order index, "upper >= :lower" is the access predicate (an
// index range scan to the end of the data space) and "lower <= :upper" a
// residual filter — the cause of the linear degradation in Figure 17.
// Under V-order the roles are symmetric; under H-order the statement runs
// as a full scan of (length, lower) with both predicates residual.
func (t *Index) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return nil
	}
	switch t.order {
	case DOrder:
		return t.ix.Scan(
			[]int64{q.Lower, math.MinInt64},
			nil, // to the end of the index
			func(key []int64, _ rel.RowID) bool {
				if key[1] > q.Upper {
					return true // residual: lower <= :upper
				}
				return fn(key[2])
			})
	case VOrder:
		return t.ix.Scan(
			nil, // from the start of the index
			[]int64{q.Upper, math.MaxInt64},
			func(key []int64, _ rel.RowID) bool {
				if key[1] < q.Lower {
					return true // residual: upper >= :lower
				}
				return fn(key[2])
			})
	default:
		// H-order supports length-selective queries; plain intersection
		// degenerates to a full index scan with residual filters.
		return t.ix.Scan(nil, nil, func(key []int64, rid rel.RowID) bool {
			lower := key[1]
			upper := lower + key[0]
			if upper < q.Lower || lower > q.Upper {
				return true
			}
			return fn(key[2])
		})
	}
}

// Intersecting returns the ids of all stored intervals intersecting q,
// sorted ascending.
func (t *Index) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	err := t.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true })
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// IntersectingWithLength returns intersecting intervals whose length lies
// in [minLen, maxLen] — the query class the H-ordering accelerates (§2.3).
// Only meaningful for HOrder indexes; other orders apply the length test as
// a residual filter.
func (t *Index) IntersectingWithLength(q interval.Interval, minLen, maxLen int64) ([]int64, error) {
	var ids []int64
	if t.order == HOrder {
		err := t.ix.Scan(
			[]int64{minLen, math.MinInt64},
			[]int64{maxLen, math.MaxInt64},
			func(key []int64, _ rel.RowID) bool {
				lower := key[1]
				upper := lower + key[0]
				if upper >= q.Lower && lower <= q.Upper {
					ids = append(ids, key[2])
				}
				return true
			})
		if err != nil {
			return nil, err
		}
	} else {
		err := t.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true })
		if err != nil {
			return nil, err
		}
		// Non-H orders have no length column in the index; resolve the
		// length test through the relation (a residual filter).
		return t.filterByLength(ids, q, minLen, maxLen)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (t *Index) filterByLength(ids []int64, q interval.Interval, minLen, maxLen int64) ([]int64, error) {
	want := make(map[int64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []int64
	err := t.tab.Scan(func(_ rel.RowID, row []int64) bool {
		if want[row[colID]] && row[colLen] >= minLen && row[colLen] <= maxLen {
			out = append(out, row[colID])
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// EntryCount returns the number of index entries (one per interval — "no
// redundancy is produced", §2.3): the Figure 12 storage metric.
func (t *Index) EntryCount() int64 { return t.ix.Len() }

// Count returns the number of stored intervals.
func (t *Index) Count() int64 { return t.tab.RowCount() }
