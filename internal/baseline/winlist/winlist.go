// Package winlist implements the Window-List technique of Ramaswamy
// [Ram 97]: a *static* interval storage structure built on plain B+-trees
// that achieves the optimal O(n/b) space and O(log_b n + r/b) stabbing
// query bound (§2.3).
//
// Construction follows the filtering-search windowing the technique is
// built on: the data space is cut into windows; every window's list holds
// all intervals that overlap the window. Window boundaries are chosen
// greedily while sweeping the intervals in lower-bound order — a window is
// closed once the number of intervals starting inside it reaches the number
// alive at its start (plus a block-size floor), which bounds the total list
// volume by O(n).
//
// An intersection query [ql, qu] is answered as a stabbing query at ql
// (locate ql's window, scan its list, filter) plus one range scan over the
// intervals with lower bound in (ql, qu].
//
// As in the paper: "updates do not seem to have non-trivial upper bounds,
// and adding as well as deleting arbitrary intervals can deteriorate the
// query efficiency" — Insert and Delete return ErrStatic.
package winlist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// ErrStatic is returned by update operations: the Window-List is a static
// structure (paper §2.3 and §6.1).
var ErrStatic = errors.New("winlist: static structure does not support updates")

// minWindowFill is the block-size floor for the greedy window construction.
const minWindowFill = 64

// Index is a built Window-List.
type Index struct {
	name string
	db   *rel.DB
	// windows relation (win, lower, upper, id): the per-window lists, one
	// row per (window, interval) membership; covering composite index.
	winTab *rel.Table
	winIx  *rel.Index
	// base relation (lower, upper, id): every interval once, covering
	// index on (lower, upper, id) for the non-stabbing query part.
	baseTab *rel.Table
	baseIx  *rel.Index
	// bounds[i] is the inclusive start of window i; windows span
	// [bounds[i], bounds[i+1]). Loaded into memory on open (O(n/b) values).
	bounds []int64
}

// Build constructs a Window-List over the given intervals.
func Build(db *rel.DB, name string, ivs []interval.Interval, ids []int64) (*Index, error) {
	if len(ivs) != len(ids) {
		return nil, fmt.Errorf("winlist: %d intervals, %d ids", len(ivs), len(ids))
	}
	w := &Index{name: name, db: db}
	var err error
	if w.winTab, err = db.CreateTable(name+"_windows", []string{"win", "lower", "upper", "id"}); err != nil {
		return nil, err
	}
	if w.baseTab, err = db.CreateTable(name+"_base", []string{"lower", "upper", "id"}); err != nil {
		return nil, err
	}
	boundTab, err := db.CreateTable(name+"_bounds", []string{"win", "start"})
	if err != nil {
		return nil, err
	}

	// Sort by lower bound for the sweep.
	ord := make([]int, len(ivs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ivs[ord[a]], ivs[ord[b]]
		if ia.Lower != ib.Lower {
			return ia.Lower < ib.Lower
		}
		return ia.Upper < ib.Upper
	})

	type member struct {
		iv interval.Interval
		id int64
	}
	var alive []member // intervals alive at the current window's start
	var started []member
	var windowStart int64 = math.MinInt64
	win := int64(0)

	flush := func() error {
		for _, m := range alive {
			if _, err := w.winTab.Insert([]int64{win, m.iv.Lower, m.iv.Upper, m.id}); err != nil {
				return err
			}
		}
		for _, m := range started {
			if _, err := w.winTab.Insert([]int64{win, m.iv.Lower, m.iv.Upper, m.id}); err != nil {
				return err
			}
		}
		if _, err := boundTab.Insert([]int64{win, windowStart}); err != nil {
			return err
		}
		w.bounds = append(w.bounds, windowStart)
		return nil
	}

	for _, idx := range ord {
		iv, id := ivs[idx], ids[idx]
		if !iv.Valid() {
			return nil, fmt.Errorf("winlist: invalid interval %v", iv)
		}
		if _, err := w.baseTab.Insert([]int64{iv.Lower, iv.Upper, id}); err != nil {
			return nil, err
		}
		threshold := len(alive)
		if threshold < minWindowFill {
			threshold = minWindowFill
		}
		if len(started) >= threshold {
			// Close the current window at this interval's lower bound and
			// open the next one.
			if err := flush(); err != nil {
				return nil, err
			}
			win++
			windowStart = iv.Lower
			// The intervals alive at the new window's start: previous
			// members still extending past windowStart.
			var stillAlive []member
			for _, m := range alive {
				if m.iv.Upper >= windowStart {
					stillAlive = append(stillAlive, m)
				}
			}
			for _, m := range started {
				if m.iv.Upper >= windowStart {
					stillAlive = append(stillAlive, m)
				}
			}
			alive, started = stillAlive, nil
		}
		started = append(started, member{iv, id})
	}
	if err := flush(); err != nil {
		return nil, err
	}

	if w.winIx, err = db.CreateIndex(name+"_windows_ix", name+"_windows", []string{"win", "lower", "upper", "id"}); err != nil {
		return nil, err
	}
	if w.baseIx, err = db.CreateIndex(name+"_base_ix", name+"_base", []string{"lower", "upper", "id"}); err != nil {
		return nil, err
	}
	return w, nil
}

// Open attaches to a previously built Window-List, reloading the window
// boundary directory.
func Open(db *rel.DB, name string) (*Index, error) {
	w := &Index{name: name, db: db}
	var err error
	if w.winTab, err = db.Table(name + "_windows"); err != nil {
		return nil, err
	}
	if w.baseTab, err = db.Table(name + "_base"); err != nil {
		return nil, err
	}
	if w.winIx, err = db.Index(name + "_windows_ix"); err != nil {
		return nil, err
	}
	if w.baseIx, err = db.Index(name + "_base_ix"); err != nil {
		return nil, err
	}
	boundTab, err := db.Table(name + "_bounds")
	if err != nil {
		return nil, err
	}
	type bound struct{ win, start int64 }
	var bs []bound
	err = boundTab.Scan(func(_ rel.RowID, row []int64) bool {
		bs = append(bs, bound{row[0], row[1]})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].win < bs[j].win })
	for _, b := range bs {
		w.bounds = append(w.bounds, b.start)
	}
	if len(w.bounds) == 0 {
		return nil, fmt.Errorf("winlist: %s has no windows", name)
	}
	return w, nil
}

// Name returns the access method's display name.
func (w *Index) Name() string { return "Window-List" }

// Insert is unsupported: the Window-List is static.
func (w *Index) Insert(interval.Interval, int64) error { return ErrStatic }

// Delete is unsupported: the Window-List is static.
func (w *Index) Delete(interval.Interval, int64) (bool, error) { return false, ErrStatic }

// windowOf returns the index of the window containing p.
func (w *Index) windowOf(p int64) int64 {
	// First window starts at -inf; binary search the greatest start <= p.
	i := sort.Search(len(w.bounds), func(i int) bool { return w.bounds[i] > p })
	return int64(i - 1)
}

// IntersectingFunc reports every stored interval intersecting q: a stabbing
// query at q.Lower through the window directory plus a range scan over
// intervals beginning inside (q.Lower, q.Upper].
func (w *Index) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return nil
	}
	stop := false
	// Stab q.Lower: scan the containing window's list, filter to actual
	// stabbers.
	win := w.windowOf(q.Lower)
	err := w.winIx.Scan(
		[]int64{win},
		[]int64{win},
		func(key []int64, _ rel.RowID) bool {
			lower, upper, id := key[1], key[2], key[3]
			if lower <= q.Lower && q.Lower <= upper {
				if !fn(id) {
					stop = true
					return false
				}
			}
			return true
		})
	if err != nil || stop {
		return err
	}
	// Intervals starting strictly after q.Lower and at or before q.Upper.
	if q.Upper > q.Lower {
		err = w.baseIx.Scan(
			[]int64{q.Lower + 1},
			[]int64{q.Upper, math.MaxInt64},
			func(key []int64, _ rel.RowID) bool {
				return fn(key[2])
			})
		if err != nil {
			return err
		}
	}
	return nil
}

// Intersecting returns the ids of all stored intervals intersecting q,
// sorted ascending.
func (w *Index) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	err := w.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true })
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Stab returns the ids of all stored intervals containing p.
func (w *Index) Stab(p int64) ([]int64, error) {
	return w.Intersecting(interval.Point(p))
}

// EntryCount returns the total number of index entries (window memberships
// plus base entries).
func (w *Index) EntryCount() int64 { return w.winIx.Len() + w.baseIx.Len() }

// Windows returns the number of windows.
func (w *Index) Windows() int { return len(w.bounds) }

// Count returns the number of stored intervals.
func (w *Index) Count() int64 { return w.baseTab.RowCount() }
