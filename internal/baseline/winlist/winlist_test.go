package winlist

import (
	"math/rand"
	"testing"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

func newDB(t *testing.T) *rel.DB {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 128})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func gen(n int, seed int64) ([]interval.Interval, []int64) {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]interval.Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 16)
		ivs[i] = interval.New(lo, lo+rng.Int63n(2048))
		ids[i] = int64(i)
	}
	return ivs, ids
}

func TestStabExhaustive(t *testing.T) {
	db := newDB(t)
	ivs, ids := gen(800, 1)
	w, err := Build(db, "w", ivs, ids)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		p := rng.Int63n(1 << 16)
		got, err := w.Stab(p)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, iv := range ivs {
			if iv.ContainsPoint(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("stab %d: got %d, want %d", p, len(got), want)
		}
	}
}

func TestSpaceLinear(t *testing.T) {
	// The windowing must keep total storage O(n) even with heavy overlap.
	db := newDB(t)
	n := 4000
	ivs := make([]interval.Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		// Nested intervals: worst case for naive per-point bucketing
		// (the Time Index's O(n^2) failure mode, §2.2).
		ivs[i] = interval.New(int64(i), int64(2*n-i))
		ids[i] = int64(i)
	}
	w, err := Build(db, "w", ivs, ids)
	if err != nil {
		t.Fatal(err)
	}
	if w.EntryCount() > int64(5*n) {
		t.Fatalf("entries = %d for n = %d: super-linear space", w.EntryCount(), n)
	}
	// Deep stab returns everything.
	got, _ := w.Stab(int64(n))
	if len(got) != n {
		t.Fatalf("deep stab found %d, want %d", len(got), n)
	}
}

func TestWindowCount(t *testing.T) {
	db := newDB(t)
	ivs, ids := gen(3000, 3)
	w, _ := Build(db, "w", ivs, ids)
	if w.Windows() < 3000/(2*minWindowFill) {
		t.Fatalf("only %d windows for 3000 intervals", w.Windows())
	}
	if w.Count() != 3000 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestEmptyBuild(t *testing.T) {
	db := newDB(t)
	w, err := Build(db, "w", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := w.Intersecting(interval.New(0, 1000))
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty query = %v, %v", ids, err)
	}
}

func TestMismatchedInput(t *testing.T) {
	db := newDB(t)
	if _, err := Build(db, "w", []interval.Interval{{Lower: 0, Upper: 1}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Build(db, "w2", []interval.Interval{{Lower: 5, Upper: 1}}, []int64{1}); err == nil {
		t.Fatal("invalid interval accepted")
	}
}

func TestOpenMissing(t *testing.T) {
	db := newDB(t)
	if _, err := Open(db, "nope"); err == nil {
		t.Fatal("Open of missing structure succeeded")
	}
}

func TestDuplicateBoundsAndPoints(t *testing.T) {
	db := newDB(t)
	ivs := []interval.Interval{
		interval.Point(100), interval.Point(100), interval.Point(100),
		interval.New(100, 100), interval.New(50, 150),
	}
	ids := []int64{1, 2, 3, 4, 5}
	w, err := Build(db, "w", ivs, ids)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := w.Stab(100)
	if len(got) != 5 {
		t.Fatalf("stab(100) = %v", got)
	}
	got, _ = w.Stab(99)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("stab(99) = %v", got)
	}
}
