// Package baseline_test cross-checks every interval access method of the
// reproduction — RI-tree, IST (D/V/H-order), MAP21, T-index, Window-List,
// and the main-memory HINT — against a brute-force reference on identical
// workloads.
package baseline_test

import (
	"fmt"
	"math/rand"

	"path/filepath"
	pub "ritree"
	"sort"
	"strings"
	"testing"

	"ritree/internal/baseline/ist"
	"ritree/internal/baseline/tile"
	"ritree/internal/baseline/winlist"
	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/ritree"
	"ritree/internal/sqldb"
)

type am interface {
	Name() string
	IntersectingFunc(q interval.Interval, fn func(id int64) bool) error
}

func collect(t *testing.T, m am, q interval.Interval) []int64 {
	t.Helper()
	var ids []int64
	if err := m.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true }); err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func newDB(t *testing.T) *rel.DB {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 2048, CacheSize: 256})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func genWorkload(n int, domain, maxLen int64, seed int64) ([]interval.Interval, []int64) {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]interval.Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(domain)
		ln := int64(0)
		if maxLen > 0 {
			ln = rng.Int63n(maxLen)
		}
		ivs[i] = interval.New(lo, lo+ln)
		ids[i] = int64(i)
	}
	return ivs, ids
}

func TestAllAccessMethodsAgree(t *testing.T) {
	const n = 2000
	ivs, ids := genWorkload(n, 1<<18, 2048, 77)

	db := newDB(t)
	rit, err := ritree.Create(db, "rit", ritree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rit.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	istD, err := ist.Create(db, "istd", ist.DOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := istD.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	istV, err := ist.Create(db, "istv", ist.VOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := istV.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	istH, err := ist.Create(db, "isth", ist.HOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := istH.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	m21, err := ist.CreateMap21(db, "m21", 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ivs {
		if err := m21.Insert(ivs[i], ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	ti, err := tile.Create(db, "tile", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ti.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	wl, err := winlist.Build(db, "wl", ivs, ids)
	if err != nil {
		t.Fatal(err)
	}
	// The main-memory HINT, in its default geometry and in the
	// comparison-free one (levels == domain bits).
	hd, err := hint.New(hint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hd.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	hcf, err := hint.New(hint.Options{Bits: 19, Levels: 19})
	if err != nil {
		t.Fatal(err)
	}
	if err := hcf.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	// ... and the sharded concurrent wrapper (BulkLoad leaves every
	// variant in the optimized flat layout, so this matrix pins the
	// optimized paths against the reference).
	hsh, err := hint.NewSharded(hint.Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := hsh.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}

	methods := []am{rit, istD, istV, istH, m21, ti, wl, hd, hcf, hsh}

	rng := rand.New(rand.NewSource(78))
	for qi := 0; qi < 100; qi++ {
		lo := rng.Int63n(1 << 18)
		q := interval.New(lo, lo+rng.Int63n(8192))
		if qi%10 == 0 {
			q = interval.Point(lo) // stabbing queries too
		}
		var want []int64
		for i, iv := range ivs {
			if iv.Intersects(q) {
				want = append(want, ids[i])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, m := range methods {
			got := collect(t, m, q)
			if len(got) != len(want) {
				t.Fatalf("%s query %v: %d results, brute force %d", m.Name(), q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %v: result %d = %d, want %d", m.Name(), q, i, got[i], want[i])
				}
			}
		}
	}
}

// openFileDB opens (or creates) a file-backed database at path.
func openFileDB(t *testing.T, path string) *rel.DB {
	t.Helper()
	be, err := pagestore.OpenFileBackend(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pagestore.New(be, pagestore.Options{PageSize: 1024, CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	var db *rel.DB
	if st.NumAllocated() == 0 {
		db, err = rel.CreateDB(st)
	} else {
		db, err = rel.OpenDB(st, 1)
	}
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newSession builds an engine over db with both indextypes registered.
func newSession(t *testing.T, db *rel.DB) *sqldb.Engine {
	t.Helper()
	e := sqldb.NewEngine(db)
	ritree.RegisterIndexType(e)
	hint.RegisterIndexType(e)
	return e
}

type liveIv struct {
	iv interval.Interval
	id int64
}

// checkDomainIndex compares the engine's INTERSECTS and CONTAINS_POINT
// answers on table tb against a brute-force scan of live.
func checkDomainIndex(t *testing.T, e *sqldb.Engine, tb string, live []liveIv, queries []interval.Interval) {
	t.Helper()
	for _, q := range queries {
		var want []int64
		for _, p := range live {
			if p.iv.Intersects(q) {
				want = append(want, p.id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		op := fmt.Sprintf("intersects(lo, hi, %d, %d)", q.Lower, q.Upper)
		if q.Lower == q.Upper {
			op = fmt.Sprintf("contains_point(lo, hi, %d)", q.Lower)
		}
		res, err := e.Exec(fmt.Sprintf("SELECT id FROM %s WHERE %s ORDER BY id", tb, op), nil)
		if err != nil {
			t.Fatalf("%s: %v", tb, err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("%s query %v: %d results, brute force %d", tb, q, len(res.Rows), len(want))
		}
		for i := range want {
			if res.Rows[i][0] != want[i] {
				t.Fatalf("%s query %v: result %d = %d, want %d", tb, q, i, res.Rows[i][0], want[i])
			}
		}
		// The domain index must actually serve the operator (no fallback).
		plan, err := e.Exec(fmt.Sprintf("EXPLAIN SELECT id FROM %s WHERE %s", tb, op), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan.Plan, "DOMAIN INDEX") {
			t.Fatalf("%s: operator not served by domain index:\n%s", tb, plan.Plan)
		}
	}
}

func TestReopenLifecycleCrosscheck(t *testing.T) {
	// The full session lifecycle of paper §5's promise: definitions created
	// in one session persist in the catalog, a reopened database re-attaches
	// them via AttachCatalogIndexes, and post-reopen DML keeps both access
	// methods in lockstep with a brute-force baseline. One table carries a
	// ritree domain index (persisted hidden relations), the other a hint
	// domain index (rebuilt from the heap), over identical data.
	path := filepath.Join(t.TempDir(), "lifecycle.pages")
	rng := rand.New(rand.NewSource(41))
	newIv := func() interval.Interval {
		lo := rng.Int63n(1 << 16)
		return interval.New(lo, lo+rng.Int63n(2048))
	}

	// Session 1: create tables + domain indexes, insert initial rows.
	db := openFileDB(t, path)
	e := newSession(t, db)
	var live []liveIv
	for _, tb := range []string{"rt", "ht"} {
		e.MustExec("CREATE TABLE "+tb+" (lo int, hi int, id int)", nil)
	}
	e.MustExec("CREATE INDEX rt_iv ON rt (lo, hi) INDEXTYPE IS ritree", nil)
	e.MustExec("CREATE INDEX ht_iv ON ht (lo, hi) INDEXTYPE IS hint", nil)
	for i := 0; i < 400; i++ {
		iv := newIv()
		live = append(live, liveIv{iv, int64(i)})
		for _, tb := range []string{"rt", "ht"} {
			e.MustExec("INSERT INTO "+tb+" VALUES (:lo, :hi, :id)",
				map[string]interface{}{"lo": iv.Lower, "hi": iv.Upper, "id": int64(i)})
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: reopen, auto-attach, run DML, crosscheck.
	db = openFileDB(t, path)
	e = newSession(t, db)
	if err := e.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	defs := db.CustomIndexes()
	if len(defs) != 2 {
		t.Fatalf("catalog lost definitions: %v", defs)
	}
	// Post-reopen inserts and deletes must maintain both domain indexes.
	for i := 400; i < 500; i++ {
		iv := newIv()
		live = append(live, liveIv{iv, int64(i)})
		for _, tb := range []string{"rt", "ht"} {
			e.MustExec("INSERT INTO "+tb+" VALUES (:lo, :hi, :id)",
				map[string]interface{}{"lo": iv.Lower, "hi": iv.Upper, "id": int64(i)})
		}
	}
	for i := 0; i < 80; i++ {
		j := rng.Intn(len(live))
		for _, tb := range []string{"rt", "ht"} {
			e.MustExec(fmt.Sprintf("DELETE FROM %s WHERE id = %d", tb, live[j].id), nil)
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	var queries []interval.Interval
	for qi := 0; qi < 30; qi++ {
		lo := rng.Int63n(1 << 16)
		q := interval.New(lo, lo+rng.Int63n(4096))
		if qi%5 == 0 {
			q = interval.Point(lo)
		}
		queries = append(queries, q)
	}
	checkDomainIndex(t, e, "rt", live, queries)
	checkDomainIndex(t, e, "ht", live, queries)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 3: reopen once more — the post-reopen DML of session 2 must
	// have maintained the persisted ritree relations, so a fresh attach
	// passes verification and still agrees with brute force.
	db = openFileDB(t, path)
	defer db.Close()
	e = newSession(t, db)
	if err := e.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	checkDomainIndex(t, e, "rt", live, queries)
	checkDomainIndex(t, e, "ht", live, queries)
}

func TestReopenWithoutAttachIsDetected(t *testing.T) {
	// Regression guard for the pre-fix silent-corruption mode: a session
	// that reopens the database and runs DML *without* attaching lets the
	// persisted RI-tree rot. The attach path must detect the divergence and
	// refuse the stale tree rather than serve wrong results.
	path := filepath.Join(t.TempDir(), "stale.pages")
	db := openFileDB(t, path)
	e := newSession(t, db)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS ritree", nil)
	e.MustExec("INSERT INTO ev VALUES (10, 20, 1)", nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Rogue session: DML without AttachCatalogIndexes skips maintenance.
	db = openFileDB(t, path)
	rogue := newSession(t, db)
	rogue.MustExec("INSERT INTO ev VALUES (30, 40, 2)", nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The next honest session must refuse the stale tree, loudly.
	db = openFileDB(t, path)
	e = newSession(t, db)
	err := e.AttachCatalogIndexes()
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("AttachCatalogIndexes over stale tree = %v, want stale-index error", err)
	}
	// Recovery: DROP INDEX works on the unattached definition, after which
	// a recreated index serves correct results again.
	e.MustExec("DROP INDEX ev_iv", nil)
	if err := e.AttachCatalogIndexes(); err != nil {
		t.Fatalf("attach after dropping the stale definition: %v", err)
	}
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS ritree", nil)
	r := e.MustExec("SELECT id FROM ev WHERE intersects(lo, hi, 10, 40) ORDER BY id", nil)
	if len(r.Rows) != 2 || r.Rows[0][0] != 1 || r.Rows[1][0] != 2 {
		t.Fatalf("recreated index rows = %v", r.Rows)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// And the recreated index survives another reopen cleanly.
	db = openFileDB(t, path)
	defer db.Close()
	e = newSession(t, db)
	if err := e.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenUnregisteredIndexTypeFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unreg.pages")
	db := openFileDB(t, path)
	e := newSession(t, db)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_mm ON ev (lo, hi) INDEXTYPE IS hint", nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openFileDB(t, path)
	defer db.Close()
	e2 := sqldb.NewEngine(db)
	ritree.RegisterIndexType(e2) // hint deliberately missing
	err := e2.AttachCatalogIndexes()
	if err == nil || !strings.Contains(err.Error(), "hint") || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("AttachCatalogIndexes without hint registered = %v, want loud failure", err)
	}
}

func TestHintDynamicAgreesWithRITree(t *testing.T) {
	// The two dynamic access methods — disk-relational RI-tree and
	// main-memory HINT — stay in lockstep through a mixed
	// insert/delete/query workload.
	db := newDB(t)
	rit, err := ritree.Create(db, "rit", ritree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := hint.New(hint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	type pair struct {
		iv interval.Interval
		id int64
	}
	var live []pair
	nextID := int64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			lo := rng.Int63n(1 << 18)
			iv := interval.New(lo, lo+rng.Int63n(4096))
			if err := rit.Insert(iv, nextID); err != nil {
				t.Fatal(err)
			}
			if err := hd.Insert(iv, nextID); err != nil {
				t.Fatal(err)
			}
			live = append(live, pair{iv, nextID})
			nextID++
		}
		for i := 0; i < 100 && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			p := live[j]
			ok1, err := rit.Delete(p.iv, p.id)
			if err != nil {
				t.Fatal(err)
			}
			ok2, err := hd.Delete(p.iv, p.id)
			if err != nil {
				t.Fatal(err)
			}
			if !ok1 || !ok2 {
				t.Fatalf("delete (%v, %d): ritree %v, hint %v", p.iv, p.id, ok1, ok2)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for qi := 0; qi < 20; qi++ {
			lo := rng.Int63n(1 << 18)
			q := interval.New(lo, lo+rng.Int63n(8192))
			if qi%5 == 0 {
				q = interval.Point(lo)
			}
			a := collect(t, rit, q)
			b := collect(t, hd, q)
			if len(a) != len(b) {
				t.Fatalf("query %v: RI-tree %d ids, HINT %d ids", q, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("query %v id %d: %d vs %d", q, i, a[i], b[i])
				}
			}
		}
	}
}

func TestStorageCharacteristics(t *testing.T) {
	// Figure 12's qualitative shape: IST stores n entries, the RI-tree 2n,
	// the T-index redundancy·n with redundancy > 2 for long intervals.
	const n = 3000
	ivs, ids := genWorkload(n, 1<<20, 4096, 12) // mean length ~2k (D1-like)

	db := newDB(t)
	rit, _ := ritree.Create(db, "rit", ritree.Options{})
	rit.BulkLoad(ivs, ids)
	istD, _ := ist.Create(db, "istd", ist.DOrder)
	istD.BulkLoad(ivs, ids)
	ti, _ := tile.Create(db, "tile", 8)
	ti.BulkLoad(ivs, ids)

	if got := istD.EntryCount(); got != n {
		t.Fatalf("IST entries = %d, want %d", got, n)
	}
	if got := rit.IndexEntries(); got != 2*n {
		t.Fatalf("RI-tree entries = %d, want %d", got, 2*n)
	}
	red := ti.Redundancy()
	if red < 2 {
		t.Fatalf("T-index redundancy = %.2f, want > 2 for 2k-length intervals", red)
	}
	if got := ti.EntryCount(); got < 2*n {
		t.Fatalf("T-index entries = %d, want > %d", got, 2*n)
	}
}

func TestTileDeleteAndInsert(t *testing.T) {
	db := newDB(t)
	ti, _ := tile.Create(db, "tile", 6)
	iv := interval.New(100, 900)
	if err := ti.Insert(iv, 1); err != nil {
		t.Fatal(err)
	}
	if err := ti.Insert(interval.New(500, 600), 2); err != nil {
		t.Fatal(err)
	}
	ids, _ := ti.Intersecting(interval.New(550, 560))
	if len(ids) != 2 {
		t.Fatalf("got %v", ids)
	}
	ok, err := ti.Delete(iv, 1)
	if err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	ids, _ = ti.Intersecting(interval.New(550, 560))
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("after delete got %v", ids)
	}
	ok, _ = ti.Delete(iv, 1)
	if ok {
		t.Fatal("double delete succeeded")
	}
}

func TestISTDeleteAndSweepAsymmetry(t *testing.T) {
	db := newDB(t)
	istD, _ := ist.Create(db, "istd", ist.DOrder)
	ivs, ids := genWorkload(4000, 1<<20, 1024, 5)
	istD.BulkLoad(ivs, ids)

	// Delete a few and verify.
	for i := 0; i < 5; i++ {
		ok, err := istD.Delete(ivs[i], ids[i])
		if err != nil || !ok {
			t.Fatalf("delete %d = %v, %v", i, ok, err)
		}
	}
	got, _ := istD.Intersecting(ivs[0])
	for _, id := range got {
		if id == ids[0] {
			t.Fatal("deleted interval still returned")
		}
	}

	// The D-order asymmetry (Figure 17): a stab near the domain's upper
	// bound scans far fewer index entries than one near the lower bound.
	db.ResetStats()
	istD.Intersecting(interval.Point(interval.DomainMax - 10))
	highIO := db.Stats().LogicalReads
	db.ResetStats()
	istD.Intersecting(interval.Point(interval.DomainMin + 10))
	lowIO := db.Stats().LogicalReads
	if lowIO < highIO*4 {
		t.Fatalf("D-order sweep asymmetry missing: low-end %d reads vs high-end %d", lowIO, highIO)
	}
}

func TestWindowListStatic(t *testing.T) {
	db := newDB(t)
	ivs, ids := genWorkload(1500, 1<<16, 512, 9)
	wl, err := winlist.Build(db, "wl", ivs, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Insert(interval.New(1, 2), 99); err != winlist.ErrStatic {
		t.Fatalf("Insert = %v, want ErrStatic", err)
	}
	if _, err := wl.Delete(ivs[0], ids[0]); err != winlist.ErrStatic {
		t.Fatalf("Delete = %v, want ErrStatic", err)
	}
	// O(n) space: window memberships bounded by a small multiple of n.
	if wl.EntryCount() > 4*int64(len(ivs)) {
		t.Fatalf("window-list entries = %d for n = %d: space blow-up", wl.EntryCount(), len(ivs))
	}
	if wl.Windows() < 2 {
		t.Fatalf("expected multiple windows, got %d", wl.Windows())
	}
	// Reopen from catalog.
	wl2, err := winlist.Open(db, "wl")
	if err != nil {
		t.Fatal(err)
	}
	q := interval.New(1000, 2000)
	a, _ := wl.Intersecting(q)
	b, _ := wl2.Intersecting(q)
	if len(a) != len(b) {
		t.Fatalf("reopened window list disagrees: %d vs %d", len(a), len(b))
	}
}

func TestMap21PartitionsBoundScans(t *testing.T) {
	db := newDB(t)
	m21, _ := ist.CreateMap21(db, "m21", 21)
	// Mostly short intervals plus a handful of very long ones: partitions
	// keep short-interval queries from paying for the long ones.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		lo := rng.Int63n(1 << 19)
		m21.Insert(interval.New(lo, lo+rng.Int63n(64)), int64(i))
	}
	for i := 3000; i < 3010; i++ {
		m21.Insert(interval.New(0, 1<<19), int64(i))
	}
	q := interval.New(1<<18, 1<<18+100)
	got, err := m21.Intersecting(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range got {
		if id >= 3000 {
			found = true
		}
	}
	if !found {
		t.Fatal("long spanning intervals missing from result")
	}
	if m21.Count() != 3010 {
		t.Fatalf("Count = %d", m21.Count())
	}
}

func TestHOrderLengthQueries(t *testing.T) {
	db := newDB(t)
	istH, _ := ist.Create(db, "isth", ist.HOrder)
	for i := int64(0); i < 100; i++ {
		istH.Insert(interval.New(i*10, i*10+i%20), i)
	}
	ids, err := istH.IntersectingWithLength(interval.New(0, 2000), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		ln := id % 20
		if ln < 5 || ln > 10 {
			t.Fatalf("id %d has length %d outside [5,10]", id, ln)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no length-constrained results")
	}
}

// TestCollectionsAgreeWithReference runs the crosscheck matrix through
// the public unified API: one DB, one collection per registered access
// method, every collection behind the same Querier interface, against the
// same brute-force reference the direct access methods are pinned to.
func TestCollectionsAgreeWithReference(t *testing.T) {
	const n = 2000
	ivs, ids := genWorkload(n, 1<<18, 2048, 77)

	db, err := pub.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var queriers []pub.Querier
	var names []string
	for _, method := range db.AccessMethods() {
		c, err := db.CreateCollection("cc_"+method, pub.AccessMethod(method))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if err := c.BulkLoad(ivs, ids); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		queriers = append(queriers, c)
		names = append(names, method)
	}
	// The legacy single-collection shims answer through the same Querier
	// interface and join the same matrix.
	idx, err := pub.New()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	hin, err := pub.NewHINT()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []pub.Querier{idx, hin} {
		if err := q.BulkLoad(ivs, ids); err != nil {
			t.Fatal(err)
		}
	}
	queriers = append(queriers, idx, hin)
	names = append(names, "legacy-Index", "legacy-HINT")

	rng := rand.New(rand.NewSource(78))
	for qi := 0; qi < 60; qi++ {
		lo := rng.Int63n(1 << 18)
		q := interval.New(lo, lo+rng.Int63n(8192))
		if qi%10 == 0 {
			q = interval.Point(lo)
		}
		var want []int64
		for i, iv := range ivs {
			if iv.Intersects(q) {
				want = append(want, ids[i])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for mi, m := range queriers {
			got, err := m.Intersecting(q)
			if err != nil {
				t.Fatalf("%s: %v", names[mi], err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s query %v: %d results, brute force %d", names[mi], q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %v: result %d = %d, want %d", names[mi], q, i, got[i], want[i])
				}
			}
			if n, err := m.CountIntersecting(q); err != nil || n != int64(len(want)) {
				t.Fatalf("%s query %v: count %d (%v), want %d", names[mi], q, n, err, len(want))
			}
		}
	}
	// One Allen sweep through the interface (detailed relation matrices
	// live in the per-package tests).
	q := interval.New(100000, 110000)
	for r := interval.Before; r <= interval.After; r++ {
		var want []int64
		for i, iv := range ivs {
			if r.Holds(iv, q) {
				want = append(want, ids[i])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for mi, m := range queriers {
			got, err := m.Query(r, q)
			if err != nil {
				t.Fatalf("%s/%v: %v", names[mi], r, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s relation %v: %d results, brute force %d", names[mi], r, len(got), len(want))
			}
		}
	}
}
