// Package tile implements the Tile Index (T-index) of the Oracle8i Spatial
// product [RS 99, Ora 97, Ora 99b] re-implemented for one-dimensional data
// spaces, exactly as the paper did for its evaluation (§6.1: "we have
// reimplemented the hybrid indexing package for one-dimensional data
// spaces").
//
// The hybrid fixed/variable tiling decomposes every interval into dyadic
// cells no larger than the fixed tile size 2^level; each cell produces one
// index entry keyed by the enclosing fixed tile. This is the redundancy the
// paper measures in Figure 12. An intersection query is an equijoin on the
// fixed tiles covering the query interval, followed by a scan of the
// variable-sized cells with duplicate elimination (§2.3).
//
// "Finding a good fixed level for the expected data distribution is
// crucial" (§2.3): Tune picks the level from a representative sample of
// 1000 intervals as in §6.1, and the level is fixed at creation time —
// adapting it requires rebuilding, the drawback the paper calls out.
package tile

import (
	"fmt"
	"math"
	"sort"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// Index is a T-index over one relation (tile, vlo, vhi, id) with a covering
// composite index; one row per variable-sized cell.
type Index struct {
	name  string
	db    *rel.DB
	tab   *rel.Table
	ix    *rel.Index
	level uint // fixed tiles have size 2^level
}

// MaxLevel bounds the fixed tile size to 2^MaxLevel.
const MaxLevel = 30

func tileIxName(name string) string { return name + "_ix" }

// Create instantiates a T-index with fixed tiles of size 2^level.
func Create(db *rel.DB, name string, level uint) (*Index, error) {
	if level > MaxLevel {
		return nil, fmt.Errorf("tile: level %d exceeds maximum %d", level, MaxLevel)
	}
	tab, err := db.CreateTable(name, []string{"tile", "vlo", "vhi", "id"})
	if err != nil {
		return nil, err
	}
	ix, err := db.CreateIndex(tileIxName(name), name, []string{"tile", "vlo", "vhi", "id"})
	if err != nil {
		return nil, err
	}
	return &Index{name: name, db: db, tab: tab, ix: ix, level: level}, nil
}

// Name returns the access method's display name.
func (t *Index) Name() string { return "T-index" }

// Level returns the fixed tiling level (tile size 2^level).
func (t *Index) Level() uint { return t.level }

func (t *Index) tileOf(x int64) int64 { return x >> t.level }

// cell is one variable-sized tile of an interval's decomposition.
type cell struct {
	tile   int64 // enclosing fixed tile
	lo, hi int64 // exact covered sub-range (clamped to the interval)
}

// decompose splits [lo, hi] into maximal aligned dyadic cells of size at
// most 2^level. Every cell lies within a single fixed tile; the stored
// bounds are clamped to the interval so refinement remains exact.
func (t *Index) decompose(lo, hi int64) []cell {
	ts := int64(1) << t.level
	var out []cell
	cur := lo
	for cur <= hi {
		// Largest aligned dyadic block starting at cur that fits in
		// [cur, hi] and does not exceed the fixed tile size.
		size := cur & -cur
		if cur == 0 || size > ts {
			size = ts
		}
		for size > 1 && cur+size-1 > hi {
			size >>= 1
		}
		end := cur + size - 1
		out = append(out, cell{tile: cur >> t.level, lo: cur, hi: end})
		cur = end + 1
	}
	return out
}

// Insert registers the interval under id, producing one index entry per
// variable-sized cell (the redundancy of the method).
func (t *Index) Insert(iv interval.Interval, id int64) error {
	if !iv.Valid() {
		return fmt.Errorf("tile: invalid interval %v", iv)
	}
	if iv.Lower < 0 {
		return fmt.Errorf("tile: negative bounds unsupported by the tiling domain: %v", iv)
	}
	for _, c := range t.decompose(iv.Lower, iv.Upper) {
		if _, err := t.tab.Insert([]int64{c.tile, c.lo, c.hi, id}); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes one registration of (iv, id), deleting every cell row.
func (t *Index) Delete(iv interval.Interval, id int64) (bool, error) {
	if !iv.Valid() || iv.Lower < 0 {
		return false, nil
	}
	cells := t.decompose(iv.Lower, iv.Upper)
	var victims []rel.RowID
	for _, c := range cells {
		key := []int64{c.tile, c.lo, c.hi, id}
		found := false
		err := t.ix.Scan(key, key, func(_ []int64, rid rel.RowID) bool {
			victims = append(victims, rid)
			found = true
			return false
		})
		if err != nil {
			return false, err
		}
		if !found {
			return false, nil // not stored (or a different registration)
		}
	}
	for _, rid := range victims {
		if _, err := t.tab.DeleteRow(rid); err != nil {
			return false, err
		}
	}
	return true, nil
}

// BulkLoad registers all intervals and rebuilds the covering index with a
// sorted bulk load.
func (t *Index) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("tile: BulkLoad got %d intervals and %d ids", len(ivs), len(ids))
	}
	if err := t.db.DropIndex(tileIxName(t.name)); err != nil {
		return err
	}
	row := make([]int64, 4)
	for i, iv := range ivs {
		if !iv.Valid() || iv.Lower < 0 {
			return fmt.Errorf("tile: invalid interval %v", iv)
		}
		for _, c := range t.decompose(iv.Lower, iv.Upper) {
			row[0], row[1], row[2], row[3] = c.tile, c.lo, c.hi, ids[i]
			if _, err := t.tab.Insert(row); err != nil {
				return err
			}
		}
	}
	ix, err := t.db.CreateIndex(tileIxName(t.name), t.name, []string{"tile", "vlo", "vhi", "id"})
	if err != nil {
		return err
	}
	t.ix = ix
	return nil
}

// IntersectingFunc reports every stored interval intersecting q: an index
// range scan over the fixed tiles covering q (the equijoin), an exact test
// on each variable-sized cell, and duplicate elimination across cells of
// the same interval.
func (t *Index) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return nil
	}
	ql := q.Lower
	if ql < 0 {
		ql = 0
	}
	if q.Upper < 0 {
		return nil
	}
	seen := make(map[int64]struct{})
	return t.ix.Scan(
		[]int64{t.tileOf(ql)},
		[]int64{t.tileOf(q.Upper)},
		func(key []int64, _ rel.RowID) bool {
			vlo, vhi, id := key[1], key[2], key[3]
			if vhi < q.Lower || vlo > q.Upper {
				return true // cell does not intersect the query
			}
			if _, dup := seen[id]; dup {
				return true
			}
			seen[id] = struct{}{}
			return fn(id)
		})
}

// Intersecting returns the ids of all stored intervals intersecting q,
// sorted ascending.
func (t *Index) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	err := t.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true })
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// EntryCount returns the number of index entries — n times the redundancy
// factor, the Figure 12 storage metric.
func (t *Index) EntryCount() int64 { return t.ix.Len() }

// Redundancy returns the average number of index entries per distinct
// stored interval id (10.1 for the paper's D4(*,2k) dataset).
func (t *Index) Redundancy() float64 {
	ids := make(map[int64]struct{})
	_ = t.tab.Scan(func(_ rel.RowID, row []int64) bool {
		ids[row[3]] = struct{}{}
		return true
	})
	if len(ids) == 0 {
		return 0
	}
	return float64(t.ix.Len()) / float64(len(ids))
}

// Tune determines the best fixed level for a representative sample of
// intervals and queries, mirroring §6.1: "we took a representative sample
// of 1,000 intervals from each individual data distribution and determined
// the optimal setting for the fixed level". The cost model charges one I/O
// per page of scanned index entries plus one probe per query, with entries
// estimated from the sample's decomposition at each candidate level.
func Tune(sample []interval.Interval, queries []interval.Interval, entriesPerPage int) uint {
	if entriesPerPage < 1 {
		entriesPerPage = 64
	}
	if len(sample) == 0 || len(queries) == 0 {
		return 8
	}
	bestLevel, bestCost := uint(8), math.Inf(1)
	for level := uint(2); level <= 16; level++ {
		ts := int64(1) << level
		// Average cells per interval at this level.
		var cells float64
		for _, iv := range sample {
			// A length-L interval decomposes into at most L/ts interior
			// cells plus up to 2·level boundary cells; estimate with the
			// exact greedy count on the sample.
			cells += float64(countCells(iv.Lower, iv.Upper, ts))
		}
		cells /= float64(len(sample))
		// Expected entries scanned per query: density of cells per unit
		// of space times the tile-aligned query extent.
		var span float64
		for _, q := range queries {
			qs := float64(q.Length() + ts) // tile-aligned query width
			span += qs
		}
		span /= float64(len(queries))
		domain := float64(interval.DomainMax - interval.DomainMin + 1)
		entriesScanned := cells * float64(len(sample)) * span / domain
		cost := entriesScanned/float64(entriesPerPage) + 3 /* probe */
		// Normalize per sample size so levels compare fairly.
		if cost < bestCost {
			bestCost, bestLevel = cost, level
		}
	}
	return bestLevel
}

func countCells(lo, hi, ts int64) int {
	n := 0
	cur := lo
	for cur <= hi {
		size := cur & -cur
		if cur == 0 || size > ts {
			size = ts
		}
		for size > 1 && cur+size-1 > hi {
			size >>= 1
		}
		cur += size
		n++
		if n > 1<<20 {
			break // defensive bound
		}
	}
	return n
}
