package tile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

func newIx(t *testing.T, level uint) *Index {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 64})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Create(db, "t", level)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestDecomposeCoversExactly(t *testing.T) {
	ix := newIx(t, 6) // tile size 64
	f := func(a, b uint16) bool {
		lo, hi := int64(a), int64(a)+int64(b%2000)
		cells := ix.decompose(lo, hi)
		// Cells must tile [lo, hi] exactly, in order, without gaps or
		// overlaps, each within a single fixed tile and sized <= 64.
		cur := lo
		for _, c := range cells {
			if c.lo != cur || c.hi < c.lo {
				return false
			}
			if c.hi-c.lo+1 > 64 {
				return false
			}
			if c.lo>>6 != c.tile || c.hi>>6 != c.tile {
				return false
			}
			cur = c.hi + 1
		}
		return cur == hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposePoint(t *testing.T) {
	ix := newIx(t, 8)
	cells := ix.decompose(12345, 12345)
	if len(cells) != 1 || cells[0].lo != 12345 || cells[0].hi != 12345 {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestDecomposeAlignedBlock(t *testing.T) {
	ix := newIx(t, 8)               // tile size 256
	cells := ix.decompose(512, 767) // exactly one aligned 256-block
	if len(cells) != 1 || cells[0].tile != 2 {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestCountCellsMatchesDecompose(t *testing.T) {
	ix := newIx(t, 7)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		lo := rng.Int63n(1 << 18)
		hi := lo + rng.Int63n(5000)
		if got, want := countCells(lo, hi, 1<<7), len(ix.decompose(lo, hi)); got != want {
			t.Fatalf("countCells(%d,%d) = %d, decompose = %d", lo, hi, got, want)
		}
	}
}

func TestRedundancyShapes(t *testing.T) {
	// Redundancy ~1 for points, >> 1 for long intervals (Figures 12/16).
	points := newIx(t, 8)
	long := newIx(t, 8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		lo := rng.Int63n(1 << 19)
		points.Insert(interval.Point(lo), int64(i))
		long.Insert(interval.New(lo, lo+2000), int64(i))
	}
	if r := points.Redundancy(); r != 1 {
		t.Fatalf("point redundancy = %v, want 1", r)
	}
	if r := long.Redundancy(); r < 5 {
		t.Fatalf("long-interval redundancy = %v, want >> 1", r)
	}
}

func TestTunePicksReasonableLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var sample, queries []interval.Interval
	for i := 0; i < 1000; i++ {
		lo := rng.Int63n(1 << 20)
		sample = append(sample, interval.New(lo, lo+rng.Int63n(4000)))
		queries = append(queries, interval.New(lo, lo+4000))
	}
	level := Tune(sample, queries, 50)
	if level < 2 || level > 16 {
		t.Fatalf("tuned level %d out of range", level)
	}
	// Defaults on empty input.
	if Tune(nil, nil, 50) != 8 {
		t.Fatal("empty-input default level changed")
	}
}

func TestLevelValidation(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 64})
	db, _ := rel.CreateDB(st)
	if _, err := Create(db, "t", MaxLevel+1); err == nil {
		t.Fatal("level above MaxLevel accepted")
	}
}

func TestNegativeBoundsRejected(t *testing.T) {
	ix := newIx(t, 8)
	if err := ix.Insert(interval.New(-5, 10), 1); err == nil {
		t.Fatal("negative lower bound accepted (tiling domain starts at 0)")
	}
	// Queries clip gracefully.
	ix.Insert(interval.New(0, 10), 2)
	ids, err := ix.Intersecting(interval.New(-100, 5))
	if err != nil || len(ids) != 1 {
		t.Fatalf("clipped query = %v, %v", ids, err)
	}
	ids, _ = ix.Intersecting(interval.New(-100, -50))
	if len(ids) != 0 {
		t.Fatalf("fully negative query returned %v", ids)
	}
}

func TestEntryCountEqualsCells(t *testing.T) {
	ix := newIx(t, 6)
	total := 0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		lo := rng.Int63n(1 << 16)
		iv := interval.New(lo, lo+rng.Int63n(1000))
		total += len(ix.decompose(iv.Lower, iv.Upper))
		if err := ix.Insert(iv, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.EntryCount() != int64(total) {
		t.Fatalf("EntryCount = %d, want %d", ix.EntryCount(), total)
	}
}
