// Package wire is the binary protocol shared by cmd/riserver and the
// database/sql driver. A connection is a strict lockstep sequence: the
// client writes one request frame, the server answers with exactly one
// response frame. Row results stream through a server-side cursor — the
// response to Query/StmtQuery is only a RowHeader naming the cursor; the
// client then issues Fetch requests for bounded row batches, so a client
// that stops fetching (LIMIT k, early Rows.Close) stops the server-side
// scan after O(k) work, exactly like an embedded cursor.
//
// Framing: every frame is [uvarint length][1 byte type][payload], where
// length counts the type byte plus the payload. Integers inside payloads
// are varints (signed values zig-zag encoded); strings are
// uvarint-length-prefixed UTF-8; binds travel as a count followed by
// (name, value) pairs. All row values are int64 — the SQL engine's only
// scalar type.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the protocol revision sent in Hello and echoed in
// HelloOK. A server refuses clients with a different major version.
const ProtoVersion = 1

// MaxFrame bounds a single frame (64 MiB): a decoder rejects anything
// larger rather than allocating unboundedly on a corrupt length prefix.
const MaxFrame = 1 << 26

// Message types. Client requests are low values, server responses have
// the high bit set; the split is cosmetic (each side only ever decodes
// the other's set) but makes captures easy to read.
const (
	MsgHello       byte = 0x01 // uvarint protoVersion
	MsgQuery       byte = 0x02 // string sql, binds
	MsgExec        byte = 0x03 // string sql, binds
	MsgParse       byte = 0x04 // string sql
	MsgStmtQuery   byte = 0x05 // uvarint stmtID, binds
	MsgStmtExec    byte = 0x06 // uvarint stmtID, binds
	MsgFetch       byte = 0x07 // uvarint cursorID, uvarint max
	MsgCloseCursor byte = 0x08 // uvarint cursorID
	MsgCloseStmt   byte = 0x09 // uvarint stmtID
	MsgPing        byte = 0x0A //
	MsgMetrics     byte = 0x0B //
	MsgTerminate   byte = 0x0C //

	MsgHelloOK     byte = 0x81 // uvarint protoVersion, string server
	MsgErr         byte = 0x82 // string code, string msg
	MsgParseOK     byte = 0x83 // uvarint stmtID, []string bindNames
	MsgRowHeader   byte = 0x84 // uvarint cursorID, []string cols
	MsgRowBatch    byte = 0x85 // byte done, uvarint nrows, nrows*ncols varints
	MsgExecOK      byte = 0x86 // varint affected, string plan
	MsgPong        byte = 0x87 //
	MsgMetricsData byte = 0x88 // string json
	MsgOK          byte = 0x89 //
)

// Error codes carried by MsgErr. CodeTxnConflict is the one the driver
// maps back to ritree.ErrTxnConflict so errors.Is works across the wire;
// everything else surfaces as a plain error string.
const (
	CodeError       = "error"
	CodeTxnConflict = "txn_conflict"
	CodeProtocol    = "protocol"
)

// ErrFrameTooLarge rejects a frame whose length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// WriteFrame writes one [len][type][payload] frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	hdr[n] = typ
	if _, err := w.Write(hdr[:n+1]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame. The returned payload is freshly allocated.
func ReadFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if n == 0 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Append helpers build payloads without an encoder object.

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], v)]...)
}

// AppendString appends s with a uvarint length prefix.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendStrings appends a counted list of strings.
func AppendStrings(b []byte, ss []string) []byte {
	b = AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendBinds appends a bind map as a counted list of (name, int64)
// pairs. Iteration order is irrelevant to the receiver.
func AppendBinds(b []byte, binds map[string]int64) []byte {
	b = AppendUvarint(b, uint64(len(binds)))
	for name, v := range binds {
		b = AppendString(b, name)
		b = AppendVarint(b, v)
	}
	return b
}

// Reader decodes a payload sequentially. Decode errors latch: every
// getter after a failure returns the zero value, and Err reports the
// first failure, so call sites read a whole message then check once.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps a payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or corrupt payload")
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.fail()
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// Strings reads a counted list of strings.
func (r *Reader) Strings() []string {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)) { // each string costs >= 1 byte
		r.fail()
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ss = append(ss, r.String())
	}
	if r.err != nil {
		return nil
	}
	return ss
}

// Binds reads a bind map (nil when empty).
func (r *Reader) Binds() map[string]int64 {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf))/2 { // each pair costs >= 2 bytes
		r.fail()
		return nil
	}
	m := make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		name := r.String()
		m[name] = r.Varint()
	}
	if r.err != nil {
		return nil
	}
	return m
}

// EncodeRowBatch builds a RowBatch payload: done flag, row count, then
// each row's values as varints. ncols is fixed by the preceding
// RowHeader, so rows carry no per-row length.
func EncodeRowBatch(rows [][]int64, done bool) []byte {
	b := make([]byte, 0, 2+len(rows)*8)
	if done {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = AppendUvarint(b, uint64(len(rows)))
	for _, row := range rows {
		for _, v := range row {
			b = AppendVarint(b, v)
		}
	}
	return b
}

// DecodeRowBatch parses a RowBatch payload; ncols comes from the
// cursor's RowHeader.
func DecodeRowBatch(payload []byte, ncols int) (rows [][]int64, done bool, err error) {
	r := NewReader(payload)
	done = r.Byte() == 1
	n := r.Uvarint()
	if r.err == nil && n > uint64(len(r.buf))+1 { // each row costs >= ncols bytes; guard n before allocating
		r.fail()
	}
	if r.err != nil {
		return nil, false, r.err
	}
	rows = make([][]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		row := make([]int64, ncols)
		for c := 0; c < ncols; c++ {
			row[c] = r.Varint()
		}
		rows = append(rows, row)
	}
	if r.err != nil {
		return nil, false, r.err
	}
	return rows, done, nil
}

// WireError is a server-reported error with its protocol code, so the
// driver can map CodeTxnConflict back onto ritree.ErrTxnConflict.
type WireError struct {
	Code string
	Msg  string
}

func (e *WireError) Error() string { return e.Msg }

// DecodeErr parses a MsgErr payload.
func DecodeErr(payload []byte) error {
	r := NewReader(payload)
	code, msg := r.String(), r.String()
	if r.err != nil {
		return r.err
	}
	return &WireError{Code: code, Msg: msg}
}

// EncodeErr builds a MsgErr payload.
func EncodeErr(code, msg string) []byte {
	return AppendString(AppendString(nil, code), msg)
}
