package wire

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendString(AppendUvarint(nil, 42), "SELECT 1")
	if err := WriteFrame(&buf, MsgQuery, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	typ, got, err := ReadFrame(r)
	if err != nil || typ != MsgQuery || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: typ=%#x err=%v", typ, err)
	}
	typ, got, err = ReadFrame(r)
	if err != nil || typ != MsgPing || len(got) != 0 {
		t.Fatalf("frame 2: typ=%#x len=%d err=%v", typ, len(got), err)
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	b := AppendVarint(nil, -12345)
	b = AppendUvarint(b, 1<<40)
	b = AppendString(b, "héllo")
	b = AppendStrings(b, []string{"a", "b", "c"})
	b = AppendBinds(b, map[string]int64{"k": -7, "v": 9})

	r := NewReader(b)
	if v := r.Varint(); v != -12345 {
		t.Fatalf("varint = %d", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint = %d", v)
	}
	if s := r.String(); s != "héllo" {
		t.Fatalf("string = %q", s)
	}
	if ss := r.Strings(); !reflect.DeepEqual(ss, []string{"a", "b", "c"}) {
		t.Fatalf("strings = %v", ss)
	}
	binds := r.Binds()
	if binds["k"] != -7 || binds["v"] != 9 || len(binds) != 2 {
		t.Fatalf("binds = %v", binds)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestRowBatchRoundTrip(t *testing.T) {
	rows := [][]int64{{1, -2, 3}, {4, 5, -6}}
	got, done, err := DecodeRowBatch(EncodeRowBatch(rows, true), 3)
	if err != nil || !done || !reflect.DeepEqual(got, rows) {
		t.Fatalf("rows=%v done=%v err=%v", got, done, err)
	}
	got, done, err = DecodeRowBatch(EncodeRowBatch(nil, false), 3)
	if err != nil || done || len(got) != 0 {
		t.Fatalf("empty batch: rows=%v done=%v err=%v", got, done, err)
	}
}

func TestTruncatedPayloads(t *testing.T) {
	full := AppendString(nil, "hello world")
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("no error at cut %d", cut)
		}
	}
	// A corrupt count must not cause a giant allocation.
	b := AppendUvarint(nil, 1<<40)
	if ss := NewReader(b).Strings(); ss != nil {
		t.Fatal("corrupt string count decoded")
	}
	if _, _, err := DecodeRowBatch(append([]byte{0}, AppendUvarint(nil, 1<<40)...), 2); err == nil {
		t.Fatal("corrupt row count decoded")
	}
}

func TestWireErrorRoundTrip(t *testing.T) {
	err := DecodeErr(EncodeErr(CodeTxnConflict, "conflict: table t changed"))
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeTxnConflict || we.Msg != "conflict: table t changed" {
		t.Fatalf("err = %#v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendUvarint(nil, MaxFrame+1))
	if _, _, err := ReadFrame(bufio.NewReader(&buf)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}
