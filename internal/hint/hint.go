// Package hint implements HINT^m — the hierarchical main-memory interval
// index of Christodoulou, Bouros and Mamoulis ("HINT: A Hierarchical Index
// for Intervals in Main Memory", SIGMOD 2022; see PAPERS.md).
//
// Where the RI-tree and the paper's other competitors are disk-relational
// access methods (relations plus B+-tree indexes over a paged buffer
// cache), HINT is a domain-partitioning index held entirely in memory:
// the domain [0, 2^Bits-1] is bisected recursively into m+1 levels, level
// l holding 2^l partitions. Each interval is stored in O(1) partitions
// per level — the partitions of its exact hierarchical decomposition — so
// an intersection query touches a handful of short arrays per level
// instead of descending a tree.
//
// Two of the paper's key optimizations are implemented:
//
//   - Subdivided partitions: every partition keeps its contents in four
//     arrays — originals ending inside the partition (oIn), originals
//     continuing after it (oAft), and the replica counterparts (rIn,
//     rAft). Originals are intervals that begin in the partition; every
//     other copy is a replica. The query algorithm reports each result
//     exactly once with no deduplication structure, and entire
//     subdivisions are emitted comparison-free whenever the partition
//     geometry already guarantees an overlap.
//
//   - Comparison-free evaluation: when Levels == Bits the bottom level
//     has granularity one, every decomposition is exact, and queries
//     whose endpoints lie in the domain perform no endpoint comparisons
//     at all — the paper's "comparison-free" HINT variant.
//
// The index is fully dynamic: Insert and Delete are incremental, so HINT
// can serve as a live secondary index (see indextype.go for its
// registration in the §5 extensible-indexing framework).
package hint

import (
	"fmt"
	"sort"

	"ritree/internal/interval"
)

// Defaults: the paper's experimental domain is [0, 2^20-1] (§6.1 of the
// RI-tree paper); m = 10 is in the sweet spot the HINT paper reports for
// its datasets (their Figure 10: best m typically 7-16).
const (
	DefaultBits   = 20
	DefaultLevels = 10

	// maxLevels bounds the eagerly allocated partition-pointer tables
	// (2^(m+1) pointers overall — 16 MiB at m = 20).
	maxLevels = 22
	maxBits   = 62
)

// Options configures New.
type Options struct {
	// Bits is the domain width: interval starts must lie in
	// [0, 2^Bits-1]. Interval ends beyond the domain (including the
	// interval.Infinity sentinel) are indexed as extending to the domain
	// maximum while comparisons keep the true endpoint. The
	// interval.NowMarker sentinel is rejected: HINT does not implement
	// the RI-tree's §4.6 now-relative semantics, and silently treating
	// [lo, now] as [lo, ∞) would diverge from it. Default 20, the
	// paper's data space.
	Bits int
	// Levels is m, the bottom level of the hierarchy: level l in [0, m]
	// holds 2^l partitions. Levels == Bits enables the comparison-free
	// variant. Default 10.
	Levels int
}

// entry is one stored copy of an interval: true endpoints plus the id.
type entry struct {
	lo, hi int64
	id     int64
}

// part is one partition, subdivided as in the paper's §4.2: originals
// (intervals starting in this partition) versus replicas, each split by
// whether the interval's indexed extent ends inside the partition or
// continues after it.
type part struct {
	oIn  []entry
	oAft []entry
	rIn  []entry
	rAft []entry
}

// Index is a HINT^m hierarchical interval index. It is not safe for
// concurrent use; wrap it in a lock (the top-level ritree.HINT API does).
type Index struct {
	bits    int
	m       int
	shift   uint // Bits - Levels: log2 of the bottom-level granularity
	cmpFree bool // granularity 1: comparison-free evaluation
	max     int64

	// levels[l][i] is partition i of level l, nil until first touched.
	levels [][]*part

	count    int64 // live intervals
	entries  int64 // stored copies, originals + replicas
	replicas int64
}

// New returns an empty index for the given options.
func New(opts Options) (*Index, error) {
	if opts.Bits == 0 {
		opts.Bits = DefaultBits
	}
	if opts.Levels == 0 {
		opts.Levels = DefaultLevels
	}
	if opts.Bits < 1 || opts.Bits > maxBits {
		return nil, fmt.Errorf("hint: Bits = %d out of range [1, %d]", opts.Bits, maxBits)
	}
	if opts.Levels < 1 || opts.Levels > opts.Bits || opts.Levels > maxLevels {
		return nil, fmt.Errorf("hint: Levels = %d out of range [1, min(Bits, %d)]", opts.Levels, maxLevels)
	}
	x := &Index{
		bits:    opts.Bits,
		m:       opts.Levels,
		shift:   uint(opts.Bits - opts.Levels),
		cmpFree: opts.Levels == opts.Bits,
		max:     1<<uint(opts.Bits) - 1,
	}
	x.levels = make([][]*part, x.m+1)
	for l := 0; l <= x.m; l++ {
		x.levels[l] = make([]*part, 1<<uint(l))
	}
	return x, nil
}

// Name identifies the index and its configuration (used by the
// cross-check matrix and benchmark tables).
func (x *Index) Name() string {
	if x.cmpFree {
		return fmt.Sprintf("HINT(m=%d,bits=%d,cmp-free)", x.m, x.bits)
	}
	return fmt.Sprintf("HINT(m=%d,bits=%d)", x.m, x.bits)
}

// Levels returns m, the bottom level of the hierarchy.
func (x *Index) Levels() int { return x.m }

// Bits returns the domain width in bits.
func (x *Index) Bits() int { return x.bits }

// ComparisonFree reports whether the index runs the comparison-free
// variant (Levels == Bits).
func (x *Index) ComparisonFree() bool { return x.cmpFree }

// DomainMax returns the largest admissible interval start, 2^Bits-1.
func (x *Index) DomainMax() int64 { return x.max }

// Count returns the number of live intervals.
func (x *Index) Count() int64 { return x.count }

// Entries returns the number of stored copies (originals plus replicas) —
// the space metric comparable to the disk methods' index entries.
func (x *Index) Entries() int64 { return x.entries }

// Replicas returns how many stored copies are replicas.
func (x *Index) Replicas() int64 { return x.replicas }

func (x *Index) clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > x.max {
		return x.max
	}
	return v
}

func (x *Index) checkInterval(iv interval.Interval) error {
	if !iv.Valid() {
		return fmt.Errorf("hint: invalid interval %v", iv)
	}
	if iv.Lower < 0 || iv.Lower > x.max {
		return fmt.Errorf("hint: interval start %d outside domain [0, %d]", iv.Lower, x.max)
	}
	if iv.Upper == interval.NowMarker {
		return fmt.Errorf("hint: now-relative intervals (§4.6) are not supported; use the RI-tree or a concrete upper bound")
	}
	return nil
}

// assign walks the partitions of iv's hierarchical decomposition
// bottom-up, classifying each as original/replica and ends-in/continues-
// after from the partition geometry.
func (x *Index) assign(iv interval.Interval, visit func(level int, idx int64, orig, in bool)) {
	a := x.clamp(iv.Lower) >> x.shift
	b := x.clamp(iv.Upper) >> x.shift
	ca, cb := a, b
	l := x.m
	for {
		if ca == cb {
			x.visitPart(l, ca, a, b, visit)
			return
		}
		if ca&1 == 1 { // right child: claim it, move to the next sibling
			x.visitPart(l, ca, a, b, visit)
			ca++
		}
		if cb&1 == 0 { // left child: claim it, move to the previous sibling
			x.visitPart(l, cb, a, b, visit)
			cb--
		}
		if ca > cb || l == 0 {
			return
		}
		ca >>= 1
		cb >>= 1
		l--
	}
}

func (x *Index) visitPart(l int, idx, a, b int64, visit func(level int, idx int64, orig, in bool)) {
	span := uint(x.m - l)
	pa := idx << span
	pb := (idx+1)<<span - 1
	// The decomposition is exact over the bottom-level prefixes [a, b],
	// so this partition is the original (contains the interval's start)
	// iff its range starts at or before a, and the interval ends inside
	// it iff its range reaches b.
	visit(l, idx, pa <= a, pb >= b)
}

func (x *Index) bucket(p *part, orig, in bool) *[]entry {
	switch {
	case orig && in:
		return &p.oIn
	case orig:
		return &p.oAft
	case in:
		return &p.rIn
	default:
		return &p.rAft
	}
}

// Insert registers iv under id. Multiple registrations of the same
// (interval, id) pair are allowed and count separately.
func (x *Index) Insert(iv interval.Interval, id int64) error {
	if err := x.checkInterval(iv); err != nil {
		return err
	}
	e := entry{lo: iv.Lower, hi: iv.Upper, id: id}
	x.assign(iv, func(l int, idx int64, orig, in bool) {
		p := x.levels[l][idx]
		if p == nil {
			p = &part{}
			x.levels[l][idx] = p
		}
		b := x.bucket(p, orig, in)
		*b = append(*b, e)
		x.entries++
		if !orig {
			x.replicas++
		}
	})
	x.count++
	return nil
}

// Delete removes one registration of (iv, id), reporting whether it
// existed.
func (x *Index) Delete(iv interval.Interval, id int64) (bool, error) {
	if err := x.checkInterval(iv); err != nil {
		return false, err
	}
	removed := false
	x.assign(iv, func(l int, idx int64, orig, in bool) {
		p := x.levels[l][idx]
		if p == nil {
			return
		}
		b := x.bucket(p, orig, in)
		s := *b
		for i := range s {
			if s[i].id == id && s[i].lo == iv.Lower && s[i].hi == iv.Upper {
				s[i] = s[len(s)-1]
				*b = s[:len(s)-1]
				x.entries--
				if !orig {
					x.replicas--
				}
				removed = true
				return
			}
		}
	})
	if removed {
		x.count--
	}
	return removed, nil
}

// BulkLoad inserts ivs[i] under ids[i].
func (x *Index) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("hint: BulkLoad got %d intervals, %d ids", len(ivs), len(ids))
	}
	for i := range ivs {
		if err := x.Insert(ivs[i], ids[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clear drops every stored interval, keeping the configuration.
func (x *Index) Clear() {
	for l := range x.levels {
		x.levels[l] = make([]*part, 1<<uint(l))
	}
	x.count, x.entries, x.replicas = 0, 0, 0
}

// IntersectingFunc streams the ids of all intervals intersecting q, each
// exactly once, in no particular order; return false from fn to stop
// early.
//
// Per level, with first/last relevant partitions f and t (the partitions
// of q's endpoints):
//
//   - partition f: originals and replicas, filtered on end >= q.lo —
//     the *Aft subdivisions skip even that comparison, since they
//     provably continue past the partition holding q.lo;
//   - partitions strictly between f and t: originals, comparison-free
//     (they begin inside a partition fully covered by q);
//   - partition t (if t > f): originals, filtered on start <= q.hi.
//
// Replicas outside partition f are never reported: their original copy
// is reported elsewhere. In the comparison-free configuration every
// partition's relevant subdivisions are emitted without any comparisons.
func (x *Index) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("hint: invalid query %v", q)
	}
	qlo := x.clamp(q.Lower)
	qhi := x.clamp(q.Upper)
	// Comparison-free evaluation and the per-level partition-alignment
	// shortcuts below justify skipped comparisons from partition
	// geometry against the query bound — which is only the true bound
	// when clamping did not move it. A clamped endpoint (out-of-domain
	// query) therefore falls back to comparisons on that side.
	loExact := qlo == q.Lower
	hiExact := qhi == q.Upper
	cmpFree := x.cmpFree && loExact && hiExact

	emit := func(s []entry) bool {
		for i := range s {
			if !fn(s[i].id) {
				return false
			}
		}
		return true
	}
	emitEndGE := func(s []entry, bound int64) bool {
		for i := range s {
			if s[i].hi >= bound && !fn(s[i].id) {
				return false
			}
		}
		return true
	}
	emitStartLE := func(s []entry, bound int64) bool {
		for i := range s {
			if s[i].lo <= bound && !fn(s[i].id) {
				return false
			}
		}
		return true
	}

	f := qlo >> x.shift
	t := qhi >> x.shift
	for l := x.m; l >= 0; l-- {
		parts := x.levels[l]
		span := uint(x.bits - l) // log2 of the partition width at level l
		if f == t {
			if p := parts[f]; p != nil {
				// q lies inside a single partition: originals need the
				// comparisons their subdivision cannot rule out, replicas
				// start before the partition (hence before q.hi) for free.
				skipEnd := cmpFree || (loExact && f<<span == qlo)
				skipStart := cmpFree || (hiExact && (f+1)<<span-1 == qhi)
				for i := range p.oIn {
					e := &p.oIn[i]
					if (skipStart || e.lo <= q.Upper) && (skipEnd || e.hi >= q.Lower) {
						if !fn(e.id) {
							return nil
						}
					}
				}
				if skipStart {
					if !emit(p.oAft) {
						return nil
					}
				} else if !emitStartLE(p.oAft, q.Upper) {
					return nil
				}
				if skipEnd {
					if !emit(p.rIn) {
						return nil
					}
				} else if !emitEndGE(p.rIn, q.Lower) {
					return nil
				}
				if !emit(p.rAft) {
					return nil
				}
			}
		} else {
			if p := parts[f]; p != nil {
				skipEnd := cmpFree || (loExact && f<<span == qlo)
				if skipEnd {
					if !emit(p.oIn) || !emit(p.rIn) {
						return nil
					}
				} else if !emitEndGE(p.oIn, q.Lower) || !emitEndGE(p.rIn, q.Lower) {
					return nil
				}
				if !emit(p.oAft) || !emit(p.rAft) {
					return nil
				}
			}
			for i := f + 1; i < t; i++ {
				if p := parts[i]; p != nil {
					if !emit(p.oIn) || !emit(p.oAft) {
						return nil
					}
				}
			}
			if p := parts[t]; p != nil {
				skipStart := cmpFree || (hiExact && (t+1)<<span-1 == qhi)
				if skipStart {
					if !emit(p.oIn) || !emit(p.oAft) {
						return nil
					}
				} else if !emitStartLE(p.oIn, q.Upper) || !emitStartLE(p.oAft, q.Upper) {
					return nil
				}
			}
		}
		f >>= 1
		t >>= 1
	}
	return nil
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (x *Index) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	if err := x.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true }); err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// CountIntersecting returns the number of intervals intersecting q.
func (x *Index) CountIntersecting(q interval.Interval) (int64, error) {
	var n int64
	err := x.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (x *Index) Stab(p int64) ([]int64, error) {
	return x.Intersecting(interval.Point(p))
}

// String summarizes the index.
func (x *Index) String() string {
	return fmt.Sprintf("hint.Index{%s, n=%d, entries=%d, replicas=%d}",
		x.Name(), x.count, x.entries, x.replicas)
}
