// Package hint implements HINT^m — the hierarchical main-memory interval
// index of Christodoulou, Bouros and Mamoulis ("HINT: A Hierarchical Index
// for Intervals in Main Memory", SIGMOD 2022; see PAPERS.md).
//
// Where the RI-tree and the paper's other competitors are disk-relational
// access methods (relations plus B+-tree indexes over a paged buffer
// cache), HINT is a domain-partitioning index held entirely in memory:
// the domain [0, 2^Bits-1] is bisected recursively into m+1 levels, level
// l holding 2^l partitions. Each interval is stored in O(1) partitions
// per level — the partitions of its exact hierarchical decomposition — so
// an intersection query touches a handful of short arrays per level
// instead of descending a tree.
//
// The paper's §4 optimizations are implemented:
//
//   - Subdivided partitions (§4.2): every partition keeps its contents in
//     four arrays — originals ending inside the partition (oIn),
//     originals continuing after it (oAft), and the replica counterparts
//     (rIn, rAft). Originals are intervals that begin in the partition;
//     every other copy is a replica. The query algorithm reports each
//     result exactly once with no deduplication structure, and entire
//     subdivisions are emitted comparison-free whenever the partition
//     geometry already guarantees an overlap.
//
//   - Sorted subdivisions (§4.2): each subdivision is kept sorted by the
//     comparison key a query needs from it — oIn and oAft by interval
//     start (the last relevant partition filters on start <= query
//     upper), rIn by interval end (the first relevant partition filters
//     on end >= query lower). Queries binary-search to the qualifying
//     prefix or suffix and emit it comparison-free; the only residual
//     per-entry comparisons are the end checks on the first partition's
//     originals, exactly the paper's remainder.
//
//   - Cache-conscious storage (§4.4): Optimize (called automatically by
//     BulkLoad) compacts every level into one flat entry array per
//     subdivision class with an offset table, so a query's per-level work
//     is sequential scans of contiguous memory instead of pointer chasing
//     through per-partition slices. Incremental Insert/Delete keep
//     working after Optimize through a small sorted overlay that the next
//     Optimize folds in. Per-level bitmaps of nonempty partitions let
//     queries skip dead partitions without touching their memory.
//
//   - Comparison-free evaluation: when Levels == Bits the bottom level
//     has granularity one, every decomposition is exact, and queries
//     whose endpoints lie in the domain perform no endpoint comparisons
//     at all — the paper's "comparison-free" HINT variant.
//
// The index is fully dynamic: Insert and Delete are incremental, so HINT
// can serve as a live secondary index (see indextype.go for its
// registration in the §5 extensible-indexing framework). A single Index
// is not safe for concurrent use; Sharded (see sharded.go) packages N
// indexes behind per-shard reader-writer locks for concurrent serving.
package hint

import (
	"fmt"
	"slices"
	"sort"

	"ritree/internal/interval"
)

// Defaults: the paper's experimental domain is [0, 2^20-1] (§6.1 of the
// RI-tree paper); m = 10 is in the sweet spot the HINT paper reports for
// its datasets (their Figure 10: best m typically 7-16).
const (
	DefaultBits   = 20
	DefaultLevels = 10

	// maxLevels bounds the eagerly allocated partition-pointer tables
	// (2^(m+1) pointers overall — 16 MiB at m = 20).
	maxLevels = 22
	maxBits   = 62
)

// Options configures New.
type Options struct {
	// Bits is the domain width: interval starts must lie in
	// [0, 2^Bits-1]. Interval ends beyond the domain (including the
	// interval.Infinity sentinel) are indexed as extending to the domain
	// maximum while comparisons keep the true endpoint. The
	// interval.NowMarker sentinel is rejected: HINT does not implement
	// the RI-tree's §4.6 now-relative semantics, and silently treating
	// [lo, now] as [lo, ∞) would diverge from it. Default 20, the
	// paper's data space.
	Bits int
	// Levels is m, the bottom level of the hierarchy: level l in [0, m]
	// holds 2^l partitions. Levels == Bits enables the comparison-free
	// variant. Default 10.
	Levels int
	// Shards requests a concurrently usable index of that many
	// independently locked shards; it is consumed by NewSharded only.
	// New rejects Shards > 1 — a bare Index has no locking to shard.
	Shards int
	// NoSort keeps every subdivision in insertion order and scans it
	// linearly with per-entry comparisons — the unoptimized baseline
	// layout, retained as an ablation knob (ribench -exp hintopt)
	// so the sorted-subdivision speedup stays measurable. Production
	// configurations leave it false.
	NoSort bool
}

// entry is one stored copy of an interval: true endpoints plus the id.
type entry struct {
	lo, hi int64
	id     int64
}

// Subdivision classes of a partition (§4.2), with the sort key the query
// algorithm needs from each:
//
//	cOIn  originals ending inside the partition    — sorted by lo
//	cOAft originals continuing after the partition — sorted by lo
//	cRIn  replicas ending inside the partition     — sorted by hi
//	cRAft replicas continuing after the partition  — never filtered,
//	      kept in insertion order
const (
	cOIn = iota
	cOAft
	cRIn
	cRAft
	numSubs
)

func classOf(orig, in bool) int {
	switch {
	case orig && in:
		return cOIn
	case orig:
		return cOAft
	case in:
		return cRIn
	default:
		return cRAft
	}
}

// classKey returns the sort key of e under class c.
func classKey(c int, e entry) int64 {
	if c == cRIn {
		return e.hi
	}
	return e.lo
}

// part is one partition's dynamic overlay: the four subdivisions as plain
// slices. Before the first Optimize this is the index's only storage;
// afterwards it holds the entries inserted since, until the next Optimize
// folds them into the flat arrays.
type part struct {
	subs [numSubs][]entry
	// COW generation stamps (see cow.go): gen owns the struct, subGen[c]
	// owns bucket c's backing array.
	gen    uint64
	subGen [numSubs]uint64
}

// Index is a HINT^m hierarchical interval index. It is not safe for
// concurrent use; wrap it in a lock or use Sharded (the top-level
// ritree.HINT API does).
type Index struct {
	bits    int
	m       int
	shift   uint // Bits - Levels: log2 of the bottom-level granularity
	cmpFree bool // granularity 1: comparison-free evaluation
	max     int64
	noSort  bool

	// levels[l][i] is the dynamic overlay of partition i of level l, nil
	// until first touched.
	levels [][]*part
	// flat is the cache-conscious storage built by Optimize, nil before
	// the first call. flat[l].subs[c] concatenates the class-c entries
	// of every partition of level l.
	flat []flatLevel
	// nonempty[l] is a bitmap over level l's partitions: bit i set iff
	// partition i holds at least one entry (overlay or flat).
	nonempty [][]uint64

	// COW generation bookkeeping (see cow.go): gen is this Index's
	// generation (0 on a bare, never-cloned index); levelsGen[l] and
	// bitGen[l] record which generation owns levels[l] and nonempty[l].
	gen       uint64
	levelsGen []uint64
	bitGen    []uint64

	bulk bool // BulkLoad in progress: raw appends, Optimize sorts after

	// met mirrors query-shape counters into an obs registry; nil (the
	// default) records nothing. See metrics.go.
	met *indexMetrics

	count    int64 // live intervals
	entries  int64 // stored copies, originals + replicas
	replicas int64
	overlay  int64 // stored copies currently in the dynamic overlay
}

// New returns an empty index for the given options.
func New(opts Options) (*Index, error) {
	if opts.Bits == 0 {
		opts.Bits = DefaultBits
	}
	if opts.Levels == 0 {
		opts.Levels = DefaultLevels
	}
	if opts.Bits < 1 || opts.Bits > maxBits {
		return nil, fmt.Errorf("hint: Bits = %d out of range [1, %d]", opts.Bits, maxBits)
	}
	if opts.Levels < 1 || opts.Levels > opts.Bits || opts.Levels > maxLevels {
		return nil, fmt.Errorf("hint: Levels = %d out of range [1, min(Bits, %d)]", opts.Levels, maxLevels)
	}
	if opts.Shards > 1 {
		return nil, fmt.Errorf("hint: Shards = %d on a bare Index; use NewSharded", opts.Shards)
	}
	x := &Index{
		bits:    opts.Bits,
		m:       opts.Levels,
		shift:   uint(opts.Bits - opts.Levels),
		cmpFree: opts.Levels == opts.Bits,
		max:     1<<uint(opts.Bits) - 1,
		noSort:  opts.NoSort,
	}
	x.levels = make([][]*part, x.m+1)
	x.nonempty = make([][]uint64, x.m+1)
	x.levelsGen = make([]uint64, x.m+1)
	x.bitGen = make([]uint64, x.m+1)
	for l := 0; l <= x.m; l++ {
		x.levels[l] = make([]*part, 1<<uint(l))
		x.nonempty[l] = make([]uint64, (1<<uint(l)+63)/64)
	}
	return x, nil
}

// Name identifies the index and its configuration (used by the
// cross-check matrix and benchmark tables).
func (x *Index) Name() string {
	if x.cmpFree {
		return fmt.Sprintf("HINT(m=%d,bits=%d,cmp-free)", x.m, x.bits)
	}
	return fmt.Sprintf("HINT(m=%d,bits=%d)", x.m, x.bits)
}

// Levels returns m, the bottom level of the hierarchy.
func (x *Index) Levels() int { return x.m }

// Bits returns the domain width in bits.
func (x *Index) Bits() int { return x.bits }

// ComparisonFree reports whether the index runs the comparison-free
// variant (Levels == Bits).
func (x *Index) ComparisonFree() bool { return x.cmpFree }

// DomainMax returns the largest admissible interval start, 2^Bits-1.
func (x *Index) DomainMax() int64 { return x.max }

// Count returns the number of live intervals.
func (x *Index) Count() int64 { return x.count }

// Entries returns the number of stored copies (originals plus replicas) —
// the space metric comparable to the disk methods' index entries.
func (x *Index) Entries() int64 { return x.entries }

// Replicas returns how many stored copies are replicas.
func (x *Index) Replicas() int64 { return x.replicas }

// Optimized reports whether the flat cache-conscious storage has been
// built (by Optimize or BulkLoad).
func (x *Index) Optimized() bool { return x.flat != nil }

// FlatEntries returns how many stored copies live in the flat storage.
func (x *Index) FlatEntries() int64 { return x.entries - x.overlay }

// OverlayEntries returns how many stored copies live in the dynamic
// overlay, i.e. were inserted since the last Optimize. The ratio against
// FlatEntries is the natural re-Optimize trigger for long-lived indexes.
func (x *Index) OverlayEntries() int64 { return x.overlay }

func (x *Index) clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > x.max {
		return x.max
	}
	return v
}

func (x *Index) checkInterval(iv interval.Interval) error {
	if !iv.Valid() {
		return fmt.Errorf("hint: invalid interval %v", iv)
	}
	if iv.Lower < 0 || iv.Lower > x.max {
		return fmt.Errorf("hint: interval start %d outside domain [0, %d]", iv.Lower, x.max)
	}
	if iv.Upper == interval.NowMarker {
		return fmt.Errorf("hint: now-relative intervals (§4.6) are not supported; use the RI-tree or a concrete upper bound")
	}
	return nil
}

// assign walks the partitions of iv's hierarchical decomposition
// bottom-up, classifying each as original/replica and ends-in/continues-
// after from the partition geometry.
func (x *Index) assign(iv interval.Interval, visit func(level int, idx int64, orig, in bool)) {
	a := x.clamp(iv.Lower) >> x.shift
	b := x.clamp(iv.Upper) >> x.shift
	ca, cb := a, b
	l := x.m
	for {
		if ca == cb {
			x.visitPart(l, ca, a, b, visit)
			return
		}
		if ca&1 == 1 { // right child: claim it, move to the next sibling
			x.visitPart(l, ca, a, b, visit)
			ca++
		}
		if cb&1 == 0 { // left child: claim it, move to the previous sibling
			x.visitPart(l, cb, a, b, visit)
			cb--
		}
		if ca > cb || l == 0 {
			return
		}
		ca >>= 1
		cb >>= 1
		l--
	}
}

func (x *Index) visitPart(l int, idx, a, b int64, visit func(level int, idx int64, orig, in bool)) {
	span := uint(x.m - l)
	pa := idx << span
	pb := (idx+1)<<span - 1
	// The decomposition is exact over the bottom-level prefixes [a, b],
	// so this partition is the original (contains the interval's start)
	// iff its range starts at or before a, and the interval ends inside
	// it iff its range reaches b.
	visit(l, idx, pa <= a, pb >= b)
}

// insertSorted places e into *b at its class-key upper bound, keeping the
// bucket sorted. Equal keys append at the end of their run, so the
// memmove cost degenerates gracefully on skewed data.
func insertSorted(b *[]entry, c int, e entry) {
	s := *b
	k := classKey(c, e)
	i := sort.Search(len(s), func(j int) bool { return classKey(c, s[j]) > k })
	s = append(s, entry{})
	copy(s[i+1:], s[i:])
	s[i] = e
	*b = s
}

// findInBucket locates one copy of e in an overlay bucket, returning -1
// if absent. Sorted buckets narrow to the equal-key run by binary search
// first.
func (x *Index) findInBucket(s []entry, c int, e entry) int {
	from, to := 0, len(s)
	if !x.noSort && !x.bulk && c != cRAft {
		k := classKey(c, e)
		from = sort.Search(len(s), func(j int) bool { return classKey(c, s[j]) >= k })
		to = from + sort.Search(len(s)-from, func(j int) bool { return classKey(c, s[from+j]) > k })
	}
	for i := from; i < to; i++ {
		if s[i] == e {
			return i
		}
	}
	return -1
}

// removeFromBucket removes one copy of e from the overlay bucket,
// preserving order; reports whether it was found. The bucket must be
// owned by the current generation.
func (x *Index) removeFromBucket(b *[]entry, c int, e entry) bool {
	s := *b
	i := x.findInBucket(s, c, e)
	if i < 0 {
		return false
	}
	copy(s[i:], s[i+1:])
	*b = s[:len(s)-1]
	return true
}

// Insert registers iv under id. Multiple registrations of the same
// (interval, id) pair are allowed and count separately.
func (x *Index) Insert(iv interval.Interval, id int64) error {
	if err := x.checkInterval(iv); err != nil {
		return err
	}
	e := entry{lo: iv.Lower, hi: iv.Upper, id: id}
	x.assign(iv, func(l int, idx int64, orig, in bool) {
		p := x.ownPart(l, idx)
		c := classOf(orig, in)
		b := x.ownBucket(p, c)
		if x.bulk || x.noSort || c == cRAft {
			*b = append(*b, e)
		} else {
			insertSorted(b, c, e)
		}
		x.ownBits(l)
		x.setBit(l, idx)
		x.entries++
		x.overlay++
		if !orig {
			x.replicas++
		}
	})
	x.count++
	return nil
}

// Delete removes one registration of (iv, id), reporting whether it
// existed. Copies in the flat storage are removed by compacting their
// partition's segment in place — O(partition) work, no rebuild.
func (x *Index) Delete(iv interval.Interval, id int64) (bool, error) {
	if err := x.checkInterval(iv); err != nil {
		return false, err
	}
	e := entry{lo: iv.Lower, hi: iv.Upper, id: id}
	removed := false
	x.assign(iv, func(l int, idx int64, orig, in bool) {
		c := classOf(orig, in)
		ok := false
		// Peek read-only first so a miss privatizes nothing.
		if p := x.levels[l][idx]; p != nil && x.findInBucket(p.subs[c], c, e) >= 0 {
			op := x.ownPart(l, idx)
			x.removeFromBucket(x.ownBucket(op, c), c, e)
			ok = true
			x.overlay--
		} else if x.flat != nil && x.flatRemove(l, idx, c, e) {
			ok = true
		}
		if !ok {
			return
		}
		x.entries--
		if !orig {
			x.replicas--
		}
		if x.partEmpty(l, idx) {
			x.ownBits(l)
			x.clearBit(l, idx)
		}
		removed = true
	})
	if removed {
		x.count--
	}
	return removed, nil
}

// partEmpty reports whether partition idx of level l holds no entries in
// either representation.
func (x *Index) partEmpty(l int, idx int64) bool {
	if p := x.levels[l][idx]; p != nil {
		for c := 0; c < numSubs; c++ {
			if len(p.subs[c]) > 0 {
				return false
			}
		}
	}
	if x.flat != nil {
		fl := &x.flat[l]
		for c := 0; c < numSubs; c++ {
			if len(fl.subs[c].seg(idx)) > 0 {
				return false
			}
		}
	}
	return true
}

// BulkLoad inserts ivs[i] under ids[i] and compacts the index into its
// optimized flat layout — the fast path for loading large datasets.
func (x *Index) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("hint: BulkLoad got %d intervals, %d ids", len(ivs), len(ids))
	}
	// Raw appends during the load: Optimize sorts everything once at the
	// end, instead of paying a memmove per insert.
	x.bulk = true
	var err error
	for i := range ivs {
		if err = x.Insert(ivs[i], ids[i]); err != nil {
			break
		}
	}
	x.bulk = false
	// Optimize even on error: it restores the sorted-bucket invariant
	// for the entries that did get in.
	x.Optimize()
	return err
}

// Clear drops every stored interval, keeping the configuration.
func (x *Index) Clear() {
	for l := range x.levels {
		x.levels[l] = make([]*part, 1<<uint(l))
		x.levelsGen[l] = x.gen
		x.nonempty[l] = make([]uint64, (1<<uint(l)+63)/64)
		x.bitGen[l] = x.gen
	}
	x.flat = nil
	x.count, x.entries, x.replicas, x.overlay = 0, 0, 0, 0
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (x *Index) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	if err := x.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true }); err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// CountIntersecting returns the number of intervals intersecting q.
func (x *Index) CountIntersecting(q interval.Interval) (int64, error) {
	var n int64
	err := x.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (x *Index) Stab(p int64) ([]int64, error) {
	return x.Intersecting(interval.Point(p))
}

// String summarizes the index.
func (x *Index) String() string {
	return fmt.Sprintf("hint.Index{%s, n=%d, entries=%d, replicas=%d, flat=%d}",
		x.Name(), x.count, x.entries, x.replicas, x.FlatEntries())
}
