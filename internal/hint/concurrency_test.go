package hint

// Concurrency tests for the sharded index, written to be meaningful
// under -race (the CI race job runs them): parallel IntersectingFunc
// callers proceed while writers insert, delete, and Optimize. Assertions
// are deliberately about invariants that hold at any interleaving —
// every id a reader sees must be one a writer inserted, and the final
// single-threaded state must match a brute-force reference.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ritree/internal/interval"
)

func TestShardedConcurrentReadersDuringInserts(t *testing.T) {
	s, err := NewSharded(Options{Bits: 16, Levels: 8, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers       = 4
		readers       = 4
		perWriter     = 800
		deleteEvery   = 5
		optimizeEvery = 200
	)
	max := s.DomainMax()
	var stop atomic.Bool
	var wwg, rwg sync.WaitGroup

	// Writers: insert, periodically delete their own earlier inserts and
	// compact. Ids are partitioned by writer so deletes never race over
	// ownership.
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			type rec struct {
				iv interval.Interval
				id int64
			}
			var mine []rec
			for i := 0; i < perWriter; i++ {
				lo := rng.Int63n(max + 1)
				hi := lo + rng.Int63n(1024)
				if hi > max {
					hi = max
				}
				iv := interval.New(lo, hi)
				id := int64(w)*1_000_000 + int64(i)
				if err := s.Insert(iv, id); err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, rec{iv, id})
				if i%deleteEvery == deleteEvery-1 {
					j := rng.Intn(len(mine))
					r := mine[j]
					ok, err := s.Delete(r.iv, r.id)
					if err != nil || !ok {
						t.Errorf("writer %d: delete = %v, %v", w, ok, err)
						return
					}
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
				if i%optimizeEvery == optimizeEvery-1 {
					s.Optimize()
				}
			}
		}(w)
	}

	// Readers: stream intersections concurrently; every reported id must
	// be in a writer's id space, and re-entrant counting must not error.
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !stop.Load() {
				lo := rng.Int63n(max + 1)
				hi := lo + rng.Int63n(8192)
				err := s.IntersectingFunc(interval.New(lo, hi), func(id int64) bool {
					if id < 0 || id >= writers*1_000_000+perWriter {
						t.Errorf("reader saw impossible id %d", id)
						return false
					}
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.CountIntersecting(interval.Point(lo)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}

	// Readers overlap the whole write phase, then wind down.
	wwg.Wait()
	stop.Store(true)
	rwg.Wait()

	// Single-threaded epilogue: the surviving set must be internally
	// consistent and fully queryable.
	if want := int64(writers) * int64(perWriter-perWriter/deleteEvery); s.Count() != want && !t.Failed() {
		t.Fatalf("Count = %d, want %d", s.Count(), want)
	}
	n := s.Count()
	ids, err := s.Intersecting(interval.New(0, max))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(ids)) != n {
		t.Fatalf("full-domain query returned %d ids, Count = %d", len(ids), n)
	}
	if s.Entries()-s.Replicas() != n {
		t.Fatalf("entries=%d replicas=%d count=%d", s.Entries(), s.Replicas(), n)
	}
	s.Optimize()
	ids2, err := s.Intersecting(interval.New(0, max))
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(ids, ids2) {
		t.Fatalf("Optimize changed the result set: %d vs %d ids", len(ids), len(ids2))
	}
}

// TestHINTIndexSingleShardConcurrentReads pins the core guarantee the
// wrapper relies on: a bare Index serves any number of purely reading
// goroutines concurrently (no writer in flight).
func TestHINTIndexSingleShardConcurrentReads(t *testing.T) {
	x, err := New(Options{Bits: 16, Levels: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var ivs []interval.Interval
	var ids []int64
	for i := int64(0); i < 5000; i++ {
		lo := rng.Int63n(1 << 16)
		hi := lo + rng.Int63n(2048)
		if hi > x.DomainMax() {
			hi = x.DomainMax()
		}
		ivs = append(ivs, interval.New(lo, hi))
		ids = append(ids, i)
	}
	if err := x.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 200; i++ {
				lo := rng.Int63n(1 << 16)
				if _, err := x.CountIntersecting(interval.New(lo, lo+4096)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestScanNeverBlocksWriter pins the copy-on-write generation contract: a
// reader parked in the middle of a streaming scan must not block an
// insert, a delete, or an Optimize, and its scan must keep seeing exactly
// the generation it started on.
func TestScanNeverBlocksWriter(t *testing.T) {
	s, err := NewSharded(Options{Bits: 16, Levels: 8, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := int64(0); i < n; i++ {
		if err := s.Insert(interval.New(i*10, i*10+5), i); err != nil {
			t.Fatal(err)
		}
	}
	q := interval.New(0, s.DomainMax())

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	var seen atomic.Int64
	go func() {
		first := true
		done <- s.IntersectingFunc(q, func(id int64) bool {
			if first {
				first = false
				close(entered) // parked mid-scan until the writer finishes
				<-release
			}
			seen.Add(1)
			return true
		})
	}()

	<-entered
	// The reader is inside its callback with the scan open. Every write
	// path must complete without it.
	if err := s.Insert(interval.New(5000, 5005), 10_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(interval.New(0, 5), 0); err != nil {
		t.Fatal(err)
	}
	s.Optimize()
	if err := s.BulkInsert([]interval.Interval{interval.New(6000, 6001)}, []int64{10_001}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The parked scan ran on its start generation: all n original ids, no
	// concurrent insert, no concurrent delete applied.
	if got := seen.Load(); got != n {
		t.Fatalf("parked scan saw %d ids, want the %d of its start generation", got, n)
	}
	// A fresh scan sees the post-write state: n - 1 + 2.
	cnt, err := s.CountIntersecting(q)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n+1 {
		t.Fatalf("fresh scan count = %d, want %d", cnt, n+1)
	}
}
