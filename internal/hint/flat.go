package hint

// Cache-conscious flattened storage (HINT paper §4.4): instead of one Go
// slice per partition and subdivision — pointers scattered across the
// heap — Optimize lays every level out as one contiguous entry array per
// subdivision class plus an offset table, so the partitions a query
// touches are sequential reads of adjacent memory. A per-level bitmap of
// nonempty partitions lets queries skip dead partitions without loading
// their offsets at all.
//
// The flat storage is paired with the dynamic overlay in hint.go:
// Optimize folds the overlay in and empties it; Insert keeps appending to
// the overlay; Delete compacts the owning flat segment in place (the
// segment keeps its live entries as a prefix, so emission stays
// branch-free). Levels whose entry count would overflow the int32 offset
// arithmetic are left in overlay form — a >2^31-entries-per-level index
// is out of scope for this layout.

import (
	"cmp"
	"math"
	"math/bits"
	"slices"
)

// flatSub is one subdivision class of one level, flattened: the class-c
// entries of partition i live in ents[off[i] : off[i]+cnt[i]], sorted by
// the class key. off is immutable between Optimize calls; cnt shrinks
// when Delete compacts a segment, leaving dead capacity that the next
// Optimize reclaims.
type flatSub struct {
	ents []entry
	off  []int32
	cnt  []int32
	// gen is the COW generation owning ents/cnt (see cow.go); flatRemove
	// clones them once per generation before compacting in place.
	gen uint64
}

// seg returns partition i's live entries (nil if the class is empty at
// this level).
func (fs *flatSub) seg(i int64) []entry {
	if fs.off == nil {
		return nil
	}
	o := fs.off[i]
	return fs.ents[o : o+fs.cnt[i]]
}

// flatLevel is one level's flattened storage.
type flatLevel struct {
	subs [numSubs]flatSub
}

// Flat-segment deletion lives in cow.go (Index.flatRemove): it must
// privatize the level's arrays before compacting a segment in place.

// Optimize compacts the index into its cache-conscious layout: per level
// and subdivision class, one flat sorted entry array plus offset table,
// folding in everything the dynamic overlay accumulated since the last
// call and reclaiming the slack left by deletions. Queries before the
// first Optimize run off the overlay alone; BulkLoad calls Optimize
// automatically. The call is O(entries) and safe to repeat — a no-op
// pass over an already-compact index just re-copies it.
func (x *Index) Optimize() {
	flat := make([]flatLevel, x.m+1)
	var overlayLeft int64
	for l := 0; l <= x.m; l++ {
		if !x.optimizeLevel(l, &flat[l]) {
			// int32 overflow guard tripped: keep this level's storage
			// as-is, but restore the sorted-bucket invariant the query
			// and delete paths rely on — BulkLoad appends raw and counts
			// on Optimize to sort.
			if x.flat != nil {
				flat[l] = x.flat[l]
			}
			for i, p := range x.levels[l] {
				if p == nil {
					continue
				}
				for c := 0; c < numSubs; c++ {
					if !x.noSort && c != cRAft && len(p.subs[c]) > 1 {
						// Sorting writes; privatize the bucket first.
						op := x.ownPart(l, int64(i))
						sortSegment(*x.ownBucket(op, c), c)
						p = x.levels[l][i]
					}
					overlayLeft += int64(len(p.subs[c]))
				}
			}
		}
	}
	x.flat = flat
	x.overlay = overlayLeft
}

// optimizeLevel rebuilds level l into out, merging the old flat storage
// with the overlay, and resets the level's overlay and bitmap. Returns
// false (leaving the level untouched) if the level's entry count
// overflows the int32 offsets.
func (x *Index) optimizeLevel(l int, out *flatLevel) bool {
	parts := x.levels[l]
	var oldFlat *flatLevel
	if x.flat != nil {
		oldFlat = &x.flat[l]
	}
	P := int64(1) << uint(l)

	var total [numSubs]int64
	for c := 0; c < numSubs; c++ {
		if oldFlat != nil && oldFlat.subs[c].cnt != nil {
			for _, n := range oldFlat.subs[c].cnt {
				total[c] += int64(n)
			}
		}
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for c := 0; c < numSubs; c++ {
			total[c] += int64(len(p.subs[c]))
		}
	}
	for c := 0; c < numSubs; c++ {
		if total[c] > math.MaxInt32 {
			return false
		}
	}

	x.ownBits(l)
	words := x.nonempty[l]
	clear(words)
	for c := 0; c < numSubs; c++ {
		if total[c] == 0 {
			continue
		}
		fs := &out.subs[c]
		fs.gen = x.gen
		fs.ents = make([]entry, 0, total[c])
		fs.off = make([]int32, P+1)
		fs.cnt = make([]int32, P)
		var oldSub *flatSub
		if oldFlat != nil {
			oldSub = &oldFlat.subs[c]
		}
		for i := int64(0); i < P; i++ {
			fs.off[i] = int32(len(fs.ents))
			if oldSub != nil {
				fs.ents = append(fs.ents, oldSub.seg(i)...)
			}
			if p := parts[i]; p != nil {
				fs.ents = append(fs.ents, p.subs[c]...)
			}
			n := int32(len(fs.ents)) - fs.off[i]
			fs.cnt[i] = n
			if n > 0 {
				words[i>>6] |= 1 << uint(i&63)
				if !x.noSort && c != cRAft {
					sortSegment(fs.ents[fs.off[i]:], c)
				}
			}
		}
		fs.off[P] = int32(len(fs.ents))
	}
	x.levels[l] = make([]*part, P)
	x.levelsGen[l] = x.gen
	return true
}

// sortSegment orders one partition segment by its class key, with (other
// endpoint, id) tie-breaks for determinism. slices.SortFunc, not
// sort.Slice: this runs for every segment of every compaction, and the
// concrete comparator avoids the reflection-based swapper.
func sortSegment(s []entry, c int) {
	if c == cRIn {
		slices.SortFunc(s, func(a, b entry) int {
			if r := cmp.Compare(a.hi, b.hi); r != 0 {
				return r
			}
			if r := cmp.Compare(a.lo, b.lo); r != 0 {
				return r
			}
			return cmp.Compare(a.id, b.id)
		})
		return
	}
	slices.SortFunc(s, func(a, b entry) int {
		if r := cmp.Compare(a.lo, b.lo); r != 0 {
			return r
		}
		if r := cmp.Compare(a.hi, b.hi); r != 0 {
			return r
		}
		return cmp.Compare(a.id, b.id)
	})
}

// installFlat installs externally reconstructed flat storage (the
// snapshot load path, see snapshot.go) wholesale: the index must be
// freshly constructed (empty overlay, zero counters). The per-level
// bitmaps are recomputed from the count tables so queries can skip empty
// partitions exactly as after an Optimize.
func (x *Index) installFlat(flat []flatLevel, count, entries, replicas int64) {
	x.flat = flat
	x.count, x.entries, x.replicas, x.overlay = count, entries, replicas, 0
	for l := 0; l <= x.m; l++ {
		words := x.nonempty[l]
		for c := 0; c < numSubs; c++ {
			cnt := flat[l].subs[c].cnt
			for i := range cnt {
				if cnt[i] > 0 {
					words[i>>6] |= 1 << uint(i&63)
				}
			}
		}
	}
}

// --- nonempty-partition bitmaps -----------------------------------------

func (x *Index) setBit(l int, idx int64) {
	x.nonempty[l][idx>>6] |= 1 << uint(idx&63)
}

func (x *Index) clearBit(l int, idx int64) {
	x.nonempty[l][idx>>6] &^= 1 << uint(idx&63)
}

// hasAny reports whether partition idx of level l holds any entry.
func (x *Index) hasAny(l int, idx int64) bool {
	return x.nonempty[l][idx>>6]&(1<<uint(idx&63)) != 0
}

// forNonempty calls fn for every nonempty partition of level l with index
// in [from, to], skipping empty partitions a whole 64-partition word at a
// time. Returns false if fn stopped the iteration.
func (x *Index) forNonempty(l int, from, to int64, fn func(idx int64) bool) bool {
	if from > to {
		return true
	}
	words := x.nonempty[l]
	first, last := from>>6, to>>6
	for wi := first; wi <= last; wi++ {
		w := words[wi]
		if wi == first {
			w &= ^uint64(0) << uint(from&63)
		}
		if wi == last {
			w &= ^uint64(0) >> uint(63-to&63)
		}
		base := wi << 6
		for w != 0 {
			if !fn(base + int64(bits.TrailingZeros64(w))) {
				return false
			}
			w &= w - 1
		}
	}
	return true
}
