package hint

// Snapshot (de)serialization of the optimized flat layout — the on-disk
// form of HINT's §4.4 cache-conscious storage. A snapshot captures every
// shard's flat arrays (per-level, per-class entry arrays with their
// partition count tables), the geometry (bits, m, shard count, domain
// offset), and a stamp of the base table it was built from (row count +
// content checksum), so attach can decide between loading it wholesale,
// replaying a heap tail on top, or discarding it.
//
// The format is deliberately dumb: fixed-width little-endian fields, a
// sparse (partition, count) table per class, raw (lo, hi, id) triples,
// and a trailing CRC32 over everything. Decoding reconstructs the flat
// arrays directly — off tables are prefix sums of the counts, the
// nonempty bitmaps are recomputed from them — so a load is one sequential
// parse with no per-entry classification, sorting, or partition routing.
// Any framing violation (magic, version, length, CRC, inconsistent
// counts) returns an error; the caller falls back to a full rebuild.
//
//	header:
//	  magic   u32  "HSNP"
//	  version u16  (1)
//	  flags   u16  (bit 0: narrow entries; others reserved)
//	  bits    u32
//	  levels  u32  (m)
//	  shards  u32
//	  off     i64  (domain offset of the owning indextype)
//	  rows    i64  (base-table row count at persist time)
//	  chk     u64  (base-table content checksum at persist time)
//	per shard:
//	  count, entries, replicas  i64
//	  per level l in [0, m], per class c in [oIn, oAft, rIn, rAft]:
//	    total u32            entries of this level+class
//	    if total > 0:
//	      nparts u32         nonempty partitions
//	      nparts × (idx u32, cnt u32)   ascending by idx
//	      total × (lo, hi, id)   in partition order; i64 each, or u32
//	                             each when the narrow flag is set
//	trailer:
//	  crc32 u32  (IEEE, over all preceding bytes)
//
// The narrow flag fires when every stored coordinate and row id across
// all shards fits in an unsigned 32-bit value — the common case, since
// keys are non-negative domain coordinates and ids are heap rids. It
// halves the entry payload (12 bytes instead of 24), which matters
// because attach cost is dominated by reading and parsing entries.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	snapMagic      = uint32(0x504e5348) // "HSNP"
	snapVersion    = uint16(1)
	snapFlagNarrow = uint16(1) // entries stored as u32 triples
)

// snapshotInfo is the decoded header: geometry plus the base-table stamp.
type snapshotInfo struct {
	bits, m, shards int
	off             int64
	tableRows       int64
	tableChk        uint64
}

// encodeSnapshot serializes s (offset off, built over a base table with
// the given row count and content checksum). It returns ok == false when
// any shard holds overlay entries or lacks flat storage — callers should
// Optimize first; a shard left in overlay form by the int32-overflow
// guard is not representable and simply isn't persisted.
func encodeSnapshot(s *Sharded, off int64, tableRows int64, tableChk uint64) (data []byte, ok bool) {
	gens := s.freeze()
	for _, x := range gens {
		if x.flat == nil || x.overlay != 0 || x.noSort {
			return nil, false
		}
	}
	narrow := narrowFits(gens)
	flags := uint16(0)
	if narrow {
		flags |= snapFlagNarrow
	}
	b := make([]byte, 0, 1<<20)
	b = binary.LittleEndian.AppendUint32(b, snapMagic)
	b = binary.LittleEndian.AppendUint16(b, snapVersion)
	b = binary.LittleEndian.AppendUint16(b, flags)
	x0 := gens[0]
	b = binary.LittleEndian.AppendUint32(b, uint32(x0.bits))
	b = binary.LittleEndian.AppendUint32(b, uint32(x0.m))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(gens)))
	b = binary.LittleEndian.AppendUint64(b, uint64(off))
	b = binary.LittleEndian.AppendUint64(b, uint64(tableRows))
	b = binary.LittleEndian.AppendUint64(b, tableChk)
	for _, x := range gens {
		b = binary.LittleEndian.AppendUint64(b, uint64(x.count))
		b = binary.LittleEndian.AppendUint64(b, uint64(x.entries))
		b = binary.LittleEndian.AppendUint64(b, uint64(x.replicas))
		for l := 0; l <= x.m; l++ {
			for c := 0; c < numSubs; c++ {
				b = appendFlatSub(b, &x.flat[l].subs[c], narrow)
			}
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, true
}

// narrowFits reports whether every live entry across all shards can be
// stored as three unsigned 32-bit values.
func narrowFits(gens []*Index) bool {
	const maxU32 = int64(1)<<32 - 1
	for _, x := range gens {
		for l := 0; l <= x.m; l++ {
			for c := 0; c < numSubs; c++ {
				fs := &x.flat[l].subs[c]
				for i := range fs.cnt {
					for _, e := range fs.seg(int64(i)) {
						if e.lo < 0 || e.lo > maxU32 ||
							e.hi < 0 || e.hi > maxU32 ||
							e.id < 0 || e.id > maxU32 {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// appendFlatSub serializes one level+class: the sparse count table
// followed by the live entries in partition order. Deletions leave dead
// capacity inside ents, so segments are emitted via seg (live prefixes),
// not the raw array.
func appendFlatSub(b []byte, fs *flatSub, narrow bool) []byte {
	var total, nparts uint32
	for i := range fs.cnt {
		if fs.cnt[i] > 0 {
			total += uint32(fs.cnt[i])
			nparts++
		}
	}
	b = binary.LittleEndian.AppendUint32(b, total)
	if total == 0 {
		return b
	}
	b = binary.LittleEndian.AppendUint32(b, nparts)
	for i := range fs.cnt {
		if fs.cnt[i] > 0 {
			b = binary.LittleEndian.AppendUint32(b, uint32(i))
			b = binary.LittleEndian.AppendUint32(b, uint32(fs.cnt[i]))
		}
	}
	if narrow {
		for i := range fs.cnt {
			for _, e := range fs.seg(int64(i)) {
				b = binary.LittleEndian.AppendUint32(b, uint32(e.lo))
				b = binary.LittleEndian.AppendUint32(b, uint32(e.hi))
				b = binary.LittleEndian.AppendUint32(b, uint32(e.id))
			}
		}
	} else {
		for i := range fs.cnt {
			for _, e := range fs.seg(int64(i)) {
				b = binary.LittleEndian.AppendUint64(b, uint64(e.lo))
				b = binary.LittleEndian.AppendUint64(b, uint64(e.hi))
				b = binary.LittleEndian.AppendUint64(b, uint64(e.id))
			}
		}
	}
	return b
}

// snapReader is a bounds-checked little-endian cursor over the payload.
type snapReader struct {
	b   []byte
	pos int
	err error
}

func (r *snapReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.b) {
		r.err = fmt.Errorf("hint: snapshot truncated at byte %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *snapReader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.pos+2 > len(r.b) {
		r.err = fmt.Errorf("hint: snapshot truncated at byte %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v
}

func (r *snapReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.b) {
		r.err = fmt.Errorf("hint: snapshot truncated at byte %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *snapReader) i64() int64 { return int64(r.u64()) }

// decodeSnapshot validates data and reconstructs the sharded index it
// describes. Every structural defect — short payload, bad magic, unknown
// version, CRC mismatch, inconsistent counts — is an error; the caller
// treats any error as "no usable snapshot" and rebuilds.
func decodeSnapshot(data []byte) (*Sharded, snapshotInfo, error) {
	var info snapshotInfo
	if len(data) < 4 {
		return nil, info, fmt.Errorf("hint: snapshot too short (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != trailer {
		return nil, info, fmt.Errorf("hint: snapshot CRC mismatch")
	}
	r := &snapReader{b: payload}
	if m := r.u32(); m != snapMagic {
		return nil, info, fmt.Errorf("hint: bad snapshot magic %#x", m)
	}
	if v := r.u16(); v != snapVersion {
		return nil, info, fmt.Errorf("hint: unsupported snapshot version %d", v)
	}
	flags := r.u16()
	if flags&^snapFlagNarrow != 0 {
		return nil, info, fmt.Errorf("hint: unsupported snapshot flags %#x", flags)
	}
	narrow := flags&snapFlagNarrow != 0
	info.bits = int(r.u32())
	info.m = int(r.u32())
	info.shards = int(r.u32())
	info.off = r.i64()
	info.tableRows = r.i64()
	info.tableChk = r.u64()
	if r.err != nil {
		return nil, info, r.err
	}
	if info.bits < 1 || info.bits > maxBits || info.m < 1 || info.m > info.bits ||
		info.m > maxLevels || info.shards < 1 || info.shards > 1024 {
		return nil, info, fmt.Errorf("hint: snapshot geometry out of range (bits=%d m=%d shards=%d)",
			info.bits, info.m, info.shards)
	}
	var tasks []entTask
	sds := make([]shardDecode, info.shards)
	for si := range sds {
		sd, err := decodeShard(r, info.bits, info.m, narrow, &tasks)
		if err != nil {
			return nil, info, err
		}
		sds[si] = sd
	}
	if r.err != nil {
		return nil, info, r.err
	}
	if r.pos != len(payload) {
		return nil, info, fmt.Errorf("hint: snapshot has %d trailing bytes", len(payload)-r.pos)
	}
	// Every byte of framing is validated by now, so the entry arrays —
	// the bulk of the payload — convert outside the cursor walk: each
	// task owns one class's array, independent of all others. All arrays
	// carve out of one arena (one large allocation is served by fresh
	// zeroed pages, where many medium ones would each pay a clear), with
	// capacities clamped so no later append can cross into a neighbor.
	var grand int64
	for _, t := range tasks {
		grand += t.total
	}
	arena := make([]entry, grand)
	for i := range tasks {
		n := tasks[i].total
		tasks[i].dst = arena[:n:n]
		arena = arena[n:]
	}
	runTasks(tasks, narrow)
	gens := make([]*Index, len(sds))
	for i, sd := range sds {
		sd.x.installFlat(sd.flat, sd.count, sd.entries, sd.replicas)
		gens[i] = sd.x
	}
	return newShardedFromGens(gens), info, nil
}

// entTask defers one class's entry-array conversion: src holds the raw
// triples, validated and sliced out of the payload by the framing walk,
// and dst is the class's pre-carved arena region.
type entTask struct {
	fs    *flatSub
	src   []byte
	dst   []entry
	total int64
}

func (t entTask) run(narrow bool) {
	ents, s := t.dst, t.src
	if narrow {
		for i := range ents {
			ents[i] = entry{
				lo: int64(binary.LittleEndian.Uint32(s)),
				hi: int64(binary.LittleEndian.Uint32(s[4:])),
				id: int64(binary.LittleEndian.Uint32(s[8:])),
			}
			s = s[12:]
		}
	} else {
		for i := range ents {
			ents[i] = entry{
				lo: int64(binary.LittleEndian.Uint64(s)),
				hi: int64(binary.LittleEndian.Uint64(s[8:])),
				id: int64(binary.LittleEndian.Uint64(s[16:])),
			}
			s = s[24:]
		}
	}
	t.fs.ents = ents
}

// runTasks converts the deferred entry arrays, fanning out over the CPUs
// for snapshots big enough to care.
func runTasks(tasks []entTask, narrow bool) {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		for _, t := range tasks {
			t.run(narrow)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i].run(narrow)
			}
		}()
	}
	wg.Wait()
}

// shardDecode is one walked-but-not-yet-installed shard: its entry
// arrays fill in parallel after the whole payload validates, and only
// then does installFlat publish the flat form.
type shardDecode struct {
	x                        *Index
	flat                     []flatLevel
	count, entries, replicas int64
}

// decodeShard walks one shard's serialized form, validating all framing
// and deferring the entry-array conversion into tasks.
func decodeShard(r *snapReader, bits, m int, narrow bool, tasks *[]entTask) (shardDecode, error) {
	var sd shardDecode
	x, err := New(Options{Bits: bits, Levels: m})
	if err != nil {
		return sd, err
	}
	count, entries, replicas := r.i64(), r.i64(), r.i64()
	flat := make([]flatLevel, m+1)
	var stored int64
	for l := 0; l <= m; l++ {
		P := int64(1) << uint(l)
		for c := 0; c < numSubs; c++ {
			n, err := decodeFlatSub(r, &flat[l].subs[c], P, narrow, tasks)
			if err != nil {
				return sd, err
			}
			stored += n
		}
	}
	if r.err != nil {
		return sd, r.err
	}
	if stored != entries || count < 0 || replicas < 0 || replicas > entries {
		return sd, fmt.Errorf("hint: snapshot shard counters inconsistent (stored=%d entries=%d count=%d replicas=%d)",
			stored, entries, count, replicas)
	}
	return shardDecode{x: x, flat: flat, count: count, entries: entries, replicas: replicas}, nil
}

// decodeFlatSub reconstructs one level+class, rebuilding the offset table
// as the prefix sums of the sparse counts and registering the entry array
// for deferred conversion. Returns the entry count.
func decodeFlatSub(r *snapReader, fs *flatSub, P int64, narrow bool, tasks *[]entTask) (int64, error) {
	total := int64(r.u32())
	if total == 0 || r.err != nil {
		return 0, r.err
	}
	nparts := int64(r.u32())
	if r.err != nil {
		return 0, r.err
	}
	if nparts < 1 || nparts > P || nparts > total {
		return 0, fmt.Errorf("hint: snapshot class has %d nonempty partitions of %d", nparts, P)
	}
	fs.off = make([]int32, P+1)
	fs.cnt = make([]int32, P)
	prev := int64(-1)
	var running int64
	type pc struct{ idx, n int64 }
	pcs := make([]pc, nparts)
	for j := range pcs {
		idx, n := int64(r.u32()), int64(r.u32())
		if r.err != nil {
			return 0, r.err
		}
		if idx <= prev || idx >= P || n < 1 {
			return 0, fmt.Errorf("hint: snapshot partition table corrupt (idx=%d cnt=%d)", idx, n)
		}
		prev = idx
		running += n
		pcs[j] = pc{idx, n}
	}
	if running != total {
		return 0, fmt.Errorf("hint: snapshot partition counts sum to %d, want %d", running, total)
	}
	pi, off := int64(0), int64(0)
	for _, p := range pcs {
		for ; pi <= p.idx; pi++ {
			fs.off[pi] = int32(off)
		}
		fs.cnt[p.idx] = int32(p.n)
		off += p.n
	}
	for ; pi <= P; pi++ {
		fs.off[pi] = int32(off)
	}
	// Entry arrays dominate the payload, so they bypass the cursor: one
	// bounds check admits the whole array, and the conversion itself is
	// deferred so all arrays fill in parallel once framing validates.
	width := 24
	if narrow {
		width = 12
	}
	need := int(total) * width
	if r.pos+need > len(r.b) {
		r.err = fmt.Errorf("hint: snapshot truncated in entry array")
		return 0, r.err
	}
	*tasks = append(*tasks, entTask{fs: fs, src: r.b[r.pos : r.pos+need], total: total})
	r.pos += need
	return total, nil
}

// newShardedFromGens wraps decoded per-shard indexes as a Sharded. The
// shard order must match the encoder's (ids route by position).
func newShardedFromGens(gens []*Index) *Sharded {
	s := &Sharded{shards: make([]shard, len(gens))}
	for i, g := range gens {
		s.shards[i].cur.Store(g)
	}
	return s
}
