package hint

// Sharded packages N HINT indexes behind one interval-index API, the
// concurrency story for the millions-of-users regime: every interval is
// owned by exactly one shard (chosen by a mixed hash of its id), and each
// shard publishes its current generation through an atomic pointer.
// Readers load the pointer and scan an immutable generation — no lock, no
// reader registration — so an open scan never blocks a writer and a
// writer never stalls any reader, not even on its own shard. Writers
// serialize per shard behind a plain mutex, derive the next generation by
// copy-on-write (see cow.go) and publish it atomically when done. All
// methods are safe for concurrent use.
//
// Intersection results are the disjoint union of the shards' results, so
// the exactly-once reporting guarantee of the single-shard algorithm is
// preserved by construction.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ritree/internal/interval"
)

// Sharded is a concurrency-safe HINT index of one or more shards.
type Sharded struct {
	shards []shard
	// met counts logical queries against the sharded API; the per-shard
	// scan counters live on the shards themselves. See metrics.go.
	met *indexMetrics
}

type shard struct {
	// wmu serializes writers; readers never take it.
	wmu sync.Mutex
	// cur is the published generation. Once stored it is immutable:
	// writers mutate only private clones.
	cur atomic.Pointer[Index]
}

// load returns the shard's current immutable generation.
func (sh *shard) load() *Index { return sh.cur.Load() }

// update runs f on a private clone of the current generation and
// publishes the clone. Mutations stay invisible to concurrent readers
// until the publish; readers that already hold the previous generation
// keep scanning it untouched.
func (sh *shard) update(f func(ix *Index) error) error {
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	c := sh.cur.Load().cloneForWrite()
	err := f(c)
	sh.cur.Store(c)
	return err
}

// NewSharded returns an empty concurrent index with opts.Shards shards
// (default 1). Every shard gets the same geometry.
func NewSharded(opts Options) (*Sharded, error) {
	n := opts.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 || n > 1024 {
		return nil, fmt.Errorf("hint: Shards = %d out of range [1, 1024]", n)
	}
	opts.Shards = 0 // per-shard indexes are bare
	s := &Sharded{shards: make([]shard, n)}
	for i := range s.shards {
		ix, err := New(opts)
		if err != nil {
			return nil, err
		}
		s.shards[i].cur.Store(ix)
	}
	return s, nil
}

// shardOf routes an id to its owning shard's position. Ids are commonly
// sequential row ids, so a splitmix64-style mix spreads them evenly.
func (s *Sharded) shardOf(id int64) int {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(s.shards)))
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Insert registers iv under id, publishing a new generation of the owning
// shard. Concurrent readers are never blocked.
func (s *Sharded) Insert(iv interval.Interval, id int64) error {
	sh := &s.shards[s.shardOf(id)]
	return sh.update(func(ix *Index) error { return ix.Insert(iv, id) })
}

// Delete removes one registration of (iv, id), reporting whether it
// existed.
func (s *Sharded) Delete(iv interval.Interval, id int64) (bool, error) {
	sh := &s.shards[s.shardOf(id)]
	var existed bool
	err := sh.update(func(ix *Index) error {
		var err error
		existed, err = ix.Delete(iv, id)
		return err
	})
	return existed, err
}

// batchByShard splits a dataset by owning shard.
func (s *Sharded) batchByShard(ivs []interval.Interval, ids []int64) ([][]interval.Interval, [][]int64) {
	bIvs := make([][]interval.Interval, len(s.shards))
	bIDs := make([][]int64, len(s.shards))
	if len(s.shards) == 1 {
		bIvs[0], bIDs[0] = ivs, ids
		return bIvs, bIDs
	}
	for i := range ivs {
		w := s.shardOf(ids[i])
		bIvs[w] = append(bIvs[w], ivs[i])
		bIDs[w] = append(bIDs[w], ids[i])
	}
	return bIvs, bIDs
}

// BulkInsert registers the whole batch, cloning each touched shard once —
// the write path for batched DML (the engine's InsertMany), where a
// clone per row would tax the copy-on-write machinery. Each shard
// publishes one new generation holding all of its batch; readers observe
// a shard's batch atomically.
func (s *Sharded) BulkInsert(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("hint: BulkInsert got %d intervals, %d ids", len(ivs), len(ids))
	}
	bIvs, bIDs := s.batchByShard(ivs, ids)
	for i := range s.shards {
		if len(bIDs[i]) == 0 {
			continue
		}
		err := s.shards[i].update(func(ix *Index) error {
			for j := range bIDs[i] {
				if err := ix.Insert(bIvs[i][j], bIDs[i][j]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// BulkLoad splits the dataset by owning shard and bulk loads each shard
// in turn, leaving every shard in its optimized flat layout.
func (s *Sharded) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("hint: BulkLoad got %d intervals, %d ids", len(ivs), len(ids))
	}
	bIvs, bIDs := s.batchByShard(ivs, ids)
	for i := range s.shards {
		err := s.shards[i].update(func(ix *Index) error {
			return ix.BulkLoad(bIvs[i], bIDs[i])
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Optimize compacts every shard into its cache-conscious flat layout.
func (s *Sharded) Optimize() {
	for i := range s.shards {
		_ = s.shards[i].update(func(ix *Index) error { ix.Optimize(); return nil })
	}
}

// Clear drops every stored interval, keeping the configuration.
func (s *Sharded) Clear() {
	for i := range s.shards {
		_ = s.shards[i].update(func(ix *Index) error { ix.Clear(); return nil })
	}
}

// freeze captures every shard's currently published generation. The
// returned indexes are immutable (writers only ever publish fresh
// clones), so scanning them later answers exactly as the index stood at
// the freeze — the basis of the snapshot-bound scans SnapshotScan hands
// to the SQL layer.
func (s *Sharded) freeze() []*Index {
	gens := make([]*Index, len(s.shards))
	for i := range s.shards {
		gens[i] = s.shards[i].load()
	}
	return gens
}

// IntersectingFunc streams the ids of intervals intersecting q in no
// particular order; return false from fn to stop early. Each shard is
// scanned on its generation current at the scan's start, so the scan runs
// lock-free, concurrently with writers on every shard.
func (s *Sharded) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("hint: invalid query %v", q)
	}
	s.met.query()
	stopped := false
	wrapped := func(id int64) bool {
		if !fn(id) {
			stopped = true
			return false
		}
		return true
	}
	for i := range s.shards {
		err := s.shards[i].load().IntersectingFunc(q, wrapped)
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// queryShardsParallel runs query on every shard of s in parallel — one
// goroutine per shard, each over that shard's current immutable
// generation — and returns the per-shard results in shard order. With a
// single shard it degenerates to a plain sequential call. Queries visit
// every shard anyway, so the fan-out turns the shard count from a query
// tax into a latency divider on multi-core hardware.
func queryShardsParallel[T any](s *Sharded, query func(ix *Index) (T, error)) ([]T, error) {
	s.met.query()
	results := make([]T, len(s.shards))
	if len(s.shards) == 1 {
		var err error
		results[0], err = query(s.shards[0].load())
		if err != nil {
			return nil, err
		}
		return results, nil
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = query(s.shards[i].load())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// collectParallel fans an id-collecting query over the shards in
// parallel and k-way merges the per-shard sorted slices into one
// ascending id list, preserving the ascending-id contract of the
// single-shard API.
func (s *Sharded) collectParallel(query func(ix *Index) ([]int64, error)) ([]int64, error) {
	results, err := queryShardsParallel(s, query)
	if err != nil {
		return nil, err
	}
	if len(results) == 1 {
		return results[0], nil
	}
	return mergeAscending(results), nil
}

// mergeAscending merges sorted id slices into one ascending slice. The
// shard count is small, so a linear min-scan per output element beats a
// heap on real workloads; empty inputs are dropped up front.
func mergeAscending(lists [][]int64) []int64 {
	live := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
			total += len(l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]int64, 0, total)
	for len(live) > 0 {
		min := 0
		for i := 1; i < len(live); i++ {
			if live[i][0] < live[min][0] {
				min = i
			}
		}
		out = append(out, live[min][0])
		if live[min] = live[min][1:]; len(live[min]) == 0 {
			live[min] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return out
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
// Shards are queried in parallel and their sorted results merged, so the
// output order matches the single-shard index exactly.
func (s *Sharded) Intersecting(q interval.Interval) ([]int64, error) {
	return s.collectParallel(func(ix *Index) ([]int64, error) { return ix.Intersecting(q) })
}

// CountIntersecting returns the number of intervals intersecting q,
// counting the shards in parallel.
func (s *Sharded) CountIntersecting(q interval.Interval) (int64, error) {
	counts, err := queryShardsParallel(s, func(ix *Index) (int64, error) {
		return ix.CountIntersecting(q)
	})
	if err != nil {
		return 0, err
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (s *Sharded) Stab(p int64) ([]int64, error) {
	return s.Intersecting(interval.Point(p))
}

// QueryRelationFunc streams the ids of intervals i with "i r q" in no
// particular order; return false from fn to stop early. Shards are
// scanned sequentially, each on its current immutable generation (a
// streaming callback cannot be fanned out without racing the caller).
func (s *Sharded) QueryRelationFunc(r interval.Relation, q interval.Interval, fn func(id int64) bool) error {
	s.met.query()
	stopped := false
	wrapped := func(id int64) bool {
		if !fn(id) {
			stopped = true
			return false
		}
		return true
	}
	for i := range s.shards {
		err := s.shards[i].load().QueryRelationFunc(r, q, wrapped)
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// QueryRelation returns the ids of all intervals i with "i r q", sorted
// ascending, querying the shards in parallel.
func (s *Sharded) QueryRelation(r interval.Relation, q interval.Interval) ([]int64, error) {
	return s.collectParallel(func(ix *Index) ([]int64, error) { return ix.QueryRelation(r, q) })
}

// Count returns the number of live intervals across all shards.
func (s *Sharded) Count() int64 { return s.sum(func(ix *Index) int64 { return ix.Count() }) }

// Entries returns the number of stored copies across all shards.
func (s *Sharded) Entries() int64 { return s.sum(func(ix *Index) int64 { return ix.Entries() }) }

// Replicas returns how many stored copies are replicas.
func (s *Sharded) Replicas() int64 { return s.sum(func(ix *Index) int64 { return ix.Replicas() }) }

// OverlayEntries returns how many stored copies await the next Optimize.
func (s *Sharded) OverlayEntries() int64 {
	return s.sum(func(ix *Index) int64 { return ix.OverlayEntries() })
}

// FlatEntries returns how many stored copies live in the flat
// cache-conscious storage across all shards.
func (s *Sharded) FlatEntries() int64 {
	return s.sum(func(ix *Index) int64 { return ix.FlatEntries() })
}

func (s *Sharded) sum(f func(ix *Index) int64) int64 {
	var total int64
	for i := range s.shards {
		total += f(s.shards[i].load())
	}
	return total
}

// Levels returns m, the depth of the bisection hierarchy.
func (s *Sharded) Levels() int { return s.shards[0].load().Levels() }

// Bits returns the domain width in bits.
func (s *Sharded) Bits() int { return s.shards[0].load().Bits() }

// ComparisonFree reports whether the shards run the comparison-free
// variant (Levels == Bits).
func (s *Sharded) ComparisonFree() bool { return s.shards[0].load().ComparisonFree() }

// DomainMax returns the largest admissible interval start, 2^Bits-1.
func (s *Sharded) DomainMax() int64 { return s.shards[0].load().DomainMax() }

// Optimized reports whether every shard has its flat storage built.
func (s *Sharded) Optimized() bool {
	for i := range s.shards {
		if !s.shards[i].load().Optimized() {
			return false
		}
	}
	return true
}

// Name identifies the index and its configuration.
func (s *Sharded) Name() string {
	if len(s.shards) == 1 {
		return s.shards[0].load().Name()
	}
	return fmt.Sprintf("%s x%d", s.shards[0].load().Name(), len(s.shards))
}

// String summarizes the index.
func (s *Sharded) String() string {
	return fmt.Sprintf("hint.Sharded{%s, n=%d, entries=%d, replicas=%d}",
		s.Name(), s.Count(), s.Entries(), s.Replicas())
}
