package hint

// Sharded packages N independently locked HINT indexes behind one
// interval-index API, the concurrency story for the millions-of-users
// regime: every interval is owned by exactly one shard (chosen by a
// mixed hash of its id), mutations take that shard's write lock only,
// and queries fan over the shards under read locks — so readers never
// block readers, and a writer stalls only the readers of its own shard
// while the other shards keep serving. All methods are safe for
// concurrent use.
//
// Intersection results are the disjoint union of the shards' results, so
// the exactly-once reporting guarantee of the single-shard algorithm is
// preserved by construction.

import (
	"fmt"
	"sync"

	"ritree/internal/interval"
)

// Sharded is a concurrency-safe HINT index of one or more shards.
type Sharded struct {
	shards []shard
	// met counts logical queries against the sharded API; the per-shard
	// scan counters live on the shards themselves. See metrics.go.
	met *indexMetrics
}

type shard struct {
	mu sync.RWMutex
	ix *Index
}

// NewSharded returns an empty concurrent index with opts.Shards shards
// (default 1). Every shard gets the same geometry.
func NewSharded(opts Options) (*Sharded, error) {
	n := opts.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 || n > 1024 {
		return nil, fmt.Errorf("hint: Shards = %d out of range [1, 1024]", n)
	}
	opts.Shards = 0 // per-shard indexes are bare
	s := &Sharded{shards: make([]shard, n)}
	for i := range s.shards {
		ix, err := New(opts)
		if err != nil {
			return nil, err
		}
		s.shards[i].ix = ix
	}
	return s, nil
}

// shardOf routes an id to its owning shard's position. Ids are commonly
// sequential row ids, so a splitmix64-style mix spreads them evenly.
func (s *Sharded) shardOf(id int64) int {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(s.shards)))
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Insert registers iv under id, locking only the owning shard.
func (s *Sharded) Insert(iv interval.Interval, id int64) error {
	sh := &s.shards[s.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ix.Insert(iv, id)
}

// Delete removes one registration of (iv, id), reporting whether it
// existed.
func (s *Sharded) Delete(iv interval.Interval, id int64) (bool, error) {
	sh := &s.shards[s.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ix.Delete(iv, id)
}

// BulkLoad splits the dataset by owning shard and bulk loads each shard
// in turn, leaving every shard in its optimized flat layout.
func (s *Sharded) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("hint: BulkLoad got %d intervals, %d ids", len(ivs), len(ids))
	}
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.ix.BulkLoad(ivs, ids)
	}
	type batch struct {
		ivs []interval.Interval
		ids []int64
	}
	batches := make([]batch, len(s.shards))
	for i := range ivs {
		b := &batches[s.shardOf(ids[i])]
		b.ivs = append(b.ivs, ivs[i])
		b.ids = append(b.ids, ids[i])
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.ix.BulkLoad(batches[i].ivs, batches[i].ids)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Optimize compacts every shard into its cache-conscious flat layout.
func (s *Sharded) Optimize() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.ix.Optimize()
		sh.mu.Unlock()
	}
}

// Clear drops every stored interval, keeping the configuration.
func (s *Sharded) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.ix.Clear()
		sh.mu.Unlock()
	}
}

// IntersectingFunc streams the ids of intervals intersecting q in no
// particular order; return false from fn to stop early. Each shard is
// consulted under its read lock, so the scan runs concurrently with
// other readers and with writers on other shards. fn must not call the
// index's mutating methods (the locks are not reentrant).
func (s *Sharded) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("hint: invalid query %v", q)
	}
	s.met.query()
	stopped := false
	wrapped := func(id int64) bool {
		if !fn(id) {
			stopped = true
			return false
		}
		return true
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		err := sh.ix.IntersectingFunc(q, wrapped)
		sh.mu.RUnlock()
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// queryShardsParallel runs query on every shard of s in parallel — one
// goroutine per shard, under that shard's read lock — and returns the
// per-shard results in shard order. With a single shard it degenerates
// to a plain sequential call. Queries visit every shard anyway, so the
// fan-out turns the shard count from a query tax into a latency divider
// on multi-core hardware.
func queryShardsParallel[T any](s *Sharded, query func(ix *Index) (T, error)) ([]T, error) {
	s.met.query()
	results := make([]T, len(s.shards))
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		var err error
		results[0], err = query(sh.ix)
		if err != nil {
			return nil, err
		}
		return results, nil
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &s.shards[i]
			sh.mu.RLock()
			results[i], errs[i] = query(sh.ix)
			sh.mu.RUnlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// collectParallel fans an id-collecting query over the shards in
// parallel and k-way merges the per-shard sorted slices into one
// ascending id list, preserving the ascending-id contract of the
// single-shard API.
func (s *Sharded) collectParallel(query func(ix *Index) ([]int64, error)) ([]int64, error) {
	results, err := queryShardsParallel(s, query)
	if err != nil {
		return nil, err
	}
	if len(results) == 1 {
		return results[0], nil
	}
	return mergeAscending(results), nil
}

// mergeAscending merges sorted id slices into one ascending slice. The
// shard count is small, so a linear min-scan per output element beats a
// heap on real workloads; empty inputs are dropped up front.
func mergeAscending(lists [][]int64) []int64 {
	live := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
			total += len(l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]int64, 0, total)
	for len(live) > 0 {
		min := 0
		for i := 1; i < len(live); i++ {
			if live[i][0] < live[min][0] {
				min = i
			}
		}
		out = append(out, live[min][0])
		if live[min] = live[min][1:]; len(live[min]) == 0 {
			live[min] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return out
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
// Shards are queried in parallel and their sorted results merged, so the
// output order matches the single-shard index exactly.
func (s *Sharded) Intersecting(q interval.Interval) ([]int64, error) {
	return s.collectParallel(func(ix *Index) ([]int64, error) { return ix.Intersecting(q) })
}

// CountIntersecting returns the number of intervals intersecting q,
// counting the shards in parallel.
func (s *Sharded) CountIntersecting(q interval.Interval) (int64, error) {
	counts, err := queryShardsParallel(s, func(ix *Index) (int64, error) {
		return ix.CountIntersecting(q)
	})
	if err != nil {
		return 0, err
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (s *Sharded) Stab(p int64) ([]int64, error) {
	return s.Intersecting(interval.Point(p))
}

// QueryRelationFunc streams the ids of intervals i with "i r q" in no
// particular order; return false from fn to stop early. Shards are
// consulted sequentially under their read locks (a streaming callback
// cannot be fanned out without racing the caller).
func (s *Sharded) QueryRelationFunc(r interval.Relation, q interval.Interval, fn func(id int64) bool) error {
	s.met.query()
	stopped := false
	wrapped := func(id int64) bool {
		if !fn(id) {
			stopped = true
			return false
		}
		return true
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		err := sh.ix.QueryRelationFunc(r, q, wrapped)
		sh.mu.RUnlock()
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// QueryRelation returns the ids of all intervals i with "i r q", sorted
// ascending, querying the shards in parallel.
func (s *Sharded) QueryRelation(r interval.Relation, q interval.Interval) ([]int64, error) {
	return s.collectParallel(func(ix *Index) ([]int64, error) { return ix.QueryRelation(r, q) })
}

// Count returns the number of live intervals across all shards.
func (s *Sharded) Count() int64 { return s.sum(func(ix *Index) int64 { return ix.Count() }) }

// Entries returns the number of stored copies across all shards.
func (s *Sharded) Entries() int64 { return s.sum(func(ix *Index) int64 { return ix.Entries() }) }

// Replicas returns how many stored copies are replicas.
func (s *Sharded) Replicas() int64 { return s.sum(func(ix *Index) int64 { return ix.Replicas() }) }

// OverlayEntries returns how many stored copies await the next Optimize.
func (s *Sharded) OverlayEntries() int64 {
	return s.sum(func(ix *Index) int64 { return ix.OverlayEntries() })
}

// FlatEntries returns how many stored copies live in the flat
// cache-conscious storage across all shards.
func (s *Sharded) FlatEntries() int64 {
	return s.sum(func(ix *Index) int64 { return ix.FlatEntries() })
}

func (s *Sharded) sum(f func(ix *Index) int64) int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += f(sh.ix)
		sh.mu.RUnlock()
	}
	return total
}

// Levels returns m, the depth of the bisection hierarchy.
func (s *Sharded) Levels() int { return s.shards[0].ix.Levels() }

// Bits returns the domain width in bits.
func (s *Sharded) Bits() int { return s.shards[0].ix.Bits() }

// ComparisonFree reports whether the shards run the comparison-free
// variant (Levels == Bits).
func (s *Sharded) ComparisonFree() bool { return s.shards[0].ix.ComparisonFree() }

// DomainMax returns the largest admissible interval start, 2^Bits-1.
func (s *Sharded) DomainMax() int64 { return s.shards[0].ix.DomainMax() }

// Optimized reports whether every shard has its flat storage built.
func (s *Sharded) Optimized() bool {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ok := sh.ix.Optimized()
		sh.mu.RUnlock()
		if !ok {
			return false
		}
	}
	return true
}

// Name identifies the index and its configuration.
func (s *Sharded) Name() string {
	if len(s.shards) == 1 {
		return s.shards[0].ix.Name()
	}
	return fmt.Sprintf("%s x%d", s.shards[0].ix.Name(), len(s.shards))
}

// String summarizes the index.
func (s *Sharded) String() string {
	return fmt.Sprintf("hint.Sharded{%s, n=%d, entries=%d, replicas=%d}",
		s.Name(), s.Count(), s.Entries(), s.Replicas())
}
