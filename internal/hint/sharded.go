package hint

// Sharded packages N independently locked HINT indexes behind one
// interval-index API, the concurrency story for the millions-of-users
// regime: every interval is owned by exactly one shard (chosen by a
// mixed hash of its id), mutations take that shard's write lock only,
// and queries fan over the shards under read locks — so readers never
// block readers, and a writer stalls only the readers of its own shard
// while the other shards keep serving. All methods are safe for
// concurrent use.
//
// Intersection results are the disjoint union of the shards' results, so
// the exactly-once reporting guarantee of the single-shard algorithm is
// preserved by construction.

import (
	"fmt"
	"slices"
	"sync"

	"ritree/internal/interval"
)

// Sharded is a concurrency-safe HINT index of one or more shards.
type Sharded struct {
	shards []shard
}

type shard struct {
	mu sync.RWMutex
	ix *Index
}

// NewSharded returns an empty concurrent index with opts.Shards shards
// (default 1). Every shard gets the same geometry.
func NewSharded(opts Options) (*Sharded, error) {
	n := opts.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 || n > 1024 {
		return nil, fmt.Errorf("hint: Shards = %d out of range [1, 1024]", n)
	}
	opts.Shards = 0 // per-shard indexes are bare
	s := &Sharded{shards: make([]shard, n)}
	for i := range s.shards {
		ix, err := New(opts)
		if err != nil {
			return nil, err
		}
		s.shards[i].ix = ix
	}
	return s, nil
}

// shardOf routes an id to its owning shard's position. Ids are commonly
// sequential row ids, so a splitmix64-style mix spreads them evenly.
func (s *Sharded) shardOf(id int64) int {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(s.shards)))
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Insert registers iv under id, locking only the owning shard.
func (s *Sharded) Insert(iv interval.Interval, id int64) error {
	sh := &s.shards[s.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ix.Insert(iv, id)
}

// Delete removes one registration of (iv, id), reporting whether it
// existed.
func (s *Sharded) Delete(iv interval.Interval, id int64) (bool, error) {
	sh := &s.shards[s.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ix.Delete(iv, id)
}

// BulkLoad splits the dataset by owning shard and bulk loads each shard
// in turn, leaving every shard in its optimized flat layout.
func (s *Sharded) BulkLoad(ivs []interval.Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("hint: BulkLoad got %d intervals, %d ids", len(ivs), len(ids))
	}
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.ix.BulkLoad(ivs, ids)
	}
	type batch struct {
		ivs []interval.Interval
		ids []int64
	}
	batches := make([]batch, len(s.shards))
	for i := range ivs {
		b := &batches[s.shardOf(ids[i])]
		b.ivs = append(b.ivs, ivs[i])
		b.ids = append(b.ids, ids[i])
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.ix.BulkLoad(batches[i].ivs, batches[i].ids)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Optimize compacts every shard into its cache-conscious flat layout.
func (s *Sharded) Optimize() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.ix.Optimize()
		sh.mu.Unlock()
	}
}

// Clear drops every stored interval, keeping the configuration.
func (s *Sharded) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.ix.Clear()
		sh.mu.Unlock()
	}
}

// IntersectingFunc streams the ids of intervals intersecting q in no
// particular order; return false from fn to stop early. Each shard is
// consulted under its read lock, so the scan runs concurrently with
// other readers and with writers on other shards. fn must not call the
// index's mutating methods (the locks are not reentrant).
func (s *Sharded) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("hint: invalid query %v", q)
	}
	stopped := false
	wrapped := func(id int64) bool {
		if !fn(id) {
			stopped = true
			return false
		}
		return true
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		err := sh.ix.IntersectingFunc(q, wrapped)
		sh.mu.RUnlock()
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (s *Sharded) Intersecting(q interval.Interval) ([]int64, error) {
	var ids []int64
	if err := s.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true }); err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// CountIntersecting returns the number of intervals intersecting q.
func (s *Sharded) CountIntersecting(q interval.Interval) (int64, error) {
	var n int64
	err := s.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (s *Sharded) Stab(p int64) ([]int64, error) {
	return s.Intersecting(interval.Point(p))
}

// Count returns the number of live intervals across all shards.
func (s *Sharded) Count() int64 { return s.sum(func(ix *Index) int64 { return ix.Count() }) }

// Entries returns the number of stored copies across all shards.
func (s *Sharded) Entries() int64 { return s.sum(func(ix *Index) int64 { return ix.Entries() }) }

// Replicas returns how many stored copies are replicas.
func (s *Sharded) Replicas() int64 { return s.sum(func(ix *Index) int64 { return ix.Replicas() }) }

// OverlayEntries returns how many stored copies await the next Optimize.
func (s *Sharded) OverlayEntries() int64 {
	return s.sum(func(ix *Index) int64 { return ix.OverlayEntries() })
}

func (s *Sharded) sum(f func(ix *Index) int64) int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += f(sh.ix)
		sh.mu.RUnlock()
	}
	return total
}

// Levels returns m, the depth of the bisection hierarchy.
func (s *Sharded) Levels() int { return s.shards[0].ix.Levels() }

// Bits returns the domain width in bits.
func (s *Sharded) Bits() int { return s.shards[0].ix.Bits() }

// ComparisonFree reports whether the shards run the comparison-free
// variant (Levels == Bits).
func (s *Sharded) ComparisonFree() bool { return s.shards[0].ix.ComparisonFree() }

// DomainMax returns the largest admissible interval start, 2^Bits-1.
func (s *Sharded) DomainMax() int64 { return s.shards[0].ix.DomainMax() }

// Optimized reports whether every shard has its flat storage built.
func (s *Sharded) Optimized() bool {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ok := sh.ix.Optimized()
		sh.mu.RUnlock()
		if !ok {
			return false
		}
	}
	return true
}

// Name identifies the index and its configuration.
func (s *Sharded) Name() string {
	if len(s.shards) == 1 {
		return s.shards[0].ix.Name()
	}
	return fmt.Sprintf("%s x%d", s.shards[0].ix.Name(), len(s.shards))
}

// String summarizes the index.
func (s *Sharded) String() string {
	return fmt.Sprintf("hint.Sharded{%s, n=%d, entries=%d, replicas=%d}",
		s.Name(), s.Count(), s.Entries(), s.Replicas())
}
