package hint

import "ritree/internal/obs"

// indexMetrics publishes the index's query-shape counters into a DB-level
// obs registry family — the observability hooks for the questions the
// HINT paper's experiments ask: how many partitions does a query consult
// versus skip through the nonempty bitmaps, how much of the data is
// served from the flat cache-conscious storage versus the dynamic
// overlay, and how wide the sharded fan-out runs. A nil *indexMetrics is
// valid and every method is a no-op, so unattached indexes pay nothing.
type indexMetrics struct {
	queries      *obs.Counter // logical queries (counted once per Sharded call)
	shardScans   *obs.Counter // per-shard scans: fan-out = shardScans/queries
	partsVisited *obs.Counter // nonempty partitions consulted
	partsSkipped *obs.Counter // relevant partitions skipped via bitmap
	flatRuns     *obs.Counter // nonempty flat segments scanned
	overlayRuns  *obs.Counter // nonempty overlay buckets scanned
}

func newIndexMetrics(reg *obs.Registry, prefix string) *indexMetrics {
	return &indexMetrics{
		queries:      reg.Counter(prefix + ".queries"),
		shardScans:   reg.Counter(prefix + ".shard_scans"),
		partsVisited: reg.Counter(prefix + ".partitions_visited"),
		partsSkipped: reg.Counter(prefix + ".partitions_skipped"),
		flatRuns:     reg.Counter(prefix + ".flat_runs"),
		overlayRuns:  reg.Counter(prefix + ".overlay_runs"),
	}
}

func (m *indexMetrics) query() {
	if m != nil {
		m.queries.Inc()
	}
}

// queryTally accumulates one scan's counts in plain locals so the hot
// loop pays no atomics; flush folds it into the registry once per scan.
type queryTally struct {
	visited, skipped      int64
	flatRuns, overlayRuns int64
}

func (m *indexMetrics) flush(t *queryTally) {
	if m == nil {
		return
	}
	m.shardScans.Inc()
	m.partsVisited.Add(t.visited)
	m.partsSkipped.Add(t.skipped)
	m.flatRuns.Add(t.flatRuns)
	m.overlayRuns.Add(t.overlayRuns)
}

// SetMetrics mirrors the index's query counters into reg under prefix
// (e.g. "index.resv_iv"). Pass reg == nil to detach. Not safe to call
// concurrently with queries on a bare Index; Sharded.SetMetrics takes the
// shard locks.
func (x *Index) SetMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		x.met = nil
		return
	}
	x.met = newIndexMetrics(reg, prefix)
}

// SetMetrics mirrors every shard's query counters into reg under prefix.
// All shards share one counter family (obs counters are atomic), so the
// published numbers aggregate across the fan-out; "<prefix>.queries"
// counts logical calls against the sharded index, "<prefix>.shard_scans"
// the per-shard scans they fanned into. Pass reg == nil to detach. The
// binding publishes a new generation per shard, so in-flight scans keep
// their old counter family.
func (s *Sharded) SetMetrics(reg *obs.Registry, prefix string) {
	for i := range s.shards {
		_ = s.shards[i].update(func(ix *Index) error {
			ix.SetMetrics(reg, prefix)
			return nil
		})
	}
	if reg == nil {
		s.met = nil
		return
	}
	s.met = newIndexMetrics(reg, prefix)
}
