package hint

import "ritree/internal/obs"

// indexMetrics publishes the index's query-shape counters into a DB-level
// obs registry family — the observability hooks for the questions the
// HINT paper's experiments ask: how many partitions does a query consult
// versus skip through the nonempty bitmaps, how much of the data is
// served from the flat cache-conscious storage versus the dynamic
// overlay, and how wide the sharded fan-out runs. A nil *indexMetrics is
// valid and every method is a no-op, so unattached indexes pay nothing.
type indexMetrics struct {
	queries      *obs.Counter // logical queries (counted once per Sharded call)
	shardScans   *obs.Counter // per-shard scans: fan-out = shardScans/queries
	partsVisited *obs.Counter // nonempty partitions consulted
	partsSkipped *obs.Counter // relevant partitions skipped via bitmap
	flatRuns     *obs.Counter // nonempty flat segments scanned
	overlayRuns  *obs.Counter // nonempty overlay buckets scanned
}

func newIndexMetrics(reg *obs.Registry, prefix string) *indexMetrics {
	return &indexMetrics{
		queries:      reg.Counter(prefix + ".queries"),
		shardScans:   reg.Counter(prefix + ".shard_scans"),
		partsVisited: reg.Counter(prefix + ".partitions_visited"),
		partsSkipped: reg.Counter(prefix + ".partitions_skipped"),
		flatRuns:     reg.Counter(prefix + ".flat_runs"),
		overlayRuns:  reg.Counter(prefix + ".overlay_runs"),
	}
}

func (m *indexMetrics) query() {
	if m != nil {
		m.queries.Inc()
	}
}

// queryTally accumulates one scan's counts in plain locals so the hot
// loop pays no atomics; flush folds it into the registry once per scan.
type queryTally struct {
	visited, skipped      int64
	flatRuns, overlayRuns int64
}

func (m *indexMetrics) flush(t *queryTally) {
	if m == nil {
		return
	}
	m.shardScans.Inc()
	m.partsVisited.Add(t.visited)
	m.partsSkipped.Add(t.skipped)
	m.flatRuns.Add(t.flatRuns)
	m.overlayRuns.Add(t.overlayRuns)
}

// snapTally accumulates snapshot-path events (attach loads, rebuild
// fallbacks, bytes read/written, tail rows replayed, persists) before a
// registry is bound; merge folds one tally into another.
type snapTally struct {
	loads, fallbacks, bytes, tailRows, persists int64
}

func (t *snapTally) merge(o snapTally) {
	t.loads += o.loads
	t.fallbacks += o.fallbacks
	t.bytes += o.bytes
	t.tailRows += o.tailRows
	t.persists += o.persists
}

// snapMetrics are the bound counter handles of the snapshot family:
// "<prefix>.snapshot.loads" (attaches served from a snapshot),
// ".snapshot.rebuild_fallbacks" (snapshots discarded for a full rebuild),
// ".snapshot.bytes" (snapshot bytes read or written), ".snapshot.tail_rows"
// (heap-tail rows replayed on top of a loaded snapshot), and
// ".snapshot.persists" (snapshots written).
type snapMetrics struct {
	loads, fallbacks, bytes, tailRows, persists *obs.Counter
}

func newSnapMetrics(reg *obs.Registry, prefix string) *snapMetrics {
	return &snapMetrics{
		loads:     reg.Counter(prefix + ".snapshot.loads"),
		fallbacks: reg.Counter(prefix + ".snapshot.rebuild_fallbacks"),
		bytes:     reg.Counter(prefix + ".snapshot.bytes"),
		tailRows:  reg.Counter(prefix + ".snapshot.tail_rows"),
		persists:  reg.Counter(prefix + ".snapshot.persists"),
	}
}

func (m *snapMetrics) add(t snapTally) {
	m.loads.Add(t.loads)
	m.fallbacks.Add(t.fallbacks)
	m.bytes.Add(t.bytes)
	m.tailRows.Add(t.tailRows)
	m.persists.Add(t.persists)
}

// SetMetrics mirrors the index's query counters into reg under prefix
// (e.g. "index.resv_iv"). Pass reg == nil to detach. Not safe to call
// concurrently with queries on a bare Index; Sharded.SetMetrics takes the
// shard locks.
func (x *Index) SetMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		x.met = nil
		return
	}
	x.met = newIndexMetrics(reg, prefix)
}

// SetMetrics mirrors every shard's query counters into reg under prefix.
// All shards share one counter family (obs counters are atomic), so the
// published numbers aggregate across the fan-out; "<prefix>.queries"
// counts logical calls against the sharded index, "<prefix>.shard_scans"
// the per-shard scans they fanned into. Pass reg == nil to detach. The
// binding publishes a new generation per shard, so in-flight scans keep
// their old counter family.
func (s *Sharded) SetMetrics(reg *obs.Registry, prefix string) {
	for i := range s.shards {
		_ = s.shards[i].update(func(ix *Index) error {
			ix.SetMetrics(reg, prefix)
			return nil
		})
	}
	if reg == nil {
		s.met = nil
		return
	}
	s.met = newIndexMetrics(reg, prefix)
}
