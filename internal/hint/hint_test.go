package hint

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"ritree/internal/interval"
)

// brute is the reference implementation: a plain slice scanned linearly.
type brute struct {
	ivs []interval.Interval
	ids []int64
}

func (b *brute) insert(iv interval.Interval, id int64) {
	b.ivs = append(b.ivs, iv)
	b.ids = append(b.ids, id)
}

func (b *brute) delete(iv interval.Interval, id int64) bool {
	for i := range b.ivs {
		if b.ids[i] == id && b.ivs[i] == iv {
			b.ivs[i] = b.ivs[len(b.ivs)-1]
			b.ids[i] = b.ids[len(b.ids)-1]
			b.ivs = b.ivs[:len(b.ivs)-1]
			b.ids = b.ids[:len(b.ids)-1]
			return true
		}
	}
	return false
}

func (b *brute) intersecting(q interval.Interval) []int64 {
	var out []int64
	for i := range b.ivs {
		if b.ivs[i].Intersects(q) {
			out = append(out, b.ids[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// adversarialInterval draws an interval biased toward the shapes that
// stress the decomposition: point intervals, domain-spanning intervals,
// shared and partition-aligned endpoints, and infinite uppers.
func adversarialInterval(rng *rand.Rand, max int64) interval.Interval {
	switch rng.Intn(10) {
	case 0: // point
		p := rng.Int63n(max + 1)
		return interval.Point(p)
	case 1: // spans the whole domain
		return interval.New(0, max)
	case 2: // hugs the domain start
		return interval.New(0, rng.Int63n(max+1))
	case 3: // hugs the domain end
		return interval.New(rng.Int63n(max+1), max)
	case 4: // quantized endpoints: many shared bounds and aligned cuts
		q := max / 16
		if q == 0 {
			q = 1
		}
		lo := (rng.Int63n(max+1) / q) * q
		hi := lo + rng.Int63n(3)*q
		if hi > max {
			hi = max
		}
		return interval.New(lo, hi)
	case 5: // infinite upper bound (clamped into the domain by the index)
		return interval.New(rng.Int63n(max+1), interval.Infinity)
	default: // general short-to-medium interval
		lo := rng.Int63n(max + 1)
		hi := lo + rng.Int63n(max/8+1)
		return interval.New(lo, hi)
	}
}

func adversarialQuery(rng *rand.Rand, max int64) interval.Interval {
	switch rng.Intn(10) {
	case 0: // stabbing
		return interval.Point(rng.Int63n(max + 1))
	case 1: // whole domain
		return interval.New(0, max)
	case 2: // aligned window
		q := max / 32
		if q == 0 {
			q = 1
		}
		lo := (rng.Int63n(max+1) / q) * q
		hi := lo + q - 1
		if hi > max {
			hi = max
		}
		return interval.New(lo, hi)
	case 3: // entirely or partly beyond the domain (clamped by the index)
		lo := max - 2 + rng.Int63n(8)
		return interval.New(lo, lo+rng.Int63n(6))
	case 4: // entirely or partly below the domain
		lo := -5 + rng.Int63n(8)
		hi := lo + rng.Int63n(6)
		return interval.New(lo, hi)
	default:
		lo := rng.Int63n(max + 1)
		hi := lo + rng.Int63n(max/16+1)
		if hi > max {
			hi = max
		}
		return interval.New(lo, hi)
	}
}

// TestRandomizedCrossCheck is the property test: mixed insert/delete
// workloads with adversarial interval shapes, cross-checking intersection
// and stabbing results against a brute-force scan after every batch, over
// several index geometries including the comparison-free one and the
// unsorted ablation layout. Periodic Optimize calls move entries into the
// flat storage mid-workload, so deletes and queries exercise every mix of
// flat segments and dynamic overlay.
func TestRandomizedCrossCheck(t *testing.T) {
	configs := []Options{
		{},                     // defaults: bits 20, m 10
		{Bits: 14, Levels: 14}, // comparison-free
		{Bits: 14, Levels: 1},  // degenerate two-partition bottom
		{Bits: 20, Levels: 16},
		{Bits: 10, Levels: 4},
		{Bits: 14, Levels: 6, NoSort: true}, // ablation: unsorted linear scans
	}
	for ci, opts := range configs {
		x, err := New(opts)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		ref := &brute{}
		max := x.DomainMax()
		nextID := int64(0)

		for round := 0; round < 8; round++ {
			// Insert a batch.
			for i := 0; i < 400; i++ {
				iv := adversarialInterval(rng, max)
				if err := x.Insert(iv, nextID); err != nil {
					t.Fatalf("%s: insert %v: %v", x.Name(), iv, err)
				}
				ref.insert(iv, nextID)
				nextID++
			}
			// Compact on some rounds, so later deletes and queries hit
			// flat segments, overlay buckets, and both.
			if round%3 == 1 {
				x.Optimize()
				if x.OverlayEntries() != 0 {
					t.Fatalf("%s: overlay = %d after Optimize", x.Name(), x.OverlayEntries())
				}
			}
			// Delete a random subset (including an already-deleted pair,
			// which must report false).
			for i := 0; i < 120 && len(ref.ivs) > 0; i++ {
				j := rng.Intn(len(ref.ivs))
				iv, id := ref.ivs[j], ref.ids[j]
				ok, err := x.Delete(iv, id)
				if err != nil {
					t.Fatalf("%s: delete: %v", x.Name(), err)
				}
				if !ok {
					t.Fatalf("%s: delete (%v, %d) reported missing", x.Name(), iv, id)
				}
				ref.delete(iv, id)
			}
			if ok, _ := x.Delete(interval.New(1, 2), -999); ok {
				t.Fatalf("%s: delete of never-inserted pair succeeded", x.Name())
			}

			if got, want := x.Count(), int64(len(ref.ivs)); got != want {
				t.Fatalf("%s: Count = %d, want %d", x.Name(), got, want)
			}

			// Cross-check queries.
			for qi := 0; qi < 60; qi++ {
				q := adversarialQuery(rng, max)
				want := ref.intersecting(q)
				got, err := x.Intersecting(q)
				if err != nil {
					t.Fatalf("%s: query %v: %v", x.Name(), q, err)
				}
				if !sortedEqual(got, want) {
					t.Fatalf("%s: query %v: got %d ids %v, want %d ids %v",
						x.Name(), q, len(got), got, len(want), want)
				}
			}
			// Stabbing via Stab must agree with a point query.
			p := rng.Int63n(max + 1)
			want := ref.intersecting(interval.Point(p))
			got, err := x.Stab(p)
			if err != nil {
				t.Fatal(err)
			}
			if !sortedEqual(got, want) {
				t.Fatalf("%s: stab %d: got %v, want %v", x.Name(), p, got, want)
			}
		}

		// Drain: delete everything, index must be empty.
		for len(ref.ivs) > 0 {
			iv, id := ref.ivs[0], ref.ids[0]
			if ok, _ := x.Delete(iv, id); !ok {
				t.Fatalf("%s: drain delete failed for (%v, %d)", x.Name(), iv, id)
			}
			ref.delete(iv, id)
		}
		if x.Count() != 0 || x.Entries() != 0 || x.Replicas() != 0 {
			t.Fatalf("%s: after drain count=%d entries=%d replicas=%d",
				x.Name(), x.Count(), x.Entries(), x.Replicas())
		}
	}
}

// TestOptimizeEquivalence loads the same workload three ways — purely
// incremental, bulk loaded, and incremental + explicit Optimize — and
// checks the three answer every query identically (the flat layout is a
// storage change, never a semantic one).
func TestOptimizeEquivalence(t *testing.T) {
	opts := Options{Bits: 16, Levels: 8}
	dyn, _ := New(opts)
	bulk, _ := New(opts)
	opt, _ := New(opts)
	rng := rand.New(rand.NewSource(7))
	max := dyn.DomainMax()
	var ivs []interval.Interval
	var ids []int64
	for i := int64(0); i < 4000; i++ {
		iv := adversarialInterval(rng, max)
		ivs = append(ivs, iv)
		ids = append(ids, i)
		if err := dyn.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
		if err := opt.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulk.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	opt.Optimize()
	if dyn.Optimized() || !bulk.Optimized() || !opt.Optimized() {
		t.Fatalf("optimized flags: dyn=%v bulk=%v opt=%v",
			dyn.Optimized(), bulk.Optimized(), opt.Optimized())
	}
	if bulk.FlatEntries() != bulk.Entries() || bulk.OverlayEntries() != 0 {
		t.Fatalf("bulk: flat=%d overlay=%d entries=%d",
			bulk.FlatEntries(), bulk.OverlayEntries(), bulk.Entries())
	}
	if dyn.Entries() != bulk.Entries() || dyn.Entries() != opt.Entries() {
		t.Fatalf("entries diverge: %d / %d / %d", dyn.Entries(), bulk.Entries(), opt.Entries())
	}
	for qi := 0; qi < 400; qi++ {
		q := adversarialQuery(rng, max)
		a, err := dyn.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := bulk.Intersecting(q)
		c, _ := opt.Intersecting(q)
		if !sortedEqual(a, b) || !sortedEqual(a, c) {
			t.Fatalf("query %v: dyn %d ids, bulk %d ids, opt %d ids", q, len(a), len(b), len(c))
		}
	}
	// Inserts after Optimize land in the overlay and are immediately
	// visible.
	if err := opt.Insert(interval.New(5, 9), 99999); err != nil {
		t.Fatal(err)
	}
	if opt.OverlayEntries() == 0 {
		t.Fatal("post-Optimize insert did not go to the overlay")
	}
	ids2, _ := opt.Intersecting(interval.New(6, 7))
	found := false
	for _, id := range ids2 {
		if id == 99999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-Optimize insert invisible: %v", ids2)
	}
}

// TestShardedCrossCheck drives the concurrent wrapper through the same
// adversarial workload as the core index, single-threaded, to pin the
// sharding itself (routing, fan-out, exactly-once union) against brute
// force.
func TestShardedCrossCheck(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		s, err := NewSharded(Options{Bits: 14, Levels: 7, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if s.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", s.Shards(), shards)
		}
		rng := rand.New(rand.NewSource(int64(40 + shards)))
		ref := &brute{}
		max := s.DomainMax()
		for i := int64(0); i < 2000; i++ {
			iv := adversarialInterval(rng, max)
			if err := s.Insert(iv, i); err != nil {
				t.Fatal(err)
			}
			ref.insert(iv, i)
		}
		s.Optimize()
		for i := 0; i < 500 && len(ref.ivs) > 0; i++ {
			j := rng.Intn(len(ref.ivs))
			iv, id := ref.ivs[j], ref.ids[j]
			if ok, err := s.Delete(iv, id); err != nil || !ok {
				t.Fatalf("delete (%v, %d) = %v, %v", iv, id, ok, err)
			}
			ref.delete(iv, id)
		}
		if got, want := s.Count(), int64(len(ref.ivs)); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
		if s.Entries()-s.Replicas() != s.Count() {
			t.Fatalf("entries=%d replicas=%d count=%d", s.Entries(), s.Replicas(), s.Count())
		}
		for qi := 0; qi < 200; qi++ {
			q := adversarialQuery(rng, max)
			want := ref.intersecting(q)
			got, err := s.Intersecting(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sortedEqual(got, want) {
				t.Fatalf("shards=%d query %v: got %d ids, want %d ids", shards, q, len(got), len(want))
			}
		}
		// Early termination across shard boundaries.
		seen := 0
		if err := s.IntersectingFunc(interval.New(0, max), func(int64) bool { seen++; return seen < 3 }); err != nil {
			t.Fatal(err)
		}
		if seen != 3 && s.Count() >= 3 {
			t.Fatalf("early termination saw %d", seen)
		}
		s.Clear()
		if s.Count() != 0 || s.Entries() != 0 {
			t.Fatal("Clear left residue")
		}
	}
	if _, err := NewSharded(Options{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := New(Options{Shards: 4}); err == nil {
		t.Fatal("bare New accepted Shards > 1")
	}
}

func TestDuplicateRegistrations(t *testing.T) {
	x, _ := New(Options{Bits: 12, Levels: 6})
	iv := interval.New(100, 900)
	for i := 0; i < 3; i++ {
		if err := x.Insert(iv, 7); err != nil {
			t.Fatal(err)
		}
	}
	ids, _ := x.Intersecting(interval.New(500, 500))
	if len(ids) != 3 {
		t.Fatalf("got %v, want three copies", ids)
	}
	if ok, _ := x.Delete(iv, 7); !ok {
		t.Fatal("delete failed")
	}
	ids, _ = x.Intersecting(interval.New(500, 500))
	if len(ids) != 2 {
		t.Fatalf("after one delete got %v", ids)
	}
}

func TestInfiniteAndOutOfDomain(t *testing.T) {
	x, _ := New(Options{Bits: 12, Levels: 12}) // comparison-free geometry
	max := x.DomainMax()
	if err := x.Insert(interval.New(10, interval.Infinity), 1); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(interval.New(0, 5), 2); err != nil {
		t.Fatal(err)
	}
	// A query clamped from beyond the domain must still see only the
	// infinite interval (id 2 ends at 5 < query start).
	ids, err := x.Intersecting(interval.New(max+100, max+200))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("beyond-domain query got %v, want [1]", ids)
	}
	// A query entirely below the domain matches nothing.
	ids, err = x.Intersecting(interval.New(-20, -10))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("below-domain query got %v, want none", ids)
	}
	// Now-relative intervals are rejected: HINT has no §4.6 evaluation,
	// and treating [lo, now] as [lo, ∞) would silently diverge from the
	// RI-tree.
	if err := x.Insert(interval.New(10, interval.NowMarker), 8); err == nil {
		t.Fatal("now-relative interval accepted")
	}
	// Starts outside the domain are rejected.
	if err := x.Insert(interval.New(-1, 5), 3); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := x.Insert(interval.New(max+1, max+2), 4); err == nil {
		t.Fatal("start beyond domain accepted")
	}
	if err := x.Insert(interval.New(9, 3), 5); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, err := x.Intersecting(interval.New(9, 3)); err == nil {
		t.Fatal("inverted query accepted")
	}
}

func TestOutOfDomainQueryBoundaries(t *testing.T) {
	// Regression: the partition-alignment shortcuts must not justify
	// skipped comparisons from a clamped query bound. At comparison-free
	// geometry, a query entirely above the domain used to report the
	// interval touching DomainMax.
	for _, opts := range []Options{{Bits: 8, Levels: 8}, {Bits: 8, Levels: 3}} {
		x, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		max := x.DomainMax()
		x.Insert(interval.New(max, max), 1)
		x.Insert(interval.New(0, 0), 2)
		x.Insert(interval.New(0, max), 3)
		if ids, _ := x.Intersecting(interval.New(max+1, max+5)); len(ids) != 0 {
			t.Fatalf("%s: above-domain query got %v", x.Name(), ids)
		}
		if ids, _ := x.Intersecting(interval.New(-5, -1)); len(ids) != 0 {
			t.Fatalf("%s: below-domain query got %v", x.Name(), ids)
		}
		if ids, _ := x.Stab(max + 1); len(ids) != 0 {
			t.Fatalf("%s: stab past domain got %v", x.Name(), ids)
		}
		// Straddling queries still match the boundary intervals.
		ids, _ := x.Intersecting(interval.New(max-1, max+5))
		if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
			t.Fatalf("%s: straddling query got %v", x.Name(), ids)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Bits: 8, Levels: 9}); err == nil {
		t.Fatal("Levels > Bits accepted")
	}
	if _, err := New(Options{Bits: 63}); err == nil {
		t.Fatal("Bits > 62 accepted")
	}
	if _, err := New(Options{Bits: 30, Levels: 23}); err == nil {
		t.Fatal("Levels > maxLevels accepted")
	}
	x, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x.Bits() != DefaultBits || x.Levels() != DefaultLevels {
		t.Fatalf("defaults: bits=%d levels=%d", x.Bits(), x.Levels())
	}
	if x.ComparisonFree() {
		t.Fatal("default config claims comparison-free")
	}
	cf, _ := New(Options{Bits: 12, Levels: 12})
	if !cf.ComparisonFree() {
		t.Fatal("Levels == Bits not comparison-free")
	}
}

func TestEarlyTermination(t *testing.T) {
	x, _ := New(Options{Bits: 12, Levels: 6})
	for i := int64(0); i < 50; i++ {
		x.Insert(interval.New(i*10, i*10+500), i)
	}
	seen := 0
	err := x.IntersectingFunc(interval.New(0, 4095), func(int64) bool {
		seen++
		return seen < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("early termination saw %d results, want 5", seen)
	}
}

func TestEntriesAccounting(t *testing.T) {
	x, _ := New(Options{Bits: 12, Levels: 6})
	// A domain-spanning interval replicates across levels; a point does not.
	x.Insert(interval.New(0, x.DomainMax()), 1)
	x.Insert(interval.Point(17), 2)
	if x.Entries() < 2 || x.Replicas() > x.Entries() {
		t.Fatalf("entries=%d replicas=%d", x.Entries(), x.Replicas())
	}
	// Each interval has exactly one original copy.
	if got := x.Entries() - x.Replicas(); got != x.Count() {
		t.Fatalf("originals = %d, want Count = %d", got, x.Count())
	}
	x.Clear()
	if x.Count() != 0 || x.Entries() != 0 || x.Replicas() != 0 {
		t.Fatal("Clear left residue")
	}
	ids, _ := x.Intersecting(interval.New(0, x.DomainMax()))
	if len(ids) != 0 {
		t.Fatalf("after Clear got %v", ids)
	}
}

func TestComparisonFreeMatchesDefault(t *testing.T) {
	// The same workload through a comparison-free geometry and a coarse
	// geometry must agree query-for-query.
	a, _ := New(Options{Bits: 13, Levels: 13})
	b, _ := New(Options{Bits: 13, Levels: 5})
	rng := rand.New(rand.NewSource(99))
	max := a.DomainMax()
	for i := int64(0); i < 3000; i++ {
		iv := adversarialInterval(rng, max)
		if err := a.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 300; qi++ {
		q := adversarialQuery(rng, max)
		ra, _ := a.Intersecting(q)
		rb, _ := b.Intersecting(q)
		if !sortedEqual(ra, rb) {
			t.Fatalf("query %v: cmp-free %d ids vs coarse %d ids", q, len(ra), len(rb))
		}
	}
}

func TestShardedParallelQueriesMatchSingleShard(t *testing.T) {
	// The parallel per-shard fan-out with ascending merge must answer
	// byte-identically to a single-shard index over the same data.
	rng := rand.New(rand.NewSource(31337))
	one, err := NewSharded(Options{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewSharded(Options{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5000; i++ {
		lo := rng.Int63n(1 << 18)
		iv := interval.New(lo, lo+rng.Int63n(4096))
		if err := one.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
		if err := many.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 200; qi++ {
		lo := rng.Int63n(1 << 18)
		q := interval.New(lo, lo+rng.Int63n(8192))
		if qi%5 == 0 {
			q = interval.Point(lo)
		}
		a, err := one.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := many.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(a, b) {
			t.Fatalf("query %v: single %d ids, sharded %d ids", q, len(a), len(b))
		}
		if !slices.IsSorted(b) {
			t.Fatalf("query %v: sharded result not ascending", q)
		}
		na, _ := one.CountIntersecting(q)
		nb, _ := many.CountIntersecting(q)
		if na != nb {
			t.Fatalf("query %v: counts %d vs %d", q, na, nb)
		}
	}
	// Allen relations through the same parallel path.
	q := interval.New(100000, 120000)
	for r := interval.Before; r <= interval.After; r++ {
		a, err := one.QueryRelation(r, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := many.QueryRelation(r, q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(a, b) {
			t.Fatalf("%v: single %d ids, sharded %d ids", r, len(a), len(b))
		}
	}
}

func TestMergeAscending(t *testing.T) {
	cases := [][][]int64{
		{},
		{{}},
		{{1, 3, 5}},
		{{1, 3}, {2, 4}, {}},
		{{5}, {1}, {3}},
		{{1, 1, 2}, {1, 2, 2}},
	}
	for _, lists := range cases {
		var want []int64
		cp := make([][]int64, len(lists))
		for i, l := range lists {
			want = append(want, l...)
			cp[i] = slices.Clone(l)
		}
		slices.Sort(want)
		got := mergeAscending(cp)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !slices.Equal(got, want) {
			t.Fatalf("mergeAscending(%v) = %v, want %v", lists, got, want)
		}
	}
}
