package hint

// testing.B microbenchmarks for the HINT core, with allocation reporting
// so the perf claims of the optimized layout stay reproducible:
//
//	go test -bench . -benchmem ./internal/hint
//
// Query benchmarks cover the three optimization levels the ribench
// hintopt ablation records at full scale — unsorted baseline buckets,
// sorted subdivisions, and the flat cache-conscious layout — plus the
// comparison-free geometry and the sharded concurrent read path.

import (
	"math/rand"
	"testing"

	"ritree/internal/interval"
)

const (
	benchN    = 100000
	benchDur  = 2000
	benchQLen = 5000
)

func benchWorkload(n int, max int64) ([]interval.Interval, []int64) {
	rng := rand.New(rand.NewSource(1))
	ivs := make([]interval.Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(max + 1)
		hi := lo + rng.Int63n(2*benchDur)
		if hi > max {
			hi = max
		}
		ivs[i] = interval.New(lo, hi)
		ids[i] = int64(i)
	}
	return ivs, ids
}

func benchIndex(b *testing.B, opts Options, optimize bool) *Index {
	b.Helper()
	x, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	ivs, ids := benchWorkload(benchN, x.DomainMax())
	if optimize {
		if err := x.BulkLoad(ivs, ids); err != nil {
			b.Fatal(err)
		}
		return x
	}
	for i := range ivs {
		if err := x.Insert(ivs[i], ids[i]); err != nil {
			b.Fatal(err)
		}
	}
	return x
}

func benchQueries(x interface{ DomainMax() int64 }) []interval.Interval {
	rng := rand.New(rand.NewSource(2))
	max := x.DomainMax()
	qs := make([]interval.Interval, 512)
	for i := range qs {
		lo := rng.Int63n(max + 1)
		hi := lo + benchQLen
		if hi > max {
			hi = max
		}
		qs[i] = interval.New(lo, hi)
	}
	return qs
}

func runQueryBench(b *testing.B, x *Index) {
	b.Helper()
	qs := benchQueries(x)
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		n, err := x.CountIntersecting(qs[i%len(qs)])
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		b.Fatal("queries returned nothing")
	}
}

func BenchmarkQueryUnsortedBaseline(b *testing.B) {
	runQueryBench(b, benchIndex(b, Options{NoSort: true}, false))
}

func BenchmarkQuerySorted(b *testing.B) {
	runQueryBench(b, benchIndex(b, Options{}, false))
}

func BenchmarkQueryFlat(b *testing.B) {
	runQueryBench(b, benchIndex(b, Options{}, true))
}

func BenchmarkQueryFlatCmpFree(b *testing.B) {
	runQueryBench(b, benchIndex(b, Options{Bits: 20, Levels: 20}, true))
}

func BenchmarkQuerySharded(b *testing.B) {
	s, err := NewSharded(Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	ivs, ids := benchWorkload(benchN, s.DomainMax())
	if err := s.BulkLoad(ivs, ids); err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(s)
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		n, err := s.CountIntersecting(qs[i%len(qs)])
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		b.Fatal("queries returned nothing")
	}
}

// BenchmarkQueryShardedParallel is the concurrent read path: GOMAXPROCS
// readers over an 8-shard index, the serving shape of the sharded
// design.
func BenchmarkQueryShardedParallel(b *testing.B) {
	s, err := NewSharded(Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	ivs, ids := benchWorkload(benchN, s.DomainMax())
	if err := s.BulkLoad(ivs, ids); err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(s)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.CountIntersecting(qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkInsert(b *testing.B) {
	x, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	max := x.DomainMax()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(max + 1)
		hi := lo + rng.Int63n(2*benchDur)
		if hi > max {
			hi = max
		}
		if err := x.Insert(interval.New(lo, hi), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertAfterOptimize measures the overlay insert path of a
// compacted index — the steady state of a long-lived attached index.
func BenchmarkInsertAfterOptimize(b *testing.B) {
	x := benchIndex(b, Options{}, true)
	rng := rand.New(rand.NewSource(4))
	max := x.DomainMax()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(max + 1)
		hi := lo + rng.Int63n(2*benchDur)
		if hi > max {
			hi = max
		}
		if err := x.Insert(interval.New(lo, hi), int64(benchN+i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	x, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	ivs, ids := benchWorkload(benchN, x.DomainMax())
	if err := x.BulkLoad(ivs, ids); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % benchN
		if i > 0 && j == 0 {
			b.StopTimer() // refill once drained
			if err := x.BulkLoad(ivs, ids); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if ok, err := x.Delete(ivs[j], ids[j]); err != nil || !ok {
			b.Fatalf("delete %d = %v, %v", j, ok, err)
		}
	}
}

func BenchmarkBulkLoadOptimize(b *testing.B) {
	ivs, ids := benchWorkload(benchN, int64(1)<<DefaultBits-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := New(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := x.BulkLoad(ivs, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeIncremental measures one compaction of a fully
// dynamic index — the cost OnInsert amortizes.
func BenchmarkOptimizeIncremental(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := benchIndex(b, Options{}, false)
		b.StartTimer()
		x.Optimize()
	}
}
