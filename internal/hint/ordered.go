package hint

// Ordered streaming over the index's original copies — the feed of the
// SQL layer's interval merge join (Piatov et al., "Cache-Efficient
// Sweeping-Based Interval Joins", see PAPERS.md): the join wants both
// inputs sorted by interval lower bound, and HINT's flat storage already
// keeps every original-class segment sorted by start, so the sorted feed
// is a k-way merge of runs that exist anyway — no O(n log n) sort, no
// extra copy of the data.
//
// Every stored interval has exactly one original copy (the unique
// partition of its decomposition containing its start; see visitPart), in
// class cOIn or cOAft of exactly one partition of one level. Those are
// precisely the sorted-by-lo classes, so merging all cOIn/cOAft segments
// — flat and overlay — across all levels yields each interval exactly
// once, in ascending (lo, hi, id) order of the head keys.

// orderedRun is one sorted run in the k-way merge.
type orderedRun struct {
	ents []entry
	pos  int
}

// appendOriginalRuns collects every nonempty original-class segment of x
// as a sorted run. It reports false when the index cannot guarantee
// sorted segments (the NoSort ablation layout).
func (x *Index) appendOriginalRuns(runs []orderedRun) ([]orderedRun, bool) {
	if x.noSort || x.bulk {
		return runs, false
	}
	for l := 0; l <= x.m; l++ {
		var fl *flatLevel
		if x.flat != nil {
			fl = &x.flat[l]
		}
		for _, c := range [2]int{cOIn, cOAft} {
			if fl != nil && fl.subs[c].off != nil {
				fs := &fl.subs[c]
				for i := int64(0); i < int64(len(fs.cnt)); i++ {
					if s := fs.seg(i); len(s) > 0 {
						runs = append(runs, orderedRun{ents: s})
					}
				}
			}
		}
		for _, p := range x.levels[l] {
			if p == nil {
				continue
			}
			for _, c := range [2]int{cOIn, cOAft} {
				if s := p.subs[c]; len(s) > 0 {
					runs = append(runs, orderedRun{ents: s})
				}
			}
		}
	}
	return runs, true
}

// runLess orders the merge heap by the head entry's (lo, hi, id) key.
func runLess(a, b *orderedRun) bool {
	ea, eb := a.ents[a.pos], b.ents[b.pos]
	if ea.lo != eb.lo {
		return ea.lo < eb.lo
	}
	if ea.hi != eb.hi {
		return ea.hi < eb.hi
	}
	return ea.id < eb.id
}

// mergeRuns streams the union of the runs in ascending (lo, hi, id) order
// through fn until exhaustion or fn returns false. A hand-rolled binary
// heap: the merge is per-row on the join's drain path, so it avoids the
// interface boxing of container/heap.
func mergeRuns(runs []orderedRun, fn func(e entry) bool) {
	h := make([]*orderedRun, 0, len(runs))
	for i := range runs {
		h = append(h, &runs[i])
	}
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(h, i, n)
	}
	for n > 0 {
		r := h[0]
		if !fn(r.ents[r.pos]) {
			return
		}
		r.pos++
		if r.pos == len(r.ents) {
			h[0] = h[n-1]
			n--
		}
		siftDown(h, 0, n)
	}
}

func siftDown(h []*orderedRun, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && runLess(h[r], h[l]) {
			c = r
		}
		if !runLess(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// ScanStartOrdered streams every stored interval exactly once, ascending
// by (Lower, Upper, id), by merging the original-class segments. It
// reports false without calling fn when the layout cannot guarantee
// order (NoSort). fn returning false stops the scan.
func (x *Index) ScanStartOrdered(fn func(lo, hi, id int64) bool) bool {
	runs, ok := x.appendOriginalRuns(nil)
	if !ok {
		return false
	}
	mergeRuns(runs, func(e entry) bool { return fn(e.lo, e.hi, e.id) })
	return true
}

// ScanStartOrdered streams every stored interval of every shard exactly
// once, ascending by (Lower, Upper, id) — the shards' runs merge into one
// globally ordered stream. The scan runs over the shards' currently
// published COW generations, so it never blocks writers; like
// IntersectingFunc it observes the generations current at call time.
func (s *Sharded) ScanStartOrdered(fn func(lo, hi, id int64) bool) bool {
	return scanGensOrdered(s.freeze(), fn)
}

// scanGensOrdered merges the original-class runs of a frozen generation
// set (see Sharded.freeze) into one ordered stream.
func scanGensOrdered(gens []*Index, fn func(lo, hi, id int64) bool) bool {
	var runs []orderedRun
	for _, g := range gens {
		var ok bool
		if runs, ok = g.appendOriginalRuns(runs); !ok {
			return false
		}
	}
	mergeRuns(runs, func(e entry) bool { return fn(e.lo, e.hi, e.id) })
	return true
}
