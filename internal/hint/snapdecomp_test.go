package hint

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

// TestSnapshotDecomposition is a manual profiling aid (run with
// -run Decomposition -v -timeout 0 RIBENCH_DECOMP=1).
func TestSnapshotDecomposition(t *testing.T) {
	if os.Getenv("RIBENCH_DECOMP") == "" {
		t.Skip("set RIBENCH_DECOMP=1 to run")
	}
	n := 1000000
	f, _ := os.CreateTemp("", "decomp-*.pages")
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	open := func() *pagestore.Store {
		be, err := pagestore.OpenFileBackend(path, 2048)
		if err != nil {
			t.Fatal(err)
		}
		st, err := pagestore.New(be, pagestore.Options{PageSize: 2048, CacheSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := open()
	db, _ := rel.CreateDB(st)
	eng := sqldb.NewEngine(db)
	RegisterIndexType(eng)
	eng.MustExec("CREATE TABLE sv (lo int, hi int, id int)", nil)
	tab, _ := db.Table("sv")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(2000)
		tab.Insert([]int64{lo, hi, int64(i)})
	}
	eng.MustExec("CREATE INDEX sv_mm ON sv (lo, hi) INDEXTYPE IS hint", nil)
	t0 := time.Now()
	if err := eng.PersistIndexSnapshots(); err != nil {
		t.Fatal(err)
	}
	t.Logf("persist: %v", time.Since(t0))
	db.Close()

	// Cold: GetBlob
	st = open()
	db2, _ := rel.OpenDB(st, 1)
	t0 = time.Now()
	data, found, err := db2.GetBlob("hintsnap.sv_mm")
	if err != nil || !found {
		t.Fatal(found, err)
	}
	t.Logf("GetBlob: %v (%d bytes, %d phys reads)", time.Since(t0), len(data), st.Stats().PhysicalReads)
	t0 = time.Now()
	s, _, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("decode: %v (entries=%d)", time.Since(t0), s.Entries())

	// Cold: rebuild pieces
	st = open()
	db3, _ := rel.OpenDB(st, 1)
	tab3, _ := db3.Table("sv")
	t0 = time.Now()
	var lows, highs, ids []int64
	tab3.Scan(func(rid rel.RowID, row []int64) bool {
		lows = append(lows, row[0])
		highs = append(highs, row[1])
		ids = append(ids, int64(rid))
		return true
	})
	t.Logf("heap scan: %v (%d rows, %d phys reads)", time.Since(t0), len(lows), st.Stats().PhysicalReads)
	t0 = time.Now()
	ix, _ := NewSharded(Options{Bits: 22, Levels: 10, Shards: 1})
	ivs := make([]interval.Interval, len(lows))
	for i := range lows {
		ivs[i] = interval.New(lows[i], highs[i])
	}
	if err := ix.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	t.Logf("BulkLoad: %v", time.Since(t0))
}
