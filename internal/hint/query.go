package hint

import (
	"fmt"
	"slices"
	"sort"

	"ritree/internal/interval"
)

// IntersectingFunc streams the ids of all intervals intersecting q, each
// exactly once, in no particular order; return false from fn to stop
// early.
//
// Per level, with first/last relevant partitions f and t (the partitions
// of q's endpoints):
//
//   - partition f: originals and replicas, filtered on end >= q.lo —
//     the *Aft subdivisions skip even that comparison, since they
//     provably continue past the partition holding q.lo;
//   - partitions strictly between f and t: originals, comparison-free
//     (they begin inside a partition fully covered by q);
//   - partition t (if t > f): originals, filtered on start <= q.hi.
//
// Replicas outside partition f are never reported: their original copy
// is reported elsewhere.
//
// Each consulted partition is a bitmap probe first (dead partitions cost
// no memory touch), then up to two sorted runs per subdivision: the flat
// segment built by Optimize and the dynamic overlay bucket. Sorted
// subdivisions turn the start <= q.hi filters into a binary-searched
// prefix and the replica end >= q.lo filters into a binary-searched
// suffix, both emitted comparison-free; the only per-entry comparisons
// left are the end checks on partition f's originals (which are sorted
// by start, the key partition t needs from them — the paper's one
// unresolvable sort-order conflict). In the comparison-free
// configuration every relevant subdivision is emitted without any
// comparisons.
func (x *Index) IntersectingFunc(q interval.Interval, fn func(id int64) bool) error {
	return x.intersectingEntries(q, func(e entry) bool { return fn(e.id) })
}

// IntersectingEntryFunc is IntersectingFunc with access to the stored
// interval's true endpoints — the hook Allen-relation queries use to apply
// their residual predicate without a base-table lookup.
func (x *Index) IntersectingEntryFunc(q interval.Interval, fn func(iv interval.Interval, id int64) bool) error {
	return x.intersectingEntries(q, func(e entry) bool {
		return fn(interval.New(e.lo, e.hi), e.id)
	})
}

// intersectingEntries is the shared streaming core behind the public
// query functions; fn receives each qualifying stored copy exactly once.
func (x *Index) intersectingEntries(q interval.Interval, fn func(e entry) bool) error {
	if !q.Valid() {
		return fmt.Errorf("hint: invalid query %v", q)
	}
	qlo := x.clamp(q.Lower)
	qhi := x.clamp(q.Upper)
	// Comparison-free evaluation and the per-level partition-alignment
	// shortcuts below justify skipped comparisons from partition
	// geometry against the query bound — which is only the true bound
	// when clamping did not move it. A clamped endpoint (out-of-domain
	// query) therefore falls back to comparisons on that side.
	loExact := qlo == q.Lower
	hiExact := qhi == q.Upper
	cmpFree := x.cmpFree && loExact && hiExact
	sorted := !x.noSort

	// Metrics are tallied in plain locals through the scan and flushed
	// once at the end (flush on a nil met is a no-op). An early-stopped
	// scan counts the partitions it never reached as skipped: they were
	// relevant but not consulted.
	var tally queryTally
	if x.met != nil {
		defer x.met.flush(&tally)
	}

	emit := func(s []entry) bool {
		for i := range s {
			if !fn(s[i]) {
				return false
			}
		}
		return true
	}
	// end >= bound with per-entry comparisons: the path for partition
	// f's originals (sorted by start, so their ends have no order to
	// exploit) and for every subdivision in the unsorted ablation.
	scanEndGE := func(s []entry, bound int64) bool {
		for i := range s {
			if s[i].hi >= bound && !fn(s[i]) {
				return false
			}
		}
		return true
	}
	// end >= bound over a subdivision sorted by end: binary search to the
	// qualifying suffix, emit it comparison-free.
	emitEndGE := func(s []entry, bound int64) bool {
		if sorted {
			i := sort.Search(len(s), func(i int) bool { return s[i].hi >= bound })
			return emit(s[i:])
		}
		return scanEndGE(s, bound)
	}
	// start <= bound over a subdivision sorted by start: binary search to
	// the qualifying prefix.
	emitStartLE := func(s []entry, bound int64) bool {
		if sorted {
			n := sort.Search(len(s), func(i int) bool { return s[i].lo > bound })
			return emit(s[:n])
		}
		for i := range s {
			if s[i].lo <= bound && !fn(s[i]) {
				return false
			}
		}
		return true
	}
	// Both filters at once (the f == t originals-in case): narrow to the
	// start <= q.hi prefix by binary search, then compare ends inside it.
	emitBoth := func(s []entry, skipStart, skipEnd bool) bool {
		if skipStart && skipEnd {
			return emit(s)
		}
		if skipStart {
			return scanEndGE(s, q.Lower)
		}
		if sorted {
			n := sort.Search(len(s), func(i int) bool { return s[i].lo > q.Upper })
			if skipEnd {
				return emit(s[:n])
			}
			return scanEndGE(s[:n], q.Lower)
		}
		for i := range s {
			if s[i].lo <= q.Upper && (skipEnd || s[i].hi >= q.Lower) && !fn(s[i]) {
				return false
			}
		}
		return true
	}

	f := qlo >> x.shift
	t := qhi >> x.shift
	for l := x.m; l >= 0; l-- {
		parts := x.levels[l]
		var fl *flatLevel
		if x.flat != nil {
			fl = &x.flat[l]
		}
		// runs yields the two storage runs of (partition idx, class c):
		// the flat segment and the overlay bucket, each sorted.
		runs := func(idx int64, c int) (flatSeg, dyn []entry) {
			if fl != nil {
				flatSeg = fl.subs[c].seg(idx)
			}
			if p := parts[idx]; p != nil {
				dyn = p.subs[c]
			}
			if len(flatSeg) > 0 {
				tally.flatRuns++
			}
			if len(dyn) > 0 {
				tally.overlayRuns++
			}
			return flatSeg, dyn
		}
		both := func(idx int64, c int, e func(s []entry) bool) bool {
			a, b := runs(idx, c)
			return e(a) && e(b)
		}
		span := uint(x.bits - l) // log2 of the partition width at level l
		if f == t {
			if x.hasAny(l, f) {
				tally.visited++
				// q lies inside a single partition: originals need the
				// comparisons their subdivision cannot rule out, replicas
				// start before the partition (hence before q.hi) for free.
				skipEnd := cmpFree || (loExact && f<<span == qlo)
				skipStart := cmpFree || (hiExact && (f+1)<<span-1 == qhi)
				if !both(f, cOIn, func(s []entry) bool { return emitBoth(s, skipStart, skipEnd) }) {
					return nil
				}
				if skipStart {
					if !both(f, cOAft, emit) {
						return nil
					}
				} else if !both(f, cOAft, func(s []entry) bool { return emitStartLE(s, q.Upper) }) {
					return nil
				}
				if skipEnd {
					if !both(f, cRIn, emit) {
						return nil
					}
				} else if !both(f, cRIn, func(s []entry) bool { return emitEndGE(s, q.Lower) }) {
					return nil
				}
				if !both(f, cRAft, emit) {
					return nil
				}
			} else {
				tally.skipped++
			}
		} else {
			if x.hasAny(l, f) {
				tally.visited++
				skipEnd := cmpFree || (loExact && f<<span == qlo)
				if skipEnd {
					if !both(f, cOIn, emit) || !both(f, cRIn, emit) {
						return nil
					}
				} else if !both(f, cOIn, func(s []entry) bool { return scanEndGE(s, q.Lower) }) ||
					!both(f, cRIn, func(s []entry) bool { return emitEndGE(s, q.Lower) }) {
					return nil
				}
				if !both(f, cOAft, emit) || !both(f, cRAft, emit) {
					return nil
				}
			} else {
				tally.skipped++
			}
			nmid := t - f - 1
			ok := x.forNonempty(l, f+1, t-1, func(i int64) bool {
				tally.visited++
				nmid--
				return both(i, cOIn, emit) && both(i, cOAft, emit)
			})
			tally.skipped += nmid
			if !ok {
				return nil
			}
			if x.hasAny(l, t) {
				tally.visited++
				skipStart := cmpFree || (hiExact && (t+1)<<span-1 == qhi)
				if skipStart {
					if !both(t, cOIn, emit) || !both(t, cOAft, emit) {
						return nil
					}
				} else if !both(t, cOIn, func(s []entry) bool { return emitStartLE(s, q.Upper) }) ||
					!both(t, cOAft, func(s []entry) bool { return emitStartLE(s, q.Upper) }) {
					return nil
				}
			} else {
				tally.skipped++
			}
		}
		f >>= 1
		t >>= 1
	}
	return nil
}

// QueryRelationFunc streams the id of every stored interval i for which
// the Allen relation "i r q" holds, in no particular order; return false
// from fn to stop early. Evaluation follows the RI-tree paper's §4.5
// strategy, shared across access methods: run the generating intersection
// query of the predicate (interval.GeneratingRegion), then apply the exact
// relation as a residual filter on the candidates' true endpoints. HINT
// stores those endpoints in its entries, so no base-table lookup is
// needed; stored infinite uppers keep the +∞ sentinel, which compares
// greater than any finite bound, giving the natural semantics.
func (x *Index) QueryRelationFunc(r interval.Relation, q interval.Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("hint: invalid query %v", q)
	}
	region, ok := interval.GeneratingRegion(r, q)
	if !ok {
		return nil
	}
	return x.intersectingEntries(region, func(e entry) bool {
		if r.Holds(interval.New(e.lo, e.hi), q) {
			return fn(e.id)
		}
		return true
	})
}

// QueryRelation returns the ids of all stored intervals i with "i r q",
// sorted ascending.
func (x *Index) QueryRelation(r interval.Relation, q interval.Interval) ([]int64, error) {
	var ids []int64
	err := x.QueryRelationFunc(r, q, func(id int64) bool { ids = append(ids, id); return true })
	if err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}
