package hint

import (
	"math/rand"
	"reflect"
	"testing"

	"ritree/internal/interval"
	"ritree/internal/obs"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

// --- format-level round trip ---

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shards := range []int{1, 4} {
		s, err := NewSharded(Options{Bits: 12, Levels: 6, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		n := 5000
		ivs := make([]interval.Interval, n)
		ids := make([]int64, n)
		for i := range ivs {
			lo := rng.Int63n(3000)
			ivs[i] = interval.New(lo, lo+rng.Int63n(200))
			ids[i] = int64(i)
		}
		if err := s.BulkLoad(ivs, ids); err != nil {
			t.Fatal(err)
		}
		// A few deletes so the flat arrays carry dead capacity (seg != ents).
		for i := 0; i < 100; i++ {
			if ok, err := s.Delete(ivs[i], ids[i]); err != nil || !ok {
				t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
			}
		}
		data, ok := encodeSnapshot(s, -37, 4900, 0xabcdef)
		if !ok {
			t.Fatal("encodeSnapshot refused an optimized index")
		}
		got, info, err := decodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		if info.bits != 12 || info.m != 6 || info.shards != shards ||
			info.off != -37 || info.tableRows != 4900 || info.tableChk != 0xabcdef {
			t.Fatalf("info = %+v", info)
		}
		if got.Count() != s.Count() || got.Entries() != s.Entries() || got.Replicas() != s.Replicas() {
			t.Fatalf("counters: got (%d,%d,%d), want (%d,%d,%d)",
				got.Count(), got.Entries(), got.Replicas(), s.Count(), s.Entries(), s.Replicas())
		}
		for trial := 0; trial < 50; trial++ {
			qlo := rng.Int63n(3200)
			q := interval.New(qlo, qlo+rng.Int63n(300))
			a, err1 := s.Intersecting(q)
			b, err2 := got.Intersecting(q)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("shards=%d query %v: original %d ids, decoded %d ids", shards, q, len(a), len(b))
			}
		}
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	s, _ := NewSharded(Options{Bits: 10, Levels: 5, Shards: 2})
	ivs := []interval.Interval{interval.New(1, 5), interval.New(100, 300), interval.New(2, 900)}
	if err := s.BulkLoad(ivs, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, ok := encodeSnapshot(s, 0, 3, 42)
	if !ok {
		t.Fatal("encode refused")
	}
	if _, _, err := decodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Every single-byte flip must be caught by the CRC.
	for _, pos := range []int{0, 5, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, _, err := decodeSnapshot(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	// Truncations at any point must be rejected too.
	for _, cut := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		if _, _, err := decodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// --- indextype-level attach paths ---

// snapEnv is one engine session over a shared relational database, with
// its own metrics registry.
type snapEnv struct {
	e   *sqldb.Engine
	reg *obs.Registry
}

func newSnapDB(t *testing.T) *rel.DB {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 512})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func newSnapEnv(t *testing.T, db *rel.DB, attach bool) *snapEnv {
	t.Helper()
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	RegisterShardedIndexType(e, 4)
	reg := obs.NewRegistry()
	e.SetMetricsRegistry(reg)
	if attach {
		if err := e.AttachCatalogIndexes(); err != nil {
			t.Fatal(err)
		}
	}
	return &snapEnv{e: e, reg: reg}
}

func (v *snapEnv) insertRange(t *testing.T, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		v.e.MustExec("INSERT INTO ev VALUES (:lo, :hi, :id)",
			map[string]interface{}{"lo": i * 3, "hi": i*3 + 10, "id": i})
	}
}

func (v *snapEnv) queryIDs(t *testing.T, lo, hi int) []interface{} {
	t.Helper()
	r := v.e.MustExec("SELECT id FROM ev WHERE intersects(lo, hi, :a, :b) ORDER BY id",
		map[string]interface{}{"a": lo, "b": hi})
	ids := make([]interface{}, len(r.Rows))
	for i, row := range r.Rows {
		ids[i] = row[0]
	}
	return ids
}

// parity asserts that got answers the same queries as a snapshot-free
// rebuild session over the same database.
func snapParity(t *testing.T, db *rel.DB, got *snapEnv) {
	t.Helper()
	ref := sqldb.NewEngine(db)
	RegisterIndexType(ref)
	RegisterShardedIndexType(ref, 4)
	ref.SetIndexSnapshotsEnabled(false)
	if err := ref.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	refEnv := &snapEnv{e: ref}
	for _, q := range [][2]int{{0, 50}, {100, 130}, {0, 100000}, {299, 299}, {-50, -1}} {
		want := refEnv.queryIDs(t, q[0], q[1])
		have := got.queryIDs(t, q[0], q[1])
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("query [%d,%d]: snapshot path %v, rebuild path %v", q[0], q[1], have, want)
		}
	}
}

func snapIndexSQL(method string) string {
	return "CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS " + method
}

func TestSnapshotAttachServesQueries(t *testing.T) {
	for _, method := range []string{IndexTypeName, ShardedIndexTypeName} {
		t.Run(method, func(t *testing.T) {
			db := newSnapDB(t)
			a := newSnapEnv(t, db, false)
			a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
			a.e.MustExec(snapIndexSQL(method), nil)
			a.insertRange(t, 0, 400)
			if err := a.e.PersistIndexSnapshots(); err != nil {
				t.Fatal(err)
			}
			if c := a.reg.Snapshot().Counter("index.ev_iv.snapshot.persists"); c != 1 {
				t.Fatalf("persists = %d, want 1", c)
			}

			b := newSnapEnv(t, db, true)
			m := b.reg.Snapshot()
			if c := m.Counter("index.ev_iv.snapshot.loads"); c != 1 {
				t.Fatalf("loads = %d, want 1 (counters: %v)", c, m.CounterNames())
			}
			if c := m.Counter("index.ev_iv.snapshot.rebuild_fallbacks"); c != 0 {
				t.Fatalf("rebuild_fallbacks = %d, want 0", c)
			}
			if c := m.Counter("index.ev_iv.snapshot.tail_rows"); c != 0 {
				t.Fatalf("tail_rows = %d, want 0", c)
			}
			if m.Counter("index.ev_iv.snapshot.bytes") == 0 {
				t.Fatal("snapshot.bytes = 0 after a load")
			}
			snapParity(t, db, b)
		})
	}
}

func TestSnapshotStaleTailReplay(t *testing.T) {
	for _, method := range []string{IndexTypeName, ShardedIndexTypeName} {
		t.Run(method, func(t *testing.T) {
			db := newSnapDB(t)
			a := newSnapEnv(t, db, false)
			a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
			a.e.MustExec(snapIndexSQL(method), nil)
			a.insertRange(t, 0, 300)
			if err := a.e.PersistIndexSnapshots(); err != nil {
				t.Fatal(err)
			}
			// Rows written after the snapshot live only in the heap: the next
			// attach must replay them on top of the loaded snapshot.
			a.insertRange(t, 300, 380)

			b := newSnapEnv(t, db, true)
			m := b.reg.Snapshot()
			if c := m.Counter("index.ev_iv.snapshot.loads"); c != 1 {
				t.Fatalf("loads = %d, want 1", c)
			}
			if c := m.Counter("index.ev_iv.snapshot.tail_rows"); c != 80 {
				t.Fatalf("tail_rows = %d, want 80", c)
			}
			snapParity(t, db, b)

			// The tail rows must actually be served.
			got := b.queryIDs(t, 350*3, 350*3)
			if len(got) == 0 {
				t.Fatal("tail row not visible through the snapshot attach")
			}
		})
	}
}

func TestSnapshotDeletedRowForcesRebuild(t *testing.T) {
	for _, method := range []string{IndexTypeName, ShardedIndexTypeName} {
		t.Run(method, func(t *testing.T) {
			db := newSnapDB(t)
			a := newSnapEnv(t, db, false)
			a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
			a.e.MustExec(snapIndexSQL(method), nil)
			a.insertRange(t, 0, 200)
			if err := a.e.PersistIndexSnapshots(); err != nil {
				t.Fatal(err)
			}
			// Deleting a snapshotted row cannot be replayed (the snapshot
			// holds its replicas); the attach must fall back to a rebuild —
			// and still answer correctly.
			a.e.MustExec("DELETE FROM ev WHERE id = 50", nil)
			a.insertRange(t, 200, 210)

			b := newSnapEnv(t, db, true)
			m := b.reg.Snapshot()
			if c := m.Counter("index.ev_iv.snapshot.rebuild_fallbacks"); c != 1 {
				t.Fatalf("rebuild_fallbacks = %d, want 1", c)
			}
			if c := m.Counter("index.ev_iv.snapshot.loads"); c != 0 {
				t.Fatalf("loads = %d, want 0", c)
			}
			if got := b.queryIDs(t, 150, 150); len(got) != 0 {
				// id 50 covered [150, 160]; nothing else covers 150 except
				// neighbours — just assert the deleted id is absent.
				for _, id := range got {
					if id == int64(50) {
						t.Fatal("deleted row served after snapshot attach")
					}
				}
			}
			snapParity(t, db, b)
		})
	}
}

func TestSnapshotCorruptionFallsBack(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"bitflip":  func(d []byte) []byte { d = append([]byte(nil), d...); d[len(d)/2] ^= 0x01; return d },
		"truncate": func(d []byte) []byte { return d[:len(d)/3] },
		"empty":    func(d []byte) []byte { return nil },
	}
	for name, hurt := range damage {
		t.Run(name, func(t *testing.T) {
			db := newSnapDB(t)
			a := newSnapEnv(t, db, false)
			a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
			a.e.MustExec(snapIndexSQL(IndexTypeName), nil)
			a.insertRange(t, 0, 250)
			if err := a.e.PersistIndexSnapshots(); err != nil {
				t.Fatal(err)
			}
			data, found, err := db.GetBlob("hintsnap.ev_iv")
			if err != nil || !found {
				t.Fatalf("snapshot blob missing: found=%v err=%v", found, err)
			}
			if err := db.PutBlob("hintsnap.ev_iv", hurt(data)); err != nil {
				t.Fatal(err)
			}

			b := newSnapEnv(t, db, true)
			m := b.reg.Snapshot()
			if c := m.Counter("index.ev_iv.snapshot.rebuild_fallbacks"); c != 1 {
				t.Fatalf("rebuild_fallbacks = %d, want 1", c)
			}
			if c := m.Counter("index.ev_iv.snapshot.loads"); c != 0 {
				t.Fatalf("loads = %d, want 0", c)
			}
			snapParity(t, db, b)
		})
	}
}

func TestSnapshotGeometryMismatchFallsBack(t *testing.T) {
	// A snapshot persisted under one shard fan-out must not be adopted by
	// a session whose indextype was registered with a different one.
	db := newSnapDB(t)
	a := newSnapEnv(t, db, false) // hint_sharded registered with 4 shards
	a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	a.e.MustExec(snapIndexSQL(ShardedIndexTypeName), nil)
	a.insertRange(t, 0, 100)
	if err := a.e.PersistIndexSnapshots(); err != nil {
		t.Fatal(err)
	}

	b := sqldb.NewEngine(db)
	RegisterIndexType(b)
	RegisterShardedIndexType(b, 2) // different fan-out
	reg := obs.NewRegistry()
	b.SetMetricsRegistry(reg)
	if err := b.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	m := reg.Snapshot()
	if c := m.Counter("index.ev_iv.snapshot.rebuild_fallbacks"); c != 1 {
		t.Fatalf("rebuild_fallbacks = %d, want 1", c)
	}
	snapParity(t, db, &snapEnv{e: b})
}

func TestSnapshotDisabledNeverTouchesBlobs(t *testing.T) {
	db := newSnapDB(t)
	a := newSnapEnv(t, db, false)
	a.e.SetIndexSnapshotsEnabled(false)
	a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	a.e.MustExec(snapIndexSQL(IndexTypeName), nil)
	a.insertRange(t, 0, 50)
	if err := a.e.PersistIndexSnapshots(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.GetBlob("hintsnap.ev_iv"); found {
		t.Fatal("disabled engine persisted a snapshot")
	}
	// And a disabled attach ignores one persisted by an enabled session.
	a.e.SetIndexSnapshotsEnabled(true)
	if err := a.e.PersistIndexSnapshots(); err != nil {
		t.Fatal(err)
	}
	b := sqldb.NewEngine(db)
	RegisterIndexType(b)
	RegisterShardedIndexType(b, 4)
	b.SetIndexSnapshotsEnabled(false)
	reg := obs.NewRegistry()
	b.SetMetricsRegistry(reg)
	if err := b.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	if c := reg.Snapshot().Counter("index.ev_iv.snapshot.loads"); c != 0 {
		t.Fatalf("disabled attach loaded a snapshot (loads = %d)", c)
	}
	snapParity(t, db, &snapEnv{e: b})
}

func TestSnapshotDropIndexRemovesBlob(t *testing.T) {
	db := newSnapDB(t)
	a := newSnapEnv(t, db, false)
	a.e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	a.e.MustExec(snapIndexSQL(IndexTypeName), nil)
	a.insertRange(t, 0, 20)
	if err := a.e.PersistIndexSnapshots(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.GetBlob("hintsnap.ev_iv"); !found {
		t.Fatal("persist wrote no blob")
	}
	a.e.MustExec("DROP INDEX ev_iv", nil)
	if _, found, _ := db.GetBlob("hintsnap.ev_iv"); found {
		t.Fatal("DROP INDEX left the snapshot blob behind")
	}
}
