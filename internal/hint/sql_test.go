package hint

import (
	"strings"
	"testing"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

func TestIndexTypeEndToEnd(t *testing.T) {
	// §5 path with HINT as the access method: CREATE INDEX ... INDEXTYPE
	// IS hint, trigger-maintained, with INTERSECTS and CONTAINS_POINT
	// rewritten to main-memory HINT scans.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)

	e.MustExec("CREATE TABLE reservations (room int, arrival int, departure int)", nil)
	// Pre-populate some rows, then create the domain index (backfill).
	for i := 0; i < 50; i++ {
		e.MustExec("INSERT INTO reservations VALUES (:r, :a, :d)",
			map[string]interface{}{"r": i, "a": i * 10, "d": i*10 + 15})
	}
	e.MustExec("CREATE INDEX resv_iv ON reservations (arrival, departure) INDEXTYPE IS hint", nil)
	// Insert more rows after: trigger maintenance.
	for i := 50; i < 100; i++ {
		e.MustExec("INSERT INTO reservations VALUES (:r, :a, :d)",
			map[string]interface{}{"r": i, "a": i * 10, "d": i*10 + 15})
	}

	// The INTERSECTS operator must be served by the domain index.
	r := e.MustExec("EXPLAIN SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi)",
		map[string]interface{}{"lo": 100, "hi": 130})
	if !strings.Contains(r.Plan, "DOMAIN INDEX RESV_IV (INTERSECTS)") {
		t.Fatalf("plan = %s", r.Plan)
	}

	r = e.MustExec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi) ORDER BY room",
		map[string]interface{}{"lo": 100, "hi": 130})
	// Rooms with [10i, 10i+15] intersecting [100, 130]: i in {9,...,13}.
	if len(r.Rows) != 5 || r.Rows[0][0] != 9 || r.Rows[4][0] != 13 {
		t.Fatalf("rows = %v", r.Rows)
	}

	// Stabbing operator.
	r = e.MustExec("SELECT room FROM reservations WHERE contains_point(arrival, departure, :p) ORDER BY room",
		map[string]interface{}{"p": 555})
	if len(r.Rows) != 2 || r.Rows[0][0] != 54 || r.Rows[1][0] != 55 {
		t.Fatalf("rows = %v", r.Rows)
	}

	// Deletes maintain the domain index.
	e.MustExec("DELETE FROM reservations WHERE room = 10", nil)
	r = e.MustExec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi) ORDER BY room",
		map[string]interface{}{"lo": 100, "hi": 130})
	if len(r.Rows) != 4 {
		t.Fatalf("after delete rows = %v", r.Rows)
	}

	// Extra predicates compose with the domain index scan.
	r = e.MustExec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi) AND room > 11 ORDER BY room",
		map[string]interface{}{"lo": 100, "hi": 130})
	if len(r.Rows) != 2 || r.Rows[0][0] != 12 {
		t.Fatalf("rows = %v", r.Rows)
	}

	// DROP INDEX releases the main-memory structure.
	e.MustExec("DROP INDEX resv_iv", nil)
	if _, err := e.Exec("SELECT room FROM reservations WHERE intersects(arrival, departure, :lo, :hi)",
		map[string]interface{}{"lo": 0, "hi": 1}); err == nil {
		t.Fatal("operator still served after DROP INDEX")
	}
}

func TestIndexTypeAttachRebuilds(t *testing.T) {
	// HINT is main-memory: a fresh session over the same database
	// rebuilds the index from the base table via AttachIndexType.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE ev (lo int, hi int, id int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS hint", nil)
	e.MustExec("INSERT INTO ev VALUES (10, 20, 1)", nil)
	e.MustExec("INSERT INTO ev VALUES (30, 40, 2)", nil)

	e2 := sqldb.NewEngine(db)
	RegisterIndexType(e2)
	if err := AttachIndexType(e2, "ev_iv", "ev", []string{"lo", "hi"}); err != nil {
		t.Fatal(err)
	}
	r := e2.MustExec("SELECT id FROM ev WHERE intersects(lo, hi, :a, :b)",
		map[string]interface{}{"a": 15, "b": 15})
	if len(r.Rows) != 1 || r.Rows[0][0] != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = e2.MustExec("SELECT id FROM ev WHERE contains_point(lo, hi, :p)",
		map[string]interface{}{"p": 35})
	if len(r.Rows) != 1 || r.Rows[0][0] != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestIndexTypeAdaptiveDomain(t *testing.T) {
	// The indextype sizes its domain to the data: negative bounds and
	// values far beyond the paper's [0, 2^20-1] space (timestamps) must
	// index and query transparently, growing the geometry as rows arrive.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE ev (id int, lo int, hi int)", nil)
	e.MustExec("CREATE INDEX ev_iv ON ev (lo, hi) INDEXTYPE IS hint", nil)

	base := int64(1700000000) // unix-epoch scale, >> 2^20
	rows := [][3]int64{
		{1, base, base + 3600},
		{2, base + 1800, base + 7200},
		{3, -5000, -100}, // negative bounds
		{4, 0, 10},
		{5, base + 10000, 1<<62 + 5}, // far-tail upper saturates
	}
	for _, r := range rows {
		e.MustExec("INSERT INTO ev VALUES (:i, :l, :h)",
			map[string]interface{}{"i": r[0], "l": r[1], "h": r[2]})
	}
	check := func(qlo, qhi int64, want ...int64) {
		t.Helper()
		r := e.MustExec("SELECT id FROM ev WHERE intersects(lo, hi, :a, :b) ORDER BY id",
			map[string]interface{}{"a": qlo, "b": qhi})
		if len(r.Rows) != len(want) {
			t.Fatalf("query [%d,%d]: rows = %v, want ids %v", qlo, qhi, r.Rows, want)
		}
		for i := range want {
			if r.Rows[i][0] != want[i] {
				t.Fatalf("query [%d,%d]: rows = %v, want ids %v", qlo, qhi, r.Rows, want)
			}
		}
	}
	check(base+1000, base+2000, 1, 2)
	check(-200, 5, 3, 4)
	check(base+100000, base+100001, 5)
	check(-100000000, 1<<61, 1, 2, 3, 4, 5) // huge window saturates cleanly
	check(-7000, -6000)                     // empty region

	// Deletes still maintain the adapted index.
	e.MustExec("DELETE FROM ev WHERE id = 2", nil)
	check(base+1000, base+2000, 1)

	// Starts beyond the supported ±2^59 range fail the statement without
	// leaving the heap and the domain index divergent (statement-level
	// atomicity in the engine).
	if _, err := e.Exec("INSERT INTO ev VALUES (9, :l, :h)",
		map[string]interface{}{"l": int64(1) << 60, "h": int64(1)<<60 + 5}); err == nil {
		t.Fatal("start beyond ±2^59 accepted")
	}
	r := e.MustExec("SELECT id FROM ev WHERE id = 9", nil)
	if len(r.Rows) != 0 {
		t.Fatalf("rejected row persisted in the heap: %v", r.Rows)
	}
	// Now-relative rows (upper = NowMarker) are likewise rejected
	// atomically: the hint indextype has no §4.6 evaluation, and
	// indexing them as infinite would diverge from the ritree indextype.
	if _, err := e.Exec("INSERT INTO ev VALUES (10, 50, :h)",
		map[string]interface{}{"h": interval.NowMarker}); err == nil {
		t.Fatal("now-relative row accepted")
	}
	r = e.MustExec("SELECT id FROM ev WHERE id = 10", nil)
	if len(r.Rows) != 0 {
		t.Fatalf("rejected now-relative row persisted: %v", r.Rows)
	}
	// Inverted intervals are rejected up front (even when the start
	// would also have forced a geometry rebuild).
	if _, err := e.Exec("INSERT INTO ev VALUES (11, :l, :h)",
		map[string]interface{}{"l": int64(1) << 55, "h": 5}); err == nil {
		t.Fatal("inverted row accepted")
	}
	r = e.MustExec("SELECT id FROM ev WHERE id = 11", nil)
	if len(r.Rows) != 0 {
		t.Fatalf("rejected inverted row persisted: %v", r.Rows)
	}
	check(-100000000, 1<<61, 1, 3, 4, 5) // index still answers consistently
}

func TestIndexTypeAgreesWithRITreeThroughSQL(t *testing.T) {
	// The same table served by both indextypes must answer identically;
	// here HINT's SQL answers are checked against a plain predicate scan
	// on a second, unindexed engine.
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 256})
	db, _ := rel.CreateDB(st)
	e := sqldb.NewEngine(db)
	RegisterIndexType(e)
	e.MustExec("CREATE TABLE seg (id int, lo int, hi int)", nil)
	e.MustExec("CREATE INDEX seg_iv ON seg (lo, hi) INDEXTYPE IS hint", nil)
	for i := 0; i < 300; i++ {
		lo := (i * 37) % 5000
		e.MustExec("INSERT INTO seg VALUES (:i, :lo, :hi)",
			map[string]interface{}{"i": i, "lo": lo, "hi": lo + (i%11)*40})
	}
	for _, q := range [][2]int{{0, 100}, {990, 1010}, {2500, 2500}, {0, 5600}} {
		idx := e.MustExec("SELECT id FROM seg WHERE intersects(lo, hi, :a, :b) ORDER BY id",
			map[string]interface{}{"a": q[0], "b": q[1]})
		scan := e.MustExec("SELECT id FROM seg WHERE lo <= :b AND hi >= :a ORDER BY id",
			map[string]interface{}{"a": q[0], "b": q[1]})
		if len(idx.Rows) != len(scan.Rows) {
			t.Fatalf("query %v: index %d rows, scan %d rows", q, len(idx.Rows), len(scan.Rows))
		}
		for i := range idx.Rows {
			if idx.Rows[i][0] != scan.Rows[i][0] {
				t.Fatalf("query %v row %d: %d vs %d", q, i, idx.Rows[i][0], scan.Rows[i][0])
			}
		}
	}
}
