package hint

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"ritree/internal/interval"
	"ritree/internal/obs"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

// This file packages HINT as a user-defined indextype for the extensible
// indexing framework (RI-tree paper §5), exactly as internal/ritree does
// for the RI-tree: after
//
//	CREATE INDEX resv_iv ON Reservations (arrival, departure) INDEXTYPE IS hint
//
// the engine transparently maintains the main-memory HINT on every INSERT
// and DELETE against the base table and rewrites the INTERSECTS and
// CONTAINS_POINT operators into HINT scans.
//
// Where the core Index fixes its domain up front, the indextype adapts it
// to the table: column values are mapped into the index through an offset
// and a domain width sized to the data (so negative bounds and values far
// beyond the paper's [0, 2^20-1] data space — timestamps, say — work
// transparently), and when a new row falls outside the current geometry
// the in-memory index is rebuilt from the base table with a wider one.
// Unlike the RI-tree's hidden relations, HINT's storage lives outside the
// page store — it is a main-memory access method — so a session over a
// reopened database re-attaches it by rebuilding from the base table.
// Custom-index definitions persist in the relational catalog, so
// sqldb.Engine.AttachCatalogIndexes performs that rebuild automatically on
// reopen; embedding callers managing definitions themselves can still use
// AttachIndexType directly.

// OperatorIntersects is the SQL operator name served by the indextype:
// INTERSECTS(lowerCol, upperCol, :qlo, :qhi).
const OperatorIntersects = "intersects"

// OperatorContainsPoint is the stabbing operator:
// CONTAINS_POINT(lowerCol, upperCol, :p).
const OperatorContainsPoint = "contains_point"

// IndexTypeName is the name used in INDEXTYPE IS clauses.
const IndexTypeName = "hint"

// ShardedIndexTypeName is the indextype name of the sharded HINT variant:
// the same access method behind N independently locked shards with
// parallel per-shard query fan-out — the configuration for concurrent
// serving under the unified collection API.
const ShardedIndexTypeName = "hint_sharded"

// DefaultIndexShards is the shard count of hint_sharded when the caller
// passes none: enough to spread writer contention and parallelize query
// fan-out without taxing small queries on modest machines.
func DefaultIndexShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}

// maxAbsBound bounds the interval starts the indextype can place exactly:
// |lower| <= 2^59. Upper bounds beyond it (including interval.Infinity)
// saturate — they lie past every admissible start, so their exact
// magnitude never matters to an intersection test. The lone exception is
// interval.NowMarker, whose meaning is not a magnitude at all: it is
// rejected (see checkRow) because HINT has no §4.6 now-relative
// evaluation and treating it as infinite would silently diverge from the
// ritree indextype on the same table.
const maxAbsBound = int64(1) << 59

// RegisterIndexType makes "INDEXTYPE IS hint" available on the engine.
// Create and attach share one implementation: HINT is main-memory, so
// both build the index by scanning the base table — exactly the rebuild
// strategy its package docs prescribe for reopened databases.
func RegisterIndexType(e *sqldb.Engine) {
	registerIndexType(e, IndexTypeName, 1)
}

// RegisterShardedIndexType makes "INDEXTYPE IS hint_sharded" available on
// the engine: HINT split into shards independently locked shards with
// parallel per-shard query fan-out. shards <= 0 picks
// DefaultIndexShards().
func RegisterShardedIndexType(e *sqldb.Engine, shards int) {
	if shards <= 0 {
		shards = DefaultIndexShards()
	}
	registerIndexType(e, ShardedIndexTypeName, shards)
}

func registerIndexType(e *sqldb.Engine, name string, shards int) {
	build := func(eng *sqldb.Engine, indexName, table string, cols []string, params map[string]string) (sqldb.CustomIndex, error) {
		return newIndexType(eng, indexName, table, cols, shards, params)
	}
	e.RegisterIndexType(name, sqldb.IndexTypeFuncs{
		Create: build,
		Attach: build,
		// The only persisted storage is the snapshot blob; dropping an
		// unattached definition just releases that (DeleteBlob tolerates a
		// missing one).
		DropStorage: func(e *sqldb.Engine, indexName, table string, cols []string) error {
			return e.DB().DeleteBlob(snapshotBlobName(indexName))
		},
	})
}

// snapshotBlobName is the rel blob key under which an index's persisted
// snapshot lives (index names are folded like the engine folds
// identifiers).
func snapshotBlobName(indexName string) string {
	return "hintsnap." + strings.ToLower(indexName)
}

// hintParams are the tunable knobs of the hint / hint_sharded
// indextypes, set per index (per collection) through the SQL PARAMETERS
// / WITH clause or the public WithHINTParams collection option, and
// persisted in the catalog so a reopened database rebuilds with the same
// configuration.
type hintParams struct {
	minBits int // lower bound on the domain width (0: size to the data)
	levels  int // m, the hierarchy depth (0: DefaultLevels)
	shards  int // shard count override (0: the indextype's default)
}

// parseHintParams validates the parameter map. Unknown keys are errors:
// a silently ignored typo would build an index with the wrong geometry.
func parseHintParams(params map[string]string) (hintParams, error) {
	var hp hintParams
	intIn := func(key, v string, lo, hi int) (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil || n < lo || n > hi {
			return 0, fmt.Errorf("hint indextype: parameter %s must be an integer in [%d, %d], got %q", key, lo, hi, v)
		}
		return n, nil
	}
	var err error
	for k, v := range params {
		switch k {
		case "bits":
			hp.minBits, err = intIn(k, v, 1, maxBits)
		case "levels":
			hp.levels, err = intIn(k, v, 1, maxLevels)
		case "shards":
			hp.shards, err = intIn(k, v, 1, 1024)
		default:
			err = fmt.Errorf("hint indextype: unknown parameter %q (supported: bits, levels, shards)", k)
		}
		if err != nil {
			return hp, err
		}
	}
	return hp, nil
}

// AttachIndexType rebuilds a hint domain index for a new session over an
// existing database. HINT is main-memory: nothing persists in the page
// store, so attaching re-scans the base table. Most callers should prefer
// sqldb.Engine.AttachCatalogIndexes, which re-attaches every persisted
// definition.
func AttachIndexType(e *sqldb.Engine, indexName, table string, cols []string) error {
	ci, err := newIndexType(e, indexName, table, cols, 1, nil)
	if err != nil {
		return err
	}
	return e.AttachCustomIndex(ci)
}

type indexType struct {
	name   string
	table  string
	cols   []string
	loPos  int
	hiPos  int
	shards int
	hp     hintParams
	tab    *rel.Table
	rdb    *rel.DB // owning database: snapshot blobs live here
	// mu protects the (off, ix) pair across trigger maintenance and
	// geometry rebuilds. Scans take it only long enough to grab the pair
	// (see view) and then run lock-free over the Sharded index's
	// atomically published generations — an open cursor never blocks a
	// concurrent insert or delete, not even a rebuild.
	mu  sync.RWMutex
	off int64 // indexed value = column value - off
	ix  *Sharded
	// Bound obs registry, remembered so geometry rebuilds (which replace
	// ix wholesale) re-attach the same counter family.
	reg       *obs.Registry
	regPrefix string
	// Snapshot-path accounting: snapMet holds the bound counters once
	// BindMetrics ran; snapPend accumulates events from before the binding
	// (attach happens first) and is flushed into the counters by it. Both
	// guarded by mu.
	snapMet  *snapMetrics
	snapPend snapTally
}

func newIndexType(e *sqldb.Engine, indexName, table string, cols []string, shards int, params map[string]string) (*indexType, error) {
	if len(cols) != 2 {
		return nil, fmt.Errorf("hint indextype needs exactly (lower, upper) columns, got %d", len(cols))
	}
	hp, err := parseHintParams(params)
	if err != nil {
		return nil, err
	}
	if hp.shards > 0 {
		shards = hp.shards
	}
	tab, err := e.DB().Table(table)
	if err != nil {
		return nil, err
	}
	lo := tab.Schema().ColIndex(cols[0])
	hi := tab.Schema().ColIndex(cols[1])
	if lo < 0 || hi < 0 {
		return nil, fmt.Errorf("hint indextype: columns %v not in %s", cols, table)
	}
	ix := &indexType{
		name:   indexName,
		table:  table,
		cols:   append([]string(nil), cols...),
		loPos:  lo,
		hiPos:  hi,
		shards: shards,
		hp:     hp,
		tab:    tab,
		rdb:    e.DB(),
	}
	// The fast attach path: adopt a persisted snapshot (plus a heap-tail
	// replay when the table moved on) instead of rebuilding. Any doubt
	// about the snapshot falls through to the rebuild below — the
	// snapshot is an optimization, never an authority.
	if e.IndexSnapshotsEnabled() && ix.tryLoadSnapshot() {
		return ix, nil
	}
	// Backfill from existing rows, sizing the domain to the data.
	if err := ix.rebuild(); err != nil {
		return nil, err
	}
	return ix, nil
}

// geometry picks a domain offset and width covering [minLo, maxLo] with
// headroom on both sides, so ordinary growth does not force rebuilds.
// minBits raises the floor on the width (the per-collection "bits"
// parameter); 0 means the default.
func geometry(minLo, maxLo int64, minBits int) (off int64, bits int) {
	width := maxLo - minLo + 1 // >= 1; inputs are within ±2^59
	bits = DefaultBits
	if minBits > 0 {
		bits = minBits
	}
	for bits < maxBits && (int64(1)<<uint(bits))/4 < width {
		bits++
	}
	// A quarter of the domain below the smallest start, at least half
	// above the largest.
	off = minLo - (int64(1)<<uint(bits))/4
	return off, bits
}

// sat collapses the far tails where exact magnitudes cannot matter: every
// admissible interval start is within ±2^59, so any endpoint beyond that
// compares identically against all of them. The clamp keeps the later
// offset subtraction overflow-free and is monotone, so comparisons between
// stored ends and query bounds stay consistent.
func sat(v int64) int64 {
	if v > maxAbsBound {
		return maxAbsBound + 1
	}
	if v < -maxAbsBound {
		return -maxAbsBound - 1
	}
	return v
}

// shiftIv maps a row's (lower, upper) into the index's coordinate space.
// The lower must already be validated within ±2^59; the upper saturates.
func (x *indexType) shiftIv(lo, hi int64) interval.Interval {
	return interval.New(lo-x.off, sat(hi)-x.off)
}

func checkRow(lo, hi int64) error {
	if lo > hi {
		return fmt.Errorf("hint indextype: inverted interval [%d, %d]", lo, hi)
	}
	if lo < -maxAbsBound || lo > maxAbsBound {
		return fmt.Errorf("hint indextype: interval start %d outside the supported range ±2^59", lo)
	}
	if hi == interval.NowMarker {
		return fmt.Errorf("hint indextype: now-relative intervals (upper = now marker) are not supported; use the ritree indextype")
	}
	return nil
}

// fits reports whether a row's lower lands inside the current domain.
func (x *indexType) fits(lo int64) bool {
	s := lo - x.off
	return s >= 0 && s <= x.ix.DomainMax()
}

// rebuild re-derives the geometry from the base table and reloads the
// in-memory index into its optimized flat layout. Called at CREATE
// INDEX / attach time and whenever a new row falls outside the current
// domain; callers hold the write lock (or the index is not yet
// published).
func (x *indexType) rebuild() error {
	var lows, highs []int64
	var rids []rel.RowID
	minLo, maxLo := int64(0), int64(0)
	var scanErr error
	err := x.tab.Scan(func(rid rel.RowID, row []int64) bool {
		lo, hi := row[x.loPos], row[x.hiPos]
		if scanErr = checkRow(lo, hi); scanErr != nil {
			return false
		}
		if len(lows) == 0 || lo < minLo {
			minLo = lo
		}
		if len(lows) == 0 || lo > maxLo {
			maxLo = lo
		}
		lows = append(lows, lo)
		highs = append(highs, hi)
		rids = append(rids, rid)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return err
	}
	off, bits := geometry(minLo, maxLo, x.hp.minBits)
	levels := DefaultLevels
	if x.hp.levels > 0 {
		levels = x.hp.levels
	}
	if levels > bits {
		levels = bits
	}
	ix, err := NewSharded(Options{Bits: bits, Levels: levels, Shards: x.shards})
	if err != nil {
		return err
	}
	// Load into the fresh index before publishing it, so a mid-load
	// failure leaves the live index untouched rather than half-filled.
	// BulkLoad leaves the index in its flat cache-conscious layout.
	shifted := make([]interval.Interval, len(lows))
	ridIDs := make([]int64, len(lows))
	for i := range lows {
		shifted[i] = interval.New(lows[i]-off, sat(highs[i])-off)
		ridIDs[i] = int64(rids[i])
	}
	if err := ix.BulkLoad(shifted, ridIDs); err != nil {
		return err
	}
	if x.reg != nil {
		ix.SetMetrics(x.reg, x.regPrefix)
	}
	x.off, x.ix = off, ix
	return nil
}

// snapAddLocked folds snapshot-path events into the bound counters, or
// into the pending tally when no registry is bound yet (attach runs
// before BindMetrics). Callers hold ix.mu or own the not-yet-published
// index.
func (ix *indexType) snapAddLocked(t snapTally) {
	if ix.snapMet != nil {
		ix.snapMet.add(t)
		return
	}
	ix.snapPend.merge(t)
}

// tryLoadSnapshot attempts the snapshot attach path: decode the persisted
// blob, validate it against the configuration and the base table's
// content stamp, and install it — replaying any heap tail written after
// the snapshot into the sorted overlay. It reports false (after counting
// a rebuild fallback, unless there simply was no snapshot) whenever the
// snapshot cannot be trusted; the caller then rebuilds from the heap.
func (ix *indexType) tryLoadSnapshot() bool {
	data, found, err := ix.rdb.GetBlob(snapshotBlobName(ix.name))
	if !found {
		return false // nothing persisted: a plain rebuild, not a fallback
	}
	if err != nil {
		ix.snapAddLocked(snapTally{fallbacks: 1})
		return false
	}
	s, info, err := decodeSnapshot(data)
	if err != nil {
		ix.snapAddLocked(snapTally{fallbacks: 1})
		return false
	}
	// The snapshot must describe the index this configuration would build:
	// same shard fan-out, same level override, and a domain at least as
	// wide as the bits floor demands. Its exact bits may differ from what
	// a fresh rebuild would pick (the data moved since) — that is fine as
	// long as every current row still fits, which the tail replay checks.
	levels := DefaultLevels
	if ix.hp.levels > 0 {
		levels = ix.hp.levels
	}
	if levels > info.bits {
		levels = info.bits
	}
	if info.shards != ix.shards || info.m != levels || (ix.hp.minBits > 0 && info.bits < ix.hp.minBits) {
		ix.snapAddLocked(snapTally{fallbacks: 1})
		return false
	}
	var tail int64
	if ix.tab.RowCount() != info.tableRows || ix.tab.ContentChecksum() != info.tableChk {
		if tail, err = ix.replayTail(s, info); err != nil {
			ix.snapAddLocked(snapTally{fallbacks: 1})
			return false
		}
	}
	ix.off, ix.ix = info.off, s
	if ix.reg != nil {
		s.SetMetrics(ix.reg, ix.regPrefix)
	}
	ix.snapAddLocked(snapTally{loads: 1, bytes: int64(len(data)), tailRows: tail})
	return true
}

// replayTail reconciles a stale snapshot with the current heap: every
// snapshotted interval must survive in the heap unmodified (verified by
// membership and by re-deriving the snapshot's content checksum from the
// surviving rows), and every other heap row is a tail insert replayed
// into the sorted overlay. Deletes or in-place changes of snapshotted
// rows cannot be reconciled — the snapshot holds replicas the stream
// cannot cheaply retract — so they error and force the full rebuild.
func (ix *indexType) replayTail(s *Sharded, info snapshotInfo) (int64, error) {
	type iv struct{ lo, hi int64 }
	snap := make(map[int64]iv, info.tableRows)
	if !s.ScanStartOrdered(func(lo, hi, id int64) bool {
		snap[id] = iv{lo, hi}
		return true
	}) {
		return 0, fmt.Errorf("hint: snapshot layout is not scannable")
	}
	if int64(len(snap)) != info.tableRows {
		return 0, fmt.Errorf("hint: snapshot indexes %d rows, stamp says %d", len(snap), info.tableRows)
	}
	domMax := s.DomainMax()
	var newIvs []interval.Interval
	var newIDs []int64
	var seen int64
	var seenChk uint64
	var replayErr error
	err := ix.tab.Scan(func(rid rel.RowID, row []int64) bool {
		lo, hi := row[ix.loPos], row[ix.hiPos]
		if replayErr = checkRow(lo, hi); replayErr != nil {
			return false
		}
		shifted := lo - info.off
		if shifted < 0 || shifted > domMax {
			replayErr = fmt.Errorf("hint: tail row outside snapshot domain")
			return false
		}
		siv := interval.New(shifted, sat(hi)-info.off)
		if sv, in := snap[int64(rid)]; in {
			if sv.lo != siv.Lower || sv.hi != siv.Upper {
				replayErr = fmt.Errorf("hint: snapshotted row %d changed", rid)
				return false
			}
			seen++
			seenChk ^= rel.RowChecksum(row, rid)
			return true
		}
		newIvs = append(newIvs, siv)
		newIDs = append(newIDs, int64(rid))
		return true
	})
	if err == nil {
		err = replayErr
	}
	if err != nil {
		return 0, err
	}
	if seen != info.tableRows || seenChk != info.tableChk {
		return 0, fmt.Errorf("hint: snapshotted rows missing from heap (%d of %d survive)", seen, info.tableRows)
	}
	if len(newIDs) > 0 {
		if err := s.BulkInsert(newIvs, newIDs); err != nil {
			return 0, err
		}
	}
	return int64(len(newIDs)), nil
}

// PersistSnapshot implements sqldb.SnapshotPersister: fold the overlay
// into the flat layout and write it as a rel blob, stamped with the base
// table's current row count and content checksum. An index whose layout
// is not representable (a level left in overlay form by the
// int32-overflow guard) deletes any existing snapshot instead — a stamp
// must never outlive the bytes it vouches for.
func (ix *indexType) PersistSnapshot() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ix.Optimize()
	data, ok := encodeSnapshot(ix.ix, ix.off, ix.tab.RowCount(), ix.tab.ContentChecksum())
	if !ok {
		return ix.rdb.DeleteBlob(snapshotBlobName(ix.name))
	}
	if err := ix.rdb.PutBlob(snapshotBlobName(ix.name), data); err != nil {
		return err
	}
	ix.snapAddLocked(snapTally{persists: 1, bytes: int64(len(data))})
	return nil
}

// BindMetrics implements sqldb.MetricsBinder: the engine calls it with
// the DB's registry and an "index.<name>" prefix when the index is
// created or re-attached, wiring the HINT query-shape counters into the
// same family as the executor and page-store metrics. The binding
// survives geometry rebuilds. Snapshot events recorded before the binding
// (the attach itself) flush into the counters here.
func (ix *indexType) BindMetrics(reg *obs.Registry, prefix string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.reg, ix.regPrefix = reg, prefix
	ix.ix.SetMetrics(reg, prefix)
	if reg == nil {
		ix.snapMet = nil
		return
	}
	ix.snapMet = newSnapMetrics(reg, prefix)
	ix.snapMet.add(ix.snapPend)
	ix.snapPend = snapTally{}
}

// Name implements sqldb.CustomIndex.
func (ix *indexType) Name() string { return ix.name }

// Table implements sqldb.CustomIndex.
func (ix *indexType) Table() string { return ix.table }

// Columns implements sqldb.CustomIndex.
func (ix *indexType) Columns() []string { return append([]string(nil), ix.cols...) }

// HasOperator implements sqldb.CustomIndex.
func (ix *indexType) HasOperator(op string) bool {
	op = strings.ToLower(op)
	return op == OperatorIntersects || op == OperatorContainsPoint
}

// OnInsert implements sqldb.CustomIndex: index maintenance by trigger.
// A row outside the current domain triggers a rebuild with a wider
// geometry; the rebuild scans the base table, which already holds the new
// row, so nothing further is inserted in that case. Rows inside the
// domain go to the index's dynamic overlay; once the overlay outgrows
// the flat storage the index is re-optimized, so sustained DML keeps the
// amortized cost O(log n) compactions over the index's lifetime while
// queries keep scanning mostly flat memory.
func (ix *indexType) OnInsert(row []int64, rid rel.RowID) error {
	lo, hi := row[ix.loPos], row[ix.hiPos]
	if err := checkRow(lo, hi); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.fits(lo) {
		return ix.rebuild()
	}
	if err := ix.ix.Insert(ix.shiftIv(lo, hi), int64(rid)); err != nil {
		return err
	}
	if over := ix.ix.OverlayEntries(); over > 1024 && over > ix.ix.FlatEntries() {
		ix.ix.Optimize()
	}
	return nil
}

// OnBulkInsert implements sqldb.BulkMaintainer. The whole batch is
// validated before anything mutates (so a refused batch leaves the index
// untouched and the engine can roll the heap back cleanly); a batch that
// fits the current geometry goes through Sharded.BulkInsert — one
// copy-on-write generation per touched shard for the whole batch — and
// is compacted once, so repeated chunked loads stay O(batch +
// compaction), not a heap rescan per chunk. A batch that widens the
// domain rebuilds from the heap (which already holds the new rows) with
// a wider geometry in one pass.
func (ix *indexType) OnBulkInsert(rows [][]int64, rids []rel.RowID) error {
	for _, row := range rows {
		if err := checkRow(row[ix.loPos], row[ix.hiPos]); err != nil {
			return err
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, row := range rows {
		if !ix.fits(row[ix.loPos]) {
			return ix.rebuild()
		}
	}
	ivs := make([]interval.Interval, len(rows))
	ids := make([]int64, len(rows))
	for i, row := range rows {
		ivs[i] = ix.shiftIv(row[ix.loPos], row[ix.hiPos])
		ids[i] = int64(rids[i])
	}
	if err := ix.ix.BulkInsert(ivs, ids); err != nil {
		return err
	}
	ix.ix.Optimize()
	return nil
}

// OnDelete implements sqldb.CustomIndex.
func (ix *indexType) OnDelete(row []int64, rid rel.RowID) error {
	lo, hi := row[ix.loPos], row[ix.hiPos]
	if checkRow(lo, hi) != nil {
		return nil // never indexed under this geometry
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.fits(lo) {
		return nil
	}
	_, err := ix.ix.Delete(ix.shiftIv(lo, hi), int64(rid))
	return err
}

// parseOpBounds resolves an operator invocation into query bounds.
func parseOpBounds(op string, args []int64) (qlo, qhi int64, err error) {
	switch strings.ToLower(op) {
	case OperatorIntersects:
		if len(args) != 2 {
			return 0, 0, fmt.Errorf("hint indextype: INTERSECTS needs (:lo, :hi), got %d args", len(args))
		}
		qlo, qhi = args[0], args[1]
	case OperatorContainsPoint:
		if len(args) != 1 {
			return 0, 0, fmt.Errorf("hint indextype: CONTAINS_POINT needs (:p), got %d args", len(args))
		}
		qlo, qhi = args[0], args[0]
	default:
		return 0, 0, fmt.Errorf("hint indextype: unknown operator %q", op)
	}
	if qlo > qhi {
		return 0, 0, fmt.Errorf("hint indextype: inverted query bounds [%d, %d]", qlo, qhi)
	}
	return qlo, qhi, nil
}

// view grabs the (off, ix) pair under a brief read lock. The returned
// Sharded index serves scans lock-free over its published generations,
// so holding the pair across a long cursor never blocks writers; a
// geometry rebuild mid-scan swaps ix.ix wholesale and the scan simply
// finishes on the index it started with.
func (ix *indexType) view() (int64, *Sharded) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.off, ix.ix
}

// Scan implements sqldb.CustomIndex: the operator dispatch. Query bounds
// are shifted like row bounds; bounds beyond the saturation range match
// exactly the rows a linear scan would (starts are exact within ±2^59,
// fartail uppers collapse together above every admissible start). The
// callback contract makes this path sequential across shards; the
// counting path (ScanCount) fans out in parallel instead.
func (ix *indexType) Scan(op string, args []int64, fn func(rid rel.RowID) bool) error {
	qlo, qhi, err := parseOpBounds(op, args)
	if err != nil {
		return err
	}
	off, six := ix.view()
	q := interval.New(sat(qlo)-off, sat(qhi)-off)
	if qlo > maxAbsBound {
		// Far-tail query start: saturated stored ends cannot be ordered
		// against it in index coordinates. Every indexed start is within
		// ±2^59, so the only possible matches are rows whose end saturated
		// (true end beyond 2^59) — the shifted scan below finds exactly
		// those — and each is verified against the base row's true
		// endpoint, keeping the operator exact where the legacy path
		// errored out (the unified Querier contract requires an answer).
		row := make([]int64, ix.tab.Schema().NumCols())
		return six.IntersectingFunc(q, func(id int64) bool {
			if ix.tab.GetRawInto(rel.RowID(id), row) != nil {
				return true
			}
			if row[ix.hiPos] >= qlo {
				return fn(rel.RowID(id))
			}
			return true
		})
	}
	return six.IntersectingFunc(q, func(id int64) bool {
		return fn(rel.RowID(id))
	})
}

// SnapshotScan implements sqldb.SnapshotScanner: an operator scan bound
// to the committed state the engine is snapshotting. The in-memory HINT
// is frozen by capturing each shard's published COW generation — those
// are immutable, so the returned scan keeps answering from them while
// the live index moves on — and the far-tail verification reads row
// endpoints from the shadow (snapshot) base table instead of the live
// heap. The geometry pair (off, generations) is consistent because the
// capture runs under the engine's statement lock at a committed boundary.
func (ix *indexType) SnapshotScan(shadow *rel.DB) (sqldb.ScanFunc, error) {
	stab, err := shadow.Table(ix.table)
	if err != nil {
		return nil, err
	}
	off, six := ix.view()
	gens := six.freeze()
	hiPos, width := ix.hiPos, ix.tab.Schema().NumCols()
	return func(op string, args []int64, fn func(rid rel.RowID) bool) error {
		qlo, qhi, err := parseOpBounds(op, args)
		if err != nil {
			return err
		}
		// Logical-query accounting matches the live path (the per-shard
		// counters flush from the frozen generations' own bindings).
		six.met.query()
		q := interval.New(sat(qlo)-off, sat(qhi)-off)
		// Per-invocation state only — one view's scan may serve several
		// concurrent cursors.
		wrapped := func(id int64) bool { return fn(rel.RowID(id)) }
		if qlo > maxAbsBound {
			// Far-tail query start, verified against the snapshot's true
			// row endpoints (see Scan for the geometry argument).
			row := make([]int64, width)
			wrapped = func(id int64) bool {
				if stab.GetRawInto(rel.RowID(id), row) != nil {
					return true
				}
				if row[hiPos] >= qlo {
					return fn(rel.RowID(id))
				}
				return true
			}
		}
		stopped := false
		stopping := func(id int64) bool {
			if !wrapped(id) {
				stopped = true
				return false
			}
			return true
		}
		for _, gen := range gens {
			if err := gen.IntersectingFunc(q, stopping); err != nil || stopped {
				return err
			}
		}
		return nil
	}, nil
}

// OrderedScan implements sqldb.OrderedScanner: stream every indexed row id
// in ascending order of the indexed lower bound, straight off the flat
// storage's sorted original-class segments (see ScanStartOrdered). The
// shift into index coordinates is monotone, so shifted order is true
// order; the entry keys serve only as sort keys and the caller refetches
// row values from the base table.
func (ix *indexType) OrderedScan(fn func(rid rel.RowID) bool) error {
	_, six := ix.view()
	six.met.query()
	if !six.ScanStartOrdered(func(_, _, id int64) bool { return fn(rel.RowID(id)) }) {
		return fmt.Errorf("hint indextype: index layout cannot guarantee start order")
	}
	return nil
}

// SnapshotOrderedScan implements sqldb.SnapshotOrderedScanner: the
// OrderedScan stream bound to the committed state being snapshotted, by
// capturing the shards' published COW generations exactly as SnapshotScan
// does. The shadow handle is only validated — the stream is id-only and
// the caller reads row values through its own shadow table handle.
func (ix *indexType) SnapshotOrderedScan(shadow *rel.DB) (sqldb.OrderedScanFunc, error) {
	if _, err := shadow.Table(ix.table); err != nil {
		return nil, err
	}
	_, six := ix.view()
	gens := six.freeze()
	return func(fn func(rid rel.RowID) bool) error {
		six.met.query()
		if !scanGensOrdered(gens, func(_, _, id int64) bool { return fn(rel.RowID(id)) }) {
			return fmt.Errorf("hint indextype: index layout cannot guarantee start order")
		}
		return nil
	}, nil
}

// ScanCount implements sqldb.OperatorCounter: operator hit counting
// through the sharded index's parallel per-shard fan-out (one goroutine
// per shard with the counts summed), which a single streaming callback
// cannot use. Far-tail query starts still need per-row verification and
// fall back to the exact streaming path.
func (ix *indexType) ScanCount(op string, args []int64) (int64, error) {
	qlo, qhi, err := parseOpBounds(op, args)
	if err != nil {
		return 0, err
	}
	if qlo > maxAbsBound {
		var n int64
		err := ix.Scan(op, args, func(rel.RowID) bool { n++; return true })
		return n, err
	}
	off, six := ix.view()
	return six.CountIntersecting(interval.New(sat(qlo)-off, sat(qhi)-off))
}

// Drop implements sqldb.CustomIndex: the main-memory storage is released
// and the persisted snapshot (if any) removed with it.
func (ix *indexType) Drop() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ix.Clear()
	return ix.rdb.DeleteBlob(snapshotBlobName(ix.name))
}

// BackingIndex exposes the hidden HINT (for statistics in tests and
// benchmarks).
func (ix *indexType) BackingIndex() *Sharded { return ix.ix }

// Offset exposes the current domain offset (for tests).
func (ix *indexType) Offset() int64 { return ix.off }
