package hint

// Copy-on-write generations. Sharded publishes each shard's Index through
// an atomic pointer: readers grab the pointer and scan a generation that
// is immutable from their point of view, so an open scan never blocks a
// writer and a writer never blocks readers. Writers (serialized per shard)
// call cloneForWrite to derive the next generation and mutate that clone
// through the own* helpers below, which lazily privatize exactly the
// structures a mutation touches — the level's partition-pointer slice, the
// partition struct, the subdivision bucket, the nonempty bitmap, the flat
// arrays — and share everything else with the published generation.
//
// Ownership is tracked by generation stamps: every mutable structure
// records the x.gen that created (and therefore owns) it. A stamp equal
// to the index's current gen means "private, mutate in place"; anything
// older is shared with a published generation and must be copied first.
// A bare Index (never cloned) has gen 0 everywhere, so every helper
// degenerates to mutate-in-place and single-owner use pays nothing.

import "slices"

// cloneForWrite derives the next generation: scalars are copied, the
// outer per-level slices are copied shallowly (headers only), and all
// inner structures stay shared until a mutation touches them. The clone
// is private to the caller until it is published; the receiver must be
// treated as immutable afterwards.
func (x *Index) cloneForWrite() *Index {
	c := *x
	c.gen = x.gen + 1
	c.levels = slices.Clone(x.levels)
	c.nonempty = slices.Clone(x.nonempty)
	c.flat = slices.Clone(x.flat)
	c.levelsGen = slices.Clone(x.levelsGen)
	c.bitGen = slices.Clone(x.bitGen)
	return &c
}

// ownLevel privatizes level l's partition-pointer slice.
func (x *Index) ownLevel(l int) {
	if x.levelsGen[l] != x.gen {
		x.levels[l] = slices.Clone(x.levels[l])
		x.levelsGen[l] = x.gen
	}
}

// ownBits privatizes level l's nonempty bitmap.
func (x *Index) ownBits(l int) {
	if x.bitGen[l] != x.gen {
		x.nonempty[l] = slices.Clone(x.nonempty[l])
		x.bitGen[l] = x.gen
	}
}

// ownPart privatizes (creating if absent) partition idx of level l and
// returns it. Its buckets remain shared until ownBucket claims them.
func (x *Index) ownPart(l int, idx int64) *part {
	x.ownLevel(l)
	p := x.levels[l][idx]
	if p == nil {
		p = &part{gen: x.gen}
		for c := range p.subGen {
			p.subGen[c] = x.gen
		}
		x.levels[l][idx] = p
		return p
	}
	if p.gen != x.gen {
		cp := *p
		cp.gen = x.gen
		p = &cp
		x.levels[l][idx] = p
	}
	return p
}

// ownBucket privatizes class c of the (already owned) partition p and
// returns the bucket for mutation. The copy takes growth headroom so a
// run of inserts within one generation amortizes to plain appends.
func (x *Index) ownBucket(p *part, c int) *[]entry {
	if p.subGen[c] != x.gen {
		old := p.subs[c]
		nb := make([]entry, len(old), len(old)+len(old)/4+8)
		copy(nb, old)
		p.subs[c] = nb
		p.subGen[c] = x.gen
	}
	return &p.subs[c]
}

// flatRemove deletes one copy of e from partition idx's class-c flat
// segment of level l, privatizing the level's flat arrays first (once per
// generation). Reports whether the copy was found.
func (x *Index) flatRemove(l int, idx int64, c int, e entry) bool {
	fs := &x.flat[l].subs[c]
	s := fs.seg(idx)
	at := -1
	for i := range s {
		if s[i] == e {
			at = i
			break
		}
	}
	if at < 0 {
		return false
	}
	if fs.gen != x.gen {
		fs.ents = slices.Clone(fs.ents)
		fs.cnt = slices.Clone(fs.cnt)
		fs.gen = x.gen
		s = fs.seg(idx)
	}
	copy(s[at:], s[at+1:])
	fs.cnt[idx]--
	return true
}
