// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§6) on the reproduction's own
// relational substrate.
//
// Each access method runs over its own page store (2 KB pages, 200-page
// LRU cache by default — the paper's Oracle configuration), so physical
// I/O counts are isolated per method. Datasets are bulk loaded, matching
// the paper's observation about "the good clustering properties of the
// bulk loaded indexes" (§6.3); the query phase then runs under an optional
// simulated disk latency so response-time shapes track physical I/O the
// way the paper's U-SCSI disk did.
package bench

import (
	"fmt"
	"time"

	"ritree/internal/baseline/ist"
	"ritree/internal/baseline/tile"
	"ritree/internal/baseline/winlist"
	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/ritree"
	"ritree/internal/sqldb"
)

// sqldbEngine builds a SQL engine over db (used by the Figure 10
// experiment).
func sqldbEngine(db *rel.DB) *sqldb.Engine { return sqldb.NewEngine(db) }

// Config parameterizes the harness.
type Config struct {
	// PageSize and CacheSize configure every page store (defaults: the
	// paper's 2 KB / 200 blocks).
	PageSize  int
	CacheSize int
	// Latency is slept per physical read during query phases, emulating
	// the disk of the paper's testbed for response-time measurements.
	Latency time.Duration
	// Seed makes all workloads reproducible.
	Seed int64
	// Scale multiplies database sizes (1.0 = paper scale). Scaled sizes
	// never drop below 1000 intervals.
	Scale float64
	// Progress, when non-nil, receives one-line progress notes.
	Progress func(format string, args ...interface{})
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = pagestore.DefaultPageSize
	}
	if c.CacheSize == 0 {
		c.CacheSize = pagestore.DefaultCacheSize
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 20000910 // VLDB 2000, Cairo
	}
	return c
}

func (c Config) scaled(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// AM is the harness view of one interval access method.
type AM interface {
	// Name is the display name used in tables.
	Name() string
	// Load bulk loads the dataset.
	Load(ivs []interval.Interval, ids []int64) error
	// QueryCount runs one intersection query and returns the result count.
	QueryCount(q interval.Interval) (int64, error)
	// Entries is the number of index entries (Figure 12's metric).
	Entries() int64
	// Store exposes the page store for I/O accounting.
	Store() *pagestore.Store
}

// Storage regimes: the paper's methods live in relations over a paged
// buffer cache; HINT lives entirely in memory. The label makes recorded
// benchmark entries comparable across the two regimes.
const (
	RegimeDisk   = "disk-relational"
	RegimeMemory = "main-memory"
)

// RegimeOf returns the storage regime of an access method: methods may
// declare one via a Regime() method, everything else is disk-relational.
func RegimeOf(am AM) string {
	if r, ok := am.(interface{ Regime() string }); ok {
		return r.Regime()
	}
	return RegimeDisk
}

func newStore(c Config) (*pagestore.Store, *rel.DB, error) {
	st, err := pagestore.New(pagestore.NewMemBackend(), pagestore.Options{
		PageSize:  c.PageSize,
		CacheSize: c.CacheSize,
	})
	if err != nil {
		return nil, nil, err
	}
	db, err := rel.CreateDB(st)
	if err != nil {
		return nil, nil, err
	}
	return st, db, nil
}

// --- RI-tree -----------------------------------------------------------

type ritAM struct {
	st   *pagestore.Store
	tree *ritree.Tree
	name string
}

// NewRITree builds an RI-tree access method with the paper's defaults.
func NewRITree(c Config) (AM, error) { return newRITreeOpts(c, ritree.Options{}, "RI-tree") }

// NewRITreeOpts builds an RI-tree with explicit core options (ablations).
func NewRITreeOpts(c Config, opts ritree.Options, name string) (AM, error) {
	return newRITreeOpts(c, opts, name)
}

func newRITreeOpts(c Config, opts ritree.Options, name string) (AM, error) {
	st, db, err := newStore(c)
	if err != nil {
		return nil, err
	}
	tree, err := ritree.Create(db, "iv", opts)
	if err != nil {
		return nil, err
	}
	return &ritAM{st: st, tree: tree, name: name}, nil
}

func (a *ritAM) Name() string { return a.name }
func (a *ritAM) Load(ivs []interval.Interval, ids []int64) error {
	return a.tree.BulkLoad(ivs, ids)
}
func (a *ritAM) QueryCount(q interval.Interval) (int64, error) {
	return a.tree.CountIntersecting(q)
}
func (a *ritAM) Entries() int64          { return a.tree.IndexEntries() }
func (a *ritAM) Store() *pagestore.Store { return a.st }

// --- IST (D-order) -----------------------------------------------------

type istAM struct {
	st *pagestore.Store
	ix *ist.Index
}

// NewIST builds the Interval-Spatial Transformation (D-order) baseline.
func NewIST(c Config) (AM, error) {
	st, db, err := newStore(c)
	if err != nil {
		return nil, err
	}
	ix, err := ist.Create(db, "iv", ist.DOrder)
	if err != nil {
		return nil, err
	}
	return &istAM{st: st, ix: ix}, nil
}

func (a *istAM) Name() string { return "IST" }
func (a *istAM) Load(ivs []interval.Interval, ids []int64) error {
	return a.ix.BulkLoad(ivs, ids)
}
func (a *istAM) QueryCount(q interval.Interval) (int64, error) {
	var n int64
	err := a.ix.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}
func (a *istAM) Entries() int64          { return a.ix.EntryCount() }
func (a *istAM) Store() *pagestore.Store { return a.st }

// --- T-index ------------------------------------------------------------

type tileAM struct {
	st *pagestore.Store
	ix *tile.Index
}

// NewTile builds the T-index, tuning the fixed level on a 1000-interval
// sample exactly as §6.1 describes.
func NewTile(c Config, sample, queries []interval.Interval) (AM, error) {
	st, db, err := newStore(c)
	if err != nil {
		return nil, err
	}
	entriesPerPage := (c.PageSize - 16) / ((4 + 1) * 8)
	level := tile.Tune(sample, queries, entriesPerPage)
	ix, err := tile.Create(db, "iv", level)
	if err != nil {
		return nil, err
	}
	return &tileAM{st: st, ix: ix}, nil
}

func (a *tileAM) Name() string { return "T-index" }
func (a *tileAM) Load(ivs []interval.Interval, ids []int64) error {
	return a.ix.BulkLoad(ivs, ids)
}
func (a *tileAM) QueryCount(q interval.Interval) (int64, error) {
	var n int64
	err := a.ix.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}
func (a *tileAM) Entries() int64          { return a.ix.EntryCount() }
func (a *tileAM) Store() *pagestore.Store { return a.st }

// Level exposes the tuned fixed level.
func (a *tileAM) Level() uint { return a.ix.Level() }

// Redundancy exposes the measured redundancy factor.
func (a *tileAM) Redundancy() float64 { return a.ix.Redundancy() }

// --- HINT (main-memory) --------------------------------------------------

type hintAM struct {
	st       *pagestore.Store // empty: the main-memory method performs no paged I/O
	ix       *hint.Index
	name     string
	optimize bool
}

// NewHINT builds the optimized main-memory HINT access method (sorted
// subdivisions, flat cache-conscious storage). Its page store stays
// empty — zero physical I/O per query is the point of the regime — but is
// provided so Measure's accounting works uniformly.
func NewHINT(c Config) (AM, error) {
	return NewHINTOpts(c, hint.Options{}, true, "HINT")
}

// NewHINTBaseline builds HINT in its unoptimized PR-1 form: unsorted
// per-partition buckets loaded incrementally and scanned linearly — the
// reference point the hint/hintopt experiments measure speedups against.
func NewHINTBaseline(c Config) (AM, error) {
	return NewHINTOpts(c, hint.Options{NoSort: true}, false, "HINT-base")
}

// NewHINTOpts builds a HINT access method with explicit core options.
// With optimize set, Load bulk loads into the flat cache-conscious
// layout; otherwise it inserts incrementally and leaves the dynamic
// per-partition buckets in place.
func NewHINTOpts(c Config, opts hint.Options, optimize bool, name string) (AM, error) {
	st, err := pagestore.New(pagestore.NewMemBackend(), pagestore.Options{
		PageSize:  c.PageSize,
		CacheSize: c.CacheSize,
	})
	if err != nil {
		return nil, err
	}
	ix, err := hint.New(opts)
	if err != nil {
		return nil, err
	}
	return &hintAM{st: st, ix: ix, name: name, optimize: optimize}, nil
}

func (a *hintAM) Name() string   { return a.name }
func (a *hintAM) Regime() string { return RegimeMemory }
func (a *hintAM) Load(ivs []interval.Interval, ids []int64) error {
	if a.optimize {
		return a.ix.BulkLoad(ivs, ids)
	}
	for i := range ivs {
		if err := a.ix.Insert(ivs[i], ids[i]); err != nil {
			return err
		}
	}
	return nil
}
func (a *hintAM) QueryCount(q interval.Interval) (int64, error) {
	return a.ix.CountIntersecting(q)
}
func (a *hintAM) Entries() int64          { return a.ix.Entries() }
func (a *hintAM) Store() *pagestore.Store { return a.st }

// BackingIndex exposes the HINT core (for layout statistics in tables).
func (a *hintAM) BackingIndex() *hint.Index { return a.ix }

// --- Window-List ---------------------------------------------------------

type winAM struct {
	st *pagestore.Store
	db *rel.DB
	ix *winlist.Index
}

// NewWinList builds the static Window-List baseline (bulk built at Load).
func NewWinList(c Config) (AM, error) {
	st, db, err := newStore(c)
	if err != nil {
		return nil, err
	}
	return &winAM{st: st, db: db}, nil
}

func (a *winAM) Name() string { return "Window-List" }
func (a *winAM) Load(ivs []interval.Interval, ids []int64) error {
	ix, err := winlist.Build(a.db, "iv", ivs, ids)
	if err != nil {
		return err
	}
	a.ix = ix
	return nil
}
func (a *winAM) QueryCount(q interval.Interval) (int64, error) {
	if a.ix == nil {
		return 0, fmt.Errorf("bench: window list not loaded")
	}
	var n int64
	err := a.ix.IntersectingFunc(q, func(int64) bool { n++; return true })
	return n, err
}
func (a *winAM) Entries() int64 {
	if a.ix == nil {
		return 0
	}
	return a.ix.EntryCount()
}
func (a *winAM) Store() *pagestore.Store { return a.st }
