package bench

import (
	"fmt"
	"time"

	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/obs"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/ritree"
	"ritree/internal/sqldb"
	"ritree/internal/workload"
)

// The "collections" experiment drives every registered access method
// through the unified collection interface — one base relation plus one
// access-method domain index per collection, loaded and queried through
// the same code path (sqldb.Engine.BulkInsert + CustomIndex.Scan) the
// public ritree.DB API uses. Where the other experiments benchmark each
// access method through its native API, this one measures what a user of
// the uniform API actually gets, including the engine's maintenance and
// row-id mapping overheads.

// collectionAM adapts one collection to the harness AM interface.
type collectionAM struct {
	st     *pagestore.Store
	eng    *sqldb.Engine
	ci     sqldb.CustomIndex
	reg    *obs.Registry
	name   string
	method string
	loadMS float64
}

func newCollectionAM(c Config, method string) (*collectionAM, error) {
	st, db, err := newStore(c)
	if err != nil {
		return nil, err
	}
	// Wire the same per-DB metrics registry the public API attaches, so
	// experiments can embed and crosscheck the engine's own counters.
	reg := obs.NewRegistry()
	st.SetMetrics(reg, "pagestore")
	eng := sqldb.NewEngine(db)
	eng.SetMetricsRegistry(reg)
	ritree.RegisterIndexType(eng)
	hint.RegisterIndexType(eng)
	hint.RegisterShardedIndexType(eng, 0)
	if err := eng.CreateCollection("iv", method, nil); err != nil {
		return nil, err
	}
	ci, ok := eng.CustomIndexByName(sqldb.CollectionIndexName("iv"))
	if !ok {
		return nil, fmt.Errorf("bench: collection index not attached for %s", method)
	}
	return &collectionAM{st: st, eng: eng, ci: ci, reg: reg, name: "collection(" + method + ")", method: method}, nil
}

func (a *collectionAM) Name() string { return a.name }

// Regime labels the access method's storage side; the base relation is
// disk-resident either way, but the count-only query path below touches
// it only for disk-relational methods.
func (a *collectionAM) Regime() string {
	if a.method == ritree.IndexTypeName {
		return RegimeDisk
	}
	return RegimeMemory
}

func (a *collectionAM) Load(ivs []interval.Interval, ids []int64) error {
	rows := make([][]int64, len(ivs))
	for i, iv := range ivs {
		rows[i] = []int64{iv.Lower, iv.Upper, ids[i]}
	}
	start := time.Now()
	_, err := a.eng.BulkInsert("iv", rows)
	a.loadMS = float64(time.Since(start).Microseconds()) / 1000
	return err
}

func (a *collectionAM) QueryCount(q interval.Interval) (int64, error) {
	// Like Collection.CountIntersecting: prefer the access method's
	// counting capability (parallel per-shard fan-out on hint_sharded).
	if oc, ok := a.ci.(sqldb.OperatorCounter); ok {
		return oc.ScanCount("intersects", []int64{q.Lower, q.Upper})
	}
	var n int64
	err := a.ci.Scan("intersects", []int64{q.Lower, q.Upper}, func(rel.RowID) bool { n++; return true })
	return n, err
}

func (a *collectionAM) Entries() int64          { return 0 }
func (a *collectionAM) Store() *pagestore.Store { return a.st }

// Collections compares every built-in access method through the unified
// collection interface on one workload: bulk-load cost, then the query
// batch, per method.
func Collections(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "collections",
		Title:  "access methods behind the unified collection interface, D1",
		Header: []string{"method", "regime", "load ms", "log reads/q", "phys reads/q", "ms/query", "queries/s", "results/q"},
		Notes: []string{
			"every method runs through the same path the public DB/Collection API uses:",
			"engine bulk insert with index maintenance, then INTERSECTS scans through the",
			"access-method domain index; disk-relational methods pay physical I/O, the",
			"main-memory methods answer from their in-memory structures",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(spec.N)
	queries := workload.Queries(200, 4000, c.Seed+1)

	methods := []string{ritree.IndexTypeName, hint.IndexTypeName, hint.ShardedIndexTypeName}
	var ams []AM
	for _, method := range methods {
		am, err := newCollectionAM(c, method)
		if err != nil {
			return nil, err
		}
		c.logf("  loading %s (n=%d)...", am.Name(), n)
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("%s load: %w", am.Name(), err)
		}
		m, err := Measure(c, am, int64(n), queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(am.Name(), RegimeOf(am), f1(am.loadMS), f1(m.AvgLogReads), f1(m.AvgPhysReads),
			f3(m.AvgTimeMS), f1(qps(m)), f1(m.AvgResults))
		ams = append(ams, am)
	}
	t.SetMethods(ams...)
	return t, nil
}
