package bench

import (
	"context"
	"database/sql"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ritree"
	_ "ritree/driver" // registers the "ritree" database/sql driver
	"ritree/internal/server"
	"ritree/internal/workload"
)

// The "wire" experiment measures what PR 9 adds on top of the embedded
// engine: the same database served over TCP through the database/sql
// driver. An in-process riserver hosts the one DB the embedded side
// queries directly, so the two sides must return identical rows — every
// query's (count, id-sum) checksum is compared and a mismatch fails the
// run. Three workloads: indexed point SELECTs (per-query round-trip
// cost), streaming LIMIT-k scans (the Fetch protocol must preserve
// early-stop — the asserted leaf-row ceiling), and the point workload
// over N parallel driver connections (sessions share one engine).

const (
	wirePointQueries = 200
	wireLimitK       = 10
	wireLimitScans   = 100
)

// Wire runs driver-vs-embedded throughput and latency comparisons.
func Wire(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "wire",
		Title:  "wire protocol (riserver + database/sql driver) vs embedded",
		Header: []string{"workload", "path", "conns", "queries/s", "ms/query", "rows"},
		Notes: []string{
			"one in-process riserver hosts the same DB the embedded side queries directly;",
			fmt.Sprintf("point: %d indexed intersection SELECTs via prepared statements;", wirePointQueries),
			fmt.Sprintf("limit: %d streaming SELECT ... LIMIT %d scans (early-stop asserted", wireLimitScans, wireLimitK),
			"via the server's leaf-row counter); parallel: the point workload across",
			"driver connections. Every query's (count, id-sum) checksum must match the",
			"embedded run — the parity self-check of the row-identical acceptance bar.",
		},
	}

	rdb, err := ritree.OpenMemory()
	if err != nil {
		return nil, err
	}
	defer rdb.Close()

	n := c.scaled(20000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	c.logf("  wire: loading n=%d...", n)
	if _, err := rdb.Exec("CREATE TABLE iv (lower int, upper int, id int)", nil); err != nil {
		return nil, err
	}
	if _, err := rdb.Exec("CREATE INDEX iv_ix ON iv (lower, upper) INDEXTYPE IS ritree", nil); err != nil {
		return nil, err
	}
	for i, iv := range ivs {
		_, err := rdb.Exec("INSERT INTO iv VALUES (:lo, :hi, :id)",
			map[string]interface{}{"lo": iv.Lower, "hi": iv.Upper, "id": int64(i)})
		if err != nil {
			return nil, err
		}
	}
	queries := workload.Queries(wirePointQueries, 4000, c.Seed+1)

	srv := server.New(rdb, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	sdb, err := sql.Open("ritree", "tcp://"+ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer sdb.Close()

	// Embedded baseline: prepared-equivalent (the plan cache serves the
	// repeats) point queries straight into the engine.
	const pointSQL = "SELECT id FROM iv WHERE intersects(lower, upper, :lo, :hi)"
	embSums := make([]wireSum, len(queries))
	embPoint, err := timed(func() error {
		for i, q := range queries {
			s, err := embeddedChecksum(rdb, pointSQL, q.Lower, q.Upper)
			if err != nil {
				return err
			}
			embSums[i] = s
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	addWireRow(t, "point", "embedded", 1, len(queries), embPoint, embSums)

	// Wire: same statements through one prepared database/sql statement.
	stmt, err := sdb.Prepare(pointSQL)
	if err != nil {
		return nil, err
	}
	wireSums := make([]wireSum, len(queries))
	wirePoint, err := timed(func() error {
		for i, q := range queries {
			s, err := driverChecksum(stmt, q.Lower, q.Upper)
			if err != nil {
				return err
			}
			wireSums[i] = s
		}
		return nil
	})
	stmt.Close()
	if err != nil {
		return nil, err
	}
	if err := assertParity("point", embSums, wireSums); err != nil {
		return nil, err
	}
	addWireRow(t, "point", "wire", 1, len(queries), wirePoint, wireSums)

	// Streaming LIMIT-k: the wire path must early-stop the server-side
	// scan, so the leaf rows consumed per scan stay O(k), not O(n).
	const limitSQL = "SELECT id FROM iv LIMIT 10"
	leafBefore := rdb.Metrics().Counter("sql.leaf_rows")
	embLimit, embLimitSums, err := runLimitScans(func() (wireSum, error) {
		return embeddedChecksum(rdb, limitSQL)
	})
	if err != nil {
		return nil, err
	}
	addWireRow(t, "limit", "embedded", 1, wireLimitScans, embLimit, embLimitSums)
	wireLimit, wireLimitSums, err := runLimitScans(func() (wireSum, error) {
		return driverQueryChecksum(sdb, limitSQL)
	})
	if err != nil {
		return nil, err
	}
	if err := assertParity("limit", embLimitSums, wireLimitSums); err != nil {
		return nil, err
	}
	leafPerScan := float64(rdb.Metrics().Counter("sql.leaf_rows")-leafBefore) / float64(2*wireLimitScans)
	if leafPerScan >= float64(n)/2 {
		return nil, fmt.Errorf("wire: LIMIT %d scans consumed %.0f leaf rows each — early-stop lost", wireLimitK, leafPerScan)
	}
	addWireRow(t, "limit", "wire", 1, wireLimitScans, wireLimit, wireLimitSums)

	// Parallel connections: the point workload split across a pool.
	for _, conns := range []int{4, 8} {
		sdb.SetMaxOpenConns(conns)
		sums := make([]wireSum, len(queries))
		elapsed, err := timed(func() error {
			var wg sync.WaitGroup
			var firstErr atomic.Value
			per := (len(queries) + conns - 1) / conns
			for w := 0; w < conns; w++ {
				lo, hi := w*per, (w+1)*per
				if hi > len(queries) {
					hi = len(queries)
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						s, err := driverQueryChecksum(sdb, pointSQL, queries[i].Lower, queries[i].Upper)
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						sums[i] = s
					}
				}(lo, hi)
			}
			wg.Wait()
			if err, ok := firstErr.Load().(error); ok {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := assertParity(fmt.Sprintf("parallel-%d", conns), embSums, sums); err != nil {
			return nil, err
		}
		addWireRow(t, "parallel", "wire", conns, len(queries), elapsed, sums)
	}

	t.AddObs("server", rdb.Metrics().Counters)
	return t, nil
}

// wireSum is one query's parity checksum.
type wireSum struct {
	count int64
	sum   int64
}

func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

func embeddedChecksum(rdb *ritree.DB, q string, args ...int64) (wireSum, error) {
	binds := pointBinds(args)
	rows, err := rdb.Query(context.Background(), q, binds)
	if err != nil {
		return wireSum{}, err
	}
	defer rows.Close()
	var s wireSum
	for rows.Next() {
		s.count++
		s.sum += rows.Row()[0]
	}
	return s, rows.Err()
}

func driverChecksum(stmt *sql.Stmt, args ...int64) (wireSum, error) {
	rows, err := stmt.Query(int64Args(args)...)
	if err != nil {
		return wireSum{}, err
	}
	return drainChecksum(rows)
}

func driverQueryChecksum(sdb *sql.DB, q string, args ...int64) (wireSum, error) {
	rows, err := sdb.Query(q, int64Args(args)...)
	if err != nil {
		return wireSum{}, err
	}
	return drainChecksum(rows)
}

func drainChecksum(rows *sql.Rows) (wireSum, error) {
	defer rows.Close()
	var s wireSum
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			return s, err
		}
		s.count++
		s.sum += id
	}
	return s, rows.Err()
}

func pointBinds(args []int64) map[string]interface{} {
	if len(args) == 0 {
		return nil
	}
	return map[string]interface{}{"lo": args[0], "hi": args[1]}
}

func int64Args(args []int64) []interface{} {
	out := make([]interface{}, len(args))
	for i, a := range args {
		out[i] = a
	}
	return out
}

func runLimitScans(scan func() (wireSum, error)) (time.Duration, []wireSum, error) {
	sums := make([]wireSum, wireLimitScans)
	elapsed, err := timed(func() error {
		for i := range sums {
			s, err := scan()
			if err != nil {
				return err
			}
			sums[i] = s
		}
		return nil
	})
	return elapsed, sums, err
}

func assertParity(workload string, a, b []wireSum) error {
	if len(a) != len(b) {
		return fmt.Errorf("wire parity (%s): %d vs %d queries", workload, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("wire parity (%s) query %d: embedded (count=%d sum=%d) vs wire (count=%d sum=%d)",
				workload, i, a[i].count, a[i].sum, b[i].count, b[i].sum)
		}
	}
	return nil
}

func addWireRow(t *Table, workload, path string, conns, queries int, elapsed time.Duration, sums []wireSum) {
	var rows int64
	for _, s := range sums {
		rows += s.count
	}
	secs := elapsed.Seconds()
	t.AddRow(workload, path, d0(int64(conns)),
		f1(float64(queries)/secs),
		f3(secs*1000/float64(queries)),
		d0(rows))
}
