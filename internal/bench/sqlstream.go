package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/ritree"
	"ritree/internal/workload"
)

// The "sqlstream" experiment measures what the streaming SQL executor
// buys over the materializing path: the same SELECT over a collection's
// INTERSECTS operator executed (a) through Exec, which drains the whole
// result into a *Result, and (b) through the Query cursor with LIMIT k,
// which stops the access-method scan after O(k) leaf rows. The "leaf
// rows/q" column is the executor's own operator count — and the run
// FAILS (not just reports) when a LIMIT query scans more than k leaf
// rows, when an ALLEN_* query stops being served by the domain index,
// or when its results diverge from a brute-force evaluation of the
// relation — so the CI smoke of this experiment is a real regression
// gate for the cursor path.
func SQLStream(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "sqlstream",
		Title:  "streaming SQL cursor vs materialized SELECT, D1",
		Header: []string{"method", "mode", "leaf rows/q", "rows out/q", "ms/query", "queries/s"},
		Notes: []string{
			"Exec materializes every matching row before the caller sees one; the Query",
			"cursor streams through the volcano pipeline, so LIMIT k stops the underlying",
			"index scan after O(k) leaf rows — the leaf-row counts are the executor's own",
			"operator statistics (Rows.Stats) and are asserted (> k fails the run);",
			"allen_overlaps counts are crosschecked against brute-force relation checks",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(spec.N)
	queries := workload.Queries(200, 4000, c.Seed+1)
	const limit = 10

	// Brute-force baseline for the Allen mode, computed once: the count
	// of stored intervals overlapping each query under the exact §4.5
	// relation.
	allenWant := make([]int64, len(queries))
	for qi, q := range queries {
		for _, iv := range ivs {
			if interval.Overlaps.Holds(iv, q) {
				allenWant[qi]++
			}
		}
	}

	methods := []string{ritree.IndexTypeName, hint.IndexTypeName, hint.ShardedIndexTypeName}
	var ams []AM
	for _, method := range methods {
		am, err := newCollectionAM(c, method)
		if err != nil {
			return nil, err
		}
		c.logf("  loading %s (n=%d)...", am.Name(), n)
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("%s load: %w", am.Name(), err)
		}
		// The Allen operator must be index-served (generating-region scan),
		// not a full-table residual.
		plan, err := am.eng.Exec("EXPLAIN SELECT id FROM iv WHERE allen_overlaps(lower, upper, 1, 2)", nil)
		if err != nil {
			return nil, err
		}
		if !strings.Contains(plan.Plan, "VIA INTERSECTS REGION") {
			return nil, fmt.Errorf("%s: ALLEN operator fell off the domain index:\n%s", am.Name(), plan.Plan)
		}
		// Registry baseline for the metrics crosscheck below (taken after
		// the EXPLAIN so only the measured statements land in the window).
		obsBefore := am.reg.Snapshot()
		var leafTotal int64
		sql := "SELECT id FROM iv WHERE intersects(lower, upper, :qlo, :qhi)"
		modes := []struct {
			name string
			run  func(qi int, binds map[string]interface{}) (leaf, out int64, err error)
		}{
			{"exec (materialized)", func(_ int, binds map[string]interface{}) (int64, int64, error) {
				res, err := am.eng.Exec(sql, binds)
				if err != nil {
					return 0, 0, err
				}
				// Exec drains the full scan: leaf rows == result rows here.
				return int64(len(res.Rows)), int64(len(res.Rows)), nil
			}},
			{fmt.Sprintf("query (LIMIT %d)", limit), func(_ int, binds map[string]interface{}) (int64, int64, error) {
				rows, err := am.eng.Query(context.Background(), fmt.Sprintf("%s LIMIT %d", sql, limit), binds)
				if err != nil {
					return 0, 0, err
				}
				defer rows.Close()
				var out int64
				for rows.Next() {
					out++
				}
				if err := rows.Err(); err != nil {
					return 0, 0, err
				}
				st := rows.Stats()
				if st.LeafRows > limit {
					return 0, 0, fmt.Errorf("LIMIT %d pulled %d leaf rows — the cursor did not stop the scan", limit, st.LeafRows)
				}
				return st.LeafRows, out, nil
			}},
			{"query (allen_overlaps)", func(qi int, binds map[string]interface{}) (int64, int64, error) {
				rows, err := am.eng.Query(context.Background(),
					"SELECT id FROM iv WHERE allen_overlaps(lower, upper, :qlo, :qhi)", binds)
				if err != nil {
					return 0, 0, err
				}
				defer rows.Close()
				var out int64
				for rows.Next() {
					out++
				}
				if err := rows.Err(); err != nil {
					return 0, 0, err
				}
				if out != allenWant[qi] {
					return 0, 0, fmt.Errorf("allen_overlaps query %d returned %d rows, brute force says %d", qi, out, allenWant[qi])
				}
				return rows.Stats().LeafRows, out, nil
			}},
		}
		for _, mode := range modes {
			var leaf, out int64
			start := time.Now()
			for qi, q := range queries {
				binds := map[string]interface{}{"qlo": q.Lower, "qhi": q.Upper}
				l, o, err := mode.run(qi, binds)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", am.Name(), mode.name, err)
				}
				leaf += l
				out += o
			}
			elapsed := time.Since(start)
			nq := float64(len(queries))
			ms := elapsed.Seconds() * 1000 / nq
			t.AddRow(am.Name(), mode.name, f1(float64(leaf)/nq), f1(float64(out)/nq),
				f3(ms), f1(1000/ms))
			leafTotal += leaf
		}
		// Metrics crosscheck: the engine publishes every cursor's counters
		// into the DB registry at close, so the registry's leaf-row total
		// over the window must equal the sum of the per-query Rows.Stats
		// the modes reported. A mismatch means the registry and the
		// per-cursor stats diverged — fail the run, don't just report.
		obsDelta := am.reg.Snapshot().Sub(obsBefore)
		if got := obsDelta.Counter("sql.leaf_rows"); got != leafTotal {
			return nil, fmt.Errorf("%s: registry sql.leaf_rows = %d, sum of Rows.Stats().LeafRows = %d — metrics diverged from cursor stats", am.Name(), got, leafTotal)
		}
		t.AddObs(am.Name(), obsDelta.Counters)
		ams = append(ams, am)
	}
	t.SetMethods(ams...)
	return t, nil
}
