package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/sqldb"
	"ritree/internal/workload"
)

// The "mixed" experiment measures the PR-7 concurrency claim directly:
// streaming cursors read pinned snapshots, so reader throughput must stay
// flat as concurrent writer goroutines are added — no DB-wide cursor lock
// for writers to queue behind. Each scenario runs the same reader pool
// (full cursor drains of intersection windows) against 0, 2, and 4
// writers committing two-row batches; one writer drives explicit
// BEGIN/COMMIT transactions so first-committer-wins conflicts show up in
// the recorded txn.* counters.
//
// The experiment is self-checking: every committed batch inserts exactly
// two rows atomically, the base load is even-sized, and each reader
// interleaves a COUNT(*) with its drains — any odd count is a torn
// snapshot (a cursor observing half a commit) and fails the run.

const (
	mixedReaders       = 4
	mixedDrainsPerSide = 25 // window drains per reader (each paired with a COUNT(*) parity probe)
	// mixedWritePace spaces each writer's commits so the scenarios compare
	// blocking, not CPU saturation: writers model a steady ingest stream
	// (~250 two-row batches/s each), and the readers' drain rate should
	// hold flat as writers are added — before this refactor every commit
	// queued behind the cursors' DB-wide read lock.
	mixedWritePace = 4 * time.Millisecond
	// mixedMaxBatches bounds each writer's total commits, so table growth
	// stays bounded even when slow readers (tiny scale under -race in CI)
	// stretch the scenario; at full scale the readers finish long before
	// any writer reaches it.
	mixedMaxBatches = 500
)

type mixedResult struct {
	drains    int64
	rows      int64
	elapsed   time.Duration
	writes    int64 // rows committed by writers during the reader phase
	conflicts int64
}

// Mixed runs the reader/writer goroutine mix over the unified collection
// API on the sharded HINT method (the tentpole's copy-on-write reader
// path) at increasing writer counts.
func Mixed(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "mixed",
		Title:  "snapshot readers under concurrent writers (no DB-wide cursor lock)",
		Header: []string{"writers", "readers", "drains/s", "ms/drain", "rows/drain", "writes/s", "txn conflicts"},
		Notes: []string{
			fmt.Sprintf("%d readers each stream %d full cursor drains; writers commit 2-row batches", mixedReaders, mixedDrainsPerSide),
			"until the readers finish; one writer uses BEGIN/COMMIT and falls back to",
			"auto-commit on first-committer-wins conflicts; every reader interleaves a",
			"COUNT(*) parity probe — an odd count would be a torn snapshot and fails the run",
		},
	}
	n := c.scaled(20000)
	n -= n % 2 // even base: the parity self-check's ground state
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(spec.N)
	queries := workload.Queries(64, 4000, c.Seed+1)

	var lastAM *collectionAM
	for _, writers := range []int{0, 2, 4} {
		am, err := newCollectionAM(c, hint.ShardedIndexTypeName)
		if err != nil {
			return nil, err
		}
		c.logf("  mixed: loading n=%d, then %d writers vs %d readers...", n, writers, mixedReaders)
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("mixed load: %w", err)
		}
		r, err := runMixed(am, writers, queries)
		if err != nil {
			return nil, err
		}
		secs := r.elapsed.Seconds()
		t.AddRow(
			d0(int64(writers)), d0(mixedReaders),
			f1(float64(r.drains)/secs),
			f3(secs*1000/float64(r.drains)),
			f1(float64(r.rows)/float64(r.drains)),
			f1(float64(r.writes)/secs),
			d0(r.conflicts),
		)
		lastAM = am
	}
	t.SetMethods(lastAM)
	t.AddObs(fmt.Sprintf("w4.%s", lastAM.Name()), lastAM.reg.Snapshot().Counters)
	return t, nil
}

// runMixed races the reader pool against `writers` writer goroutines on
// am's engine and returns the reader-phase measurements.
func runMixed(am *collectionAM, writers int, queries []interval.Interval) (mixedResult, error) {
	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		writeRows atomic.Int64
		conflicts atomic.Int64
		torn      atomic.Int64
		errOnce   sync.Once
		firstErr  error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			useTxn := w == 0 // one writer exercises explicit transactions
			tick := time.NewTicker(mixedWritePace)
			defer tick.Stop()
			for seq := 0; seq < mixedMaxBatches; seq++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				lo := int64((seq * 37) % 2000)
				id := int64(10_000_000 + w*1_000_000 + seq)
				if err := mixedCommitPair(am.eng, useTxn, lo, id, &conflicts); err != nil {
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
				writeRows.Add(2)
			}
		}(w)
	}

	var drains, rows atomic.Int64
	var rg sync.WaitGroup
	start := time.Now()
	for r := 0; r < mixedReaders; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for k := 0; k < mixedDrainsPerSide; k++ {
				q := queries[(r*mixedDrainsPerSide+k)%len(queries)]
				got, err := mixedDrain(am.eng, q.Lower, q.Upper)
				if err != nil {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
				drains.Add(1)
				rows.Add(got)
				cnt, err := mixedCount(am.eng)
				if err != nil {
					fail(fmt.Errorf("reader %d count: %w", r, err))
					return
				}
				if cnt%2 != 0 {
					torn.Add(1)
				}
			}
		}(r)
	}
	rg.Wait()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return mixedResult{}, firstErr
	}
	if v := torn.Load(); v != 0 {
		return mixedResult{}, fmt.Errorf("mixed: %d torn snapshots — a cursor observed half of a two-row commit", v)
	}
	return mixedResult{
		drains:    drains.Load(),
		rows:      rows.Load(),
		elapsed:   elapsed,
		writes:    writeRows.Load(),
		conflicts: conflicts.Load(),
	}, nil
}

// mixedCommitPair commits two rows atomically: through a BEGIN/COMMIT
// transaction when useTxn is set (falling back to an auto-commit bulk
// insert when a concurrent writer wins the conflict check), else through
// one BulkInsert batch.
func mixedCommitPair(eng *sqldb.Engine, useTxn bool, lo, id int64, conflicts *atomic.Int64) error {
	pair := [][]int64{{lo, lo + 500, id}, {lo + 7, lo + 900, -id}}
	if useTxn {
		if _, err := eng.Exec("BEGIN", nil); err != nil {
			return err
		}
		for _, row := range pair {
			if _, err := eng.Exec(fmt.Sprintf("INSERT INTO iv VALUES (%d, %d, %d)", row[0], row[1], row[2]), nil); err != nil {
				_, _ = eng.Exec("ROLLBACK", nil)
				return err
			}
		}
		// Hold the transaction open for a beat, like a client doing work
		// between its statements: concurrent auto-commit batches land in
		// the window and the first-committer-wins check catches them.
		time.Sleep(mixedWritePace)
		_, err := eng.Exec("COMMIT", nil)
		if err == nil {
			return nil
		}
		if !errors.Is(err, sqldb.ErrTxnConflict) {
			return err
		}
		conflicts.Add(1)
		// First committer won; retry the batch as a single auto-commit.
	}
	_, err := eng.BulkInsert("iv", pair)
	return err
}

// mixedDrain streams one full intersection-window cursor and returns the
// row count it observed from its snapshot.
func mixedDrain(eng *sqldb.Engine, qlo, qhi int64) (int64, error) {
	rows, err := eng.Query(context.Background(),
		"SELECT id FROM iv WHERE intersects(lower, upper, :qlo, :qhi)",
		map[string]interface{}{"qlo": qlo, "qhi": qhi})
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		n++
	}
	return n, rows.Err()
}

// mixedCount reads the table cardinality through the same snapshot
// cursor path the drains use.
func mixedCount(eng *sqldb.Engine) (int64, error) {
	rows, err := eng.Query(context.Background(), "SELECT COUNT(*) FROM iv", nil)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	if !rows.Next() {
		return 0, fmt.Errorf("COUNT(*) returned no row: %v", rows.Err())
	}
	cnt := rows.Row()[0]
	return cnt, rows.Err()
}
