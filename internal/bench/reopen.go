package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/obs"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/ritree"
	"ritree/internal/sqldb"
	"ritree/internal/workload"
)

// Reopen measures the session-reopen lifecycle of persisted domain
// indexes: a file-backed database gets a table with both a ritree and a
// hint domain index, is closed, and each new session re-attaches the
// catalog-recorded definitions. The interesting asymmetry is the attach
// cost — the RI-tree's relations persist in the page store, so attaching
// is O(1) catalog work plus the staleness verification, while the
// main-memory HINT rebuilds from the heap with an O(n) scan. A final
// cycle runs Engine.AttachCatalogIndexes (the path cmd/risql takes on
// -db reopen) and cross-checks an INTERSECTS query against brute force.
func Reopen(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "reopen",
		Title:  "domain-index re-attach cost on database reopen, D1",
		Header: []string{"phase", "ms", "phys reads", "log reads"},
		Notes: []string{
			"ritree attach reopens the persisted hidden relations and verifies them against the",
			"base table's row count (O(1)); hint attach rebuilds from the heap (O(n) scan);",
			"AttachCatalogIndexes is what risql -db runs before the first prompt",
		},
	}
	n := c.scaled(20000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)

	f, err := os.CreateTemp("", "ribench-reopen-*.pages")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)

	openStore := func() (*pagestore.Store, error) {
		be, err := pagestore.OpenFileBackend(path, c.PageSize)
		if err != nil {
			return nil, err
		}
		return pagestore.New(be, pagestore.Options{PageSize: c.PageSize, CacheSize: c.CacheSize})
	}

	// Build phase: one session creates the table, both domain indexes, and
	// loads the data through SQL, so every insert maintains both indexes.
	st, err := openStore()
	if err != nil {
		return nil, err
	}
	db, err := rel.CreateDB(st)
	if err != nil {
		return nil, err
	}
	eng := sqldb.NewEngine(db)
	ritree.RegisterIndexType(eng)
	hint.RegisterIndexType(eng)
	c.logf("  reopen: loading %d intervals under ritree+hint domain indexes...", n)
	if _, err := eng.Exec("CREATE TABLE iv (lo int, hi int, id int)", nil); err != nil {
		return nil, err
	}
	if _, err := eng.Exec("CREATE INDEX iv_rit ON iv (lo, hi) INDEXTYPE IS ritree", nil); err != nil {
		return nil, err
	}
	if _, err := eng.Exec("CREATE INDEX iv_mm ON iv (lo, hi) INDEXTYPE IS hint", nil); err != nil {
		return nil, err
	}
	for i, iv := range ivs {
		_, err := eng.Exec("INSERT INTO iv VALUES (:lo, :hi, :id)",
			map[string]interface{}{"lo": iv.Lower, "hi": iv.Upper, "id": int64(i)})
		if err != nil {
			return nil, err
		}
	}
	if err := db.Close(); err != nil {
		return nil, err
	}

	// Measured reopen cycles: each starts from a cold store.
	attachCycle := func(label string, attach func(e *sqldb.Engine, db2 *rel.DB) error) (*rel.DB, *sqldb.Engine, error) {
		st2, err := openStore()
		if err != nil {
			return nil, nil, err
		}
		db2, err := rel.OpenDB(st2, 1)
		if err != nil {
			return nil, nil, err
		}
		e2 := sqldb.NewEngine(db2)
		ritree.RegisterIndexType(e2)
		hint.RegisterIndexType(e2)
		st2.ResetStats()
		t0 := time.Now()
		if err := attach(e2, db2); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", label, err)
		}
		elapsed := time.Since(t0)
		s := st2.Stats()
		t.AddRow(label, f3(elapsed.Seconds()*1000), d0(s.PhysicalReads), d0(s.LogicalReads))
		return db2, e2, nil
	}

	db2, _, err := attachCycle("ritree attach (persisted tree)", func(e *sqldb.Engine, _ *rel.DB) error {
		return ritree.AttachIndexType(e, "iv_rit", "iv", []string{"lo", "hi"})
	})
	if err != nil {
		return nil, err
	}
	if err := db2.Close(); err != nil {
		return nil, err
	}
	db2, _, err = attachCycle("hint attach (heap rebuild)", func(e *sqldb.Engine, _ *rel.DB) error {
		return hint.AttachIndexType(e, "iv_mm", "iv", []string{"lo", "hi"})
	})
	if err != nil {
		return nil, err
	}
	if err := db2.Close(); err != nil {
		return nil, err
	}
	var e2 *sqldb.Engine
	db2, e2, err = attachCycle("AttachCatalogIndexes (both)", func(e *sqldb.Engine, _ *rel.DB) error {
		return e.AttachCatalogIndexes()
	})
	if err != nil {
		return nil, err
	}
	defer db2.Close()

	// Cross-check a post-reopen intersection query against brute force.
	qlen := workload.CalibrateLength(ivs, 0.01, c.Seed+53)
	mid := (interval.DomainMin + interval.DomainMax) / 2
	q := interval.New(mid, mid+qlen)
	want := 0
	for _, iv := range ivs {
		if iv.Intersects(q) {
			want++
		}
	}
	res, err := e2.Exec(fmt.Sprintf("SELECT id FROM iv WHERE intersects(lo, hi, %d, %d)", q.Lower, q.Upper), nil)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != want {
		return nil, fmt.Errorf("bench: post-reopen query returned %d rows, brute force says %d — reattached index is wrong", len(res.Rows), want)
	}
	t.AddRow(fmt.Sprintf("post-reopen query check: ok (%d results)", want), "", "", "")

	if err := reopenSnapshotSection(c, t); err != nil {
		return nil, err
	}
	return t, nil
}

// reopenSnapshotSection measures the persisted-snapshot attach path at
// paper scale: one session builds a hint index over N intervals and
// persists its flat layout; two cold sessions then attach the same
// catalog definition, one forced to rebuild from the heap, one loading
// the snapshot (plus tail replay, zero here). The parity self-assert
// runs a batch of INTERSECTS queries through both sessions and requires
// identical id lists — the snapshot path must be indistinguishable from
// the rebuild except in attach cost.
func reopenSnapshotSection(c Config, t *Table) error {
	ns := c.scaled(1000000)
	spec := workload.Spec{Kind: workload.D1, N: ns, D: 2000}
	ivs := workload.Generate(spec, c.Seed+101)

	f, err := os.CreateTemp("", "ribench-reopen-snap-*.pages")
	if err != nil {
		return err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)

	openStore := func() (*pagestore.Store, error) {
		be, err := pagestore.OpenFileBackend(path, c.PageSize)
		if err != nil {
			return nil, err
		}
		return pagestore.New(be, pagestore.Options{PageSize: c.PageSize, CacheSize: c.CacheSize})
	}

	// Build session: heap first (plain relational inserts — no index to
	// maintain yet), then CREATE INDEX bulk-builds the hint structure from
	// it, and PersistIndexSnapshots writes the flat layout next to it.
	c.logf("  reopen: snapshot section — loading %d intervals...", ns)
	st, err := openStore()
	if err != nil {
		return err
	}
	db, err := rel.CreateDB(st)
	if err != nil {
		return err
	}
	eng := sqldb.NewEngine(db)
	hint.RegisterIndexType(eng)
	if _, err := eng.Exec("CREATE TABLE sv (lo int, hi int, id int)", nil); err != nil {
		return err
	}
	tab, err := db.Table("sv")
	if err != nil {
		return err
	}
	for i, iv := range ivs {
		if _, err := tab.Insert([]int64{iv.Lower, iv.Upper, int64(i)}); err != nil {
			return err
		}
	}
	if _, err := eng.Exec("CREATE INDEX sv_mm ON sv (lo, hi) INDEXTYPE IS hint", nil); err != nil {
		return err
	}
	t0 := time.Now()
	if err := eng.PersistIndexSnapshots(); err != nil {
		return err
	}
	persistMS := time.Since(t0).Seconds() * 1000
	if err := db.Close(); err != nil {
		return err
	}

	// Cold attach, both ways. Each session opens its own store so the
	// buffer cache starts empty.
	attach := func(snapshots bool) (*sqldb.Engine, *obs.Registry, float64, pagestore.Stats, error) {
		st2, err := openStore()
		if err != nil {
			return nil, nil, 0, pagestore.Stats{}, err
		}
		db2, err := rel.OpenDB(st2, 1)
		if err != nil {
			return nil, nil, 0, pagestore.Stats{}, err
		}
		e2 := sqldb.NewEngine(db2)
		hint.RegisterIndexType(e2)
		e2.SetIndexSnapshotsEnabled(snapshots)
		reg := obs.NewRegistry()
		e2.SetMetricsRegistry(reg)
		// Collect the previous phase's garbage before timing: a process
		// that just built 1M rows carries GC debt that would otherwise tax
		// whichever attach happens to allocate next (a real reopen starts
		// from a fresh process). Applied to both paths, so the comparison
		// stays fair.
		runtime.GC()
		st2.ResetStats()
		t0 := time.Now()
		if err := e2.AttachCatalogIndexes(); err != nil {
			return nil, nil, 0, pagestore.Stats{}, err
		}
		return e2, reg, time.Since(t0).Seconds() * 1000, st2.Stats(), nil
	}
	c.logf("  reopen: snapshot section — cold attach, rebuild path...")
	rbEng, _, rbMS, rbStats, err := attach(false)
	if err != nil {
		return err
	}
	c.logf("  reopen: snapshot section — cold attach, snapshot path...")
	snEng, snReg, snMS, snStats, err := attach(true)
	if err != nil {
		return err
	}
	snm := snReg.Snapshot()
	if snm.Counter("index.sv_mm.snapshot.loads") != 1 {
		return fmt.Errorf("bench: snapshot attach did not load the snapshot (fallbacks=%d)",
			snm.Counter("index.sv_mm.snapshot.rebuild_fallbacks"))
	}

	// Parity self-assert: both sessions must return identical id lists.
	qlen := workload.CalibrateLength(ivs, 0.001, c.Seed+157)
	rows := int64(0)
	for k := 0; k < 16; k++ {
		lo := interval.DomainMin + int64(k)*(interval.DomainMax-interval.DomainMin)/16
		sql := fmt.Sprintf("SELECT id FROM sv WHERE intersects(lo, hi, %d, %d) ORDER BY id", lo, lo+qlen)
		a, err := rbEng.Exec(sql, nil)
		if err != nil {
			return err
		}
		b, err := snEng.Exec(sql, nil)
		if err != nil {
			return err
		}
		if len(a.Rows) != len(b.Rows) {
			return fmt.Errorf("bench: parity check %d: rebuild %d rows, snapshot %d rows", k, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			if a.Rows[i][0] != b.Rows[i][0] {
				return fmt.Errorf("bench: parity check %d row %d: rebuild id %v, snapshot id %v", k, i, a.Rows[i][0], b.Rows[i][0])
			}
		}
		rows += int64(len(a.Rows))
	}

	t.AddRow(fmt.Sprintf("[%d] hint snapshot persist", ns), f3(persistMS), "", "")
	t.AddRow(fmt.Sprintf("[%d] hint attach, heap rebuild", ns), f3(rbMS), d0(rbStats.PhysicalReads), d0(rbStats.LogicalReads))
	t.AddRow(fmt.Sprintf("[%d] hint attach, snapshot load", ns), f3(snMS), d0(snStats.PhysicalReads), d0(snStats.LogicalReads))
	t.AddRow(fmt.Sprintf("snapshot attach speedup: %.1fx; parity check: ok (%d ids across 16 queries)", rbMS/snMS, rows), "", "", "")
	t.AddObs("snapshot_attach", snm.Counters)
	return nil
}
