package bench

import (
	"fmt"
	"sort"

	"ritree/internal/hint"
	"ritree/internal/interval"
	"ritree/internal/ritree"
	"ritree/internal/workload"
)

// This file regenerates every evaluation artifact of §6. Each function
// returns a Table whose rows correspond to the series the paper plots.
// Absolute values differ from the 1998 Pentium Pro testbed; the shapes —
// who wins, by what factor, where curves cross — are the reproduction
// targets (expectations are spelled out in each table's notes and in
// EXPERIMENTS.md).

// sampleOf returns up to n intervals, the paper's "representative sample
// of 1,000 intervals" used to tune the T-index fixed level (§6.1).
func sampleOf(ivs []interval.Interval, n int) []interval.Interval {
	if len(ivs) <= n {
		return ivs
	}
	step := len(ivs) / n
	out := make([]interval.Interval, 0, n)
	for i := 0; i < len(ivs) && len(out) < n; i += step {
		out = append(out, ivs[i])
	}
	return out
}

// buildTrio loads the dataset into fresh RI-tree, T-index and IST access
// methods (each over its own store).
func (c Config) buildTrio(ivs []interval.Interval, ids []int64, tuneQueries []interval.Interval) ([]AM, error) {
	rit, err := NewRITree(c)
	if err != nil {
		return nil, err
	}
	ti, err := NewTile(c, sampleOf(ivs, 1000), tuneQueries)
	if err != nil {
		return nil, err
	}
	is, err := NewIST(c)
	if err != nil {
		return nil, err
	}
	ams := []AM{rit, ti, is}
	for _, am := range ams {
		c.logf("  loading %s (n=%d)...", am.Name(), len(ivs))
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("%s load: %w", am.Name(), err)
		}
	}
	return ams, nil
}

// Fig10 prints the execution plan of the Figure 9 intersection statement,
// reproducing the paper's Figure 10 through the reproduction's own SQL
// planner.
func Fig10(c Config) (*Table, error) {
	c = c.WithDefaults()
	st, db, err := newStore(c)
	if err != nil {
		return nil, err
	}
	_ = st
	tree, err := ritree.Create(db, "iv", ritree.Options{})
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < 64; i++ {
		if err := tree.Insert(interval.New(i*16, i*16+40), i); err != nil {
			return nil, err
		}
	}
	eng := sqldbEngine(db)
	plan, err := tree.ExplainIntersection(eng, interval.New(100, 200))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig10",
		Title:  "execution plan for an intersection query (paper Figure 10)",
		Header: []string{"plan"},
		Notes: []string{
			"paper Figure 10: SELECT STATEMENT / UNION-ALL / 2x (NESTED LOOPS,",
			"COLLECTION ITERATOR, INDEX RANGE SCAN on upper/lower index)",
		},
	}
	for _, line := range splitLines(plan) {
		t.AddRow(line)
	}
	return t, nil
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// Table1 characterizes the four sample databases of Table 1.
func Table1(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "table1",
		Title:  "sample interval databases (paper Table 1)",
		Header: []string{"dist", "n", "start dist", "duration dist", "mean dur", "max dur", "pts<1%dom"},
		Notes: []string{
			"D1/D3 durations uniform in [0,2d] (mean d); D2/D4 exponential (mean d); d = 2000",
			"start points: D1/D2 uniform, D3/D4 Poisson-process arrivals over [0, 2^20-1]",
		},
	}
	n := c.scaled(100000)
	for _, k := range []workload.Kind{workload.D1, workload.D2, workload.D3, workload.D4} {
		spec := workload.Spec{Kind: k, N: n, D: 2000}
		ivs := workload.Generate(spec, c.Seed)
		var sum, maxDur int64
		low := 0
		for _, iv := range ivs {
			d := iv.Length()
			sum += d
			if d > maxDur {
				maxDur = d
			}
			if iv.Lower < (interval.DomainMax+1)/100 {
				low++
			}
		}
		startDist, durDist := "uniform", "uniform[0,2d]"
		if k == workload.D3 || k == workload.D4 {
			startDist = "poisson"
		}
		if k == workload.D2 || k == workload.D4 {
			durDist = "exp(mean d)"
		}
		t.AddRow(spec.String(), d0(int64(n)), startDist, durDist,
			f1(float64(sum)/float64(n)), d0(maxDur), fmt.Sprintf("%.1f%%", 100*float64(low)/float64(n)))
	}
	return t, nil
}

// Fig12 reproduces Figure 12: number of index entries for varying database
// size under D4(*,2k).
func Fig12(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "fig12",
		Title:  "storage occupation: index entries vs database size, D4(*,2k) (paper Figure 12)",
		Header: []string{"n", "T-index", "IST", "RI-tree", "T-index redundancy"},
		Notes: []string{
			"expected shape: IST = n (no redundancy), RI-tree = 2n, T-index = redundancy*n with redundancy >> 2",
			"paper measured redundancy 10.1 at mean duration 2000",
		},
	}
	sizes := []int{200000, 400000, 600000, 800000, 1000000}
	tuneQ := workload.Queries(50, 4000, c.Seed+7)
	for i, base := range sizes {
		n := c.scaled(base)
		spec := workload.Spec{Kind: workload.D4, N: n, D: 2000}
		c.logf("fig12: generating %s", spec)
		ivs := workload.Generate(spec, c.Seed+int64(i))
		ids := workload.IDs(n)
		ams, err := c.buildTrio(ivs, ids, tuneQ)
		if err != nil {
			return nil, err
		}
		t.SetMethods(ams...)
		red := ams[1].(*tileAM).Redundancy()
		t.AddRow(d0(int64(n)), d0(ams[1].Entries()), d0(ams[2].Entries()), d0(ams[0].Entries()), f2(red))
	}
	return t, nil
}

// Fig13 reproduces Figure 13: physical I/O and response time vs query
// selectivity on D1(100k,2k).
func Fig13(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "fig13",
		Title: "range queries on D1(100k,2k) by selectivity (paper Figure 13)",
		Header: []string{"sel%", "IO RI", "IO T-idx", "IO IST",
			"ms RI", "ms T-idx", "ms IST", "results"},
		Notes: []string{
			"expected shape: RI-tree lowest physical I/O at every selectivity;",
			"paper speedups at 0.5%: 10.8x vs T-index, 46.3x vs IST; at 3.0%: 22.8x / 13.6x",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	ams, err := c.buildTrio(ivs, ids, workload.Queries(50, 4000, c.Seed+7))
	if err != nil {
		return nil, err
	}
	t.SetMethods(ams...)
	for _, selPct := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		qlen := workload.CalibrateLength(ivs, selPct/100, c.Seed+11)
		queries := workload.Queries(100, qlen, c.Seed+int64(selPct*10))
		c.logf("fig13: sel=%.1f%% qlen=%d", selPct, qlen)
		var ms [3]Metrics
		for i, am := range ams {
			m, err := Measure(c, am, int64(n), queries)
			if err != nil {
				return nil, err
			}
			ms[i] = m
		}
		t.AddRow(f1(selPct),
			f1(ms[0].AvgPhysReads), f1(ms[1].AvgPhysReads), f1(ms[2].AvgPhysReads),
			f2(ms[0].AvgTimeMS), f2(ms[1].AvgTimeMS), f2(ms[2].AvgTimeMS),
			f1(ms[0].AvgResults))
	}
	return t, nil
}

// Fig14 reproduces Figure 14: scaleup of disk accesses and response time
// with growing database size, D4(*,2k) at selectivity 0.6%.
func Fig14(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "fig14",
		Title: "scaleup on D4(*,2k), selectivity 0.6%, 20 queries (paper Figure 14)",
		Header: []string{"n", "IO RI", "IO T-idx", "IO IST",
			"ms RI", "ms T-idx", "ms IST", "IO speedup vs T-idx"},
		Notes: []string{
			"expected shape: T-index and IST scale ~linearly, the RI-tree sublinearly;",
			"paper: I/O speedup factor grows from 2 to 42 between 1k and 1M intervals",
		},
	}
	bases := []int{1000, 10000, 100000, 1000000}
	seen := map[int]bool{}
	for i, base := range bases {
		n := base
		if base >= 100000 {
			n = c.scaled(base)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		spec := workload.Spec{Kind: workload.D4, N: n, D: 2000}
		c.logf("fig14: generating %s", spec)
		ivs := workload.Generate(spec, c.Seed+int64(i))
		ids := workload.IDs(n)
		ams, err := c.buildTrio(ivs, ids, workload.Queries(50, 4000, c.Seed+7))
		if err != nil {
			return nil, err
		}
		t.SetMethods(ams...)
		qlen := workload.CalibrateLength(ivs, 0.006, c.Seed+13)
		queries := workload.Queries(20, qlen, c.Seed+int64(i)+100)
		var ms [3]Metrics
		for j, am := range ams {
			m, err := Measure(c, am, int64(n), queries)
			if err != nil {
				return nil, err
			}
			ms[j] = m
		}
		speedup := 0.0
		if ms[0].AvgPhysReads > 0 {
			speedup = ms[1].AvgPhysReads / ms[0].AvgPhysReads
		}
		t.AddRow(d0(int64(n)),
			f1(ms[0].AvgPhysReads), f1(ms[1].AvgPhysReads), f1(ms[2].AvgPhysReads),
			f2(ms[0].AvgTimeMS), f2(ms[1].AvgTimeMS), f2(ms[2].AvgTimeMS),
			f1(speedup))
	}
	return t, nil
}

// Fig15 reproduces Figure 15: RI-tree response time vs the minimum length
// of the stored intervals (restricted D3 databases) at four selectivities.
func Fig15(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "fig15",
		Title: "RI-tree response time vs minimum interval length, restricted D3(100k,2k) (paper Figure 15)",
		Header: []string{"min len", "minstep", "ms 0.0%", "ms 0.2%", "ms 0.5%", "ms 1.2%",
			"IO 0.0%", "IO 1.2%"},
		Notes: []string{
			"expected shape: response time almost independent of the minimum stored length;",
			"cost dominated by the number of results (the four selectivity rows separate cleanly)",
		},
	}
	n := c.scaled(100000)
	restrictions := []struct{ min, max int64 }{
		{0, 4000}, {500, 3500}, {1000, 3000}, {1500, 2500},
	}
	for i, r := range restrictions {
		spec := workload.Spec{Kind: workload.D3, N: n, D: 2000, MinDur: r.min, MaxDur: r.max}
		c.logf("fig15: durations [%d,%d]", r.min, r.max)
		ivs := workload.Generate(spec, c.Seed+int64(i))
		ids := workload.IDs(n)
		am, err := NewRITree(c)
		if err != nil {
			return nil, err
		}
		if err := am.Load(ivs, ids); err != nil {
			return nil, err
		}
		t.SetMethods(am)
		minstep := am.(*ritAM).tree.Params().MinStep
		var times [4]string
		var ios [2]string
		for si, selPct := range []float64{0.0, 0.2, 0.5, 1.2} {
			qlen := workload.CalibrateLength(ivs, selPct/100, c.Seed+17)
			queries := workload.Queries(50, qlen, c.Seed+int64(si)+200)
			m, err := Measure(c, am, int64(n), queries)
			if err != nil {
				return nil, err
			}
			times[si] = f2(m.AvgTimeMS)
			if si == 0 {
				ios[0] = f1(m.AvgPhysReads)
			}
			if si == 3 {
				ios[1] = f1(m.AvgPhysReads)
			}
		}
		t.AddRow(d0(r.min), d0(minstep), times[0], times[1], times[2], times[3], ios[0], ios[1])
	}
	return t, nil
}

// Fig16 reproduces Figure 16: response time vs the mean interval duration,
// D4(100k,*) at selectivity 1.0%.
func Fig16(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "fig16",
		Title: "response time vs mean interval duration, D4(100k,*), sel 1.0% (paper Figure 16)",
		Header: []string{"mean dur", "ms RI", "ms T-idx", "ms IST",
			"IO RI", "IO T-idx", "IO IST", "T-idx redund"},
		Notes: []string{
			"expected shape: T-index ~= RI-tree for near-point data (redundancy -> 1), degrading as",
			"durations grow; RI-tree best or tied everywhere (paper: RI slightly better even for points)",
		},
	}
	n := c.scaled(100000)
	for i, d := range []int64{0, 250, 500, 1000, 1500, 2000} {
		spec := workload.Spec{Kind: workload.D4, N: n, D: d}
		c.logf("fig16: mean duration %d", d)
		ivs := workload.Generate(spec, c.Seed+int64(i))
		ids := workload.IDs(n)
		ams, err := c.buildTrio(ivs, ids, workload.Queries(50, 2*d+64, c.Seed+7))
		if err != nil {
			return nil, err
		}
		t.SetMethods(ams...)
		red := ams[1].(*tileAM).Redundancy()
		qlen := workload.CalibrateLength(ivs, 0.01, c.Seed+19)
		queries := workload.Queries(20, qlen, c.Seed+int64(i)+300)
		var ms [3]Metrics
		for j, am := range ams {
			m, err := Measure(c, am, int64(n), queries)
			if err != nil {
				return nil, err
			}
			ms[j] = m
		}
		t.AddRow(d0(d),
			f2(ms[0].AvgTimeMS), f2(ms[1].AvgTimeMS), f2(ms[2].AvgTimeMS),
			f1(ms[0].AvgPhysReads), f1(ms[1].AvgPhysReads), f1(ms[2].AvgPhysReads),
			f2(red))
	}
	return t, nil
}

// Fig17 reproduces Figure 17: a point query sweeping away from the upper
// bound of the data space, D2(200k,2k).
func Fig17(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "fig17",
		Title: "sweeping point query on D2(200k,2k) (paper Figure 17)",
		Header: []string{"dist to upper bound", "ms RI", "ms T-idx", "ms IST",
			"IO RI", "IO T-idx", "IO IST"},
		Notes: []string{
			"expected shape: the IST (D-order on (upper, lower)) degrades linearly with the distance",
			"to the data space's upper bound; RI-tree and T-index stay flat, RI at or below T-index",
		},
	}
	n := c.scaled(200000)
	spec := workload.Spec{Kind: workload.D2, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	ams, err := c.buildTrio(ivs, ids, workload.Queries(50, 64, c.Seed+7))
	if err != nil {
		return nil, err
	}
	t.SetMethods(ams...)
	for _, dist := range []int64{0, 25000, 50000, 75000, 100000, 125000, 150000, 175000, 200000} {
		// Ten stabs jittered around the sweep position.
		var queries []interval.Interval
		for j := int64(0); j < 10; j++ {
			p := interval.DomainMax - dist - j*197
			if p < interval.DomainMin {
				p = interval.DomainMin
			}
			queries = append(queries, interval.Point(p))
		}
		var ms [3]Metrics
		for j, am := range ams {
			m, err := Measure(c, am, int64(n), queries)
			if err != nil {
				return nil, err
			}
			ms[j] = m
		}
		t.AddRow(d0(dist),
			f2(ms[0].AvgTimeMS), f2(ms[1].AvgTimeMS), f2(ms[2].AvgTimeMS),
			f1(ms[0].AvgPhysReads), f1(ms[1].AvgPhysReads), f1(ms[2].AvgPhysReads))
	}
	return t, nil
}

// qps converts a per-query response time into throughput.
func qps(m Metrics) float64 {
	if m.AvgTimeMS <= 0 {
		return 0
	}
	return 1000 / m.AvgTimeMS
}

// ratio returns a/b guarding the degenerate denominator.
func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// HintComparison runs the reproduction past the paper: the RI-tree (the
// paper's disk-relational winner) against HINT (Christodoulou, Bouros,
// Mamoulis — SIGMOD 2022, PAPERS.md), a main-memory hierarchical
// domain-partitioning index, on the default uniform workload D1(100k,2k).
// HINT appears twice — the PR-1 baseline (unsorted buckets, linear
// scans) and the optimized form (sorted subdivisions, flat
// cache-conscious storage) — so both the regime gap and the
// optimization gap stay on record. The regimes differ — the RI-tree
// pays buffer-cache traversals, HINT scans in-memory partition arrays —
// which is exactly the comparison the ROADMAP's main-memory scenario
// asks for; the regime labels keep the recorded numbers honest.
func HintComparison(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "hint",
		Title: "RI-tree (disk-relational) vs HINT baseline/optimized (main-memory), D1(100k,2k) uniform (HINT paper, PAPERS.md)",
		Header: []string{"sel%", "ms RI", "ms HINT-base", "ms HINT",
			"q/s RI", "q/s HINT", "IO HINT", "x vs RI", "x vs base"},
		Notes: []string{
			"expected shape: optimized HINT throughput >= 5x the RI-tree's and >= the PR-1",
			"baseline's at every selectivity (the HINT paper reports one order of magnitude",
			"over tree-based indexes); HINT performs zero physical I/O — main-memory regime",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	rit, err := NewRITree(c)
	if err != nil {
		return nil, err
	}
	base, err := NewHINTBaseline(c)
	if err != nil {
		return nil, err
	}
	opt, err := NewHINT(c)
	if err != nil {
		return nil, err
	}
	ams := []AM{rit, base, opt}
	for _, am := range ams {
		c.logf("hint: loading %s (n=%d)...", am.Name(), len(ivs))
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("%s load: %w", am.Name(), err)
		}
	}
	t.SetMethods(ams...)
	for _, selPct := range []float64{0.5, 1.0, 2.0} {
		qlen := workload.CalibrateLength(ivs, selPct/100, c.Seed+51)
		queries := workload.Queries(200, qlen, c.Seed+int64(selPct*10)+400)
		c.logf("hint: sel=%.1f%% qlen=%d", selPct, qlen)
		var ms [3]Metrics
		for i, am := range ams {
			m, err := Measure(c, am, int64(n), queries)
			if err != nil {
				return nil, err
			}
			ms[i] = m
		}
		t.AddRow(f1(selPct),
			f3(ms[0].AvgTimeMS), f3(ms[1].AvgTimeMS), f3(ms[2].AvgTimeMS),
			d0(int64(qps(ms[0]))), d0(int64(qps(ms[2]))),
			f1(ms[2].AvgPhysReads),
			f1(ratio(ms[0].AvgTimeMS, ms[2].AvgTimeMS)),
			f2(ratio(ms[1].AvgTimeMS, ms[2].AvgTimeMS)))
	}
	return t, nil
}

// HintAblation isolates the HINT §4 optimization levels on D1(100k,2k):
// the PR-1 baseline (unsorted buckets, linear scans with per-entry
// comparisons), sorted subdivisions (binary-searched prefix/suffix
// emission, still per-partition slices), the flat cache-conscious layout
// (one contiguous array + offset table per level and subdivision class,
// empty-partition bitmaps), and the comparison-free configuration
// (Levels == Bits) on top of the flat layout.
func HintAblation(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "hintopt",
		Title: "ablation: HINT optimization levels (HINT paper §4), D1(100k,2k) uniform",
		Header: []string{"variant", "ms 0.5%", "q/s 0.5%", "ms 2.0%", "q/s 2.0%",
			"entries", "flat entries"},
		Notes: []string{
			"expected shape: sorted subdivisions at or above the unsorted baseline, the flat",
			"layout clearly above both (fewer cache misses); the comparison-free geometry",
			"(levels == bits = 20) eliminates endpoint comparisons but pays for it in",
			"replication and per-query partition visits — m = 20 sits far beyond the HINT",
			"paper's m sweet spot (7-16, their Figure 10), so it records the trade-off,",
			"not a win, at these selectivities",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)

	variants := []struct {
		name     string
		opts     hint.Options
		optimize bool
	}{
		{"unsorted (PR-1 baseline)", hint.Options{NoSort: true}, false},
		{"sorted subdivisions", hint.Options{}, false},
		{"flat (Optimize)", hint.Options{}, true},
		{"flat + cmp-free (m=20)", hint.Options{Bits: 20, Levels: 20}, true},
	}
	var ams []AM
	for _, v := range variants {
		am, err := NewHINTOpts(c, v.opts, v.optimize, v.name)
		if err != nil {
			return nil, err
		}
		c.logf("hintopt: loading %s (n=%d)...", v.name, len(ivs))
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("%s load: %w", v.name, err)
		}
		ams = append(ams, am)
	}
	t.SetMethods(ams...)
	var queries [2][]interval.Interval
	for i, selPct := range []float64{0.5, 2.0} {
		qlen := workload.CalibrateLength(ivs, selPct/100, c.Seed+53)
		queries[i] = workload.Queries(200, qlen, c.Seed+int64(selPct*10)+500)
	}
	for _, am := range ams {
		var ms [2]Metrics
		for i := range queries {
			m, err := Measure(c, am, int64(n), queries[i])
			if err != nil {
				return nil, err
			}
			ms[i] = m
		}
		ix := am.(*hintAM).BackingIndex()
		t.AddRow(am.Name(),
			f3(ms[0].AvgTimeMS), d0(int64(qps(ms[0]))),
			f3(ms[1].AvgTimeMS), d0(int64(qps(ms[1]))),
			d0(ix.Entries()), d0(ix.FlatEntries()))
	}
	return t, nil
}

// WindowListComparison reproduces the §6.1 aside: "queries on Window-Lists
// produced twice as many I/O operations than on the dynamic RI-tree".
func WindowListComparison(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "winlist",
		Title:  "static Window-List vs RI-tree, D1(100k,2k), sel 0.5% (paper §6.1)",
		Header: []string{"method", "entries", "IO/query", "ms/query", "results/query"},
		Notes: []string{
			"paper: Window-List produced about twice the I/O of the RI-tree and is static",
			"(no inserts or deletes), so it is excluded from the dynamic comparisons",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	qlen := workload.CalibrateLength(ivs, 0.005, c.Seed+23)
	queries := workload.Queries(100, qlen, c.Seed+31)

	rit, err := NewRITree(c)
	if err != nil {
		return nil, err
	}
	wl, err := NewWinList(c)
	if err != nil {
		return nil, err
	}
	t.SetMethods(rit, wl)
	for _, am := range []AM{rit, wl} {
		c.logf("winlist: loading %s", am.Name())
		if err := am.Load(ivs, ids); err != nil {
			return nil, err
		}
		m, err := Measure(c, am, int64(n), queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(am.Name(), d0(am.Entries()), f1(m.AvgPhysReads), f2(m.AvgTimeMS), f1(m.AvgResults))
	}
	return t, nil
}

// AblationMinStep quantifies the §3.4 minstep pruning: long-interval
// databases allow queries to skip the deep backbone levels entirely.
func AblationMinStep(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "ablation-minstep",
		Title:  "ablation: minstep pruning (§3.4), D3(100k,2k) durations in [1500,2500], sel 0.2%",
		Header: []string{"variant", "minstep used", "log reads/query", "IO/query", "ms/query"},
		Notes: []string{
			"with tracking disabled the traversal descends to leaf level and probes empty nodes;",
			"the index probes all hit cached pages, so the gap shows in logical reads and time",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D3, N: n, D: 2000, MinDur: 1500, MaxDur: 2500}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	qlen := workload.CalibrateLength(ivs, 0.002, c.Seed+27)
	queries := workload.Queries(100, qlen, c.Seed+37)

	base, err := NewRITree(c)
	if err != nil {
		return nil, err
	}
	noms, err := NewRITreeOpts(c, ritree.Options{DisableMinStep: true}, "RI-tree (no minstep)")
	if err != nil {
		return nil, err
	}
	t.SetMethods(base, noms)
	for _, am := range []AM{base, noms} {
		if err := am.Load(ivs, ids); err != nil {
			return nil, err
		}
		m, err := Measure(c, am, int64(n), queries)
		if err != nil {
			return nil, err
		}
		used := "yes"
		if am == noms {
			used = "no"
		}
		t.AddRow(am.Name(), used, f1(m.AvgLogReads), f1(m.AvgPhysReads), f3(m.AvgTimeMS))
	}
	return t, nil
}

// AblationQueryForm compares the preliminary Figure 8 three-branch query
// against the optimized two-fold Figure 9 form (§4.3).
func AblationQueryForm(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "ablation-queryform",
		Title:  "ablation: Figure 8 three-branch vs Figure 9 two-fold query (§4.3), D1(100k,2k), sel 1.0%",
		Header: []string{"variant", "log reads/query", "IO/query", "ms/query", "results"},
		Notes: []string{
			"both forms return identical results; the two-fold form merges the covered-node range",
			"into the leftNodes scan, saving one index probe's descent per query",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	qlen := workload.CalibrateLength(ivs, 0.01, c.Seed+29)
	queries := workload.Queries(100, qlen, c.Seed+41)

	twofold, err := NewRITree(c)
	if err != nil {
		return nil, err
	}
	threebr, err := NewRITreeOpts(c, ritree.Options{ThreeBranchQuery: true}, "RI-tree (Fig. 8 form)")
	if err != nil {
		return nil, err
	}
	t.SetMethods(twofold, threebr)
	for _, am := range []AM{twofold, threebr} {
		if err := am.Load(ivs, ids); err != nil {
			return nil, err
		}
		m, err := Measure(c, am, int64(n), queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(am.Name(), f1(m.AvgLogReads), f1(m.AvgPhysReads), f3(m.AvgTimeMS), f1(m.AvgResults))
	}
	return t, nil
}

// AblationSkeleton measures the §7 outlook — partial materialization of
// the primary structure ("Skeleton Index") — against the baseline tree.
func AblationSkeleton(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:     "ablation-skeleton",
		Title:  "ablation: materialized backbone (§7 outlook), D2(100k,2k), sel 0.2%",
		Header: []string{"variant", "log reads/query", "IO/query", "ms/query"},
		Notes: []string{
			"the materialized nonempty-node set lets queries skip probes of empty backbone",
			"nodes (sparse exponential data leaves many); results are identical by construction",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D2, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)
	qlen := workload.CalibrateLength(ivs, 0.002, c.Seed+43)
	queries := workload.Queries(100, qlen, c.Seed+47)

	base, err := NewRITree(c)
	if err != nil {
		return nil, err
	}
	skel, err := NewRITreeOpts(c, ritree.Options{MaterializeBackbone: true}, "RI-tree (skeleton)")
	if err != nil {
		return nil, err
	}
	t.SetMethods(base, skel)
	for _, am := range []AM{base, skel} {
		if err := am.Load(ivs, ids); err != nil {
			return nil, err
		}
		m, err := Measure(c, am, int64(n), queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(am.Name(), f1(m.AvgLogReads), f1(m.AvgPhysReads), f3(m.AvgTimeMS))
	}
	return t, nil
}

// Experiments lists every experiment id in run order.
func Experiments() []string {
	return []string{"table1", "fig10", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"winlist", "hint", "hintopt", "collections", "reopen", "sqlstream", "join", "mixed",
		"wire",
		"ablation-minstep", "ablation-queryform", "ablation-skeleton"}
}

// Run executes the named experiment.
func Run(id string, c Config) (*Table, error) {
	switch id {
	case "table1":
		return Table1(c)
	case "fig10":
		return Fig10(c)
	case "fig12":
		return Fig12(c)
	case "fig13":
		return Fig13(c)
	case "fig14":
		return Fig14(c)
	case "fig15":
		return Fig15(c)
	case "fig16":
		return Fig16(c)
	case "fig17":
		return Fig17(c)
	case "winlist":
		return WindowListComparison(c)
	case "hint":
		return HintComparison(c)
	case "hintopt":
		return HintAblation(c)
	case "collections":
		return Collections(c)
	case "reopen":
		return Reopen(c)
	case "sqlstream":
		return SQLStream(c)
	case "join":
		return Join(c)
	case "mixed":
		return Mixed(c)
	case "wire":
		return Wire(c)
	case "ablation-minstep":
		return AblationMinStep(c)
	case "ablation-queryform":
		return AblationQueryForm(c)
	case "ablation-skeleton":
		return AblationSkeleton(c)
	}
	valid := Experiments()
	sort.Strings(valid)
	return nil, fmt.Errorf("bench: unknown experiment %q (valid: %v)", id, valid)
}
