package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ritree/internal/interval"
)

// Metrics aggregates the cost of a query batch on one access method.
type Metrics struct {
	Queries      int
	AvgPhysReads float64 // physical page reads per query — Figure 13/14's "disk accesses"
	AvgLogReads  float64
	AvgTimeMS    float64 // wall-clock per query — the "response time" plots
	AvgResults   float64
	Selectivity  float64 // measured fraction of the database per query
}

// Measure runs the query batch against am: a short warm-up, then the
// measured pass with I/O counters reset. The buffer cache keeps its steady
// state between queries, like a database server's block cache during the
// paper's runs.
//
// Response time is CPU wall-clock plus AvgPhysReads x Config.Latency: the
// configured per-block access time is charged arithmetically rather than
// slept, so a paper-scale run stays fast while time curves still track
// physical I/O the way the testbed's U-SCSI disk did.
func Measure(c Config, am AM, n int64, queries []interval.Interval) (Metrics, error) {
	warm := len(queries) / 10
	if warm > 5 {
		warm = 5
	}
	for _, q := range queries[:warm] {
		if _, err := am.QueryCount(q); err != nil {
			return Metrics{}, err
		}
	}
	am.Store().ResetStats()
	var results int64
	start := time.Now()
	for _, q := range queries {
		r, err := am.QueryCount(q)
		if err != nil {
			return Metrics{}, err
		}
		results += r
	}
	elapsed := time.Since(start)
	st := am.Store().Stats()
	nq := float64(len(queries))
	m := Metrics{
		Queries:      len(queries),
		AvgPhysReads: float64(st.PhysicalReads) / nq,
		AvgLogReads:  float64(st.LogicalReads) / nq,
		AvgTimeMS:    elapsed.Seconds()*1000/nq + float64(st.PhysicalReads)/nq*c.Latency.Seconds()*1000,
		AvgResults:   float64(results) / nq,
	}
	if n > 0 {
		m.Selectivity = m.AvgResults / float64(n)
	}
	return m, nil
}

// MethodInfo labels one access method of an experiment with its storage
// regime, so recorded benchmark entries from different regimes stay
// comparable (disk-relational methods measure physical I/O, main-memory
// methods measure pure CPU time).
type MethodInfo struct {
	Name   string `json:"name"`
	Regime string `json:"regime"`
}

// Table is one experiment's result, printed paper-style.
type Table struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Notes   []string     `json:"notes,omitempty"`
	Header  []string     `json:"header"`
	Rows    [][]string   `json:"rows"`
	Methods []MethodInfo `json:"methods,omitempty"`
	// Obs carries flattened metrics-registry counters recorded during the
	// run (experiments that wire an obs registry fill it), keyed
	// "<method>.<counter>" — machine-readable observability evidence in
	// the recorded benchmark trajectories.
	Obs map[string]int64 `json:"obs,omitempty"`
}

// AddObs folds a metrics snapshot's counters into t.Obs under prefix.
func (t *Table) AddObs(prefix string, counters map[string]int64) {
	if t.Obs == nil {
		t.Obs = make(map[string]int64)
	}
	for name, v := range counters {
		t.Obs[prefix+"."+name] = v
	}
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// SetMethods records the access methods behind the table with their
// storage regimes.
func (t *Table) SetMethods(ams ...AM) {
	t.Methods = t.Methods[:0]
	for _, am := range ams {
		t.Methods = append(t.Methods, MethodInfo{Name: am.Name(), Regime: RegimeOf(am)})
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// JSON renders the table as an indented JSON document, including the
// access-method regime labels — the machine-readable form cmd/ribench
// emits for recorded benchmark trajectories.
func (t *Table) JSON() string {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"id": %q, "error": %q}`, t.ID, err.Error())
	}
	return string(b)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ","))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v int64) string   { return fmt.Sprintf("%d", v) }
