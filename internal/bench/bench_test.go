package bench

import (
	"strconv"
	"strings"
	"testing"

	"ritree/internal/interval"
)

// The harness runs every experiment at a tiny scale and asserts the
// paper's qualitative shapes — a regression net for the figure generators
// themselves (full scale runs via cmd/ribench).

func tinyConfig() Config {
	return Config{Scale: 0.02}.WithDefaults() // floors at n = 1000-2000
}

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in %d rows", tb.ID, row, col, len(tb.Rows))
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(tb.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tb.ID, row, col, tb.Rows[row][col])
	}
	return v
}

func TestEveryExperimentRuns(t *testing.T) {
	c := tinyConfig()
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := Run(id, c)
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != id || len(tb.Rows) == 0 || len(tb.Header) == 0 {
				t.Fatalf("experiment %s produced empty table %+v", id, tb)
			}
			out := tb.String()
			if !strings.Contains(out, tb.Title) {
				t.Fatal("table text lacks the title")
			}
			if csv := tb.CSV(); strings.Count(csv, "\n") != len(tb.Rows)+1 {
				t.Fatalf("CSV has wrong row count:\n%s", csv)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestFig12Shape(t *testing.T) {
	tb, err := Fig12(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: n, T-index, IST, RI-tree, redundancy.
	for r := range tb.Rows {
		n := cell(t, tb, r, 0)
		ti := cell(t, tb, r, 1)
		ist := cell(t, tb, r, 2)
		ri := cell(t, tb, r, 3)
		if ist != n {
			t.Fatalf("row %d: IST entries %v != n %v", r, ist, n)
		}
		if ri != 2*n {
			t.Fatalf("row %d: RI entries %v != 2n", r, ri)
		}
		if ti < 2*n {
			t.Fatalf("row %d: T-index entries %v not redundant (n=%v)", r, ti, n)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At every selectivity the RI-tree must need at most as much physical
	// I/O as the competitors (ties possible at tiny scale where caches
	// hold everything; compare with slack on the raw columns IO RI / IO
	// T-idx / IO IST).
	for r := range tb.Rows {
		ri := cell(t, tb, r, 1)
		ti := cell(t, tb, r, 2)
		ist := cell(t, tb, r, 3)
		if ri > ti+1 || ri > ist+1 {
			t.Fatalf("row %d: RI I/O %v exceeds T-index %v or IST %v", r, ri, ti, ist)
		}
	}
}

func TestFig15Flatness(t *testing.T) {
	tb, err := Fig15(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// minstep must grow with the minimum stored length (§3.4 lemma).
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, 3, 1)
	if last <= first {
		t.Fatalf("minstep did not grow: %v -> %v", first, last)
	}
}

func TestFig16RedundancyGrows(t *testing.T) {
	tb, err := Fig16(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tb, 0, 7)             // redundancy at mean duration 0
	last := cell(t, tb, len(tb.Rows)-1, 7) // at mean duration 2000
	if first != 1 {
		t.Fatalf("point-data redundancy = %v, want 1", first)
	}
	if last < 3 {
		t.Fatalf("long-duration redundancy = %v, want >> 1", last)
	}
}

func TestHintComparisonShape(t *testing.T) {
	// The speedup cells are wall-clock ratios; on a loaded machine (CI
	// runners included) a scheduling stall can dent one measurement, so
	// allow several runs before declaring the shape wrong (locally the
	// margin is 4-20x above the bar).
	var tb *Table
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		tb, err = HintComparison(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for r := range tb.Rows {
			if cell(t, tb, r, 7) < 5 {
				ok = false
			}
		}
		if ok {
			break
		}
	}
	// The regime labels ride along for the recorded benchmark entries:
	// RI-tree disk-relational, both HINT variants main-memory.
	if len(tb.Methods) != 3 ||
		tb.Methods[0].Regime != RegimeDisk ||
		tb.Methods[1].Regime != RegimeMemory || tb.Methods[2].Regime != RegimeMemory {
		t.Fatalf("methods = %+v", tb.Methods)
	}
	if !strings.Contains(tb.JSON(), `"regime": "main-memory"`) {
		t.Fatalf("JSON lacks regime label:\n%s", tb.JSON())
	}
	// Columns: sel%, ms RI, ms HINT-base, ms HINT, q/s RI, q/s HINT,
	// IO HINT, x vs RI, x vs base. The acceptance bar: optimized HINT
	// intersection throughput at least 5x the RI-tree's at every
	// selectivity (at any scale the measured gap is far larger). The
	// baseline ratio is wall-clock noise at tiny scale, so assert only
	// that it was measured.
	for r := range tb.Rows {
		speedup := cell(t, tb, r, 7)
		if speedup < 5 {
			t.Fatalf("row %d: HINT speedup %v < 5x over RI-tree", r, speedup)
		}
		if io := cell(t, tb, r, 6); io != 0 {
			t.Fatalf("row %d: HINT physical I/O = %v, want 0", r, io)
		}
		if base := cell(t, tb, r, 8); base <= 0 {
			t.Fatalf("row %d: baseline ratio = %v", r, base)
		}
	}
}

func TestHintAblationShape(t *testing.T) {
	tb, err := HintAblation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: variant, ms 0.5%, q/s 0.5%, ms 2.0%, q/s 2.0%, entries,
	// flat entries. One row per optimization level; speed ordering
	// between adjacent levels is wall-clock noise at tiny scale, so
	// assert the structural invariants instead.
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(tb.Rows))
	}
	for r := range tb.Rows {
		// ms/query can legitimately round to 0.000 at tiny scale (the
		// flat layout answers in microseconds); only a negative cell is
		// malformed.
		if ms := cell(t, tb, r, 1); ms < 0 {
			t.Fatalf("row %d: ms = %v", r, ms)
		}
		entries := cell(t, tb, r, 5)
		flat := cell(t, tb, r, 6)
		if entries <= 0 {
			t.Fatalf("row %d: entries = %v", r, entries)
		}
		optimized := r >= 2 // flat and cmp-free rows
		if optimized && flat != entries {
			t.Fatalf("row %d: flat entries %v != entries %v after Optimize", r, flat, entries)
		}
		if !optimized && flat != 0 {
			t.Fatalf("row %d: flat entries %v in dynamic variant", r, flat)
		}
	}
	// The comparison-free geometry (more levels) replicates more.
	if cell(t, tb, 3, 5) <= cell(t, tb, 2, 5) {
		t.Fatalf("cmp-free entries %v not above default geometry %v",
			cell(t, tb, 3, 5), cell(t, tb, 2, 5))
	}
	for _, m := range tb.Methods {
		if m.Regime != RegimeMemory {
			t.Fatalf("method %+v not main-memory", m)
		}
	}
}

func TestRegimeOf(t *testing.T) {
	c := tinyConfig()
	rit, err := NewRITree(c)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewHINT(c)
	if err != nil {
		t.Fatal(err)
	}
	if RegimeOf(rit) != RegimeDisk {
		t.Fatalf("RI-tree regime = %q", RegimeOf(rit))
	}
	if RegimeOf(hm) != RegimeMemory {
		t.Fatalf("HINT regime = %q", RegimeOf(hm))
	}
}

func TestMeasureAccounting(t *testing.T) {
	c := tinyConfig()
	c.Latency = 0
	am, err := NewRITree(c)
	if err != nil {
		t.Fatal(err)
	}
	ivs := []interval.Interval{
		interval.New(0, 10), interval.New(5, 20), interval.New(100, 200),
	}
	if err := am.Load(ivs, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	queries := []interval.Interval{interval.Point(6), interval.Point(150)}
	m, err := Measure(c, am, 3, queries)
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 2 {
		t.Fatalf("Queries = %d", m.Queries)
	}
	// Stab 6 hits {1,2}; stab 150 hits {3}: 1.5 results/query.
	if m.AvgResults != 1.5 {
		t.Fatalf("AvgResults = %v, want 1.5", m.AvgResults)
	}
	if m.Selectivity != 0.5 {
		t.Fatalf("Selectivity = %v, want 0.5", m.Selectivity)
	}
	if m.AvgLogReads <= 0 {
		t.Fatalf("AvgLogReads = %v", m.AvgLogReads)
	}
}
