package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ritree/internal/hint"
	"ritree/internal/ritree"
	"ritree/internal/workload"
)

// The "join" experiment measures the PR-8 interval merge join against the
// nested-loops strategy it replaces: an ALLEN_OVERLAPS self-join counted
// through the SQL layer, per access method. Nested loops re-probes the
// domain index once per outer row; the merge join feeds both sides in
// lower-bound order (HINT streams its flat layout, the RI-tree pays one
// explicit sort) and sweeps a gapless-hash active set, so the index is
// never probed at all. The run is self-checking and FAILS — not just
// reports — when the two strategies disagree on the pair count, when the
// planner stops choosing the merge join, when Rows.Stats() misreports the
// strategy, when HINT's pre-ordered feeds spill sort rows, or when the
// metrics registry's sql.join.* counters diverge from the cursors that
// ran. That makes the CI smoke of this experiment a regression gate for
// the join planner, the sweep, and its observability at once.
func Join(c Config) (*Table, error) {
	c = c.WithDefaults()
	t := &Table{
		ID:    "join",
		Title: "interval merge join vs nested loops, ALLEN_OVERLAPS self-join, D1(*,500)",
		Header: []string{"method", "n", "pairs", "ms merge", "ms nested", "speedup",
			"sweep sort rows", "active peak"},
		Notes: []string{
			"both strategies count the same self-join; the run fails on any pair-count",
			"mismatch, so every recorded speedup is over a verified-identical result;",
			"HINT feeds stream pre-sorted (sweep sort rows = 0), the RI-tree sorts its feeds;",
			"expected shape: merge join >= 5x nested loops on the disk-relational RI-tree",
			"(probe avoidance dominates) and ahead on the main-memory HINT layouts",
		},
	}
	n := c.scaled(100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 500}
	ivs := workload.Generate(spec, c.Seed)
	ids := workload.IDs(n)

	const sql = "SELECT count(*) FROM iv a, iv b WHERE allen_overlaps(b.lower, b.upper, a.lower, a.upper)"
	methods := []string{ritree.IndexTypeName, hint.IndexTypeName, hint.ShardedIndexTypeName}
	var ams []AM
	for _, method := range methods {
		am, err := newCollectionAM(c, method)
		if err != nil {
			return nil, err
		}
		c.logf("join: loading %s (n=%d)...", am.Name(), n)
		if err := am.Load(ivs, ids); err != nil {
			return nil, fmt.Errorf("%s load: %w", am.Name(), err)
		}
		plan, err := am.eng.Exec("EXPLAIN "+sql, nil)
		if err != nil {
			return nil, err
		}
		if !strings.Contains(plan.Plan, "INTERVAL MERGE JOIN (ALLEN_OVERLAPS)") {
			return nil, fmt.Errorf("%s: planner did not choose the merge join:\n%s", am.Name(), plan.Plan)
		}
		obsBefore := am.reg.Snapshot()
		run := func(merge bool) (pairs, sortRows, activePeak int64, ms float64, err error) {
			am.eng.SetMergeJoinEnabled(merge)
			defer am.eng.SetMergeJoinEnabled(true)
			start := time.Now()
			rows, err := am.eng.Query(context.Background(), sql, nil)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			defer rows.Close()
			for rows.Next() {
				pairs = rows.Row()[0]
			}
			if err := rows.Err(); err != nil {
				return 0, 0, 0, 0, err
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
			st := rows.Stats()
			want := "nested_loops"
			if merge {
				want = "merge"
			}
			if st.JoinStrategy != want {
				return 0, 0, 0, 0, fmt.Errorf("JoinStrategy = %q, want %q", st.JoinStrategy, want)
			}
			return pairs, st.SweepSortRows, st.SweepActivePeak, ms, nil
		}
		c.logf("join: %s merge sweep...", am.Name())
		mergePairs, sortRows, activePeak, mergeMS, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("%s merge: %w", am.Name(), err)
		}
		c.logf("join: %s nested loops...", am.Name())
		nestedPairs, _, _, nestedMS, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("%s nested loops: %w", am.Name(), err)
		}
		if mergePairs != nestedPairs {
			return nil, fmt.Errorf("%s: merge join counted %d pairs, nested loops %d — strategies disagree",
				am.Name(), mergePairs, nestedPairs)
		}
		// HINT's flat layouts serve the sweep pre-sorted; a nonzero sort
		// spill there means the ordered-feed capability fell off the plan.
		if method != ritree.IndexTypeName && sortRows != 0 {
			return nil, fmt.Errorf("%s: ordered feeds sorted %d rows", am.Name(), sortRows)
		}
		if method == ritree.IndexTypeName && sortRows == 0 {
			return nil, fmt.Errorf("%s: sort-fallback feeds reported zero sorted rows", am.Name())
		}
		obsDelta := am.reg.Snapshot().Sub(obsBefore)
		if got := obsDelta.Counter("sql.join.merge"); got != 1 {
			return nil, fmt.Errorf("%s: registry sql.join.merge = %d over one merge cursor", am.Name(), got)
		}
		if got := obsDelta.Counter("sql.join.nested_loops"); got != 1 {
			return nil, fmt.Errorf("%s: registry sql.join.nested_loops = %d over one nested cursor", am.Name(), got)
		}
		if got := obsDelta.Counter("sql.join_sweep.pairs"); got < mergePairs {
			return nil, fmt.Errorf("%s: registry sql.join_sweep.pairs = %d below the %d pairs counted",
				am.Name(), got, mergePairs)
		}
		t.AddObs(am.Name(), obsDelta.Counters)
		t.AddRow(am.Name(), d0(int64(n)), d0(mergePairs),
			f2(mergeMS), f2(nestedMS), f2(ratio(nestedMS, mergeMS)),
			d0(sortRows), d0(activePeak))
		ams = append(ams, am)
	}
	t.SetMethods(ams...)
	return t, nil
}
