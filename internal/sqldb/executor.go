package sqldb

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// The volcano-style streaming executor. A compiled SELECT becomes a tree
// of pull-based operator nodes: leaf scans (one per FROM source, driving
// the access method chosen by the planner) feed a nested-loops join,
// residual filters run inside the scans, and a projection computes the
// output row. Sort and aggregation are explicit pipeline-breaking sinks;
// DISTINCT and LIMIT stream. Rows flow out one at a time through the
// Rows cursor (rows.go), so a LIMIT k — or an early Rows.Close — stops
// the underlying access-method scan after O(k) work instead of
// materializing the full result, and a cancelled context surfaces
// mid-scan as the cursor's error.

// execCtx carries per-execution state shared by all nodes of one cursor.
// stats is updated with atomic operations so Rows.Stats() can snapshot it
// while another goroutine drives the cursor (see stats.go); timed enables
// per-operator wall-clock collection (EXPLAIN ANALYZE only — time.Now
// per row is the one instrumentation cost kept off the normal path).
type execCtx struct {
	ctx   context.Context
	stats cursorStats
	timed bool
}

// ctxErr polls ctx without blocking.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// execNode is one operator of the pipeline. Open (re)starts the node's
// stream — scans re-evaluate their access arguments from the current
// env, which is how the nested-loops join rebinds its inner sources per
// outer row. Next advances to the next row (row data lands in the
// plan's shared env or the node's output buffer). Close releases scan
// resources; it must be idempotent, and Open after Close restarts.
type execNode interface {
	Open(ec *execCtx) error
	Next(ec *execCtx) (bool, error)
	Close() error
}

// rowNode is an execNode producing projected output rows.
type rowNode interface {
	execNode
	// Row returns the current output row, valid until the next Next call.
	Row() []int64
}

// leafHit is one (rid, full base row) delivered by a leaf access path.
type leafHit struct {
	rid rel.RowID
	row []int64
}

// scanRunner streams leaf hits through emit; returning false stops it.
type scanRunner func(emit func(rid rel.RowID, row []int64) bool) error

// srcScan is the leaf node for one FROM source. The callback-shaped
// access-method scans (Querier-style streaming) are adapted to pull form
// with iter.Pull, so the node can suspend the scan between rows and
// abandon it on Close — stopping the pull resumes the scan coroutine
// with a false return into the access method's callback, which
// terminates the underlying index traversal.
type srcScan struct {
	sp   *srcPlan
	idx  int // source position (for rids)
	env  []int64
	rids []rel.RowID

	rowBuf []int64 // GetRawInto buffer for rid-mapping access paths

	// ec is the execution context of the open pipeline; scan runners use
	// it to count leaf rows they consume without emitting (the Allen
	// residual), keeping LeafRows an honest measure of scan work.
	ec *execCtx

	// ns is this scan's plan-tree stats record (nil-tolerant).
	ns *nodeStats

	next func() (leafHit, bool)
	stop func()
	serr *error
}

func (s *srcScan) Open(ec *execCtx) error {
	s.Close()
	s.ec = ec
	run, err := s.bind()
	if err != nil {
		return err
	}
	if run == nil { // provably empty (e.g. an empty generating region)
		return nil
	}
	switch s.sp.kind {
	case accessIndexRange, accessCustom, accessAllen:
		// One probe per binding: the inner side of a nested-loops join
		// probes its index once per outer row.
		ec.stats.indexProbes.Add(1)
		s.ns.addProbes(1)
	}
	scanErr := new(error)
	seq := func(yield func(leafHit) bool) {
		*scanErr = run(func(rid rel.RowID, row []int64) bool {
			return yield(leafHit{rid, row})
		})
	}
	s.next, s.stop = iter.Pull(seq)
	s.serr = scanErr
	return nil
}

func (s *srcScan) Next(ec *execCtx) (bool, error) {
	if s.next == nil {
		return false, nil
	}
	if start := ec.startTimer(); !start.IsZero() {
		defer s.ns.timeFrom(start)
	}
	for {
		if err := ctxErr(ec.ctx); err != nil {
			return false, err
		}
		hit, ok := s.next()
		if !ok {
			err := *s.serr
			s.Close()
			return false, err
		}
		ec.stats.leafRows.Add(1)
		s.ns.addLeafRows(1)
		// The borrowed row slice is stable here: the producing scan is
		// suspended inside its callback until the next pull.
		copy(s.env[s.sp.base:s.sp.base+len(s.sp.cols)], hit.row)
		s.rids[s.idx] = hit.rid
		pass := true
		for _, f := range s.sp.filters {
			if f(s.env) == 0 {
				pass = false
				break
			}
		}
		if pass {
			s.ns.addRowsOut(1)
			return true, nil
		}
		ec.stats.residualDrops.Add(1)
		s.ns.addResidual(1)
	}
}

func (s *srcScan) Close() error {
	if s.stop != nil {
		s.stop()
	}
	s.next, s.stop, s.serr = nil, nil, nil
	return nil
}

// dropResidual records a row the access path consumed but dropped before
// emitting (the Allen exact-relation residual): it cost leaf-scan work,
// so it counts as a leaf row and as a residual drop.
func (s *srcScan) dropResidual() {
	s.ec.stats.leafRows.Add(1)
	s.ec.stats.residualDrops.Add(1)
	s.ns.addLeafRows(1)
	s.ns.addResidual(1)
}

// bind evaluates the source's access arguments against the current env
// and returns the scan runner, or (nil, nil) when the access path proves
// no row can match.
func (s *srcScan) bind() (scanRunner, error) {
	sp := s.sp
	switch sp.kind {
	case accessCollection:
		width := len(sp.cols)
		coll := sp.coll
		name := sp.ref.Collection
		return func(emit func(rel.RowID, []int64) bool) error {
			for ri, row := range coll.Rows {
				if len(row) != width {
					return fmt.Errorf("sql: collection :%s row %d has %d columns, want %d",
						name, ri, len(row), width)
				}
				if !emit(0, row) {
					return nil
				}
			}
			return nil
		}, nil

	case accessFull:
		return func(emit func(rel.RowID, []int64) bool) error {
			return sp.tab.Scan(emit)
		}, nil

	case accessIndexRange:
		low := make([]int64, 0, len(sp.eq)+2)
		high := make([]int64, 0, len(sp.eq)+2)
		for _, f := range sp.eq {
			v := f(s.env)
			low = append(low, v)
			high = append(high, v)
		}
		for _, f := range sp.lows {
			low = append(low, f(s.env))
		}
		for _, f := range sp.highs {
			high = append(high, f(s.env))
		}
		return func(emit func(rel.RowID, []int64) bool) error {
			var inner error
			err := sp.ix.Scan(low, high, func(_ []int64, rid rel.RowID) bool {
				if inner = sp.tab.GetRawInto(rid, s.rowBuf); inner != nil {
					return false
				}
				return emit(rid, s.rowBuf)
			})
			if inner != nil {
				return inner
			}
			return err
		}, nil

	case accessCustom:
		args := make([]int64, len(sp.customArgs))
		for k, f := range sp.customArgs {
			args[k] = f(s.env)
		}
		return func(emit func(rel.RowID, []int64) bool) error {
			var inner error
			err := sp.custom.Scan(sp.customOp, args, func(rid rel.RowID) bool {
				if inner = sp.tab.GetRawInto(rid, s.rowBuf); inner != nil {
					return false
				}
				return emit(rid, s.rowBuf)
			})
			if inner != nil {
				return inner
			}
			return err
		}, nil

	case accessAllen:
		q, err := allenQuery(sp.allenRel, sp.customArgs[0](s.env), sp.customArgs[1](s.env))
		if err != nil {
			return nil, fmt.Errorf("sql: %s", err)
		}
		region, ok := interval.GeneratingRegion(sp.allenRel, q)
		if !ok {
			return nil, nil // no interval can satisfy the relation
		}
		// Now-relative rows (§4.6) evaluate against the access method's
		// clock, exactly as Collection.Query does.
		now := int64(0)
		if nk, isNow := sp.custom.(NowKeeper); isNow {
			now = nk.Now()
		}
		r := sp.allenRel
		return func(emit func(rel.RowID, []int64) bool) error {
			var inner error
			err := sp.custom.Scan(opIntersects, []int64{region.Lower, region.Upper}, func(rid rel.RowID) bool {
				if inner = sp.tab.GetRawInto(rid, s.rowBuf); inner != nil {
					return false
				}
				iv := interval.New(s.rowBuf[sp.allenLoPos], s.rowBuf[sp.allenHiPos])
				if iv.Upper == interval.NowMarker {
					iv.Upper = now
					if !iv.Valid() {
						// Consumed, never emitted: born in the future of the
						// evaluation time.
						s.dropResidual()
						return true
					}
				}
				if !r.Holds(iv, q) {
					// Residual: a candidate from the generating region with
					// the wrong exact relation. Count it — it cost a scan
					// step and a heap fetch even though it is dropped here.
					s.dropResidual()
					return true
				}
				return emit(rid, s.rowBuf)
			})
			if inner != nil {
				return inner
			}
			return err
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown access kind %d", sp.kind)
}

// joinNode drives the left-deep nested-loops join over the plan's
// sources: advancing an outer source re-opens (rebinds) every source to
// its right, exactly the correlation the recursive executor used to
// express — but suspendable between rows.
type joinNode struct {
	srcs  []execNode
	depth int // deepest open source; -1 when exhausted or closed
	ns    *nodeStats
}

// statsNode returns the plan-stats record representing this join: the
// NESTED LOOPS node for a real join, or the lone scan's record when
// there is only one source (matching EXPLAIN, which prints no join line
// then).
func (j *joinNode) statsNode() *nodeStats {
	if j.ns != nil {
		return j.ns
	}
	if len(j.srcs) == 1 {
		if sc, ok := j.srcs[0].(*srcScan); ok {
			return sc.ns
		}
	}
	return nil
}

func (j *joinNode) Open(ec *execCtx) error {
	j.depth = -1
	if err := j.srcs[0].Open(ec); err != nil {
		return err
	}
	j.depth = 0
	return nil
}

func (j *joinNode) Next(ec *execCtx) (bool, error) {
	if start := ec.startTimer(); !start.IsZero() {
		defer j.ns.timeFrom(start)
	}
	i := j.depth
	last := len(j.srcs) - 1
	for i >= 0 {
		ok, err := j.srcs[i].Next(ec)
		if err != nil {
			j.depth = i
			return false, err
		}
		if !ok {
			i--
			continue
		}
		if i == last {
			j.depth = i
			j.ns.addRowsOut(1)
			return true, nil
		}
		i++
		ec.stats.joinRebinds.Add(1)
		j.ns.addRebinds(1)
		if err := j.srcs[i].Open(ec); err != nil {
			j.depth = i
			return false, err
		}
	}
	j.depth = -1
	return false, nil
}

func (j *joinNode) Close() error {
	for _, s := range j.srcs {
		_ = s.Close()
	}
	j.depth = -1
	return nil
}

// joinExec is the executable join of one compiled plan — the nested-loops
// tree or the interval merge join — plus its plan-stats record.
type joinExec interface {
	execNode
	statsNode() *nodeStats
}

// newJoinOverPlan builds the scan+filter+join pipeline of a compiled
// plan, returning the join node and the shared env / rids the scans
// populate. The env carries the plan's bind tail, filled from this
// execution's binds — the only per-execution state a (possibly cached)
// plan needs. Every operator gets a nodeStats record labelled with its
// EXPLAIN plan line, forming the tree EXPLAIN ANALYZE reports. Plans with
// a mergeSpec execute as the interval merge join instead of nested loops.
func newJoinOverPlan(p *selectPlan, binds map[string]interface{}) (joinExec, []int64, []rel.RowID, error) {
	if p.merge != nil {
		return newMergeJoinNode(p, binds)
	}
	env := make([]int64, p.envLen())
	if err := p.fillBinds(env, binds); err != nil {
		return nil, nil, nil, err
	}
	rids := make([]rel.RowID, len(p.sources))
	srcs := make([]execNode, len(p.sources))
	scanStats := make([]*nodeStats, len(p.sources))
	for i, sp := range p.sources {
		sc := &srcScan{sp: sp, idx: i, env: env, rids: rids,
			ns: &nodeStats{labelFn: func() string { return accessLine(sp) }}}
		if sp.kind != accessCollection && sp.tab != nil {
			sc.rowBuf = make([]int64, sp.tab.Schema().NumCols())
		}
		srcs[i] = sc
		scanStats[i] = sc.ns
	}
	j := &joinNode{srcs: srcs, depth: -1}
	if len(srcs) > 1 {
		j.ns = &nodeStats{label: "NESTED LOOPS", children: scanStats}
	}
	return j, env, rids, nil
}

// projectNode computes the output row of one select block.
type projectNode struct {
	in      execNode
	project []evalFn
	env     []int64
	out     []int64
}

func newProjectOverPlan(p *selectPlan, binds map[string]interface{}) (*projectNode, error) {
	join, env, _, err := newJoinOverPlan(p, binds)
	if err != nil {
		return nil, err
	}
	return &projectNode{in: join, project: p.project, env: env, out: make([]int64, len(p.project))}, nil
}

func (n *projectNode) Open(ec *execCtx) error { return n.in.Open(ec) }

func (n *projectNode) Next(ec *execCtx) (bool, error) {
	ok, err := n.in.Next(ec)
	if !ok || err != nil {
		return false, err
	}
	for i, f := range n.project {
		n.out[i] = f(n.env)
	}
	return true, nil
}

func (n *projectNode) Close() error { return n.in.Close() }
func (n *projectNode) Row() []int64 { return n.out }

// statsNode: projection is a 1:1 pass-through with no plan line of its
// own; it is represented by its input join in the stats tree.
func (n *projectNode) statsNode() *nodeStats {
	if sn, ok := n.in.(interface{ statsNode() *nodeStats }); ok {
		return sn.statsNode()
	}
	return nil
}

// concatNode streams its inputs in order — UNION ALL.
type concatNode struct {
	ins []rowNode
	cur int
	ns  *nodeStats
}

func (n *concatNode) statsNode() *nodeStats { return n.ns }

func (n *concatNode) Open(ec *execCtx) error {
	n.cur = 0
	if len(n.ins) == 0 {
		return nil
	}
	return n.ins[0].Open(ec)
}

func (n *concatNode) Next(ec *execCtx) (bool, error) {
	for n.cur < len(n.ins) {
		ok, err := n.ins[n.cur].Next(ec)
		if err != nil {
			return false, err
		}
		if ok {
			n.ns.addRowsOut(1)
			return true, nil
		}
		_ = n.ins[n.cur].Close()
		n.cur++
		if n.cur < len(n.ins) {
			if err := n.ins[n.cur].Open(ec); err != nil {
				return false, err
			}
		}
	}
	return false, nil
}

func (n *concatNode) Close() error {
	for _, in := range n.ins {
		_ = in.Close()
	}
	return nil
}

func (n *concatNode) Row() []int64 {
	if n.cur < len(n.ins) {
		return n.ins[n.cur].Row()
	}
	return nil
}

// sortKey is one resolved ORDER BY key over the output columns.
type sortKey struct {
	idx  int
	desc bool
}

// sortNode is the ORDER BY sink — a pipeline breaker: it drains its
// input on Open, sorts the materialized rows, and emits them in order.
type sortNode struct {
	in   rowNode
	keys []sortKey
	rows [][]int64
	pos  int
	ns   *nodeStats
}

func (n *sortNode) statsNode() *nodeStats { return n.ns }

func (n *sortNode) Open(ec *execCtx) error {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	n.rows, n.pos = nil, 0
	if err := n.in.Open(ec); err != nil {
		return err
	}
	for {
		ok, err := n.in.Next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n.rows = append(n.rows, append([]int64(nil), n.in.Row()...))
	}
	_ = n.in.Close()
	// The sort buffer is the pipeline's materialization cost: every
	// buffered row is a spill row.
	ec.stats.spillRows.Add(int64(len(n.rows)))
	n.ns.addSpill(int64(len(n.rows)))
	keys := n.keys
	sort.SliceStable(n.rows, func(i, j int) bool {
		for _, k := range keys {
			a, b := n.rows[i][k.idx], n.rows[j][k.idx]
			if a != b {
				if k.desc {
					return a > b
				}
				return a < b
			}
		}
		return false
	})
	return nil
}

func (n *sortNode) Next(ec *execCtx) (bool, error) {
	if n.pos >= len(n.rows) {
		return false, nil
	}
	n.pos++
	n.ns.addRowsOut(1)
	return true, nil
}

func (n *sortNode) Close() error {
	n.rows = nil
	return n.in.Close()
}

func (n *sortNode) Row() []int64 { return n.rows[n.pos-1] }

// distinctNode streams its input, dropping rows already seen. It holds
// the set of distinct rows in memory but never the full input.
type distinctNode struct {
	in   rowNode
	seen map[string]struct{}
	key  []byte // reused encoding buffer; duplicates cost zero allocations
	ns   *nodeStats
}

func (n *distinctNode) statsNode() *nodeStats { return n.ns }

func (n *distinctNode) Open(ec *execCtx) error {
	n.seen = make(map[string]struct{})
	return n.in.Open(ec)
}

func (n *distinctNode) Next(ec *execCtx) (bool, error) {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	for {
		ok, err := n.in.Next(ec)
		if !ok || err != nil {
			return false, err
		}
		key := n.key[:0]
		for _, v := range n.in.Row() {
			u := uint64(v)
			key = append(key, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		n.key = key
		// string(key) in the lookup does not allocate (map-access
		// optimization); the copy happens only when storing a new row.
		if _, dup := n.seen[string(key)]; dup {
			continue
		}
		n.seen[string(key)] = struct{}{}
		n.ns.addRowsOut(1)
		return true, nil
	}
}

func (n *distinctNode) Close() error {
	n.seen = nil
	return n.in.Close()
}

func (n *distinctNode) Row() []int64 { return n.in.Row() }

// limitNode stops the pipeline after n rows. Because every node below it
// streams, stopping here abandons the leaf scans after O(n) work.
type limitNode struct {
	in      rowNode
	n       int64
	emitted int64
	ns      *nodeStats
}

func (n *limitNode) statsNode() *nodeStats { return n.ns }

func (n *limitNode) Open(ec *execCtx) error {
	n.emitted = 0
	if n.n <= 0 {
		return nil // LIMIT 0: never open the input
	}
	return n.in.Open(ec)
}

func (n *limitNode) Next(ec *execCtx) (bool, error) {
	if n.emitted >= n.n {
		return false, nil
	}
	ok, err := n.in.Next(ec)
	if !ok || err != nil {
		return false, err
	}
	n.emitted++
	n.ns.addRowsOut(1)
	return true, nil
}

func (n *limitNode) Close() error { return n.in.Close() }
func (n *limitNode) Row() []int64 { return n.in.Row() }

// drainPlan runs a compiled plan's join pipeline to completion, calling
// emit for each joined row. DELETE uses it to collect victims; SELECT
// streams through the Rows cursor instead. Runtime faults in compiled
// expressions surface as errors.
func drainPlan(plan *selectPlan, binds map[string]interface{}, emit func(env []int64, rids []rel.RowID) bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(sqlRuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	join, env, rids, err := newJoinOverPlan(plan, binds)
	if err != nil {
		return err
	}
	ec := &execCtx{ctx: context.Background()}
	if err := join.Open(ec); err != nil {
		return err
	}
	defer join.Close()
	for {
		ok, err := join.Next(ec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !emit(env, rids) {
			return nil
		}
	}
}
