package sqldb

import "sort"

// topKNode fuses ORDER BY + LIMIT k into one bounded sink: a max-heap of
// the k best rows seen so far (heap root = current worst survivor). Each
// input row either displaces the root or is dropped immediately, so the
// sink runs in O(n log k) and retains k rows instead of materializing and
// sorting the whole input. Open drains the input — like sortNode it is a
// pipeline breaker — then sorts the k survivors for in-order emission.
type topKNode struct {
	in   rowNode
	keys []sortKey
	k    int64
	rows [][]int64
	pos  int
	ns   *nodeStats
}

func (n *topKNode) statsNode() *nodeStats { return n.ns }

// less orders rows by the ORDER BY keys (ties keep input order stable via
// the caller's choice of sort).
func (n *topKNode) less(a, b []int64) bool {
	for _, k := range n.keys {
		av, bv := a[k.idx], b[k.idx]
		if av != bv {
			if k.desc {
				return av > bv
			}
			return av < bv
		}
	}
	return false
}

// siftDown restores the max-heap property at i over n.rows[:size]: every
// parent sorts after (or equal to) its children, so rows[0] is the worst
// retained row.
func (n *topKNode) siftDown(i, size int) {
	for {
		worst := i
		if l := 2*i + 1; l < size && n.less(n.rows[worst], n.rows[l]) {
			worst = l
		}
		if r := 2*i + 2; r < size && n.less(n.rows[worst], n.rows[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		n.rows[i], n.rows[worst] = n.rows[worst], n.rows[i]
		i = worst
	}
}

func (n *topKNode) Open(ec *execCtx) error {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	n.rows, n.pos = nil, 0
	if n.k <= 0 {
		return nil // TOP-K 0: never open the input
	}
	if err := n.in.Open(ec); err != nil {
		return err
	}
	for {
		ok, err := n.in.Next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		row := n.in.Row()
		if int64(len(n.rows)) < n.k {
			n.rows = append(n.rows, append([]int64(nil), row...))
			if int64(len(n.rows)) == n.k {
				for i := len(n.rows)/2 - 1; i >= 0; i-- {
					n.siftDown(i, len(n.rows))
				}
			}
			continue
		}
		// Heap is full: a row survives only by beating the current worst.
		if n.less(row, n.rows[0]) {
			copy(n.rows[0], row)
			n.siftDown(0, len(n.rows))
		}
	}
	_ = n.in.Close()
	// Only the retained rows are materialized — that bound is the whole
	// point of the fused sink, and what the spill counter reports.
	ec.stats.spillRows.Add(int64(len(n.rows)))
	n.ns.addSpill(int64(len(n.rows)))
	// SliceStable cannot recover input order here (the heap shuffled it),
	// but ties already fought for survival through the same comparator, so
	// a plain sort of the survivors is all the ordering the sink promises.
	sort.Slice(n.rows, func(i, j int) bool { return n.less(n.rows[i], n.rows[j]) })
	return nil
}

func (n *topKNode) Next(ec *execCtx) (bool, error) {
	if n.pos >= len(n.rows) {
		return false, nil
	}
	n.pos++
	n.ns.addRowsOut(1)
	return true, nil
}

func (n *topKNode) Close() error {
	n.rows = nil
	return n.in.Close()
}

func (n *topKNode) Row() []int64 { return n.rows[n.pos-1] }
