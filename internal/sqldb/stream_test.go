package sqldb

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// streamEngine builds an engine with one indexed table of n rows
// (a ascending, b = a*2).
func streamEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int, b int)", nil)
	mustExec(t, e, "CREATE INDEX t_a ON t (a)", nil)
	for i := 0; i < n; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2), nil)
	}
	return e
}

func collectRows(t *testing.T, rows *Rows) [][]int64 {
	t.Helper()
	var out [][]int64
	for rows.Next() {
		out = append(out, append([]int64(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return out
}

func TestQueryExecParity(t *testing.T) {
	e := streamEngine(t, 50)
	for _, sql := range []string{
		"SELECT a, b FROM t WHERE a BETWEEN 10 AND 20",
		"SELECT a FROM t WHERE a < 5 UNION ALL SELECT b FROM t WHERE a < 3",
		"SELECT b, a FROM t ORDER BY a DESC LIMIT 7",
		"SELECT DISTINCT b / 10 FROM t ORDER BY 1",
		"SELECT count(*), min(a), max(b) FROM t WHERE a >= 25",
	} {
		res, err := e.Exec(sql, nil)
		if err != nil {
			t.Fatalf("%s: Exec: %v", sql, err)
		}
		rows, err := e.Query(context.Background(), sql, nil)
		if err != nil {
			t.Fatalf("%s: Query: %v", sql, err)
		}
		got := collectRows(t, rows)
		if !reflect.DeepEqual(got, res.Rows) && !(len(got) == 0 && len(res.Rows) == 0) {
			t.Fatalf("%s: cursor rows %v != Exec rows %v", sql, got, res.Rows)
		}
		if !reflect.DeepEqual(rows.Columns(), res.Cols) {
			t.Fatalf("%s: cursor cols %v != Exec cols %v", sql, rows.Columns(), res.Cols)
		}
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	e := streamEngine(t, 1)
	if _, err := e.Query(context.Background(), "INSERT INTO t VALUES (9, 9)", nil); err == nil ||
		!strings.Contains(err.Error(), "requires a SELECT") {
		t.Fatalf("Query(INSERT) = %v, want requires-a-SELECT error", err)
	}
}

func TestLimitStopsLeafScan(t *testing.T) {
	e := streamEngine(t, 500)
	rows, err := e.Query(context.Background(), "SELECT a FROM t WHERE a >= 0 LIMIT 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, rows)
	if len(got) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(got))
	}
	if st := rows.Stats(); st.LeafRows > 3 {
		t.Fatalf("LIMIT 3 pulled %d leaf rows from the index scan, want <= 3", st.LeafRows)
	}
}

func TestEarlyCloseReleasesEngine(t *testing.T) {
	e := streamEngine(t, 100)
	rows, err := e.Query(context.Background(), "SELECT a FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() || !rows.Next() {
		t.Fatalf("expected at least two rows; err=%v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if st := rows.Stats(); st.LeafRows > 2 {
		t.Fatalf("closed after 2 rows but scanned %d leaf rows", st.LeafRows)
	}
	// The statement lock must be free again.
	mustExec(t, e, "INSERT INTO t VALUES (1000, 2000)", nil)
	if rows.Next() {
		t.Fatal("Next after Close returned a row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}

func TestContextCancelMidScan(t *testing.T) {
	e := streamEngine(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.Query(ctx, "SELECT a FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	cancel()
	n := 0
	for rows.Next() {
		n++
	}
	if n > 0 {
		t.Fatalf("cursor yielded %d rows after cancellation", n)
	}
	if err := rows.Err(); err != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	// The engine is usable again (the auto-close released the lock).
	mustExec(t, e, "SELECT a FROM t LIMIT 1", nil)
}

func TestContextCancelledBeforeStart(t *testing.T) {
	e := streamEngine(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := e.Query(ctx, "SELECT a FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next on a cancelled ctx returned a row")
	}
	if rows.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
}

func TestRowsScanAndColumns(t *testing.T) {
	e := streamEngine(t, 10)
	rows, err := e.Query(context.Background(), "SELECT a, b AS twice FROM t WHERE a = 4", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); !reflect.DeepEqual(cols, []string{"a", "twice"}) {
		t.Fatalf("Columns = %v", cols)
	}
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var a, b int64
	if err := rows.Scan(&a, &b); err != nil {
		t.Fatal(err)
	}
	if a != 4 || b != 8 {
		t.Fatalf("Scan got (%d, %d)", a, b)
	}
	if err := rows.Scan(&a); err == nil {
		t.Fatal("Scan with wrong arity did not error")
	}
}

func TestLimitEdgeCases(t *testing.T) {
	e := streamEngine(t, 10)
	r := mustExec(t, e, "SELECT a FROM t LIMIT 0", nil)
	if len(r.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT a FROM t ORDER BY a DESC LIMIT :k", map[string]interface{}{"k": 2})
	if len(r.Rows) != 2 || r.Rows[0][0] != 9 || r.Rows[1][0] != 8 {
		t.Fatalf("ORDER BY ... LIMIT :k = %v", r.Rows)
	}
	if _, err := e.Exec("SELECT a FROM t LIMIT 0 - 1", nil); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative LIMIT = %v, want error", err)
	}
	// LIMIT over a union chain caps the concatenated stream.
	r = mustExec(t, e, "SELECT a FROM t WHERE a < 2 UNION ALL SELECT a FROM t WHERE a < 2 LIMIT 3", nil)
	if len(r.Rows) != 3 {
		t.Fatalf("union LIMIT 3 = %v", r.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := streamEngine(t, 10)
	r := mustExec(t, e, "SELECT DISTINCT a / 5 FROM t ORDER BY 1", nil)
	if len(r.Rows) != 2 || r.Rows[0][0] != 0 || r.Rows[1][0] != 1 {
		t.Fatalf("DISTINCT = %v", r.Rows)
	}
	// DISTINCT applies per union branch.
	r = mustExec(t, e, "SELECT DISTINCT a / 5 FROM t UNION ALL SELECT DISTINCT a / 5 FROM t", nil)
	if len(r.Rows) != 4 {
		t.Fatalf("DISTINCT per branch = %v", r.Rows)
	}
}

func TestRuntimeErrorThroughCursor(t *testing.T) {
	e := streamEngine(t, 3)
	rows, err := e.Query(context.Background(), "SELECT a, 10 / a FROM t WHERE a < 2 ORDER BY a DESC", nil)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("Err = %v, want division by zero", err)
	}
	mustExec(t, e, "SELECT a FROM t LIMIT 1", nil) // lock released after the fault
}

func TestAllenResidualOverTransient(t *testing.T) {
	// Without any domain index, ALLEN_* still evaluates as a residual
	// predicate — here over a transient collection source.
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE dummy (x int)", nil)
	mustExec(t, e, "INSERT INTO dummy VALUES (0)", nil)
	tr := &Transient{Cols: []string{"lo", "hi", "id"}, Rows: [][]int64{
		{10, 20, 1}, {20, 30, 2}, {5, 40, 3}, {12, 18, 4},
	}}
	r := mustExec(t, e, "SELECT id FROM TABLE(:ivs) WHERE allen_during(lo, hi, 10, 20) ORDER BY id",
		map[string]interface{}{"ivs": tr})
	if len(r.Rows) != 1 || r.Rows[0][0] != 4 {
		t.Fatalf("allen_during over transient = %v, want [[4]]", r.Rows)
	}
	r = mustExec(t, e, "SELECT id FROM TABLE(:ivs) WHERE allen_meets(lo, hi, 20, 30) ORDER BY id",
		map[string]interface{}{"ivs": tr})
	if len(r.Rows) != 1 || r.Rows[0][0] != 1 {
		t.Fatalf("allen_meets over transient = %v, want [[1]]", r.Rows)
	}
	if _, err := e.Exec("SELECT id FROM TABLE(:ivs) WHERE allen_during(lo, hi, 20)",
		map[string]interface{}{"ivs": tr}); err == nil {
		t.Fatal("allen with 3 args did not error")
	}
}

func TestExplainShowsPipelineSinks(t *testing.T) {
	e := streamEngine(t, 1)
	r := mustExec(t, e, "EXPLAIN SELECT DISTINCT a FROM t ORDER BY a LIMIT 5", nil)
	// ORDER BY + LIMIT fuse into the top-k sink; each alone keeps its
	// dedicated plan line.
	for _, want := range []string{"SORT TOP-K 5", "DISTINCT"} {
		if !strings.Contains(r.Plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, r.Plan)
		}
	}
	r = mustExec(t, e, "EXPLAIN SELECT a FROM t LIMIT 5", nil)
	if !strings.Contains(r.Plan, "LIMIT 5") {
		t.Fatalf("plan missing %q:\n%s", "LIMIT 5", r.Plan)
	}
	r = mustExec(t, e, "EXPLAIN SELECT a FROM t ORDER BY a", nil)
	if !strings.Contains(r.Plan, "SORT ORDER BY") {
		t.Fatalf("plan missing %q:\n%s", "SORT ORDER BY", r.Plan)
	}
}
