package sqldb

import "container/list"

// Plan cache: compiled SELECT plans keyed by the full SQL text, reused
// across executions. The bind-slot refactor (see selectPlan) made plans
// bind-free — a plan references :name binds through env tail slots filled
// at instantiation — so a statement whose shape does not depend on the
// bind *values* can be planned once and re-instantiated per execution.
//
// Eligibility is syntactic (stmtCacheable): every union block must be a
// plain SELECT — no GROUP BY, no aggregates, no TABLE(:name) transient
// sources. Grouped blocks compile per-execution aggregate state into the
// plan, and transient sources resolve a bind-supplied relation at plan
// time; both would leak one execution's state into the next.
//
// Cached entries hold live storage handles (*rel.Table, *rel.Index,
// CustomIndex). DML never invalidates those — tables are stable objects
// and cursors rewire clones onto snapshot views — but any catalog change
// does, so every DDL path (and anything else that alters plan shape,
// like toggling the merge join) purges the cache via bumpEpoch.
//
// Templates are never executed directly: rewirePlan mutates a plan's
// storage handles in place, so every use — hit or miss — executes a
// shallow clone (clonePlan) and the template stays pristine.

// DefaultPlanCacheSize is the per-engine entry cap until SetPlanCacheSize
// overrides it.
const DefaultPlanCacheSize = 128

// planEntry is one cached statement: the per-union-block plan templates.
type planEntry struct {
	key   string
	plans []*selectPlan
}

// planCache is an LRU of planEntry. All methods are called under
// Engine.mu; the counters are plain ints read through PlanCacheStats.
type planCache struct {
	size    int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, evictions int64
}

func newPlanCache(size int) *planCache {
	return &planCache{size: size, entries: make(map[string]*list.Element), lru: list.New()}
}

func (pc *planCache) enabled() bool { return pc.size > 0 }

// get returns the cached templates for key, counting the lookup as a hit
// or miss.
func (pc *planCache) get(key string) ([]*selectPlan, bool) {
	el, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	pc.lru.MoveToFront(el)
	return el.Value.(*planEntry).plans, true
}

// put inserts (or refreshes) key's templates and returns how many entries
// the size cap evicted.
func (pc *planCache) put(key string, plans []*selectPlan) int64 {
	if el, ok := pc.entries[key]; ok {
		el.Value.(*planEntry).plans = plans
		pc.lru.MoveToFront(el)
		return 0
	}
	pc.entries[key] = pc.lru.PushFront(&planEntry{key: key, plans: plans})
	var evicted int64
	for pc.lru.Len() > pc.size {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.entries, back.Value.(*planEntry).key)
		pc.evictions++
		evicted++
	}
	return evicted
}

// bumpEpoch purges every entry — the catalog changed, so any cached
// storage handle may be stale.
func (pc *planCache) bumpEpoch() {
	pc.entries = make(map[string]*list.Element)
	pc.lru.Init()
}

// setSize adjusts the cap; 0 disables caching and clears the cache.
func (pc *planCache) setSize(n int) {
	if n < 0 {
		n = 0
	}
	pc.size = n
	if n == 0 {
		pc.bumpEpoch()
		return
	}
	for pc.lru.Len() > n {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.entries, back.Value.(*planEntry).key)
		pc.evictions++
	}
}

// clonePlan shallow-copies a plan for execution: per-source structs and
// the merge spec are copied (rewirePlan mutates their handle fields);
// compiled evalFns, slices, and the bindSlots map are immutable after
// planning and stay shared.
func clonePlan(p *selectPlan) *selectPlan {
	q := *p
	q.sources = make([]*srcPlan, len(p.sources))
	for i, sp := range p.sources {
		c := *sp
		q.sources[i] = &c
	}
	if p.merge != nil {
		m := *p.merge
		q.merge = &m
	}
	return &q
}

// stmtCacheable reports whether every union block of s is a plain SELECT
// whose plan is execution-independent (see the package comment above).
func stmtCacheable(s *SelectStmt) bool {
	for blk := s; blk != nil; blk = blk.Union {
		if len(blk.GroupBy) > 0 || isAggregate(blk) {
			return false
		}
		for _, ref := range blk.From {
			if ref.Collection != "" {
				return false
			}
		}
	}
	return true
}

// SetPlanCacheSize caps the engine's plan cache at n entries; 0 disables
// caching entirely (and clears it).
func (e *Engine) SetPlanCacheSize(n int) {
	e.mu.Lock()
	e.plans.setSize(n)
	e.mu.Unlock()
}

// PlanCacheStats reports the plan cache's lifetime hit/miss/eviction
// counts and its current entry count.
func (e *Engine) PlanCacheStats() (hits, misses, evictions int64, entries int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.plans.hits, e.plans.misses, e.plans.evictions, e.plans.lru.Len()
}

// bumpPlanEpochLocked purges the plan cache at a catalog change. Caller
// holds e.mu.
func (e *Engine) bumpPlanEpochLocked() { e.plans.bumpEpoch() }
