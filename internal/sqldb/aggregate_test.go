package sqldb

import "testing"

func TestAggregates(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (k int, v int)", nil)
	mustExec(t, e, "CREATE INDEX tk ON t (k)", nil)
	for i := 0; i < 100; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:k, :v)",
			map[string]interface{}{"k": i % 10, "v": i})
	}
	r := mustExec(t, e, "SELECT count(*) FROM t", nil)
	if len(r.Rows) != 1 || r.Rows[0][0] != 100 {
		t.Fatalf("count(*) = %v", r.Rows)
	}
	if r.Cols[0] != "count" {
		t.Fatalf("cols = %v", r.Cols)
	}
	r = mustExec(t, e, "SELECT count(*), sum(v), min(v), max(v) FROM t WHERE k = 3", nil)
	// k=3: v in {3, 13, ..., 93}, 10 values, sum = 480.
	row := r.Rows[0]
	if row[0] != 10 || row[1] != 480 || row[2] != 3 || row[3] != 93 {
		t.Fatalf("aggregates = %v", row)
	}
	// Expression argument and alias.
	r = mustExec(t, e, "SELECT sum(v*2) total FROM t WHERE k = 3", nil)
	if r.Rows[0][0] != 960 || r.Cols[0] != "total" {
		t.Fatalf("sum expr = %v %v", r.Rows, r.Cols)
	}
	// COUNT over empty set is 0; MIN/MAX over empty set errors.
	r = mustExec(t, e, "SELECT count(*) FROM t WHERE k = 99", nil)
	if r.Rows[0][0] != 0 {
		t.Fatalf("empty count = %v", r.Rows)
	}
	if _, err := e.Exec("SELECT min(v) FROM t WHERE k = 99", nil); err == nil {
		t.Fatal("MIN over empty set did not error")
	}
}

func TestAggregateErrors(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int)", nil)
	mustExec(t, e, "INSERT INTO t VALUES (1)", nil)
	for _, bad := range []string{
		"SELECT count(*), a FROM t", // mixed aggregate and scalar
		"SELECT sum(*) FROM t",      // * only valid for COUNT
		"SELECT sum(a, a) FROM t",   // arity
		"SELECT count(a, a) FROM t", // arity
	} {
		if _, err := e.Exec(bad, nil); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestAggregateWithJoinAndUnion(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (k int, v int)", nil)
	for i := 0; i < 30; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:k, :v)", map[string]interface{}{"k": i % 3, "v": i})
	}
	coll := &Transient{Cols: []string{"k"}, Rows: [][]int64{{0}, {2}}}
	r := mustExec(t, e, "SELECT count(*) FROM TABLE(:ks) g, t WHERE t.k = g.k",
		map[string]interface{}{"ks": coll})
	if r.Rows[0][0] != 20 {
		t.Fatalf("join count = %v", r.Rows)
	}
	// Aggregates in UNION ALL branches stack rows.
	r = mustExec(t, e, "SELECT count(*) FROM t WHERE k = 0 UNION ALL SELECT count(*) FROM t WHERE k = 1", nil)
	if len(r.Rows) != 2 || r.Rows[0][0] != 10 || r.Rows[1][0] != 10 {
		t.Fatalf("union agg = %v", r.Rows)
	}
}
