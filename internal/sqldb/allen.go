package sqldb

import (
	"fmt"
	"strings"

	"ritree/internal/interval"
)

// The §4.5 fine-grained interval operators on the SQL surface: one
// operator per Allen relation,
//
//	ALLEN_DURING(lowerCol, upperCol, :qlo, :qhi)
//
// matching every row whose stored interval i satisfies "i during
// [qlo, qhi]". All thirteen are planned through the shared
// generating-region strategy (interval.GeneratingRegion): the driving
// access method runs an ordinary INTERSECTS scan over the region derived
// from the relation, and the executor applies the exact relation as a
// residual filter over the stored bounds. Any indextype that serves
// INTERSECTS therefore serves every Allen operator with no per-method
// code — ritree, hint, hint_sharded, and whatever an embedder registers.

// allenPrefix starts every Allen operator name.
const allenPrefix = "allen_"

// opIntersects is the INTERSECTS operator every interval indextype
// serves; the generating-region plan rewrites ALLEN_* scans onto it.
const opIntersects = "intersects"

// allenOps maps the SQL operator names to relations. The names use
// underscores where the relation's conventional name uses hyphens
// (ALLEN_FINISHED_BY for "finished-by").
var allenOps = func() map[string]interval.Relation {
	m := make(map[string]interval.Relation, interval.NumRelations)
	for r := interval.Relation(0); int(r) < interval.NumRelations; r++ {
		name := allenPrefix + strings.ReplaceAll(r.String(), "-", "_")
		m[name] = r
	}
	return m
}()

// AllenOperatorNames lists the thirteen ALLEN_* SQL operator names in
// relation order (for docs and the risql \help output).
func AllenOperatorNames() []string {
	names := make([]string, 0, interval.NumRelations)
	for r := interval.Relation(0); int(r) < interval.NumRelations; r++ {
		names = append(names, allenPrefix+strings.ReplaceAll(r.String(), "-", "_"))
	}
	return names
}

// allenRelation resolves an operator name (case-insensitively) to its
// relation.
func allenRelation(name string) (interval.Relation, bool) {
	r, ok := allenOps[strings.ToLower(name)]
	return r, ok
}

// allenQuery validates the operator's query bounds. An inverted query
// interval is an error (matching Querier.Query), surfaced as a runtime
// fault because the bounds may come from join columns evaluated per row.
// The message carries no "sql: " prefix — sqlRuntimeError adds it.
func allenQuery(r interval.Relation, qlo, qhi int64) (interval.Interval, error) {
	if qlo > qhi {
		return interval.Interval{}, fmt.Errorf("%s got the inverted query interval [%d, %d]",
			strings.ToUpper(allenPrefix+strings.ReplaceAll(r.String(), "-", "_")), qlo, qhi)
	}
	return interval.New(qlo, qhi), nil
}
