package sqldb

import (
	"errors"
	"fmt"
	"strings"

	"ritree/internal/rel"
)

// Explicit transactions: BEGIN / COMMIT / ROLLBACK with snapshot-isolated
// reads and optimistic, first-committer-wins writes.
//
// BEGIN pins a snapshot view (see view.go): every SELECT inside the
// transaction answers from it, so reads are repeatable regardless of
// concurrent auto-commit writers. INSERT and DELETE are buffered — DELETE
// resolves its victims against the snapshot, INSERT records the row — and
// nothing touches live storage until COMMIT. COMMIT validates that no
// concurrent writer changed a touched table since BEGIN (compared by the
// tables' content checksums, the same incrementally maintained XOR the
// domain-index attach verification uses) and only then applies the
// buffered operations; a validation failure aborts with ErrTxnConflict
// and applies nothing. ROLLBACK discards the buffer.
//
// Scope and limits, deliberately documented rather than hidden:
//
//   - One transaction per Engine (session) at a time. SQL DML issued while
//     it is open joins it, whichever goroutine issues it; programmatic
//     collection writes (InsertRow, BulkInsert, DeleteRowID) stay
//     auto-commit and are exactly the concurrent writers COMMIT detects.
//   - Reads do not see the transaction's own buffered writes (snapshot
//     semantics without a private workspace).
//   - DDL (CREATE/DROP) is rejected inside a transaction.
//   - Buffered inserts are validated against the table schema at
//     statement time, but domain-index validation runs at COMMIT when the
//     ops are applied; a mid-apply failure surfaces the error after a
//     consistent prefix, like a DELETE aborting mid-batch.

// ErrTxnConflict aborts a COMMIT whose touched tables were changed by a
// concurrent writer after BEGIN: the first committer won.
var ErrTxnConflict = errors.New("sql: transaction conflict: table changed since BEGIN (first committer wins)")

// txnOp is one buffered mutation.
type txnOp struct {
	table string // lower-cased
	del   bool
	row   []int64
	rid   rel.RowID // victims only
}

// txnState is an open transaction. All fields are guarded by e.mu.
type txnState struct {
	view    *execView
	base    map[string]uint64 // content checksum per table at BEGIN
	ops     []txnOp
	touched map[string]bool
	// deleted dedupes victims across the transaction's DELETE statements:
	// the snapshot keeps serving a row this transaction already deleted,
	// so a second WHERE match must not buffer it twice.
	deleted map[string]map[rel.RowID]bool
}

// txnCounter bumps a txn.* metric. Caller holds e.mu (which guards e.reg).
func (e *Engine) txnCounter(name string) {
	if e.reg != nil {
		e.reg.Counter(name).Inc()
	}
}

func (e *Engine) execBegin() (*Result, error) {
	if e.txn != nil {
		return nil, fmt.Errorf("sql: a transaction is already open (COMMIT or ROLLBACK it first)")
	}
	v, err := e.acquireViewLocked()
	if err != nil {
		return nil, err
	}
	// The base checksums are read from the live tables, which equal the
	// snapshot state: the view was pinned (or reused) at a committed
	// boundary under e.mu, and no write has run since.
	base := make(map[string]uint64)
	for _, name := range e.db.Tables() {
		tab, err := e.db.Table(name)
		if err != nil {
			e.releaseView(v)
			return nil, err
		}
		base[strings.ToLower(name)] = tab.ContentChecksum()
	}
	e.txn = &txnState{
		view:    v,
		base:    base,
		touched: make(map[string]bool),
		deleted: make(map[string]map[rel.RowID]bool),
	}
	e.txnCounter("txn.begins")
	return &Result{}, nil
}

func (e *Engine) execCommit() (*Result, error) {
	t := e.txn
	if t == nil {
		return nil, fmt.Errorf("sql: COMMIT without an open transaction")
	}
	e.txn = nil
	defer e.releaseView(t.view)
	// First-committer-wins validation: any change to a touched table since
	// BEGIN aborts. The checksum is content-derived, so it catches
	// insert-then-delete churn that nets to the same row count.
	for tl := range t.touched {
		tab, err := e.db.Table(tl)
		if err != nil {
			e.txnCounter("txn.conflicts")
			return nil, fmt.Errorf("%w: table %s was dropped", ErrTxnConflict, tl)
		}
		if tab.ContentChecksum() != t.base[tl] {
			e.txnCounter("txn.conflicts")
			return nil, fmt.Errorf("%w: table %s", ErrTxnConflict, tl)
		}
	}
	var affected int64
	for _, op := range t.ops {
		tab, err := e.db.Table(op.table)
		if err != nil {
			return nil, err
		}
		if op.del {
			err = e.deleteRowLocked(op.table, tab, op.rid, op.row)
		} else {
			_, err = e.insertRowLocked(op.table, tab, op.row)
		}
		if err != nil {
			return nil, err
		}
		affected++
	}
	e.txnCounter("txn.commits")
	return &Result{Affected: affected}, nil
}

func (e *Engine) execRollback() (*Result, error) {
	t := e.txn
	if t == nil {
		return nil, fmt.Errorf("sql: ROLLBACK without an open transaction")
	}
	e.txn = nil
	e.releaseView(t.view)
	e.txnCounter("txn.rollbacks")
	return &Result{}, nil
}

// txnInsert buffers an INSERT: schema-validated now, index-validated when
// COMMIT applies it. Caller holds e.mu with e.txn open.
func (e *Engine) txnInsert(s *InsertStmt, binds map[string]interface{}) (*Result, error) {
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if len(s.Values) != tab.Schema().NumCols() {
		return nil, fmt.Errorf("sql: INSERT supplies %d values, table %s has %d columns",
			len(s.Values), s.Table, tab.Schema().NumCols())
	}
	row := make([]int64, len(s.Values))
	for i, ex := range s.Values {
		v, err := evalConst(ex, binds)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	tl := strings.ToLower(s.Table)
	e.txn.ops = append(e.txn.ops, txnOp{table: tl, row: row})
	e.txn.touched[tl] = true
	return &Result{Affected: 1}, nil
}

// txnDelete buffers a DELETE: the WHERE clause is planned like a SELECT
// and evaluated against the transaction's snapshot view, so the victim
// set is repeatable. Caller holds e.mu with e.txn open.
func (e *Engine) txnDelete(s *DeleteStmt, binds map[string]interface{}) (*Result, error) {
	t := e.txn
	sel := &SelectStmt{
		Items: []SelectItem{{Star: true}},
		From:  []TableRef{{Name: s.Table}},
		Where: s.Where,
	}
	plan, err := e.planSelect(sel, binds)
	if err != nil {
		return nil, err
	}
	if err := rewirePlan(plan, t.view); err != nil {
		return nil, err
	}
	stab, err := t.view.shadow.Table(s.Table)
	if err != nil {
		return nil, err
	}
	tl := strings.ToLower(s.Table)
	dels := t.deleted[tl]
	if dels == nil {
		dels = make(map[rel.RowID]bool)
		t.deleted[tl] = dels
	}
	width := stab.Schema().NumCols()
	var n int64
	err = drainPlan(plan, binds, func(env []int64, rids []rel.RowID) bool {
		rid := rids[0]
		if dels[rid] {
			return true // already deleted earlier in this transaction
		}
		dels[rid] = true
		row := make([]int64, width)
		copy(row, env[:width])
		t.ops = append(t.ops, txnOp{table: tl, del: true, row: row, rid: rid})
		n++
		return true
	})
	if err != nil {
		return nil, err
	}
	t.touched[tl] = true
	return &Result{Affected: n}, nil
}
