package sqldb

import (
	"slices"
	"strings"
	"testing"

	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

// fakeIntervalIndex is a minimal indextype for engine-level collection
// tests: a slice of (lo, hi, rid) scanned linearly.
type fakeIntervalIndex struct {
	name, table string
	cols        []string
	lo, hi      int
	rows        map[rel.RowID][2]int64
	bulkCalls   int
}

func (f *fakeIntervalIndex) Name() string      { return f.name }
func (f *fakeIntervalIndex) Table() string     { return f.table }
func (f *fakeIntervalIndex) Columns() []string { return f.cols }
func (f *fakeIntervalIndex) HasOperator(op string) bool {
	return op == "intersects" || op == "contains_point"
}
func (f *fakeIntervalIndex) OnInsert(row []int64, rid rel.RowID) error {
	f.rows[rid] = [2]int64{row[f.lo], row[f.hi]}
	return nil
}
func (f *fakeIntervalIndex) OnDelete(row []int64, rid rel.RowID) error {
	delete(f.rows, rid)
	return nil
}
func (f *fakeIntervalIndex) OnBulkInsert(rows [][]int64, rids []rel.RowID) error {
	f.bulkCalls++
	for i, row := range rows {
		f.rows[rids[i]] = [2]int64{row[f.lo], row[f.hi]}
	}
	return nil
}
func (f *fakeIntervalIndex) Scan(op string, args []int64, fn func(rid rel.RowID) bool) error {
	qlo, qhi := args[0], args[0]
	if op == "intersects" {
		qhi = args[1]
	}
	for rid, iv := range f.rows {
		if iv[0] <= qhi && qlo <= iv[1] {
			if !fn(rid) {
				return nil
			}
		}
	}
	return nil
}
func (f *fakeIntervalIndex) Drop() error { return nil }

func newCollectionEngine(t *testing.T) *Engine {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	e.RegisterIndexType("fake", IndexTypeFuncs{
		Create: func(eng *Engine, indexName, table string, cols []string, _ map[string]string) (CustomIndex, error) {
			tab, err := eng.DB().Table(table)
			if err != nil {
				return nil, err
			}
			f := &fakeIntervalIndex{
				name: indexName, table: table, cols: cols,
				lo:   tab.Schema().ColIndex(cols[0]),
				hi:   tab.Schema().ColIndex(cols[1]),
				rows: make(map[rel.RowID][2]int64),
			}
			err = tab.Scan(func(rid rel.RowID, row []int64) bool {
				f.rows[rid] = [2]int64{row[f.lo], row[f.hi]}
				return true
			})
			return f, err
		},
	})
	return e
}

func TestEngineCreateCollectionStatement(t *testing.T) {
	e := newCollectionEngine(t)
	if _, err := e.Exec("CREATE COLLECTION spans USING fake", nil); err != nil {
		t.Fatal(err)
	}
	infos := e.Collections()
	if len(infos) != 1 || infos[0].Name != "spans" || infos[0].Method != "fake" {
		t.Fatalf("Collections = %v", infos)
	}
	if m, ok := e.CollectionMethod("spans"); !ok || m != "fake" {
		t.Fatalf("CollectionMethod = %q, %v", m, ok)
	}
	if _, err := e.Exec("INSERT INTO spans VALUES (10, 20, 7)", nil); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec("SELECT id FROM spans WHERE intersects(lower, upper, 15, 16)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != 7 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Unknown method errors and leaves no half-made collection behind.
	if _, err := e.Exec("CREATE COLLECTION bad USING nope", nil); err == nil {
		t.Fatal("unknown access method accepted")
	}
	if _, err := e.DB().Table("bad"); err == nil {
		t.Fatal("failed CREATE COLLECTION left the base table behind")
	}
	// DROP COLLECTION removes table, index and definition.
	if _, err := e.Exec("DROP COLLECTION spans", nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Collections()) != 0 {
		t.Fatal("collection survived DROP COLLECTION")
	}
	if _, err := e.Exec("DROP COLLECTION spans", nil); err == nil {
		t.Fatal("double DROP COLLECTION succeeded")
	}
	// DROP COLLECTION refuses plain tables; DROP TABLE handles those.
	e.MustExec("CREATE TABLE plain (a int)", nil)
	if _, err := e.Exec("DROP COLLECTION plain", nil); err == nil || !strings.Contains(err.Error(), "no collection") {
		t.Fatalf("DROP COLLECTION on a plain table: %v", err)
	}
}

func TestEngineDefaultAccessMethodAndRegistry(t *testing.T) {
	e := newCollectionEngine(t)
	if got := e.IndexTypes(); !slices.Equal(got, []string{"fake"}) {
		t.Fatalf("IndexTypes = %v", got)
	}
	// Default method is "ritree", which this engine does not register.
	if _, err := e.Exec("CREATE COLLECTION d1", nil); err == nil {
		t.Fatal("default method resolved without registration")
	}
	e.RegisterIndexType(DefaultAccessMethod, e.indexTypes["fake"])
	if _, err := e.Exec("CREATE COLLECTION d1", nil); err != nil {
		t.Fatal(err)
	}
	if m, _ := e.CollectionMethod("d1"); m != DefaultAccessMethod {
		t.Fatalf("method = %q", m)
	}
}

func TestEngineProgrammaticRowDML(t *testing.T) {
	e := newCollectionEngine(t)
	if err := e.CreateCollection("c", "fake", nil); err != nil {
		t.Fatal(err)
	}
	rid, err := e.InsertRow("c", []int64{1, 5, 100})
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := e.CustomIndexByName(CollectionIndexName("c"))
	if !ok {
		t.Fatal("collection index not attached")
	}
	f := ci.(*fakeIntervalIndex)
	if len(f.rows) != 1 {
		t.Fatalf("maintenance missed: %v", f.rows)
	}
	// BulkInsert goes through the BulkMaintainer capability once.
	rows := [][]int64{{2, 3, 101}, {4, 9, 102}, {7, 8, 103}}
	rids, err := e.BulkInsert("c", rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 || f.bulkCalls != 1 || len(f.rows) != 4 {
		t.Fatalf("bulk: rids=%d bulkCalls=%d indexed=%d", len(rids), f.bulkCalls, len(f.rows))
	}
	if err := e.DeleteRowID("c", rid); err != nil {
		t.Fatal(err)
	}
	if len(f.rows) != 3 {
		t.Fatalf("delete maintenance missed: %v", f.rows)
	}
	tab, _ := e.DB().Table("c")
	if tab.RowCount() != 3 {
		t.Fatalf("heap count = %d", tab.RowCount())
	}
}

func TestParseCollectionStatements(t *testing.T) {
	st, err := Parse("CREATE COLLECTION flights USING hint_sharded;")
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := st.(*CreateCollectionStmt)
	if !ok || cs.Name != "flights" || cs.Method != "hint_sharded" {
		t.Fatalf("parsed %#v", st)
	}
	st, err = Parse("CREATE COLLECTION flights")
	if err != nil {
		t.Fatal(err)
	}
	if cs := st.(*CreateCollectionStmt); cs.Method != "" {
		t.Fatalf("method = %q", cs.Method)
	}
	st, err = Parse("DROP COLLECTION flights")
	if err != nil {
		t.Fatal(err)
	}
	if ds := st.(*DropCollectionStmt); ds.Name != "flights" {
		t.Fatalf("parsed %#v", st)
	}
	if _, err := Parse("CREATE COLLECTION"); err == nil {
		t.Fatal("nameless CREATE COLLECTION parsed")
	}
}
