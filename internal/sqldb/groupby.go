package sqldb

import (
	"fmt"
	"strings"
)

// GROUP BY: hash aggregation. The block's FROM/WHERE compile to the same
// join pipeline a plain select uses (including the interval merge join);
// the hashAggNode sink partitions the joined rows by the encoded GROUP BY
// key values and folds each partition through per-group aggregate states.
// Groups emit in first-appearance order — deterministic without an ORDER
// BY, which keeps the crosscheck tests simple.

// exprEqual reports structural equality of two parsed expressions, with
// SQL's case-insensitivity for identifiers. It decides whether a scalar
// select item restates a GROUP BY expression.
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *NumberExpr:
		y, ok := b.(*NumberExpr)
		return ok && x.Value == y.Value
	case *BindExpr:
		y, ok := b.(*BindExpr)
		return ok && x.Name == y.Name
	case *ColumnExpr:
		y, ok := b.(*ColumnExpr)
		return ok && strings.EqualFold(x.Table, y.Table) && strings.EqualFold(x.Column, y.Column)
	case *UnaryExpr:
		y, ok := b.(*UnaryExpr)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *BinaryExpr:
		y, ok := b.(*BinaryExpr)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *BetweenExpr:
		y, ok := b.(*BetweenExpr)
		return ok && x.Not == y.Not && exprEqual(x.X, y.X) && exprEqual(x.Lo, y.Lo) && exprEqual(x.Hi, y.Hi)
	case *CallExpr:
		y, ok := b.(*CallExpr)
		if !ok || !strings.EqualFold(x.Name, y.Name) || x.Star != y.Star || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// groupItem is one compiled select item of a grouped block: either a
// GROUP BY expression restated (keyIdx >= 0) or an aggregate template
// cloned per group.
type groupItem struct {
	keyIdx int       // index into the group key values; -1 for aggregates
	agg    *aggState // template: name + compiled arg, never accumulated
}

// groupState is one hash partition: its key values (emitted for scalar
// items) and one accumulator per aggregate item.
type groupState struct {
	keys []int64
	aggs []*aggState
}

// hashAggNode is the GROUP BY sink — a pipeline breaker like aggNode, but
// hash-partitioned: Open drains the source join once, folding every row
// into its group's accumulators; Next emits one row per group in
// first-appearance order.
type hashAggNode struct {
	join   joinExec
	env    []int64
	keyFns []evalFn
	items  []groupItem
	groups map[string]*groupState
	order  []*groupState
	out    []int64
	pos    int
	ns     *nodeStats
}

func (n *hashAggNode) statsNode() *nodeStats { return n.ns }

func (n *hashAggNode) Open(ec *execCtx) error {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	n.groups = make(map[string]*groupState)
	n.order, n.pos = nil, 0
	if err := n.join.Open(ec); err != nil {
		return err
	}
	var drained int64
	var key []byte // reused encoding buffer (see distinctNode)
	keys := make([]int64, len(n.keyFns))
	for {
		ok, err := n.join.Next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		drained++
		key = key[:0]
		for i, f := range n.keyFns {
			v := f(n.env)
			keys[i] = v
			u := uint64(v)
			key = append(key, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		g, ok := n.groups[string(key)]
		if !ok {
			g = &groupState{keys: append([]int64(nil), keys...)}
			for _, it := range n.items {
				if it.agg != nil {
					g.aggs = append(g.aggs, &aggState{name: it.agg.name, arg: it.agg.arg})
				} else {
					g.aggs = append(g.aggs, nil)
				}
			}
			n.groups[string(key)] = g
			n.order = append(n.order, g)
		}
		for _, st := range g.aggs {
			if st != nil {
				st.add(n.env)
			}
		}
	}
	_ = n.join.Close()
	ec.stats.spillRows.Add(drained)
	n.ns.addSpill(drained)
	ec.stats.groupedRows.Add(int64(len(n.order)))
	n.out = make([]int64, len(n.items))
	return nil
}

func (n *hashAggNode) Next(ec *execCtx) (bool, error) {
	if n.pos >= len(n.order) {
		return false, nil
	}
	g := n.order[n.pos]
	n.pos++
	for i, it := range n.items {
		if it.agg != nil {
			v, err := g.aggs[i].result()
			if err != nil {
				return false, err
			}
			n.out[i] = v
		} else {
			n.out[i] = g.keys[it.keyIdx]
		}
	}
	n.ns.addRowsOut(1)
	return true, nil
}

func (n *hashAggNode) Close() error {
	n.groups, n.order = nil, nil
	return n.join.Close()
}

func (n *hashAggNode) Row() []int64 { return n.out }

// buildGroupBy compiles one GROUP BY block into its hash-aggregate sink,
// output column names, and the underlying source plan.
func (e *Engine) buildGroupBy(s *SelectStmt, binds map[string]interface{}, v *execView) (rowNode, []string, *selectPlan, error) {
	plan, err := e.planAggregateInput(s, binds, v)
	if err != nil {
		return nil, nil, nil, err
	}
	maxSrc := len(plan.sources) - 1
	keyFns := make([]evalFn, len(s.GroupBy))
	for i, g := range s.GroupBy {
		if call, ok := g.(*CallExpr); ok && aggregateNames[strings.ToLower(call.Name)] {
			return nil, nil, nil, fmt.Errorf("sql: aggregate %s is not allowed in GROUP BY", strings.ToUpper(call.Name))
		}
		f, err := plan.compile(g, maxSrc)
		if err != nil {
			return nil, nil, nil, err
		}
		keyFns[i] = f
	}
	var items []groupItem
	var cols []string
	for idx, item := range s.Items {
		if item.Star {
			return nil, nil, nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY")
		}
		label := item.As
		if call, ok := item.Expr.(*CallExpr); ok && aggregateNames[strings.ToLower(call.Name)] {
			st, err := newAggState(plan, call, binds)
			if err != nil {
				return nil, nil, nil, err
			}
			items = append(items, groupItem{keyIdx: -1, agg: st})
			if label == "" {
				label = strings.ToLower(call.Name)
			}
			cols = append(cols, label)
			continue
		}
		keyIdx := -1
		for i, g := range s.GroupBy {
			if exprEqual(item.Expr, g) {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return nil, nil, nil, fmt.Errorf("sql: select item %d is neither an aggregate nor a GROUP BY expression", idx+1)
		}
		items = append(items, groupItem{keyIdx: keyIdx})
		if label == "" {
			if c, ok := item.Expr.(*ColumnExpr); ok {
				label = strings.ToLower(c.Column)
			} else {
				label = fmt.Sprintf("expr%d", idx+1)
			}
		}
		cols = append(cols, label)
	}
	join, env, _, err := newJoinOverPlan(plan, binds)
	if err != nil {
		return nil, nil, nil, err
	}
	ns := &nodeStats{label: "HASH GROUP BY"}
	if child := join.statsNode(); child != nil {
		ns.children = []*nodeStats{child}
	}
	return &hashAggNode{join: join, env: env, keyFns: keyFns, items: items, ns: ns}, cols, plan, nil
}
