// Package sqldb implements the SQL front end of the reproduction: a lexer,
// parser, rule-based planner and executor over the rel storage layer, plus
// the object-relational extensible-indexing hooks of paper §5.
//
// The dialect covers exactly what the paper's figures need — DDL
// (Figure 2), single-statement DML (Figure 5), and SELECT with composite
// index range scans, transient collection iterators, BETWEEN, UNION ALL and
// bind variables (Figures 8, 9, 11) — with EXPLAIN producing the Figure 10
// plan shape.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkBind   // :name
	tkSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers are lower-cased; symbols canonical
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex splits src into tokens. Identifiers and keywords are folded to lower
// case (the dialect is case-insensitive, like SQL).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tkEOF, "", l.pos)
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tkIdent, strings.ToLower(l.src[start:l.pos]), start)
		case c >= '0' && c <= '9':
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tkNumber, strings.ReplaceAll(l.src[start:l.pos], "_", ""), start)
		case c == ':':
			l.pos++
			if l.pos >= len(l.src) || !isIdentStart(rune(l.src[l.pos])) {
				return nil, fmt.Errorf("sql: lone ':' at offset %d", start)
			}
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tkBind, strings.ToLower(l.src[start+1:l.pos]), start)
		default:
			// Multi-character operators first.
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case ">=", "<=", "<>", "!=":
				l.pos += 2
				if two == "!=" {
					two = "<>"
				}
				l.emit(tkSymbol, two, start)
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
				l.pos++
				l.emit(tkSymbol, string(c), start)
			case '\'':
				return nil, fmt.Errorf("sql: string literals are not supported (offset %d); the reproduction's relations are all-integer like the paper's schema", start)
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// BindNames returns the distinct :name bind variables of src in order of
// first appearance (lower-cased, without the colon). The database/sql
// driver uses this to map positional arguments onto the engine's
// named-bind API.
func BindNames(src string) ([]string, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	var names []string
	seen := make(map[string]bool)
	for _, tk := range toks {
		if tk.kind == tkBind && !seen[tk.text] {
			seen[tk.text] = true
			names = append(names, tk.text)
		}
	}
	return names, nil
}
