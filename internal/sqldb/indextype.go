package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"ritree/internal/rel"
)

// This file implements the object-relational extensible-indexing framework
// of paper §5: "An extensible indexing framework allows the developer to
// package the implementation of the access method and the corresponding
// index data into a user-defined indextype. As the object-relational
// database server automatically triggers the maintenance and scan of custom
// indexes, end users can use the Relational Interval Tree just like a
// built-in index."

// IndexTypeHandler creates instances of a user-defined indextype in
// response to CREATE INDEX ... INDEXTYPE IS <name> [PARAMETERS (...)].
type IndexTypeHandler interface {
	// CreateIndex builds the custom index named indexName over the given
	// columns of table, backfilling from existing rows. params carries
	// the PARAMETERS pairs (nil when absent); implementations must reject
	// keys they do not understand — a silently ignored typo would create
	// an index with the wrong geometry. The params are persisted in the
	// catalog and handed back verbatim on attach.
	CreateIndex(e *Engine, indexName, table string, cols []string, params map[string]string) (CustomIndex, error)
}

// Attacher is the reopen capability of an indextype handler: where
// CreateIndex builds new index storage, AttachIndex adopts the storage an
// earlier session left behind (reopening persisted relations, or rebuilding
// a main-memory structure from the heap). Engine.AttachCatalogIndexes
// requires it — an indextype without it cannot serve a reopened database.
type Attacher interface {
	// AttachIndex attaches the custom index named indexName over the given
	// columns of table, whose definition an earlier session recorded in the
	// catalog. params is the persisted PARAMETERS map of that definition,
	// so an index re-attaches with the geometry it was created with.
	// Implementations must verify any persisted storage is consistent with
	// the base table before trusting it, and fail loudly otherwise.
	AttachIndex(e *Engine, indexName, table string, cols []string, params map[string]string) (CustomIndex, error)
}

// StorageDropper is the optional third capability of an indextype
// handler: removing an index definition's persisted storage without
// attaching it first. DROP INDEX on an unattached definition prefers it —
// a stale index refuses to attach, so attach-then-Drop cannot clean it
// up; this can.
type StorageDropper interface {
	// DropIndexStorage removes whatever storage the indextype persisted
	// for the named index, tolerating storage that is partially or wholly
	// missing.
	DropIndexStorage(e *Engine, indexName, table string, cols []string) error
}

// ErrNoStorageDrop is returned by IndexTypeFuncs.DropIndexStorage when no
// DropStorage function was supplied; the engine then falls back to
// attach-then-Drop.
var ErrNoStorageDrop = errors.New("sql: indextype has no storage-drop implementation")

// IndexTypeFunc adapts a function to IndexTypeHandler.
type IndexTypeFunc func(e *Engine, indexName, table string, cols []string, params map[string]string) (CustomIndex, error)

// CreateIndex implements IndexTypeHandler.
func (f IndexTypeFunc) CreateIndex(e *Engine, indexName, table string, cols []string, params map[string]string) (CustomIndex, error) {
	return f(e, indexName, table, cols, params)
}

// IndexTypeFuncs bundles the create-new, attach-existing, and
// drop-storage pieces of an indextype, implementing IndexTypeHandler,
// Attacher, and StorageDropper.
type IndexTypeFuncs struct {
	Create IndexTypeFunc
	Attach IndexTypeFunc
	// DropStorage removes persisted storage without attaching (optional;
	// nil makes DropIndexStorage report ErrNoStorageDrop and the engine
	// fall back to attach-then-Drop).
	DropStorage func(e *Engine, indexName, table string, cols []string) error
}

// CreateIndex implements IndexTypeHandler.
func (f IndexTypeFuncs) CreateIndex(e *Engine, indexName, table string, cols []string, params map[string]string) (CustomIndex, error) {
	if f.Create == nil {
		return nil, fmt.Errorf("sql: indextype registered without a Create implementation")
	}
	return f.Create(e, indexName, table, cols, params)
}

// AttachIndex implements Attacher. A nil Attach field reports the same
// does-not-support-attach condition as a handler without the Attacher
// interface (the zero field would otherwise panic on call).
func (f IndexTypeFuncs) AttachIndex(e *Engine, indexName, table string, cols []string, params map[string]string) (CustomIndex, error) {
	if f.Attach == nil {
		return nil, fmt.Errorf("sql: indextype does not support attach (IndexTypeFuncs.Attach is nil); it cannot serve a reopened database")
	}
	return f.Attach(e, indexName, table, cols, params)
}

// DropIndexStorage implements StorageDropper.
func (f IndexTypeFuncs) DropIndexStorage(e *Engine, indexName, table string, cols []string) error {
	if f.DropStorage == nil {
		return ErrNoStorageDrop
	}
	return f.DropStorage(e, indexName, table, cols)
}

// CustomIndex is a live user-defined index. The engine triggers its
// maintenance on DML against the base table and routes the operators it
// advertises to Scan.
type CustomIndex interface {
	// Name returns the index name.
	Name() string
	// Table returns the base table name.
	Table() string
	// Columns returns the indexed column names, in order.
	Columns() []string
	// HasOperator reports whether the index serves the named operator.
	HasOperator(op string) bool
	// OnInsert maintains the index after a row insert.
	OnInsert(row []int64, rid rel.RowID) error
	// OnDelete maintains the index after a row delete.
	OnDelete(row []int64, rid rel.RowID) error
	// Scan evaluates op with the given (non-column) arguments and streams
	// the row ids of matching base rows.
	Scan(op string, args []int64, fn func(rid rel.RowID) bool) error
	// Drop destroys the index storage.
	Drop() error
}

// SnapshotPersister is the persistence capability of a custom index
// (alongside MetricsBinder and the maintenance triggers): an index
// implementing it can write a point-in-time snapshot of its in-memory
// storage into the database file, to be adopted by a later session's
// attach instead of a full rebuild. PersistIndexSnapshots drives it on
// DB.Flush/Close.
type SnapshotPersister interface {
	// PersistSnapshot writes (or refreshes) the index's snapshot, stamped
	// against the base table's current content, or removes it when the
	// index's current form is not representable. It runs under the
	// engine's statement lock at a committed boundary, so the stamp and
	// the heap agree.
	PersistSnapshot() error
}

// PersistIndexSnapshots asks every attached custom index implementing
// SnapshotPersister to write its snapshot, then seals the resulting page
// mutations at a commit boundary and waits for durability. It is a no-op
// when snapshots are disabled (SetIndexSnapshotsEnabled(false)).
//
// Snapshots are not schema: the catalog definitions are untouched and no
// plan-cache epoch is bumped — commitWriteLocked retires only the cached
// snapshot view, exactly like DML, so cached plans stay valid across a
// persist.
func (e *Engine) PersistIndexSnapshots() error {
	if !e.IndexSnapshotsEnabled() {
		return nil
	}
	e.mu.Lock()
	var err error
	persisted := false
	for _, ci := range e.custom {
		sp, ok := ci.(SnapshotPersister)
		if !ok {
			continue
		}
		if err = sp.PersistSnapshot(); err != nil {
			break
		}
		persisted = true
	}
	var seq uint64
	if persisted {
		var cerr error
		seq, cerr = e.commitWriteLocked()
		if err == nil {
			err = cerr
		}
	}
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.db.Store().WaitDurable(seq)
}

// RegisterIndexType makes a user-defined indextype available to
// CREATE INDEX ... INDEXTYPE IS <name>.
func (e *Engine) RegisterIndexType(name string, h IndexTypeHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.indexTypes[strings.ToLower(name)] = h
}

// AttachCustomIndex re-registers an already existing custom index with the
// engine (used when reopening a database: the index storage persists in the
// relational catalog, while the engine-side registration is per session).
func (e *Engine) AttachCustomIndex(ci CustomIndex) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.attachLocked(ci)
}

func (e *Engine) attachLocked(ci CustomIndex) error {
	name := strings.ToLower(ci.Name())
	if _, dup := e.custom[name]; dup {
		return fmt.Errorf("sql: custom index %s already attached", ci.Name())
	}
	e.custom[name] = ci
	tb := strings.ToLower(ci.Table())
	e.customByTb[tb] = append(e.customByTb[tb], ci)
	// A new domain index changes what chooseAccess can pick.
	e.bumpPlanEpochLocked()
	if e.reg != nil {
		if mb, ok := ci.(MetricsBinder); ok {
			mb.BindMetrics(e.reg, "index."+name)
		}
	}
	return nil
}

func (e *Engine) createCustomIndex(s *CreateIndexStmt) (*Result, error) {
	h, ok := e.indexTypes[strings.ToLower(s.IndexType)]
	if !ok {
		return nil, fmt.Errorf("sql: unknown indextype %q", s.IndexType)
	}
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Columns {
		if tab.Schema().ColIndex(c) < 0 {
			return nil, fmt.Errorf("sql: no column %s in %s", c, s.Table)
		}
	}
	// Record the definition in the catalog first: it enforces the shared
	// index namespace (built-in and custom) before the expensive backfill,
	// and it is what lets a later session re-attach the index
	// (AttachCatalogIndexes). A definition without storage fails loudly at
	// attach time; storage without a definition would rot silently.
	def := rel.CustomIndexDef{
		Name:      s.Name,
		IndexType: strings.ToLower(s.IndexType),
		Table:     s.Table,
		Columns:   s.Columns,
		Params:    s.Params,
	}
	if err := e.db.RecordCustomIndex(def); err != nil {
		return nil, err
	}
	ci, err := h.CreateIndex(e, s.Name, s.Table, s.Columns, s.Params)
	if err != nil {
		_ = e.db.RemoveCustomIndex(s.Name)
		return nil, err
	}
	if err := e.attachLocked(ci); err != nil {
		_ = ci.Drop()
		_ = e.db.RemoveCustomIndex(s.Name)
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) dropCustomIndex(ci CustomIndex) error {
	// Drop the storage before removing the registration: a failed Drop must
	// leave the index attached (and its catalog definition in place) so the
	// caller still holds a handle to retry — the reverse order orphaned the
	// hidden relations with no way to reach them.
	if err := ci.Drop(); err != nil {
		return fmt.Errorf("sql: dropping index %s: %w (index remains attached)", ci.Name(), err)
	}
	name := strings.ToLower(ci.Name())
	delete(e.custom, name)
	e.bumpPlanEpochLocked()
	tb := strings.ToLower(ci.Table())
	list := e.customByTb[tb]
	for i, cand := range list {
		if cand == ci {
			e.customByTb[tb] = append(list[:i], list[i+1:]...)
			break
		}
	}
	// Indexes attached directly via AttachCustomIndex may predate the
	// catalog record; a missing definition is not an error here.
	if err := e.db.RemoveCustomIndex(ci.Name()); err != nil && !errors.Is(err, rel.ErrNoSuchIndex) {
		return err
	}
	return nil
}

// dropUnattachedDef removes a catalog definition that is not attached in
// this session, dropping its storage through the indextype: a
// StorageDropper handler removes storage without attaching (this is how a
// stale ritree index — whose attach is refused — gets cleaned up so the
// name can be recreated); otherwise attach-then-Drop is tried
// best-effort. This is the recovery path the attach errors advise:
// DROP INDEX must work even when attach cannot. Caller holds e.mu.
func (e *Engine) dropUnattachedDef(def rel.CustomIndexDef) error {
	if h, ok := e.indexTypes[strings.ToLower(def.IndexType)]; ok {
		dropped := false
		if sd, ok := h.(StorageDropper); ok {
			err := sd.DropIndexStorage(e, def.Name, def.Table, def.Columns)
			switch {
			case err == nil:
				dropped = true
			case !errors.Is(err, ErrNoStorageDrop):
				return fmt.Errorf("sql: dropping storage of index %s: %w", def.Name, err)
			}
		}
		if !dropped {
			if at, ok := h.(Attacher); ok {
				if ci, err := at.AttachIndex(e, def.Name, def.Table, def.Columns, def.Params); err == nil {
					if err := ci.Drop(); err != nil {
						return fmt.Errorf("sql: dropping index %s: %w", def.Name, err)
					}
				}
			}
		}
	}
	return e.db.RemoveCustomIndex(def.Name)
}

// AttachCatalogIndexes walks the persisted domain-index definitions of the
// underlying database and re-attaches each through its registered
// indextype handler — the reopen half of paper §5's "end users can use the
// Relational Interval Tree just like a built-in index". It must run before
// any DML on a reopened database: an engine that skips it serves no domain
// indexes and silently skips their maintenance, leaving persisted index
// storage stale. A definition whose indextype is not registered in this
// session (or does not implement Attacher) is an error, not a skip, for
// the same reason. Definitions already attached in this session are left
// alone, so the call is idempotent.
func (e *Engine) AttachCatalogIndexes() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, def := range e.db.CustomIndexes() {
		if _, ok := e.custom[strings.ToLower(def.Name)]; ok {
			continue
		}
		h, ok := e.indexTypes[strings.ToLower(def.IndexType)]
		if !ok {
			return fmt.Errorf("sql: catalog index %s requires indextype %q, which is not registered in this session; register it (or DROP INDEX %s) before issuing DML — proceeding would silently skip index maintenance",
				def.Name, def.IndexType, def.Name)
		}
		at, ok := h.(Attacher)
		if !ok {
			return fmt.Errorf("sql: indextype %q of catalog index %s does not support attach (handler implements no Attacher); it cannot serve a reopened database",
				def.IndexType, def.Name)
		}
		start := time.Now()
		ci, err := at.AttachIndex(e, def.Name, def.Table, def.Columns, def.Params)
		if err != nil {
			return fmt.Errorf("sql: attaching catalog index %s (indextype %s): %w", def.Name, def.IndexType, err)
		}
		// Attach latency is the cold-start cost a snapshot load is meant to
		// collapse; the histogram makes the snapshot-vs-rebuild difference
		// visible per attach (one sample per index).
		if e.reg != nil {
			e.reg.Histogram("index.attach_ns").Record(time.Since(start).Nanoseconds())
		}
		if err := e.attachLocked(ci); err != nil {
			return err
		}
	}
	return nil
}
