package sqldb

import (
	"fmt"
	"strings"

	"ritree/internal/rel"
)

// This file implements the object-relational extensible-indexing framework
// of paper §5: "An extensible indexing framework allows the developer to
// package the implementation of the access method and the corresponding
// index data into a user-defined indextype. As the object-relational
// database server automatically triggers the maintenance and scan of custom
// indexes, end users can use the Relational Interval Tree just like a
// built-in index."

// IndexTypeHandler creates instances of a user-defined indextype in
// response to CREATE INDEX ... INDEXTYPE IS <name>.
type IndexTypeHandler interface {
	// CreateIndex builds the custom index named indexName over the given
	// columns of table, backfilling from existing rows.
	CreateIndex(e *Engine, indexName, table string, cols []string) (CustomIndex, error)
}

// IndexTypeFunc adapts a function to IndexTypeHandler.
type IndexTypeFunc func(e *Engine, indexName, table string, cols []string) (CustomIndex, error)

// CreateIndex implements IndexTypeHandler.
func (f IndexTypeFunc) CreateIndex(e *Engine, indexName, table string, cols []string) (CustomIndex, error) {
	return f(e, indexName, table, cols)
}

// CustomIndex is a live user-defined index. The engine triggers its
// maintenance on DML against the base table and routes the operators it
// advertises to Scan.
type CustomIndex interface {
	// Name returns the index name.
	Name() string
	// Table returns the base table name.
	Table() string
	// Columns returns the indexed column names, in order.
	Columns() []string
	// HasOperator reports whether the index serves the named operator.
	HasOperator(op string) bool
	// OnInsert maintains the index after a row insert.
	OnInsert(row []int64, rid rel.RowID) error
	// OnDelete maintains the index after a row delete.
	OnDelete(row []int64, rid rel.RowID) error
	// Scan evaluates op with the given (non-column) arguments and streams
	// the row ids of matching base rows.
	Scan(op string, args []int64, fn func(rid rel.RowID) bool) error
	// Drop destroys the index storage.
	Drop() error
}

// RegisterIndexType makes a user-defined indextype available to
// CREATE INDEX ... INDEXTYPE IS <name>.
func (e *Engine) RegisterIndexType(name string, h IndexTypeHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.indexTypes[strings.ToLower(name)] = h
}

// AttachCustomIndex re-registers an already existing custom index with the
// engine (used when reopening a database: the index storage persists in the
// relational catalog, while the engine-side registration is per session).
func (e *Engine) AttachCustomIndex(ci CustomIndex) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.attachLocked(ci)
}

func (e *Engine) attachLocked(ci CustomIndex) error {
	name := strings.ToLower(ci.Name())
	if _, dup := e.custom[name]; dup {
		return fmt.Errorf("sql: custom index %s already attached", ci.Name())
	}
	e.custom[name] = ci
	tb := strings.ToLower(ci.Table())
	e.customByTb[tb] = append(e.customByTb[tb], ci)
	return nil
}

func (e *Engine) createCustomIndex(s *CreateIndexStmt) (*Result, error) {
	h, ok := e.indexTypes[strings.ToLower(s.IndexType)]
	if !ok {
		return nil, fmt.Errorf("sql: unknown indextype %q", s.IndexType)
	}
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Columns {
		if tab.Schema().ColIndex(c) < 0 {
			return nil, fmt.Errorf("sql: no column %s in %s", c, s.Table)
		}
	}
	ci, err := h.CreateIndex(e, s.Name, s.Table, s.Columns)
	if err != nil {
		return nil, err
	}
	if err := e.attachLocked(ci); err != nil {
		_ = ci.Drop()
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) dropCustomIndex(ci CustomIndex) error {
	name := strings.ToLower(ci.Name())
	delete(e.custom, name)
	tb := strings.ToLower(ci.Table())
	list := e.customByTb[tb]
	for i, cand := range list {
		if cand == ci {
			e.customByTb[tb] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return ci.Drop()
}
