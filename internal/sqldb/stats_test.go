package sqldb

import (
	"context"
	"sync"
	"testing"
)

// TestRowsStatsConcurrentWithNext reads Stats and PlanStats from another
// goroutine while the cursor is being driven — the documented contract
// behind the atomic counters. Under -race this fails if any counter is
// read non-atomically (the torn-read regression this guards against).
func TestRowsStatsConcurrentWithNext(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (k int, v int)", nil)
	mustExec(t, e, "CREATE INDEX tk ON t (k)", nil)
	const n = 3000
	for i := 0; i < n; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:k, :v)", map[string]interface{}{"k": i, "v": -i})
	}
	rows, err := e.Query(context.Background(), "SELECT v FROM t WHERE k >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-done:
				return
			default:
			}
			st := rows.Stats()
			if st.LeafRows < last {
				t.Errorf("LeafRows went backwards: %d after %d", st.LeafRows, last)
				return
			}
			last = st.LeafRows
			_ = rows.PlanStats()
		}
	}()
	got := 0
	for rows.Next() {
		got++
	}
	close(done)
	wg.Wait()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if got != n {
		t.Fatalf("drained %d rows, want %d", got, n)
	}
	if st := rows.Stats(); st.LeafRows != n || st.RowsOut != n {
		t.Fatalf("final stats = %+v, want %d leaf / %d out", st, n, n)
	}
}
