package sqldb

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Cursor- and operator-level execution statistics. Two granularities
// share the same atomic counters:
//
//   - cursorStats aggregates over the whole cursor and backs Rows.Stats()
//     — counters are atomic because Stats() is explicitly allowed while
//     another goroutine drives Next (the torn-read fix).
//   - nodeStats hangs one record off every operator of the pipeline and
//     backs EXPLAIN ANALYZE / Rows.PlanStats().
//
// Counters are always on: each is a single uncontended atomic add on a
// hot path that already does a heap fetch per row. Wall-clock timing is
// not — time.Now() twice per row is the one cost that would break the
// <=5% overhead budget, so it runs only when the execCtx is timed
// (EXPLAIN ANALYZE).

// cursorStats is the live, atomically updated form of ExecStats.
// joinStrategy is a plain string: it is decided once at plan time, before
// the cursor is handed out, and never written afterwards.
type cursorStats struct {
	leafRows        atomic.Int64
	rowsOut         atomic.Int64
	indexProbes     atomic.Int64
	joinRebinds     atomic.Int64
	residualDrops   atomic.Int64
	spillRows       atomic.Int64
	sweepPairs      atomic.Int64
	sweepActivePeak atomic.Int64
	sweepSortRows   atomic.Int64
	groupedRows     atomic.Int64
	joinStrategy    string
}

// storeMax raises a to at least v (several merge nodes of one cursor —
// UNION ALL branches — may race on the shared peak).
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// snapshot copies the counters into the exported value form.
func (c *cursorStats) snapshot() ExecStats {
	return ExecStats{
		LeafRows:        c.leafRows.Load(),
		RowsOut:         c.rowsOut.Load(),
		IndexProbes:     c.indexProbes.Load(),
		JoinRebinds:     c.joinRebinds.Load(),
		ResidualDrops:   c.residualDrops.Load(),
		SpillRows:       c.spillRows.Load(),
		SweepPairs:      c.sweepPairs.Load(),
		SweepActivePeak: c.sweepActivePeak.Load(),
		SweepSortRows:   c.sweepSortRows.Load(),
		GroupedRows:     c.groupedRows.Load(),
		JoinStrategy:    c.joinStrategy,
	}
}

// ExecStats counts the work one cursor performed — the observable
// evidence that LIMIT and early Close actually stop the leaf scans. It
// is a plain value snapshot; Rows.Stats() may be called while another
// goroutine is still advancing the cursor.
type ExecStats struct {
	// LeafRows is the number of rows pulled from leaf access paths
	// (before residual filtering). A SELECT ... LIMIT k served by an
	// index scan pulls O(k) leaf rows, not O(n).
	LeafRows int64
	// RowsOut is the number of rows the cursor yielded.
	RowsOut int64
	// IndexProbes is the number of access-path bindings that hit an
	// index (range, domain, or Allen-region scans); a nested-loops inner
	// side probes once per outer row.
	IndexProbes int64
	// JoinRebinds is the number of inner-source re-opens the
	// nested-loops join performed.
	JoinRebinds int64
	// ResidualDrops counts rows an access path consumed but dropped in a
	// residual filter (the exact-relation check over an Allen generating
	// region, or a scan filter) — work the index could not avoid.
	ResidualDrops int64
	// SpillRows is the number of rows materialized by pipeline-breaking
	// sinks (SORT ORDER BY buffers, aggregate input rows, merge-join feed
	// sorts).
	SpillRows int64
	// SweepPairs counts the candidate pairs the interval merge join's
	// sweep examined (emitted rows plus post-filter drops).
	SweepPairs int64
	// SweepActivePeak is the largest combined active-set population the
	// sweep reached — the join's working-set high-water mark.
	SweepActivePeak int64
	// SweepSortRows counts rows the merge join had to explicitly sort
	// because a feed offered no ordered index stream; 0 means every feed
	// came pre-sorted off its domain index.
	SweepSortRows int64
	// GroupedRows is the number of groups hash aggregation produced.
	GroupedRows int64
	// JoinStrategy names the join algorithm the plan used: "merge" for the
	// interval merge join, "nested_loops" for multi-source plans joined by
	// nested loops, "" for single-source plans. Benches assert on it.
	JoinStrategy string
}

// nodeStats is the per-operator record of the pipeline. All fields are
// atomic for the same reason as cursorStats; the struct is built once at
// plan time and never reallocated, so child pointers need no locking. A
// nil *nodeStats is valid and all methods are no-ops — operators that
// render no plan line (projection) simply carry none.
type nodeStats struct {
	// label names the operator's plan line. Sites whose label needs
	// formatting set labelFn instead, deferring the string build to the
	// first snapshot — pipelines are compiled per statement, so an eager
	// Sprintf here would cost every query what only analyzed ones use.
	label    string
	labelFn  func() string
	rowsOut  atomic.Int64
	leafRows atomic.Int64
	probes   atomic.Int64
	rebinds  atomic.Int64
	residual atomic.Int64
	spill    atomic.Int64
	pairs    atomic.Int64 // merge-join sweep pairs examined
	active   atomic.Int64 // merge-join active-set peak
	elapsed  atomic.Int64 // wall ns; recorded only under EXPLAIN ANALYZE
	children []*nodeStats
}

func (n *nodeStats) addRowsOut(d int64) {
	if n != nil {
		n.rowsOut.Add(d)
	}
}
func (n *nodeStats) addLeafRows(d int64) {
	if n != nil {
		n.leafRows.Add(d)
	}
}
func (n *nodeStats) addProbes(d int64) {
	if n != nil {
		n.probes.Add(d)
	}
}
func (n *nodeStats) addRebinds(d int64) {
	if n != nil {
		n.rebinds.Add(d)
	}
}
func (n *nodeStats) addResidual(d int64) {
	if n != nil {
		n.residual.Add(d)
	}
}
func (n *nodeStats) addSpill(d int64) {
	if n != nil {
		n.spill.Add(d)
	}
}
func (n *nodeStats) addPairs(d int64) {
	if n != nil {
		n.pairs.Add(d)
	}
}
func (n *nodeStats) setActive(v int64) {
	if n != nil {
		n.active.Store(v)
	}
}

// timeFrom adds the wall time since start; start is the zero Time when
// the execution is not timed, making this a cheap no-op.
func (n *nodeStats) timeFrom(start time.Time) {
	if n == nil || start.IsZero() {
		return
	}
	n.elapsed.Add(time.Since(start).Nanoseconds())
}

// startTimer returns now under EXPLAIN ANALYZE and the zero Time
// otherwise, so untimed executions never call time.Now.
func (ec *execCtx) startTimer() time.Time {
	if ec.timed {
		return time.Now()
	}
	return time.Time{}
}

// PlanNodeStats is one operator's snapshot in an executed plan tree —
// the value form of nodeStats, returned by Rows.PlanStats and rendered
// by EXPLAIN ANALYZE.
type PlanNodeStats struct {
	// Label is the plan line of the operator, matching EXPLAIN output
	// ("NESTED LOOPS", "INDEX RANGE SCAN IV_LOWER", ...).
	Label string
	// RowsOut is the number of rows this operator produced.
	RowsOut int64
	// LeafRows, Probes, Residual are scan-level counters (see ExecStats).
	LeafRows int64
	Probes   int64
	Residual int64
	// Rebinds counts inner re-opens (join operators only).
	Rebinds int64
	// Spill counts materialized rows (sort/aggregate sinks, merge-join
	// feed sorts).
	Spill int64
	// Pairs counts the sweep's examined pairs and ActivePeak its largest
	// active-set population (interval merge join nodes only).
	Pairs      int64
	ActivePeak int64
	// Elapsed is the operator's cumulative wall time, populated only for
	// timed executions (EXPLAIN ANALYZE); zero otherwise.
	Elapsed time.Duration
	// Children are the operator's inputs in plan order.
	Children []PlanNodeStats
}

// labelName resolves the operator's plan line (see labelFn above).
func (n *nodeStats) labelName() string {
	if n.labelFn != nil {
		return n.labelFn()
	}
	return n.label
}

// snapshotNode converts a nodeStats tree into its value form.
func snapshotNode(n *nodeStats) PlanNodeStats {
	s := PlanNodeStats{
		Label:      n.labelName(),
		RowsOut:    n.rowsOut.Load(),
		LeafRows:   n.leafRows.Load(),
		Probes:     n.probes.Load(),
		Residual:   n.residual.Load(),
		Rebinds:    n.rebinds.Load(),
		Spill:      n.spill.Load(),
		Pairs:      n.pairs.Load(),
		ActivePeak: n.active.Load(),
		Elapsed:    time.Duration(n.elapsed.Load()),
	}
	for _, c := range n.children {
		s.Children = append(s.Children, snapshotNode(c))
	}
	return s
}

// Render formats the executed plan tree in the EXPLAIN layout, each line
// annotated with the operator's counters:
//
//	SELECT STATEMENT (ANALYZED)
//	  LIMIT 10 (rows=10 time=412µs)
//	    DOMAIN INDEX IV_IDX (INTERSECTS) (rows=10 leaf=12 probes=1 residual=2)
func (s PlanNodeStats) Render() string {
	var sb strings.Builder
	sb.WriteString("SELECT STATEMENT (ANALYZED)\n")
	renderNode(&sb, s, 1)
	return sb.String()
}

func renderNode(sb *strings.Builder, s PlanNodeStats, indent int) {
	sb.WriteString(strings.Repeat("  ", indent))
	sb.WriteString(s.Label)
	sb.WriteString(" (")
	fmt.Fprintf(sb, "rows=%d", s.RowsOut)
	if s.LeafRows > 0 {
		fmt.Fprintf(sb, " leaf=%d", s.LeafRows)
	}
	if s.Probes > 0 {
		fmt.Fprintf(sb, " probes=%d", s.Probes)
	}
	if s.Residual > 0 {
		fmt.Fprintf(sb, " residual=%d", s.Residual)
	}
	if s.Rebinds > 0 {
		fmt.Fprintf(sb, " rebinds=%d", s.Rebinds)
	}
	if s.Spill > 0 {
		fmt.Fprintf(sb, " spill=%d", s.Spill)
	}
	if s.Pairs > 0 {
		fmt.Fprintf(sb, " pairs=%d", s.Pairs)
	}
	if s.ActivePeak > 0 {
		fmt.Fprintf(sb, " active=%d", s.ActivePeak)
	}
	if s.Elapsed > 0 {
		fmt.Fprintf(sb, " time=%s", s.Elapsed.Round(time.Microsecond))
	}
	sb.WriteString(")\n")
	for _, c := range s.Children {
		renderNode(sb, c, indent+1)
	}
}
