package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// The interval merge join: the sweeping-based sort-merge join of Piatov
// et al., "Cache-Efficient Sweeping-Based Interval Joins for Extended
// Allen Relation Predicates" (PAPERS.md), specialized per relation. Both
// inputs arrive in ascending lower-bound order — zero-sort off a
// start-sorted domain index through the OrderedScanner capability, or by
// an explicit sort of the source's ordinary access path — and a single
// forward sweep over the merged start/end events maintains the set of
// intervals whose span covers the sweep line in a gapless (dense
// array) active set. Each emitted pair costs O(1) beyond the predicate
// check, so the join runs in O(n log n + output) worst case and
// O(n + output) when both feeds are index-ordered, against the
// O(n * probe) of index nested loops.
//
// Relation specialization follows the paper's §4 dissection:
//
//   - BEFORE / AFTER pair a whole prefix of one side (ordered by upper
//     bound) with each row of the other — no active set at all;
//   - relations that fix the later-starting side (OVERLAPS, MEETS,
//     CONTAINS, FINISHED_BY, STARTS, EQUALS, STARTED_BY) emit at each
//     right start against the active left set;
//   - their inverses (DURING, FINISHES, OVERLAPPED_BY, MET_BY) emit at
//     each left start against the active right set;
//   - INTERSECTS emits in both directions unconditionally — every active
//     partner at a start event intersects the starting interval by
//     construction.
//
// The sweep assumes valid intervals (Lower <= Upper). Query-side rows
// violating that fault exactly like the nested-loops paths; subject-side
// violations (possible only in unchecked transient collections) denote no
// time span and are dropped as residuals.

// gaplessSet is the sweep's active set: dense parallel arrays of the
// active intervals' bounds and block-row indexes (cache-friendly linear
// scans, no tombstones), plus a direct-addressed slot table by block-row
// index for O(1) endpoint-ordered eviction via swap-with-last.
type gaplessSet struct {
	lo, hi []int64
	row    []int32
	slot   []int32 // block row -> dense slot; -1 when absent
}

func (g *gaplessSet) init(n int) {
	g.lo, g.hi, g.row = g.lo[:0], g.hi[:0], g.row[:0]
	g.slot = make([]int32, n)
	for i := range g.slot {
		g.slot[i] = -1
	}
}

func (g *gaplessSet) add(r int32, lo, hi int64) {
	g.slot[r] = int32(len(g.row))
	g.lo = append(g.lo, lo)
	g.hi = append(g.hi, hi)
	g.row = append(g.row, r)
}

func (g *gaplessSet) remove(r int32) {
	s := g.slot[r]
	if s < 0 {
		return
	}
	last := int32(len(g.row) - 1)
	moved := g.row[last]
	g.lo[s], g.hi[s], g.row[s] = g.lo[last], g.hi[last], g.row[last]
	g.slot[moved] = s
	g.lo, g.hi, g.row = g.lo[:last], g.hi[:last], g.row[:last]
	g.slot[r] = -1
}

func (g *gaplessSet) size() int { return len(g.row) }

// mjSide is one materialized, lower-bound-ordered join input: the full
// rows (for env binding and post filters), the join bounds in dedicated
// arrays (the sweep touches only these — the cache layout the paper's
// gapless hash is about), and a by-upper-bound permutation driving
// endpoint-ordered eviction and the BEFORE/AFTER prefix modes.
type mjSide struct {
	sp      *srcPlan
	w       int
	rows    []int64
	rids    []rel.RowID
	lo, hi  []int64
	byHi    []int32
	n       int
	scan    OrderedScanFunc // nil: explicit sort fallback
	ordered bool            // this drain actually used the ordered feed
	ns      *nodeStats
}

func (s *mjSide) release() {
	s.rows, s.rids, s.lo, s.hi, s.byHi, s.n = nil, nil, nil, nil, nil, 0
}

func (s *mjSide) sortByLo() {
	sort.Stable(sideByLo{s})
}

// sideByLo sorts a side's parallel arrays in place by lower bound.
type sideByLo struct{ s *mjSide }

func (b sideByLo) Len() int           { return b.s.n }
func (b sideByLo) Less(i, j int) bool { return b.s.lo[i] < b.s.lo[j] }
func (b sideByLo) Swap(i, j int) {
	s := b.s
	s.lo[i], s.lo[j] = s.lo[j], s.lo[i]
	s.hi[i], s.hi[j] = s.hi[j], s.hi[i]
	s.rids[i], s.rids[j] = s.rids[j], s.rids[i]
	ri, rj := s.rows[i*s.w:(i+1)*s.w], s.rows[j*s.w:(j+1)*s.w]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (s *mjSide) buildByHi() {
	s.byHi = make([]int32, s.n)
	for i := range s.byHi {
		s.byHi[i] = int32(i)
	}
	hi := s.hi
	sort.Slice(s.byHi, func(i, j int) bool { return hi[s.byHi[i]] < hi[s.byHi[j]] })
}

// sweep emission modes.
const (
	modeSweep  = iota // event sweep with active set(s)
	modeBefore        // prefix of left (by upper) per right row
	modeAfter         // prefix of right (by upper) per left row
)

// mjMatch is a specialized relation predicate between a subject interval
// s and a query interval b, evaluated only for pairs the sweep already
// proved co-active (or prefix-ordered).
type mjMatch func(sLo, sHi, bLo, bHi int64) bool

// mergeJoinNode executes a selectPlan with a non-nil mergeSpec. It is a
// pipeline breaker on both inputs: Open drains and orders the two sides,
// Next sweeps lazily — the active sets advance only as pairs are pulled,
// so a LIMIT or early Close stops mid-sweep.
type mergeJoinNode struct {
	p    *selectPlan
	m    *mergeSpec
	env  []int64
	rids []rel.RowID

	left, right mjSide

	mode   int
	emitL  bool // emit at left starts, scanning the active right set
	emitR  bool // emit at right starts, scanning the active left set
	matchL mjMatch
	matchR mjMatch

	activeL, activeR gaplessSet
	li, ri           int // next start event per side
	le, re           int // next end event per side (index into byHi)
	peak             int64

	// Current emission scan: a started row paired lazily against a stable
	// snapshot of the opposite active set (events advance only after the
	// scan drains, so the dense arrays cannot move under it) or against a
	// byHi prefix in the BEFORE/AFTER modes.
	scanning  bool
	scanOnR   bool // scanning the active/prefix right set (fixed left row)
	fixed     int32
	scanPos   int
	scanLen   int
	prefixLen int

	opened bool
	done   bool
	ns     *nodeStats
}

// newMergeJoinNode builds the merge-join pipeline of a compiled plan.
// The bind tail is filled up front: drainSide evaluates per-side filters
// against n.env before the sweep starts, so bind slots must hold this
// execution's values from the beginning.
func newMergeJoinNode(p *selectPlan, binds map[string]interface{}) (*mergeJoinNode, []int64, []rel.RowID, error) {
	n := &mergeJoinNode{
		p:    p,
		m:    p.merge,
		env:  make([]int64, p.envLen()),
		rids: make([]rel.RowID, len(p.sources)),
	}
	if err := p.fillBinds(n.env, binds); err != nil {
		return nil, nil, nil, err
	}
	n.left.sp = p.sources[p.merge.left]
	n.right.sp = p.sources[p.merge.right]
	for _, side := range [2]*mjSide{&n.left, &n.right} {
		if side.sp.mjOrderedIx != nil && side.sp.tab != nil {
			side.scan = orderedScanOf(side.sp.mjOrderedIx)
		}
		s := side
		side.ns = &nodeStats{labelFn: func() string { return mjFeedLabel(s) }}
	}
	op := p.merge.opName
	n.ns = &nodeStats{
		labelFn:  func() string { return "INTERVAL MERGE JOIN (" + op + ")" },
		children: []*nodeStats{n.left.ns, n.right.ns},
	}
	n.configure()
	return n, n.env, n.rids, nil
}

// mjFeedLabel names a feed after the drain that actually ran (the sort
// fallback engages dynamically when a snapshot view offers no ordered
// stream): the flag is set by Open and survives Close, so EXPLAIN ANALYZE
// renders what happened.
func mjFeedLabel(s *mjSide) string {
	if s.ordered && s.sp.mjOrderedIx != nil {
		return fmt.Sprintf("ORDERED DOMAIN INDEX SCAN %s (LOWER)", strings.ToUpper(s.sp.mjOrderedIx.Name()))
	}
	return "SORT BY LOWER (" + accessLine(s.sp) + ")"
}

// configure specializes the sweep for the plan's relation.
func (n *mergeJoinNode) configure() {
	if n.m.intersect {
		n.emitL, n.emitR = true, true
		return
	}
	switch n.m.rel {
	case interval.Before:
		n.mode = modeBefore
	case interval.After:
		n.mode = modeAfter
	case interval.Overlaps:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sLo < bLo && bLo < sHi && sHi < bHi }
	case interval.FinishedBy:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sLo < bLo && sHi == bHi }
	case interval.Contains:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sLo < bLo && bHi < sHi }
	case interval.Starts:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sLo == bLo && sHi < bHi }
	case interval.Equals:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sLo == bLo && sHi == bHi }
	case interval.StartedBy:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sLo == bLo && bHi < sHi }
	case interval.Meets:
		n.emitR = true
		n.matchR = func(sLo, sHi, bLo, bHi int64) bool { return sHi == bLo && sLo < bLo && sHi < bHi }
	case interval.During:
		n.emitL = true
		n.matchL = func(sLo, sHi, bLo, bHi int64) bool { return bLo < sLo && sHi < bHi }
	case interval.Finishes:
		n.emitL = true
		n.matchL = func(sLo, sHi, bLo, bHi int64) bool { return bLo < sLo && sHi == bHi }
	case interval.OverlappedBy:
		n.emitL = true
		n.matchL = func(sLo, sHi, bLo, bHi int64) bool { return bLo < sLo && sLo < bHi && bHi < sHi }
	case interval.MetBy:
		n.emitL = true
		n.matchL = func(sLo, sHi, bLo, bHi int64) bool { return sLo == bHi && bLo < sLo && bHi < sHi }
	}
}

func (n *mergeJoinNode) statsNode() *nodeStats { return n.ns }

func (n *mergeJoinNode) Open(ec *execCtx) error {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	n.reset()
	n.left.ordered, n.right.ordered = false, false
	if err := n.drainSide(ec, &n.left, true); err != nil {
		return err
	}
	if err := n.drainSide(ec, &n.right, false); err != nil {
		return err
	}
	// The eviction streams exist only for maintained active sets; the
	// prefix modes order their prefix side by upper bound.
	if n.emitR || n.mode == modeBefore {
		n.left.buildByHi()
	}
	if n.emitL || n.mode == modeAfter {
		n.right.buildByHi()
	}
	if n.emitR {
		n.activeL.init(n.left.n)
	}
	if n.emitL {
		n.activeR.init(n.right.n)
	}
	n.opened = true
	return nil
}

func (n *mergeJoinNode) reset() {
	n.left.release()
	n.right.release()
	n.activeL, n.activeR = gaplessSet{}, gaplessSet{}
	n.li, n.ri, n.le, n.re = 0, 0, 0, 0
	n.peak, n.prefixLen = 0, 0
	n.scanning, n.done, n.opened = false, false, false
}

// drainSide materializes one input in ascending lower-bound order:
// through the side's ordered index stream when one is wired (already
// sorted — zero sort work), else by draining the source's access path and
// sorting, with the sorted rows accounted as spills. Subject-side
// now-relative rows resolve against the side's NowKeeper clock (frozen by
// the view under snapshot cursors); invalid results are dropped exactly
// like the nested-loops Allen runner drops them.
func (n *mergeJoinNode) drainSide(ec *execCtx, side *mjSide, subject bool) error {
	sp := side.sp
	side.w = len(sp.cols)
	now := int64(0)
	if subject && sp.mjNowIx != nil {
		if nk, ok := sp.mjNowIx.(NowKeeper); ok {
			now = nk.Now()
		}
	}
	add := func(rid rel.RowID, row []int64) {
		ec.stats.leafRows.Add(1)
		side.ns.addLeafRows(1)
		copy(n.env[sp.base:sp.base+side.w], row)
		for _, f := range sp.filters {
			if f(n.env) == 0 {
				ec.stats.residualDrops.Add(1)
				side.ns.addResidual(1)
				return
			}
		}
		lo, hi := row[sp.mjLo], row[sp.mjHi]
		if subject {
			if hi == interval.NowMarker {
				hi = now
			}
			if lo > hi {
				// Born in the future of the evaluation time (or malformed):
				// consumed, never emitted — the accessAllen runner's rule.
				ec.stats.residualDrops.Add(1)
				side.ns.addResidual(1)
				return
			}
		} else if lo > hi {
			// Query-side bounds fault like allenQuery on the residual and
			// index-served paths — the answer must not depend on the join
			// strategy. (Query-side NowMarker stays a plain magnitude, as
			// those paths treat it.)
			if n.m.intersect {
				panic(sqlRuntimeError{fmt.Sprintf("INTERSECTS got the inverted query interval [%d, %d]", lo, hi)})
			}
			if _, err := allenQuery(n.m.rel, lo, hi); err != nil {
				panic(sqlRuntimeError{err.Error()})
			}
		}
		side.rows = append(side.rows, row...)
		side.rids = append(side.rids, rid)
		side.lo = append(side.lo, lo)
		side.hi = append(side.hi, hi)
		side.n++
		side.ns.addRowsOut(1)
	}

	if side.scan != nil && sp.tab != nil {
		ec.stats.indexProbes.Add(1)
		side.ns.addProbes(1)
		buf := make([]int64, sp.tab.Schema().NumCols())
		prev, seen := int64(0), false
		mono := true
		var inner error
		err := side.scan(func(rid rel.RowID) bool {
			if inner = ctxErr(ec.ctx); inner != nil {
				return false
			}
			if inner = sp.tab.GetRawInto(rid, buf); inner != nil {
				return false
			}
			if seen && buf[sp.mjLo] < prev {
				mono = false
			}
			prev, seen = buf[sp.mjLo], true
			add(rid, buf)
			return true
		})
		if inner != nil {
			return inner
		}
		if err != nil {
			return err
		}
		side.ordered = mono
		if !mono {
			// Defensive: an ordered stream that lied still joins correctly.
			side.sortByLo()
			n.countSort(ec, side)
		}
		return nil
	}

	if sp.coll != nil {
		for ri, row := range sp.coll.Rows {
			if err := ctxErr(ec.ctx); err != nil {
				return err
			}
			if len(row) != side.w {
				return fmt.Errorf("sql: collection :%s row %d has %d columns, want %d",
					sp.ref.Collection, ri, len(row), side.w)
			}
			add(0, row)
		}
	} else {
		var inner error
		err := sp.tab.Scan(func(rid rel.RowID, row []int64) bool {
			if inner = ctxErr(ec.ctx); inner != nil {
				return false
			}
			add(rid, row)
			return true
		})
		if inner != nil {
			return inner
		}
		if err != nil {
			return err
		}
	}
	side.sortByLo()
	n.countSort(ec, side)
	return nil
}

// countSort accounts an explicit sort of one feed: the sorted rows are
// both sweep sort-rows (the join-level counter benches watch) and spills
// of the feed node (the materialization EXPLAIN ANALYZE shows).
func (n *mergeJoinNode) countSort(ec *execCtx, side *mjSide) {
	ec.stats.spillRows.Add(int64(side.n))
	ec.stats.sweepSortRows.Add(int64(side.n))
	side.ns.addSpill(int64(side.n))
}

func (n *mergeJoinNode) notePeak(ec *execCtx) {
	if p := int64(n.activeL.size() + n.activeR.size()); p > n.peak {
		n.peak = p
		storeMax(&ec.stats.sweepActivePeak, p)
		n.ns.setActive(p)
	}
}

func (n *mergeJoinNode) Next(ec *execCtx) (bool, error) {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	if n.done || !n.opened {
		return false, nil
	}
	for {
		if err := ctxErr(ec.ctx); err != nil {
			return false, err
		}
		if n.scanning {
			l, r, ok := n.nextPair()
			if !ok {
				n.scanning = false
			} else {
				ec.stats.sweepPairs.Add(1)
				n.ns.addPairs(1)
				n.bindPair(l, r)
				pass := true
				for _, f := range n.m.post {
					if f(n.env) == 0 {
						pass = false
						break
					}
				}
				if pass {
					n.ns.addRowsOut(1)
					return true, nil
				}
				ec.stats.residualDrops.Add(1)
				n.ns.addResidual(1)
				continue
			}
		}
		if !n.advance(ec) {
			n.done = true
			return false, nil
		}
	}
}

// bindPair lands a pair's rows in the shared env/rids, exactly as the
// nested-loops scans would have.
func (n *mergeJoinNode) bindPair(l, r int32) {
	ls, rs := n.left.sp, n.right.sp
	copy(n.env[ls.base:ls.base+n.left.w], n.left.rows[int(l)*n.left.w:])
	copy(n.env[rs.base:rs.base+n.right.w], n.right.rows[int(r)*n.right.w:])
	n.rids[n.m.left] = n.left.rids[l]
	n.rids[n.m.right] = n.right.rids[r]
}

// nextPair lazily yields the next matching pair of the current scan.
func (n *mergeJoinNode) nextPair() (int32, int32, bool) {
	switch n.mode {
	case modeBefore:
		if n.scanPos < n.scanLen {
			l := n.left.byHi[n.scanPos]
			n.scanPos++
			return l, n.fixed, true
		}
		return 0, 0, false
	case modeAfter:
		if n.scanPos < n.scanLen {
			r := n.right.byHi[n.scanPos]
			n.scanPos++
			return n.fixed, r, true
		}
		return 0, 0, false
	}
	if n.scanOnR {
		s := n.fixed
		sLo, sHi := n.left.lo[s], n.left.hi[s]
		for n.scanPos < n.scanLen {
			i := n.scanPos
			n.scanPos++
			if n.matchL == nil || n.matchL(sLo, sHi, n.activeR.lo[i], n.activeR.hi[i]) {
				return s, n.activeR.row[i], true
			}
		}
		return 0, 0, false
	}
	b := n.fixed
	bLo, bHi := n.right.lo[b], n.right.hi[b]
	for n.scanPos < n.scanLen {
		i := n.scanPos
		n.scanPos++
		if n.matchR == nil || n.matchR(n.activeL.lo[i], n.activeL.hi[i], bLo, bHi) {
			return n.activeL.row[i], b, true
		}
	}
	return 0, 0, false
}

// advance processes sweep events until an emission scan starts (true) or
// the sweep completes (false). Event order at equal values: starts before
// ends (touching intervals are co-active in the closed model), left
// starts before right starts (so equal-lower pairs emit exactly once, at
// the right start).
func (n *mergeJoinNode) advance(ec *execCtx) bool {
	switch n.mode {
	case modeBefore:
		return n.advanceBefore()
	case modeAfter:
		return n.advanceAfter()
	}
	L, R := &n.left, &n.right
	for {
		if (!n.emitR || n.ri >= R.n) && (!n.emitL || n.li >= L.n) {
			return false
		}
		const (
			evLS = iota
			evRS
			evLE
			evRE
			evNone
		)
		pick, pv := evNone, int64(0)
		better := func(ev int, v int64) bool {
			if pick == evNone {
				return true
			}
			if v != pv {
				return v < pv
			}
			return ev < pick // starts before ends, left start before right
		}
		if n.li < L.n && better(evLS, L.lo[n.li]) {
			pick, pv = evLS, L.lo[n.li]
		}
		if n.ri < R.n && better(evRS, R.lo[n.ri]) {
			pick, pv = evRS, R.lo[n.ri]
		}
		if n.emitR && n.le < L.n {
			if v := L.hi[L.byHi[n.le]]; better(evLE, v) {
				pick, pv = evLE, v
			}
		}
		if n.emitL && n.re < R.n {
			if v := R.hi[R.byHi[n.re]]; better(evRE, v) {
				pick, pv = evRE, v
			}
		}
		switch pick {
		case evLS:
			r := int32(n.li)
			n.li++
			if n.emitR {
				n.activeL.add(r, L.lo[r], L.hi[r])
				n.notePeak(ec)
			}
			if n.emitL && n.activeR.size() > 0 {
				n.scanning, n.scanOnR = true, true
				n.fixed, n.scanPos, n.scanLen = r, 0, n.activeR.size()
				return true
			}
		case evRS:
			r := int32(n.ri)
			n.ri++
			if n.emitL {
				n.activeR.add(r, R.lo[r], R.hi[r])
				n.notePeak(ec)
			}
			if n.emitR && n.activeL.size() > 0 {
				n.scanning, n.scanOnR = true, false
				n.fixed, n.scanPos, n.scanLen = r, 0, n.activeL.size()
				return true
			}
		case evLE:
			n.activeL.remove(L.byHi[n.le])
			n.le++
		case evRE:
			n.activeR.remove(R.byHi[n.re])
			n.re++
		case evNone:
			return false
		}
	}
}

// advanceBefore pairs each right row with the prefix of left rows (in
// upper-bound order) that end strictly before it starts: BEFORE in
// O(n + output), no active set.
func (n *mergeJoinNode) advanceBefore() bool {
	L, R := &n.left, &n.right
	for n.ri < R.n {
		b := int32(n.ri)
		n.ri++
		for n.prefixLen < L.n && L.hi[L.byHi[n.prefixLen]] < R.lo[b] {
			n.prefixLen++
		}
		if n.prefixLen > 0 {
			n.scanning, n.scanOnR = true, false
			n.fixed, n.scanPos, n.scanLen = b, 0, n.prefixLen
			return true
		}
	}
	return false
}

// advanceAfter is the mirror: each left row against the prefix of right
// rows ending strictly before it starts.
func (n *mergeJoinNode) advanceAfter() bool {
	L, R := &n.left, &n.right
	for n.li < L.n {
		s := int32(n.li)
		n.li++
		for n.prefixLen < R.n && R.hi[R.byHi[n.prefixLen]] < L.lo[s] {
			n.prefixLen++
		}
		if n.prefixLen > 0 {
			n.scanning, n.scanOnR = true, true
			n.fixed, n.scanPos, n.scanLen = s, 0, n.prefixLen
			return true
		}
	}
	return false
}

func (n *mergeJoinNode) Close() error {
	n.reset()
	n.done = true
	return nil
}
