package sqldb

import (
	"fmt"
	"math"
	"strings"

	"ritree/internal/rel"
)

// Aggregates: COUNT(*) / COUNT(expr) / SUM / MIN / MAX without grouping —
// the shapes a DBA would use to sanity-check interval relations
// ("SELECT count(*) FROM Intervals WHERE node = 0"). A select block either
// projects only aggregates or only scalars; GROUP BY is out of scope for
// the reproduction.

var aggregateNames = map[string]bool{"count": true, "sum": true, "min": true, "max": true}

// isAggregateItem reports whether the item is an aggregate call.
func isAggregateItem(item SelectItem) bool {
	call, ok := item.Expr.(*CallExpr)
	return ok && aggregateNames[strings.ToLower(call.Name)]
}

// isAggregate reports whether the select block projects aggregates.
func isAggregate(s *SelectStmt) bool {
	for _, item := range s.Items {
		if isAggregateItem(item) {
			return true
		}
	}
	return false
}

type aggState struct {
	name  string
	arg   evalFn // nil for COUNT(*)
	count int64
	sum   int64
	min   int64
	max   int64
	seen  bool
}

func (a *aggState) add(env []int64) {
	a.count++
	if a.arg == nil {
		return
	}
	v := a.arg(env)
	a.sum += v
	if !a.seen || v < a.min {
		a.min = v
	}
	if !a.seen || v > a.max {
		a.max = v
	}
	a.seen = true
}

func (a *aggState) result() (int64, error) {
	switch a.name {
	case "count":
		return a.count, nil
	case "sum":
		return a.sum, nil
	case "min":
		if !a.seen {
			return math.MaxInt64, fmt.Errorf("sql: MIN over an empty set has no value")
		}
		return a.min, nil
	case "max":
		if !a.seen {
			return math.MinInt64, fmt.Errorf("sql: MAX over an empty set has no value")
		}
		return a.max, nil
	}
	return 0, fmt.Errorf("sql: unknown aggregate %q", a.name)
}

// runAggregate executes one aggregate-projecting select block and appends
// its single result row to res.
func (e *Engine) runAggregate(s *SelectStmt, binds map[string]interface{}, res *Result) error {
	plan, err := e.planSelect(&SelectStmt{
		Items: []SelectItem{{Star: true}},
		From:  s.From,
		Where: s.Where,
	}, binds)
	if err != nil {
		return err
	}
	var states []*aggState
	var cols []string
	for _, item := range s.Items {
		call, ok := item.Expr.(*CallExpr)
		if !ok || !aggregateNames[strings.ToLower(call.Name)] {
			return fmt.Errorf("sql: cannot mix aggregates and scalar expressions without GROUP BY (unsupported)")
		}
		name := strings.ToLower(call.Name)
		st := &aggState{name: name}
		if call.Star {
			if name != "count" {
				return fmt.Errorf("sql: %s(*) is not valid; only COUNT(*)", strings.ToUpper(name))
			}
		} else {
			if len(call.Args) != 1 {
				return fmt.Errorf("sql: aggregate %s takes exactly one argument", strings.ToUpper(name))
			}
			f, err := plan.compile(call.Args[0], binds, len(plan.sources)-1)
			if err != nil {
				return err
			}
			st.arg = f
		}
		states = append(states, st)
		label := item.As
		if label == "" {
			label = name
		}
		cols = append(cols, label)
	}
	err = plan.run(func(env []int64, _ []rel.RowID) bool {
		for _, st := range states {
			st.add(env)
		}
		return true
	})
	if err != nil {
		return err
	}
	row := make([]int64, len(states))
	for i, st := range states {
		v, err := st.result()
		if err != nil {
			return err
		}
		row[i] = v
	}
	if res.Cols == nil {
		res.Cols = cols
	} else if len(res.Cols) != len(cols) {
		return fmt.Errorf("sql: UNION ALL branches project %d vs %d columns", len(res.Cols), len(cols))
	}
	res.Rows = append(res.Rows, row)
	return nil
}
