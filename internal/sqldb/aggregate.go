package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// Aggregates: COUNT(*) / COUNT(expr) / SUM / MIN / MAX — the shapes a DBA
// would use to sanity-check interval relations ("SELECT count(*) FROM
// Intervals WHERE node = 0"). Ungrouped blocks aggregate to one row here;
// blocks with GROUP BY hash-partition in groupby.go.

var aggregateNames = map[string]bool{"count": true, "sum": true, "min": true, "max": true}

// isAggregateItem reports whether the item is an aggregate call.
func isAggregateItem(item SelectItem) bool {
	call, ok := item.Expr.(*CallExpr)
	return ok && aggregateNames[strings.ToLower(call.Name)]
}

// isAggregate reports whether the select block projects aggregates.
func isAggregate(s *SelectStmt) bool {
	for _, item := range s.Items {
		if isAggregateItem(item) {
			return true
		}
	}
	return false
}

type aggState struct {
	name  string
	arg   evalFn // nil for COUNT(*)
	count int64
	sum   int64
	min   int64
	max   int64
	seen  bool
}

func (a *aggState) add(env []int64) {
	a.count++
	if a.arg == nil {
		return
	}
	v := a.arg(env)
	a.sum += v
	if !a.seen || v < a.min {
		a.min = v
	}
	if !a.seen || v > a.max {
		a.max = v
	}
	a.seen = true
}

func (a *aggState) result() (int64, error) {
	switch a.name {
	case "count":
		return a.count, nil
	case "sum":
		return a.sum, nil
	case "min":
		if !a.seen {
			return math.MaxInt64, fmt.Errorf("sql: MIN over an empty set has no value")
		}
		return a.min, nil
	case "max":
		if !a.seen {
			return math.MinInt64, fmt.Errorf("sql: MAX over an empty set has no value")
		}
		return a.max, nil
	}
	return 0, fmt.Errorf("sql: unknown aggregate %q", a.name)
}

// aggNode is the aggregation sink of the streaming pipeline — a
// pipeline breaker: Open drains the source join (which streams, so
// filters and index scans still do their per-row work lazily underneath)
// and computes the single output row; Next emits it once.
type aggNode struct {
	join   joinExec
	env    []int64
	states []*aggState
	out    []int64
	done   bool
	ns     *nodeStats
}

func (n *aggNode) statsNode() *nodeStats { return n.ns }

func (n *aggNode) Open(ec *execCtx) error {
	if start := ec.startTimer(); !start.IsZero() {
		defer n.ns.timeFrom(start)
	}
	n.done = false
	for _, st := range n.states {
		st.count, st.sum, st.seen = 0, 0, false
	}
	if err := n.join.Open(ec); err != nil {
		return err
	}
	var drained int64
	for {
		ok, err := n.join.Next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		drained++
		for _, st := range n.states {
			st.add(n.env)
		}
	}
	_ = n.join.Close()
	// Aggregation consumes its whole input in Open — a pipeline breaker;
	// the drained rows are its spill cost.
	ec.stats.spillRows.Add(drained)
	n.ns.addSpill(drained)
	n.out = make([]int64, len(n.states))
	for i, st := range n.states {
		v, err := st.result()
		if err != nil {
			return err
		}
		n.out[i] = v
	}
	return nil
}

func (n *aggNode) Next(ec *execCtx) (bool, error) {
	if n.done {
		return false, nil
	}
	n.done = true
	n.ns.addRowsOut(1)
	return true, nil
}

func (n *aggNode) Close() error { return n.join.Close() }
func (n *aggNode) Row() []int64 { return n.out }

// newAggState compiles one aggregate call item into its accumulator.
func newAggState(plan *selectPlan, call *CallExpr, binds map[string]interface{}) (*aggState, error) {
	name := strings.ToLower(call.Name)
	st := &aggState{name: name}
	if call.Star {
		if name != "count" {
			return nil, fmt.Errorf("sql: %s(*) is not valid; only COUNT(*)", strings.ToUpper(name))
		}
		return st, nil
	}
	if len(call.Args) != 1 {
		return nil, fmt.Errorf("sql: aggregate %s takes exactly one argument", strings.ToUpper(name))
	}
	f, err := plan.compile(call.Args[0], len(plan.sources)-1)
	if err != nil {
		return nil, err
	}
	st.arg = f
	return st, nil
}

// planAggregateInput compiles the FROM/WHERE of an aggregating block as a
// SELECT * plan, rewired onto the snapshot view when one is active.
func (e *Engine) planAggregateInput(s *SelectStmt, binds map[string]interface{}, v *execView) (*selectPlan, error) {
	plan, err := e.planSelect(&SelectStmt{
		Items: []SelectItem{{Star: true}},
		From:  s.From,
		Where: s.Where,
	}, binds)
	if err != nil {
		return nil, err
	}
	if v != nil {
		if err := rewirePlan(plan, v); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// buildAggregate compiles one aggregate-projecting select block (no GROUP
// BY) into its pipeline sink, output column names, and the underlying
// source plan (the cursor reports its join strategy).
func (e *Engine) buildAggregate(s *SelectStmt, binds map[string]interface{}, v *execView) (rowNode, []string, *selectPlan, error) {
	plan, err := e.planAggregateInput(s, binds, v)
	if err != nil {
		return nil, nil, nil, err
	}
	var states []*aggState
	var cols []string
	for _, item := range s.Items {
		call, ok := item.Expr.(*CallExpr)
		if !ok || !aggregateNames[strings.ToLower(call.Name)] {
			return nil, nil, nil, fmt.Errorf("sql: cannot mix aggregates and scalar expressions without GROUP BY (unsupported)")
		}
		st, err := newAggState(plan, call, binds)
		if err != nil {
			return nil, nil, nil, err
		}
		states = append(states, st)
		label := item.As
		if label == "" {
			label = strings.ToLower(call.Name)
		}
		cols = append(cols, label)
	}
	join, env, _, err := newJoinOverPlan(plan, binds)
	if err != nil {
		return nil, nil, nil, err
	}
	ns := &nodeStats{label: "AGGREGATE"}
	if child := join.statsNode(); child != nil {
		ns.children = []*nodeStats{child}
	}
	return &aggNode{join: join, env: env, states: states, ns: ns}, cols, plan, nil
}
