package sqldb

import (
	"strings"
	"testing"

	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 1024, CacheSize: 128})
	db, err := rel.CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(db)
}

func mustExec(t *testing.T, e *Engine, sql string, binds map[string]interface{}) *Result {
	t.Helper()
	r, err := e.Exec(sql, binds)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}

func TestFigure2DDL(t *testing.T) {
	// The paper's Figure 2, verbatim (modulo the id-in-index refinement of
	// §4.3 which the RI-tree layer applies).
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE Intervals (node int, lower int, upper int, id int)", nil)
	mustExec(t, e, "CREATE INDEX lowerIndex ON Intervals (node, lower)", nil)
	mustExec(t, e, "CREATE INDEX upperIndex ON Intervals (node, upper)", nil)
	if _, err := e.DB().Table("intervals"); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSelectDelete(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int, b int)", nil)
	for i := 0; i < 10; i++ {
		r := mustExec(t, e, "INSERT INTO t VALUES (:i, :j)",
			map[string]interface{}{"i": i, "j": i * 10})
		if r.Affected != 1 {
			t.Fatalf("insert affected %d", r.Affected)
		}
	}
	r := mustExec(t, e, "SELECT a, b FROM t WHERE a >= 3 AND a <= 5 ORDER BY a", nil)
	if len(r.Rows) != 3 || r.Rows[0][0] != 3 || r.Rows[2][1] != 50 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Cols[0] != "a" || r.Cols[1] != "b" {
		t.Fatalf("cols = %v", r.Cols)
	}
	r = mustExec(t, e, "DELETE FROM t WHERE a < 5", nil)
	if r.Affected != 5 {
		t.Fatalf("delete affected %d", r.Affected)
	}
	r = mustExec(t, e, "SELECT * FROM t", nil)
	if len(r.Rows) != 5 {
		t.Fatalf("remaining %d rows", len(r.Rows))
	}
}

func TestExpressionEvaluation(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int)", nil)
	mustExec(t, e, "INSERT INTO t VALUES (7)", nil)
	r := mustExec(t, e, "SELECT a*2+1, -a, a/2, (a+1)*(a-1) FROM t", nil)
	row := r.Rows[0]
	if row[0] != 15 || row[1] != -7 || row[2] != 3 || row[3] != 48 {
		t.Fatalf("row = %v", row)
	}
	r = mustExec(t, e, "SELECT a FROM t WHERE a BETWEEN 5 AND 9 AND NOT (a = 8) AND (a <> 3 OR a = 1)", nil)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT a FROM t WHERE a NOT BETWEEN 5 AND 9", nil)
	if len(r.Rows) != 0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if _, err := e.Exec("SELECT a/0 FROM t", nil); err == nil {
		t.Fatal("division by zero not reported")
	}
}

func TestIndexRangeScanUsed(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (k int, v int)", nil)
	mustExec(t, e, "CREATE INDEX tk ON t (k, v)", nil)
	for i := 0; i < 2000; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:k, :v)", map[string]interface{}{"k": i, "v": -i})
	}
	// Equality + range must both be index access, not a full scan.
	r := mustExec(t, e, "EXPLAIN SELECT v FROM t WHERE k = 100", nil)
	if !strings.Contains(r.Plan, "INDEX RANGE SCAN TK") {
		t.Fatalf("plan = %s", r.Plan)
	}
	e.DB().ResetStats()
	res := mustExec(t, e, "SELECT v FROM t WHERE k = 100", nil)
	if len(res.Rows) != 1 || res.Rows[0][0] != -100 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if reads := e.DB().Stats().LogicalReads; reads > 25 {
		t.Fatalf("point lookup cost %d logical reads: index not used", reads)
	}
	// Composite: k equality plus v range.
	res = mustExec(t, e, "SELECT v FROM t WHERE k = 100 AND v >= -200", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// BETWEEN drives a range scan.
	res = mustExec(t, e, "SELECT v FROM t WHERE k BETWEEN 10 AND 12", nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinWithCollectionIterator(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE data (grp int, val int)", nil)
	mustExec(t, e, "CREATE INDEX dg ON data (grp, val)", nil)
	for g := 0; g < 20; g++ {
		for v := 0; v < 5; v++ {
			mustExec(t, e, "INSERT INTO data VALUES (:g, :v)",
				map[string]interface{}{"g": g, "v": g*100 + v})
		}
	}
	coll := &Transient{Cols: []string{"grp"}, Rows: [][]int64{{3}, {7}, {15}}}
	r := mustExec(t, e,
		"SELECT d.val FROM TABLE(:groups) g, data d WHERE d.grp = g.grp ORDER BY val",
		map[string]interface{}{"groups": coll})
	if len(r.Rows) != 15 {
		t.Fatalf("join returned %d rows, want 15", len(r.Rows))
	}
	if r.Rows[0][0] != 300 || r.Rows[14][0] != 1504 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestFigure9QueryShapeAndPlan(t *testing.T) {
	// The final two-fold intersection statement of Figure 9, executed with
	// transient collections, and its Figure 10 plan.
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE Intervals (node int, lower int, upper int, id int)", nil)
	mustExec(t, e, "CREATE INDEX lowerIndex ON Intervals (node, lower, id)", nil)
	mustExec(t, e, "CREATE INDEX upperIndex ON Intervals (node, upper, id)", nil)
	// A miniature interval tree: root 8, intervals registered by hand.
	rows := [][]int64{
		// node, lower, upper, id
		{8, 4, 12, 1},
		{4, 2, 5, 2},
		{12, 11, 14, 3},
		{2, 1, 3, 4},
		{6, 5, 7, 5},
	}
	for _, r := range rows {
		mustExec(t, e, "INSERT INTO Intervals VALUES (:n, :l, :u, :i)",
			map[string]interface{}{"n": r[0], "l": r[1], "u": r[2], "i": r[3]})
	}
	// Query interval [5, 6]: fork path 8 -> 4 -> 5; leftNodes = {4} plus
	// the covered pair (5, 6); rightNodes = {8}.
	binds := map[string]interface{}{
		"leftnodes":  &Transient{Cols: []string{"min", "max"}, Rows: [][]int64{{4, 4}, {5, 6}}},
		"rightnodes": &Transient{Cols: []string{"node"}, Rows: [][]int64{{8}, {12}}},
		"lower":      5,
		"upper":      6,
	}
	sql := `SELECT id FROM Intervals i, TABLE(:leftNodes) l
	        WHERE i.node BETWEEN l.min AND l.max AND i.upper >= :lower
	        UNION ALL
	        SELECT id FROM Intervals i, TABLE(:rightNodes) r
	        WHERE i.node = r.node AND i.lower <= :upper`
	r := mustExec(t, e, sql, binds)
	got := map[int64]bool{}
	for _, row := range r.Rows {
		if got[row[0]] {
			t.Fatalf("duplicate id %d: the two-fold query must be duplicate-free", row[0])
		}
		got[row[0]] = true
	}
	// Intersecting [5,6]: 1 [4,12], 2 [2,5], 5 [5,7]. Not 3 [11,14], 4 [1,3].
	want := map[int64]bool{1: true, 2: true, 5: true}
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing id %d in %v", id, got)
		}
	}

	// Figure 10: UNION-ALL over two NESTED LOOPS, each a COLLECTION
	// ITERATOR driving an INDEX RANGE SCAN.
	pr := mustExec(t, e, "EXPLAIN "+sql, binds)
	plan := pr.Plan
	for _, want := range []string{
		"SELECT STATEMENT", "UNION-ALL", "NESTED LOOPS",
		"COLLECTION ITERATOR :LEFTNODES", "INDEX RANGE SCAN UPPERINDEX",
		"COLLECTION ITERATOR :RIGHTNODES", "INDEX RANGE SCAN LOWERINDEX",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
	if strings.Count(plan, "NESTED LOOPS") != 2 {
		t.Fatalf("plan should have two NESTED LOOPS:\n%s", plan)
	}
	if strings.Contains(plan, "TABLE ACCESS FULL") {
		t.Fatalf("plan degenerated to a full scan:\n%s", plan)
	}
}

func TestFigure11ISTQuery(t *testing.T) {
	// Figure 11: the IST/D-order range query.
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE Ivs (lower int, upper int, id int)", nil)
	mustExec(t, e, "CREATE INDEX dorder ON Ivs (upper, lower, id)", nil)
	data := [][]int64{{1, 5, 1}, {3, 9, 2}, {10, 20, 3}, {0, 100, 4}}
	for _, d := range data {
		mustExec(t, e, "INSERT INTO Ivs VALUES (:l, :u, :i)",
			map[string]interface{}{"l": d[0], "u": d[1], "i": d[2]})
	}
	r := mustExec(t, e,
		"SELECT id FROM Ivs i WHERE i.upper >= :lower AND i.lower <= :upper ORDER BY id",
		map[string]interface{}{"lower": 6, "upper": 12})
	if len(r.Rows) != 3 || r.Rows[0][0] != 2 || r.Rows[1][0] != 3 || r.Rows[2][0] != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	pr := mustExec(t, e, "EXPLAIN SELECT id FROM Ivs i WHERE i.upper >= :lower AND i.lower <= :upper",
		map[string]interface{}{"lower": 6, "upper": 12})
	if !strings.Contains(pr.Plan, "INDEX RANGE SCAN DORDER") {
		t.Fatalf("plan = %s", pr.Plan)
	}
}

func TestParseErrors(t *testing.T) {
	e := newEngine(t)
	for _, bad := range []string{
		"",
		"SELEC 1",
		"SELECT FROM t",
		"CREATE TABLE t (a int", // unclosed
		"INSERT t VALUES (1)",
		"SELECT a FROM t WHERE a ===",
		"SELECT 'str' FROM t",
		"SELECT a FROM t UNION SELECT a FROM t", // plain UNION unsupported
		"DROP VIEW v",
		"SELECT a FROM t; SELECT b FROM t",
	} {
		if _, err := e.Exec(bad, nil); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int)", nil)
	mustExec(t, e, "CREATE TABLE u (a int)", nil)
	cases := []struct {
		sql   string
		binds map[string]interface{}
	}{
		{"SELECT b FROM t", nil},                        // unknown column
		{"SELECT a FROM t, u", nil},                     // ambiguous column
		{"SELECT a FROM missing", nil},                  // unknown table
		{"SELECT a FROM t WHERE a = :x", nil},           // missing bind
		{"INSERT INTO t VALUES (1, 2)", nil},            // arity
		{"SELECT x.a FROM t", nil},                      // unknown alias
		{"SELECT a FROM t t1, t t1", nil},               // duplicate alias
		{"SELECT a FROM TABLE(:c)", nil},                // missing collection
		{"SELECT a FROM t ORDER BY zzz", nil},           // bad order key
		{"SELECT intersects(a, 1) FROM t", nil},         // unserved operator
		{"CREATE INDEX i ON t (nope)", nil},             // unknown column
		{"CREATE INDEX i ON t (a) INDEXTYPE IS x", nil}, // unknown indextype
	}
	for _, c := range cases {
		if _, err := e.Exec(c.sql, c.binds); err == nil {
			t.Errorf("no error for %q", c.sql)
		}
	}
}

func TestBindTypes(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int)", nil)
	mustExec(t, e, "INSERT INTO t VALUES (:v)", map[string]interface{}{"v": int32(5)})
	mustExec(t, e, "INSERT INTO t VALUES (:v)", map[string]interface{}{"v": int64(6)})
	mustExec(t, e, "INSERT INTO t VALUES (:v)", map[string]interface{}{"v": 7})
	if _, err := e.Exec("INSERT INTO t VALUES (:v)", map[string]interface{}{"v": "x"}); err == nil {
		t.Fatal("string bind accepted")
	}
	r := mustExec(t, e, "SELECT a FROM t ORDER BY a", nil)
	if len(r.Rows) != 3 || r.Rows[0][0] != 5 || r.Rows[2][0] != 7 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestOrderByDescAndOrdinal(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int, b int)", nil)
	for i := 0; i < 5; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:i, :j)", map[string]interface{}{"i": i, "j": i % 2})
	}
	r := mustExec(t, e, "SELECT b, a FROM t ORDER BY 1 DESC, a", nil)
	if r.Rows[0][0] != 1 || r.Rows[0][1] != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	last := r.Rows[len(r.Rows)-1]
	if last[0] != 0 || last[1] != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestUnionAllBranchArity(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int, b int)", nil)
	if _, err := e.Exec("SELECT a FROM t UNION ALL SELECT a, b FROM t", nil); err == nil {
		t.Fatal("mismatched UNION ALL arity accepted")
	}
}

func TestDeleteViaIndex(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (k int, v int)", nil)
	mustExec(t, e, "CREATE INDEX tk ON t (k)", nil)
	for i := 0; i < 500; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:k, :v)", map[string]interface{}{"k": i, "v": i})
	}
	e.DB().ResetStats()
	r := mustExec(t, e, "DELETE FROM t WHERE k = 123", nil)
	if r.Affected != 1 {
		t.Fatalf("affected %d", r.Affected)
	}
	if reads := e.DB().Stats().LogicalReads; reads > 40 {
		t.Fatalf("indexed delete cost %d logical reads", reads)
	}
	r = mustExec(t, e, "SELECT v FROM t WHERE k = 123", nil)
	if len(r.Rows) != 0 {
		t.Fatal("row still present")
	}
}

func TestCommentsAndCase(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `create table T (A int) -- trailing comment`, nil)
	mustExec(t, e, `/* leading */ INSERT INTO t VALUES (1)`, nil)
	r := mustExec(t, e, "select A from T where a = 1", nil)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
}
