package sqldb

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tkIdent: "identifier", tkNumber: "number", tkBind: "bind"}[kind]
	}
	return token{}, p.errf("expected %q, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool { return p.accept(tkIdent, kw) }

func (p *parser) statement() (Statement, error) {
	switch {
	case p.keyword("create"):
		return p.createStmt()
	case p.keyword("drop"):
		return p.dropStmt()
	case p.keyword("insert"):
		return p.insertStmt()
	case p.keyword("delete"):
		return p.deleteStmt()
	case p.keyword("select"):
		return p.selectStmt()
	// BEGIN/COMMIT/ROLLBACK are contextual keywords, statement-initial
	// only, with an optional TRANSACTION or WORK noise word.
	case p.keyword("begin"):
		p.txnNoise()
		return &BeginStmt{}, nil
	case p.keyword("commit"):
		p.txnNoise()
		return &CommitStmt{}, nil
	case p.keyword("rollback"):
		p.txnNoise()
		return &RollbackStmt{}, nil
	case p.keyword("explain"):
		// ANALYZE is a contextual keyword: EXPLAIN ANALYZE executes the
		// query and annotates the plan with the measured operator stats.
		analyze := p.keyword("analyze")
		if !p.keyword("select") {
			return nil, p.errf("EXPLAIN supports SELECT statements only")
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel.(*SelectStmt), Analyze: analyze}, nil
	}
	return nil, p.errf("unknown statement %q", p.cur().text)
}

func (p *parser) txnNoise() {
	if !p.keyword("transaction") {
		p.keyword("work")
	}
}

func (p *parser) identifier() (string, error) {
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return "", err
	}
	if reserved[t.text] {
		return "", p.errf("reserved word %q used as identifier", t.text)
	}
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "between": true, "union": true, "all": true, "insert": true,
	"into": true, "values": true, "delete": true, "create": true, "table": true,
	"index": true, "drop": true, "on": true, "order": true, "by": true,
	"asc": true, "desc": true, "explain": true, "as": true, "is": true,
	"indextype": true, "distinct": true, "limit": true, "group": true,
}

func (p *parser) createStmt() (Statement, error) {
	switch {
	case p.keyword("table"):
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			// Optional type name: INT / INTEGER / anything int-ish.
			if p.at(tkIdent, "int") || p.at(tkIdent, "integer") || p.at(tkIdent, "bigint") || p.at(tkIdent, "number") {
				p.next()
			}
			cols = append(cols, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Columns: cols}, nil
	case p.keyword("index"):
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkIdent, "on"); err != nil {
			return nil, err
		}
		table, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		st := &CreateIndexStmt{Name: name, Table: table, Columns: cols}
		// Oracle-style: CREATE INDEX ... INDEXTYPE IS ritree (paper §5),
		// optionally tuned with PARAMETERS (key = value, ...).
		if p.keyword("indextype") {
			if !p.keyword("is") {
				return nil, p.errf("expected IS after INDEXTYPE")
			}
			it, err := p.identifier()
			if err != nil {
				return nil, err
			}
			st.IndexType = it
			if p.keyword("parameters") {
				params, err := p.paramList()
				if err != nil {
					return nil, err
				}
				st.Params = params
			}
		}
		return st, nil
	case p.keyword("collection"):
		// CREATE COLLECTION name [USING method]: the unified-API shorthand
		// for a (lower, upper, id) relation plus its access-method domain
		// index.
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		st := &CreateCollectionStmt{Name: name}
		if p.keyword("using") {
			m, err := p.identifier()
			if err != nil {
				return nil, err
			}
			st.Method = m
		}
		// WITH (key = value, ...) tunes the access method; the pairs are
		// validated by the indextype and persisted in the catalog, so a
		// reopened database re-attaches the collection with the same
		// geometry.
		if p.keyword("with") {
			params, err := p.paramList()
			if err != nil {
				return nil, err
			}
			st.Params = params
		}
		return st, nil
	}
	return nil, p.errf("expected TABLE, INDEX or COLLECTION after CREATE")
}

// paramList parses (key = value, ...) where value is a signed integer or
// an identifier; values are kept as strings for the indextype to
// interpret.
func (p *parser) paramList() (map[string]string, error) {
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	params := make(map[string]string)
	for {
		key, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if _, dup := params[key]; dup {
			return nil, p.errf("duplicate parameter %q", key)
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		neg := p.accept(tkSymbol, "-")
		var val string
		switch {
		case p.at(tkNumber, ""):
			val = p.next().text
		case !neg && p.cur().kind == tkIdent && !reserved[p.cur().text]:
			val = p.next().text
		default:
			return nil, p.errf("expected a number or identifier value for parameter %q", key)
		}
		if neg {
			val = "-" + val
		}
		params[key] = val
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) dropStmt() (Statement, error) {
	isIndex := false
	switch {
	case p.keyword("table"):
	case p.keyword("index"):
		isIndex = true
	case p.keyword("collection"):
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		return &DropCollectionStmt{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE, INDEX or COLLECTION after DROP")
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Index: isIndex, Name: name}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if !p.keyword("into") {
		return nil, p.errf("expected INTO after INSERT")
	}
	table, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if !p.keyword("values") {
		return nil, p.errf("expected VALUES")
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var vals []Expr
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		vals = append(vals, e)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &InsertStmt{Table: table, Values: vals}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if !p.keyword("from") {
		return nil, p.errf("expected FROM after DELETE")
	}
	table, err := p.identifier()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.keyword("where") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	sel, err := p.selectBlock()
	if err != nil {
		return nil, err
	}
	// ORDER BY applies to the whole union chain, so parse it last.
	last := sel
	for last.Union != nil {
		last = last.Union
	}
	if p.keyword("order") {
		if !p.keyword("by") {
			return nil, p.errf("expected BY after ORDER")
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	// LIMIT applies to the whole union chain, after ORDER BY.
	if p.keyword("limit") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	return sel, nil
}

// selectBlock parses one SELECT ... FROM ... WHERE ... and any UNION ALL
// continuation.
func (p *parser) selectBlock() (*SelectStmt, error) {
	st := &SelectStmt{}
	if p.keyword("distinct") {
		st.Distinct = true
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if !p.keyword("from") {
		return nil, p.errf("expected FROM")
	}
	for {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		st.From = append(st.From, tr)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.keyword("where") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.keyword("group") {
		if !p.keyword("by") {
			return nil, p.errf("expected BY after GROUP")
		}
		for {
			g, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, g)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.keyword("union") {
		if !p.keyword("all") {
			return nil, p.errf("only UNION ALL is supported (the paper's queries produce no duplicates)")
		}
		if !p.keyword("select") {
			return nil, p.errf("expected SELECT after UNION ALL")
		}
		u, err := p.selectBlock()
		if err != nil {
			return nil, err
		}
		st.Union = u
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tkSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// alias.* wildcard.
	if p.cur().kind == tkIdent && !reserved[p.cur().text] &&
		p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tkSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tkSymbol && p.toks[p.pos+2].text == "*" {
		alias := p.next().text
		p.next()
		p.next()
		return SelectItem{Star: true, StarAlias: alias}, nil
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("as") {
		a, err := p.identifier()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = a
	} else if p.cur().kind == tkIdent && !reserved[p.cur().text] {
		item.As = p.next().text
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	var tr TableRef
	if p.keyword("table") {
		// TABLE(:bind) — a transient collection (paper §4.2: "transient
		// relations are managed in the transient session state").
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return tr, err
		}
		b, err := p.expect(tkBind, "")
		if err != nil {
			return tr, err
		}
		tr.Collection = b.text
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return tr, err
		}
	} else {
		name, err := p.identifier()
		if err != nil {
			return tr, err
		}
		tr.Name = name
	}
	if p.cur().kind == tkIdent && !reserved[p.cur().text] {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Expression grammar (precedence climbing):
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := [NOT] cmp
//	cmp  := add (op add | [NOT] BETWEEN add AND add)?
//	add  := mul ((+|-) mul)*
//	mul  := unary ((*|/) unary)*
//	unary:= [-] primary
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.keyword("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	notBetween := false
	if p.keyword("not") {
		if !p.keyword("between") {
			return nil, p.errf("expected BETWEEN after NOT")
		}
		notBetween = true
	} else if !p.keyword("between") {
		for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
			if p.accept(tkSymbol, op) {
				r, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				return &BinaryExpr{Op: op, L: l, R: r}, nil
			}
		}
		return l, nil
	}
	lo, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if !p.keyword("and") {
		return nil, p.errf("expected AND in BETWEEN")
	}
	hi, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: notBetween}, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.accept(tkSymbol, "-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.accept(tkSymbol, "/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tkSymbol, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumberExpr{Value: v}, nil
	case tkBind:
		p.next()
		return &BindExpr{Name: t.text}, nil
	case tkIdent:
		if reserved[t.text] {
			return nil, p.errf("unexpected keyword %q", t.text)
		}
		p.next()
		// f(args...) — extensible-indexing operator or aggregate call.
		if p.accept(tkSymbol, "(") {
			if p.accept(tkSymbol, "*") {
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				return &CallExpr{Name: t.text, Star: true}, nil
			}
			var args []Expr
			if !p.at(tkSymbol, ")") {
				for {
					a, err := p.expression()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tkSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args}, nil
		}
		if p.accept(tkSymbol, ".") {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			return &ColumnExpr{Table: t.text, Column: col}, nil
		}
		return &ColumnExpr{Column: t.text}, nil
	case tkSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
