package sqldb

import (
	"context"
	"fmt"
	"time"
)

// Rows is a streaming SELECT cursor: rows are produced one at a time by
// the volcano pipeline, so the underlying access-method scans advance
// only as far as the consumer pulls. The usage contract mirrors
// database/sql:
//
//	rows, err := eng.Query(ctx, "SELECT id FROM iv WHERE intersects(lower, upper, :a, :b) LIMIT 10", binds)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var id int64
//		_ = rows.Scan(&id)
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The cursor holds NO lock while streaming: it reads from a pinned
// page-store snapshot (see view.go), so concurrent writers commit freely
// and the cursor keeps answering from its snapshot. Still always call
// Close (it is idempotent; Next auto-closes on exhaustion and error) —
// an open cursor pins its snapshot's pre-image retention. A cancelled
// ctx surfaces as Err() after Next returns false, including mid-scan:
// the pipeline polls the context at every leaf row and abandoning the
// cursor stops the suspended access-method scan.
type Rows struct {
	root   rowNode
	ec     *execCtx
	cols   []string
	err    error
	opened bool
	closed bool
	// planRoot is the root of the per-operator stats tree (PlanStats).
	planRoot *nodeStats
	// cachedPlan records that this cursor executes a plan-cache hit (an
	// EXPLAIN ANALYZE annotation and a driver-visible fact).
	cachedPlan bool
	// closers run once on Close, LIFO — lock releases pushed by Query.
	closers []func()
}

// CachedPlan reports whether this cursor reused a cached plan.
func (r *Rows) CachedPlan() bool { return r.cachedPlan }

// Columns names the projected columns.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, reporting whether one is available. On
// false, the cursor has auto-closed; consult Err.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	ok, err := r.step()
	if err != nil {
		r.err = err
		_ = r.Close()
		return false
	}
	if !ok {
		_ = r.Close()
		return false
	}
	r.ec.stats.rowsOut.Add(1)
	return true
}

// step opens the pipeline lazily and advances it, converting runtime
// faults in compiled expressions (division by zero, inverted Allen query
// bounds from join columns) into errors.
func (r *Rows) step() (ok bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if re, isRE := rec.(sqlRuntimeError); isRE {
				ok, err = false, re
				return
			}
			panic(rec)
		}
	}()
	if !r.opened {
		r.opened = true
		if err := ctxErr(r.ec.ctx); err != nil {
			return false, err
		}
		if err := r.root.Open(r.ec); err != nil {
			return false, err
		}
	}
	return r.root.Next(r.ec)
}

// Row returns the current output row. It is valid only after a true
// Next and until the following Next or Close; copy it to retain it.
func (r *Rows) Row() []int64 { return r.root.Row() }

// Scan copies the current row into dest, one pointer per column.
func (r *Rows) Scan(dest ...*int64) error {
	row := r.Row()
	if len(dest) != len(row) {
		return fmt.Errorf("sql: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		*d = row[i]
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A cancelled
// context surfaces here as its context error.
func (r *Rows) Err() error { return r.err }

// Stats returns the work counters of this cursor (see ExecStats). The
// counters are maintained atomically, so Stats may be called from a
// different goroutine than the one driving Next.
func (r *Rows) Stats() ExecStats { return r.ec.stats.snapshot() }

// PlanStats returns the executed plan tree with per-operator counters —
// the data behind EXPLAIN ANALYZE. Wall times are populated only when
// the statement ran as EXPLAIN ANALYZE; the counters are always live.
func (r *Rows) PlanStats() PlanNodeStats {
	if r.planRoot == nil {
		return PlanNodeStats{}
	}
	return snapshotNode(r.planRoot)
}

// Close stops the pipeline — terminating any suspended access-method
// scans — and releases the locks the cursor holds. Idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.root.Close()
	for i := len(r.closers) - 1; i >= 0; i-- {
		r.closers[i]()
	}
	if err != nil && r.err == nil {
		r.err = err
	}
	return err
}

// onClose registers fn to run once when the cursor closes (LIFO).
func (r *Rows) onClose(fn func()) { r.closers = append(r.closers, fn) }

// OnClose registers fn to run once when the cursor closes — the hook the
// public DB wrapper uses to scope its read lock to the cursor lifetime.
func (r *Rows) OnClose(fn func()) { r.onClose(fn) }

// Query parses and executes a SELECT statement, returning a streaming
// cursor. Non-SELECT statements are rejected — use Exec. The engine's
// statement lock is held only while planning: the returned cursor reads
// from a snapshot view pinned at the current committed state (or the
// open transaction's view), so it never blocks concurrent writers and
// concurrent writers never shift its results.
func (e *Engine) Query(ctx context.Context, sql string, binds map[string]interface{}) (*Rows, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query requires a SELECT statement, got %T (use Exec)", st)
	}
	e.mu.Lock()
	v, err := e.acquireViewLocked()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	rows, err := e.buildRowsLocked(ctx, sel, sql, binds, v)
	if err != nil {
		e.mu.Unlock()
		e.releaseView(v)
		return nil, err
	}
	rows.onClose(func() { e.releaseView(v) })
	// Statement telemetry spans Query to Close. Closers run LIFO, so the
	// observation fires before the view reference above is dropped.
	start := time.Now()
	nbinds := len(binds)
	rows.onClose(func() {
		e.observeStmt(sql, "select", nbinds, time.Since(start), rows.ec.stats.snapshot(), rows.PlanStats)
	})
	e.mu.Unlock()
	return rows, nil
}

// buildRowsLocked compiles the union chain of s into a streaming
// pipeline. When v is non-nil every compiled plan is rewired onto the
// view's snapshot handles; a nil v leaves live handles, which is only
// sound for statements that drain entirely under e.mu. Caller holds
// e.mu; the returned cursor releases nothing on Close unless closers are
// registered.
//
// sqlText keys the plan cache: eligible statements (stmtCacheable) reuse
// their compiled per-block plans across executions, always through a
// clone — rewirePlan mutates storage handles in place, so the cached
// template must stay pristine.
func (e *Engine) buildRowsLocked(ctx context.Context, s *SelectStmt, sqlText string, binds map[string]interface{}, v *execView) (*Rows, error) {
	var cached []*selectPlan
	cacheHit := false
	cacheKey := ""
	if sqlText != "" && e.plans.enabled() && stmtCacheable(s) {
		cacheKey = sqlText
		cached, cacheHit = e.plans.get(cacheKey)
		if m := e.sqlMet.Load(); m != nil {
			if cacheHit {
				m.planHits.Inc()
			} else {
				m.planMisses.Inc()
			}
		}
	}
	var templates []*selectPlan
	blockIdx := 0
	// nextPlan supplies one plain block's executable plan: a clone of the
	// cached template on a hit, a fresh compilation (with a pristine clone
	// recorded for the cache) otherwise.
	nextPlan := func(blk *SelectStmt) (*selectPlan, error) {
		defer func() { blockIdx++ }()
		if cacheHit {
			return clonePlan(cached[blockIdx]), nil
		}
		plan, err := e.planSelect(blk, binds)
		if err != nil {
			return nil, err
		}
		if cacheKey != "" {
			templates = append(templates, clonePlan(plan))
		}
		return plan, nil
	}
	var branches []rowNode
	var cols []string
	strategy := ""
	// noteStrategy folds one block's plan into the cursor-level join
	// strategy: merge wins over nested loops, which wins over none.
	noteStrategy := func(plan *selectPlan) {
		if plan.merge != nil {
			strategy = "merge"
		} else if len(plan.sources) > 1 && strategy != "merge" {
			strategy = "nested_loops"
		}
	}
	for blk := s; blk != nil; blk = blk.Union {
		var bn rowNode
		var bcols []string
		if len(blk.GroupBy) > 0 {
			gn, gcols, plan, err := e.buildGroupBy(blk, binds, v)
			if err != nil {
				return nil, err
			}
			bn, bcols = gn, gcols
			noteStrategy(plan)
		} else if isAggregate(blk) {
			an, acols, plan, err := e.buildAggregate(blk, binds, v)
			if err != nil {
				return nil, err
			}
			bn, bcols = an, acols
			noteStrategy(plan)
		} else {
			plan, err := nextPlan(blk)
			if err != nil {
				return nil, err
			}
			if v != nil {
				if err := rewirePlan(plan, v); err != nil {
					return nil, err
				}
			}
			pn, err := newProjectOverPlan(plan, binds)
			if err != nil {
				return nil, err
			}
			bn, bcols = pn, plan.outCols
			noteStrategy(plan)
		}
		if blk.Distinct {
			bn = &distinctNode{in: bn, ns: statsOver("DISTINCT", bn)}
		}
		if cols == nil {
			cols = bcols
		} else if len(cols) != len(bcols) {
			return nil, fmt.Errorf("sql: UNION ALL branches project %d vs %d columns", len(cols), len(bcols))
		}
		branches = append(branches, bn)
	}
	var root rowNode
	if len(branches) == 1 {
		root = branches[0]
	} else {
		cn := &concatNode{ins: branches}
		cn.ns = &nodeStats{label: "UNION-ALL"}
		for _, b := range branches {
			if child := statsNodeOf(b); child != nil {
				cn.ns.children = append(cn.ns.children, child)
			}
		}
		root = cn
	}
	var limit int64 = -1
	if s.Limit != nil {
		n, err := evalConst(s.Limit, binds)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sql: LIMIT must not be negative, got %d", n)
		}
		limit = n
	}
	if len(s.OrderBy) > 0 {
		keys, err := sortKeys(s.OrderBy, cols)
		if err != nil {
			return nil, err
		}
		if limit >= 0 {
			// ORDER BY + LIMIT k fuse into a bounded top-k heap: O(n log k)
			// and k retained rows instead of a full sort feeding a limit.
			k := limit
			ns := statsOver("", root)
			ns.labelFn = func() string { return fmt.Sprintf("SORT TOP-K %d", k) }
			root = &topKNode{in: root, keys: keys, k: k, ns: ns}
			limit = -1
		} else {
			root = &sortNode{in: root, keys: keys, ns: statsOver("SORT ORDER BY", root)}
		}
	}
	if limit >= 0 {
		n := limit
		ns := statsOver("", root)
		ns.labelFn = func() string { return fmt.Sprintf("LIMIT %d", n) }
		root = &limitNode{in: root, n: n, ns: ns}
	}
	if cacheKey != "" && !cacheHit {
		if evicted := e.plans.put(cacheKey, templates); evicted > 0 {
			if m := e.sqlMet.Load(); m != nil {
				m.planEvictions.Add(evicted)
			}
		}
	}
	ec := &execCtx{ctx: ctx}
	ec.stats.joinStrategy = strategy
	return &Rows{root: root, ec: ec, cols: cols, planRoot: statsNodeOf(root), cachedPlan: cacheHit}, nil
}

// statsNodeOf extracts the plan-stats record of a node (nil when it has
// none — e.g. a bare projection delegates to its join).
func statsNodeOf(n rowNode) *nodeStats {
	if sn, ok := n.(interface{ statsNode() *nodeStats }); ok {
		return sn.statsNode()
	}
	return nil
}

// statsOver builds a stats record labelled label whose child is in's
// record.
func statsOver(label string, in rowNode) *nodeStats {
	ns := &nodeStats{label: label}
	if child := statsNodeOf(in); child != nil {
		ns.children = []*nodeStats{child}
	}
	return ns
}
