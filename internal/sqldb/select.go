package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"ritree/internal/interval"
	"ritree/internal/rel"
)

// evalFn evaluates an expression against the current join environment.
// Booleans are 0/1. Runtime faults (division by zero) panic with
// sqlRuntimeError and are converted to errors at the plan boundary.
type evalFn func(env []int64) int64

type sqlRuntimeError struct{ msg string }

func (e sqlRuntimeError) Error() string { return "sql: " + e.msg }

type accessKind int

const (
	accessFull accessKind = iota
	accessIndexRange
	accessCollection
	accessCustom
	// accessAllen serves an ALLEN_* operator through a domain index's
	// INTERSECTS scan over the relation's generating region (§4.5), with
	// the exact relation applied as a residual filter by the executor.
	accessAllen
)

// srcPlan is the access plan for one FROM source.
type srcPlan struct {
	ref  TableRef
	cols []string
	base int // slot offset of this source's columns in the env
	kind accessKind
	tab  *rel.Table
	coll *Transient
	ix   *rel.Index
	eq   []evalFn // equality prefix values
	// lows/highs extend the composite start/stop keys beyond the equality
	// prefix: e.g. Figure 9's left branch scans (node, upper) from
	// (l.min, :lower) to (l.max, +inf) — exactly Oracle's access predicates.
	lows  []evalFn
	highs []evalFn

	custom     CustomIndex
	customOp   string
	customArgs []evalFn

	// Allen access (kind == accessAllen): the relation, the query-bound
	// argument functions (customArgs holds them), and the row positions of
	// the indexed (lower, upper) columns for the residual check.
	allenRel   interval.Relation
	allenLoPos int
	allenHiPos int

	filters []evalFn // predicates checked once this source is bound

	// Interval merge join feed (selectPlan.merge non-nil): mjLo/mjHi are
	// the join interval's column positions within cols; mjOrderedIx is the
	// domain index streaming this side in lower-bound order (nil: explicit
	// sort fallback); mjNowIx is the NowKeeper index whose clock resolves
	// now-relative rows when this side is the subject.
	mjLo, mjHi  int
	mjOrderedIx CustomIndex
	mjNowIx     CustomIndex
}

// mergeSpec describes an interval merge join between two sources: the
// predicate linking them (one of the 13 extended Allen relations, or
// plain INTERSECTS), which source binds the subject (lower, upper)
// arguments and which the query arguments, and the residual filters that
// reference both sides.
type mergeSpec struct {
	rel       interval.Relation
	intersect bool // plain INTERSECTS instead of an exact Allen relation
	opName    string
	left      int // source index of the subject (args[0:2]) side
	right     int // source index of the query (args[2:4]) side
	post      []evalFn
}

// selectPlan is a compiled single SELECT block. Compiled expressions
// never capture bind values: every :name reference reads an env slot in
// the bind tail (after all source columns), filled per execution by
// fillBinds. That is what makes a plan reusable — and cacheable — across
// executions with different binds.
type selectPlan struct {
	eng     *Engine
	sources []*srcPlan
	merge   *mergeSpec // non-nil: interval merge join instead of nested loops
	project []evalFn
	outCols []string
	envSize int
	// bindSlots maps a bind name to its slot in the env's bind tail; the
	// absolute env position is envSize + slot. envSize is final before any
	// compile call (source bases are assigned first), so positions are
	// stable for the plan's lifetime.
	bindSlots map[string]int
}

// bindSlot returns the absolute env position of bind :name, allocating a
// tail slot on first reference.
func (p *selectPlan) bindSlot(name string) int {
	if p.bindSlots == nil {
		p.bindSlots = make(map[string]int)
	}
	slot, ok := p.bindSlots[name]
	if !ok {
		slot = len(p.bindSlots)
		p.bindSlots[name] = slot
	}
	return p.envSize + slot
}

// envLen is the full env width: all source columns plus the bind tail.
func (p *selectPlan) envLen() int { return p.envSize + len(p.bindSlots) }

// fillBinds writes this execution's bind values into env's bind tail.
// Planning no longer consumes scalar binds, so a missing or mistyped
// bind surfaces here — when the plan is instantiated.
func (p *selectPlan) fillBinds(env []int64, binds map[string]interface{}) error {
	for name, slot := range p.bindSlots {
		v, err := bindScalar(binds, name)
		if err != nil {
			return err
		}
		env[p.envSize+slot] = v
	}
	return nil
}

type conjunct struct {
	ex     Expr
	maxSrc int // highest source index referenced; -1 if none
	used   bool
}

// planSelect compiles one SELECT block against the current binds.
func (e *Engine) planSelect(s *SelectStmt, binds map[string]interface{}) (*selectPlan, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires a FROM clause")
	}
	p := &selectPlan{eng: e}
	seen := map[string]bool{}
	for _, ref := range s.From {
		sp := &srcPlan{ref: ref, base: p.envSize}
		if ref.Collection != "" {
			coll, err := bindCollection(binds, ref.Collection)
			if err != nil {
				return nil, err
			}
			sp.coll = coll
			sp.cols = coll.Cols
			sp.kind = accessCollection
		} else {
			tab, err := e.db.Table(ref.Name)
			if err != nil {
				return nil, err
			}
			sp.tab = tab
			sp.cols = tab.Schema().Columns
			sp.kind = accessFull
		}
		name := strings.ToLower(ref.displayName())
		if seen[name] {
			return nil, fmt.Errorf("sql: duplicate table alias %q", name)
		}
		seen[name] = true
		p.sources = append(p.sources, sp)
	}
	// Join order: transient collections drive the nested loops (they are
	// uncorrelated bind values, and the indexed table must be probed per
	// collection row — the plan Oracle's optimizer picks for Figure 9).
	sort.SliceStable(p.sources, func(i, j int) bool {
		ci := p.sources[i].kind == accessCollection
		cj := p.sources[j].kind == accessCollection
		return ci && !cj
	})
	for _, sp := range p.sources {
		sp.base = p.envSize
		p.envSize += len(sp.cols)
	}

	// Split WHERE into conjuncts.
	var conjuncts []*conjunct
	var split func(ex Expr)
	split = func(ex Expr) {
		if b, ok := ex.(*BinaryExpr); ok && b.Op == "and" {
			split(b.L)
			split(b.R)
			return
		}
		conjuncts = append(conjuncts, &conjunct{ex: ex})
	}
	if s.Where != nil {
		split(s.Where)
	}
	for _, c := range conjuncts {
		m, err := p.maxSource(c.ex)
		if err != nil {
			return nil, err
		}
		c.maxSrc = m
	}

	// Interval merge join first: exactly two sources linked by one
	// interval predicate sweep together instead of nested-looping — the
	// sort-merge interval join of Piatov et al. (PAPERS.md). Detection
	// claims the linking conjunct; everything else becomes a per-side or
	// post-join filter below.
	if len(p.sources) == 2 && !e.mergeOff {
		if err := p.detectMergeJoin(conjuncts); err != nil {
			return nil, err
		}
	}

	if p.merge == nil {
		// Choose an access path per source, in FROM order (left-deep nested
		// loops, as the paper's plans are forced via optimizer hints).
		for i, sp := range p.sources {
			if sp.kind == accessCollection {
				continue
			}
			if err := e.chooseAccess(p, sp, i, conjuncts); err != nil {
				return nil, err
			}
		}

		// Attach every remaining conjunct as a filter at the last source it
		// references (access-predicate conjuncts are kept as residual filters:
		// cheap, and required for multi-node range pairs, §4.3).
		for _, c := range conjuncts {
			if c.used {
				continue
			}
			at := c.maxSrc
			if at < 0 {
				at = 0
			}
			f, err := p.compile(c.ex, at)
			if err != nil {
				return nil, err
			}
			p.sources[at].filters = append(p.sources[at].filters, f)
		}
	} else if err := p.attachMergeFilters(conjuncts); err != nil {
		return nil, err
	}

	// Projection.
	for _, item := range s.Items {
		if item.Star {
			for si, sp := range p.sources {
				if item.StarAlias != "" && !strings.EqualFold(item.StarAlias, sp.ref.displayName()) {
					continue
				}
				for ci, col := range sp.cols {
					slot := sp.base + ci
					p.project = append(p.project, func(env []int64) int64 { return env[slot] })
					p.outCols = append(p.outCols, col)
				}
				_ = si
			}
			if len(p.project) == 0 {
				return nil, fmt.Errorf("sql: %s.* matches no source", item.StarAlias)
			}
			continue
		}
		f, err := p.compile(item.Expr, len(p.sources)-1)
		if err != nil {
			return nil, err
		}
		p.project = append(p.project, f)
		name := item.As
		if name == "" {
			if ce, ok := item.Expr.(*ColumnExpr); ok {
				name = ce.Column
			} else {
				name = fmt.Sprintf("col%d", len(p.outCols)+1)
			}
		}
		p.outCols = append(p.outCols, name)
	}
	return p, nil
}

// detectMergeJoin looks for a single interval predicate — ALLEN_X or
// INTERSECTS over four plain column arguments, (lower, upper) of one
// source and (lower, upper) of the other — and claims it as the merge
// join's linking conjunct. Each side then records its feed: the ordered
// stream of a domain index on exactly the join columns when one offers
// the OrderedScanner capability, the explicit sort fallback otherwise.
func (p *selectPlan) detectMergeJoin(conjuncts []*conjunct) error {
	for _, c := range conjuncts {
		call, ok := c.ex.(*CallExpr)
		if !ok || c.used || len(call.Args) != 4 {
			continue
		}
		r, isAllen := allenRelation(call.Name)
		if !isAllen && strings.ToLower(call.Name) != opIntersects {
			continue
		}
		var si, pos [4]int
		cols := true
		for k, a := range call.Args {
			ce, isCol := a.(*ColumnExpr)
			if !isCol {
				cols = false
				break
			}
			s, slot, err := p.resolve(ce)
			if err != nil {
				return err
			}
			si[k], pos[k] = s, slot-p.sources[s].base
		}
		if !cols || si[0] != si[1] || si[2] != si[3] || si[0] == si[2] {
			continue
		}
		m := &mergeSpec{
			rel:       r,
			intersect: !isAllen,
			opName:    strings.ToUpper(call.Name),
			left:      si[0],
			right:     si[2],
		}
		ls, rs := p.sources[m.left], p.sources[m.right]
		ls.mjLo, ls.mjHi = pos[0], pos[1]
		rs.mjLo, rs.mjHi = pos[2], pos[3]
		for _, sp := range [2]*srcPlan{ls, rs} {
			if sp.tab == nil {
				continue
			}
			for _, ci := range p.eng.customByTb[strings.ToLower(sp.tab.Name())] {
				idxCols := ci.Columns()
				if sp.mjOrderedIx == nil && len(idxCols) == 2 &&
					strings.EqualFold(idxCols[0], sp.cols[sp.mjLo]) &&
					strings.EqualFold(idxCols[1], sp.cols[sp.mjHi]) {
					if _, ok := ci.(OrderedScanner); ok {
						sp.mjOrderedIx = ci
					}
				}
				if sp.mjNowIx == nil {
					if _, ok := ci.(NowKeeper); ok {
						sp.mjNowIx = ci
					}
				}
			}
		}
		c.used = true
		p.merge = m
		return nil
	}
	return nil
}

// sourceMask returns a bitmask of the source indexes ex references.
func (p *selectPlan) sourceMask(ex Expr) (uint, error) {
	var mask uint
	var walk func(Expr) error
	walk = func(ex Expr) error {
		switch x := ex.(type) {
		case *ColumnExpr:
			si, _, err := p.resolve(x)
			if err != nil {
				return err
			}
			mask |= 1 << uint(si)
		case *UnaryExpr:
			return walk(x.X)
		case *BinaryExpr:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *BetweenExpr:
			for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
				if err := walk(sub); err != nil {
					return err
				}
			}
		case *CallExpr:
			for _, a := range x.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(ex); err != nil {
		return 0, err
	}
	return mask, nil
}

// attachMergeFilters distributes the non-linking conjuncts of a merge
// join: single-source conjuncts filter that side's feed before it enters
// the sweep, conjuncts over both sides run post-join on each emitted
// pair, and source-free conjuncts gate the left feed (any side works —
// a constant false empties the join either way).
func (p *selectPlan) attachMergeFilters(conjuncts []*conjunct) error {
	last := len(p.sources) - 1
	for _, c := range conjuncts {
		if c.used {
			continue
		}
		mask, err := p.sourceMask(c.ex)
		if err != nil {
			return err
		}
		switch mask {
		case 0, 1 << uint(p.merge.left):
			f, err := p.compile(c.ex, p.merge.left)
			if err != nil {
				return err
			}
			p.sources[p.merge.left].filters = append(p.sources[p.merge.left].filters, f)
		case 1 << uint(p.merge.right):
			f, err := p.compile(c.ex, last)
			if err != nil {
				return err
			}
			p.sources[p.merge.right].filters = append(p.sources[p.merge.right].filters, f)
		default:
			f, err := p.compile(c.ex, last)
			if err != nil {
				return err
			}
			p.merge.post = append(p.merge.post, f)
		}
	}
	return nil
}

// maxSource returns the highest source index referenced by ex (-1 if none).
func (p *selectPlan) maxSource(ex Expr) (int, error) {
	max := -1
	var walk func(Expr) error
	walk = func(ex Expr) error {
		switch x := ex.(type) {
		case *ColumnExpr:
			si, _, err := p.resolve(x)
			if err != nil {
				return err
			}
			if si > max {
				max = si
			}
		case *UnaryExpr:
			return walk(x.X)
		case *BinaryExpr:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *BetweenExpr:
			for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
				if err := walk(sub); err != nil {
					return err
				}
			}
		case *CallExpr:
			for _, a := range x.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(ex); err != nil {
		return -1, err
	}
	return max, nil
}

// resolve maps a column reference to (source index, env slot).
func (p *selectPlan) resolve(c *ColumnExpr) (int, int, error) {
	if c.Table != "" {
		for si, sp := range p.sources {
			if !strings.EqualFold(c.Table, sp.ref.displayName()) {
				continue
			}
			for ci, col := range sp.cols {
				if strings.EqualFold(col, c.Column) {
					return si, sp.base + ci, nil
				}
			}
			return 0, 0, fmt.Errorf("sql: no column %s in %s", c.Column, c.Table)
		}
		return 0, 0, fmt.Errorf("sql: unknown table or alias %q", c.Table)
	}
	foundSi, foundSlot := -1, -1
	for si, sp := range p.sources {
		for ci, col := range sp.cols {
			if strings.EqualFold(col, c.Column) {
				if foundSi >= 0 {
					return 0, 0, fmt.Errorf("sql: ambiguous column %q", c.Column)
				}
				foundSi, foundSlot = si, sp.base+ci
			}
		}
	}
	if foundSi < 0 {
		return 0, 0, fmt.Errorf("sql: unknown column %q", c.Column)
	}
	return foundSi, foundSlot, nil
}

// compile turns ex into an evalFn. Columns of sources > maxSrc are
// rejected (they are not bound yet at evaluation time). Bind references
// compile to env-slot reads (see bindSlot), never to captured values.
func (p *selectPlan) compile(ex Expr, maxSrc int) (evalFn, error) {
	switch x := ex.(type) {
	case *NumberExpr:
		v := x.Value
		return func([]int64) int64 { return v }, nil
	case *BindExpr:
		slot := p.bindSlot(x.Name)
		return func(env []int64) int64 { return env[slot] }, nil
	case *ColumnExpr:
		si, slot, err := p.resolve(x)
		if err != nil {
			return nil, err
		}
		if si > maxSrc {
			return nil, fmt.Errorf("sql: column %s of a later FROM source used too early", x.Column)
		}
		return func(env []int64) int64 { return env[slot] }, nil
	case *UnaryExpr:
		f, err := p.compile(x.X, maxSrc)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			return func(env []int64) int64 { return -f(env) }, nil
		}
		return func(env []int64) int64 { return b2i(f(env) == 0) }, nil
	case *BetweenExpr:
		xf, err := p.compile(x.X, maxSrc)
		if err != nil {
			return nil, err
		}
		lf, err := p.compile(x.Lo, maxSrc)
		if err != nil {
			return nil, err
		}
		hf, err := p.compile(x.Hi, maxSrc)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(env []int64) int64 {
			v := xf(env)
			in := v >= lf(env) && v <= hf(env)
			return b2i(in != not)
		}, nil
	case *BinaryExpr:
		lf, err := p.compile(x.L, maxSrc)
		if err != nil {
			return nil, err
		}
		rf, err := p.compile(x.R, maxSrc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return func(env []int64) int64 { return lf(env) + rf(env) }, nil
		case "-":
			return func(env []int64) int64 { return lf(env) - rf(env) }, nil
		case "*":
			return func(env []int64) int64 { return lf(env) * rf(env) }, nil
		case "/":
			return func(env []int64) int64 {
				d := rf(env)
				if d == 0 {
					panic(sqlRuntimeError{"division by zero"})
				}
				return lf(env) / d
			}, nil
		case "=":
			return func(env []int64) int64 { return b2i(lf(env) == rf(env)) }, nil
		case "<>":
			return func(env []int64) int64 { return b2i(lf(env) != rf(env)) }, nil
		case "<":
			return func(env []int64) int64 { return b2i(lf(env) < rf(env)) }, nil
		case "<=":
			return func(env []int64) int64 { return b2i(lf(env) <= rf(env)) }, nil
		case ">":
			return func(env []int64) int64 { return b2i(lf(env) > rf(env)) }, nil
		case ">=":
			return func(env []int64) int64 { return b2i(lf(env) >= rf(env)) }, nil
		case "and":
			return func(env []int64) int64 { return b2i(lf(env) != 0 && rf(env) != 0) }, nil
		case "or":
			return func(env []int64) int64 { return b2i(lf(env) != 0 || rf(env) != 0) }, nil
		}
		return nil, fmt.Errorf("sql: unsupported operator %q", x.Op)
	case *CallExpr:
		// The ALLEN_* operators evaluate as plain predicates over any
		// expressions (the residual form): this serves sources without a
		// domain index (transient collections, extra Allen conjuncts after
		// one drove the access path). Index-served evaluation through the
		// generating region is chosen by chooseAccess before compilation
		// gets here.
		if r, ok := allenRelation(x.Name); ok {
			if len(x.Args) != 4 {
				return nil, fmt.Errorf("sql: %s needs (lower, upper, :qlo, :qhi), got %d args",
					strings.ToUpper(x.Name), len(x.Args))
			}
			fns := make([]evalFn, 4)
			for i, a := range x.Args {
				f, err := p.compile(a, maxSrc)
				if err != nil {
					return nil, err
				}
				fns[i] = f
			}
			// Now-relative rows (§4.6) must evaluate against the same
			// clock here as on the index-served path, or the answer would
			// depend on which conjunct drove the access plan: when the
			// upper argument is a column of a source whose table has a
			// NowKeeper domain index, that keeper's clock resolves the
			// NowMarker sentinel (no keeper: now = 0, like the executor).
			nk := p.nowKeeperFor(x.Args[1])
			return func(env []int64) int64 {
				q, err := allenQuery(r, fns[2](env), fns[3](env))
				if err != nil {
					panic(sqlRuntimeError{err.Error()})
				}
				iv := interval.New(fns[0](env), fns[1](env))
				if iv.Upper == interval.NowMarker {
					now := int64(0)
					if nk != nil {
						now = nk.Now()
					}
					iv.Upper = now
					if !iv.Valid() {
						return 0 // born in the future of the evaluation time
					}
				}
				return b2i(r.Holds(iv, q))
			}, nil
		}
		return nil, fmt.Errorf("sql: operator %s is not supported by any index of the queried table (extensible operators must be served by a DOMAIN INDEX, §5)", x.Name)
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", ex)
}

// nowKeeperFor finds the NowKeeper clock that governs ex, when ex is a
// column of a base-table source with a NowKeeper domain index. nil when
// no clock applies (transient sources, non-column expressions, tables
// without a now-capable index).
func (p *selectPlan) nowKeeperFor(ex Expr) NowKeeper {
	ce, ok := ex.(*ColumnExpr)
	if !ok || p.eng == nil {
		return nil
	}
	si, _, err := p.resolve(ce)
	if err != nil || p.sources[si].tab == nil {
		return nil
	}
	for _, ci := range p.eng.customByTb[strings.ToLower(p.sources[si].tab.Name())] {
		if nk, isNK := ci.(NowKeeper); isNK {
			return nk
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sargable checks whether conjunct c constrains column col of source si
// with an expression evaluable from earlier sources. It returns the
// operator and the value expression.
func (p *selectPlan) sargable(c *conjunct, si int, col string) (string, Expr, Expr, bool) {
	colMatches := func(ex Expr) bool {
		ce, ok := ex.(*ColumnExpr)
		if !ok {
			return false
		}
		csi, _, err := p.resolve(ce)
		return err == nil && csi == si && strings.EqualFold(ce.Column, col)
	}
	evaluableBefore := func(ex Expr) bool {
		m, err := p.maxSource(ex)
		return err == nil && m < si
	}
	switch x := c.ex.(type) {
	case *BinaryExpr:
		flip := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
		if colMatches(x.L) && evaluableBefore(x.R) {
			if _, ok := flip[x.Op]; ok {
				return x.Op, x.R, nil, true
			}
		}
		if colMatches(x.R) && evaluableBefore(x.L) {
			if f, ok := flip[x.Op]; ok {
				return f, x.L, nil, true
			}
		}
	case *BetweenExpr:
		if !x.Not && colMatches(x.X) && evaluableBefore(x.Lo) && evaluableBefore(x.Hi) {
			return "between", x.Lo, x.Hi, true
		}
	}
	return "", nil, nil, false
}

// chooseAccess selects the cheapest available access path for source si.
func (e *Engine) chooseAccess(p *selectPlan, sp *srcPlan, si int, conjuncts []*conjunct) error {
	// Extensible indexing first: an operator conjunct served by a domain
	// index on this table (paper §5).
	for _, c := range conjuncts {
		call, ok := c.ex.(*CallExpr)
		if !ok || c.used {
			continue
		}
		for _, ci := range e.customByTb[sp.ref.Name] {
			if !ci.HasOperator(call.Name) {
				continue
			}
			idxCols := ci.Columns()
			if len(call.Args) < len(idxCols) {
				continue
			}
			match := true
			for k, col := range idxCols {
				ce, ok := call.Args[k].(*ColumnExpr)
				if !ok || !strings.EqualFold(ce.Column, col) {
					match = false
					break
				}
				if csi, _, err := p.resolve(ce); err != nil || csi != si {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			var args []evalFn
			argOK := true
			for _, a := range call.Args[len(idxCols):] {
				m, err := p.maxSource(a)
				if err != nil || m >= si {
					argOK = false
					break
				}
				f, err := p.compile(a, si-1)
				if err != nil {
					return err
				}
				args = append(args, f)
			}
			if !argOK {
				continue
			}
			sp.kind = accessCustom
			sp.custom = ci
			sp.customOp = call.Name
			sp.customArgs = args
			c.used = true
			return nil
		}
	}

	// ALLEN_* operators over a domain index: any index serving INTERSECTS
	// on the referenced (lower, upper) columns evaluates all thirteen
	// relations through the shared generating-region path (§4.5) — the
	// scan runs INTERSECTS over the region derived from the relation, and
	// the executor applies the exact relation as a residual filter. No
	// per-access-method code is involved.
	for _, c := range conjuncts {
		call, ok := c.ex.(*CallExpr)
		if !ok || c.used {
			continue
		}
		r, isAllen := allenRelation(call.Name)
		if !isAllen || len(call.Args) != 4 {
			continue
		}
		for _, ci := range e.customByTb[sp.ref.Name] {
			idxCols := ci.Columns()
			if len(idxCols) != 2 || !ci.HasOperator(opIntersects) {
				continue
			}
			match := true
			for k, col := range idxCols {
				ce, ok := call.Args[k].(*ColumnExpr)
				if !ok || !strings.EqualFold(ce.Column, col) {
					match = false
					break
				}
				if csi, _, err := p.resolve(ce); err != nil || csi != si {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			var args []evalFn
			argOK := true
			for _, a := range call.Args[2:] {
				m, err := p.maxSource(a)
				if err != nil || m >= si {
					argOK = false
					break
				}
				f, err := p.compile(a, si-1)
				if err != nil {
					return err
				}
				args = append(args, f)
			}
			if !argOK {
				continue
			}
			sp.kind = accessAllen
			sp.custom = ci
			sp.customOp = strings.ToLower(call.Name)
			sp.customArgs = args
			sp.allenRel = r
			sp.allenLoPos = sp.tab.Schema().ColIndex(idxCols[0])
			sp.allenHiPos = sp.tab.Schema().ColIndex(idxCols[1])
			c.used = true
			return nil
		}
	}

	// Built-in composite indexes: the longest usable equality prefix, one
	// range column, and — as in Oracle's composite access predicates — an
	// optional start/stop key extension into the following column
	// (Figure 9's left branch scans (node, upper) from (l.min, :lower)).
	type candidate struct {
		ix       *rel.Index
		eqEx     []Expr
		lowEx    []Expr
		hiEx     []Expr
		eqCount  int
		hasRange bool
	}
	// rangeOn collects the best low/high bound expressions on col.
	rangeOn := func(col string) (lowEx, hiEx Expr) {
		for _, c := range conjuncts {
			op, v1, v2, ok := p.sargable(c, si, col)
			if !ok {
				continue
			}
			switch op {
			case ">", ">=":
				if lowEx == nil {
					if op == ">" {
						v1 = &BinaryExpr{Op: "+", L: v1, R: &NumberExpr{Value: 1}}
					}
					lowEx = v1
				}
			case "<", "<=":
				if hiEx == nil {
					if op == "<" {
						v1 = &BinaryExpr{Op: "-", L: v1, R: &NumberExpr{Value: 1}}
					}
					hiEx = v1
				}
			case "between":
				if lowEx == nil {
					lowEx = v1
				}
				if hiEx == nil {
					hiEx = v2
				}
			}
		}
		return lowEx, hiEx
	}
	eqOn := func(col string) Expr {
		for _, c := range conjuncts {
			if op, v1, _, ok := p.sargable(c, si, col); ok && op == "=" {
				return v1
			}
		}
		return nil
	}

	var best *candidate
	for _, ix := range sp.tab.Indexes() {
		cand := &candidate{ix: ix}
		cols := ix.Cols()
		pos := 0
		for ; pos < len(cols); pos++ {
			col := sp.tab.Schema().Columns[cols[pos]]
			if eqEx := eqOn(col); eqEx != nil {
				cand.eqEx = append(cand.eqEx, eqEx)
				cand.eqCount++
				continue
			}
			lowEx, hiEx := rangeOn(col)
			if lowEx == nil && hiEx == nil {
				break
			}
			cand.hasRange = true
			if lowEx != nil {
				cand.lowEx = append(cand.lowEx, lowEx)
			}
			if hiEx != nil {
				cand.hiEx = append(cand.hiEx, hiEx)
			}
			// Key extension into the next column: the start key may grow
			// when this column has a low bound, the stop key when it has a
			// high bound.
			if pos+1 < len(cols) {
				nextCol := sp.tab.Schema().Columns[cols[pos+1]]
				nlow, nhigh := rangeOn(nextCol)
				if nEq := eqOn(nextCol); nEq != nil {
					if nlow == nil {
						nlow = nEq
					}
					if nhigh == nil {
						nhigh = nEq
					}
				}
				if lowEx != nil && nlow != nil {
					cand.lowEx = append(cand.lowEx, nlow)
				}
				if hiEx != nil && nhigh != nil {
					cand.hiEx = append(cand.hiEx, nhigh)
				}
			}
			break
		}
		if cand.eqCount == 0 && !cand.hasRange {
			continue
		}
		// Score: longest equality prefix, then a usable range, then the
		// deepest composite start/stop keys (Figure 9's left branch must
		// pick upperIndex over lowerIndex because its start key extends to
		// (l.min, :lower)).
		better := best == nil ||
			cand.eqCount > best.eqCount ||
			(cand.eqCount == best.eqCount && cand.hasRange && !best.hasRange) ||
			(cand.eqCount == best.eqCount && cand.hasRange == best.hasRange &&
				len(cand.lowEx)+len(cand.hiEx) > len(best.lowEx)+len(best.hiEx))
		if better {
			best = cand
		}
	}
	if best == nil {
		return nil // full table scan
	}
	sp.kind = accessIndexRange
	sp.ix = best.ix
	for _, ex := range best.eqEx {
		f, err := p.compile(ex, si-1)
		if err != nil {
			return err
		}
		sp.eq = append(sp.eq, f)
	}
	for _, ex := range best.lowEx {
		f, err := p.compile(ex, si-1)
		if err != nil {
			return err
		}
		sp.lows = append(sp.lows, f)
	}
	for _, ex := range best.hiEx {
		f, err := p.compile(ex, si-1)
		if err != nil {
			return err
		}
		sp.highs = append(sp.highs, f)
	}
	return nil
}

// sortKeys resolves ORDER BY items against the output columns. Keys may
// be output column names, select aliases, or 1-based ordinals.
func sortKeys(items []OrderItem, cols []string) ([]sortKey, error) {
	var keys []sortKey
	for _, item := range items {
		switch x := item.Expr.(type) {
		case *NumberExpr:
			if x.Value < 1 || int(x.Value) > len(cols) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", x.Value)
			}
			keys = append(keys, sortKey{int(x.Value) - 1, item.Desc})
		case *ColumnExpr:
			found := -1
			for i, c := range cols {
				if strings.EqualFold(c, x.Column) {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("sql: ORDER BY column %q not in the select list", x.Column)
			}
			keys = append(keys, sortKey{found, item.Desc})
		default:
			return nil, fmt.Errorf("sql: ORDER BY supports output columns and ordinals")
		}
	}
	return keys, nil
}

// explain renders the Figure 10-style execution plan of a SELECT,
// including the streaming pipeline's explicit sinks (SORT, DISTINCT,
// LIMIT) above the per-block join trees.
func (e *Engine) explain(s *SelectStmt, binds map[string]interface{}) (string, error) {
	var sb strings.Builder
	sb.WriteString("SELECT STATEMENT\n")
	indent := 1
	switch {
	case s.Limit != nil && len(s.OrderBy) > 0:
		// ORDER BY + LIMIT k execute as one fused top-k heap sink.
		n, err := evalConst(s.Limit, binds)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%sSORT TOP-K %d\n", strings.Repeat("  ", indent), n)
		indent++
	case s.Limit != nil:
		n, err := evalConst(s.Limit, binds)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%sLIMIT %d\n", strings.Repeat("  ", indent), n)
		indent++
	case len(s.OrderBy) > 0:
		sb.WriteString(strings.Repeat("  ", indent) + "SORT ORDER BY\n")
		indent++
	}
	if s.Union != nil {
		sb.WriteString(strings.Repeat("  ", indent) + "UNION-ALL\n")
		indent++
	}
	for blk := s; blk != nil; blk = blk.Union {
		bi := indent
		if blk.Distinct {
			sb.WriteString(strings.Repeat("  ", bi) + "DISTINCT\n")
			bi++
		}
		if len(blk.GroupBy) > 0 || isAggregate(blk) {
			// Grouped and aggregating blocks plan their FROM/WHERE as a
			// SELECT * input under the aggregation sink, exactly as
			// execution does.
			plan, err := e.planSelect(&SelectStmt{
				Items: []SelectItem{{Star: true}},
				From:  blk.From,
				Where: blk.Where,
			}, binds)
			if err != nil {
				return "", err
			}
			sink := "AGGREGATE"
			if len(blk.GroupBy) > 0 {
				sink = "HASH GROUP BY"
			}
			sb.WriteString(strings.Repeat("  ", bi) + sink + "\n")
			printJoin(&sb, plan, bi+1)
			continue
		}
		plan, err := e.planSelect(blk, binds)
		if err != nil {
			return "", err
		}
		printJoin(&sb, plan, bi)
	}
	return sb.String(), nil
}

// printJoin renders a block's join tree: the interval merge join with its
// two ordered feeds, or the left-deep nested-loop tree NL(NL(s0,s1),s2).
func printJoin(sb *strings.Builder, p *selectPlan, indent int) {
	if p.merge != nil {
		fmt.Fprintf(sb, "%sINTERVAL MERGE JOIN (%s)\n", strings.Repeat("  ", indent), p.merge.opName)
		pad := strings.Repeat("  ", indent+1)
		sb.WriteString(pad + mergeFeedLine(p.sources[p.merge.left]) + "\n")
		sb.WriteString(pad + mergeFeedLine(p.sources[p.merge.right]) + "\n")
		return
	}
	printNested(sb, p.sources, indent)
}

// printNested renders the left-deep nested-loop tree NL(NL(s0,s1),s2)...
func printNested(sb *strings.Builder, sources []*srcPlan, indent int) {
	pad := strings.Repeat("  ", indent)
	if len(sources) == 1 {
		sb.WriteString(pad + accessLine(sources[0]) + "\n")
		return
	}
	sb.WriteString(pad + "NESTED LOOPS\n")
	printNested(sb, sources[:len(sources)-1], indent+1)
	sb.WriteString(strings.Repeat("  ", indent+1) + accessLine(sources[len(sources)-1]) + "\n")
}

// mergeFeedLine names one merge-join feed: a zero-sort ordered stream off
// a start-sorted domain index, or an explicit sort over the source's
// ordinary access path.
func mergeFeedLine(sp *srcPlan) string {
	if sp.mjOrderedIx != nil {
		return fmt.Sprintf("ORDERED DOMAIN INDEX SCAN %s (LOWER)", strings.ToUpper(sp.mjOrderedIx.Name()))
	}
	return "SORT BY LOWER (" + accessLine(sp) + ")"
}

// evalConst evaluates an expression that may reference only literals and
// bind variables (INSERT value lists).
func evalConst(ex Expr, binds map[string]interface{}) (int64, error) {
	switch x := ex.(type) {
	case *NumberExpr:
		return x.Value, nil
	case *BindExpr:
		return bindScalar(binds, x.Name)
	case *UnaryExpr:
		v, err := evalConst(x.X, binds)
		if err != nil {
			return 0, err
		}
		if x.Op == "-" {
			return -v, nil
		}
		return b2i(v == 0), nil
	case *BinaryExpr:
		l, err := evalConst(x.L, binds)
		if err != nil {
			return 0, err
		}
		r, err := evalConst(x.R, binds)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, sqlRuntimeError{"division by zero"}
			}
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("sql: expression not constant (columns are not allowed here)")
}

func accessLine(sp *srcPlan) string {
	switch sp.kind {
	case accessCollection:
		return "COLLECTION ITERATOR :" + strings.ToUpper(sp.ref.Collection)
	case accessIndexRange:
		return "INDEX RANGE SCAN " + strings.ToUpper(sp.ix.Name())
	case accessCustom:
		return fmt.Sprintf("DOMAIN INDEX %s (%s)", strings.ToUpper(sp.custom.Name()), strings.ToUpper(sp.customOp))
	case accessAllen:
		return fmt.Sprintf("DOMAIN INDEX %s (%s VIA INTERSECTS REGION + RESIDUAL)",
			strings.ToUpper(sp.custom.Name()), strings.ToUpper(sp.customOp))
	default:
		return "TABLE ACCESS FULL " + strings.ToUpper(sp.ref.Name)
	}
}
