package sqldb

import (
	"strings"
	"testing"
)

func planCacheEngine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (k int, v int)", nil)
	mustExec(t, e, "CREATE INDEX tk ON t (k)", nil)
	for i := 0; i < 50; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:k, :v)",
			map[string]interface{}{"k": i % 10, "v": i})
	}
	return e
}

func TestPlanCacheHitMiss(t *testing.T) {
	e := planCacheEngine(t)
	h0, m0, _, _ := e.PlanCacheStats()

	q := "SELECT v FROM t WHERE k = :k"
	r1 := mustExec(t, e, q, map[string]interface{}{"k": 3})
	h1, m1, _, n1 := e.PlanCacheStats()
	if h1 != h0 || m1 != m0+1 || n1 == 0 {
		t.Fatalf("after first run: hits %d->%d misses %d->%d entries %d", h0, h1, m0, m1, n1)
	}

	// Same text, different bind: must hit and still honor the new bind.
	r2 := mustExec(t, e, q, map[string]interface{}{"k": 7})
	h2, m2, _, _ := e.PlanCacheStats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("after second run: hits %d->%d misses %d->%d", h1, h2, m1, m2)
	}
	if len(r1.Rows) != 5 || len(r2.Rows) != 5 {
		t.Fatalf("row counts: %d, %d", len(r1.Rows), len(r2.Rows))
	}
	for _, row := range r2.Rows {
		if row[0]%10 != 7 {
			t.Fatalf("cached plan ignored new bind: v=%d", row[0])
		}
	}
}

func TestPlanCacheDDLInvalidation(t *testing.T) {
	e := planCacheEngine(t)
	q := "SELECT v FROM t WHERE k = 1"
	mustExec(t, e, q, nil)
	if _, _, _, n := e.PlanCacheStats(); n == 0 {
		t.Fatal("no entry cached")
	}
	mustExec(t, e, "CREATE TABLE u (a int)", nil)
	if _, _, _, n := e.PlanCacheStats(); n != 0 {
		t.Fatalf("DDL did not purge the cache: %d entries", n)
	}
	// Replan after the purge counts as a fresh miss and still answers.
	_, m0, _, _ := e.PlanCacheStats()
	r := mustExec(t, e, q, nil)
	if _, m1, _, _ := e.PlanCacheStats(); m1 != m0+1 {
		t.Fatalf("misses %d->%d", m0, m1)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows after replan: %d", len(r.Rows))
	}
}

func TestPlanCacheDisableAndResize(t *testing.T) {
	e := planCacheEngine(t)
	e.SetPlanCacheSize(0)
	mustExec(t, e, "SELECT v FROM t WHERE k = 1", nil)
	mustExec(t, e, "SELECT v FROM t WHERE k = 1", nil)
	h, m, _, n := e.PlanCacheStats()
	if h != 0 || m != 0 || n != 0 {
		t.Fatalf("disabled cache still active: hits=%d misses=%d entries=%d", h, m, n)
	}

	// Cap of 2: three distinct statements evict the oldest.
	e.SetPlanCacheSize(2)
	mustExec(t, e, "SELECT v FROM t WHERE k = 1", nil)
	mustExec(t, e, "SELECT v FROM t WHERE k = 2", nil)
	mustExec(t, e, "SELECT v FROM t WHERE k = 3", nil)
	_, _, ev, n := e.PlanCacheStats()
	if n != 2 || ev != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", n, ev)
	}
	// The evicted (oldest) statement misses again.
	_, m0, _, _ := e.PlanCacheStats()
	mustExec(t, e, "SELECT v FROM t WHERE k = 1", nil)
	if _, m1, _, _ := e.PlanCacheStats(); m1 != m0+1 {
		t.Fatalf("evicted entry did not miss: misses %d->%d", m0, m1)
	}
}

func TestPlanCacheIneligibleStatements(t *testing.T) {
	e := planCacheEngine(t)
	h0, m0, _, n0 := e.PlanCacheStats()
	// Aggregates and GROUP BY are not cacheable and must not touch the
	// counters either.
	mustExec(t, e, "SELECT count(*) FROM t", nil)
	mustExec(t, e, "SELECT k, count(*) FROM t GROUP BY k", nil)
	h1, m1, _, n1 := e.PlanCacheStats()
	if h1 != h0 || m1 != m0 || n1 != n0 {
		t.Fatalf("ineligible statements moved cache stats: %d/%d/%d -> %d/%d/%d",
			h0, m0, n0, h1, m1, n1)
	}
}

func TestPlanCacheExplainAnalyzeAnnotation(t *testing.T) {
	e := planCacheEngine(t)
	q := "EXPLAIN ANALYZE SELECT v FROM t WHERE k = 2"
	r1 := mustExec(t, e, q, nil)
	if strings.Contains(r1.Plan, "(cached plan)") {
		t.Fatalf("first run claims cached plan:\n%s", r1.Plan)
	}
	r2 := mustExec(t, e, q, nil)
	if !strings.Contains(r2.Plan, "SELECT STATEMENT (ANALYZED) (cached plan)") {
		t.Fatalf("second run missing cached-plan annotation:\n%s", r2.Plan)
	}
}

func TestPlanCacheJoinAndUnion(t *testing.T) {
	e := planCacheEngine(t)
	mustExec(t, e, "CREATE TABLE s (k int, w int)", nil)
	for i := 0; i < 10; i++ {
		mustExec(t, e, "INSERT INTO s VALUES (:k, :w)",
			map[string]interface{}{"k": i, "w": i * 100})
	}
	join := "SELECT t.v, s.w FROM t, s WHERE t.k = s.k AND s.k = :k"
	r1 := mustExec(t, e, join, map[string]interface{}{"k": 4})
	r2 := mustExec(t, e, join, map[string]interface{}{"k": 4})
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("join rows differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	union := "SELECT v FROM t WHERE k = :a UNION ALL SELECT v FROM t WHERE k = :b"
	binds := map[string]interface{}{"a": 1, "b": 2}
	u1 := mustExec(t, e, union, binds)
	u2 := mustExec(t, e, union, binds)
	if len(u1.Rows) != 10 || len(u2.Rows) != 10 {
		t.Fatalf("union rows: %d, %d (want 10)", len(u1.Rows), len(u2.Rows))
	}
}

func TestPlanCacheMissingBindOnHit(t *testing.T) {
	e := planCacheEngine(t)
	q := "SELECT v FROM t WHERE k = :k"
	mustExec(t, e, q, map[string]interface{}{"k": 1})
	// A cached plan instantiated without its bind must still error.
	if _, err := e.Exec(q, nil); err == nil {
		t.Fatal("missing bind on cache hit did not error")
	}
}
