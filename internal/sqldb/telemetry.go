package sqldb

import (
	"strings"
	"sync"
	"time"

	"ritree/internal/obs"
)

// Statement-level telemetry: every executed statement records a latency
// observation into the engine's metrics registry (keyed by statement
// kind) and, when it ran longer than the configured threshold, a full
// trace — SQL text, bind count, duration, cursor counters, and the
// executed operator tree — into a bounded ring buffer drained by
// SlowQueries. The registry also accumulates the cursor work counters
// ("sql.leaf_rows", ...), which is what lets a bench run assert that the
// registry agrees with Rows.Stats().

// MetricsBinder is the observability capability of a custom index
// (alongside Attacher and StorageDropper): an index implementing it is
// handed the DB-level registry when one is configured, so its internal
// counters (shard fan-outs, partition skips, node visits) surface in the
// same Snapshot as the SQL and pagestore families. prefix is
// "index.<name>" — implementations should publish under "<prefix>.<metric>".
type MetricsBinder interface {
	BindMetrics(reg *obs.Registry, prefix string)
}

// SlowQuery is one captured slow statement.
type SlowQuery struct {
	// SQL is the statement text as submitted.
	SQL string
	// Binds is the number of bind variables supplied.
	Binds int
	// Duration is the statement's wall time (for cursors: Query to Close).
	Duration time.Duration
	// Stats are the cursor work counters (zero for DDL/DML).
	Stats ExecStats
	// Plan is the executed operator tree (zero Label when the statement
	// produced no cursor).
	Plan PlanNodeStats
	// When is the capture time.
	When time.Time
}

// slowRingCap bounds the slow-query ring; older entries are overwritten.
const slowRingCap = 64

// telemetry is the engine's slow-query ring. It has its own mutex (not
// e.mu) because cursor-close observation may need to run while a future
// caller already waits on the statement lock.
type telemetry struct {
	mu        sync.Mutex
	threshold time.Duration // <= 0: capture disabled
	ring      []SlowQuery
	start     int // index of the oldest entry once the ring is full
}

func (t *telemetry) setThreshold(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threshold = d
}

func (t *telemetry) getThreshold() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.threshold
}

// maybeCapture records sq if it crossed the threshold.
func (t *telemetry) maybeCapture(sq SlowQuery) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.threshold <= 0 || sq.Duration < t.threshold {
		return
	}
	if len(t.ring) < slowRingCap {
		t.ring = append(t.ring, sq)
		return
	}
	t.ring[t.start] = sq
	t.start = (t.start + 1) % slowRingCap
}

// drain returns the captured slow queries oldest-first and clears the ring.
func (t *telemetry) drain() []SlowQuery {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return nil
	}
	out := make([]SlowQuery, 0, len(t.ring))
	out = append(out, t.ring[t.start:]...)
	out = append(out, t.ring[:t.start]...)
	t.ring, t.start = nil, 0
	return out
}

// sqlMetrics holds resolved registry handles for the per-statement
// counter families, built once in SetMetricsRegistry. Observation then
// costs a handful of uncontended atomic adds — no name concatenation,
// no registry map lookups on the per-statement path.
type sqlMetrics struct {
	reg                                                        *obs.Registry
	leafRows, rowsOut, indexProbes, joinRebinds, residualDrops *obs.Counter
	spillRows, groupedRows                                     *obs.Counter
	joinMerge, joinNested                                      *obs.Counter
	sweepPairs, sweepSortRows                                  *obs.Counter
	joinLatency, sweepActivePeak                               *obs.Histogram
	planHits, planMisses, planEvictions                        *obs.Counter
	viewsPinned, viewsReleased                                 *obs.Counter
	viewsActive                                                *obs.Gauge
	stmt                                                       map[string]*obs.Counter
	latency                                                    map[string]*obs.Histogram
}

// stmtKinds enumerates every value stmtKind can return, so the handle
// maps are complete at build time.
var stmtKinds = []string{"select", "insert", "delete", "explain", "txn", "ddl"}

func newSQLMetrics(reg *obs.Registry) *sqlMetrics {
	m := &sqlMetrics{
		reg:           reg,
		leafRows:      reg.Counter("sql.leaf_rows"),
		rowsOut:       reg.Counter("sql.rows_out"),
		indexProbes:   reg.Counter("sql.index_probes"),
		joinRebinds:   reg.Counter("sql.join_rebinds"),
		residualDrops: reg.Counter("sql.residual_drops"),
		spillRows:     reg.Counter("sql.spill_rows"),
		groupedRows:   reg.Counter("sql.grouped_rows"),
		joinMerge:     reg.Counter("sql.join.merge"),
		joinNested:    reg.Counter("sql.join.nested_loops"),
		sweepPairs:    reg.Counter("sql.join_sweep.pairs"),
		sweepSortRows: reg.Counter("sql.join_sweep.sort_rows"),
		joinLatency:   reg.Histogram("sql.latency.join"),
		// active_peak is a histogram, not a counter: each joining cursor
		// contributes one sample, so the distribution of working-set
		// high-water marks across queries stays visible.
		sweepActivePeak: reg.Histogram("sql.join_sweep.active_peak"),
		planHits:        reg.Counter("sql.plancache.hits"),
		planMisses:      reg.Counter("sql.plancache.misses"),
		planEvictions:   reg.Counter("sql.plancache.evictions"),
		// Snapshot-view lifecycle: active is the leak detector — every
		// pinned view must eventually be released, so a drained engine
		// (no cursors, no transaction, cache invalidated) reads 0 or 1
		// (the cached current view).
		viewsPinned:   reg.Counter("sql.views.pinned"),
		viewsReleased: reg.Counter("sql.views.released"),
		viewsActive:   reg.Gauge("sql.views.active"),
		stmt:          make(map[string]*obs.Counter, len(stmtKinds)),
		latency:       make(map[string]*obs.Histogram, len(stmtKinds)),
	}
	for _, k := range stmtKinds {
		m.stmt[k] = reg.Counter("sql.stmt." + k)
		m.latency[k] = reg.Histogram("sql.latency." + k)
	}
	return m
}

// observe records one statement's latency and cursor work counters.
func (m *sqlMetrics) observe(kind string, d time.Duration, st ExecStats) {
	h, ok := m.latency[kind]
	if !ok { // unknown kind: fall back to a registry lookup
		h = m.reg.Histogram("sql.latency." + kind)
	}
	h.Record(d.Nanoseconds())
	c, ok := m.stmt[kind]
	if !ok {
		c = m.reg.Counter("sql.stmt." + kind)
	}
	c.Inc()
	m.leafRows.Add(st.LeafRows)
	m.rowsOut.Add(st.RowsOut)
	m.indexProbes.Add(st.IndexProbes)
	m.joinRebinds.Add(st.JoinRebinds)
	m.residualDrops.Add(st.ResidualDrops)
	m.spillRows.Add(st.SpillRows)
	m.groupedRows.Add(st.GroupedRows)
	m.sweepPairs.Add(st.SweepPairs)
	m.sweepSortRows.Add(st.SweepSortRows)
	// Joining cursors additionally feed the per-strategy counters and the
	// join-latency histogram (ROADMAP: per-kind join latency).
	switch st.JoinStrategy {
	case "merge":
		m.joinMerge.Inc()
	case "nested_loops":
		m.joinNested.Inc()
	default:
		return
	}
	m.joinLatency.Record(d.Nanoseconds())
	if st.SweepActivePeak > 0 {
		m.sweepActivePeak.Record(st.SweepActivePeak)
	}
}

// SetMetricsRegistry configures the registry statement telemetry and
// layer metric families publish into, and offers it to every attached
// custom index that implements MetricsBinder. It must be set before
// AttachCatalogIndexes for reopened indexes to bind (indexes attached
// later bind at attach time).
func (e *Engine) SetMetricsRegistry(reg *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = reg
	if reg == nil {
		e.sqlMet.Store(nil)
		return
	}
	e.sqlMet.Store(newSQLMetrics(reg))
	for _, ci := range e.custom {
		if mb, ok := ci.(MetricsBinder); ok {
			mb.BindMetrics(reg, "index."+strings.ToLower(ci.Name()))
		}
	}
}

// MetricsRegistry returns the configured registry (nil when none).
func (e *Engine) MetricsRegistry() *obs.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg
}

// SetSlowQueryThreshold enables slow-query capture for statements running
// at least d (0 disables).
func (e *Engine) SetSlowQueryThreshold(d time.Duration) { e.tel.setThreshold(d) }

// SlowQueryThreshold returns the current slow-query threshold.
func (e *Engine) SlowQueryThreshold() time.Duration { return e.tel.getThreshold() }

// SlowQueries drains the slow-query ring, oldest first.
func (e *Engine) SlowQueries() []SlowQuery { return e.tel.drain() }

// stmtKind buckets a statement for the per-kind latency histograms.
func stmtKind(st Statement) string {
	switch st.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *DeleteStmt:
		return "delete"
	case *ExplainStmt:
		return "explain"
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return "txn"
	default:
		return "ddl"
	}
}

// observeStmt records one finished statement: kind-keyed latency, the
// cursor work counters, and (over threshold) a slow-query trace. It runs
// without e.mu for cursors (the close hook fires on the reader's
// goroutine now that cursors don't hold the statement lock), which is why
// sqlMet is an atomic pointer and the telemetry ring has its own mutex.
// plan is a thunk (nil for plan-less statements): the per-operator tree
// is snapshotted only when the statement actually crossed the slow-query
// threshold, keeping the always-on path free of that allocation.
func (e *Engine) observeStmt(sql, kind string, nbinds int, d time.Duration, st ExecStats, plan func() PlanNodeStats) {
	if m := e.sqlMet.Load(); m != nil {
		m.observe(kind, d, st)
	}
	if th := e.tel.getThreshold(); th <= 0 || d < th {
		return
	}
	var ps PlanNodeStats
	if plan != nil {
		ps = plan()
	}
	e.tel.maybeCapture(SlowQuery{
		SQL:      sql,
		Binds:    nbinds,
		Duration: d,
		Stats:    st,
		Plan:     ps,
		When:     time.Now(),
	})
}
