package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"ritree/internal/rel"
)

// Collections: the engine half of the unified access-method API.
//
// A collection is a named interval relation with a pluggable access
// method — exactly the shape of paper §5: a base table holding the user's
// (lower, upper, id) rows, plus one domain index served by a registered
// indextype (ritree, hint, hint_sharded, or anything an embedder
// registers). The convention is purely catalog-level: the base table is
// named after the collection and its domain index is named
// CollectionIndexName(name), so the PR-2 persistent CustomIndexDef
// machinery makes collections survive close-and-reopen with no extra
// catalog format — AttachCatalogIndexes rebuilds or reopens every
// collection's access method exactly like any other domain index.
//
// SQL surface: CREATE COLLECTION name [USING method] and
// DROP COLLECTION name; the collection is then an ordinary table for
// SELECT/INSERT/DELETE, with INTERSECTS and CONTAINS_POINT served by its
// access method. The programmatic surface (InsertRow, DeleteRowID,
// BulkInsert, CustomIndexByName) is what the root ritree package's
// Collection handle drives.

// CollectionColumns is the fixed schema of a collection's base relation.
var CollectionColumns = []string{"lower", "upper", "id"}

// collectionIndexSuffix marks a domain index as the access method of a
// collection. '$' keeps the name out of the SQL identifier space, so
// plain CREATE INDEX cannot collide with it.
const collectionIndexSuffix = "$am"

// CollectionIndexName returns the conventional name of the domain index
// serving the named collection.
func CollectionIndexName(name string) string {
	return strings.ToLower(name) + collectionIndexSuffix
}

// CollectionInfo describes one collection: its name and the indextype
// serving it.
type CollectionInfo struct {
	Name   string
	Method string
}

// DefaultAccessMethod is the indextype used when CREATE COLLECTION names
// none — the paper's own access method.
const DefaultAccessMethod = "ritree"

// IndexTypes returns the names of every registered indextype, sorted —
// the access-method registry behind CREATE COLLECTION ... USING.
func (e *Engine) IndexTypes() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.indexTypes))
	for n := range e.indexTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CustomIndexByName returns the attached custom index with the given name
// (case-insensitively), if any.
func (e *Engine) CustomIndexByName(name string) (CustomIndex, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ci, ok := e.custom[strings.ToLower(name)]
	return ci, ok
}

// CreateCollection creates the named interval collection served by the
// given access method (indextype name; empty means DefaultAccessMethod).
// params carries per-collection access-method options (the SQL WITH
// clause); they are validated by the indextype and persisted in the
// catalog, so a reopened database re-attaches the collection with the
// same configuration.
func (e *Engine) CreateCollection(name, method string, params map[string]string) error {
	e.mu.Lock()
	if e.txn != nil {
		e.mu.Unlock()
		return errTxnOpen
	}
	err := e.createCollectionLocked(name, method, params)
	seq, cerr := e.commitWriteLocked()
	e.mu.Unlock()
	return firstErr(err, cerr, e.db.Store().WaitDurable(seq))
}

func (e *Engine) createCollectionLocked(name, method string, params map[string]string) error {
	name = strings.ToLower(name)
	if method == "" {
		method = DefaultAccessMethod
	}
	method = strings.ToLower(method)
	if _, ok := e.indexTypes[method]; !ok {
		known := make([]string, 0, len(e.indexTypes))
		for n := range e.indexTypes {
			known = append(known, n)
		}
		sort.Strings(known)
		return fmt.Errorf("sql: unknown access method %q (registered: %s)", method, strings.Join(known, ", "))
	}
	if _, err := e.db.CreateTable(name, CollectionColumns); err != nil {
		return err
	}
	_, err := e.createCustomIndex(&CreateIndexStmt{
		Name:      CollectionIndexName(name),
		Table:     name,
		Columns:   []string{"lower", "upper"},
		IndexType: method,
		Params:    params,
	})
	if err != nil {
		_ = e.db.DropTable(name)
		return err
	}
	return nil
}

// DropCollection removes the named collection: its base table and, by the
// DROP TABLE cascade, its access-method index and storage.
func (e *Engine) DropCollection(name string) error {
	e.mu.Lock()
	if e.txn != nil {
		e.mu.Unlock()
		return errTxnOpen
	}
	err := e.dropCollectionLocked(name)
	seq, cerr := e.commitWriteLocked()
	e.mu.Unlock()
	return firstErr(err, cerr, e.db.Store().WaitDurable(seq))
}

func (e *Engine) dropCollectionLocked(name string) error {
	if _, ok := e.collectionDef(name); !ok {
		return fmt.Errorf("sql: no collection %q (DROP TABLE removes plain tables)", name)
	}
	return e.dropTableCascadeLocked(strings.ToLower(name))
}

// collectionDef returns the catalog definition of the named collection's
// access-method index, if the name denotes a collection.
func (e *Engine) collectionDef(name string) (rel.CustomIndexDef, bool) {
	def, ok := e.db.CustomIndex(CollectionIndexName(name))
	if !ok || !strings.EqualFold(def.Table, name) {
		return rel.CustomIndexDef{}, false
	}
	return def, true
}

// Collections lists every collection recorded in the catalog, sorted by
// name. On a reopened database this reflects the persisted definitions
// whether or not they have been attached yet.
func (e *Engine) Collections() []CollectionInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	var infos []CollectionInfo
	for _, def := range e.db.CustomIndexes() {
		if strings.EqualFold(def.Name, CollectionIndexName(def.Table)) {
			infos = append(infos, CollectionInfo{Name: strings.ToLower(def.Table), Method: def.IndexType})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// CollectionMethod returns the access method serving the named collection.
func (e *Engine) CollectionMethod(name string) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	def, ok := e.collectionDef(name)
	if !ok {
		return "", false
	}
	return def.IndexType, true
}

// --- programmatic DML with domain-index maintenance ----------------------

// firstErr returns the first non-nil error: operation error, then commit
// error, then durability-wait error — the precedence every auto-commit
// write path uses.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// InsertRow stores row in table with full domain-index maintenance — the
// programmatic equivalent of INSERT INTO, minus the SQL parse. This is
// the write path of the unified collection API. It always auto-commits,
// even while a SQL transaction is open — programmatic writers are exactly
// the concurrent writers the transaction's first-committer-wins
// validation detects.
func (e *Engine) InsertRow(table string, row []int64) (rel.RowID, error) {
	e.mu.Lock()
	tab, err := e.db.Table(table)
	if err != nil {
		e.mu.Unlock()
		return 0, err
	}
	rid, err := e.insertRowLocked(table, tab, row)
	seq, cerr := e.commitWriteLocked()
	e.mu.Unlock()
	return rid, firstErr(err, cerr, e.db.Store().WaitDurable(seq))
}

// DeleteRowID removes the row at rid from table with full domain-index
// maintenance. Auto-commits like InsertRow.
func (e *Engine) DeleteRowID(table string, rid rel.RowID) error {
	e.mu.Lock()
	tab, err := e.db.Table(table)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	row, err := tab.GetRaw(rid)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	err = e.deleteRowLocked(table, tab, rid, row)
	seq, cerr := e.commitWriteLocked()
	e.mu.Unlock()
	return firstErr(err, cerr, e.db.Store().WaitDurable(seq))
}

// BulkMaintainer is an optional CustomIndex capability: refresh the index
// after a bulk append to the base table in one pass, instead of paying
// the incremental OnInsert per row. rows and rids are parallel slices of
// the appended rows and their heap row ids.
type BulkMaintainer interface {
	OnBulkInsert(rows [][]int64, rids []rel.RowID) error
}

// BulkInsert appends rows to table, then maintains each domain index —
// through its BulkMaintainer capability when it has one, row by row
// otherwise. This is the collection BulkLoad fast path. Like the
// single-row paths, a refused batch must not leave the heap and the
// domain indexes divergent: on any failure the maintenance already
// performed and the appended heap rows are undone before the error
// surfaces (a half-loaded collection on a file-backed database would
// otherwise refuse every later attach).
func (e *Engine) BulkInsert(table string, rows [][]int64) ([]rel.RowID, error) {
	e.mu.Lock()
	rids, err := e.bulkInsertLocked(table, rows)
	seq, cerr := e.commitWriteLocked()
	e.mu.Unlock()
	return rids, firstErr(err, cerr, e.db.Store().WaitDurable(seq))
}

func (e *Engine) bulkInsertLocked(table string, rows [][]int64) ([]rel.RowID, error) {
	tab, err := e.db.Table(table)
	if err != nil {
		return nil, err
	}
	rids := make([]rel.RowID, 0, len(rows))
	undoHeap := func() error {
		var first error
		for _, rid := range rids {
			if _, err := tab.DeleteRow(rid); err != nil && first == nil {
				first = fmt.Errorf("heap rollback failed: %w", err)
			}
		}
		return first
	}
	for i, row := range rows {
		rid, err := tab.Insert(row)
		if err != nil {
			return nil, withUndo(fmt.Errorf("sql: bulk insert into %s failed at row %d of %d: %w", table, i, len(rows), err), undoHeap())
		}
		rids = append(rids, rid)
	}
	// undoIndex removes the batch from one index again; domain indexes
	// tolerate deletes of entries they never held, so this is safe even
	// when the failing index applied only part of the batch.
	undoIndex := func(ci CustomIndex) error {
		var first error
		for i := len(rids) - 1; i >= 0; i-- {
			if err := ci.OnDelete(rows[i], rids[i]); err != nil && first == nil {
				first = fmt.Errorf("restore of index %s failed: %w", ci.Name(), err)
			}
		}
		return first
	}
	customs := e.customByTb[strings.ToLower(table)]
	for n, ci := range customs {
		var merr error
		if bm, ok := ci.(BulkMaintainer); ok {
			merr = bm.OnBulkInsert(rows, rids)
		} else {
			for i := range rows {
				if merr = ci.OnInsert(rows[i], rids[i]); merr != nil {
					break
				}
			}
		}
		if merr != nil {
			undoErr := undoIndex(ci)
			for j := n - 1; j >= 0; j-- {
				if err := undoIndex(customs[j]); err != nil && undoErr == nil {
					undoErr = err
				}
			}
			if err := undoHeap(); err != nil && undoErr == nil {
				undoErr = err
			}
			return nil, withUndo(fmt.Errorf("sql: bulk maintenance of index %s: %w", ci.Name(), merr), undoErr)
		}
	}
	return rids, nil
}

// NowKeeper is an optional CustomIndex capability: access methods that
// implement the paper's §4.6 now-relative intervals (the RI-tree) expose
// their evaluation clock through it. Collections route SetNow through the
// capability and reject now-relative rows on access methods without it.
type NowKeeper interface {
	SetNow(now int64)
	Now() int64
}

// OperatorCounter is an optional CustomIndex capability: count the rows
// matching an operator without streaming them through a callback. Access
// methods with an internally parallel counting path (the sharded HINT
// fans one goroutine per shard) implement it so collection-level counts
// get the multi-core speedup a sequential streaming scan cannot.
type OperatorCounter interface {
	ScanCount(op string, args []int64) (int64, error)
}
