package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ritree/internal/rel"
)

// fakeIndex is a trivial in-memory custom index for exercising the
// engine-side indextype machinery without the real access methods.
type fakeIndex struct {
	name, table string
	cols        []string
	attached    bool // true when built via the Attach path
	dropErr     error
	dropped     bool
	inserts     int
}

func (f *fakeIndex) Name() string                                     { return f.name }
func (f *fakeIndex) Table() string                                    { return f.table }
func (f *fakeIndex) Columns() []string                                { return f.cols }
func (f *fakeIndex) HasOperator(op string) bool                       { return op == "fakeop" }
func (f *fakeIndex) OnInsert(_ []int64, _ rel.RowID) error            { f.inserts++; return nil }
func (f *fakeIndex) OnDelete(_ []int64, _ rel.RowID) error            { return nil }
func (f *fakeIndex) Scan(string, []int64, func(rel.RowID) bool) error { return nil }
func (f *fakeIndex) Drop() error {
	if f.dropErr != nil {
		return f.dropErr
	}
	f.dropped = true
	return nil
}

func registerFake(e *Engine, last **fakeIndex, dropErr error) {
	build := func(attached bool) IndexTypeFunc {
		return func(_ *Engine, name, table string, cols []string, _ map[string]string) (CustomIndex, error) {
			fi := &fakeIndex{name: name, table: table, cols: cols, attached: attached, dropErr: dropErr}
			if last != nil {
				*last = fi
			}
			return fi, nil
		}
	}
	e.RegisterIndexType("fake", IndexTypeFuncs{Create: build(false), Attach: build(true)})
}

func TestCreateCustomIndexRecordsCatalogDef(t *testing.T) {
	e := newEngine(t)
	registerFake(e, nil, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)

	def, ok := e.DB().CustomIndex("ev_f")
	if !ok {
		t.Fatal("CREATE INDEX ... INDEXTYPE did not record a catalog definition")
	}
	if def.IndexType != "fake" || def.Table != "ev" || len(def.Columns) != 2 {
		t.Fatalf("def = %+v", def)
	}
	mustExec(t, e, "DROP INDEX ev_f", nil)
	if _, ok := e.DB().CustomIndex("ev_f"); ok {
		t.Fatal("DROP INDEX left the catalog definition behind")
	}
}

func TestIndexNamespaceSharedAcrossKinds(t *testing.T) {
	e := newEngine(t)
	registerFake(e, nil, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)

	// custom first, builtin second
	mustExec(t, e, "CREATE INDEX x ON ev (lo, hi) INDEXTYPE IS fake", nil)
	if _, err := e.Exec("CREATE INDEX x ON ev (lo)", nil); !errors.Is(err, rel.ErrExists) {
		t.Fatalf("builtin over custom name = %v, want ErrExists", err)
	}
	// builtin first, custom second
	mustExec(t, e, "CREATE INDEX y ON ev (lo)", nil)
	if _, err := e.Exec("CREATE INDEX y ON ev (lo, hi) INDEXTYPE IS fake", nil); !errors.Is(err, rel.ErrExists) {
		t.Fatalf("custom over builtin name = %v, want ErrExists", err)
	}
	// the failed duplicate must not have left a dangling definition
	if _, ok := e.DB().CustomIndex("y"); ok {
		t.Fatal("failed CREATE INDEX recorded a definition")
	}
}

func TestDropCustomIndexFailureKeepsRegistration(t *testing.T) {
	e := newEngine(t)
	var last *fakeIndex
	registerFake(e, &last, fmt.Errorf("storage busy"))
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)

	if _, err := e.Exec("DROP INDEX ev_f", nil); err == nil || !strings.Contains(err.Error(), "remains attached") {
		t.Fatalf("DROP INDEX with failing Drop = %v, want 'remains attached' error", err)
	}
	// Index must still be attached (maintenance keeps running)...
	before := last.inserts
	mustExec(t, e, "INSERT INTO ev VALUES (1, 2)", nil)
	if last.inserts != before+1 {
		t.Fatal("failed DROP INDEX detached the index: maintenance skipped")
	}
	// ...and its catalog definition intact, so a retry is possible.
	if _, ok := e.DB().CustomIndex("ev_f"); !ok {
		t.Fatal("failed DROP INDEX removed the catalog definition")
	}
	last.dropErr = nil
	mustExec(t, e, "DROP INDEX ev_f", nil)
	if !last.dropped {
		t.Fatal("retried DROP INDEX did not drop storage")
	}
	if _, ok := e.DB().CustomIndex("ev_f"); ok {
		t.Fatal("retried DROP INDEX left the catalog definition")
	}
}

func TestAttachCatalogIndexes(t *testing.T) {
	e := newEngine(t)
	var created *fakeIndex
	registerFake(e, &created, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)

	// A second session over the same database: nothing attached until
	// AttachCatalogIndexes walks the catalog.
	e2 := NewEngine(e.DB())
	var attached *fakeIndex
	registerFake(e2, &attached, nil)
	if err := e2.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	if attached == nil || !attached.attached {
		t.Fatalf("AttachCatalogIndexes did not use the Attach path: %+v", attached)
	}
	// Maintenance runs on the re-attached index.
	mustExec(t, e2, "INSERT INTO ev VALUES (3, 4)", nil)
	if attached.inserts != 1 {
		t.Fatalf("re-attached index saw %d inserts, want 1", attached.inserts)
	}
	// Idempotent: a second walk attaches nothing new.
	attached = nil
	if err := e2.AttachCatalogIndexes(); err != nil {
		t.Fatal(err)
	}
	if attached != nil {
		t.Fatal("second AttachCatalogIndexes re-attached an already-attached index")
	}
}

func TestAttachCatalogIndexesUnregisteredTypeFailsLoudly(t *testing.T) {
	e := newEngine(t)
	registerFake(e, nil, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)

	e2 := NewEngine(e.DB()) // session without the indextype registered
	err := e2.AttachCatalogIndexes()
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("AttachCatalogIndexes = %v, want unregistered-indextype error", err)
	}

	// A handler without the Attacher capability is equally loud.
	e3 := NewEngine(e.DB())
	e3.RegisterIndexType("fake", IndexTypeFunc(
		func(_ *Engine, name, table string, cols []string, _ map[string]string) (CustomIndex, error) {
			return &fakeIndex{name: name, table: table, cols: cols}, nil
		}))
	err = e3.AttachCatalogIndexes()
	if err == nil || !strings.Contains(err.Error(), "does not support attach") {
		t.Fatalf("AttachCatalogIndexes = %v, want no-Attacher error", err)
	}

	// IndexTypeFuncs with a nil Attach must report the same condition as a
	// missing Attacher, not panic on a nil function call.
	e4 := NewEngine(e.DB())
	e4.RegisterIndexType("fake", IndexTypeFuncs{
		Create: func(_ *Engine, name, table string, cols []string, _ map[string]string) (CustomIndex, error) {
			return &fakeIndex{name: name, table: table, cols: cols}, nil
		},
	})
	err = e4.AttachCatalogIndexes()
	if err == nil || !strings.Contains(err.Error(), "does not support attach") {
		t.Fatalf("AttachCatalogIndexes with nil Attach = %v, want no-attach error", err)
	}
}

func TestDropUnattachedCustomIndex(t *testing.T) {
	// DROP INDEX must work on a catalog definition that is not attached in
	// this session — it is the recovery path the attach errors advise.
	e := newEngine(t)
	var created *fakeIndex
	registerFake(e, &created, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)

	// Session with the indextype registered: storage dropped via attach.
	e2 := NewEngine(e.DB())
	var last *fakeIndex
	registerFake(e2, &last, nil)
	mustExec(t, e2, "DROP INDEX ev_f", nil)
	if last == nil || !last.dropped {
		t.Fatal("unattached DROP INDEX did not drop storage through the handler")
	}
	if _, ok := e.DB().CustomIndex("ev_f"); ok {
		t.Fatal("unattached DROP INDEX left the catalog definition")
	}

	// Session without the indextype registered: the definition alone goes.
	mustExec(t, e, "CREATE INDEX ev_g ON ev (lo, hi) INDEXTYPE IS fake", nil)
	e3 := NewEngine(e.DB())
	mustExec(t, e3, "DROP INDEX ev_g", nil)
	if _, ok := e.DB().CustomIndex("ev_g"); ok {
		t.Fatal("DROP INDEX without a handler left the catalog definition")
	}
}

func TestDropTableCascadesUnattachedDefs(t *testing.T) {
	e := newEngine(t)
	registerFake(e, nil, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)

	// A fresh session that never attached still drops table + definitions.
	e2 := NewEngine(e.DB())
	registerFake(e2, nil, nil)
	mustExec(t, e2, "DROP TABLE ev", nil)
	if _, ok := e.DB().CustomIndex("ev_f"); ok {
		t.Fatal("DROP TABLE left an unattached catalog definition")
	}
	if len(e.DB().CustomIndexes()) != 0 {
		t.Fatalf("defs remain: %v", e.DB().CustomIndexes())
	}
}

func TestDropTableCascadesToDomainIndexes(t *testing.T) {
	// DROP TABLE must detach and drop attached domain indexes: a recreated
	// same-named table would otherwise be served stale results through the
	// surviving registration and hidden storage.
	e := newEngine(t)
	var last *fakeIndex
	registerFake(e, &last, nil)
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	mustExec(t, e, "CREATE INDEX ev_f ON ev (lo, hi) INDEXTYPE IS fake", nil)
	dropped := last
	mustExec(t, e, "DROP TABLE ev", nil)
	if !dropped.dropped {
		t.Fatal("DROP TABLE left the domain index storage alive")
	}
	if _, ok := e.DB().CustomIndex("ev_f"); ok {
		t.Fatal("DROP TABLE left the catalog definition")
	}
	// The recreated table starts with no domain index attached.
	mustExec(t, e, "CREATE TABLE ev (lo int, hi int)", nil)
	before := dropped.inserts
	mustExec(t, e, "INSERT INTO ev VALUES (1, 2)", nil)
	if dropped.inserts != before {
		t.Fatal("stale domain index still maintained after DROP TABLE + recreate")
	}
}
