package sqldb

// Abstract syntax trees for the supported dialect.

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col INT, ...).
type CreateTableStmt struct {
	Name    string
	Columns []string
}

// CreateIndexStmt is CREATE INDEX name ON table (col, ...)
// [INDEXTYPE IS typename [PARAMETERS (key = value, ...)]].
type CreateIndexStmt struct {
	Name      string
	Table     string
	Columns   []string
	IndexType string // empty for a built-in composite index
	// Params are the indextype tuning parameters of the PARAMETERS clause
	// (Oracle passes them as an opaque string; here they are key = value
	// pairs validated by the indextype handler). nil when absent.
	Params map[string]string
}

// DropStmt is DROP TABLE name or DROP INDEX name.
type DropStmt struct {
	Index bool // true: DROP INDEX; false: DROP TABLE
	Name  string
}

// CreateCollectionStmt is CREATE COLLECTION name [USING method
// [WITH (key = value, ...)]]: a (lower, upper, id) interval relation
// served by the named access method (a registered indextype; the
// unified-API face of paper §5), with optional per-collection access
// method parameters persisted in the catalog.
type CreateCollectionStmt struct {
	Name   string
	Method string // empty: the engine's default access method
	Params map[string]string
}

// DropCollectionStmt is DROP COLLECTION name.
type DropCollectionStmt struct {
	Name string
}

// InsertStmt is INSERT INTO table VALUES (expr, ...).
type InsertStmt struct {
	Table  string
	Values []Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr // nil when absent
}

// SelectStmt is one SELECT block; Union chains UNION ALL branches.
// Distinct and GroupBy apply to the block; OrderBy and Limit are parsed
// once, after the whole union chain, and stored on the head block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	Union    *SelectStmt
	OrderBy  []OrderItem
	Limit    Expr // nil when absent; a constant expression
}

// ExplainStmt is EXPLAIN [ANALYZE] <select>. With Analyze the query is
// actually executed and the plan is annotated with measured per-operator
// counters and wall times.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

// BeginStmt is BEGIN [TRANSACTION|WORK]: open an explicit transaction
// with snapshot-isolated reads and optimistic, first-committer-wins
// writes (see txn.go).
type BeginStmt struct{}

// CommitStmt is COMMIT [TRANSACTION|WORK]: validate and apply the open
// transaction's buffered writes.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK [TRANSACTION|WORK]: discard the open
// transaction's buffered writes.
type RollbackStmt struct{}

func (*CreateTableStmt) stmt()      {}
func (*CreateIndexStmt) stmt()      {}
func (*CreateCollectionStmt) stmt() {}
func (*DropCollectionStmt) stmt()   {}
func (*DropStmt) stmt()             {}
func (*InsertStmt) stmt()           {}
func (*DeleteStmt) stmt()           {}
func (*SelectStmt) stmt()           {}
func (*ExplainStmt) stmt()          {}
func (*BeginStmt) stmt()            {}
func (*CommitStmt) stmt()           {}
func (*RollbackStmt) stmt()         {}

// SelectItem is one projection: an expression, or a * / alias.* wildcard.
type SelectItem struct {
	Star      bool
	StarAlias string // for alias.*
	Expr      Expr
	As        string
}

// TableRef is one FROM source: a base table or TABLE(:bind) collection.
type TableRef struct {
	Name       string // base table name; empty for collections
	Collection string // bind name for TABLE(:bind)
	Alias      string
}

func (tr TableRef) displayName() string {
	if tr.Alias != "" {
		return tr.Alias
	}
	if tr.Collection != "" {
		return ":" + tr.Collection
	}
	return tr.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is an expression tree node.
type Expr interface{ expr() }

// NumberExpr is an integer literal.
type NumberExpr struct{ Value int64 }

// BindExpr is a scalar bind variable :name.
type BindExpr struct{ Name string }

// ColumnExpr references a column, optionally qualified by a table alias.
type ColumnExpr struct {
	Table  string // alias or table name; empty when unqualified
	Column string
}

// UnaryExpr is -x or NOT x.
type UnaryExpr struct {
	Op string // "-" or "not"
	X  Expr
}

// BinaryExpr covers arithmetic, comparison, AND and OR.
type BinaryExpr struct {
	Op   string // + - * / = <> < <= > >= and or
	L, R Expr
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// CallExpr is an operator/function invocation f(args...) — used for
// extensible-indexing operators such as INTERSECTS (paper §5) and for the
// aggregates COUNT/SUM/MIN/MAX. Star marks COUNT(*).
type CallExpr struct {
	Name string
	Args []Expr
	Star bool
}

func (*NumberExpr) expr()  {}
func (*BindExpr) expr()    {}
func (*ColumnExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*CallExpr) expr()    {}
