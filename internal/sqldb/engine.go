package sqldb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ritree/internal/obs"
	"ritree/internal/rel"
)

// Transient is a transient, session-state relation passed as a bind
// variable and scanned via TABLE(:name) — the leftNodes/rightNodes
// mechanism of paper §4.2 ("managed in the transient session state thus
// causing no I/O effort"). It was formerly named Collection; that name now
// belongs to the persistent, access-method-backed interval collections of
// the unified API (see collection.go and the root ritree package).
type Transient struct {
	Cols []string
	Rows [][]int64
}

// Result is the outcome of one statement.
type Result struct {
	// Cols names the projected columns (SELECT only).
	Cols []string
	// Rows holds the materialized result set (SELECT only).
	Rows [][]int64
	// Affected is the number of rows inserted or deleted (DML only).
	Affected int64
	// Plan is the execution plan text (EXPLAIN only).
	Plan string
}

// Engine executes SQL statements against a rel.DB. One Engine corresponds
// to a database session; statements are serialized by an internal mutex.
type Engine struct {
	mu         sync.Mutex
	db         *rel.DB
	indexTypes map[string]IndexTypeHandler
	custom     map[string]CustomIndex   // by index name
	customByTb map[string][]CustomIndex // by table name

	// viewLk guards the reference counts of execViews and the curView
	// cache. It nests inside mu (mu → viewLk) but is also taken alone by
	// releaseView, which runs on reader goroutines as cursors close.
	viewLk  sync.Mutex
	curView *execView
	// txn is the open explicit transaction, nil outside BEGIN…COMMIT.
	// Guarded by mu.
	txn *txnState

	// reg is the DB-level metrics registry statement telemetry publishes
	// into (nil: metrics off). Guarded by mu.
	reg *obs.Registry
	// tel is the slow-query ring (own mutex — see telemetry.go).
	tel telemetry
	// sqlMet caches the registry handles of the per-statement counter
	// families, so the per-statement observation performs no name
	// concatenation or registry map lookups. Atomic: observeStmt runs on
	// reader goroutines without mu since cursors stopped holding it.
	sqlMet atomic.Pointer[sqlMetrics]
	// capStats/capPlan carry the cursor counters of the statement
	// currently executing under mu from execSelect/explainAnalyze back to
	// Exec's observation point. capPlan is a thunk so the per-operator
	// tree is snapshotted only when slow-query capture actually fires.
	capStats ExecStats
	capPlan  func() PlanNodeStats
	// mergeOff disables interval merge join planning (nested loops only):
	// the benchmark/debug escape hatch. Zero value = merge join enabled.
	// Guarded by mu.
	mergeOff bool
	// ixSnapOff disables persisted index snapshots: PersistIndexSnapshots
	// becomes a no-op and indextypes skip their snapshot fast path on
	// attach. Atomic (not mu): indextype attach code reads it while the
	// engine already holds mu. Zero value = snapshots enabled.
	ixSnapOff atomic.Bool
	// plans caches compiled SELECT plans by SQL text (see plancache.go).
	// Guarded by mu.
	plans *planCache
}

// NewEngine creates an Engine over db.
func NewEngine(db *rel.DB) *Engine {
	return &Engine{
		db:         db,
		indexTypes: make(map[string]IndexTypeHandler),
		custom:     make(map[string]CustomIndex),
		customByTb: make(map[string][]CustomIndex),
		plans:      newPlanCache(DefaultPlanCacheSize),
	}
}

// DB exposes the underlying relational database.
func (e *Engine) DB() *rel.DB { return e.db }

// SetIndexSnapshotsEnabled toggles persisted index snapshots. Disabled,
// PersistIndexSnapshots does nothing and attaching indextypes ignore any
// persisted snapshot, always rebuilding from the heap. No plan epoch bump:
// snapshots change how an index is materialized at attach time, never
// what a cached plan would choose.
func (e *Engine) SetIndexSnapshotsEnabled(on bool) { e.ixSnapOff.Store(!on) }

// IndexSnapshotsEnabled reports whether persisted index snapshots are
// enabled (the default). Safe to call while the engine holds its
// statement lock — indextype attach implementations consult it.
func (e *Engine) IndexSnapshotsEnabled() bool { return !e.ixSnapOff.Load() }

// SetMergeJoinEnabled toggles interval merge join planning. Disabled,
// every two-source interval join runs as nested loops — the baseline the
// join benchmarks compare against.
func (e *Engine) SetMergeJoinEnabled(on bool) {
	e.mu.Lock()
	e.mergeOff = !on
	// Cached plans baked the other strategy in; they must not survive.
	e.bumpPlanEpochLocked()
	e.mu.Unlock()
}

// Exec parses and executes one statement. binds supplies scalar bind
// variables (int64 or int) and transient relations (Transient or
// *Transient). Write statements outside an explicit transaction
// auto-commit: their pages reach the WAL (group commit) before Exec
// returns, and the cached snapshot view is invalidated so later readers
// see them.
func (e *Engine) Exec(sql string, binds map[string]interface{}) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	start := time.Now()
	e.capStats, e.capPlan = ExecStats{}, nil
	res, err := e.execStmt(st, sql, binds)
	var seq uint64
	var cerr error
	if e.txn == nil && stmtWrites(st) {
		// Commit even when the statement failed: partially applied DML
		// (e.g. a DELETE aborting mid-batch after a consistent prefix)
		// must still land at a committed boundary before mu is released,
		// or the next snapshot could capture torn pages.
		seq, cerr = e.commitWriteLocked()
	}
	if err == nil {
		e.observeStmt(sql, stmtKind(st), len(binds), time.Since(start), e.capStats, e.capPlan)
	}
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	// Group-commit durability wait happens outside mu, so concurrent
	// statements batch into the same fsync instead of serializing on it.
	if werr := e.db.Store().WaitDurable(seq); werr != nil {
		return nil, werr
	}
	return res, nil
}

// stmtWrites reports whether a statement (potentially) mutates storage
// and therefore needs a commit boundary. COMMIT itself writes — it is
// where buffered transaction ops are applied.
func stmtWrites(st Statement) bool {
	switch st.(type) {
	case *SelectStmt, *ExplainStmt, *BeginStmt, *RollbackStmt:
		return false
	}
	return true
}

// commitWriteLocked seals a write at its commit boundary: the cached
// snapshot view is retired and the dirty pages are handed to the WAL's
// group commit. The caller waits for durability after releasing mu.
// Caller holds e.mu.
func (e *Engine) commitWriteLocked() (uint64, error) {
	e.invalidateViewLocked()
	return e.db.Store().CommitAsync()
}

// MustExec is Exec for statements that cannot fail in tests and examples;
// it panics on error.
func (e *Engine) MustExec(sql string, binds map[string]interface{}) *Result {
	r, err := e.Exec(sql, binds)
	if err != nil {
		panic(err)
	}
	return r
}

// errTxnOpen rejects DDL while an explicit transaction is open: catalog
// changes cannot be buffered or validated by the content-checksum scheme.
var errTxnOpen = fmt.Errorf("sql: DDL is not allowed inside a transaction (COMMIT or ROLLBACK first)")

func (e *Engine) execStmt(st Statement, sql string, binds map[string]interface{}) (*Result, error) {
	if e.txn != nil {
		switch st.(type) {
		case *CreateTableStmt, *CreateIndexStmt, *DropStmt,
			*CreateCollectionStmt, *DropCollectionStmt:
			return nil, errTxnOpen
		}
	}
	// Any DDL changes the catalog that cached plans compiled against;
	// purge up front (even a failed DDL may have partially mutated — a
	// cascade drop aborting midway — so purging unconditionally is the
	// safe order).
	switch st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropStmt,
		*CreateCollectionStmt, *DropCollectionStmt:
		e.bumpPlanEpochLocked()
	}
	switch s := st.(type) {
	case *BeginStmt:
		return e.execBegin()
	case *CommitStmt:
		return e.execCommit()
	case *RollbackStmt:
		return e.execRollback()
	case *CreateTableStmt:
		if _, err := e.db.CreateTable(s.Name, s.Columns); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		if s.IndexType != "" {
			return e.createCustomIndex(s)
		}
		if _, err := e.db.CreateIndex(s.Name, s.Table, s.Columns); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DropStmt:
		if s.Index {
			if ci, ok := e.custom[s.Name]; ok {
				return &Result{}, e.dropCustomIndex(ci)
			}
			// A catalog definition that is not attached in this session
			// (e.g. its attach failed as stale) must still be droppable —
			// it is the recovery path the attach errors advise.
			if def, ok := e.db.CustomIndex(s.Name); ok {
				return &Result{}, e.dropUnattachedDef(def)
			}
			return &Result{}, e.db.DropIndex(s.Name)
		}
		return &Result{}, e.dropTableCascadeLocked(s.Name)
	case *CreateCollectionStmt:
		return &Result{}, e.createCollectionLocked(s.Name, s.Method, s.Params)
	case *DropCollectionStmt:
		return &Result{}, e.dropCollectionLocked(s.Name)
	case *InsertStmt:
		if e.txn != nil {
			return e.txnInsert(s, binds)
		}
		return e.execInsert(s, binds)
	case *DeleteStmt:
		if e.txn != nil {
			return e.txnDelete(s, binds)
		}
		return e.execDelete(s, binds)
	case *SelectStmt:
		return e.execSelect(s, sql, binds)
	case *ExplainStmt:
		if s.Analyze {
			return e.explainAnalyze(s.Query, sql, binds)
		}
		plan, err := e.explain(s.Query, binds)
		if err != nil {
			return nil, err
		}
		return &Result{Plan: plan}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", st)
}

// dropTableCascadeLocked drops a table, cascading to its domain indexes:
// leaving them registered would keep their maintenance hooks and hidden
// storage alive, and a recreated same-named table would then serve stale
// results through them. Attached ones first (iterate over a copy —
// dropCustomIndex mutates customByTb), then catalog definitions this
// session never attached. Caller holds e.mu.
func (e *Engine) dropTableCascadeLocked(name string) error {
	for _, ci := range append([]CustomIndex(nil), e.customByTb[strings.ToLower(name)]...) {
		if err := e.dropCustomIndex(ci); err != nil {
			return err
		}
	}
	for _, def := range e.db.CustomIndexes() {
		if strings.EqualFold(def.Table, name) {
			if err := e.dropUnattachedDef(def); err != nil {
				return err
			}
		}
	}
	return e.db.DropTable(name)
}

// bindScalar resolves a scalar bind value.
func bindScalar(binds map[string]interface{}, name string) (int64, error) {
	v, ok := binds[name]
	if !ok {
		return 0, fmt.Errorf("sql: missing bind :%s", name)
	}
	switch x := v.(type) {
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	case int32:
		return int64(x), nil
	}
	return 0, fmt.Errorf("sql: bind :%s has unsupported type %T (want integer)", name, v)
}

// bindCollection resolves a collection bind value.
func bindCollection(binds map[string]interface{}, name string) (*Transient, error) {
	v, ok := binds[name]
	if !ok {
		return nil, fmt.Errorf("sql: missing collection bind :%s", name)
	}
	switch x := v.(type) {
	case *Transient:
		return x, nil
	case Transient:
		return &x, nil
	}
	return nil, fmt.Errorf("sql: bind :%s has type %T, want Transient", name, v)
}

func (e *Engine) execInsert(s *InsertStmt, binds map[string]interface{}) (*Result, error) {
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if len(s.Values) != tab.Schema().NumCols() {
		return nil, fmt.Errorf("sql: INSERT supplies %d values, table %s has %d columns",
			len(s.Values), s.Table, tab.Schema().NumCols())
	}
	row := make([]int64, len(s.Values))
	for i, ex := range s.Values {
		v, err := evalConst(ex, binds)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	if _, err := e.insertRowLocked(s.Table, tab, row); err != nil {
		return nil, err
	}
	return &Result{Affected: 1}, nil
}

// insertRowLocked stores row in tab and triggers domain-index maintenance
// — extensible indexing (§5): "the object-relational database server
// automatically triggers the maintenance ... of custom indexes". A custom
// index refusing the row must not leave the heap and the domain indexes
// divergent: the maintenance already performed and the heap insert are
// undone before the failure surfaces. Caller holds e.mu.
func (e *Engine) insertRowLocked(table string, tab *rel.Table, row []int64) (rel.RowID, error) {
	rid, err := tab.Insert(row)
	if err != nil {
		return 0, err
	}
	custom := e.customByTb[strings.ToLower(table)]
	for i, ci := range custom {
		if err := ci.OnInsert(row, rid); err != nil {
			undoErr := undoMaintenance(custom[:i], row, rid, true)
			if _, derr := tab.DeleteRow(rid); derr != nil && undoErr == nil {
				undoErr = fmt.Errorf("heap rollback failed: %w", derr)
			}
			return 0, withUndo(err, undoErr)
		}
	}
	return rid, nil
}

// undoMaintenance applies the inverse maintenance op (delete for a failed
// insert, reinsert for a failed delete) to the already-maintained indexes,
// in reverse order, reporting the first failure.
func undoMaintenance(done []CustomIndex, row []int64, rid rel.RowID, redelete bool) error {
	var first error
	for j := len(done) - 1; j >= 0; j-- {
		var err error
		if redelete {
			err = done[j].OnDelete(row, rid)
		} else {
			err = done[j].OnInsert(row, rid)
		}
		if err != nil && first == nil {
			first = fmt.Errorf("restore of index %s failed: %w", done[j].Name(), err)
		}
	}
	return first
}

// withUndo surfaces a failed undo alongside the original error — silent
// heap/index divergence is the one outcome the undo paths exist to
// prevent.
func withUndo(err, undoErr error) error {
	if undoErr != nil {
		return fmt.Errorf("%w (and %v — table and indexes may diverge)", err, undoErr)
	}
	return err
}

func (e *Engine) execDelete(s *DeleteStmt, binds map[string]interface{}) (*Result, error) {
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Plan the WHERE clause like a single-table SELECT so deletes can use
	// index range scans (Figure 5's single-statement delete).
	sel := &SelectStmt{
		Items: []SelectItem{{Star: true}},
		From:  []TableRef{{Name: s.Table}},
		Where: s.Where,
	}
	plan, err := e.planSelect(sel, binds)
	if err != nil {
		return nil, err
	}
	type victim struct {
		rid rel.RowID
		row []int64
	}
	var victims []victim
	err = drainPlan(plan, binds, func(env []int64, rids []rel.RowID) bool {
		row := make([]int64, tab.Schema().NumCols())
		copy(row, env[:len(row)])
		victims = append(victims, victim{rids[0], row})
		return true
	})
	if err != nil {
		return nil, err
	}
	// Per-row atomicity, like execInsert's: each victim's index
	// maintenance and heap removal succeed or are undone together, so
	// heap and domain indexes never diverge. A failure mid-batch aborts
	// the statement after a consistent prefix of the victims (victims
	// already processed stay deleted).
	for _, v := range victims {
		if err := e.deleteRowLocked(s.Table, tab, v.rid, v.row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: int64(len(victims))}, nil
}

// deleteRowLocked removes the row at rid (whose contents are row) from tab
// with domain-index maintenance, undoing on failure so heap and indexes
// never diverge. Caller holds e.mu.
func (e *Engine) deleteRowLocked(table string, tab *rel.Table, rid rel.RowID, row []int64) error {
	custom := e.customByTb[strings.ToLower(table)]
	for i, ci := range custom {
		if err := ci.OnDelete(row, rid); err != nil {
			return withUndo(err, undoMaintenance(custom[:i], row, rid, false))
		}
	}
	if _, err := tab.DeleteRow(rid); err != nil {
		return withUndo(err, undoMaintenance(custom, row, rid, false))
	}
	return nil
}

// explainAnalyze really executes the query — through the same pipeline a
// cursor would use, with per-operator timing enabled — and renders the
// plan tree annotated with the measured counters. The query's rows are
// discarded; the plan text is the result. Caller holds e.mu.
func (e *Engine) explainAnalyze(s *SelectStmt, sql string, binds map[string]interface{}) (*Result, error) {
	v, err := e.stmtViewLocked()
	if err != nil {
		return nil, err
	}
	defer e.releaseView(v)
	rows, err := e.buildRowsLocked(context.Background(), s, sql, binds, v)
	if err != nil {
		return nil, err
	}
	rows.ec.timed = true
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	ps := rows.PlanStats()
	e.capStats, e.capPlan = rows.Stats(), func() PlanNodeStats { return ps }
	plan := ps.Render()
	if rows.cachedPlan {
		plan = strings.Replace(plan, "SELECT STATEMENT (ANALYZED)",
			"SELECT STATEMENT (ANALYZED) (cached plan)", 1)
	}
	return &Result{Plan: plan}, nil
}

// execSelect materializes a SELECT by draining the same streaming
// pipeline Query serves — Exec is now a drain-the-cursor wrapper over
// the volcano executor. Caller holds e.mu.
func (e *Engine) execSelect(s *SelectStmt, sql string, binds map[string]interface{}) (*Result, error) {
	v, err := e.stmtViewLocked()
	if err != nil {
		return nil, err
	}
	defer e.releaseView(v)
	rows, err := e.buildRowsLocked(context.Background(), s, sql, binds, v)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Cols: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, append([]int64(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	e.capStats, e.capPlan = rows.Stats(), rows.PlanStats
	return res, nil
}
