package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ritree/internal/interval"
	"ritree/internal/obs"
)

// mergeEngine builds two plain (un-indexed) interval tables a and b with
// adversarial bound patterns: duplicates, shared lowers, shared uppers,
// touching intervals, zero-length points, and containment chains — every
// boundary case the 13 Allen relations discriminate on.
func mergeEngine(t *testing.T, na, nb int) *Engine {
	t.Helper()
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE a (alo int, ahi int, aid int)", nil)
	mustExec(t, e, "CREATE TABLE b (blo int, bhi int, bid int)", nil)
	rng := rand.New(rand.NewSource(42))
	ins := func(tb string, lo, hi, id int64) {
		mustExec(t, e, fmt.Sprintf("INSERT INTO %s VALUES (:l, :h, :i)", tb),
			map[string]interface{}{"l": lo, "h": hi, "i": id})
	}
	for i := 0; i < na; i++ {
		lo := rng.Int63n(60)
		ins("a", lo, lo+rng.Int63n(25), int64(i))
	}
	for i := 0; i < nb; i++ {
		lo := rng.Int63n(60)
		ins("b", lo, lo+rng.Int63n(25), int64(1000+i))
	}
	// Hand-placed boundary rows (both tables share the shapes).
	for i, iv := range [][2]int64{{10, 20}, {10, 20}, {20, 20}, {20, 30}, {10, 30}, {12, 20}, {10, 15}, {0, 100}} {
		ins("a", iv[0], iv[1], int64(500+i))
		ins("b", iv[0], iv[1], int64(1500+i))
	}
	return e
}

// runJoin executes the two-table join under the given strategy and
// returns the ordered id pairs.
func runJoin(t *testing.T, e *Engine, merge bool, pred string) [][]int64 {
	t.Helper()
	e.SetMergeJoinEnabled(merge)
	defer e.SetMergeJoinEnabled(true)
	r := mustExec(t, e, "SELECT x.aid, y.bid FROM a x, b y WHERE "+pred+" ORDER BY 1, 2", nil)
	return r.Rows
}

func pairsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			return false
		}
	}
	return true
}

func TestMergeJoinCrosscheckAllAllenRelations(t *testing.T) {
	e := mergeEngine(t, 45, 40)
	for _, op := range AllenOperatorNames() {
		pred := op + "(x.alo, x.ahi, y.blo, y.bhi)"
		plan := mustExec(t, e, "EXPLAIN SELECT x.aid FROM a x, b y WHERE "+pred, nil)
		if !strings.Contains(plan.Plan, "INTERVAL MERGE JOIN ("+strings.ToUpper(op)+")") {
			t.Fatalf("%s: plan is not a merge join:\n%s", op, plan.Plan)
		}
		got := runJoin(t, e, true, pred)
		want := runJoin(t, e, false, pred)
		if len(want) == 0 {
			t.Fatalf("%s: empty baseline result — the dataset exercises nothing", op)
		}
		if !pairsEqual(got, want) {
			t.Fatalf("%s: merge join disagrees with nested loops: %d vs %d pairs\nmerge: %v\nnested: %v",
				op, len(got), len(want), got, want)
		}
	}
}

func TestMergeJoinIntersectsBruteForce(t *testing.T) {
	// INTERSECTS over two un-indexed tables has no nested-loops residual
	// form (the operator needs a domain index there), so the merge join is
	// checked against a brute-force computation instead — and extends the
	// SQL surface in the process.
	e := mergeEngine(t, 30, 25)
	type iv struct{ lo, hi, id int64 }
	read := func(tb string) []iv {
		r := mustExec(t, e, fmt.Sprintf("SELECT * FROM %s", tb), nil)
		out := make([]iv, 0, len(r.Rows))
		for _, row := range r.Rows {
			out = append(out, iv{row[0], row[1], row[2]})
		}
		return out
	}
	as, bs := read("a"), read("b")
	var want [][]int64
	for _, x := range as {
		for _, y := range bs {
			if x.lo <= y.hi && y.lo <= x.hi {
				want = append(want, []int64{x.id, y.id})
			}
		}
	}
	got := runJoin(t, e, true, "intersects(x.alo, x.ahi, y.blo, y.bhi)")
	sortPairs := func(p [][]int64) {
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && (p[j][0] < p[j-1][0] || (p[j][0] == p[j-1][0] && p[j][1] < p[j-1][1])); j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
	}
	sortPairs(want)
	if !pairsEqual(got, want) {
		t.Fatalf("INTERSECTS merge join: %d pairs, brute force %d", len(got), len(want))
	}
	if _, err := e.Exec("SELECT x.aid FROM a x, b y WHERE intersects(x.alo, x.ahi, y.blo, y.bhi)",
		map[string]interface{}{}); err != nil {
		t.Fatalf("INTERSECTS merge join errored: %v", err)
	}
}

func TestMergeJoinOverTransientCollections(t *testing.T) {
	// Both feeds may be transient collections: no tables, no indexes —
	// pure sort-fallback sweep, crosschecked against the residual runner.
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE dummy (x int)", nil)
	rng := rand.New(rand.NewSource(7))
	mk := func(n int, base int64) *Transient {
		tr := &Transient{Cols: []string{"lo", "hi", "id"}}
		for i := 0; i < n; i++ {
			lo := rng.Int63n(40)
			tr.Rows = append(tr.Rows, []int64{lo, lo + rng.Int63n(15), base + int64(i)})
		}
		return tr
	}
	binds := map[string]interface{}{"as": mk(25, 0), "bs": mk(20, 100)}
	q := func(merge bool) *Result {
		e.SetMergeJoinEnabled(merge)
		defer e.SetMergeJoinEnabled(true)
		r, err := e.Exec("SELECT x.id, y.id FROM TABLE(:as) x, TABLE(:bs) y "+
			"WHERE allen_overlaps(x.lo, x.hi, y.lo, y.hi) ORDER BY 1, 2", binds)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	got, want := q(true), q(false)
	if len(want.Rows) == 0 {
		t.Fatal("empty baseline result")
	}
	if !pairsEqual(got.Rows, want.Rows) {
		t.Fatalf("transient merge join %d pairs, nested loops %d", len(got.Rows), len(want.Rows))
	}
	plan := mustExec(t, e, "EXPLAIN SELECT x.id FROM TABLE(:as) x, TABLE(:bs) y "+
		"WHERE allen_overlaps(x.lo, x.hi, y.lo, y.hi)", binds)
	for _, wantLine := range []string{"INTERVAL MERGE JOIN (ALLEN_OVERLAPS)", "SORT BY LOWER"} {
		if !strings.Contains(plan.Plan, wantLine) {
			t.Fatalf("plan missing %q:\n%s", wantLine, plan.Plan)
		}
	}
}

func TestMergeJoinExtraFiltersAndResiduals(t *testing.T) {
	// Side-local conjuncts become feed filters; cross-side conjuncts run
	// as post filters over emitted pairs. Both must agree with the
	// nested-loops plan.
	e := mergeEngine(t, 40, 35)
	pred := "allen_during(x.alo, x.ahi, y.blo, y.bhi) AND x.aid > 5 AND y.bhi - y.blo > 3 AND x.aid + y.bid < 1600"
	got := runJoin(t, e, true, pred)
	want := runJoin(t, e, false, pred)
	if len(want) == 0 {
		t.Fatal("empty baseline result")
	}
	if !pairsEqual(got, want) {
		t.Fatalf("filtered merge join %d pairs, nested loops %d", len(got), len(want))
	}
}

func TestMergeJoinSelfJoin(t *testing.T) {
	e := mergeEngine(t, 35, 0)
	pred := "intersects(x.alo, x.ahi, y.alo, y.ahi)"
	r := mustExec(t, e, "SELECT count(*) FROM a x, a y WHERE "+pred, nil)
	n := mustExec(t, e, "SELECT count(*) FROM a", nil).Rows[0][0]
	// Every row intersects itself, so the self-join emits at least one
	// pair per row, and the pair set is symmetric.
	if r.Rows[0][0] < n {
		t.Fatalf("self-join count %d < row count %d", r.Rows[0][0], n)
	}
	rows := mustExec(t, e, "SELECT x.aid, y.aid FROM a x, a y WHERE "+pred+" ORDER BY 1, 2", nil).Rows
	seen := make(map[[2]int64]bool, len(rows))
	for _, p := range rows {
		seen[[2]int64{p[0], p[1]}] = true
	}
	for _, p := range rows {
		if !seen[[2]int64{p[1], p[0]}] {
			t.Fatalf("pair (%d,%d) emitted without its mirror", p[0], p[1])
		}
	}
}

func TestMergeJoinInvertedQuerySideFaults(t *testing.T) {
	// An inverted interval on the query side of the predicate faults
	// identically under both strategies — the answer must not depend on
	// the join algorithm.
	e := mergeEngine(t, 5, 5)
	mustExec(t, e, "INSERT INTO b VALUES (30, 10, 9999)", nil)
	for _, merge := range []bool{true, false} {
		e.SetMergeJoinEnabled(merge)
		_, err := e.Exec("SELECT x.aid FROM a x, b y WHERE allen_before(x.alo, x.ahi, y.blo, y.bhi)", nil)
		if err == nil || !strings.Contains(err.Error(), "ALLEN_BEFORE got the inverted query interval [30, 10]") {
			t.Fatalf("merge=%v: err = %v, want inverted-query fault", merge, err)
		}
	}
	e.SetMergeJoinEnabled(true)
}

func TestMergeJoinStrategyAndSweepStats(t *testing.T) {
	e := mergeEngine(t, 40, 35)
	reg := obs.NewRegistry()
	e.SetMetricsRegistry(reg)
	rows, err := e.Query(context.Background(), "SELECT x.aid, y.bid FROM a x, b y WHERE allen_overlaps(x.alo, x.ahi, y.blo, y.bhi)", nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	rows.Close()
	if st.JoinStrategy != "merge" {
		t.Fatalf("JoinStrategy = %q, want merge", st.JoinStrategy)
	}
	if st.SweepPairs < int64(n) || st.SweepActivePeak <= 0 || st.SweepSortRows == 0 {
		t.Fatalf("sweep stats = pairs %d (>= %d rows out?), peak %d, sortRows %d",
			st.SweepPairs, n, st.SweepActivePeak, st.SweepSortRows)
	}
	snap := reg.Snapshot()
	if snap.Counter("sql.join.merge") != 1 || snap.Counter("sql.join_sweep.pairs") != st.SweepPairs {
		t.Fatalf("registry: join.merge=%d join_sweep.pairs=%d (stats pairs %d)",
			snap.Counter("sql.join.merge"), snap.Counter("sql.join_sweep.pairs"), st.SweepPairs)
	}
	if h, ok := snap.Histograms["sql.latency.join"]; !ok || h.Count != 1 {
		t.Fatalf("sql.latency.join histogram = %+v", snap.Histograms["sql.latency.join"])
	}
	if h, ok := snap.Histograms["sql.join_sweep.active_peak"]; !ok || h.Count != 1 {
		t.Fatalf("sql.join_sweep.active_peak histogram = %+v", snap.Histograms["sql.join_sweep.active_peak"])
	}

	// The nested-loops strategy reports itself the same way.
	e.SetMergeJoinEnabled(false)
	rows, err = e.Query(context.Background(), "SELECT x.aid FROM a x, b y WHERE allen_overlaps(x.alo, x.ahi, y.blo, y.bhi)", nil)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if st := rows.Stats(); st.JoinStrategy != "nested_loops" {
		t.Fatalf("JoinStrategy = %q, want nested_loops", st.JoinStrategy)
	}
	rows.Close()
	e.SetMergeJoinEnabled(true)
	if snap := reg.Snapshot(); snap.Counter("sql.join.nested_loops") != 1 {
		t.Fatalf("sql.join.nested_loops = %d", snap.Counter("sql.join.nested_loops"))
	}
}

func TestMergeJoinExplainAnalyze(t *testing.T) {
	e := mergeEngine(t, 30, 25)
	r := mustExec(t, e, "EXPLAIN ANALYZE SELECT x.aid FROM a x, b y WHERE allen_overlaps(x.alo, x.ahi, y.blo, y.bhi)", nil)
	for _, want := range []string{"INTERVAL MERGE JOIN (ALLEN_OVERLAPS)", "SORT BY LOWER", " pairs=", " active=", " spill="} {
		if !strings.Contains(r.Plan, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, r.Plan)
		}
	}
}

func TestMergeJoinCtxCancelMidSweep(t *testing.T) {
	e := mergeEngine(t, 60, 55)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.Query(ctx, "SELECT x.aid, y.bid FROM a x, b y WHERE intersects(x.alo, x.ahi, y.blo, y.bhi)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); err != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	rows.Close()
	// The engine stays usable after the abandoned sweep.
	mustExec(t, e, "SELECT count(*) FROM a", nil)
}

func TestMergeJoinEarlyCloseReleasesView(t *testing.T) {
	e := mergeEngine(t, 30, 25)
	rows, err := e.Query(context.Background(), "SELECT x.aid FROM a x, b y WHERE intersects(x.alo, x.ahi, y.blo, y.bhi)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	e.viewLk.Lock()
	refsOpen := e.curView.refs
	e.viewLk.Unlock()
	if refsOpen < 2 { // cache reference + the open cursor
		t.Fatalf("refs while cursor open = %d, want >= 2", refsOpen)
	}
	rows.Close()
	e.viewLk.Lock()
	refsClosed := e.curView.refs
	e.viewLk.Unlock()
	if refsClosed != refsOpen-1 {
		t.Fatalf("refs after early Close = %d, want %d", refsClosed, refsOpen-1)
	}
}

func TestMergeJoinSnapshotIsolation(t *testing.T) {
	// A streaming merge-join cursor answers from the snapshot pinned at
	// Query time: rows inserted while it is open must not appear.
	e := mergeEngine(t, 20, 15)
	rows, err := e.Query(context.Background(), "SELECT x.aid, y.bid FROM a x, b y WHERE intersects(x.alo, x.ahi, y.blo, y.bhi) ORDER BY 1, 2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// This interval intersects everything; id 777 must stay invisible.
	mustExec(t, e, "INSERT INTO b VALUES (0, 1000, 777)", nil)
	for rows.Next() {
		if rows.Row()[1] == 777 {
			t.Fatal("cursor saw a row committed after Query")
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
}

func TestMergeJoinDisabledFallsBackToNestedLoops(t *testing.T) {
	e := mergeEngine(t, 5, 5)
	e.SetMergeJoinEnabled(false)
	defer e.SetMergeJoinEnabled(true)
	plan := mustExec(t, e, "EXPLAIN SELECT x.aid FROM a x, b y WHERE allen_before(x.alo, x.ahi, y.blo, y.bhi)", nil)
	if strings.Contains(plan.Plan, "INTERVAL MERGE JOIN") || !strings.Contains(plan.Plan, "NESTED LOOPS") {
		t.Fatalf("disabled merge join still planned:\n%s", plan.Plan)
	}
}

func TestTopKSink(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a int, b int)", nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		mustExec(t, e, "INSERT INTO t VALUES (:a, :b)",
			map[string]interface{}{"a": rng.Int63n(500), "b": i})
	}
	full := mustExec(t, e, "SELECT a, b FROM t ORDER BY a DESC, b", nil)
	top := mustExec(t, e, "SELECT a, b FROM t ORDER BY a DESC, b LIMIT 7", nil)
	if !pairsEqual(top.Rows, full.Rows[:7]) {
		t.Fatalf("top-k = %v\nfull prefix = %v", top.Rows, full.Rows[:7])
	}
	if e.capStats.SpillRows != 7 {
		t.Fatalf("top-k spilled %d rows, want 7 (the retained heap)", e.capStats.SpillRows)
	}
	r := mustExec(t, e, "EXPLAIN ANALYZE SELECT a FROM t ORDER BY a LIMIT 3", nil)
	if !strings.Contains(r.Plan, "SORT TOP-K 3") {
		t.Fatalf("EXPLAIN ANALYZE missing SORT TOP-K:\n%s", r.Plan)
	}
	if zero := mustExec(t, e, "SELECT a FROM t ORDER BY a LIMIT 0", nil); len(zero.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(zero.Rows))
	}
	if _, err := e.Exec("SELECT a FROM t ORDER BY a LIMIT 0 - 1", nil); err == nil {
		t.Fatal("negative LIMIT accepted")
	}
}

func TestGroupByHashAggregate(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE g (grp int, v int)", nil)
	for i := 0; i < 60; i++ {
		mustExec(t, e, "INSERT INTO g VALUES (:g, :v)",
			map[string]interface{}{"g": i % 5, "v": i})
	}
	r := mustExec(t, e, "SELECT grp, count(*), sum(v), min(v), max(v) FROM g GROUP BY grp ORDER BY 1", nil)
	if len(r.Rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(r.Rows))
	}
	for gi, row := range r.Rows {
		g := int64(gi)
		// grp g holds v in {g, g+5, ..., g+55}: 12 values.
		wantSum := 12*g + 5*(0+11)*12/2
		if row[0] != g || row[1] != 12 || row[2] != wantSum || row[3] != g || row[4] != g+55 {
			t.Fatalf("group %d = %v, want [%d 12 %d %d %d]", g, row, g, wantSum, g, g+55)
		}
	}
	if e.capStats.GroupedRows != 5 {
		t.Fatalf("GroupedRows = %d, want 5", e.capStats.GroupedRows)
	}
	// Grouping by a computed expression, restated in the select list.
	r = mustExec(t, e, "SELECT v / 20, count(*) FROM g GROUP BY v / 20 ORDER BY 1", nil)
	if len(r.Rows) != 3 || r.Rows[0][1] != 20 || r.Rows[1][1] != 20 || r.Rows[2][1] != 20 {
		t.Fatalf("expression groups = %v", r.Rows)
	}
	// EXPLAIN renders the sink above the scan.
	plan := mustExec(t, e, "EXPLAIN SELECT grp, count(*) FROM g GROUP BY grp", nil)
	if !strings.Contains(plan.Plan, "HASH GROUP BY") {
		t.Fatalf("plan missing HASH GROUP BY:\n%s", plan.Plan)
	}
	// Error shapes.
	for _, bad := range []string{
		"SELECT grp, v FROM g GROUP BY grp",
		"SELECT * FROM g GROUP BY grp",
		"SELECT count(*) FROM g GROUP BY count(*)",
	} {
		if _, err := e.Exec(bad, nil); err == nil {
			t.Fatalf("%s: accepted", bad)
		}
	}
}

func TestGroupByOverMergeJoin(t *testing.T) {
	// The grouped block's FROM/WHERE still plan as a merge join; the
	// grouped counts must match nested loops exactly.
	e := mergeEngine(t, 35, 30)
	q := "SELECT x.aid, count(*) FROM a x, b y WHERE intersects(x.alo, x.ahi, y.blo, y.bhi) GROUP BY x.aid ORDER BY 1"
	got := mustExec(t, e, q, nil)
	if got.Cols[1] != "count" {
		t.Fatalf("cols = %v", got.Cols)
	}
	// Crosscheck per-subject counts against the flat merge-join pairs.
	flat := mustExec(t, e, "SELECT x.aid, y.bid FROM a x, b y WHERE intersects(x.alo, x.ahi, y.blo, y.bhi)", nil)
	counts := map[int64]int64{}
	for _, p := range flat.Rows {
		counts[p[0]]++
	}
	if len(got.Rows) != len(counts) {
		t.Fatalf("groups = %d, want %d", len(got.Rows), len(counts))
	}
	for _, row := range got.Rows {
		if counts[row[0]] != row[1] {
			t.Fatalf("group %d count %d, want %d", row[0], row[1], counts[row[0]])
		}
	}
	plan := mustExec(t, e, "EXPLAIN "+q, nil)
	for _, want := range []string{"HASH GROUP BY", "INTERVAL MERGE JOIN (INTERSECTS)"} {
		if !strings.Contains(plan.Plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan.Plan)
		}
	}
}

func TestMergeJoinNowRelativeSubjectWithoutKeeper(t *testing.T) {
	// On an un-indexed table there is no NowKeeper clock: a now-relative
	// subject row resolves against now = 0 — "born in the future", matching
	// nothing — under both strategies.
	e := mergeEngine(t, 10, 10)
	mustExec(t, e, "INSERT INTO a VALUES (:l, :h, :i)",
		map[string]interface{}{"l": int64(5), "h": interval.NowMarker, "i": int64(9000)})
	pred := "intersects(x.alo, x.ahi, y.blo, y.bhi)"
	for _, row := range runJoin(t, e, true, pred) {
		if row[0] == 9000 {
			t.Fatal("unresolvable now-relative subject row emitted")
		}
	}
}
