package sqldb

import (
	"fmt"
	"strings"

	"ritree/internal/interval"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
)

// Snapshot execution views: the machinery that lets a SELECT cursor run
// to completion without holding any engine or database lock.
//
// A view pins a page-store snapshot at a committed boundary and opens a
// read-only shadow rel.DB over it (pagestore.Snapshot implements Backend,
// so the whole relational stack stacks on top unchanged). Plans compiled
// for a cursor are then rewired onto the shadow's tables and indexes, and
// every custom (domain) index is replaced by a snapshot-bound scan — an
// access method either provides one through the SnapshotScanner
// capability or is served by a fallback scan of the shadow base table.
//
// Views are reference-counted and cached: consecutive read statements
// share one view, and any write statement invalidates the cache at its
// commit boundary, so the next reader pins a fresh snapshot. A view (and
// its snapshot's pre-image retention) lives exactly as long as the
// cursors and transactions using it.

// ScanFunc is a snapshot-bound operator scan: the Scan method of a
// CustomIndex, detached from the live index and bound to one consistent
// view of its storage. Implementations must be safe for concurrent use —
// several cursors of one view may scan at once.
type ScanFunc func(op string, args []int64, fn func(rid rel.RowID) bool) error

// SnapshotScanner is an optional CustomIndex capability: produce an
// operator scan bound to the given shadow (snapshot) database. It is
// called under the engine's statement lock at a committed boundary, so
// the index's in-memory state and the shadow's relational state describe
// the same data; the returned ScanFunc must keep answering from that
// state regardless of later writes to the live index.
//
// Indexes without the capability are served by a fallback that scans the
// shadow base table and evaluates INTERSECTS / CONTAINS_POINT directly —
// correct, but without the access method's pruning.
type SnapshotScanner interface {
	SnapshotScan(shadow *rel.DB) (ScanFunc, error)
}

// OrderedScanFunc streams every row id a custom index covers in ascending
// order of the indexed interval's lower bound. fn returning false stops
// the stream. Implementations must be safe for concurrent use.
type OrderedScanFunc func(fn func(rid rel.RowID) bool) error

// OrderedScanner is an optional CustomIndex capability: stream the indexed
// row ids in ascending lower-bound order, the feed of the interval merge
// join (which otherwise falls back to an explicit sort of the source).
// Access methods that already keep start-sorted storage — HINT's flat
// layout — serve it zero-sort.
type OrderedScanner interface {
	OrderedScan(fn func(rid rel.RowID) bool) error
}

// SnapshotOrderedScanner is the snapshot face of OrderedScanner: produce
// an ordered stream bound to the given shadow (snapshot) database, under
// the same committed-boundary contract as SnapshotScanner. Indexes with
// OrderedScanner but not this capability sort under snapshot views.
type SnapshotOrderedScanner interface {
	SnapshotOrderedScan(shadow *rel.DB) (OrderedScanFunc, error)
}

// execView is one pinned snapshot of the database, shared by every cursor
// (and transaction) reading from it. refs is guarded by Engine.viewMu.
type execView struct {
	snap    *pagestore.Snapshot
	shadow  *rel.DB
	customs map[string]*viewIndex // by lower-cased index name
	refs    int
}

// viewIndex is the snapshot face of one custom index: identity and
// operator advertisement delegate to the live index (immutable metadata),
// scans run through the captured snapshot scan, and the NowKeeper clock
// is frozen at view creation so a concurrent SetNow cannot shift answers
// mid-cursor. Maintenance and Drop are refused — a view is read-only.
type viewIndex struct {
	live    CustomIndex
	scan    ScanFunc
	ordered OrderedScanFunc // nil: no snapshot-bound ordered stream
	now     int64
}

func (vi *viewIndex) Name() string               { return vi.live.Name() }
func (vi *viewIndex) Table() string              { return vi.live.Table() }
func (vi *viewIndex) Columns() []string          { return vi.live.Columns() }
func (vi *viewIndex) HasOperator(op string) bool { return vi.live.HasOperator(op) }

func (vi *viewIndex) Scan(op string, args []int64, fn func(rid rel.RowID) bool) error {
	return vi.scan(op, args, fn)
}

func (vi *viewIndex) OnInsert([]int64, rel.RowID) error {
	return fmt.Errorf("sql: internal: maintenance routed to a read-only snapshot view of index %s", vi.live.Name())
}

func (vi *viewIndex) OnDelete([]int64, rel.RowID) error {
	return fmt.Errorf("sql: internal: maintenance routed to a read-only snapshot view of index %s", vi.live.Name())
}

func (vi *viewIndex) Drop() error {
	return fmt.Errorf("sql: internal: drop routed to a read-only snapshot view of index %s", vi.live.Name())
}

// SetNow implements NowKeeper as a no-op: the view's clock is frozen.
func (vi *viewIndex) SetNow(int64) {}

// Now implements NowKeeper with the clock captured at view creation (0
// when the live index keeps none, matching the executor's default).
func (vi *viewIndex) Now() int64 { return vi.now }

// newExecViewLocked pins the current committed state as a view. Caller
// holds e.mu, which is what guarantees the committed-boundary requirement
// of AcquireSnapshot (every write statement commits before releasing it).
func (e *Engine) newExecViewLocked() (*execView, error) {
	st := e.db.Store()
	snap, err := st.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	shadowStore, err := pagestore.New(snap, pagestore.Options{
		PageSize:  st.PageSize(),
		CacheSize: st.CacheSize(),
	})
	if err != nil {
		snap.Release()
		return nil, err
	}
	shadow, err := rel.OpenDB(shadowStore, e.db.CatalogRoot())
	if err != nil {
		snap.Release()
		return nil, err
	}
	v := &execView{snap: snap, shadow: shadow, customs: make(map[string]*viewIndex, len(e.custom)), refs: 1}
	for name, ci := range e.custom {
		vi := &viewIndex{live: ci}
		if nk, ok := ci.(NowKeeper); ok {
			vi.now = nk.Now()
		}
		if ss, ok := ci.(SnapshotScanner); ok {
			vi.scan, err = ss.SnapshotScan(shadow)
		} else {
			vi.scan, err = shadowFallbackScan(shadow, ci, vi.now)
		}
		if err == nil {
			if os, ok := ci.(SnapshotOrderedScanner); ok {
				vi.ordered, err = os.SnapshotOrderedScan(shadow)
			}
		}
		if err != nil {
			snap.Release()
			return nil, fmt.Errorf("sql: snapshot view of index %s: %w", ci.Name(), err)
		}
		v.customs[name] = vi
	}
	if m := e.sqlMet.Load(); m != nil {
		m.viewsPinned.Inc()
		m.viewsActive.Add(1)
	}
	return v, nil
}

// shadowFallbackScan serves INTERSECTS / CONTAINS_POINT for an index
// without the SnapshotScanner capability by scanning the shadow base
// table — the rows are exactly the set the live index would report at the
// snapshot, found the slow way.
func shadowFallbackScan(shadow *rel.DB, ci CustomIndex, now int64) (ScanFunc, error) {
	cols := ci.Columns()
	if len(cols) != 2 {
		return nil, fmt.Errorf("fallback scan needs (lower, upper) columns, index has %d", len(cols))
	}
	stab, err := shadow.Table(ci.Table())
	if err != nil {
		return nil, err
	}
	loPos := stab.Schema().ColIndex(cols[0])
	hiPos := stab.Schema().ColIndex(cols[1])
	if loPos < 0 || hiPos < 0 {
		return nil, fmt.Errorf("fallback scan: columns %v not in %s", cols, ci.Table())
	}
	name := ci.Name()
	return func(op string, args []int64, fn func(rid rel.RowID) bool) error {
		var q interval.Interval
		switch strings.ToLower(op) {
		case opIntersects:
			if len(args) != 2 {
				return fmt.Errorf("sql: INTERSECTS needs (:lo, :hi), got %d args", len(args))
			}
			q = interval.New(args[0], args[1])
		case "contains_point":
			if len(args) != 1 {
				return fmt.Errorf("sql: CONTAINS_POINT needs (:p), got %d args", len(args))
			}
			q = interval.Point(args[0])
		default:
			return fmt.Errorf("sql: snapshot view of index %s cannot serve operator %q", name, op)
		}
		return stab.Scan(func(rid rel.RowID, row []int64) bool {
			iv := interval.New(row[loPos], row[hiPos])
			if iv.Upper == interval.NowMarker {
				iv.Upper = now
				if !iv.Valid() {
					return true
				}
			}
			if iv.Intersects(q) {
				return fn(rid)
			}
			return true
		})
	}, nil
}

// acquireViewLocked returns a referenced view for a read statement: the
// open transaction's pinned view when one is active, else the cached
// current view, else a freshly pinned one. Caller holds e.mu (which is
// why reuse is sound — every write path invalidates the cache under it).
// Pair with releaseView.
func (e *Engine) acquireViewLocked() (*execView, error) {
	if e.txn != nil {
		e.viewLk.Lock()
		e.txn.view.refs++
		e.viewLk.Unlock()
		return e.txn.view, nil
	}
	e.viewLk.Lock()
	if v := e.curView; v != nil {
		v.refs++
		e.viewLk.Unlock()
		return v, nil
	}
	e.viewLk.Unlock()
	v, err := e.newExecViewLocked()
	if err != nil {
		return nil, err
	}
	// Publish as the cache's own reference on top of the caller's.
	e.viewLk.Lock()
	v.refs++
	e.curView = v
	e.viewLk.Unlock()
	return v, nil
}

// stmtViewLocked returns the view a materializing statement (Exec's
// SELECT or EXPLAIN ANALYZE) should read from: the open transaction's
// pinned view (referenced — pair with releaseView), or nil outside a
// transaction. A nil view means live handles, which is sound there
// because the whole statement drains under e.mu. Caller holds e.mu.
func (e *Engine) stmtViewLocked() (*execView, error) {
	if e.txn == nil {
		return nil, nil
	}
	return e.acquireViewLocked()
}

// releaseView drops one reference; the last one releases the snapshot
// (unpinning its pre-image retention). Runs without e.mu — cursors close
// on the reader's goroutine.
func (e *Engine) releaseView(v *execView) {
	if v == nil {
		return
	}
	e.viewLk.Lock()
	v.refs--
	free := v.refs == 0
	e.viewLk.Unlock()
	if free {
		v.snap.Release()
		// sqlMet is an atomic pointer for exactly this path: no e.mu here.
		if m := e.sqlMet.Load(); m != nil {
			m.viewsReleased.Inc()
			m.viewsActive.Add(-1)
		}
	}
}

// invalidateViewLocked retires the cached view at a write's commit
// boundary: later readers pin a fresh snapshot. Cursors still running on
// the old view keep it alive through their own references. Caller holds
// e.mu.
func (e *Engine) invalidateViewLocked() {
	e.viewLk.Lock()
	v := e.curView
	e.curView = nil
	e.viewLk.Unlock()
	if v != nil {
		e.releaseView(v)
	}
}

// rewirePlan substitutes the live storage handles a freshly compiled plan
// holds with the view's snapshot-bound ones: shadow tables, shadow
// B+-tree indexes, and the snapshot faces of the custom indexes. The
// executor reads every handle through the plan at Open time, so the
// rewired plan never touches live storage.
func rewirePlan(p *selectPlan, v *execView) error {
	for _, sp := range p.sources {
		if sp.tab != nil {
			stab, err := v.shadow.Table(sp.tab.Name())
			if err != nil {
				return err
			}
			sp.tab = stab
		}
		if sp.ix != nil {
			six, err := v.shadow.Index(sp.ix.Name())
			if err != nil {
				return err
			}
			sp.ix = six
		}
		if sp.custom != nil {
			vi, ok := v.customs[strings.ToLower(sp.custom.Name())]
			if !ok {
				return fmt.Errorf("sql: internal: no snapshot view of index %s", sp.custom.Name())
			}
			sp.custom = vi
		}
		// Merge-join feed handles swap onto their snapshot faces too: the
		// ordered stream and the frozen now-clock must describe the same
		// committed state as the shadow tables.
		if sp.mjOrderedIx != nil {
			vi, ok := v.customs[strings.ToLower(sp.mjOrderedIx.Name())]
			if !ok {
				return fmt.Errorf("sql: internal: no snapshot view of index %s", sp.mjOrderedIx.Name())
			}
			sp.mjOrderedIx = vi
		}
		if sp.mjNowIx != nil {
			vi, ok := v.customs[strings.ToLower(sp.mjNowIx.Name())]
			if !ok {
				return fmt.Errorf("sql: internal: no snapshot view of index %s", sp.mjNowIx.Name())
			}
			sp.mjNowIx = vi
		}
	}
	return nil
}

// orderedScanOf resolves the ordered-stream face of a custom index: the
// snapshot-bound stream of a view face (nil when the access method keeps
// none), the live OrderedScanner method otherwise. A nil result sends the
// merge join down its explicit-sort fallback.
func orderedScanOf(ci CustomIndex) OrderedScanFunc {
	switch x := ci.(type) {
	case *viewIndex:
		return x.ordered
	case OrderedScanner:
		return x.OrderedScan
	}
	return nil
}
