// Package workload generates the paper's sample interval databases
// (Table 1) and the query workloads of §6.
//
// Table 1 defines four distributions over the domain [0, 2^20−1]:
//
//	D1(n,d)  uniform starting points, durations uniform in [0, 2d]
//	D2(n,d)  uniform starting points, durations exponential with mean d
//	D3(n,d)  Poisson-process starting points, durations uniform in [0, 2d]
//	D4(n,d)  Poisson-process starting points, durations exponential, mean d
//
// "For the distributions D3 and D4, we assume transaction time or valid
// time intervals where the arrival of temporal tuples follows a Poisson
// process. Thus the inter-arrival time is distributed exponentially."
//
// Query workloads "follow a distribution which is compatible to the
// respective interval database" (§6.3); their length is calibrated to hit a
// target selectivity.
package workload

import (
	"fmt"
	"math/rand"

	"ritree/internal/interval"
)

// Kind selects one of the Table 1 distributions.
type Kind int

// The four sample database distributions of Table 1.
const (
	D1 Kind = iota + 1
	D2
	D3
	D4
)

// String names the distribution like the paper ("D1", ...).
func (k Kind) String() string {
	if k < D1 || k > D4 {
		return "D?"
	}
	return fmt.Sprintf("D%d", int(k))
}

// Spec describes a sample interval database.
type Spec struct {
	// Kind is the Table 1 distribution.
	Kind Kind
	// N is the database cardinality.
	N int
	// D is the duration parameter d of Table 1 (2000 for the ubiquitous
	// "2k" datasets).
	D int64
	// MinDur/MaxDur, when MaxDur > 0, restrict the duration domain to
	// uniform in [MinDur, MaxDur] — the "restricted D3 databases" of
	// Figure 15.
	MinDur, MaxDur int64
}

// String formats the spec like the paper, e.g. "D4(100k,2k)".
func (s Spec) String() string {
	return fmt.Sprintf("%s(%s,%s)", s.Kind, compact(int64(s.N)), compact(s.D))
}

func compact(v int64) string {
	switch {
	case v >= 1_000_000 && v%1_000_000 == 0:
		return fmt.Sprintf("%dM", v/1_000_000)
	case v >= 1000 && v%1000 == 0:
		return fmt.Sprintf("%dk", v/1000)
	}
	return fmt.Sprintf("%d", v)
}

// Generate produces the interval database for spec. The same seed yields
// the same database. Bounding points are clamped into the paper's domain
// [0, 2^20−1].
func Generate(spec Spec, seed int64) []interval.Interval {
	rng := rand.New(rand.NewSource(seed))
	domain := interval.DomainMax - interval.DomainMin + 1
	ivs := make([]interval.Interval, spec.N)

	// Starting points.
	starts := make([]int64, spec.N)
	switch spec.Kind {
	case D1, D2:
		for i := range starts {
			starts[i] = interval.DomainMin + rng.Int63n(domain)
		}
	case D3, D4:
		// Poisson arrivals: exponential inter-arrival times with mean
		// domain/n, wrapped into the domain so exactly n tuples exist.
		mean := float64(domain) / float64(spec.N)
		x := float64(interval.DomainMin)
		for i := range starts {
			x += rng.ExpFloat64() * mean
			for x >= float64(interval.DomainMax+1) {
				x -= float64(domain)
			}
			starts[i] = int64(x)
		}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %d", spec.Kind))
	}

	// Durations.
	for i := range ivs {
		var dur int64
		switch {
		case spec.MaxDur > 0:
			dur = spec.MinDur + rng.Int63n(spec.MaxDur-spec.MinDur+1)
		case spec.Kind == D1 || spec.Kind == D3:
			dur = rng.Int63n(2*spec.D + 1) // uniform in [0, 2d], mean d
		default:
			dur = int64(rng.ExpFloat64() * float64(spec.D)) // mean d
		}
		lo := starts[i]
		hi := lo + dur
		if hi > interval.DomainMax {
			if spec.MaxDur > 0 {
				// Restricted databases (Figure 15) rely on a guaranteed
				// minimum duration; shift the interval left instead of
				// truncating it at the domain edge.
				lo = interval.DomainMax - dur
				hi = interval.DomainMax
			} else {
				hi = interval.DomainMax
			}
		}
		ivs[i] = interval.New(lo, hi)
	}
	return ivs
}

// IDs returns the identity id assignment 0..n-1.
func IDs(n int) []int64 {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

// Queries produces count query intervals of the given length with starting
// points compatible with the data distribution (uniform over the domain,
// which also matches the Poisson processes' uniform marginal).
func Queries(count int, length int64, seed int64) []interval.Interval {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]interval.Interval, count)
	span := interval.DomainMax - interval.DomainMin + 1 - length
	if span < 1 {
		span = 1
	}
	for i := range qs {
		lo := interval.DomainMin + rng.Int63n(span)
		qs[i] = interval.New(lo, lo+length)
	}
	return qs
}

// PointSweep produces point queries at the given distances below the upper
// bound of the data space — the "sweeping" workload of Figure 17.
func PointSweep(distances []int64) []interval.Interval {
	qs := make([]interval.Interval, len(distances))
	for i, d := range distances {
		qs[i] = interval.Point(interval.DomainMax - d)
	}
	return qs
}

// Selectivity measures the average fraction of the database returned by the
// queries (brute force).
func Selectivity(ivs []interval.Interval, queries []interval.Interval) float64 {
	if len(ivs) == 0 || len(queries) == 0 {
		return 0
	}
	var total int64
	for _, q := range queries {
		for _, iv := range ivs {
			if iv.Intersects(q) {
				total++
			}
		}
	}
	return float64(total) / float64(len(ivs)) / float64(len(queries))
}

// CalibrateLength finds a query length whose measured selectivity on the
// database approximates target (a fraction, e.g. 0.005 for 0.5%). The
// paper's figures parameterize queries by selectivity; this reproduces that
// knob for arbitrary distributions. A target of 0 yields point queries.
func CalibrateLength(ivs []interval.Interval, target float64, seed int64) int64 {
	if target <= 0 {
		return 0
	}
	const probes = 24
	lo, hi := int64(0), interval.DomainMax-interval.DomainMin
	for iter := 0; iter < 18 && lo < hi; iter++ {
		mid := (lo + hi) / 2
		sel := Selectivity(ivs, Queries(probes, mid, seed+int64(iter)))
		if sel < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
