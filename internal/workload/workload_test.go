package workload

import (
	"math"
	"testing"

	"ritree/internal/interval"
)

func TestDeterminism(t *testing.T) {
	for _, k := range []Kind{D1, D2, D3, D4} {
		a := Generate(Spec{Kind: k, N: 500, D: 2000}, 42)
		b := Generate(Spec{Kind: k, N: 500, D: 2000}, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: not deterministic at %d", k, i)
			}
		}
		c := Generate(Spec{Kind: k, N: 500, D: 2000}, 43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds gave identical data", k)
		}
	}
}

func TestDomainBounds(t *testing.T) {
	for _, k := range []Kind{D1, D2, D3, D4} {
		for _, iv := range Generate(Spec{Kind: k, N: 2000, D: 5000}, 7) {
			if !iv.Valid() {
				t.Fatalf("%v: invalid interval %v", k, iv)
			}
			if iv.Lower < interval.DomainMin || iv.Upper > interval.DomainMax {
				t.Fatalf("%v: %v outside domain", k, iv)
			}
		}
	}
}

func TestDurationMeans(t *testing.T) {
	// Table 1: D1/D3 durations uniform in [0, 2d] (mean d); D2/D4
	// exponential with mean d.
	const n = 50000
	const d = 2000
	for _, k := range []Kind{D1, D2, D3, D4} {
		ivs := Generate(Spec{Kind: k, N: n, D: d}, 11)
		var sum float64
		for _, iv := range ivs {
			sum += float64(iv.Length())
		}
		mean := sum / n
		// Clamping at the domain edge trims a tiny amount off the mean.
		if math.Abs(mean-d) > d*0.05 {
			t.Errorf("%v: mean duration = %.1f, want ≈ %d", k, mean, d)
		}
	}
}

func TestUniformVsExponentialShape(t *testing.T) {
	// Exponential durations have many more short intervals than uniform.
	u := Generate(Spec{Kind: D1, N: 20000, D: 2000}, 3)
	e := Generate(Spec{Kind: D2, N: 20000, D: 2000}, 3)
	shortU, shortE := 0, 0
	for i := range u {
		if u[i].Length() < 500 {
			shortU++
		}
		if e[i].Length() < 500 {
			shortE++
		}
	}
	if shortE <= shortU {
		t.Fatalf("exponential short count %d <= uniform %d", shortE, shortU)
	}
}

func TestPoissonCoversDomain(t *testing.T) {
	ivs := Generate(Spec{Kind: D4, N: 20000, D: 100}, 9)
	buckets := make([]int, 16)
	for _, iv := range ivs {
		buckets[iv.Lower*16/(interval.DomainMax+1)]++
	}
	for i, c := range buckets {
		if c < 20000/16/2 || c > 20000/16*2 {
			t.Fatalf("bucket %d has %d arrivals; Poisson marginal should be near-uniform: %v", i, c, buckets)
		}
	}
}

func TestRestrictedDurations(t *testing.T) {
	// Figure 15's restricted D3 databases guarantee the duration window
	// exactly (intervals near the domain edge are shifted, not truncated,
	// so the minstep analysis of §3.4 sees the true minimum length).
	ivs := Generate(Spec{Kind: D3, N: 5000, D: 2000, MinDur: 1000, MaxDur: 3000}, 1)
	for _, iv := range ivs {
		if iv.Length() < 1000 || iv.Length() > 3000 {
			t.Fatalf("duration %d outside [1000,3000]", iv.Length())
		}
		if iv.Lower < interval.DomainMin || iv.Upper > interval.DomainMax {
			t.Fatalf("interval %v outside domain", iv)
		}
	}
}

func TestCalibrateLengthHitsTarget(t *testing.T) {
	ivs := Generate(Spec{Kind: D1, N: 20000, D: 2000}, 21)
	for _, target := range []float64{0.005, 0.01, 0.03} {
		L := CalibrateLength(ivs, target, 5)
		sel := Selectivity(ivs, Queries(50, L, 99))
		if sel < target*0.6 || sel > target*1.6 {
			t.Errorf("target %.3f%%: calibrated length %d gives %.3f%%",
				target*100, L, sel*100)
		}
	}
	if CalibrateLength(ivs, 0, 5) != 0 {
		t.Error("target 0 must give point queries")
	}
}

func TestQueriesRespectLengthAndDomain(t *testing.T) {
	qs := Queries(200, 4096, 17)
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Length() != 4096 {
			t.Fatalf("query length %d", q.Length())
		}
		if q.Lower < interval.DomainMin || q.Upper > interval.DomainMax {
			t.Fatalf("query %v outside domain", q)
		}
	}
}

func TestPointSweep(t *testing.T) {
	qs := PointSweep([]int64{0, 1000, 50000})
	if qs[0].Lower != interval.DomainMax || qs[1].Lower != interval.DomainMax-1000 {
		t.Fatalf("sweep positions wrong: %v", qs)
	}
	for _, q := range qs {
		if q.Length() != 0 {
			t.Fatal("sweep queries must be points")
		}
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Kind: D4, N: 100000, D: 2000}
	if s.String() != "D4(100k,2k)" {
		t.Fatalf("String = %q", s.String())
	}
	s2 := Spec{Kind: D1, N: 1000000, D: 150}
	if s2.String() != "D1(1M,150)" {
		t.Fatalf("String = %q", s2.String())
	}
}

func TestIDs(t *testing.T) {
	ids := IDs(5)
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("IDs[%d] = %d", i, id)
		}
	}
}
