package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"

	"ritree"
	"ritree/internal/sqldb"
	"ritree/internal/wire"
)

// maxFetch caps one RowBatch regardless of what the client asks for, so
// a hostile Fetch(max=1<<60) cannot make the server materialize an
// unbounded batch. Streaming still covers arbitrary results — the client
// just fetches again.
const maxFetch = 8192

// prepared is a server-side prepared statement: the SQL text plus its
// bind names in first-appearance order (the driver binds positionally).
// No plan is pinned here — the engine's plan cache keys on the text, so
// repeated execution hits the cached plan without the session holding
// storage handles across DDL.
type prepared struct {
	sql       string
	bindNames []string
}

// cursor is one open server-side result stream.
type cursor struct {
	rows  *ritree.Rows
	ncols int
}

// session is the per-connection state machine. All fields are owned by
// the session goroutine except draining, which drain() flips from the
// shutdown path.
type session struct {
	srv  *Server
	conn *countingConn
	br   *bufio.Reader
	bw   *bufio.Writer

	draining atomic.Bool

	stmts      map[uint64]*prepared
	nextStmt   uint64
	cursors    map[uint64]*cursor
	nextCursor uint64
	txnOpen    bool
}

func newSession(srv *Server, conn net.Conn) *session {
	cc := &countingConn{Conn: conn, in: srv.met.bytesIn, out: srv.met.bytesOut}
	return &session{
		srv:     srv,
		conn:    cc,
		br:      bufio.NewReader(cc),
		bw:      bufio.NewWriter(cc),
		stmts:   make(map[uint64]*prepared),
		cursors: make(map[uint64]*cursor),
	}
}

// drain asks the session to stop: a busy session exits after flushing
// its in-flight response; an idle one unblocks from its read
// immediately. Safe to call from any goroutine.
func (s *session) drain() {
	s.draining.Store(true)
	s.conn.SetReadDeadline(time.Now())
}

// kill severs the connection outright.
func (s *session) kill() { s.conn.Close() }

// run is the session loop: strict lockstep — read one request, write one
// response, flush. It returns when the client terminates, the connection
// dies, or drain was requested; teardown always runs.
func (s *session) run() {
	defer s.teardown()
	if err := s.handshake(); err != nil {
		if !errors.Is(err, io.EOF) {
			s.srv.logf("server: %s handshake: %v", s.conn.RemoteAddr(), err)
		}
		return
	}
	for !s.draining.Load() {
		typ, payload, err := wire.ReadFrame(s.br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.draining.Load() {
				s.srv.logf("server: %s read: %v", s.conn.RemoteAddr(), err)
			}
			return
		}
		if typ == wire.MsgTerminate {
			return
		}
		start := time.Now()
		err = s.dispatch(typ, payload)
		if err == nil {
			err = s.bw.Flush()
		}
		s.srv.met.observe(typ, time.Since(start))
		if err != nil {
			s.srv.logf("server: %s: %v", s.conn.RemoteAddr(), err)
			return
		}
	}
}

// handshake requires the first frame to be a version-compatible Hello.
func (s *session) handshake() error {
	typ, payload, err := wire.ReadFrame(s.br)
	if err != nil {
		return err
	}
	if typ != wire.MsgHello {
		s.reply(wire.MsgErr, wire.EncodeErr(wire.CodeProtocol, "expected Hello"))
		s.bw.Flush()
		return errProtocol("first frame %#x, want Hello", typ)
	}
	r := wire.NewReader(payload)
	ver := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if ver != wire.ProtoVersion {
		s.reply(wire.MsgErr, wire.EncodeErr(wire.CodeProtocol,
			"unsupported protocol version"))
		s.bw.Flush()
		return errProtocol("client version %d, want %d", ver, wire.ProtoVersion)
	}
	b := wire.AppendUvarint(nil, wire.ProtoVersion)
	b = wire.AppendString(b, "riserver")
	if err := s.reply(wire.MsgHelloOK, b); err != nil {
		return err
	}
	return s.bw.Flush()
}

// dispatch handles one request frame. Statement-level failures are
// answered with MsgErr and keep the connection; only transport or
// protocol failures return an error.
func (s *session) dispatch(typ byte, payload []byte) error {
	r := wire.NewReader(payload)
	switch typ {
	case wire.MsgPing:
		return s.reply(wire.MsgPong, nil)

	case wire.MsgQuery:
		sql := r.String()
		binds := r.Binds()
		if r.Err() != nil {
			return r.Err()
		}
		return s.openCursor(sql, binds)

	case wire.MsgExec:
		sql := r.String()
		binds := r.Binds()
		if r.Err() != nil {
			return r.Err()
		}
		return s.exec(sql, binds)

	case wire.MsgParse:
		sql := r.String()
		if r.Err() != nil {
			return r.Err()
		}
		if _, err := sqldb.Parse(sql); err != nil {
			return s.replyErr(err)
		}
		names, err := sqldb.BindNames(sql)
		if err != nil {
			return s.replyErr(err)
		}
		s.nextStmt++
		id := s.nextStmt
		s.stmts[id] = &prepared{sql: sql, bindNames: names}
		b := wire.AppendUvarint(nil, id)
		b = wire.AppendStrings(b, names)
		return s.reply(wire.MsgParseOK, b)

	case wire.MsgStmtQuery:
		id := r.Uvarint()
		binds := r.Binds()
		if r.Err() != nil {
			return r.Err()
		}
		st, ok := s.stmts[id]
		if !ok {
			return s.replyErr(errProtocol("unknown statement %d", id))
		}
		return s.openCursor(st.sql, binds)

	case wire.MsgStmtExec:
		id := r.Uvarint()
		binds := r.Binds()
		if r.Err() != nil {
			return r.Err()
		}
		st, ok := s.stmts[id]
		if !ok {
			return s.replyErr(errProtocol("unknown statement %d", id))
		}
		return s.exec(st.sql, binds)

	case wire.MsgFetch:
		id := r.Uvarint()
		max := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		return s.fetch(id, max)

	case wire.MsgCloseCursor:
		id := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		if cur, ok := s.cursors[id]; ok {
			cur.rows.Close()
			delete(s.cursors, id)
		}
		return s.reply(wire.MsgOK, nil)

	case wire.MsgCloseStmt:
		id := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		delete(s.stmts, id)
		return s.reply(wire.MsgOK, nil)

	case wire.MsgMetrics:
		js, err := json.Marshal(s.srv.db.Metrics())
		if err != nil {
			return s.replyErr(err)
		}
		return s.reply(wire.MsgMetricsData, wire.AppendString(nil, string(js)))

	default:
		return errProtocol("unknown message type %#x", typ)
	}
}

// openCursor runs a streaming SELECT and answers with its RowHeader.
func (s *session) openCursor(sql string, wireBinds map[string]int64) error {
	rows, err := s.srv.db.Query(context.Background(), sql, toBinds(wireBinds))
	if err != nil {
		return s.replyErr(err)
	}
	cols := rows.Columns()
	s.nextCursor++
	id := s.nextCursor
	s.cursors[id] = &cursor{rows: rows, ncols: len(cols)}
	b := wire.AppendUvarint(nil, id)
	b = wire.AppendStrings(b, cols)
	return s.reply(wire.MsgRowHeader, b)
}

// fetch pulls up to max rows from a cursor. The final batch (done=true)
// closes the cursor server-side; a client abandoning the stream early
// sends CloseCursor instead.
func (s *session) fetch(id, max uint64) error {
	cur, ok := s.cursors[id]
	if !ok {
		return s.replyErr(errProtocol("unknown cursor %d", id))
	}
	if max == 0 || max > maxFetch {
		max = maxFetch
	}
	batch := make([][]int64, 0, 64)
	done := false
	for uint64(len(batch)) < max {
		if !cur.rows.Next() {
			done = true
			break
		}
		row := cur.rows.Row() // buffer is reused by the next step: copy
		cp := make([]int64, len(row))
		copy(cp, row)
		batch = append(batch, cp)
	}
	if done {
		err := cur.rows.Err()
		cur.rows.Close()
		delete(s.cursors, id)
		if err != nil {
			return s.replyErr(err)
		}
	}
	return s.reply(wire.MsgRowBatch, wire.EncodeRowBatch(batch, done))
}

// exec runs a non-cursor statement and tracks transaction ownership: a
// successful BEGIN claims the engine's transaction for this session so
// teardown knows to roll it back.
func (s *session) exec(sql string, wireBinds map[string]int64) error {
	res, err := s.srv.db.Exec(sql, toBinds(wireBinds))
	if err != nil {
		return s.replyErr(err)
	}
	if st, perr := sqldb.Parse(sql); perr == nil {
		switch st.(type) {
		case *sqldb.BeginStmt:
			s.txnOpen = true
		case *sqldb.CommitStmt, *sqldb.RollbackStmt:
			s.txnOpen = false
		}
	}
	b := wire.AppendVarint(nil, res.Affected)
	b = wire.AppendString(b, res.Plan)
	return s.reply(wire.MsgExecOK, b)
}

// reply buffers one response frame (the run loop flushes).
func (s *session) reply(typ byte, payload []byte) error {
	return wire.WriteFrame(s.bw, typ, payload)
}

// replyErr answers a statement-level failure, mapping ErrTxnConflict to
// its protocol code so the driver can reconstruct the sentinel.
func (s *session) replyErr(err error) error {
	code := wire.CodeError
	if errors.Is(err, ritree.ErrTxnConflict) {
		code = wire.CodeTxnConflict
	}
	return s.reply(wire.MsgErr, wire.EncodeErr(code, err.Error()))
}

// teardown releases everything the session holds: every open cursor
// (each pins a snapshot view until closed) and the engine's transaction
// slot if this session held it. It must run on every exit path — a
// connection killed mid-stream leaks pinned snapshots otherwise.
func (s *session) teardown() {
	for id, cur := range s.cursors {
		cur.rows.Close()
		delete(s.cursors, id)
	}
	if s.txnOpen {
		s.txnOpen = false
		if _, err := s.srv.db.Exec("ROLLBACK", nil); err != nil {
			s.srv.logf("server: teardown rollback: %v", err)
		}
	}
	s.conn.Close()
}

// toBinds widens wire binds to the engine's bind map.
func toBinds(in map[string]int64) map[string]interface{} {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]interface{}, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
