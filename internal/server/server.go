// Package server hosts one ritree.DB behind the wire protocol
// (internal/wire): a TCP listener, one goroutine and one session per
// connection. Sessions share the database — its engine serializes
// statements — but each owns its prepared statements, its open cursors
// (server-side ritree.Rows, so a client that stops fetching stops the
// scan), and its claim on the engine's single explicit transaction.
// Teardown is unconditional: however a connection ends — Terminate, EOF,
// a mid-stream kill — the session closes every open cursor (releasing
// the pinned snapshot views) and rolls back its in-flight transaction.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ritree"
	"ritree/internal/obs"
	"ritree/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Logf receives connection-level events (accept, teardown, protocol
	// errors). Nil discards them.
	Logf func(format string, args ...interface{})
}

// Server serves one database over the wire protocol.
type Server struct {
	db   *ritree.DB
	logf func(string, ...interface{})
	met  *metrics

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool

	wg sync.WaitGroup
}

// New builds a server for db. Serve must be called to accept.
func New(db *ritree.DB, opts Options) *Server {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return &Server{
		db:       db,
		logf:     logf,
		met:      newMetrics(db.MetricsRegistry()),
		sessions: make(map[*session]struct{}),
	}
}

// Serve accepts connections on ln until Shutdown (which returns nil
// here) or a permanent accept error. One listener per server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: already serving")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.met.connections.Inc()
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.sessions[sess] = struct{}{}
		s.met.sessionsActive.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
			s.met.sessionsActive.Add(-1)
		}()
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting and drains: sessions finish their in-flight
// request and are then disconnected. When ctx expires first, remaining
// connections are closed hard; session teardown still runs either way
// (cursors closed, transaction rolled back), so the database is quiescent
// when Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for sess := range s.sessions {
		sess.drain()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.kill()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: listener and every connection.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Shutdown goes straight to kill
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// metrics holds the server's registry handles ("server.*" families).
type metrics struct {
	connections    *obs.Counter
	sessionsActive *obs.Gauge
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	latency        map[byte]*obs.Histogram
}

// msgNames keys the per-message-type latency histograms.
var msgNames = map[byte]string{
	wire.MsgHello:       "hello",
	wire.MsgQuery:       "query",
	wire.MsgExec:        "exec",
	wire.MsgParse:       "parse",
	wire.MsgStmtQuery:   "stmt_query",
	wire.MsgStmtExec:    "stmt_exec",
	wire.MsgFetch:       "fetch",
	wire.MsgCloseCursor: "close_cursor",
	wire.MsgCloseStmt:   "close_stmt",
	wire.MsgPing:        "ping",
	wire.MsgMetrics:     "metrics",
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		connections:    reg.Counter("server.connections"),
		sessionsActive: reg.Gauge("server.sessions.active"),
		bytesIn:        reg.Counter("server.bytes.in"),
		bytesOut:       reg.Counter("server.bytes.out"),
		latency:        make(map[byte]*obs.Histogram, len(msgNames)),
	}
	for typ, name := range msgNames {
		m.latency[typ] = reg.Histogram("server.latency." + name)
	}
	return m
}

// observe records one handled request's latency.
func (m *metrics) observe(typ byte, d time.Duration) {
	if h, ok := m.latency[typ]; ok {
		h.Record(d.Nanoseconds())
	}
}

// stdLogf adapts the standard logger for Options.Logf.
func stdLogf(format string, args ...interface{}) { log.Printf(format, args...) }

// StdLogf is a ready-made Options.Logf writing through the log package.
var StdLogf = stdLogf

// countingConn wraps a net.Conn, feeding the byte counters.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// errProtocol marks a client violation severe enough to drop the
// connection after reporting it.
func errProtocol(format string, args ...interface{}) error {
	return fmt.Errorf("protocol: "+format, args...)
}
