// Package btree implements a disk-oriented B+-tree over the page store.
//
// It plays the role of the "built-in relational composite index" that the
// RI-tree paper relies on: fixed-width multi-column integer keys, ordered
// range scans, O(log_b n) inserts and deletes, and block-granular I/O that
// is accounted by the underlying pagestore. Index entries are stored
// index-organized (the full key tuple is the entry; callers append a row id
// column to make entries unique), which matches how composite indexes
// (node, lower) and (node, upper) are used in the paper.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ritree/internal/pagestore"
)

// Node page layout (pageSize bytes):
//
//	offset 0:  type byte (leafType or innerType)
//	offset 1:  reserved
//	offset 2:  count uint16
//	offset 4:  leaf: right-sibling page id; inner: leftmost child page id
//	offset 8:  reserved (8 bytes)
//	offset 16: entries
//
// Leaf entries are the encoded key tuples, entrySize = ncols*8 bytes each.
// Inner entries are (separator key, right child) pairs of entrySize+4 bytes;
// child i holds keys k with sep[i-1] <= k < sep[i].
const (
	leafType  = byte(1)
	innerType = byte(2)

	headerSize = 16
	childSize  = 4
)

// Meta page layout: magic, ncols, root, height, count.
const (
	metaMagic = uint32(0x52495442) // "RITB"
)

// ErrWidth is returned when a key of the wrong column count is supplied.
var ErrWidth = errors.New("btree: key has wrong number of columns")

// Tree is a B+-tree of fixed-width int64 tuples.
type Tree struct {
	st     *pagestore.Store
	meta   pagestore.PageID
	ncols  int
	root   pagestore.PageID
	height int // 1 = root is a leaf
	count  int64

	es       int // encoded entry size = ncols*8
	leafCap  int
	innerCap int // max separator keys per inner node
}

// Create allocates a new empty tree whose keys have ncols int64 columns.
// The returned tree is addressed by its meta page id (see Open).
func Create(st *pagestore.Store, ncols int) (*Tree, error) {
	if ncols < 1 || ncols > 32 {
		return nil, fmt.Errorf("btree: ncols %d out of range [1,32]", ncols)
	}
	meta, err := st.Allocate()
	if err != nil {
		return nil, err
	}
	rootID, err := st.Allocate()
	if err != nil {
		return nil, err
	}
	t := &Tree{st: st, meta: meta, ncols: ncols, root: rootID, height: 1}
	t.derive()
	if t.leafCap < 4 || t.innerCap < 4 {
		return nil, fmt.Errorf("btree: page size %d too small for %d-column keys", st.PageSize(), ncols)
	}
	p, err := st.GetMut(rootID)
	if err != nil {
		return nil, err
	}
	p.Data()[0] = leafType
	p.Release()
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from its meta page.
func Open(st *pagestore.Store, meta pagestore.PageID) (*Tree, error) {
	p, err := st.Get(meta)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	d := p.Data()
	if binary.LittleEndian.Uint32(d[0:4]) != metaMagic {
		return nil, fmt.Errorf("btree: page %d is not a tree meta page", meta)
	}
	t := &Tree{
		st:     st,
		meta:   meta,
		ncols:  int(binary.LittleEndian.Uint32(d[4:8])),
		root:   pagestore.PageID(binary.LittleEndian.Uint32(d[8:12])),
		height: int(binary.LittleEndian.Uint32(d[12:16])),
		count:  int64(binary.LittleEndian.Uint64(d[16:24])),
	}
	t.derive()
	return t, nil
}

func (t *Tree) derive() {
	t.es = t.ncols * colSize
	t.leafCap = (t.st.PageSize() - headerSize) / t.es
	t.innerCap = (t.st.PageSize() - headerSize - childSize) / (t.es + childSize)
}

func (t *Tree) saveMeta() error {
	p, err := t.st.GetMut(t.meta)
	if err != nil {
		return err
	}
	d := p.Data()
	binary.LittleEndian.PutUint32(d[0:4], metaMagic)
	binary.LittleEndian.PutUint32(d[4:8], uint32(t.ncols))
	binary.LittleEndian.PutUint32(d[8:12], uint32(t.root))
	binary.LittleEndian.PutUint32(d[12:16], uint32(t.height))
	binary.LittleEndian.PutUint64(d[16:24], uint64(t.count))
	p.Release()
	return nil
}

// Meta returns the id of the tree's meta page (pass to Open).
func (t *Tree) Meta() pagestore.PageID { return t.meta }

// Cols returns the number of key columns.
func (t *Tree) Cols() int { return t.ncols }

// Len returns the number of entries in the tree.
func (t *Tree) Len() int64 { return t.count }

// Height returns the tree height in levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// --- node accessors -------------------------------------------------------

type nodeRef struct {
	p *pagestore.Page
	t *Tree
}

func (t *Tree) load(id pagestore.PageID) (nodeRef, error) {
	p, err := t.st.Get(id)
	if err != nil {
		return nodeRef{}, err
	}
	return nodeRef{p: p, t: t}, nil
}

func (n nodeRef) data() []byte   { return n.p.Data() }
func (n nodeRef) isLeaf() bool   { return n.data()[0] == leafType }
func (n nodeRef) count() int     { return int(binary.LittleEndian.Uint16(n.data()[2:4])) }
func (n nodeRef) setCount(c int) { binary.LittleEndian.PutUint16(n.data()[2:4], uint16(c)) }
func (n nodeRef) release()       { n.p.Release() }

// beginWrite declares the node is about to be modified. It must run before
// the first mutation (it stashes the pre-image for snapshot readers);
// within one commit epoch repeated calls are cheap no-ops.
func (n nodeRef) beginWrite() { n.p.BeginWrite() }

// next is the right sibling (leaf) or the leftmost child (inner).
func (n nodeRef) next() pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data()[4:8]))
}
func (n nodeRef) setNext(id pagestore.PageID) {
	binary.LittleEndian.PutUint32(n.data()[4:8], uint32(id))
}

// leafEntry returns the encoded key bytes of leaf entry i.
func (n nodeRef) leafEntry(i int) []byte {
	off := headerSize + i*n.t.es
	return n.data()[off : off+n.t.es]
}

// innerKey returns the encoded separator key i.
func (n nodeRef) innerKey(i int) []byte {
	off := headerSize + i*(n.t.es+childSize)
	return n.data()[off : off+n.t.es]
}

// child returns child i (0 = leftmost, stored in the header).
func (n nodeRef) child(i int) pagestore.PageID {
	if i == 0 {
		return n.next()
	}
	off := headerSize + (i-1)*(n.t.es+childSize) + n.t.es
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data()[off : off+childSize]))
}

func (n nodeRef) setChild(i int, id pagestore.PageID) {
	if i == 0 {
		n.setNext(id)
		return
	}
	off := headerSize + (i-1)*(n.t.es+childSize) + n.t.es
	binary.LittleEndian.PutUint32(n.data()[off:off+childSize], uint32(id))
}

// leafSearch returns the position of the first entry >= key and whether an
// exact match exists there.
func (n nodeRef) leafSearch(key []byte) (int, bool) {
	c := n.count()
	i := sort.Search(c, func(i int) bool {
		return compareEncoded(n.leafEntry(i), key) >= 0
	})
	if i < c && compareEncoded(n.leafEntry(i), key) == 0 {
		return i, true
	}
	return i, false
}

// innerSearch returns the child index to descend for key: the number of
// separators <= key.
func (n nodeRef) innerSearch(key []byte) int {
	c := n.count()
	return sort.Search(c, func(i int) bool {
		return compareEncoded(n.innerKey(i), key) > 0
	})
}

// insertLeafAt shifts entries right and writes key at position i.
func (n nodeRef) insertLeafAt(i int, key []byte) {
	n.beginWrite()
	es := n.t.es
	c := n.count()
	base := headerSize
	copy(n.data()[base+(i+1)*es:base+(c+1)*es], n.data()[base+i*es:base+c*es])
	copy(n.data()[base+i*es:base+(i+1)*es], key)
	n.setCount(c + 1)
}

// removeLeafAt deletes entry i.
func (n nodeRef) removeLeafAt(i int) {
	n.beginWrite()
	es := n.t.es
	c := n.count()
	base := headerSize
	copy(n.data()[base+i*es:], n.data()[base+(i+1)*es:base+c*es])
	n.setCount(c - 1)
}

// insertInnerAt inserts separator key with right child at position i.
func (n nodeRef) insertInnerAt(i int, key []byte, right pagestore.PageID) {
	n.beginWrite()
	ps := n.t.es + childSize
	c := n.count()
	base := headerSize
	copy(n.data()[base+(i+1)*ps:base+(c+1)*ps], n.data()[base+i*ps:base+c*ps])
	copy(n.data()[base+i*ps:base+i*ps+n.t.es], key)
	binary.LittleEndian.PutUint32(n.data()[base+i*ps+n.t.es:], uint32(right))
	n.setCount(c + 1)
}

// removeInnerAt deletes separator i together with its right child pointer.
func (n nodeRef) removeInnerAt(i int) {
	n.beginWrite()
	ps := n.t.es + childSize
	c := n.count()
	base := headerSize
	copy(n.data()[base+i*ps:], n.data()[base+(i+1)*ps:base+c*ps])
	n.setCount(c - 1)
}

// --- insert ----------------------------------------------------------------

// Insert adds key to the tree. It returns false if an identical tuple is
// already present (the tree stores a set of tuples).
func (t *Tree) Insert(key []int64) (bool, error) {
	if len(key) != t.ncols {
		return false, ErrWidth
	}
	ek := make([]byte, t.es)
	encodeKeyInto(ek, key)
	inserted, split, sep, right, err := t.insertRec(t.root, t.height, ek)
	if err != nil {
		return false, err
	}
	if split {
		// Grow a new root.
		newRootID, err := t.st.Allocate()
		if err != nil {
			return false, err
		}
		nr, err := t.load(newRootID)
		if err != nil {
			return false, err
		}
		nr.beginWrite()
		nr.data()[0] = innerType
		nr.setCount(0)
		nr.setChild(0, t.root)
		nr.insertInnerAt(0, sep, right)
		nr.release()
		t.root = newRootID
		t.height++
	}
	if inserted {
		t.count++
		if err := t.saveMeta(); err != nil {
			return false, err
		}
	} else if split {
		if err := t.saveMeta(); err != nil {
			return false, err
		}
	}
	return inserted, nil
}

// insertRec inserts ek under page id at the given level. If the node split,
// it returns the separator key and the new right sibling's id.
func (t *Tree) insertRec(id pagestore.PageID, level int, ek []byte) (inserted, split bool, sep []byte, right pagestore.PageID, err error) {
	n, err := t.load(id)
	if err != nil {
		return false, false, nil, 0, err
	}
	if level == 1 { // leaf
		defer n.release()
		i, found := n.leafSearch(ek)
		if found {
			return false, false, nil, 0, nil
		}
		if n.count() < t.leafCap {
			n.insertLeafAt(i, ek)
			return true, false, nil, 0, nil
		}
		// Split leaf, then insert into the proper half.
		sep, right, err = t.splitLeaf(n)
		if err != nil {
			return false, false, nil, 0, err
		}
		if compareEncoded(ek, sep) >= 0 {
			r, err2 := t.load(right)
			if err2 != nil {
				return false, false, nil, 0, err2
			}
			j, _ := r.leafSearch(ek)
			r.insertLeafAt(j, ek)
			r.release()
		} else {
			j, _ := n.leafSearch(ek)
			n.insertLeafAt(j, ek)
		}
		return true, true, sep, right, nil
	}
	// Inner node.
	ci := n.innerSearch(ek)
	childID := n.child(ci)
	n.release() // release during recursion to keep pin depth low
	inserted, csplit, csep, cright, err := t.insertRec(childID, level-1, ek)
	if err != nil || !csplit {
		return inserted, false, nil, 0, err
	}
	n, err = t.load(id)
	if err != nil {
		return false, false, nil, 0, err
	}
	defer n.release()
	ci = n.innerSearch(csep)
	if n.count() < t.innerCap {
		n.insertInnerAt(ci, csep, cright)
		return inserted, false, nil, 0, nil
	}
	// Split this inner node, then place the promoted separator.
	sep, right, err = t.splitInner(n)
	if err != nil {
		return false, false, nil, 0, err
	}
	if compareEncoded(csep, sep) >= 0 {
		r, err2 := t.load(right)
		if err2 != nil {
			return false, false, nil, 0, err2
		}
		j := r.innerSearch(csep)
		r.insertInnerAt(j, csep, cright)
		r.release()
	} else {
		j := n.innerSearch(csep)
		n.insertInnerAt(j, csep, cright)
	}
	return inserted, true, sep, right, nil
}

// splitLeaf moves the upper half of n into a new right sibling and returns
// the separator (first key of the right node) and the new node's id.
func (t *Tree) splitLeaf(n nodeRef) ([]byte, pagestore.PageID, error) {
	rightID, err := t.st.Allocate()
	if err != nil {
		return nil, 0, err
	}
	r, err := t.load(rightID)
	if err != nil {
		return nil, 0, err
	}
	defer r.release()
	n.beginWrite()
	r.beginWrite()
	r.data()[0] = leafType
	c := n.count()
	mid := c / 2
	es := t.es
	copy(r.data()[headerSize:], n.data()[headerSize+mid*es:headerSize+c*es])
	r.setCount(c - mid)
	r.setNext(n.next())
	n.setCount(mid)
	n.setNext(rightID)
	sep := make([]byte, es)
	copy(sep, r.leafEntry(0))
	return sep, rightID, nil
}

// splitInner pushes the middle separator of n up and moves the upper
// separators into a new right sibling.
func (t *Tree) splitInner(n nodeRef) ([]byte, pagestore.PageID, error) {
	rightID, err := t.st.Allocate()
	if err != nil {
		return nil, 0, err
	}
	r, err := t.load(rightID)
	if err != nil {
		return nil, 0, err
	}
	defer r.release()
	n.beginWrite()
	r.beginWrite()
	r.data()[0] = innerType
	c := n.count()
	mid := c / 2
	sep := make([]byte, t.es)
	copy(sep, n.innerKey(mid))
	// Right node: leftmost child = child(mid+1); keys mid+1..c-1.
	r.setChild(0, n.child(mid+1))
	ps := t.es + childSize
	copy(r.data()[headerSize:], n.data()[headerSize+(mid+1)*ps:headerSize+c*ps])
	r.setCount(c - mid - 1)
	n.setCount(mid)
	return sep, rightID, nil
}

// Contains reports whether the exact tuple key is present.
func (t *Tree) Contains(key []int64) (bool, error) {
	if len(key) != t.ncols {
		return false, ErrWidth
	}
	ek := make([]byte, t.es)
	encodeKeyInto(ek, key)
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.load(id)
		if err != nil {
			return false, err
		}
		id = n.child(n.innerSearch(ek))
		n.release()
	}
	n, err := t.load(id)
	if err != nil {
		return false, err
	}
	defer n.release()
	_, found := n.leafSearch(ek)
	return found, nil
}

// Drop frees every page of the tree, including its meta page. The tree must
// not be used afterwards.
func (t *Tree) Drop() error {
	if err := t.dropRec(t.root, t.height); err != nil {
		return err
	}
	return t.st.Free(t.meta)
}

func (t *Tree) dropRec(id pagestore.PageID, level int) error {
	if level > 1 {
		n, err := t.load(id)
		if err != nil {
			return err
		}
		children := make([]pagestore.PageID, 0, n.count()+1)
		for i := 0; i <= n.count(); i++ {
			children = append(children, n.child(i))
		}
		n.release()
		for _, c := range children {
			if err := t.dropRec(c, level-1); err != nil {
				return err
			}
		}
	}
	return t.st.Free(id)
}
