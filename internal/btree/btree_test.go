package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ritree/internal/pagestore"
)

func newTestTree(t *testing.T, ncols int) *Tree {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 64})
	tr, err := Create(st, ncols)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEncodeOrdering(t *testing.T) {
	vals := []int64{math.MinInt64, -1 << 40, -2, -1, 0, 1, 2, 1 << 40, math.MaxInt64}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a := EncodeKey(nil, []int64{vals[i]})
			b := EncodeKey(nil, []int64{vals[j]})
			got := compareEncoded(a, b)
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got != want {
				t.Fatalf("compare(%d,%d) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(a, b, c int64) bool {
		enc := EncodeKey(nil, []int64{a, b, c})
		out := make([]int64, 3)
		DecodeKey(out, enc)
		return out[0] == a && out[1] == b && out[2] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeLexicographic(t *testing.T) {
	// Property: encoded comparison equals tuple comparison.
	f := func(a1, a2, b1, b2 int64) bool {
		x := EncodeKey(nil, []int64{a1, a2})
		y := EncodeKey(nil, []int64{b1, b2})
		want := 0
		switch {
		case a1 < b1 || (a1 == b1 && a2 < b2):
			want = -1
		case a1 > b1 || (a1 == b1 && a2 > b2):
			want = 1
		}
		return compareEncoded(x, y) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertContainsDelete(t *testing.T) {
	tr := newTestTree(t, 2)
	ins, err := tr.Insert([]int64{10, 1})
	if err != nil || !ins {
		t.Fatalf("Insert = %v, %v", ins, err)
	}
	ins, err = tr.Insert([]int64{10, 1})
	if err != nil || ins {
		t.Fatalf("duplicate Insert = %v, %v; want false", ins, err)
	}
	ok, err := tr.Contains([]int64{10, 1})
	if err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	ok, err = tr.Contains([]int64{10, 2})
	if err != nil || ok {
		t.Fatalf("Contains absent = %v, %v", ok, err)
	}
	del, err := tr.Delete([]int64{10, 1})
	if err != nil || !del {
		t.Fatalf("Delete = %v, %v", del, err)
	}
	del, err = tr.Delete([]int64{10, 1})
	if err != nil || del {
		t.Fatalf("second Delete = %v, %v; want false", del, err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestWrongWidth(t *testing.T) {
	tr := newTestTree(t, 2)
	if _, err := tr.Insert([]int64{1}); err != ErrWidth {
		t.Fatalf("Insert width err = %v", err)
	}
	if _, err := tr.Delete([]int64{1, 2, 3}); err != ErrWidth {
		t.Fatalf("Delete width err = %v", err)
	}
	if _, err := tr.Contains([]int64{1, 2, 3}); err != ErrWidth {
		t.Fatalf("Contains width err = %v", err)
	}
}

func TestAscendingInsertScan(t *testing.T) {
	tr := newTestTree(t, 1)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tr.Insert([]int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	want := int64(0)
	err := tr.Scan(nil, nil, func(k []int64) bool {
		if k[0] != want {
			t.Fatalf("scan got %d, want %d", k[0], want)
		}
		want++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if want != n {
		t.Fatalf("scanned %d entries, want %d", want, n)
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d; expected splits with %d entries", tr.Height(), n)
	}
}

func TestDescendingInsertScan(t *testing.T) {
	tr := newTestTree(t, 1)
	const n = 2000
	for i := n - 1; i >= 0; i-- {
		if _, err := tr.Insert([]int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	if err := tr.Scan(nil, nil, func(k []int64) bool { got = append(got, k[0]); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTestTree(t, 2)
	for i := 0; i < 100; i++ {
		for j := 0; j < 3; j++ {
			if _, err := tr.Insert([]int64{int64(i), int64(j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Prefix range [10, 20] inclusive on first column.
	var got [][2]int64
	err := tr.Scan([]int64{10}, []int64{20}, func(k []int64) bool {
		got = append(got, [2]int64{k[0], k[1]})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11*3 {
		t.Fatalf("range scan returned %d entries, want %d", len(got), 11*3)
	}
	if got[0] != [2]int64{10, 0} || got[len(got)-1] != [2]int64{20, 2} {
		t.Fatalf("range endpoints wrong: %v .. %v", got[0], got[len(got)-1])
	}
	// Composite bound: (10,1) .. (11,0).
	got = got[:0]
	err = tr.Scan([]int64{10, 1}, []int64{11, 0}, func(k []int64) bool {
		got = append(got, [2]int64{k[0], k[1]})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{10, 1}, {10, 2}, {11, 0}}
	if len(got) != len(want) {
		t.Fatalf("composite scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("composite scan = %v, want %v", got, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTestTree(t, 1)
	for i := 0; i < 500; i++ {
		tr.Insert([]int64{int64(i)})
	}
	n := 0
	tr.Scan(nil, nil, func(k []int64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop scanned %d, want 10", n)
	}
}

func TestCountRange(t *testing.T) {
	tr := newTestTree(t, 1)
	for i := 0; i < 1000; i += 2 { // evens
		tr.Insert([]int64{int64(i)})
	}
	n, err := tr.Count([]int64{100}, []int64{200})
	if err != nil {
		t.Fatal(err)
	}
	if n != 51 {
		t.Fatalf("Count[100,200] = %d, want 51", n)
	}
}

func TestEmptyTreeOps(t *testing.T) {
	tr := newTestTree(t, 1)
	if del, _ := tr.Delete([]int64{1}); del {
		t.Fatal("Delete on empty tree returned true")
	}
	if ok, _ := tr.Contains([]int64{1}); ok {
		t.Fatal("Contains on empty tree returned true")
	}
	n := 0
	tr.Scan(nil, nil, func([]int64) bool { n++; return true })
	if n != 0 {
		t.Fatal("scan of empty tree yielded entries")
	}
}

func TestMinMaxKeys(t *testing.T) {
	tr := newTestTree(t, 1)
	keys := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	for _, k := range keys {
		if _, err := tr.Insert([]int64{k}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	tr.Scan(nil, nil, func(k []int64) bool { got = append(got, k[0]); return true })
	if len(got) != len(keys) {
		t.Fatalf("got %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], keys[i])
		}
	}
}

func TestDeleteManyRebalances(t *testing.T) {
	tr := newTestTree(t, 1)
	const n = 3000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		if _, err := tr.Insert([]int64{int64(v)}); err != nil {
			t.Fatal(err)
		}
	}
	hBefore := tr.Height()
	// Delete all but 10 in a different random order.
	perm2 := rand.New(rand.NewSource(2)).Perm(n)
	for _, v := range perm2[:n-10] {
		del, err := tr.Delete([]int64{int64(v)})
		if err != nil {
			t.Fatal(err)
		}
		if !del {
			t.Fatalf("Delete(%d) = false", v)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	if tr.Height() >= hBefore && hBefore > 1 {
		t.Fatalf("height did not shrink: before %d, after %d", hBefore, tr.Height())
	}
	// The survivors are the last 10 of perm2.
	survivors := append([]int(nil), perm2[n-10:]...)
	sort.Ints(survivors)
	var got []int64
	tr.Scan(nil, nil, func(k []int64) bool { got = append(got, k[0]); return true })
	if len(got) != 10 {
		t.Fatalf("scan found %d, want 10", len(got))
	}
	for i, s := range survivors {
		if got[i] != int64(s) {
			t.Fatalf("survivor %d = %d, want %d", i, got[i], s)
		}
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := newTestTree(t, 2)
	model := make(map[[2]int64]bool)
	keys := func() [][2]int64 {
		out := make([][2]int64, 0, len(model))
		for k := range model {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i][0] != out[j][0] {
				return out[i][0] < out[j][0]
			}
			return out[i][1] < out[j][1]
		})
		return out
	}
	domain := int64(200)
	for step := 0; step < 20000; step++ {
		k := [2]int64{rng.Int63n(domain), rng.Int63n(domain)}
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert
			ins, err := tr.Insert(k[:])
			if err != nil {
				t.Fatal(err)
			}
			if ins == model[k] {
				t.Fatalf("step %d: Insert(%v) = %v, model has %v", step, k, ins, model[k])
			}
			model[k] = true
		case 6, 7, 8: // delete
			del, err := tr.Delete(k[:])
			if err != nil {
				t.Fatal(err)
			}
			if del != model[k] {
				t.Fatalf("step %d: Delete(%v) = %v, model %v", step, k, del, model[k])
			}
			delete(model, k)
		default: // contains
			ok, err := tr.Contains(k[:])
			if err != nil {
				t.Fatal(err)
			}
			if ok != model[k] {
				t.Fatalf("step %d: Contains(%v) = %v, model %v", step, k, ok, model[k])
			}
		}
		if int64(len(model)) != tr.Len() {
			t.Fatalf("step %d: Len = %d, model %d", step, tr.Len(), len(model))
		}
		if step%2500 == 0 {
			want := keys()
			var got [][2]int64
			tr.Scan(nil, nil, func(k []int64) bool {
				got = append(got, [2]int64{k[0], k[1]})
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("step %d: scan %d entries, model %d", step, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: scan[%d] = %v, want %v", step, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPersistenceViaOpen(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, err := Create(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Insert([]int64{int64(i % 37), int64(i)})
	}
	meta := tr.Meta()
	wantLen := tr.Len()

	tr2, err := Open(st, meta)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != wantLen || tr2.Cols() != 2 {
		t.Fatalf("reopened: Len=%d Cols=%d, want %d/2", tr2.Len(), tr2.Cols(), wantLen)
	}
	ok, err := tr2.Contains([]int64{3, 3})
	if err != nil || !ok {
		t.Fatalf("reopened Contains = %v, %v", ok, err)
	}
}

func TestOpenNonMetaPageFails(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	id, _ := st.Allocate()
	if _, err := Open(st, id); err == nil {
		t.Fatal("Open of non-meta page succeeded")
	}
}

func TestDropFreesPages(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	before := st.NumAllocated()
	tr, _ := Create(st, 1)
	for i := 0; i < 2000; i++ {
		tr.Insert([]int64{int64(i)})
	}
	if st.NumAllocated() <= before+2 {
		t.Fatal("tree did not allocate pages?")
	}
	if err := tr.Drop(); err != nil {
		t.Fatal(err)
	}
	if got := st.NumAllocated(); got != before {
		t.Fatalf("after Drop, %d pages allocated, want %d", got, before)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 64})
	keys := make([][]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		keys = append(keys, []int64{int64(i * 3), int64(i)})
	}
	bl, err := Create(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.BulkLoadSlice(keys); err != nil {
		t.Fatal(err)
	}
	if bl.Len() != int64(len(keys)) {
		t.Fatalf("bulk Len = %d, want %d", bl.Len(), len(keys))
	}
	i := 0
	err = bl.Scan(nil, nil, func(k []int64) bool {
		if k[0] != keys[i][0] || k[1] != keys[i][1] {
			t.Fatalf("bulk entry %d = %v, want %v", i, k, keys[i])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("bulk scan %d entries, want %d", i, len(keys))
	}
	// Point lookups and deletes work on a bulk-loaded tree.
	if ok, _ := bl.Contains([]int64{3 * 1234, 1234}); !ok {
		t.Fatal("Contains failed on bulk-loaded tree")
	}
	if del, _ := bl.Delete([]int64{3 * 1234, 1234}); !del {
		t.Fatal("Delete failed on bulk-loaded tree")
	}
	if ok, _ := bl.Contains([]int64{3 * 1234, 1234}); ok {
		t.Fatal("entry still present after delete on bulk-loaded tree")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 1)
	err := tr.BulkLoadSlice([][]int64{{5}, {4}})
	if err == nil {
		t.Fatal("unsorted bulk load succeeded")
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 1)
	tr.Insert([]int64{1})
	if err := tr.BulkLoadSlice([][]int64{{2}}); err != ErrNotEmpty {
		t.Fatalf("bulk load on non-empty tree = %v, want ErrNotEmpty", err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 1)
	if err := tr.BulkLoadSlice(nil); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	tr.Insert([]int64{1}) // still usable
	if ok, _ := tr.Contains([]int64{1}); !ok {
		t.Fatal("tree unusable after empty bulk load")
	}
}

func TestIOCountsLogarithmic(t *testing.T) {
	// The defining property the RI-tree relies on: a point search costs
	// O(log_b n) page reads.
	st := pagestore.NewMem(pagestore.Options{PageSize: 2048, CacheSize: 8})
	tr, _ := Create(st, 2)
	const n = 100000
	keys := make([][]int64, n)
	for i := range keys {
		keys[i] = []int64{int64(i), int64(i)}
	}
	if err := tr.BulkLoadSlice(keys); err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	tr.Contains([]int64{n / 2, n / 2})
	got := st.Stats().LogicalReads
	if got > int64(tr.Height())+1 {
		t.Fatalf("point search cost %d logical reads, height %d", got, tr.Height())
	}
}

func TestPropertyInsertScanSorted(t *testing.T) {
	f := func(raw []int64) bool {
		st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 32})
		tr, err := Create(st, 1)
		if err != nil {
			return false
		}
		uniq := make(map[int64]bool)
		for _, v := range raw {
			tr.Insert([]int64{v})
			uniq[v] = true
		}
		var got []int64
		tr.Scan(nil, nil, func(k []int64) bool { got = append(got, k[0]); return true })
		if len(got) != len(uniq) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		for _, v := range got {
			if !uniq[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
