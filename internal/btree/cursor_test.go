package btree

import (
	"math"
	"testing"

	"ritree/internal/pagestore"
)

func TestPadKey(t *testing.T) {
	low := PadKey([]int64{5}, 3, false)
	if low[0] != 5 || low[1] != math.MinInt64 || low[2] != math.MinInt64 {
		t.Fatalf("low pad = %v", low)
	}
	high := PadKey([]int64{5, 7}, 3, true)
	if high[0] != 5 || high[1] != 7 || high[2] != math.MaxInt64 {
		t.Fatalf("high pad = %v", high)
	}
	// Input must not be mutated or aliased.
	in := []int64{1}
	out := PadKey(in, 2, true)
	out[0] = 99
	if in[0] != 1 {
		t.Fatal("PadKey aliased its input")
	}
}

func TestCursorWalksPageBoundaries(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 1)
	const n = 3000 // many leaves at 256-byte pages
	for i := 0; i < n; i++ {
		tr.Insert([]int64{int64(i)})
	}
	c := tr.SeekGE([]int64{0})
	count := 0
	var last int64 = -1
	for c.Valid() {
		k := c.Key()[0]
		if k != last+1 {
			t.Fatalf("cursor skipped: %d after %d", k, last)
		}
		last = k
		count++
		c.Next()
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if count != n {
		t.Fatalf("cursor saw %d entries, want %d", count, n)
	}
}

func TestCursorSeekSemantics(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 2)
	for i := 0; i < 100; i += 2 { // even first columns
		tr.Insert([]int64{int64(i), int64(i * 10)})
	}
	// Seek to a missing key lands on the next greater entry.
	c := tr.SeekGE([]int64{13})
	if !c.Valid() || c.Key()[0] != 14 {
		t.Fatalf("SeekGE(13) at %v", c.Key())
	}
	// Seek past the end is invalid.
	c = tr.SeekGE([]int64{1000})
	if c.Valid() {
		t.Fatalf("SeekGE past end valid at %v", c.Key())
	}
	c.Next() // must be a no-op, not a panic
	if c.Valid() {
		t.Fatal("Next on invalid cursor became valid")
	}
	// First positions at the smallest entry.
	c = tr.First()
	if !c.Valid() || c.Key()[0] != 0 {
		t.Fatalf("First at %v", c.Key())
	}
	// Width errors are reported through Err.
	c = tr.SeekGE([]int64{1, 2, 3})
	if c.Valid() || c.Err() == nil {
		t.Fatal("over-wide seek did not error")
	}
}

func TestCursorKeyReuseContract(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 1)
	tr.Insert([]int64{1})
	tr.Insert([]int64{2})
	c := tr.First()
	first := c.Key()
	v1 := first[0]
	c.Next()
	// The documented contract: Key's slice is reused across Next.
	if v1 == c.Key()[0] {
		t.Fatal("expected distinct key values")
	}
	if &first[0] != &c.Key()[0] {
		t.Skip("implementation may reallocate; reuse is an optimization, not a requirement")
	}
}

func TestScanWidthValidation(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 2)
	if err := tr.Scan([]int64{1, 2, 3}, nil, func([]int64) bool { return true }); err != ErrWidth {
		t.Fatalf("Scan over-wide low = %v", err)
	}
	if err := tr.Scan(nil, []int64{1, 2, 3}, func([]int64) bool { return true }); err != ErrWidth {
		t.Fatalf("Scan over-wide high = %v", err)
	}
}

func TestTreeMetaAccessors(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 256, CacheSize: 16})
	tr, _ := Create(st, 3)
	if tr.Cols() != 3 || tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("fresh tree meta: cols=%d len=%d h=%d", tr.Cols(), tr.Len(), tr.Height())
	}
	if tr.Meta() == pagestore.InvalidPage {
		t.Fatal("invalid meta page")
	}
}
