package btree

import (
	"math"

	"ritree/internal/pagestore"
)

// Cursor iterates entries in ascending key order. It snapshots one leaf at a
// time (copying the page contents and releasing the pin immediately), so a
// cursor never holds buffer-cache pages pinned between calls. Mutating the
// tree while a cursor is open yields unspecified results; the relational
// engine above serializes statements, matching the paper's setting.
type Cursor struct {
	t     *Tree
	buf   []byte
	n     int // entries in buf
	i     int // current entry index
	next  pagestore.PageID
	key   []int64
	valid bool
	err   error
}

// PadKey extends key to width columns: missing columns become math.MinInt64
// if high is false (a lower bound) or math.MaxInt64 if high is true (an
// upper bound). The input is not modified.
func PadKey(key []int64, width int, high bool) []int64 {
	out := make([]int64, width)
	copy(out, key)
	fill := int64(math.MinInt64)
	if high {
		fill = math.MaxInt64
	}
	for i := len(key); i < width; i++ {
		out[i] = fill
	}
	return out
}

// SeekGE returns a cursor positioned at the first entry >= key. A key
// shorter than the tree width is padded with math.MinInt64.
func (t *Tree) SeekGE(key []int64) *Cursor {
	c := &Cursor{t: t, key: make([]int64, t.ncols)}
	if len(key) > t.ncols {
		c.err = ErrWidth
		return c
	}
	full := PadKey(key, t.ncols, false)
	ek := make([]byte, t.es)
	encodeKeyInto(ek, full)

	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.load(id)
		if err != nil {
			c.err = err
			return c
		}
		id = n.child(n.innerSearch(ek))
		n.release()
	}
	n, err := t.load(id)
	if err != nil {
		c.err = err
		return c
	}
	i, _ := n.leafSearch(ek)
	c.loadFrom(n, i) // releases n
	return c
}

// First returns a cursor positioned at the smallest entry.
func (t *Tree) First() *Cursor { return t.SeekGE(nil) }

// loadFrom copies leaf n's entries into the cursor starting at index i and
// releases the node. If the leaf is exhausted it chains to right siblings.
func (c *Cursor) loadFrom(n nodeRef, i int) {
	for {
		cnt := n.count()
		if i < cnt {
			need := (cnt - i) * c.t.es
			if cap(c.buf) < need {
				c.buf = make([]byte, need)
			}
			c.buf = c.buf[:need]
			copy(c.buf, n.data()[headerSize+i*c.t.es:headerSize+cnt*c.t.es])
			c.n = cnt - i
			c.i = 0
			c.next = n.next()
			n.release()
			c.valid = true
			DecodeKey(c.key, c.buf)
			return
		}
		nextID := n.next()
		n.release()
		if nextID == pagestore.InvalidPage {
			c.valid = false
			return
		}
		var err error
		n, err = c.t.load(nextID)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		i = 0
	}
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid && c.err == nil }

// Err returns the first error the cursor encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Key returns the current entry. The slice is reused by Next; copy it to
// retain it.
func (c *Cursor) Key() []int64 { return c.key }

// Next advances to the next entry.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.i++
	if c.i < c.n {
		DecodeKey(c.key, c.buf[c.i*c.t.es:])
		return
	}
	if c.next == pagestore.InvalidPage {
		c.valid = false
		return
	}
	n, err := c.t.load(c.next)
	if err != nil {
		c.err = err
		c.valid = false
		return
	}
	c.loadFrom(n, 0)
}

// Scan calls fn for every entry k with low <= k <= high (bounds padded to
// full width with -inf/+inf respectively). Iteration stops early when fn
// returns false.
func (t *Tree) Scan(low, high []int64, fn func(key []int64) bool) error {
	if len(low) > t.ncols || len(high) > t.ncols {
		return ErrWidth
	}
	hi := PadKey(high, t.ncols, true)
	ehi := make([]byte, t.es)
	encodeKeyInto(ehi, hi)
	c := t.SeekGE(low)
	for c.Valid() {
		cur := c.buf[c.i*t.es : (c.i+1)*t.es]
		if compareEncoded(cur, ehi) > 0 {
			break
		}
		if !fn(c.key) {
			break
		}
		c.Next()
	}
	return c.Err()
}

// Count returns the number of entries k with low <= k <= high.
func (t *Tree) Count(low, high []int64) (int64, error) {
	var n int64
	err := t.Scan(low, high, func([]int64) bool { n++; return true })
	return n, err
}
