package btree

import "encoding/binary"

// Keys are tuples of int64 columns encoded big-endian with the sign bit
// flipped, so that bytewise comparison of the encoded form equals numeric
// lexicographic comparison of the tuple. This mirrors how relational
// composite indexes order multi-column keys.

const colSize = 8

const signFlip = uint64(1) << 63

// EncodeKey appends the encoded form of key to dst and returns the result.
func EncodeKey(dst []byte, key []int64) []byte {
	for _, v := range key {
		var b [colSize]byte
		binary.BigEndian.PutUint64(b[:], uint64(v)^signFlip)
		dst = append(dst, b[:]...)
	}
	return dst
}

// encodeKeyInto writes the encoded form of key into dst, which must have
// room for len(key)*colSize bytes.
func encodeKeyInto(dst []byte, key []int64) {
	for i, v := range key {
		binary.BigEndian.PutUint64(dst[i*colSize:], uint64(v)^signFlip)
	}
}

// DecodeKey decodes len(dst) columns from src into dst.
func DecodeKey(dst []int64, src []byte) {
	for i := range dst {
		dst[i] = int64(binary.BigEndian.Uint64(src[i*colSize:]) ^ signFlip)
	}
}

// compareEncoded compares two encoded keys of equal width bytewise.
func compareEncoded(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
