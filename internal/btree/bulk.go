package btree

import (
	"errors"
	"fmt"

	"ritree/internal/pagestore"
)

// ErrNotEmpty is returned by BulkLoad on a tree that already has entries.
var ErrNotEmpty = errors.New("btree: bulk load requires an empty tree")

// ErrUnsorted is returned by BulkLoad when the input is not strictly
// ascending.
var ErrUnsorted = errors.New("btree: bulk load input not strictly ascending")

// bulkFill is the leaf/inner fill factor used by BulkLoad, in percent.
// Bulk-loaded indexes are tightly packed, which is exactly the "good
// clustering properties of the bulk loaded indexes" the paper observes for
// its competitors in §6.3.
const bulkFill = 90

// BulkLoad builds the tree from keys delivered in strictly ascending order
// by next (which returns ok=false when exhausted). The tree must be empty.
func (t *Tree) BulkLoad(next func() ([]int64, bool)) error {
	if t.count != 0 || t.height != 1 {
		return ErrNotEmpty
	}
	leafLimit := t.leafCap * bulkFill / 100
	if leafLimit < 1 {
		leafLimit = 1
	}

	type levelNode struct {
		id       pagestore.PageID
		firstKey []byte // encoded first key of the subtree; nil for the very first node
	}
	var leaves []levelNode

	cur, err := t.load(t.root)
	if err != nil {
		return err
	}
	cur.beginWrite()
	cur.data()[0] = leafType
	leaves = append(leaves, levelNode{id: t.root})
	prev := make([]byte, t.es)
	havePrev := false
	var total int64

	for {
		key, ok := next()
		if !ok {
			break
		}
		if len(key) != t.ncols {
			cur.release()
			return ErrWidth
		}
		ek := make([]byte, t.es)
		encodeKeyInto(ek, key)
		if havePrev && compareEncoded(prev, ek) >= 0 {
			cur.release()
			return fmt.Errorf("%w: %v after previous", ErrUnsorted, key)
		}
		copy(prev, ek)
		havePrev = true

		if cur.count() >= leafLimit {
			newID, err := t.st.Allocate()
			if err != nil {
				cur.release()
				return err
			}
			n, err := t.load(newID)
			if err != nil {
				cur.release()
				return err
			}
			n.beginWrite()
			n.data()[0] = leafType
			cur.setNext(newID)
			cur.release()
			cur = n
			leaves = append(leaves, levelNode{id: newID, firstKey: ek})
		}
		// cur was beginWrite'd when it became the fill target, so the tight
		// per-key loop does not touch the store lock.
		c := cur.count()
		copy(cur.data()[headerSize+c*t.es:], ek)
		cur.setCount(c + 1)
		total++
	}
	cur.release()

	// Build inner levels bottom-up.
	level := leaves
	height := 1
	innerLimit := t.innerCap * bulkFill / 100
	if innerLimit < 2 {
		innerLimit = 2
	}
	fanout := innerLimit + 1 // children per inner node
	for len(level) > 1 {
		var parents []levelNode
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			group := level[start:end]
			id, err := t.st.Allocate()
			if err != nil {
				return err
			}
			n, err := t.load(id)
			if err != nil {
				return err
			}
			n.beginWrite()
			n.data()[0] = innerType
			n.setChild(0, group[0].id)
			for i, ch := range group[1:] {
				ps := t.es + childSize
				off := headerSize + i*ps
				copy(n.data()[off:off+t.es], ch.firstKey)
				n.setCount(i + 1)
				n.setChild(i+1, ch.id)
			}
			n.release()
			parents = append(parents, levelNode{id: id, firstKey: group[0].firstKey})
		}
		level = parents
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = total
	return t.saveMeta()
}

// BulkLoadSlice bulk-loads from an in-memory slice of keys, which must be
// strictly ascending.
func (t *Tree) BulkLoadSlice(keys [][]int64) error {
	i := 0
	return t.BulkLoad(func() ([]int64, bool) {
		if i >= len(keys) {
			return nil, false
		}
		k := keys[i]
		i++
		return k, true
	})
}
