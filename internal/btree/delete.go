package btree

import "ritree/internal/pagestore"

// minLeaf and minInner are the underflow thresholds. The root is exempt.
func (t *Tree) minLeaf() int  { return t.leafCap / 2 }
func (t *Tree) minInner() int { return t.innerCap / 2 }

// Delete removes the exact tuple key. It returns false if the tuple was not
// present. Nodes are rebalanced (borrow or merge) so that occupancy stays
// above half outside the root, preserving O(log_b n) behaviour under mixed
// workloads.
func (t *Tree) Delete(key []int64) (bool, error) {
	if len(key) != t.ncols {
		return false, ErrWidth
	}
	ek := make([]byte, t.es)
	encodeKeyInto(ek, key)
	deleted, err := t.deleteRec(t.root, t.height, ek)
	if err != nil || !deleted {
		return deleted, err
	}
	t.count--
	// Collapse the root while it is an inner node with no separators.
	for t.height > 1 {
		n, err := t.load(t.root)
		if err != nil {
			return false, err
		}
		if n.count() > 0 {
			n.release()
			break
		}
		newRoot := n.child(0)
		n.release()
		if err := t.st.Free(t.root); err != nil {
			return false, err
		}
		t.root = newRoot
		t.height--
	}
	return true, t.saveMeta()
}

func (t *Tree) deleteRec(id pagestore.PageID, level int, ek []byte) (bool, error) {
	if level == 1 {
		n, err := t.load(id)
		if err != nil {
			return false, err
		}
		defer n.release()
		i, found := n.leafSearch(ek)
		if !found {
			return false, nil
		}
		n.removeLeafAt(i)
		return true, nil
	}
	n, err := t.load(id)
	if err != nil {
		return false, err
	}
	ci := n.innerSearch(ek)
	childID := n.child(ci)
	n.release()
	deleted, err := t.deleteRec(childID, level-1, ek)
	if err != nil || !deleted {
		return deleted, err
	}
	// Repair a possible underflow of the child.
	n, err = t.load(id)
	if err != nil {
		return false, err
	}
	defer n.release()
	c, err := t.load(childID)
	if err != nil {
		return false, err
	}
	min := t.minInner()
	if level-1 == 1 {
		min = t.minLeaf()
	}
	if c.count() >= min {
		c.release()
		return true, nil
	}
	return true, t.rebalance(n, ci, c, level-1)
}

// rebalance fixes the underflowing child at index ci of parent. The child
// node c is loaded; rebalance releases it.
func (t *Tree) rebalance(parent nodeRef, ci int, c nodeRef, childLevel int) error {
	leaf := childLevel == 1
	min := t.minInner()
	if leaf {
		min = t.minLeaf()
	}
	// Try borrowing from the left sibling.
	if ci > 0 {
		l, err := t.load(parent.child(ci - 1))
		if err != nil {
			c.release()
			return err
		}
		if l.count() > min {
			if leaf {
				last := l.count() - 1
				c.insertLeafAt(0, l.leafEntry(last))
				l.beginWrite()
				l.setCount(last)
				parent.beginWrite()
				copy(parent.innerKey(ci-1), c.leafEntry(0))
			} else {
				lc := l.count()
				oldLeftmost := c.child(0)
				c.insertInnerAt(0, parent.innerKey(ci-1), oldLeftmost)
				c.setChild(0, l.child(lc))
				parent.beginWrite()
				copy(parent.innerKey(ci-1), l.innerKey(lc-1))
				l.beginWrite()
				l.setCount(lc - 1)
			}
			l.release()
			c.release()
			return nil
		}
		l.release()
	}
	// Try borrowing from the right sibling.
	if ci < parent.count() {
		r, err := t.load(parent.child(ci + 1))
		if err != nil {
			c.release()
			return err
		}
		if r.count() > min {
			if leaf {
				c.insertLeafAt(c.count(), r.leafEntry(0))
				r.removeLeafAt(0)
				parent.beginWrite()
				copy(parent.innerKey(ci), r.leafEntry(0))
			} else {
				c.insertInnerAt(c.count(), parent.innerKey(ci), r.child(0))
				parent.beginWrite()
				copy(parent.innerKey(ci), r.innerKey(0))
				r.beginWrite()
				r.setChild(0, r.child(1))
				r.removeInnerAt(0)
			}
			r.release()
			c.release()
			return nil
		}
		r.release()
	}
	// Merge with a sibling. Prefer merging into the left sibling.
	if ci > 0 {
		l, err := t.load(parent.child(ci - 1))
		if err != nil {
			c.release()
			return err
		}
		return t.merge(parent, ci-1, l, c, leaf)
	}
	r, err := t.load(parent.child(ci + 1))
	if err != nil {
		c.release()
		return err
	}
	return t.merge(parent, ci, c, r, leaf)
}

// merge folds right into left, removes separator sepIdx from parent, and
// frees right's page. It releases both left and right; the caller keeps
// ownership of parent only.
func (t *Tree) merge(parent nodeRef, sepIdx int, left, right nodeRef, leaf bool) error {
	rightID := right.p.ID()
	if leaf {
		es := t.es
		lc, rc := left.count(), right.count()
		left.beginWrite()
		copy(left.data()[headerSize+lc*es:], right.data()[headerSize:headerSize+rc*es])
		left.setCount(lc + rc)
		left.setNext(right.next())
	} else {
		ps := t.es + childSize
		lc, rc := left.count(), right.count()
		left.insertInnerAt(lc, parent.innerKey(sepIdx), right.child(0))
		copy(left.data()[headerSize+(lc+1)*ps:], right.data()[headerSize:headerSize+rc*ps])
		left.setCount(lc + 1 + rc)
	}
	parent.removeInnerAt(sepIdx)
	left.release()
	right.release()
	return t.st.Free(rightID)
}
