package interval

import (
	"testing"
	"testing/quick"
)

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{New(1, 5), New(5, 9), true},    // touch at a point
		{New(1, 5), New(6, 9), false},   // disjoint
		{New(1, 9), New(3, 4), true},    // containment
		{New(3, 3), New(1, 9), true},    // point inside
		{New(3, 3), New(3, 3), true},    // identical points
		{New(3, 3), New(4, 4), false},   // distinct points
		{New(0, 0), New(0, 10), true},   // shared lower bound
		{New(-5, -1), New(0, 2), false}, // negative side
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v intersects %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("%v intersects %v = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestPointHelpers(t *testing.T) {
	p := Point(7)
	if !p.Valid() || p.Length() != 0 {
		t.Fatalf("Point(7) = %v", p)
	}
	if !p.ContainsPoint(7) || p.ContainsPoint(8) {
		t.Fatal("ContainsPoint wrong for point interval")
	}
	if New(2, 9).String() != "[2, 9]" {
		t.Fatalf("String = %q", New(2, 9).String())
	}
	if New(2, Infinity).String() != "[2, ∞)" {
		t.Fatalf("String = %q", New(2, Infinity).String())
	}
	if New(2, NowMarker).String() != "[2, now]" {
		t.Fatalf("String = %q", New(2, NowMarker).String())
	}
}

// normalize returns a valid interval from two arbitrary int16 seeds (small
// domain so that endpoint collisions are actually exercised).
func normalize(x, y int16) Interval {
	a, b := int64(x)%64, int64(y)%64
	if a > b {
		a, b = b, a
	}
	return New(a, b)
}

func TestClassifyIsTotalAndConsistent(t *testing.T) {
	f := func(x1, y1, x2, y2 int16) bool {
		a, b := normalize(x1, y1), normalize(x2, y2)
		r := Classify(a, b)
		if r < 0 || int(r) >= NumRelations {
			return false
		}
		// Classification must agree with intersection semantics.
		intersects := r != Before && r != After
		return intersects == a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyInverse(t *testing.T) {
	f := func(x1, y1, x2, y2 int16) bool {
		a, b := normalize(x1, y1), normalize(x2, y2)
		return Classify(a, b).Inverse() == Classify(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHoldsPartitionsNonDegeneratePairs(t *testing.T) {
	// For non-degenerate intervals, exactly one of the 13 relations holds,
	// and it is the one Classify returns.
	for al := int64(0); al < 8; al++ {
		for au := al + 1; au < 9; au++ {
			for bl := int64(0); bl < 8; bl++ {
				for bu := bl + 1; bu < 9; bu++ {
					a, b := New(al, au), New(bl, bu)
					holds := 0
					var which Relation
					for r := Relation(0); int(r) < NumRelations; r++ {
						if r.Holds(a, b) {
							holds++
							which = r
						}
					}
					if holds != 1 {
						t.Fatalf("%v vs %v: %d relations hold", a, b, holds)
					}
					if got := Classify(a, b); got != which {
						t.Fatalf("%v vs %v: Classify=%v, Holds=%v", a, b, got, which)
					}
				}
			}
		}
	}
}

func TestInverseInvolution(t *testing.T) {
	for r := Relation(0); int(r) < NumRelations; r++ {
		if r.Inverse().Inverse() != r {
			t.Fatalf("%v: inverse not involutive", r)
		}
	}
	if Equals.Inverse() != Equals {
		t.Fatal("Equals must be self-inverse")
	}
	if Before.Inverse() != After || Meets.Inverse() != MetBy ||
		Overlaps.Inverse() != OverlappedBy || Starts.Inverse() != StartedBy ||
		Contains.Inverse() != During || FinishedBy.Inverse() != Finishes {
		t.Fatal("inverse pairs wrong")
	}
}

func TestRelationNames(t *testing.T) {
	seen := map[string]bool{}
	for r := Relation(0); int(r) < NumRelations; r++ {
		n := r.String()
		if n == "" || n == "invalid" || seen[n] {
			t.Fatalf("bad or duplicate name %q for relation %d", n, r)
		}
		seen[n] = true
	}
	if Relation(-1).String() != "invalid" || Relation(99).String() != "invalid" {
		t.Fatal("out-of-range relations must stringify as invalid")
	}
}

func TestClassifyDegeneratePoints(t *testing.T) {
	// Points never classify as strictly-overlapping; they fall into the
	// bound-sharing or ordering relations and stay consistent with
	// intersection semantics.
	cases := []struct {
		a, b Interval
		want Relation
	}{
		{Point(5), Point(5), Equals},
		{Point(4), Point(5), Before},
		{Point(6), Point(5), After},
		{Point(5), New(5, 9), Starts},
		{New(5, 9), Point(5), StartedBy},
		{Point(9), New(5, 9), Finishes},
		{New(5, 9), Point(9), FinishedBy},
		{Point(7), New(5, 9), During},
		{New(5, 9), Point(7), Contains},
	}
	for _, c := range cases {
		if got := Classify(c.a, c.b); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
