package interval

// Generating regions for Allen-relation queries (paper §4.5): every
// fine-grained topological predicate "i r q" is answered by running an
// ordinary *intersection* query over a region derived from the predicate,
// then applying the exact relation as a residual filter to the candidates.
// The region is chosen so it provably contains every qualifying interval;
// for the bound-referencing predicates (meets, starts, finishes, ...) it
// is a single stabbing point, which is why both interval bounds are served
// equally well — unlike the IB+-tree or the IST composite indexes, which
// degrade to O(n) on the "wrong" bound.
//
// This used to live inside internal/ritree; it is hoisted here so that
// every access method behind the unified collection API (RI-tree, HINT,
// any registered indextype) shares one Allen-query evaluation strategy.

// QueryFloor and QueryCeil bound generating regions for the open-ended
// predicates before and after. They lie safely outside any data space
// while keeping shifted arithmetic overflow-free in every access method.
const (
	QueryFloor = -(int64(1) << 61)
	QueryCeil  = int64(1) << 61
)

// GeneratingRegion returns the intersection region that is guaranteed to
// contain every interval i with "i r q". ok is false when the region is
// empty (no interval can satisfy the predicate).
func GeneratingRegion(r Relation, q Interval) (region Interval, ok bool) {
	switch r {
	case Before:
		if q.Lower == QueryFloor {
			return Interval{}, false
		}
		return New(QueryFloor, q.Lower-1), true
	case After:
		if q.Upper >= QueryCeil {
			return Interval{}, false
		}
		return New(q.Upper+1, QueryCeil), true
	case Meets, Overlaps, FinishedBy, Contains, Starts, Equals, StartedBy:
		// All of these require i to contain the query's lower bound.
		return Point(q.Lower), true
	case MetBy, OverlappedBy, Finishes:
		// All of these require i to contain the query's upper bound.
		return Point(q.Upper), true
	case During:
		// i lies strictly inside q, hence intersects q.
		return q, true
	}
	return Interval{}, false
}
