// Package interval defines the shared interval value type, the data-space
// domain used throughout the paper's experiments, and Allen's thirteen
// topological relations between intervals (paper §4.5).
package interval

import (
	"fmt"
	"math"
)

// Domain bounds of the paper's experimental data space: "The bounding
// points of all intervals lie in the domain of [0, 2^20-1]" (§6.1).
const (
	DomainMin int64 = 0
	DomainMax int64 = 1<<20 - 1
)

// Infinity is the sentinel upper-bound value for intervals that never end
// (paper §4.6). It compares greater than every finite bound.
const Infinity int64 = math.MaxInt64

// NowMarker is the sentinel upper-bound value stored for now-relative
// intervals, whose effective upper bound is the current time at query
// evaluation (paper §4.6).
const NowMarker int64 = math.MaxInt64 - 1

// Interval is a closed interval [Lower, Upper] over int64. Points are
// degenerate intervals with Lower == Upper.
type Interval struct {
	Lower int64
	Upper int64
}

// New returns the interval [lower, upper].
func New(lower, upper int64) Interval { return Interval{Lower: lower, Upper: upper} }

// Point returns the degenerate interval [p, p].
func Point(p int64) Interval { return Interval{Lower: p, Upper: p} }

// Valid reports whether Lower <= Upper.
func (iv Interval) Valid() bool { return iv.Lower <= iv.Upper }

// Length returns Upper - Lower (0 for points).
func (iv Interval) Length() int64 { return iv.Upper - iv.Lower }

// Intersects reports whether iv and q share at least one point.
func (iv Interval) Intersects(q Interval) bool {
	return iv.Lower <= q.Upper && q.Lower <= iv.Upper
}

// ContainsPoint reports whether p lies within iv.
func (iv Interval) ContainsPoint(p int64) bool {
	return iv.Lower <= p && p <= iv.Upper
}

// String formats the interval as [lower, upper], with ∞ and now markers.
func (iv Interval) String() string {
	switch iv.Upper {
	case Infinity:
		return fmt.Sprintf("[%d, ∞)", iv.Lower)
	case NowMarker:
		return fmt.Sprintf("[%d, now]", iv.Lower)
	}
	return fmt.Sprintf("[%d, %d]", iv.Lower, iv.Upper)
}
