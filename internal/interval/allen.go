package interval

// Relation enumerates Allen's thirteen topological relations between two
// intervals. The paper (§4.5) notes that "in addition to the intersection
// query predicate, there are 13 more fine-grained temporal relationships
// between intervals" and that the RI-tree supports them efficiently,
// including the ones competitors handle poorly because they refer to the
// "wrong" bound (meets/before use the lower bound, met-by/after the upper).
type Relation int

// The thirteen relations, read as "A <relation> B".
const (
	Before       Relation = iota // A ends before B starts
	Meets                        // A's upper equals B's lower
	Overlaps                     // A starts first, they overlap, B ends last
	FinishedBy                   // A contains B and they share the upper bound
	Contains                     // A strictly contains B
	Starts                       // share the lower bound, A ends first
	Equals                       // identical intervals
	StartedBy                    // share the lower bound, B ends first
	During                       // B strictly contains A
	Finishes                     // share the upper bound, B starts first
	OverlappedBy                 // B starts first, they overlap, A ends last
	MetBy                        // B's upper equals A's lower
	After                        // A starts after B ends
	numRelations
)

// NumRelations is the number of distinct Allen relations.
const NumRelations = int(numRelations)

var relationNames = [...]string{
	Before:       "before",
	Meets:        "meets",
	Overlaps:     "overlaps",
	FinishedBy:   "finished-by",
	Contains:     "contains",
	Starts:       "starts",
	Equals:       "equals",
	StartedBy:    "started-by",
	During:       "during",
	Finishes:     "finishes",
	OverlappedBy: "overlapped-by",
	MetBy:        "met-by",
	After:        "after",
}

// String returns the relation's conventional name.
func (r Relation) String() string {
	if r < 0 || int(r) >= NumRelations {
		return "invalid"
	}
	return relationNames[r]
}

// Inverse returns the converse relation: if A r B then B r.Inverse() A.
func (r Relation) Inverse() Relation {
	// The enumeration is ordered so that the converse of relation i is
	// relation NumRelations-1-i (Equals is self-inverse in the middle).
	return Relation(NumRelations - 1 - int(r))
}

// Holds reports whether "a r b" under the classic strict Allen semantics.
// Degenerate (point) intervals make some relations unsatisfiable (e.g. a
// point can never strictly overlap anything); Classify below remains total
// by using intersection semantics for closed integer intervals.
func (r Relation) Holds(a, b Interval) bool {
	switch r {
	case Before:
		return a.Upper < b.Lower
	case Meets:
		return a.Upper == b.Lower && a.Lower < b.Lower && a.Upper < b.Upper
	case Overlaps:
		return a.Lower < b.Lower && b.Lower < a.Upper && a.Upper < b.Upper
	case FinishedBy:
		return a.Lower < b.Lower && a.Upper == b.Upper
	case Contains:
		return a.Lower < b.Lower && b.Upper < a.Upper
	case Starts:
		return a.Lower == b.Lower && a.Upper < b.Upper
	case Equals:
		return a.Lower == b.Lower && a.Upper == b.Upper
	case StartedBy:
		return a.Lower == b.Lower && b.Upper < a.Upper
	case During:
		return b.Lower < a.Lower && a.Upper < b.Upper
	case Finishes:
		return b.Lower < a.Lower && a.Upper == b.Upper
	case OverlappedBy:
		return b.Lower < a.Lower && a.Lower < b.Upper && b.Upper < a.Upper
	case MetBy:
		return a.Lower == b.Upper && b.Lower < a.Lower && b.Upper < a.Upper
	case After:
		return b.Upper < a.Lower
	}
	return false
}

// Classify returns the unique Allen relation between a and b for
// non-degenerate intervals (Lower < Upper). For degenerate intervals the
// endpoint-equality cases (Meets/MetBy) collapse into the bound-sharing
// relations; Classify resolves them by endpoint comparison and remains a
// total function.
func Classify(a, b Interval) Relation {
	switch {
	case a.Upper < b.Lower:
		return Before
	case b.Upper < a.Lower:
		return After
	case a.Lower == b.Lower && a.Upper == b.Upper:
		return Equals
	case a.Upper == b.Lower && a.Lower < b.Lower && a.Upper < b.Upper:
		return Meets
	case a.Lower == b.Upper && b.Lower < a.Lower && b.Upper < a.Upper:
		return MetBy
	case a.Lower == b.Lower:
		if a.Upper < b.Upper {
			return Starts
		}
		return StartedBy
	case a.Upper == b.Upper:
		if a.Lower < b.Lower {
			return FinishedBy
		}
		return Finishes
	case a.Lower < b.Lower && b.Upper < a.Upper:
		return Contains
	case b.Lower < a.Lower && a.Upper < b.Upper:
		return During
	case a.Lower < b.Lower:
		return Overlaps
	default:
		return OverlappedBy
	}
}
