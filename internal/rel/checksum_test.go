package rel

import (
	"testing"

	"ritree/internal/pagestore"
)

func TestContentChecksumMaintenance(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{})
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("t", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	empty := tab.ContentChecksum()

	r1, err := tab.Insert([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	afterOne := tab.ContentChecksum()
	if afterOne == empty {
		t.Fatal("insert did not change the content checksum")
	}
	r2, err := tab.Insert([]int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}

	// Deleting what was inserted restores the previous checksum (XOR is
	// self-inverse)...
	if _, err := tab.DeleteRow(r2); err != nil {
		t.Fatal(err)
	}
	if got := tab.ContentChecksum(); got != afterOne {
		t.Fatalf("checksum after insert+delete = %x, want %x", got, afterOne)
	}
	// ...while zero-net-row churn that changes content changes it: the
	// exact divergence the row-count staleness check cannot see.
	if _, err := tab.Insert([]int64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.DeleteRow(r1); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 1 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
	if got := tab.ContentChecksum(); got == afterOne {
		t.Fatal("zero-net-row DML left the checksum unchanged")
	}

	// Update folds old out and new in.
	var onlyRid RowID
	if err := tab.Scan(func(rid RowID, _ []int64) bool { onlyRid = rid; return false }); err != nil {
		t.Fatal(err)
	}
	before := tab.ContentChecksum()
	if err := tab.Update(onlyRid, []int64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if tab.ContentChecksum() == before {
		t.Fatal("update did not change the checksum")
	}
	if err := tab.Update(onlyRid, []int64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if got := tab.ContentChecksum(); got != before {
		t.Fatalf("update round-trip checksum = %x, want %x", got, before)
	}
}

func TestContentChecksumPersists(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{})
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert([]int64{42}); err != nil {
		t.Fatal(err)
	}
	want := tab.ContentChecksum()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab2.ContentChecksum(); got != want {
		t.Fatalf("reopened checksum = %x, want %x", got, want)
	}
}
