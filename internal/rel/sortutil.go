package rel

import "sort"

// CompareTuples compares two int64 tuples lexicographically. Shorter tuples
// sort before longer ones with an equal prefix.
func CompareTuples(a, b []int64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func sortSliceOfTuples(keys [][]int64) {
	sort.Slice(keys, func(i, j int) bool { return CompareTuples(keys[i], keys[j]) < 0 })
}

// flatTuples sorts fixed-stride tuples stored back to back in one flat
// slice — the memory-lean representation used when backfilling large
// indexes (a [][]int64 of 10M keys would cost ~4x the memory in slice
// headers and pointer chasing).
type flatTuples struct {
	data   []int64
	stride int
	tmp    []int64
}

func newFlatTuples(stride int, capacity int) *flatTuples {
	return &flatTuples{
		data:   make([]int64, 0, capacity*stride),
		stride: stride,
		tmp:    make([]int64, stride),
	}
}

func (f *flatTuples) appendTuple(t []int64) { f.data = append(f.data, t...) }

func (f *flatTuples) Len() int { return len(f.data) / f.stride }

func (f *flatTuples) Less(i, j int) bool {
	a := f.data[i*f.stride : (i+1)*f.stride]
	b := f.data[j*f.stride : (j+1)*f.stride]
	return CompareTuples(a, b) < 0
}

func (f *flatTuples) Swap(i, j int) {
	a := f.data[i*f.stride : (i+1)*f.stride]
	b := f.data[j*f.stride : (j+1)*f.stride]
	copy(f.tmp, a)
	copy(a, b)
	copy(b, f.tmp)
}

func (f *flatTuples) sort() { sort.Sort(f) }

// next returns an iterator yielding tuples in order (for btree.BulkLoad).
func (f *flatTuples) next() func() ([]int64, bool) {
	i := 0
	return func() ([]int64, bool) {
		if i >= f.Len() {
			return nil, false
		}
		t := f.data[i*f.stride : (i+1)*f.stride]
		i++
		return t, true
	}
}
