package rel

import "fmt"

// Table is a heap-organized relation with any number of secondary indexes.
// DML on the table maintains all indexes. Exported methods serialize
// through the owning DB's lock; scans must not mutate the table from their
// callback (collect row ids first, then delete — see DeleteWhere).
type Table struct {
	db      *DB
	name    string
	schema  Schema
	h       *heap
	indexes []*Index
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int64 {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.h.rowCount
}

// ContentChecksum returns the table's content checksum: the XOR of
// RowChecksum(row, rid) over its live rows, maintained incrementally and
// persisted in the table header. Two relations (or a relation and an
// index mirror) that were maintained through the same DML hold the same
// value — a divergence that nets to zero rows still changes it, which is
// what the domain-index staleness check relies on.
func (t *Table) ContentChecksum() uint64 {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.h.chk
}

// Indexes returns the table's indexes.
func (t *Table) Indexes() []*Index {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return append([]*Index(nil), t.indexes...)
}

// Insert stores row, maintains all indexes, and returns the new RowID.
func (t *Table) Insert(row []int64) (RowID, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.insertLocked(row)
}

func (t *Table) insertLocked(row []int64) (RowID, error) {
	if len(row) != t.schema.NumCols() {
		return 0, ErrRowWidth
	}
	rid, err := t.h.insert(row)
	if err != nil {
		return 0, err
	}
	for i, ix := range t.indexes {
		if err := ix.insertEntry(row, rid); err != nil {
			// Undo: remove the entries already added plus the heap row, so
			// a failed statement leaves the table consistent.
			for _, prev := range t.indexes[:i] {
				_ = prev.deleteEntry(row, rid)
			}
			tmp := make([]int64, len(row))
			_ = t.h.delete(rid, tmp)
			return 0, fmt.Errorf("rel: index %s insert: %w", ix.name, err)
		}
	}
	return rid, nil
}

// Get returns a copy of the row at rid.
func (t *Table) Get(rid RowID) ([]int64, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	row := make([]int64, t.schema.NumCols())
	if err := t.h.get(rid, row); err != nil {
		return nil, err
	}
	return row, nil
}

// GetRaw reads the row at rid without taking the database lock. It exists
// for callers that are already inside a scan or hold a higher-level
// statement lock (the SQL executor, the RI-tree); Go's RWMutex is not
// reentrant, so a nested Get could deadlock behind a queued writer. Page
// integrity is still guaranteed by the page store's own latch.
func (t *Table) GetRaw(rid RowID) ([]int64, error) {
	row := make([]int64, t.schema.NumCols())
	if err := t.h.get(rid, row); err != nil {
		return nil, err
	}
	return row, nil
}

// GetRawInto is GetRaw into a caller-provided buffer (len = NumCols),
// avoiding the per-row allocation on streaming query paths that map index
// hits back to base rows.
func (t *Table) GetRawInto(rid RowID, dst []int64) error {
	if len(dst) != t.schema.NumCols() {
		return ErrRowWidth
	}
	return t.h.get(rid, dst)
}

// DeleteRow removes the row at rid from the heap and all indexes. It
// returns the deleted row.
func (t *Table) DeleteRow(rid RowID) ([]int64, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.deleteRowLocked(rid)
}

func (t *Table) deleteRowLocked(rid RowID) ([]int64, error) {
	row := make([]int64, t.schema.NumCols())
	if err := t.h.delete(rid, row); err != nil {
		return nil, err
	}
	for _, ix := range t.indexes {
		if err := ix.deleteEntry(row, rid); err != nil {
			return nil, fmt.Errorf("rel: index %s delete: %w", ix.name, err)
		}
	}
	return row, nil
}

// Update replaces the row at rid in place, maintaining all indexes.
func (t *Table) Update(rid RowID, row []int64) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if len(row) != t.schema.NumCols() {
		return ErrRowWidth
	}
	old := make([]int64, t.schema.NumCols())
	if err := t.h.get(rid, old); err != nil {
		return err
	}
	for _, ix := range t.indexes {
		if err := ix.deleteEntry(old, rid); err != nil {
			return fmt.Errorf("rel: index %s update: %w", ix.name, err)
		}
		if err := ix.insertEntry(row, rid); err != nil {
			return fmt.Errorf("rel: index %s update: %w", ix.name, err)
		}
	}
	return t.h.update(rid, row)
}

// Scan visits every live row in heap order. The row slice is reused between
// calls; copy it to retain it. Return false from fn to stop. fn must not
// mutate the table.
func (t *Table) Scan(fn func(rid RowID, row []int64) bool) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.h.scan(func(rid RowID, row []int64) (bool, error) {
		return fn(rid, row), nil
	})
}

// DeleteWhere removes every row for which pred returns true and returns the
// number of rows removed.
func (t *Table) DeleteWhere(pred func(row []int64) bool) (int64, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	var victims []RowID
	err := t.h.scan(func(rid RowID, row []int64) (bool, error) {
		if pred(row) {
			victims = append(victims, rid)
		}
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	for _, rid := range victims {
		if _, err := t.deleteRowLocked(rid); err != nil {
			return 0, err
		}
	}
	return int64(len(victims)), nil
}

// Truncate removes every row (and index entry), keeping the table defined.
func (t *Table) Truncate() (int64, error) {
	return t.DeleteWhere(func([]int64) bool { return true })
}
