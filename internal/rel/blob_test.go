package rel

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ritree/internal/pagestore"
)

func TestBlobPutGetDelete(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 128})
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := db.GetBlob("none"); found || err != nil {
		t.Fatalf("missing blob: found=%v err=%v", found, err)
	}
	rng := rand.New(rand.NewSource(1))
	// Sizes spanning sub-page, exactly-one-payload, and multi-page chains.
	for _, n := range []int{0, 1, 495, 496, 497, 5000} {
		data := make([]byte, n)
		rng.Read(data)
		if err := db.PutBlob("b", data); err != nil {
			t.Fatalf("put %d bytes: %v", n, err)
		}
		got, found, err := db.GetBlob("b")
		if err != nil || !found {
			t.Fatalf("get %d bytes: found=%v err=%v", n, found, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d-byte blob round-trips to %d bytes", n, len(got))
		}
	}
	if err := db.DeleteBlob("b"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.GetBlob("b"); found {
		t.Fatal("blob survives DeleteBlob")
	}
	if err := db.DeleteBlob("b"); err != nil {
		t.Fatal("DeleteBlob of a missing blob must be a no-op, got", err)
	}
}

func TestBlobRewriteShrinkFreesPages(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 128})
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	before := st.NumAllocated()
	big := make([]byte, 40<<10)
	if err := db.PutBlob("b", big); err != nil {
		t.Fatal(err)
	}
	grown := st.NumAllocated()
	if grown <= before {
		t.Fatal("big blob allocated no pages")
	}
	// Shrinking the blob must release the chain tail back to the allocator.
	if err := db.PutBlob("b", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if after := st.NumAllocated(); after >= grown {
		t.Fatalf("shrink kept %d pages allocated (was %d)", after, grown)
	}
	got, _, err := db.GetBlob("b")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("after shrink: %q, %v", got, err)
	}
}

func TestBlobSurvivesReopen(t *testing.T) {
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 128})
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("snapshot"), 700)
	if err := db.PutBlob("hintsnap.a", payload); err != nil {
		t.Fatal(err)
	}
	if err := db.PutBlob("hintsnap.b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if names := db2.BlobNames(); !reflect.DeepEqual(names, []string{"hintsnap.a", "hintsnap.b"}) {
		t.Fatalf("BlobNames = %v", names)
	}
	got, found, err := db2.GetBlob("hintsnap.a")
	if err != nil || !found || !bytes.Equal(got, payload) {
		t.Fatalf("reopened blob: found=%v len=%d err=%v", found, len(got), err)
	}
}
